// Quickstart: a two-host rack with one memory server. The switch counts
// every forwarded packet in a per-flow counter that lives in the memory
// server's DRAM, updated purely from the data plane with RDMA
// Fetch-and-Add — the server's CPU does nothing after setup.
package main

import (
	"fmt"
	"log"

	"gem"
)

func main() {
	// 1. Build the testbed: 2 hosts + 1 memory server behind one ToR.
	tb, err := gem.New(gem.Options{Seed: 42, Hosts: 2, MemoryServers: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Control plane (runs once): reserve 1 MB of server DRAM, register
	// it with the RNIC, create the queue pair, install the channel into
	// switch registers.
	ch, err := tb.Establish(0, gem.ChannelSpec{RegionSize: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channel up: qpn=%#x rkey=%#x base=%#x size=%d\n",
		ch.PeerQPN, ch.RKey, ch.Base, ch.Size)

	// 3. Attach the state-store primitive: 4096 remote counters.
	counters, err := gem.NewStateStore(ch, gem.StateStoreConfig{Counters: 4096})
	if err != nil {
		log.Fatal(err)
	}
	tb.Dispatcher.Register(ch, counters)

	// 4. The "P4 program": count, then forward by destination.
	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		counters.UpdateFlow(gem.FlowOf(ctx.Pkt))
		switch ctx.Pkt.Eth.Dst {
		case tb.Hosts[0].MAC:
			ctx.Emit(0, ctx.Frame)
		case tb.Hosts[1].MAC:
			ctx.Emit(1, ctx.Frame)
		default:
			ctx.Drop()
		}
	})

	// 5. Send 10,000 packets of one flow from host 0 to host 1 (draining
	// the virtual clock periodically so the host NIC queue stays shallow).
	const packets = 10_000
	for i := 0; i < packets; i++ {
		tb.SendFrame(0, tb.DataFrame(0, 1, 512, 7777, 80))
		if i%1000 == 999 {
			tb.Run()
		}
	}
	tb.Run()

	// 6. Read the flow's counter straight out of server DRAM.
	key := gem.FlowKey{
		SrcIP: tb.Hosts[0].IP, DstIP: tb.Hosts[1].IP,
		Protocol: 17, SrcPort: 7777, DstPort: 80,
	}
	v, err := tb.ReadRemoteCounter(ch, counters.CounterOffset(key.Index(4096)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered: %d/%d packets\n", tb.Hosts[1].Received, packets)
	fmt.Printf("remote counter for the flow: %d (exact: %v)\n", v, v == packets)
	fmt.Printf("memory server CPU operations after setup: %d\n", tb.ServerCPUOps())
	fmt.Printf("virtual time elapsed: %v\n", tb.Now())
}
