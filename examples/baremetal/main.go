// Bare-metal hosting: the §2.2 use case. Azure-style bare-metal boxes need
// virtual→physical address translation outside the box. The full mapping
// (500k entries here) dwarfs switch SRAM, so the switch keeps a small hot
// cache and fetches misses from a sharded table in server DRAM — purely in
// the data plane, with the original packet deposited remotely while the
// entry is fetched (so the switch holds no per-packet state).
package main

import (
	"fmt"
	"log"

	"gem"
	"gem/internal/flowgen"
	"gem/internal/netsim"
	"gem/internal/rnic"
	"gem/internal/stats"
	"gem/internal/wire"
)

const (
	mappings = 500_000
	cacheSz  = 32_768
	packets  = 50_000
)

func main() {
	tb, err := gem.New(gem.Options{
		Seed: 7, Hosts: 2, MemoryServers: 1,
		NIC: rnic.Config{MTU: 4096},
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := gem.LookupConfig{
		Entries:      mappings,
		MaxPktBytes:  512,
		CacheEntries: cacheSz,
	}
	ch, err := tb.Establish(0, gem.ChannelSpec{RegionSize: cfg.Entries * cfg.EntrySize()})
	if err != nil {
		log.Fatal(err)
	}
	lt, err := gem.NewLookupTable(ch, cfg)
	if err != nil {
		log.Fatal(err)
	}
	lt.DefaultOutPort = 1

	// Server side, at init: populate the virtual→physical mapping shards.
	region := tb.Region(ch)
	for i := 0; i < cfg.Entries; i++ {
		phys := wire.IP4FromUint32(0x0B000000 | uint32(i))
		if err := gem.PopulateLookupEntry(region, cfg, i, gem.SetDstIPAction(phys)); err != nil {
			log.Fatal(err)
		}
	}
	tb.Dispatcher.Register(ch, lt)
	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		lt.Lookup(ctx, ctx.Frame, ctx.Pkt)
	})

	// Zipf traffic from the bare-metal box toward customer VMs,
	// closed-loop so per-packet latency is clean.
	lat := &stats.Histogram{}
	var sentAt gem.Time
	zipf := flowgen.NewZipf(7, mappings, 1.1)
	i := 0
	var send func()
	tb.Hosts[1].Handler = func(_ *netsim.Port, frame []byte) {
		lat.AddDuration(tb.Now().Sub(sentAt))
		i++
		if i < packets {
			send()
		}
	}
	send = func() {
		sentAt = tb.Now()
		sp, dp := flowgen.FlowID(zipf.Next())
		tb.SendFrame(0, wire.BuildDataFrame(tb.Hosts[0].MAC, tb.Hosts[1].MAC,
			tb.Hosts[0].IP, tb.Hosts[1].IP, sp, dp, 256, nil))
	}
	send()
	tb.Run()

	fmt.Printf("virtual->physical mappings: %d (needs %.1f MB; switch SRAM budget %d MB)\n",
		mappings, float64(mappings*24)/(1<<20), tb.Switch.SRAM.Total>>20)
	fmt.Printf("SRAM actually used:         %.2f MB (cache %d entries)\n",
		float64(tb.Switch.SRAM.Used())/(1<<20), cacheSz)
	fmt.Printf("packets translated:         %d\n", i)
	fmt.Printf("cache hit rate:             %.1f%%\n", lt.Cache().HitRate()*100)
	fmt.Printf("remote lookups:             %d (all served in the data plane)\n", lt.Stats.RemoteLookups)
	fmt.Printf("latency p50/p99:            %.2f / %.2f µs\n",
		float64(lat.Percentile(50))/1e3, float64(lat.Percentile(99))/1e3)
	fmt.Printf("table server CPU ops:       %d\n", tb.ServerCPUOps())
}
