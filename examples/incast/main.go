// Incast: the §2.1 motivating scenario. Eight senders burst 50 MB at one
// 40 Gbps receiver port behind a 12 MB switch buffer. Without help, the
// buffer fills in ≈0.34 ms and most of the burst drops. With the packet
// buffer primitive, the switch spills the overflow into ring buffers in
// the DRAM of eight memory servers and pulls it back in order: lossless.
package main

import (
	"fmt"
	"log"

	"gem"
	"gem/internal/flowgen"
	"gem/internal/netsim"
	"gem/internal/rnic"
	"gem/internal/wire"
)

const (
	senders  = 8
	burstMB  = 50
	frameLen = 1500
)

func run(withPrimitive bool) {
	mem := 0
	if withPrimitive {
		mem = senders
	}
	tb, err := gem.New(gem.Options{
		Seed: 1, Hosts: senders + 1, MemoryServers: mem,
		NIC: rnic.Config{MTU: 4096, EnablePFC: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	recv := senders

	var pb *gem.PacketBuffer
	if withPrimitive {
		var chans []*gem.Channel
		for i := 0; i < mem; i++ {
			ch, err := tb.Establish(i, gem.ChannelSpec{RegionSize: 64 << 20})
			if err != nil {
				log.Fatal(err)
			}
			chans = append(chans, ch)
		}
		pb, err = gem.NewPacketBuffer(chans, tb.SwitchPortOfHost(recv), gem.PacketBufferConfig{
			EntrySize:           frameLen + 4,
			HighWaterBytes:      1 << 20,
			LowWaterBytes:       512 << 10,
			MaxOutstandingReads: 64,
		})
		if err != nil {
			log.Fatal(err)
		}
		pb.RegisterWith(tb.Dispatcher)
		tb.Switch.Hooks = pb
	}

	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil || ctx.Pkt.Eth.Dst != tb.Hosts[recv].MAC {
			ctx.Drop()
			return
		}
		if pb != nil {
			pb.Admit(ctx, ctx.Frame)
		} else {
			ctx.Emit(recv, ctx.Frame)
		}
	})

	perSender := burstMB << 20 / frameLen / senders
	for i := 0; i < senders; i++ {
		gen := &flowgen.CBR{
			Src: tb.Hosts[i], Dst: tb.Hosts[recv], Port: tb.HostPort(i),
			FrameLen: frameLen, RateBps: 40e9, FlowCount: 8,
		}
		gen.Start(tb.Engine, int64(perSender))
	}
	tb.Run()

	offered := int64(perSender * senders)
	delivered := tb.Hosts[recv].Received
	name := "baseline (12 MB switch buffer)"
	if withPrimitive {
		name = "remote packet buffer        "
	}
	fmt.Printf("%s  delivered %6d/%6d  loss %5.2f%%",
		name, delivered, offered, float64(offered-delivered)/float64(offered)*100)
	if !withPrimitive && tb.Switch.Stats.BufferDrops > 0 {
		fmt.Printf("  first drop at %.3f ms",
			float64(tb.Switch.Stats.FirstBufferDrop)/1e6)
	}
	if pb != nil {
		fmt.Printf("  spilled %d frames, peak ring %d entries (%.1f MB remote)",
			pb.Stats.Stored, pb.Stats.MaxDepth,
			float64(pb.Stats.MaxDepth)*float64(frameLen+4)/(1<<20))
	}
	fmt.Println()
	if tb.ServerCPUOps() != 0 {
		log.Fatalf("memory servers burned CPU: %d ops", tb.ServerCPUOps())
	}
}

// tierName maps a peak occupancy fraction to the pressure tier it reached
// (the monitor's thresholds: elevated 0.70, critical 0.90).
func tierName(peakFrac float64) string {
	switch {
	case peakFrac >= 0.90:
		return "critical"
	case peakFrac >= 0.70:
		return "elevated"
	}
	return "normal"
}

// runOverload demonstrates the backpressure and priority knobs: a 4:1
// mini-incast through allocator-placed regions on two memory servers, one
// sender marked DSCP EF (high priority), driven hard enough to reach the
// requested pressure tier. Low-priority frames are shed once the spill
// path saturates; EF frames are delivered losslessly at every tier.
func runOverload(intensity float64) {
	const (
		overloadSenders = 4
		regionBytes     = 256 << 10
		oFrameLen       = 1000
		perSender       = 500
	)
	tb, err := gem.New(gem.Options{Seed: 1, Hosts: overloadSenders + 1, MemoryServers: 2})
	if err != nil {
		log.Fatal(err)
	}
	recv := overloadSenders

	// Remote-memory admission: regions come from an allocator that places
	// on the least-loaded server and refuses past its 0.9 watermark.
	alloc, err := tb.NewAllocator(gem.AllocatorConfig{PerServerBytes: 512 << 10})
	if err != nil {
		log.Fatal(err)
	}
	var chans []*gem.Channel
	for i := 0; i < 2; i++ {
		ch, _, err := alloc.Allocate(regionBytes, gem.ChannelSpec{})
		if err != nil {
			log.Fatal(err)
		}
		chans = append(chans, ch)
	}

	pb, err := gem.NewPacketBuffer(chans, tb.SwitchPortOfHost(recv), gem.PacketBufferConfig{
		EntrySize:      2048,
		HighWaterBytes: 64 << 10, // spill once the egress queue backs up
		LowWaterBytes:  32 << 10,
		// Credit window per RDMA channel: at most 8 outstanding READs,
		// reopening after drain to 4 (hysteresis, no admit/refuse flapping).
		MaxOutstandingReads: 16,
		PerChannelWindow:    8,
		ReadLowWatermark:    4,
		// Backpressure on the spill path itself: stop spilling when the
		// memory-link egress queue passes 128 KB, resume below 64 KB.
		SpillHighWaterBytes: 128 << 10,
		// Priority shedding: past 160 stored entries, low-priority frames
		// are dropped (counted), high-priority keeps spilling.
		ShedRingEntries: 160,
	})
	if err != nil {
		log.Fatal(err)
	}
	pb.RegisterWith(tb.Dispatcher)
	tb.Switch.Hooks = pb

	// Pressure tiers over per-server ring occupancy; at critical the gate
	// refuses new spills entirely (high-prio bypasses, low-prio sheds).
	mon := gem.NewPressureMonitor(gem.PressureConfig{})
	for i := 0; i < 2; i++ {
		i := i
		mon.AddServer(i, regionBytes)
		mon.AddGauge(i, func() int64 { return pb.ChannelOccupancyBytes(i) })
	}
	pb.AdmitGate = func(chanIdx int) bool { return mon.Tier(chanIdx) < gem.PressureCritical }
	tb.SetPressureMonitor(mon)

	tb.SetPipeline(func(ctx *gem.Context) {
		if tb.Dispatcher.Dispatch(ctx) {
			return
		}
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		pb.AdmitPrio(ctx, ctx.Frame, ctx.Priority) // DSCP >= 32 keeps exactness
	})

	var highDelivered int64
	tb.Hosts[recv].Handler = func(_ *netsim.Port, frame []byte) {
		if len(frame) > wire.EthernetLen+1 && frame[wire.EthernetLen+1]>>2 == 46 {
			highDelivered++
		}
	}

	gens := make([]*flowgen.CBR, overloadSenders)
	for i := 0; i < overloadSenders; i++ {
		gens[i] = &flowgen.CBR{
			Src: tb.Hosts[i], Dst: tb.Hosts[recv], Port: tb.HostPort(i),
			FrameLen: oFrameLen, RateBps: intensity * 10e9,
		}
		if i == 0 {
			gens[i].DSCP = 46 // EF: this sender's traffic is never shed
		}
		gens[i].Start(tb.Engine, perSender)
	}
	tb.Run()

	highSent := gens[0].Sent
	lowSent := int64(0)
	for _, g := range gens[1:] {
		lowSent += g.Sent
	}
	peak := mon.PeakFrac(0)
	if f := mon.PeakFrac(1); f > peak {
		peak = f
	}
	fmt.Printf("%.1fx line rate   tier %-8s  peak occupancy %4.0f%%  EF %3d/%3d  low %4d/%4d (shed %4d, bypassed %d)\n",
		intensity, tierName(peak), peak*100,
		highDelivered, highSent, tb.Hosts[recv].Received-highDelivered, lowSent,
		pb.Stats.ShedLowPrio, pb.Stats.PressureBypassed)
	if highDelivered != highSent {
		log.Fatalf("EF traffic lost: %d/%d", highDelivered, highSent)
	}
}

func main() {
	fmt.Printf("%d senders x 40G -> one 40G port, %d MB burst (cf. paper §2.1)\n\n",
		senders, burstMB)
	run(false)
	run(true)
	fmt.Println("\nzero memory-server CPU operations in both runs")

	fmt.Println("\noverload knobs: credit windows, spill watermarks, pressure tiers, EF priority")
	fmt.Println("(4 senders -> one 10G share, 256 KB regions on 2 servers; see README.md)")
	fmt.Println()
	runOverload(1)
	runOverload(3)
	runOverload(4)
}
