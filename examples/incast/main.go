// Incast: the §2.1 motivating scenario. Eight senders burst 50 MB at one
// 40 Gbps receiver port behind a 12 MB switch buffer. Without help, the
// buffer fills in ≈0.34 ms and most of the burst drops. With the packet
// buffer primitive, the switch spills the overflow into ring buffers in
// the DRAM of eight memory servers and pulls it back in order: lossless.
package main

import (
	"fmt"
	"log"

	"gem"
	"gem/internal/flowgen"
	"gem/internal/rnic"
)

const (
	senders  = 8
	burstMB  = 50
	frameLen = 1500
)

func run(withPrimitive bool) {
	mem := 0
	if withPrimitive {
		mem = senders
	}
	tb, err := gem.New(gem.Options{
		Seed: 1, Hosts: senders + 1, MemoryServers: mem,
		NIC: rnic.Config{MTU: 4096, EnablePFC: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	recv := senders

	var pb *gem.PacketBuffer
	if withPrimitive {
		var chans []*gem.Channel
		for i := 0; i < mem; i++ {
			ch, err := tb.Establish(i, gem.ChannelSpec{RegionSize: 64 << 20})
			if err != nil {
				log.Fatal(err)
			}
			chans = append(chans, ch)
		}
		pb, err = gem.NewPacketBuffer(chans, tb.SwitchPortOfHost(recv), gem.PacketBufferConfig{
			EntrySize:           frameLen + 4,
			HighWaterBytes:      1 << 20,
			LowWaterBytes:       512 << 10,
			MaxOutstandingReads: 64,
		})
		if err != nil {
			log.Fatal(err)
		}
		pb.RegisterWith(tb.Dispatcher)
		tb.Switch.Hooks = pb
	}

	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil || ctx.Pkt.Eth.Dst != tb.Hosts[recv].MAC {
			ctx.Drop()
			return
		}
		if pb != nil {
			pb.Admit(ctx, ctx.Frame)
		} else {
			ctx.Emit(recv, ctx.Frame)
		}
	})

	perSender := burstMB << 20 / frameLen / senders
	for i := 0; i < senders; i++ {
		gen := &flowgen.CBR{
			Src: tb.Hosts[i], Dst: tb.Hosts[recv], Port: tb.HostPort(i),
			FrameLen: frameLen, RateBps: 40e9, FlowCount: 8,
		}
		gen.Start(tb.Engine, int64(perSender))
	}
	tb.Run()

	offered := int64(perSender * senders)
	delivered := tb.Hosts[recv].Received
	name := "baseline (12 MB switch buffer)"
	if withPrimitive {
		name = "remote packet buffer        "
	}
	fmt.Printf("%s  delivered %6d/%6d  loss %5.2f%%",
		name, delivered, offered, float64(offered-delivered)/float64(offered)*100)
	if !withPrimitive && tb.Switch.Stats.BufferDrops > 0 {
		fmt.Printf("  first drop at %.3f ms",
			float64(tb.Switch.Stats.FirstBufferDrop)/1e6)
	}
	if pb != nil {
		fmt.Printf("  spilled %d frames, peak ring %d entries (%.1f MB remote)",
			pb.Stats.Stored, pb.Stats.MaxDepth,
			float64(pb.Stats.MaxDepth)*float64(frameLen+4)/(1<<20))
	}
	fmt.Println()
	if tb.ServerCPUOps() != 0 {
		log.Fatalf("memory servers burned CPU: %d ops", tb.ServerCPUOps())
	}
}

func main() {
	fmt.Printf("%d senders x 40G -> one 40G port, %d MB burst (cf. paper §2.1)\n\n",
		senders, burstMB)
	run(false)
	run(true)
	fmt.Println("\nzero memory-server CPU operations in both runs")
}
