// Telemetry: the §2.3 use case. The switch runs a Count Sketch whose
// counter arrays live in remote DRAM, updated with one Fetch-and-Add per
// sketch row per packet. An operator process then reads the server's memory
// directly and extracts heavy hitters — the switch's packet rate with the
// server's memory capacity, and no CPU in the data path.
package main

import (
	"fmt"
	"log"
	"sort"

	"gem"
	"gem/internal/flowgen"
	"gem/internal/sketch"
	"gem/internal/wire"
)

const (
	rows, width = 5, 8192
	flows       = 30_000
	packets     = 60_000
)

func main() {
	tb, err := gem.New(gem.Options{Seed: 11, Hosts: 2, MemoryServers: 1})
	if err != nil {
		log.Fatal(err)
	}
	counters := rows * width
	ch, err := tb.Establish(0, gem.ChannelSpec{RegionSize: counters * 8})
	if err != nil {
		log.Fatal(err)
	}
	ss, err := gem.NewStateStore(ch, gem.StateStoreConfig{
		Counters: counters, MaxOutstanding: 32, PendingSlots: 1 << 15,
	})
	if err != nil {
		log.Fatal(err)
	}
	tb.Dispatcher.Register(ch, ss)

	cs := sketch.NewCountSketch(rows, width)
	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		key := uint64(gem.FlowOf(ctx.Pkt).Hash())
		for _, pos := range cs.Positions(key) {
			ss.Update(pos.Index, uint64(pos.Delta))
		}
		ctx.Emit(1, ctx.Frame)
	})

	// Zipf traffic: a few elephants, many mice.
	zipf := flowgen.NewZipf(11, flows, 1.2)
	truth := map[int]int64{}
	for i := 0; i < packets; i++ {
		f := zipf.Next()
		truth[f]++
		sp, dp := flowgen.FlowID(f)
		tb.SendFrame(0, wire.BuildDataFrame(tb.Hosts[0].MAC, tb.Hosts[1].MAC,
			tb.Hosts[0].IP, tb.Hosts[1].IP, sp, dp, 128, nil))
		if i%512 == 511 {
			tb.Run()
		}
	}
	tb.Run()

	// Operator side: read the sketch out of server DRAM.
	remote := make([]uint64, counters)
	for i := range remote {
		remote[i], _ = tb.ReadRemoteCounter(ch, i*8)
	}

	// Rank flows by estimate; compare the top 10 against ground truth.
	type est struct {
		flow  int
		est   int64
		true_ int64
	}
	var all []est
	for f, c := range truth {
		sp, dp := flowgen.FlowID(f)
		key := gem.FlowKey{SrcIP: tb.Hosts[0].IP, DstIP: tb.Hosts[1].IP,
			Protocol: 17, SrcPort: sp, DstPort: dp}
		all = append(all, est{f, cs.Estimate(remote, uint64(key.Hash())), c})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].est > all[j].est })

	fmt.Printf("remote Count Sketch: %dx%d counters (%d KB of server DRAM)\n",
		rows, width, counters*8/1024)
	fmt.Printf("packets counted: %d across %d distinct flows\n", packets, len(truth))
	fmt.Printf("FAA operations issued by the switch: %d\n", ss.Stats.FAAIssued)
	fmt.Printf("memory server CPU ops: %d\n\n", tb.ServerCPUOps())
	fmt.Println("top flows by sketch estimate (vs ground truth):")
	for i := 0; i < 10 && i < len(all); i++ {
		e := all[i]
		fmt.Printf("  flow %6d  est %6d  true %6d  err %+d\n",
			e.flow, e.est, e.true_, e.est-e.true_)
	}
}
