// Load balancer: the other §2.2 use case ("load balancers (e.g.,
// SilkRoad)"). A stateful L4 load balancer must remember which backend
// (DIP) each connection was assigned to — millions of connections at ToR
// scale, far beyond switch SRAM. Here the per-connection table lives in
// remote DRAM: the switch resolves a connection's DIP through the lookup
// primitive (local SRAM cache in front), rewrites the destination, and
// forwards — consistently for the connection's lifetime, with no CPU on
// the slow path.
package main

import (
	"fmt"
	"log"

	"gem"
	"gem/internal/flowgen"
	"gem/internal/netsim"
	"gem/internal/rnic"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

const (
	backends    = 4
	connections = 2000
	pktsPerConn = 5
)

// The virtual IP clients address, and the LB's router MAC.
var (
	vip    = wire.IP4{10, 99, 0, 1}
	vipMAC = wire.MACFromUint64(0x02_AA_00_000001)
)

func main() {
	// Host 0 = client; hosts 1..backends = servers; one memory server.
	tb, err := gem.New(gem.Options{
		Seed: 13, Hosts: backends + 1, MemoryServers: 1,
		NIC: rnic.Config{MTU: 4096},
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := gem.LookupConfig{
		Entries:      1 << 16, // 64k connection buckets in remote DRAM
		MaxPktBytes:  512,
		CacheEntries: 2048, // small hot cache in SRAM
	}
	ch, err := tb.Establish(0, gem.ChannelSpec{RegionSize: cfg.Entries * cfg.EntrySize()})
	if err != nil {
		log.Fatal(err)
	}
	lb, err := gem.NewLookupTable(ch, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Control plane: assign each connection bucket a backend DIP.
	region := tb.Region(ch)
	for i := 0; i < cfg.Entries; i++ {
		dip := tb.Hosts[1+i%backends].IP
		if err := gem.PopulateLookupEntry(region, cfg, i, gem.SetDstIPAction(dip)); err != nil {
			log.Fatal(err)
		}
	}

	// After the action rewrites dst to the DIP, route to that backend.
	portOfIP := map[wire.IP4]int{}
	for i := 1; i <= backends; i++ {
		portOfIP[tb.Hosts[i].IP] = tb.SwitchPortOfHost(i)
	}
	lb.Apply = func(ctx *switchsim.Context, frame []byte, action gem.LookupAction) {
		if !lb.ApplyActionOnly(frame, action) {
			ctx.Drop()
			return
		}
		var p wire.Packet
		if err := p.DecodeFromBytes(frame); err != nil {
			ctx.Drop()
			return
		}
		if out, ok := portOfIP[p.IP.Dst]; ok {
			ctx.Emit(out, frame)
			return
		}
		ctx.Drop()
	}
	tb.Dispatcher.Register(ch, lb)
	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		if ctx.Pkt.IP.Dst == vip {
			lb.Lookup(ctx, ctx.Frame, ctx.Pkt)
			return
		}
		ctx.Drop()
	})

	// Which backend served each connection, by UDP source port.
	served := map[uint16]wire.IP4{}
	inconsistent := 0
	perBackend := map[wire.IP4]int{}
	for i := 1; i <= backends; i++ {
		b := tb.Hosts[i]
		b.Handler = func(_ *netsim.Port, frame []byte) {
			var p wire.Packet
			if err := p.DecodeFromBytes(frame); err != nil || !p.HasUDP {
				return
			}
			perBackend[p.IP.Dst]++
			if prev, ok := served[p.UDP.SrcPort]; ok && prev != p.IP.Dst {
				inconsistent++
			}
			served[p.UDP.SrcPort] = p.IP.Dst
		}
	}

	// Traffic: each connection sends several packets, interleaved.
	for round := 0; round < pktsPerConn; round++ {
		for c := 0; c < connections; c++ {
			sp, _ := flowgen.FlowID(c)
			frame := wire.BuildDataFrame(tb.Hosts[0].MAC, vipMAC,
				tb.Hosts[0].IP, vip, sp, 80, 256, nil)
			tb.SendFrame(0, frame)
			if c%512 == 511 {
				tb.Run()
			}
		}
		tb.Run()
	}

	total := 0
	for _, n := range perBackend {
		total += n
	}
	fmt.Printf("connections: %d, packets: %d (delivered %d)\n",
		connections, connections*pktsPerConn, total)
	fmt.Printf("per-connection consistency violations: %d\n", inconsistent)
	fmt.Println("backend distribution:")
	for i := 1; i <= backends; i++ {
		ip := tb.Hosts[i].IP
		fmt.Printf("  %v: %5d packets (%.1f%%)\n", ip, perBackend[ip],
			float64(perBackend[ip])/float64(total)*100)
	}
	fmt.Printf("connection table: %d buckets in remote DRAM (%.1f MB), SRAM cache %d entries\n",
		cfg.Entries, float64(cfg.Entries*cfg.EntrySize())/(1<<20), cfg.CacheEntries)
	fmt.Printf("cache hit rate: %.1f%%, remote lookups: %d, server CPU ops: %d\n",
		lb.Cache().HitRate()*100, lb.Stats.RemoteLookups, tb.ServerCPUOps())
}
