package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30ns", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		e.Schedule(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of insertion order at %d: %v", i, order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var hits []Time
	e.Schedule(10, func() {
		hits = append(hits, e.Now())
		e.Schedule(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("nested schedule produced %v, want [10 15]", hits)
	}
}

func TestScheduleZeroDelayRunsAtSameTime(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.Schedule(7, func() {
		e.Schedule(0, func() {
			if e.Now() != 7 {
				t.Errorf("zero-delay event at %v, want 7", e.Now())
			}
			ran = true
		})
	})
	e.Run()
	if !ran {
		t.Fatal("zero-delay event never ran")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	ev := e.Schedule(10, func() { ran = true })
	e.Cancel(ev)
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Fatal("event does not report cancelled")
	}
	// Double-cancel and cancel-nil must be safe.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine(1)
	var order []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.Schedule(Duration(10+i), func() { order = append(order, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[8])
	e.Run()
	want := []int{0, 1, 2, 3, 5, 6, 7, 9}
	if len(order) != len(want) {
		t.Fatalf("got %v want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v want %v", order, want)
		}
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(100, func() {})
	e.Schedule(500, func() {})
	e.RunUntil(200)
	if e.Now() != 200 {
		t.Fatalf("clock = %v after RunUntil(200)", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if e.Now() != 500 {
		t.Fatalf("clock = %v, want 500", e.Now())
	}
}

func TestRunFor(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Ticker(10, func() bool { count++; return true })
	e.RunFor(105)
	if count != 10 {
		t.Fatalf("ticker fired %d times in 105ns at period 10, want 10", count)
	}
	if e.Now() != 105 {
		t.Fatalf("clock = %v, want 105", e.Now())
	}
}

func TestTickerStops(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Ticker(10, func() bool {
		count++
		return count < 3
	})
	e.Run()
	if count != 3 {
		t.Fatalf("ticker fired %d times, want 3", count)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	ran2 := false
	e.Schedule(10, func() { e.Stop() })
	e.Schedule(20, func() { ran2 = true })
	e.Run()
	if ran2 {
		t.Fatal("event after Stop ran")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	NewEngine(1).Schedule(-1, func() {})
}

func TestScheduleAtPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.ScheduleAt(50, func() {})
	})
	e.Run()
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Time {
		e := NewEngine(42)
		var times []Time
		// Random-ish workload driven by the seeded RNG.
		var spawn func()
		spawn = func() {
			times = append(times, e.Now())
			if len(times) < 200 {
				e.Schedule(Duration(e.Rand().Intn(100)+1), spawn)
				if e.Rand().Intn(3) == 0 {
					e.Schedule(Duration(e.Rand().Intn(50)+1), func() { times = append(times, e.Now()) })
				}
			}
		}
		e.Schedule(1, spawn)
		e.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDurationHelpers(t *testing.T) {
	if Second.Seconds() != 1.0 {
		t.Fatalf("Second.Seconds() = %v", Second.Seconds())
	}
	if (2 * Microsecond).String() != "2µs" {
		t.Fatalf("String = %q", (2 * Microsecond).String())
	}
	tm := Time(1500)
	if tm.Add(500) != 2000 {
		t.Fatal("Time.Add broken")
	}
	if tm.Sub(500) != 1000 {
		t.Fatal("Time.Sub broken")
	}
}

// Property: executing any batch of events never decreases the clock, and
// executes exactly len(batch) events.
func TestPropClockMonotone(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.Schedule(Duration(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok && e.Executed == uint64(len(delays))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Ticker fires floor(horizon/period) times.
func TestPropTickerCount(t *testing.T) {
	f := func(p uint8, h uint16) bool {
		period := Duration(p%100) + 1
		horizon := Duration(h)
		e := NewEngine(7)
		n := 0
		e.Ticker(period, func() bool { n++; return true })
		e.RunFor(horizon)
		return n == int(horizon/period)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Stress: a large churn of schedules and cancels keeps the heap consistent
// and the clock monotone.
func TestHeapChurnStress(t *testing.T) {
	e := NewEngine(99)
	var live []*Event
	executed := 0
	for i := 0; i < 5000; i++ {
		d := Duration(e.Rand().Intn(1000) + 1)
		live = append(live, e.Schedule(d, func() { executed++ }))
		if len(live) > 100 && e.Rand().Intn(2) == 0 {
			idx := e.Rand().Intn(len(live))
			e.Cancel(live[idx])
			live = append(live[:idx], live[idx+1:]...)
		}
		if e.Rand().Intn(10) == 0 {
			e.Step()
		}
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after Run", e.Pending())
	}
	if executed == 0 {
		t.Fatal("nothing executed")
	}
}
