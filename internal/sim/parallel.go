// Conservative parallel execution: a ParallelEngine advances N island
// engines on separate goroutines in bounded-lag windows.
//
// Synchronization model. Each round, every island publishes the timestamp of
// its earliest pending event; the global minimum T is the round's base. An
// island i may safely execute every event with at < T + lookIn[i], where
// lookIn[i] is the minimum propagation delay over cross-island links INTO
// island i: any event a peer sends during the round carries timestamp
// >= T + link delay >= T + lookIn[i], so nothing that arrives mid-round can
// belong to the window being executed. Cross-island events travel through
// per-island mutex-guarded mailboxes and are drained into the heap at the
// next window boundary; the heap's causal-rank order (see sim.go) makes the
// merge independent of arrival interleaving, which is what keeps same-seed
// runs byte-identical for any island count.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

const (
	maxTime = Time(math.MaxInt64)
	// InfLookahead marks an island with no incoming cross-island links: it
	// can never receive external events, so it may run arbitrarily far ahead.
	InfLookahead = Duration(math.MaxInt64)
)

// barrier is a sense-reversing spin barrier. Spinning keeps window turnaround
// in the sub-microsecond range on multi-core hosts; the Gosched fallback
// keeps it correct (if slower) when goroutines outnumber cores.
type barrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint32
}

func (b *barrier) wait() {
	g := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for spins := 0; b.gen.Load() == g; spins++ {
		if spins&63 == 63 {
			runtime.Gosched()
		}
	}
}

// ParallelEngine coordinates N island engines. Island 0 is conventionally
// the control island (the facade's Engine field); workloads that drive the
// run from outside the event loop schedule there.
type ParallelEngine struct {
	islands []*Engine
	lookIn  []Duration // min cross-link propagation into island i

	mins     []atomic.Int64 // per-island earliest pending event time
	barrier  barrier
	stopReq  atomic.Bool
	stopSnap atomic.Bool
	running  bool

	// rootKids is the run-global counter behind causal ranks of events
	// scheduled outside any event; setup code is single-threaded, so plain
	// increments are safe.
	rootKids uint64
}

// NewParallelEngine returns a coordinator with n islands sharing run seed
// seed. Island 0's shared random source matches NewEngine(seed) exactly;
// model code should use per-consumer Stream substreams, which are identical
// on every island by construction.
func NewParallelEngine(seed int64, n int) *ParallelEngine {
	if n < 1 {
		panic("sim: parallel engine needs at least one island")
	}
	p := &ParallelEngine{
		islands: make([]*Engine, n),
		lookIn:  make([]Duration, n),
		mins:    make([]atomic.Int64, n),
	}
	p.barrier.n = int32(n)
	for i := 0; i < n; i++ {
		islandSeed := seed
		if i > 0 {
			islandSeed = int64(splitmix64(uint64(seed) + uint64(i)))
		}
		e := NewEngine(islandSeed)
		e.seed = seed // Stream substreams derive from the run seed everywhere
		e.island = int32(i)
		e.par = p
		p.islands[i] = e
		p.lookIn[i] = InfLookahead
	}
	return p
}

// N returns the number of islands.
func (p *ParallelEngine) N() int { return len(p.islands) }

// Island returns island i's engine.
func (p *ParallelEngine) Island(i int) *Engine { return p.islands[i] }

// SetLookaheadInto lower-bounds the timestamp gap of events arriving at
// island i from other islands: every cross-island post must carry a
// timestamp >= sender clock + d. Called by the topology layer with the
// minimum propagation delay over links into i; d must be positive, or the
// window containing the global minimum event could never execute.
func (p *ParallelEngine) SetLookaheadInto(i int, d Duration) {
	if d <= 0 {
		panic("sim: lookahead into an island must be positive")
	}
	p.lookIn[i] = d
}

// LookaheadInto returns the configured lookahead into island i.
func (p *ParallelEngine) LookaheadInto(i int) Duration { return p.lookIn[i] }

// PostFrom schedules fn at absolute time at on island engine e, on behalf of
// an event currently executing on island engine src of the same
// ParallelEngine. It is the only Engine method that may be called from
// another island's goroutine. The timestamp must respect the lookahead bound
// registered for e's island.
func (e *Engine) PostFrom(src *Engine, at Time, fn func()) {
	if e == src {
		src.ScheduleAt(at, fn)
		return
	}
	p := e.par
	if p == nil || src.par != p {
		panic("sim: PostFrom across unrelated engines")
	}
	look := p.lookIn[e.island]
	if look == InfLookahead {
		panic(fmt.Sprintf("sim: post into island %d which declared no incoming links", e.island))
	}
	if at < src.now.Add(look) {
		panic(fmt.Sprintf("sim: lookahead violation: post at %v from island %d (now %v) into island %d (lookahead %v)",
			at, src.island, src.now, e.island, look))
	}
	if fn == nil {
		panic("sim: nil event func")
	}
	ev := src.alloc()
	ev.at = at
	ev.birthAt = src.now
	ev.birthIsland = src.island
	ev.rank, ev.childIdx = src.nextChild()
	ev.state = statePending
	ev.fn = fn
	e.mbox.mu.Lock()
	e.mbox.evs = append(e.mbox.evs, ev)
	e.mbox.mu.Unlock()
}

// drainMbox moves mailbox events into the heap. Only the island's own worker
// calls it, at window boundaries.
func (e *Engine) drainMbox() {
	e.mbox.mu.Lock()
	evs := e.mbox.evs
	e.mbox.evs = e.drainScratch[:0]
	e.mbox.mu.Unlock()
	for i, ev := range evs {
		if ev.at < e.now {
			panic("sim: cross-island event arrived in the past (lookahead bound broken)")
		}
		heap.Push(&e.queue, ev)
		evs[i] = nil
	}
	e.drainScratch = evs[:0]
}

// Run executes events until every island's queue and mailbox is empty or
// Stop is called.
func (p *ParallelEngine) Run() { p.run(maxTime) }

// RunUntil executes events with time <= deadline, then advances every
// island's clock to deadline.
func (p *ParallelEngine) RunUntil(deadline Time) { p.run(deadline) }

// RunFor executes events for d of virtual time from island 0's clock (all
// island clocks agree after any RunUntil/RunFor).
func (p *ParallelEngine) RunFor(d Duration) { p.RunUntil(p.islands[0].now.Add(d)) }

// Now returns island 0's clock.
func (p *ParallelEngine) Now() Time { return p.islands[0].now }

// Pending reports the number of events waiting across all islands.
func (p *ParallelEngine) Pending() int {
	n := 0
	for _, e := range p.islands {
		n += e.Pending() + len(e.mbox.evs)
	}
	return n
}

// Executed sums executed-event counts across islands.
func (p *ParallelEngine) Executed() uint64 {
	var n uint64
	for _, e := range p.islands {
		n += e.Executed
	}
	return n
}

// Stop requests the current run to halt at the next window boundary.
func (p *ParallelEngine) Stop() { p.stopReq.Store(true) }

func (p *ParallelEngine) run(deadline Time) {
	if p.running {
		panic("sim: ParallelEngine re-entered while running")
	}
	p.running = true
	defer func() { p.running = false }()
	p.stopReq.Store(false)
	p.stopSnap.Store(false)

	var wg sync.WaitGroup
	for i := 1; i < len(p.islands); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.worker(i, deadline)
		}(i)
	}
	p.worker(0, deadline)
	wg.Wait()
}

// worker is the per-island round loop. All workers execute the same control
// flow and take exit decisions from identical published state, so they leave
// the barrier protocol together.
func (p *ParallelEngine) worker(i int, deadline Time) {
	e := p.islands[i]
	e.stopped = false
	for {
		// Window boundary: fold mailbox arrivals in, publish earliest event.
		e.drainMbox()
		min := maxTime
		if len(e.queue) > 0 {
			min = e.queue[0].at
		}
		p.mins[i].Store(int64(min))
		if i == 0 {
			p.stopSnap.Store(p.stopReq.Load())
		}
		p.barrier.wait()

		// Every worker derives the same round decision.
		t := maxTime
		for j := range p.mins {
			if m := Time(p.mins[j].Load()); m < t {
				t = m
			}
		}
		if p.stopSnap.Load() || t == maxTime || t > deadline {
			break
		}

		// Safe horizon for this island: events strictly below T + lookahead.
		w := maxTime
		if look := p.lookIn[i]; look != InfLookahead && t <= maxTime.Add(-look) {
			w = t.Add(look)
		}
		if deadline != maxTime && w > deadline+1 {
			w = deadline + 1 // RunUntil is inclusive of the deadline itself
		}
		for !e.stopped && len(e.queue) > 0 && e.queue[0].at < w {
			e.Step()
		}
		p.barrier.wait()
	}
	if deadline != maxTime && e.now < deadline {
		e.now = deadline
	}
}
