//go:build race

package sim

// raceEnabled reports whether the race detector is compiled in; allocation
// gates are skipped under -race because instrumentation allocates.
const raceEnabled = true
