// Package sim provides a deterministic discrete-event simulation engine.
//
// All components of the testbed (links, NICs, switches, traffic generators)
// schedule work on a single Engine. Time is a virtual nanosecond clock; the
// engine executes events in (time, sequence) order, so two runs with the same
// seed replay identically. A single goroutine owns an Engine; none of the
// methods are safe for concurrent use.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors a subset of
// time.Duration so call sites read naturally (3*sim.Microsecond).
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts d to a time.Duration for formatting.
func (d Duration) Std() time.Duration { return time.Duration(d) }

func (d Duration) String() string { return d.Std().String() }

// Seconds reports t as floating-point seconds since the start of the run.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Callbacks run exactly once.
type Event struct {
	at    Time
	seq   uint64
	index int // heap index; -1 once popped or cancelled
	fn    func()
}

// Cancelled reports whether the event was cancelled or has already fired.
func (e *Event) Cancelled() bool { return e.index < 0 && e.fn == nil }

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the simulation core: a virtual clock plus an event queue.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	rng     *rand.Rand
	stopped bool

	// Executed counts events that have run, for diagnostics and tests.
	Executed uint64
}

// NewEngine returns an engine whose clock reads zero and whose random source
// is seeded with seed (deterministic across runs).
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's seeded random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule runs fn after delay. A negative delay is an error in the caller;
// Schedule panics to surface it immediately.
func (e *Engine) Schedule(delay Duration, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return e.ScheduleAt(e.now.Add(delay), fn)
}

// ScheduleAt runs fn at the absolute virtual time at, which must not be in
// the past.
func (e *Engine) ScheduleAt(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: nil event func")
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.fn = nil
	ev.index = -1
}

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes the current Run/RunUntil call return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and returns true, or
// returns false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	e.Executed++
	fn()
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time <= deadline, then advances the clock to
// deadline (even if the queue still holds later events).
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for d of virtual time from now.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Ticker invokes fn every period until fn returns false or the engine stops.
// The first invocation happens after one period.
func (e *Engine) Ticker(period Duration, fn func() bool) {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	var tick func()
	tick = func() {
		if fn() {
			e.Schedule(period, tick)
		}
	}
	e.Schedule(period, tick)
}
