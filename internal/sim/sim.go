// Package sim provides a deterministic discrete-event simulation engine.
//
// All components of the testbed (links, NICs, switches, traffic generators)
// schedule work on an Engine. Time is a virtual nanosecond clock; the engine
// executes events in (time, birth-time, causal-rank, child-index) order — the
// tie-break is a pure function of each event's causal ancestry, so two runs
// with the same seed replay identically and the replay is independent of how
// the simulation is partitioned into islands. A single goroutine owns an
// Engine; none of the methods are safe for concurrent use except PostFrom,
// which is the cross-island mailbox path (see parallel.go).
//
// For parallel execution the engine generalizes to islands: a ParallelEngine
// owns N Engines that advance on separate goroutines under conservative
// lookahead synchronization. A standalone Engine built with NewEngine is
// exactly the single-island special case and carries no synchronization
// overhead.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors a subset of
// time.Duration so call sites read naturally (3*sim.Microsecond).
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts d to a time.Duration for formatting.
func (d Duration) Std() time.Duration { return time.Duration(d) }

func (d Duration) String() string { return d.Std().String() }

// Seconds reports t as floating-point seconds since the start of the run.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

func (t Time) String() string { return time.Duration(t).String() }

// Event lifecycle states. An event is pending while it sits in the queue and
// transitions exactly once to fired or cancelled.
const (
	statePending uint8 = iota + 1
	stateFired
	stateCancelled
)

// Event is a scheduled callback. Callbacks run exactly once.
//
// Handle validity: popped and cancelled events are recycled through a
// per-engine free list, so a retained *Event remains inspectable (Fired,
// Cancelled) only until the engine reuses it for a later Schedule. The
// supported pattern — clear the retained handle inside the callback or
// immediately after Cancel — never observes a recycled event.
type Event struct {
	at      Time
	birthAt Time // engine clock when the event was scheduled

	// rank and childIdx are the causal tie-break: rank is a hash of the
	// scheduling event's own rank and child index (a pure function of the
	// event's causal ancestry, identical for every island layout), and
	// childIdx counts the parent's children so siblings keep FIFO order.
	rank     uint64
	childIdx uint64

	index int // heap index; -1 once popped or cancelled

	// birthIsland is a last-resort tie-break, reachable only on a 64-bit
	// rank collision at identical (at, birthAt).
	birthIsland int32
	state       uint8
	fn          func()
}

// Cancelled reports whether the event was cancelled before firing. A fired
// event reports false (earlier versions conflated the two states).
func (e *Event) Cancelled() bool { return e.state == stateCancelled }

// Fired reports whether the event's callback ran (true from the moment the
// callback starts executing).
func (e *Event) Fired() bool { return e.state == stateFired }

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// eventHeap orders events by (at, birthAt, rank, childIdx). Events of one
// parent keep creation order (shared rank, rising childIdx — the classic
// FIFO tie-break); events of different parents scheduled for the same
// instant order by their parents' causal rank, which both the sequential
// and every parallel execution compute identically. This is the
// deterministic merge rule that keeps island runs byte-identical.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.birthAt != b.birthAt {
		return a.birthAt < b.birthAt
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	if a.childIdx != b.childIdx {
		return a.childIdx < b.childIdx
	}
	return a.birthIsland < b.birthIsland
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the simulation core: a virtual clock plus an event queue. It is
// either standalone (NewEngine) or one island of a ParallelEngine.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	queue   eventHeap
	rng     *rand.Rand
	stopped bool

	// Causal-rank state: execRank/execKids describe the currently executing
	// event as a parent; rootKids counts events scheduled outside any event
	// (setup code), which happens single-threaded even under a
	// ParallelEngine, where the counter is shared via par.
	executing bool
	execRank  uint64
	execKids  uint64
	rootKids  uint64

	// free recycles popped/cancelled events so the steady-state
	// schedule→fire cycle performs no allocation.
	free []*Event

	// seed is the run seed; Stream substreams derive from it (never from the
	// island), so a consumer's draws are independent of island layout.
	seed    int64
	streams map[string]*rand.Rand

	// Island identity and parallel context; zero/nil for standalone engines.
	island int32
	par    *ParallelEngine

	// mbox receives cross-island events; drained at window boundaries.
	mbox struct {
		mu  sync.Mutex
		evs []*Event
	}
	drainScratch []*Event

	// Executed counts events that have run, for diagnostics and tests.
	Executed uint64
}

// NewEngine returns a standalone engine whose clock reads zero and whose
// random source is seeded with seed (deterministic across runs).
func NewEngine(seed int64) *Engine {
	return &Engine{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's seeded random source.
//
// Deprecated for model code: draws from this shared stream interleave in
// global event order, which ties results to the island layout. Components
// that consume randomness should derive a private substream with Stream;
// gemlint's nodeterminism pass flags Rand use outside internal/sim.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Island returns the engine's island index (0 for standalone engines).
func (e *Engine) Island() int { return int(e.island) }

// splitmix64 is the SplitMix64 mixing function, used to derive independent
// seeds from the run seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 is FNV-1a over s, for hashing stream names.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Stream returns the named random substream, created on first use. The
// substream's seed depends only on the run seed and name — not on the island
// the caller lives on or on any other consumer's draws — so per-consumer
// streams make results independent of island partitioning. Names must be
// unique per consumer across the whole run (e.g. "port:tor[3]").
func (e *Engine) Stream(name string) *rand.Rand {
	if r, ok := e.streams[name]; ok {
		return r
	}
	if e.streams == nil {
		e.streams = make(map[string]*rand.Rand)
	}
	r := rand.New(rand.NewSource(int64(splitmix64(uint64(e.seed) ^ fnv64(name)))))
	e.streams[name] = r
	return r
}

// alloc returns a recycled event if one is available, else a fresh one.
// Free-listed events may have been born on any island; all fields are
// rewritten by the scheduler.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{}
}

// Schedule runs fn after delay. A negative delay is an error in the caller;
// Schedule panics to surface it immediately.
func (e *Engine) Schedule(delay Duration, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return e.ScheduleAt(e.now.Add(delay), fn)
}

// ScheduleAt runs fn at the absolute virtual time at, which must not be in
// the past.
func (e *Engine) ScheduleAt(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: nil event func")
	}
	ev := e.alloc()
	ev.at = at
	ev.birthAt = e.now
	ev.birthIsland = e.island
	ev.rank, ev.childIdx = e.nextChild()
	ev.state = statePending
	ev.fn = fn
	heap.Push(&e.queue, ev)
	return ev
}

// rootRank seeds the causal rank of events scheduled outside any event.
const rootRank = 0x8f1b5c0f2a6d3e47

// nextChild returns the causal (rank, childIdx) for a newly scheduled event:
// the executing event's rank and its next child slot, or the root rank and
// the run-global root counter during setup.
func (e *Engine) nextChild() (uint64, uint64) {
	if e.executing {
		idx := e.execKids
		e.execKids++
		return e.execRank, idx
	}
	if e.par != nil {
		idx := e.par.rootKids
		e.par.rootKids++
		return rootRank, idx
	}
	idx := e.rootKids
	e.rootKids++
	return rootRank, idx
}

// parentRank derives the rank ev passes on to its own children.
func parentRank(ev *Event) uint64 {
	return splitmix64(ev.rank ^ (ev.childIdx+1)*0x9e3779b97f4a7c15)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.state != statePending {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.fn = nil
	ev.state = stateCancelled
	e.free = append(e.free, ev)
}

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes the current Run/RunUntil call return after the current event.
// Under a ParallelEngine it requests a stop of the whole parallel run at the
// next window boundary (the engine's own island stops after the current
// event, exactly like the sequential case).
func (e *Engine) Stop() {
	e.stopped = true
	if e.par != nil {
		e.par.stopReq.Store(true)
	}
}

// Step executes the single earliest pending event and returns true, or
// returns false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	ev.state = stateFired
	e.executing = true
	e.execRank = parentRank(ev)
	e.execKids = 0
	e.Executed++
	fn()
	e.executing = false
	e.free = append(e.free, ev)
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.checkStandalone("Run")
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time <= deadline, then advances the clock to
// deadline (even if the queue still holds later events).
func (e *Engine) RunUntil(deadline Time) {
	e.checkStandalone("RunUntil")
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for d of virtual time from now.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// checkStandalone panics when an island engine is driven directly: islands
// advance only through their ParallelEngine, which owns the synchronization.
func (e *Engine) checkStandalone(method string) {
	if e.par != nil {
		panic("sim: " + method + " called on an island engine; drive the ParallelEngine instead")
	}
}

// Ticker invokes fn every period until fn returns false or the engine stops.
// The first invocation happens after one period.
func (e *Engine) Ticker(period Duration, fn func() bool) {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	var tick func()
	tick = func() {
		if fn() {
			e.Schedule(period, tick)
		}
	}
	e.Schedule(period, tick)
}
