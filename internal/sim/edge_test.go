package sim

import "testing"

// TestStopInsideFinalEvent: Stop called by the last queued event must leave
// the engine in a clean, reusable state — not wedge the stopped flag.
func TestStopInsideFinalEvent(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(10, func() { ran++; e.Stop() })
	e.Run()
	if ran != 1 {
		t.Fatalf("final event ran %d times, want 1", ran)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after stop in final event", e.Pending())
	}
	// The engine must accept and run later work.
	e.Schedule(5, func() { ran++ })
	e.Run()
	if ran != 2 {
		t.Fatalf("post-stop event did not run (ran=%d)", ran)
	}
	if e.Now() != 15 {
		t.Fatalf("clock = %v, want 15ns", e.Now())
	}
}

// TestRunUntilExactDeadlineEvent: RunUntil is inclusive — an event scheduled
// exactly at the deadline fires; one a nanosecond later stays pending.
func TestRunUntilExactDeadlineEvent(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.ScheduleAt(100, func() { fired = append(fired, e.Now()) })
	e.ScheduleAt(101, func() { fired = append(fired, e.Now()) })
	e.RunUntil(100)
	if len(fired) != 1 || fired[0] != 100 {
		t.Fatalf("fired = %v, want exactly the deadline event at 100ns", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100ns", e.Now())
	}
}

// TestCancelExecutingEvent: by the time a callback runs, its event is fired;
// Cancel from inside (or after) must be a no-op and never mark it cancelled.
func TestCancelExecutingEvent(t *testing.T) {
	e := NewEngine(1)
	var ev *Event
	ev = e.Schedule(10, func() {
		if !ev.Fired() {
			t.Error("executing event does not report Fired")
		}
		if ev.Cancelled() {
			t.Error("executing event reports Cancelled")
		}
		e.Cancel(ev)
		if ev.Cancelled() {
			t.Error("Cancel of the executing event flipped it to cancelled")
		}
	})
	e.Run()
	if !ev.Fired() || ev.Cancelled() {
		t.Fatalf("after run: Fired=%v Cancelled=%v, want true/false", ev.Fired(), ev.Cancelled())
	}
	if e.Executed != 1 {
		t.Fatalf("Executed = %d, want 1", e.Executed)
	}
}

// TestTickerStopsWithEngine: Stop halts the run with the next tick still
// queued; the ticker must not fire past the stop point.
func TestTickerStopsWithEngine(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.Ticker(10, func() bool {
		n++
		if n == 3 {
			e.Stop()
		}
		return true
	})
	e.Run()
	if n != 3 {
		t.Fatalf("ticker fired %d times, want 3 (stop after third tick)", n)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want the queued-but-unrun next tick", e.Pending())
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30ns", e.Now())
	}
}

// TestEventStates pins the Fired/Cancelled state machine: a pending event
// reports neither, a fired event reports only Fired (the old implementation
// conflated fired with cancelled), a cancelled event reports only Cancelled.
func TestEventStates(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(10, func() {})
	if ev.Fired() || ev.Cancelled() {
		t.Fatalf("pending event: Fired=%v Cancelled=%v, want false/false", ev.Fired(), ev.Cancelled())
	}
	e.Run()
	if !ev.Fired() {
		t.Fatal("fired event does not report Fired")
	}
	if ev.Cancelled() {
		t.Fatal("fired event reports Cancelled (regression: fired/cancelled conflation)")
	}

	ev2 := e.Schedule(10, func() { t.Error("cancelled event ran") })
	e.Cancel(ev2)
	if ev2.Fired() || !ev2.Cancelled() {
		t.Fatalf("cancelled event: Fired=%v Cancelled=%v, want false/true", ev2.Fired(), ev2.Cancelled())
	}
	e.Run()
	if ev2.Fired() || !ev2.Cancelled() {
		t.Fatal("cancelled event changed state after Run")
	}
}

// TestEventFreeListReuse: fired and cancelled events go back to the free
// list and the next Schedule reuses them — the steady-state cycle must not
// allocate.
func TestEventFreeListReuse(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(10, func() {})
	e.Run()
	if got := e.Schedule(10, func() {}); got != ev {
		t.Fatal("Schedule after fire did not reuse the recycled event")
	}
	e.Run()

	ev2 := e.Schedule(10, func() {})
	e.Cancel(ev2)
	if got := e.Schedule(10, func() {}); got != ev2 {
		t.Fatal("Schedule after Cancel did not reuse the recycled event")
	}
	e.Run()
}

// TestSteadyStateZeroAllocs gates the schedule→fire cycle at zero
// allocations once the free list and heap capacity are warm.
func TestSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	e := NewEngine(1)
	var fn func()
	fn = func() { e.Schedule(10, fn) }
	e.Schedule(10, fn)
	for i := 0; i < 64; i++ { // warm the free list and heap capacity
		e.Step()
	}
	if allocs := testing.AllocsPerRun(1000, func() { e.Step() }); allocs != 0 {
		t.Fatalf("steady-state Step allocates %.1f times/op, want 0", allocs)
	}
}

// BenchmarkEngineStep measures the steady-state schedule→fire cycle: one
// event pops, its callback schedules the next. Reported allocs/op must be 0.
func BenchmarkEngineStep(b *testing.B) {
	e := NewEngine(1)
	var fn func()
	fn = func() { e.Schedule(10, fn) }
	e.Schedule(10, fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineFanout stresses the heap with a 16-way fanout per fired
// event, bounded by cancelling the survivors — closer to switch/NIC traffic
// than the single-chain benchmark.
func BenchmarkEngineFanout(b *testing.B) {
	e := NewEngine(1)
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var evs [16]*Event
		for j := range evs {
			evs[j] = e.Schedule(Duration(j+1), nop)
		}
		e.Step()
		for _, ev := range evs[1:] {
			e.Cancel(ev)
		}
	}
}
