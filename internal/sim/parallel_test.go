package sim

import (
	"fmt"
	"testing"
)

// TestParallelPingPong bounces an event between two islands through the
// mailbox path and checks both clocks and the executed count.
func TestParallelPingPong(t *testing.T) {
	const look = 100 * Nanosecond
	p := NewParallelEngine(1, 2)
	p.SetLookaheadInto(0, look)
	p.SetLookaheadInto(1, look)
	a, b := p.Island(0), p.Island(1)

	var trace []string
	hops := 0
	var hop func(self, peer *Engine)
	hop = func(self, peer *Engine) {
		trace = append(trace, fmt.Sprintf("%d@%v", self.Island(), self.Now()))
		hops++
		if hops < 6 {
			peer.PostFrom(self, self.Now().Add(look), func() { hop(peer, self) })
		}
	}
	a.Schedule(10, func() { hop(a, b) })
	p.Run()

	want := []string{"0@10ns", "1@110ns", "0@210ns", "1@310ns", "0@410ns", "1@510ns"}
	if fmt.Sprint(trace) != fmt.Sprint(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	if got := p.Executed(); got != 6 {
		t.Fatalf("Executed = %d, want 6", got)
	}
	if p.Pending() != 0 {
		t.Fatalf("Pending = %d after Run", p.Pending())
	}
}

// TestParallelRunUntilClamp checks that RunUntil executes deadline-inclusive
// events, leaves later ones pending, and clamps every island clock.
func TestParallelRunUntilClamp(t *testing.T) {
	p := NewParallelEngine(7, 3)
	for i := 0; i < 3; i++ {
		p.SetLookaheadInto(i, 50*Nanosecond)
	}
	var ran []int
	p.Island(1).ScheduleAt(100, func() { ran = append(ran, 1) })
	p.Island(2).ScheduleAt(200, func() { ran = append(ran, 2) })
	p.Island(0).ScheduleAt(300, func() { ran = append(ran, 0) })
	p.RunUntil(200)
	if fmt.Sprint(ran) != "[1 2]" {
		t.Fatalf("ran = %v, want [1 2]", ran)
	}
	for i := 0; i < 3; i++ {
		if now := p.Island(i).Now(); now != 200 {
			t.Fatalf("island %d clock = %v, want 200ns", i, now)
		}
	}
	if p.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", p.Pending())
	}
	p.Run()
	if fmt.Sprint(ran) != "[1 2 0]" {
		t.Fatalf("after drain ran = %v", ran)
	}
}

// TestParallelStop stops the run from inside an island event; the run halts
// at the next window boundary and later events stay pending.
func TestParallelStop(t *testing.T) {
	p := NewParallelEngine(3, 2)
	p.SetLookaheadInto(0, 10*Nanosecond)
	p.SetLookaheadInto(1, 10*Nanosecond)
	fired := 0
	p.Island(0).ScheduleAt(50, func() { fired++; p.Island(0).Stop() })
	p.Island(1).ScheduleAt(5000, func() { fired++ })
	p.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (stop should leave the far event pending)", fired)
	}
	if p.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", p.Pending())
	}
}

// TestParallelLookaheadViolation ensures too-early cross-island posts panic
// rather than silently corrupting causality.
func TestParallelLookaheadViolation(t *testing.T) {
	p := NewParallelEngine(1, 2)
	p.SetLookaheadInto(0, 100*Nanosecond)
	p.SetLookaheadInto(1, 100*Nanosecond)
	a, b := p.Island(0), p.Island(1)
	a.ScheduleAt(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected lookahead-violation panic")
			}
			a.Stop()
		}()
		b.PostFrom(a, a.Now().Add(99), func() {})
	})
	p.Run()
}

// TestParallelStreamsIndependentOfIsland verifies that a named substream
// yields the same sequence wherever its consumer lives.
func TestParallelStreamsIndependentOfIsland(t *testing.T) {
	p := NewParallelEngine(42, 3)
	seq := func(e *Engine) [4]int {
		s := e.Stream("consumer:x")
		var out [4]int
		for i := range out {
			out[i] = s.Intn(1 << 20)
		}
		return out
	}
	ref := seq(NewEngine(42))
	for i := 0; i < 3; i++ {
		if got := seq(p.Island(i)); got != ref {
			t.Fatalf("island %d stream %v != standalone %v", i, got, ref)
		}
	}
}

// TestParallelDirectRunPanics: island engines must be driven through the
// coordinator.
func TestParallelDirectRunPanics(t *testing.T) {
	p := NewParallelEngine(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from direct Run on an island engine")
		}
	}()
	p.Island(1).Run()
}
