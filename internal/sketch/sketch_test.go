package sketch

import (
	"math"
	"testing"
	"testing/quick"
)

// apply feeds count occurrences of key into a plain counter array.
func applyCS(cs *CountSketch, counters []uint64, key uint64, count int) {
	for i := 0; i < count; i++ {
		for _, p := range cs.Positions(key) {
			counters[p.Index] = uint64(int64(counters[p.Index]) + p.Delta)
		}
	}
}

func TestCountSketchExactWhenSparse(t *testing.T) {
	cs := NewCountSketch(3, 1024)
	counters := make([]uint64, 3*1024)
	applyCS(cs, counters, 42, 100)
	if est := cs.Estimate(counters, 42); est != 100 {
		t.Fatalf("estimate = %d, want 100 (sparse sketch must be exact)", est)
	}
	if est := cs.Estimate(counters, 999); est > 100 || est < -100 {
		t.Fatalf("absent key estimate = %d, should be near 0", est)
	}
}

func TestCountSketchHeavyHitterAccuracy(t *testing.T) {
	cs := NewCountSketch(4, 2048)
	counters := make([]uint64, 4*2048)
	// 1 elephant (10k) + 500 mice (10 each).
	applyCS(cs, counters, 7, 10000)
	for k := uint64(100); k < 600; k++ {
		applyCS(cs, counters, k, 10)
	}
	est := cs.Estimate(counters, 7)
	if math.Abs(float64(est-10000)) > 500 {
		t.Fatalf("elephant estimate = %d, want ≈10000", est)
	}
}

func TestCountSketchSignsBalance(t *testing.T) {
	cs := NewCountSketch(1, 64)
	pos, neg := 0, 0
	for k := uint64(0); k < 2000; k++ {
		for _, p := range cs.Positions(k) {
			if p.Delta > 0 {
				pos++
			} else {
				neg++
			}
		}
	}
	ratio := float64(pos) / float64(pos+neg)
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("sign balance = %.2f, want ≈0.5", ratio)
	}
}

func TestCountSketchPositionsInRange(t *testing.T) {
	cs := NewCountSketch(5, 333)
	f := func(k uint64) bool {
		for r, p := range cs.Positions(k) {
			if p.Index < r*333 || p.Index >= (r+1)*333 {
				return false
			}
			if p.Delta != 1 && p.Delta != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm := NewCountMin(3, 256)
	counters := make([]uint64, 3*256)
	truth := map[uint64]uint64{}
	for k := uint64(0); k < 300; k++ {
		n := k%17 + 1
		truth[k] += n
		for i := uint64(0); i < n; i++ {
			for _, idx := range cm.Indexes(k) {
				counters[idx]++
			}
		}
	}
	for k, want := range truth {
		if got := cm.Estimate(counters, k); got < want {
			t.Fatalf("count-min underestimated key %d: %d < %d", k, got, want)
		}
	}
}

func TestHeavyHitters(t *testing.T) {
	cs := NewCountSketch(4, 4096)
	counters := make([]uint64, 4*4096)
	applyCS(cs, counters, 1, 5000)
	applyCS(cs, counters, 2, 3000)
	applyCS(cs, counters, 3, 10)
	candidates := []uint64{1, 2, 3, 4}
	hh := HeavyHitters(cs, counters, candidates, 1000)
	if len(hh) != 2 {
		t.Fatalf("heavy hitters = %+v, want 2", hh)
	}
	if hh[0].Key != 1 || hh[1].Key != 2 {
		t.Fatalf("order wrong: %+v", hh)
	}
}

func TestSeededFamiliesDiffer(t *testing.T) {
	a := NewCountSketchSeeded(3, 512, 1)
	b := NewCountSketchSeeded(3, 512, 2)
	same := 0
	for k := uint64(0); k < 100; k++ {
		pa, pb := a.Positions(k), b.Positions(k)
		for r := range pa {
			if pa[r] == pb[r] {
				same++
			}
		}
	}
	if same > 30 {
		t.Fatalf("different seeds produced %d/300 identical positions", same)
	}
}

func TestRowsAreIndependent(t *testing.T) {
	// The regression that motivated the mix64 family: with CRC-seeded
	// rows, col_r(k) differed from col_0(k) by a key-independent
	// constant. Check that the per-key differences between rows vary.
	cs := NewCountSketch(2, 1<<16)
	diffs := map[int]bool{}
	for k := uint64(0); k < 200; k++ {
		p := cs.Positions(k)
		diffs[(p[1].Index-65536)-p[0].Index] = true
	}
	if len(diffs) < 100 {
		t.Fatalf("row hashes look affinely related: %d distinct diffs", len(diffs))
	}
}
