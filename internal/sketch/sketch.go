// Package sketch implements the streaming summaries the paper's telemetry
// use case (§2.3) runs over remote counters: Count Sketch [Charikar et al.]
// and Count-Min, plus heavy-hitter extraction. The sketch's counter arrays
// live in remote DRAM via the state-store primitive; this package supplies
// the index/sign arithmetic (switch side) and the estimation (operator
// side, reading the server's memory directly).
//
// Row hashes must be mutually independent or the per-row median/min does
// nothing. CRC32 with per-row seeds is NOT independent (CRCs with different
// initial states differ by a key-independent constant), so the rows use a
// splitmix64-style finalizer over per-row random constants — the standard
// trick for simulating pairwise-independent hash families.
package sketch

import (
	"math/rand"
	"sort"
)

// mix64 is the splitmix64 finalizer: a bijective avalanche mix.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// CountSketch is the d×w Count Sketch over an abstract counter store. The
// switch computes (row, column, sign) per packet and applies signed
// increments; any uint64-indexed counter array can back it — in the paper's
// design, a remote memory region updated with Fetch-and-Add (signed deltas
// encoded two's-complement).
type CountSketch struct {
	Rows, Width int
	colSeed     []uint64
	signSeed    []uint64
}

// NewCountSketch returns a sketch with d rows of w counters, with row
// hashes derived from the given seed (deterministic).
func NewCountSketch(d, w int) *CountSketch {
	return NewCountSketchSeeded(d, w, 0x5EED)
}

// NewCountSketchSeeded fixes the hash-family seed explicitly.
func NewCountSketchSeeded(d, w int, seed int64) *CountSketch {
	rng := rand.New(rand.NewSource(seed))
	cs := &CountSketch{Rows: d, Width: w}
	for i := 0; i < d; i++ {
		cs.colSeed = append(cs.colSeed, rng.Uint64())
		cs.signSeed = append(cs.signSeed, rng.Uint64())
	}
	return cs
}

func (cs *CountSketch) hash(row int, key uint64) (col int, sign int64) {
	col = int(mix64(key^cs.colSeed[row]) % uint64(cs.Width))
	sign = 1
	if mix64(key^cs.signSeed[row])&1 == 1 {
		sign = -1
	}
	return col, sign
}

// Position is one signed counter update contributed by a key.
type Position struct {
	Index int
	Delta int64
}

// Positions returns, for a key, the (flat counter index, signed delta)
// pairs a single packet contributes. The switch data plane issues one
// Fetch-and-Add per row with the signed delta.
func (cs *CountSketch) Positions(key uint64) []Position {
	out := make([]Position, cs.Rows)
	for r := 0; r < cs.Rows; r++ {
		col, sign := cs.hash(r, key)
		out[r] = Position{Index: r*cs.Width + col, Delta: sign}
	}
	return out
}

// Estimate reads the counter store and returns the median-of-rows estimate
// for key. counters must have Rows*Width entries (two's-complement int64
// stored as uint64).
func (cs *CountSketch) Estimate(counters []uint64, key uint64) int64 {
	ests := make([]int64, 0, cs.Rows)
	for r := 0; r < cs.Rows; r++ {
		col, sign := cs.hash(r, key)
		v := int64(counters[r*cs.Width+col])
		ests = append(ests, sign*v)
	}
	sort.Slice(ests, func(i, j int) bool { return ests[i] < ests[j] })
	mid := len(ests) / 2
	if len(ests)%2 == 1 {
		return ests[mid]
	}
	return (ests[mid-1] + ests[mid]) / 2
}

// CountMin is the simpler non-negative sketch (per-row min).
type CountMin struct {
	Rows, Width int
	seed        []uint64
}

// NewCountMin returns a d×w Count-Min sketch.
func NewCountMin(d, w int) *CountMin {
	rng := rand.New(rand.NewSource(0xC03))
	cm := &CountMin{Rows: d, Width: w}
	for i := 0; i < d; i++ {
		cm.seed = append(cm.seed, rng.Uint64())
	}
	return cm
}

// Indexes returns the flat counter index per row for key.
func (cm *CountMin) Indexes(key uint64) []int {
	out := make([]int, cm.Rows)
	for r := 0; r < cm.Rows; r++ {
		out[r] = r*cm.Width + int(mix64(key^cm.seed[r])%uint64(cm.Width))
	}
	return out
}

// Estimate returns the Count-Min estimate (min over rows).
func (cm *CountMin) Estimate(counters []uint64, key uint64) uint64 {
	var est uint64 = ^uint64(0)
	for _, idx := range cm.Indexes(key) {
		if counters[idx] < est {
			est = counters[idx]
		}
	}
	return est
}

// HeavyHitter is a flow and its estimated count.
type HeavyHitter struct {
	Key      uint64
	Estimate int64
}

// HeavyHitters runs the operator-side estimation over a candidate key set
// and returns flows whose estimate exceeds threshold, sorted descending —
// "Network operators can run any estimation algorithms (e.g., heavy-hitter
// detection) on the remote counter" (§4).
func HeavyHitters(cs *CountSketch, counters []uint64, candidates []uint64, threshold int64) []HeavyHitter {
	var out []HeavyHitter
	for _, k := range candidates {
		if est := cs.Estimate(counters, k); est >= threshold {
			out = append(out, HeavyHitter{Key: k, Estimate: est})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Estimate > out[j].Estimate })
	return out
}
