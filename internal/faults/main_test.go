package faults

import (
	"testing"

	"gem/internal/wire/pooltest"
)

// TestMain audits wire.DefaultPool after the run: a test that leaks a
// pooled frame fails the whole binary (see pooltest).
func TestMain(m *testing.M) { pooltest.Main(m) }
