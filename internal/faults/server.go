package faults

import (
	"fmt"
	"sort"

	"gem/internal/sim"
)

// Server is the slice of the rnic.NIC surface the scheduler drives: crash
// (go silent), restart (resume; DRAM per the schedule's CrashLossMode), and
// slow mode (execution takes a factor longer — a server that is sick, not
// dead, the harder case for timeout-based detection).
type Server interface {
	Fail()
	Recover()
	Slow(factor float64)
}

// CrashLossMode says what happens to a server's DRAM across a
// crash/restart cycle. The zero value is CrashWipe: a real power cycle
// loses DRAM contents, and modeling anything kinder must be asked for
// explicitly (remote memory is a performance tier, not durable storage —
// the E13 no-replication baseline depends on the honest default).
type CrashLossMode int

const (
	// CrashWipe zeroes every registered memory region at restart (the
	// default). Requires the server to implement RegionWiper; a server that
	// does not is restarted with memory intact (nothing to wipe through).
	CrashWipe CrashLossMode = iota
	// CrashPreserve restarts with memory intact — a process restart or a
	// battery-backed DIMM, and the mode E9/E12's exactness invariants
	// assume.
	CrashPreserve
)

func (m CrashLossMode) String() string {
	if m == CrashPreserve {
		return "preserve"
	}
	return "wipe"
}

// RegionWiper is the optional server surface CrashWipe drives: zero all
// registered memory regions, returning the bytes cleared. rnic.NIC
// implements it.
type RegionWiper interface {
	WipeRegions() int
}

// ServerEventKind enumerates scheduled server-fault transitions.
type ServerEventKind int

const (
	// ServerCrash makes the server drop everything from At on.
	ServerCrash ServerEventKind = iota
	// ServerRestart brings a crashed server back. What its DRAM looks like
	// is the schedule's CrashLossMode: wiped by default, intact only under
	// CrashPreserve.
	ServerRestart
	// ServerSlow multiplies the server's execution time by Factor.
	ServerSlow
	// ServerRestore ends slow mode (factor back to 1).
	ServerRestore
)

func (k ServerEventKind) String() string {
	switch k {
	case ServerCrash:
		return "crash"
	case ServerRestart:
		return "restart"
	case ServerSlow:
		return "slow"
	case ServerRestore:
		return "restore"
	}
	return fmt.Sprintf("ServerEventKind(%d)", int(k))
}

// ServerEvent is one scheduled transition.
type ServerEvent struct {
	At   sim.Time
	Kind ServerEventKind
	// Factor is the slowdown multiplier for ServerSlow (ignored otherwise).
	Factor float64
}

// ServerSchedule drives a deterministic fault script against one server.
type ServerSchedule struct {
	Server Server
	Events []ServerEvent

	// Loss fixes what a restart does to the server's DRAM (default
	// CrashWipe; see CrashLossMode).
	Loss CrashLossMode

	// Applied counts events that have fired.
	Applied int64
	// Wiped accumulates bytes zeroed by CrashWipe restarts.
	Wiped int64
}

// CrashRestart is the common one-cycle script: dead during [crash, restart).
// The restart wipes DRAM unless the caller sets Loss = CrashPreserve before
// Install.
func CrashRestart(srv Server, crash, restart sim.Time) *ServerSchedule {
	return &ServerSchedule{Server: srv, Events: []ServerEvent{
		{At: crash, Kind: ServerCrash},
		{At: restart, Kind: ServerRestart},
	}}
}

// Install schedules every event on the engine. Events are applied in time
// order regardless of the order they were listed in.
func (s *ServerSchedule) Install(e *sim.Engine) {
	evs := make([]ServerEvent, len(s.Events))
	copy(evs, s.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for _, ev := range evs {
		ev := ev
		e.ScheduleAt(ev.At, func() {
			s.Applied++
			switch ev.Kind {
			case ServerCrash:
				s.Server.Fail()
			case ServerRestart:
				if s.Loss == CrashWipe {
					if w, ok := s.Server.(RegionWiper); ok {
						s.Wiped += int64(w.WipeRegions())
					}
				}
				s.Server.Recover()
			case ServerSlow:
				s.Server.Slow(ev.Factor)
			case ServerRestore:
				s.Server.Slow(1)
			}
		})
	}
}
