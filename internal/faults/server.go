package faults

import (
	"fmt"
	"sort"

	"gem/internal/sim"
)

// Server is the slice of the rnic.NIC surface the scheduler drives: crash
// (go silent), restart (resume, DRAM intact), and slow mode (execution
// takes a factor longer — a server that is sick, not dead, the harder case
// for timeout-based detection).
type Server interface {
	Fail()
	Recover()
	Slow(factor float64)
}

// ServerEventKind enumerates scheduled server-fault transitions.
type ServerEventKind int

const (
	// ServerCrash makes the server drop everything from At on.
	ServerCrash ServerEventKind = iota
	// ServerRestart brings a crashed server back (memory intact).
	ServerRestart
	// ServerSlow multiplies the server's execution time by Factor.
	ServerSlow
	// ServerRestore ends slow mode (factor back to 1).
	ServerRestore
)

func (k ServerEventKind) String() string {
	switch k {
	case ServerCrash:
		return "crash"
	case ServerRestart:
		return "restart"
	case ServerSlow:
		return "slow"
	case ServerRestore:
		return "restore"
	}
	return fmt.Sprintf("ServerEventKind(%d)", int(k))
}

// ServerEvent is one scheduled transition.
type ServerEvent struct {
	At   sim.Time
	Kind ServerEventKind
	// Factor is the slowdown multiplier for ServerSlow (ignored otherwise).
	Factor float64
}

// ServerSchedule drives a deterministic fault script against one server.
type ServerSchedule struct {
	Server Server
	Events []ServerEvent

	// Applied counts events that have fired.
	Applied int64
}

// CrashRestart is the common one-cycle script: dead during [crash, restart).
func CrashRestart(srv Server, crash, restart sim.Time) *ServerSchedule {
	return &ServerSchedule{Server: srv, Events: []ServerEvent{
		{At: crash, Kind: ServerCrash},
		{At: restart, Kind: ServerRestart},
	}}
}

// Install schedules every event on the engine. Events are applied in time
// order regardless of the order they were listed in.
func (s *ServerSchedule) Install(e *sim.Engine) {
	evs := make([]ServerEvent, len(s.Events))
	copy(evs, s.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for _, ev := range evs {
		ev := ev
		e.ScheduleAt(ev.At, func() {
			s.Applied++
			switch ev.Kind {
			case ServerCrash:
				s.Server.Fail()
			case ServerRestart:
				s.Server.Recover()
			case ServerSlow:
				s.Server.Slow(ev.Factor)
			case ServerRestore:
				s.Server.Slow(1)
			}
		})
	}
}
