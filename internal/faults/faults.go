// Package faults is the deterministic fault-injection layer for the chaos
// experiments (E9): everything §7 of the paper defers under "handling switch
// and server failures" that the happy path never exercises — bursty loss,
// bit corruption, latency jitter and spikes, scheduled link flaps, and
// server crash/slow/restart schedules.
//
// Every probabilistic model draws exclusively from the *rand.Rand the sim
// engine hands it (netsim.FaultInjector contract), so a run with a given
// seed replays byte-identically — the property the gem-bench parallel runner
// and the E9 reproducibility invariant depend on. Scheduled faults (flaps,
// server events) are pure functions of virtual time and use no randomness
// at all.
package faults

import (
	"math/rand"

	"gem/internal/sim"
)

// GilbertElliott is the classic two-state bursty loss model: a Good state
// with low loss and a Bad state with high loss, with per-frame transition
// probabilities. It reproduces the correlated loss bursts real links show
// (which Bernoulli LossRate cannot), the worst case for go-back-N recovery.
type GilbertElliott struct {
	// PGoodToBad and PBadToGood are the per-frame transition probabilities.
	PGoodToBad, PBadToGood float64
	// LossGood and LossBad are the per-frame loss probabilities in each state.
	LossGood, LossBad float64

	bad bool

	// Drops counts frames lost to the model; BadFrames counts frames that
	// transited while the link was in the Bad state.
	Drops     int64
	BadFrames int64
}

// DefaultGilbertElliott returns a model with ~1% average loss concentrated
// in short bursts: mean burst length 1/PBadToGood = 5 frames.
func DefaultGilbertElliott() *GilbertElliott {
	return &GilbertElliott{
		PGoodToBad: 0.002, PBadToGood: 0.2,
		LossGood: 0, LossBad: 0.5,
	}
}

// lose advances the chain one frame and reports whether it is lost.
func (g *GilbertElliott) lose(rng *rand.Rand) bool {
	if g.bad {
		if rng.Float64() < g.PBadToGood {
			g.bad = false
		}
	} else if rng.Float64() < g.PGoodToBad {
		g.bad = true
	}
	p := g.LossGood
	if g.bad {
		g.BadFrames++
		p = g.LossBad
	}
	if p > 0 && rng.Float64() < p {
		g.Drops++
		return true
	}
	return false
}

// Corruptor flips random bits in transiting frames. A flipped bit anywhere
// past the Ethernet header invalidates the RoCE ICRC, so the receiving NIC
// (Stats.BadICRC) or the switch dispatcher silently discards the frame —
// corruption degenerates to loss only after the integrity check actually
// runs, which is exactly the path this model exists to exercise.
type Corruptor struct {
	// Rate is the per-frame corruption probability.
	Rate float64
	// MaxBits bounds how many bits one corruption event flips (default 1).
	MaxBits int

	// Corrupted counts frames whose bits were flipped.
	Corrupted int64
}

// corrupt possibly mutates frame in place and reports whether it did.
func (c *Corruptor) corrupt(rng *rand.Rand, frame []byte) bool {
	if c.Rate <= 0 || len(frame) == 0 || rng.Float64() >= c.Rate {
		return false
	}
	bits := 1
	if c.MaxBits > 1 {
		bits = 1 + rng.Intn(c.MaxBits)
	}
	for i := 0; i < bits; i++ {
		bit := rng.Intn(len(frame) * 8)
		frame[bit/8] ^= 1 << (bit % 8)
	}
	c.Corrupted++
	return true
}

// Jitter adds delivery-latency noise: a uniform jitter on every frame plus
// occasional large spikes (e.g. a 1 ms cross-traffic stall). Delays are
// added to the link's propagation per frame, so a spike can reorder frames —
// as it does on real fabrics.
type Jitter struct {
	// Max is the uniform per-frame jitter bound (0 disables).
	Max sim.Duration
	// SpikeRate is the per-frame probability of a latency spike.
	SpikeRate float64
	// Spike is the added delay of one spike.
	Spike sim.Duration

	// Spikes counts spike events.
	Spikes int64
}

// delay returns the extra delivery delay for one frame.
func (j *Jitter) delay(rng *rand.Rand) sim.Duration {
	var d sim.Duration
	if j.Max > 0 {
		d = sim.Duration(rng.Int63n(int64(j.Max) + 1))
	}
	if j.SpikeRate > 0 && rng.Float64() < j.SpikeRate {
		d += j.Spike
		j.Spikes++
	}
	return d
}

// FlapWindow is one scheduled link outage: every frame whose serialization
// completes in [Start, End) is dropped.
type FlapWindow struct {
	Start, End sim.Time
}

// LinkFaults composes the per-link fault models into one
// netsim.FaultInjector. Any field may be nil/empty; the zero value injects
// nothing. One LinkFaults instance serves one link direction (the models
// carry state); build two for a symmetric link.
type LinkFaults struct {
	Loss    *GilbertElliott
	Corrupt *Corruptor
	Jitter  *Jitter
	Flaps   []FlapWindow

	// FlapDrops counts frames lost to flap windows.
	FlapDrops int64
}

// Transmit implements netsim.FaultInjector.
func (l *LinkFaults) Transmit(now sim.Time, rng *rand.Rand, frame []byte) (bool, sim.Duration) {
	for _, w := range l.Flaps {
		if now >= w.Start && now < w.End {
			l.FlapDrops++
			return true, 0
		}
	}
	if l.Loss != nil && l.Loss.lose(rng) {
		return true, 0
	}
	if l.Corrupt != nil {
		l.Corrupt.corrupt(rng, frame)
	}
	var extra sim.Duration
	if l.Jitter != nil {
		extra = l.Jitter.delay(rng)
	}
	return false, extra
}
