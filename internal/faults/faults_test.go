package faults

import (
	"testing"

	"gem/internal/netsim"
	"gem/internal/rnic"
	"gem/internal/sim"
	"gem/internal/wire"
)

// hostPair wires two plain hosts over one 40G link and returns the sender's
// port (install injectors on it for the a→b direction).
func hostPair(seed int64) (*netsim.Net, *netsim.Host, *netsim.Host, *netsim.Port) {
	n := netsim.New(seed)
	a := netsim.NewHost("a", 1)
	b := netsim.NewHost("b", 2)
	pa, _ := n.Connect(a, b, netsim.Link40G())
	return n, a, b, pa
}

// memRig wires a plain host to a memory-server NIC so tests can inject
// hand-built RoCE frames through a faulty link.
type memRig struct {
	net    *netsim.Net
	host   *netsim.Host
	nic    *rnic.NIC
	hp     *netsim.Port // host-side port (host→NIC injector goes here)
	region *rnic.Region
	qp     *rnic.QP
}

func newMemRig(seed int64) *memRig {
	n := netsim.New(seed)
	h := netsim.NewHost("h", 1)
	sh := netsim.NewHost("srv", 2)
	nic := rnic.New("srv-nic", sh, rnic.Config{})
	hp, np := n.Connect(h, nic, netsim.Link40G())
	nic.Bind(n.Engine, np)
	region := nic.RegisterMemory(0x10000, 4096)
	qp := nic.CreateQP(rnic.PSNTolerant)
	qp.PeerMAC, qp.PeerIP, qp.PeerQPN = h.MAC, h.IP, 0x77
	return &memRig{net: n, host: h, nic: nic, hp: hp, region: region, qp: qp}
}

func (r *memRig) faaFrame(psn uint32, delta uint64) []byte {
	p := wire.RoCEParams{
		SrcMAC: r.host.MAC, DstMAC: r.nic.MAC,
		SrcIP: r.host.IP, DstIP: r.nic.IP,
		UDPSrcPort: 0xC123, DestQP: r.qp.Number, PSN: psn,
	}
	return wire.BuildFetchAddInto(wire.DefaultPool, &p, r.region.Base, r.region.RKey, delta)
}

func sendBurst(t *testing.T, n *netsim.Net, a, b *netsim.Host, p *netsim.Port, frames int) {
	t.Helper()
	sent := 0
	n.Engine.Ticker(1*sim.Microsecond, func() bool {
		p.Send(wire.BuildDataFrame(a.MAC, b.MAC, a.IP, b.IP, 1000, 2000, 256, nil))
		sent++
		return sent < frames
	})
	n.Engine.Run()
}

func TestGilbertElliottLosesInBursts(t *testing.T) {
	n, a, b, pa := hostPair(3)
	ge := DefaultGilbertElliott()
	pa.SetFaultInjector(&LinkFaults{Loss: ge})
	const frames = 5000
	sendBurst(t, n, a, b, pa, frames)
	if ge.Drops == 0 {
		t.Fatal("no losses at ~1% average rate over 5000 frames")
	}
	if ge.BadFrames == 0 {
		t.Fatal("chain never entered the bad state")
	}
	if b.Received != frames-ge.Drops {
		t.Fatalf("received %d, sent %d, dropped %d", b.Received, frames, ge.Drops)
	}
	if pa.FaultDrops != ge.Drops {
		t.Fatalf("port counted %d fault drops, model %d", pa.FaultDrops, ge.Drops)
	}
	// Burstiness: mean burst length > 1 means drops < bad-state frames.
	if ge.Drops >= ge.BadFrames+int64(frames)/50 {
		t.Fatalf("loss not concentrated in bursts: %d drops, %d bad-state frames", ge.Drops, ge.BadFrames)
	}
}

func TestLinkFaultsDeterministicReplay(t *testing.T) {
	run := func() (int64, int64, int64, int64) {
		n, a, b, pa := hostPair(11)
		lf := &LinkFaults{
			Loss:    DefaultGilbertElliott(),
			Corrupt: &Corruptor{Rate: 0.05, MaxBits: 3},
			Jitter:  &Jitter{Max: 200 * sim.Nanosecond, SpikeRate: 0.01, Spike: 50 * sim.Microsecond},
		}
		pa.SetFaultInjector(lf)
		sendBurst(t, n, a, b, pa, 3000)
		return lf.Loss.Drops, lf.Corrupt.Corrupted, lf.Jitter.Spikes, b.Received
	}
	d1, c1, s1, r1 := run()
	d2, c2, s2, r2 := run()
	if d1 != d2 || c1 != c2 || s1 != s2 || r1 != r2 {
		t.Fatalf("same seed diverged: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			d1, c1, s1, r1, d2, c2, s2, r2)
	}
	if d1 == 0 || c1 == 0 || s1 == 0 {
		t.Fatalf("fault models idle: drops=%d corrupted=%d spikes=%d", d1, c1, s1)
	}
}

func TestCorruptionCaughtByICRC(t *testing.T) {
	r := newMemRig(5)
	cor := &Corruptor{Rate: 1}
	r.hp.SetFaultInjector(&LinkFaults{Corrupt: cor})
	const frames = 50
	for i := 0; i < frames; i++ {
		r.hp.Send(r.faaFrame(uint32(i), 1))
	}
	r.net.Engine.Run()
	if cor.Corrupted != frames {
		t.Fatalf("corrupted %d of %d frames at rate 1", cor.Corrupted, frames)
	}
	// Flips landing in ICRC-masked bytes (Ethernet header, IP TTL/TOS/checksum,
	// UDP checksum) leave the operation intact and may legitimately execute;
	// everything else must be rejected. The safety contract is therefore: every
	// executed op applied its correct delta, and at least some flips were caught.
	if r.nic.Stats.BadICRC == 0 {
		t.Fatal("no frame was rejected by the ICRC check")
	}
	if r.nic.Stats.ExecAtomics >= frames {
		t.Fatalf("all %d corrupted atomics executed", r.nic.Stats.ExecAtomics)
	}
	v, _ := r.nic.ReadCounter(r.region.RKey, r.region.Base)
	if v != uint64(r.nic.Stats.ExecAtomics) {
		t.Fatalf("counter = %d but %d atomics executed: a corrupted delta slipped past the ICRC",
			v, r.nic.Stats.ExecAtomics)
	}
}

func TestFlapWindowDropsInWindowOnly(t *testing.T) {
	n, a, b, pa := hostPair(1)
	lf := &LinkFaults{Flaps: []FlapWindow{
		{Start: sim.Time(10 * sim.Microsecond), End: sim.Time(20 * sim.Microsecond)},
	}}
	pa.SetFaultInjector(lf)
	const frames = 30 // one per µs: ~10 land in the flap
	sendBurst(t, n, a, b, pa, frames)
	if lf.FlapDrops == 0 {
		t.Fatal("flap dropped nothing")
	}
	if b.Received != frames-lf.FlapDrops {
		t.Fatalf("received %d, sent %d, flap-dropped %d", b.Received, frames, lf.FlapDrops)
	}
	if lf.FlapDrops > 12 {
		t.Fatalf("flap dropped %d frames, window only covers ~10", lf.FlapDrops)
	}
}

func TestJitterSpikeDelaysDelivery(t *testing.T) {
	n, a, b, pa := hostPair(1)
	pa.SetFaultInjector(&LinkFaults{Jitter: &Jitter{SpikeRate: 1, Spike: 1 * sim.Millisecond}})
	var arrived sim.Time
	b.Handler = func(*netsim.Port, []byte) { arrived = n.Engine.Now() }
	pa.Send(wire.BuildDataFrame(a.MAC, b.MAC, a.IP, b.IP, 1, 2, 128, nil))
	n.Engine.Run()
	if arrived < sim.Time(1*sim.Millisecond) {
		t.Fatalf("spiked frame arrived at %v, want >= 1ms", arrived)
	}
}

func TestServerScheduleCrashRestart(t *testing.T) {
	r := newMemRig(1)
	sched := CrashRestart(r.nic, sim.Time(10*sim.Microsecond), sim.Time(30*sim.Microsecond))
	sched.Loss = CrashPreserve
	sched.Install(r.net.Engine)
	send := func(at sim.Duration, psn uint32) {
		r.net.Engine.Schedule(at, func() { r.hp.Send(r.faaFrame(psn, 1)) })
	}
	send(0, 0)                  // before the crash: executes
	send(15*sim.Microsecond, 1) // during the blackout: dropped
	send(40*sim.Microsecond, 2) // after restart: executes
	r.net.Engine.Run()
	if v, _ := r.nic.ReadCounter(r.region.RKey, r.region.Base); v != 2 {
		t.Fatalf("counter = %d, want 2 (blackout op lost, memory preserved)", v)
	}
	if r.nic.Stats.DroppedWhileFailed != 1 {
		t.Fatalf("dropped-while-failed = %d, want 1", r.nic.Stats.DroppedWhileFailed)
	}
	if sched.Wiped != 0 {
		t.Fatalf("preserve-mode restart wiped %d bytes", sched.Wiped)
	}
	if r.nic.Failed() {
		t.Fatal("NIC still failed after the restart event")
	}
}

// The default restart is a power cycle: DRAM contents are gone, and the
// schedule counts the bytes it zeroed.
func TestServerScheduleCrashWipesByDefault(t *testing.T) {
	r := newMemRig(1)
	sched := CrashRestart(r.nic, sim.Time(10*sim.Microsecond), sim.Time(30*sim.Microsecond))
	sched.Install(r.net.Engine)
	send := func(at sim.Duration, psn uint32) {
		r.net.Engine.Schedule(at, func() { r.hp.Send(r.faaFrame(psn, 1)) })
	}
	send(0, 0)                  // before the crash: executes, then wiped
	send(40*sim.Microsecond, 1) // after restart: the only surviving op
	r.net.Engine.Run()
	if v, _ := r.nic.ReadCounter(r.region.RKey, r.region.Base); v != 1 {
		t.Fatalf("counter = %d, want 1 (pre-crash increment wiped)", v)
	}
	if sched.Wiped == 0 {
		t.Fatal("wipe-mode restart reported zero bytes wiped")
	}
	if sched.Loss.String() != "wipe" || CrashPreserve.String() != "preserve" {
		t.Fatalf("CrashLossMode strings wrong: %q / %q", sched.Loss, CrashPreserve)
	}
}

func TestServerScheduleSlowMode(t *testing.T) {
	measure := func(slow bool) sim.Time {
		r := newMemRig(1)
		if slow {
			(&ServerSchedule{Server: r.nic, Events: []ServerEvent{
				{At: 0, Kind: ServerSlow, Factor: 20},
			}}).Install(r.net.Engine)
		}
		var done sim.Time
		r.host.Handler = func(_ *netsim.Port, frame []byte) {
			var pkt wire.Packet
			if pkt.DecodeFromBytes(frame) == nil && pkt.BTH.Opcode == wire.OpAtomicAcknowledge {
				done = r.net.Engine.Now()
			}
		}
		r.net.Engine.Schedule(sim.Microsecond, func() { r.hp.Send(r.faaFrame(0, 1)) })
		r.net.Engine.Run()
		if v, _ := r.nic.ReadCounter(r.region.RKey, r.region.Base); v != 1 {
			t.Fatalf("slow server lost the op: counter = %d", v)
		}
		return done
	}
	fast := measure(false)
	slowed := measure(true)
	if slowed <= fast {
		t.Fatalf("slow mode did not delay the ack: %v vs %v", slowed, fast)
	}
}
