package core

import "gem/internal/sim"

// ConsistencyMode is the per-primitive state-access contract — the spectrum
// from "Relaxing state-access constraints in stateful programmable data
// planes" (PAPERS.md) made operational: under faults or overload the switch
// can keep forwarding on a possibly-stale local copy and reconcile with
// remote memory later, trading exactness for availability and throughput.
type ConsistencyMode uint8

const (
	// Strict is today's behavior: every admitted update heads for remote
	// memory as soon as credits allow, and the primitive's exactness
	// guarantee (remote + pending == admitted) holds continuously.
	Strict ConsistencyMode = iota
	// BoundedStaleness proceeds on the local copy and guarantees a flush is
	// initiated before the staleness bound is hit: when the locally
	// accumulated delta reaches MaxDelta, or the oldest unflushed update
	// turns MaxAge old, whichever comes first.
	BoundedStaleness
	// Eventual accumulates locally and reconciles opportunistically: deltas
	// flush only when a shard's window is fully idle, coalescing maximally.
	// Nothing is shed — absorbing the update stream locally is the contract.
	Eventual
)

// String names the mode for tables and diagnostics.
func (m ConsistencyMode) String() string {
	switch m {
	case Strict:
		return "strict"
	case BoundedStaleness:
		return "bounded"
	case Eventual:
		return "eventual"
	}
	return "unknown"
}

// StalenessBound parameterizes BoundedStaleness.
type StalenessBound struct {
	// MaxAge bounds how long an accumulated update may wait before the store
	// initiates its flush (an age timer fires at MaxAge after the oldest
	// unflushed update). Default 100 µs.
	MaxAge sim.Duration
	// MaxDelta bounds the locally accumulated sum before a flush is
	// initiated. Default 64.
	MaxDelta uint64
}

func (b *StalenessBound) fillDefaults() {
	if b.MaxAge <= 0 {
		b.MaxAge = 100 * sim.Microsecond
	}
	if b.MaxDelta == 0 {
		b.MaxDelta = 64
	}
}
