package core

import (
	"fmt"

	"gem/internal/core/verbs"
	"gem/internal/rnic"
	"gem/internal/sim"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// LookupAction is the fixed 8-byte action stored in each remote table entry.
// Byte 0 is the action opcode; the remaining bytes are parameters.
type LookupAction [8]byte

// Action opcodes understood by ApplyDefault.
const (
	ActNop      uint8 = 0
	ActSetDSCP  uint8 = 1 // param: byte 1 = DSCP value (the paper's demo action)
	ActSetDstIP uint8 = 2 // params: bytes 1-4 = IPv4 address (bare-metal translation)
	ActDrop     uint8 = 3
)

// SetDSCPAction builds the paper's evaluation action: rewrite the IPv4 DSCP
// field to v.
func SetDSCPAction(v uint8) LookupAction {
	return LookupAction{ActSetDSCP, v}
}

// SetDstIPAction builds the bare-metal use-case action: rewrite the IPv4
// destination (virtual IP → physical IP).
func SetDstIPAction(ip wire.IP4) LookupAction {
	return LookupAction{ActSetDstIP, ip[0], ip[1], ip[2], ip[3]}
}

// DropAction builds an explicit drop.
func DropAction() LookupAction { return LookupAction{ActDrop} }

// LookupMode selects the miss-handling design.
type LookupMode int

const (
	// LookupDeposit is the paper's primary design: WRITE the original
	// packet into the entry's packet slot, then READ back {action,
	// packet}; the switch holds no per-packet state while waiting.
	LookupDeposit LookupMode = iota
	// LookupRecirculate is the §7 alternative: READ only the action and
	// recirculate the original packet locally until the entry arrives,
	// saving the deposit bandwidth at the cost of recirculation passes.
	LookupRecirculate
)

// LookupConfig tunes the lookup-table primitive.
type LookupConfig struct {
	// Entries is the remote table size (hash-indexed, fixed entries).
	Entries int
	// MaxPktBytes is the packet slot size inside each entry.
	MaxPktBytes int
	// CacheEntries sizes the local SRAM action cache (0 disables caching).
	CacheEntries int
	// Mode selects deposit (default) or recirculation miss handling.
	Mode LookupMode
	// MaxRecircPasses bounds recirculation in LookupRecirculate mode.
	MaxRecircPasses int
	// MaxOutstandingMisses, when positive, caps in-flight remote lookups
	// with a credit window on the channel. Misses refused by a full window
	// are shed (PriorityLow) or resolved via SlowPath (PriorityHigh). 0 =
	// unbounded, the paper's original stateless behaviour.
	MaxOutstandingMisses int
	// MissLowWatermark is the window's gate-release point (see Credits).
	MissLowWatermark int
	// MissTimeout declares an unanswered remote lookup lost, releasing its
	// credit. Zero = 500 µs.
	MissTimeout sim.Duration
	// UnlimitedWindow keeps the credit accounting but never refuses — the
	// test-only unbounded-growth ablation.
	UnlimitedWindow bool
}

func (c *LookupConfig) fillDefaults() {
	if c.MaxPktBytes == 0 {
		c.MaxPktBytes = 1600
	}
	if c.MaxRecircPasses == 0 {
		c.MaxRecircPasses = 8
	}
	if c.MissTimeout == 0 {
		c.MissTimeout = 500 * sim.Microsecond
	}
}

// lookupEntryHeader is action (8) + packet length prefix (2).
const lookupEntryHeader = 10

// EntrySize returns the remote entry footprint for a config.
func (c *LookupConfig) EntrySize() int {
	return lookupEntryHeader + c.MaxPktBytes
}

// LookupStats are the primitive's observable counters.
type LookupStats struct {
	CacheHits     int64
	RemoteLookups int64 // misses that went to remote memory
	Applied       int64 // actions applied to packets
	Deposits      int64 // WRITEs of original packets (deposit mode)
	RecircPasses  int64 // recirculation passes (recirculate mode)
	RecircExpired int64 // packets dropped after MaxRecircPasses
	BadEntries    int64 // malformed remote entries
	// DegradedMisses counts cache misses handled while the table was
	// degraded (resolved by SlowPath or dropped) instead of going remote.
	DegradedMisses int64
	// ShedMisses counts PriorityLow misses dropped because the miss window
	// was full (never silent: the drop is a conscious admission decision).
	ShedMisses int64
	// CreditFallbacks counts PriorityHigh misses that could not go remote
	// (window full) and were resolved via SlowPath or dropped.
	CreditFallbacks int64
	// MissTimeouts counts remote lookups declared lost by the miss reaper.
	MissTimeouts int64
	// DegradedEntries / DegradedExits count SetDegraded edges.
	DegradedEntries int64
	DegradedExits   int64
	// ModeChanges counts SetConsistencyMode transitions between distinct
	// modes.
	ModeChanges int64
}

// LookupTable is the lookup-table primitive (§4): a match-action table in
// remote DRAM, indexed by a hash of the packet's 5-tuple, consulted from
// the data plane on a local-table miss. With N channels the entry space
// stripes over them (entry i homes on server i mod N), which is how the
// §2.2 million-entry tables outgrow a single server's region.
type LookupTable struct {
	chans []*Channel
	sw    *switchsim.Switch
	cfg   LookupConfig

	cache *switchsim.CacheTable[wire.FlowKey, LookupAction]

	// Apply is invoked with the packet and its action once resolved. The
	// default applies ActSetDSCP/ActSetDstIP/ActDrop and emits to
	// DefaultOutPort.
	Apply func(ctx *switchsim.Context, frame []byte, action LookupAction)
	// DefaultOutPort is where ApplyDefault emits processed packets.
	DefaultOutPort int

	// SlowPath resolves a miss while the table is degraded — the model of
	// punting to the switch CPU, which holds (a shard of) the mapping, when
	// remote memory is unreachable. Nil means degraded misses drop.
	SlowPath func(key wire.FlowKey) (LookupAction, bool)
	degraded bool
	mode     ConsistencyMode

	// pendingActions holds actions fetched by the recirculation variant,
	// keyed by table index, until the parked packet comes around again.
	pendingActions map[int]LookupAction

	// credits are the per-channel miss admission windows (nil when
	// MaxOutstandingMisses is 0). striped is the work queue over the
	// channels: an entry's home shard correlates READ responses to
	// in-flight lookups by request PSN (the recirculation variant
	// additionally indexes them by table index as the WQE token), releases
	// each miss credit exactly once, and reaps lookups whose answers never
	// arrived.
	credits []*Credits
	striped *verbs.StripedQP
	byQPN   map[uint32]int // channel QPN → shard, for response routing

	Stats LookupStats
}

// NewLookupTable wires the primitive to channel ch. The channel's region
// must hold cfg.Entries entries of cfg.EntrySize() bytes.
func NewLookupTable(ch *Channel, cfg LookupConfig) (*LookupTable, error) {
	return NewStripedLookupTable([]*Channel{ch}, cfg)
}

// NewStripedLookupTable wires the primitive across chans (one per memory
// server): entry i homes on chans[i mod N] at offset (i div N)*EntrySize,
// so each region must hold ceil(Entries/N) entries.
func NewStripedLookupTable(chans []*Channel, cfg LookupConfig) (*LookupTable, error) {
	cfg.fillDefaults()
	if len(chans) == 0 {
		return nil, fmt.Errorf("core: lookup table needs at least one channel")
	}
	if cfg.Entries <= 0 {
		return nil, fmt.Errorf("core: lookup table needs a positive entry count")
	}
	perShard := (cfg.Entries + len(chans) - 1) / len(chans)
	for _, ch := range chans {
		if need := perShard * cfg.EntrySize(); need > ch.Size {
			return nil, fmt.Errorf("core: lookup table needs %d bytes, region has %d", need, ch.Size)
		}
	}
	t := &LookupTable{
		chans: chans, sw: chans[0].sw, cfg: cfg,
		pendingActions: make(map[int]LookupAction),
		byQPN:          make(map[uint32]int, len(chans)),
	}
	qps := make([]*verbs.QP, len(chans))
	for i, ch := range chans {
		t.byQPN[ch.ID] = i
		var cr *Credits
		if cfg.MaxOutstandingMisses > 0 {
			cr = ch.EnsureCredits(CreditConfig{
				Window: cfg.MaxOutstandingMisses, Low: cfg.MissLowWatermark,
				Unlimited: cfg.UnlimitedWindow,
			})
			t.credits = append(t.credits, cr)
		}
		qps[i] = verbs.NewQP(ch, cr, verbs.QPConfig{
			// The recirculation variant dedups concurrent fetches per table
			// index, so the index doubles as the WQE token.
			TokenIndex: cfg.Mode == LookupRecirculate,
			Reap:       true,
			Timeout:    cfg.MissTimeout,
			OnExpired:  func(verbs.OpType, uint64) { t.Stats.MissTimeouts++ },
		})
	}
	t.striped = verbs.NewStriped(qps, verbs.StripeConfig{EntrySize: cfg.EntrySize()})
	t.Apply = t.ApplyDefault
	if cfg.CacheEntries > 0 {
		// A cached entry costs key (13B) + action (8B) ≈ 24B of SRAM.
		cache, err := switchsim.NewCacheTable[wire.FlowKey, LookupAction](
			t.sw.SRAM, fmt.Sprintf("lookup%d/cache", chans[0].ID), cfg.CacheEntries, 24)
		if err != nil {
			return nil, err
		}
		t.cache = cache
	}
	return t, nil
}

// Config returns the effective configuration.
func (t *LookupTable) Config() LookupConfig { return t.cfg }

// Channel returns the table's first (or only) RDMA channel.
func (t *LookupTable) Channel() *Channel { return t.chans[0] }

// Channels reports the table's shard count.
func (t *LookupTable) Channels() int { return len(t.chans) }

// Cache exposes the local cache (nil when disabled).
func (t *LookupTable) Cache() *switchsim.CacheTable[wire.FlowKey, LookupAction] { return t.cache }

// Credits exposes shard 0's miss admission window (nil when disabled).
func (t *LookupTable) Credits() *Credits {
	if len(t.credits) == 0 {
		return nil
	}
	return t.credits[0]
}

// Transport exposes the table's striped work queue for introspection
// (gem.Stats, per-shard tests).
func (t *LookupTable) Transport() *verbs.StripedQP { return t.striped }

// SetDegraded switches the table between normal operation and the CPU
// slow-path degraded mode (no remote traffic while degraded).
func (t *LookupTable) SetDegraded(on bool) {
	if on && !t.degraded {
		t.Stats.DegradedEntries++
	} else if !on && t.degraded {
		t.Stats.DegradedExits++
	}
	t.degraded = on
}

// Degraded reports whether the table is in degraded mode.
func (t *LookupTable) Degraded() bool { return t.degraded }

// SetConsistencyMode maps the consistency spectrum onto the table's two
// postures: Eventual serves every miss from the CPU slow path (no remote
// traffic — the local answer may be stale), while Strict and
// BoundedStaleness resolve misses remotely (the fetch itself guarantees
// freshness, so the table has no intermediate posture to bound).
func (t *LookupTable) SetConsistencyMode(m ConsistencyMode) {
	if m != t.mode {
		t.Stats.ModeChanges++
	}
	t.mode = m
	t.SetDegraded(m == Eventual)
}

// Mode reports the table's current consistency contract.
func (t *LookupTable) Mode() ConsistencyMode { return t.mode }

// Reconcile is the supervisor's recovery hook: degraded lookups kept no
// local backlog (the slow path answered them terminally), so recovery is
// just re-enabling remote resolution.
func (t *LookupTable) Reconcile() { t.SetConsistencyMode(Strict) }

// Lookup is the data-plane action: resolve the action for frame (whose
// parsed form is pkt) and apply it. Cache hits complete locally; misses go
// to remote memory with zero switch-side packet storage (deposit mode).
// Lookup is the high-priority path: it is never shed.
func (t *LookupTable) Lookup(ctx *switchsim.Context, frame []byte, pkt *wire.Packet) {
	t.LookupPrio(ctx, frame, pkt, switchsim.PriorityHigh)
}

// LookupPrio is Lookup with an admission priority. When the miss window is
// full, PriorityLow misses are shed and PriorityHigh misses fall back to
// the CPU slow path (or drop), so remote lookup load is bounded.
func (t *LookupTable) LookupPrio(ctx *switchsim.Context, frame []byte, pkt *wire.Packet, prio switchsim.Priority) {
	key := wire.FlowOf(pkt)
	if t.cache != nil {
		if action, ok := t.cache.Lookup(key); ok {
			t.Stats.CacheHits++
			t.Stats.Applied++
			t.Apply(ctx, frame, action)
			return
		}
	}
	if t.degraded {
		// Degraded mode: the memory link is down or the server unreachable,
		// so misses must not go remote. Resolve on the CPU slow path (and
		// warm the cache so recovery is graceful) or drop.
		t.Stats.DegradedMisses++
		t.slowPathOrDrop(ctx, frame, key)
		return
	}
	idx := key.Index(t.cfg.Entries)
	home := t.striped.Home(uint64(idx))
	if len(t.credits) > 0 && t.needsMissRead(idx) {
		home.ReapExpired()
		//gem:credit-ok reservation is consumed by the Post* in depositAndFetch/recircFetch below, or dropped by depositAndFetch's oversize bail
		if !home.TryReserve(verbs.OpRead) {
			if prio == switchsim.PriorityLow {
				t.Stats.ShedMisses++
				ctx.DropFrame(frame)
				return
			}
			t.Stats.CreditFallbacks++
			t.slowPathOrDrop(ctx, frame, key)
			return
		}
	}
	t.Stats.RemoteLookups++
	switch t.cfg.Mode {
	case LookupDeposit:
		t.depositAndFetch(ctx, frame, idx)
	case LookupRecirculate:
		t.recircFetch(ctx, frame, idx, 0)
	}
}

// slowPathOrDrop resolves a miss that must not go remote: via the CPU slow
// path when available (warming the cache), dropping otherwise.
func (t *LookupTable) slowPathOrDrop(ctx *switchsim.Context, frame []byte, key wire.FlowKey) {
	if t.SlowPath != nil {
		if action, ok := t.SlowPath(key); ok {
			if t.cache != nil {
				t.cache.Put(key, action)
			}
			t.Stats.Applied++
			t.Apply(ctx, frame, action)
			return
		}
	}
	ctx.DropFrame(frame)
}

// needsMissRead reports whether resolving a miss on idx would issue a new
// remote READ right now (deposit mode always does; recirculation only when
// no action is pending and no fetch is already in flight).
func (t *LookupTable) needsMissRead(idx int) bool {
	if t.cfg.Mode == LookupRecirculate {
		if _, ok := t.pendingActions[idx]; ok {
			return false
		}
		return !t.striped.TokenPending(uint64(idx))
	}
	return true
}

// depositAndFetch bounces the original packet through the remote entry:
// WRITE it into the packet slot, then READ the whole {action, packet} entry.
func (t *LookupTable) depositAndFetch(ctx *switchsim.Context, frame []byte, idx int) {
	if len(frame) > t.cfg.MaxPktBytes {
		t.Stats.BadEntries++
		t.striped.Home(uint64(idx)).DropReservation()
		ctx.Drop()
		return
	}
	// Scratch deposit buffer: the WRITE post copies it into the request
	// frame, so it goes straight back to the pool.
	deposit := wire.DefaultPool.Get(2 + len(frame))
	deposit[0] = byte(len(frame) >> 8)
	deposit[1] = byte(len(frame))
	copy(deposit[2:], frame)
	// The deposit lands after the 8-byte action field. It is fire-and-forget:
	// a refused WRITE leaves a stale entry that the fetch-side length check
	// catches (BadEntries) — no retry state to keep on the switch.
	//gem:post-ok refused deposit self-heals via the fetch-side BadEntries check
	t.striped.PostWrite(uint64(idx), 8, deposit)
	wire.DefaultPool.Put(deposit)
	t.Stats.Deposits++
	// CreditLoose: the fetch goes out whether or not a credit is held — the
	// switch stores nothing per packet, the window merely meters misses. If
	// the READ was refused downstream (egress full), the reaper releases the
	// credit after MissTimeout — self-healing either way.
	n := t.cfg.EntrySize()
	ch := t.chans[t.striped.ShardOf(uint64(idx))]
	//gem:post-ok loose-mode fetch: a refusal is metered by the reaper, not handled here
	t.striped.PostRead(uint64(idx), n, ch.RespPackets(n), verbs.CreditLoose)
	ctx.Drop() // original is gone: it lives in remote memory now
}

// recircFetch implements the §7 alternative: fetch only the 8-byte action
// and park the packet on the recirculation path meanwhile.
func (t *LookupTable) recircFetch(ctx *switchsim.Context, frame []byte, idx, pass int) {
	if action, ok := t.pendingActions[idx]; ok {
		delete(t.pendingActions, idx)
		t.Stats.Applied++
		t.Apply(ctx, frame, action)
		return
	}
	if pass >= t.cfg.MaxRecircPasses {
		t.Stats.RecircExpired++
		ctx.Drop()
		return
	}
	if !t.striped.TokenPending(uint64(idx)) {
		// CreditAdmit: consume the admission reservation (or take a fresh
		// credit on a re-issue after a reap); a refusal skips the fetch and
		// the parked packet simply comes around again.
		//gem:post-ok refusal skips the fetch; the recirculating packet retries it
		t.striped.PostRead(uint64(idx), 8, 1, verbs.CreditAdmit)
	}
	t.Stats.RecircPasses++
	t.sw.Stats.Recirculated++
	// The frame is parked for the continuation below: the switch must not
	// recycle it when this pass ends.
	ctx.Retain()
	t.sw.Engine.Schedule(t.sw.Cfg.RecirculationLatency, func() {
		// The packet re-enters the pipeline and reaches this primitive
		// again; modelled as a direct continuation with the pass count a
		// real program would carry in recirculation metadata.
		c := t.sw.NewContext(switchsim.RecirculationPort, frame)
		t.recircFetchRecirced(c, frame, idx, pass+1)
		// If the continuation neither emitted nor re-parked the frame
		// (drop action, expiry), recycle it here.
		c.Finish()
	})
}

// recircFetchRecirced is the recirculated continuation; split out so tests
// can count passes distinctly.
func (t *LookupTable) recircFetchRecirced(ctx *switchsim.Context, frame []byte, idx, pass int) {
	t.recircFetch(ctx, frame, idx, pass)
}

// HandleResponse consumes READ responses from the remote table.
func (t *LookupTable) HandleResponse(ctx *switchsim.Context, pkt *wire.Packet) {
	if !pkt.BTH.Opcode.IsReadResponse() {
		ctx.Drop() // ACKs ignored by the prototype
		return
	}
	// First/Only response packets echo the request PSN; complete the miss
	// the moment the answer lands, well-formed or not, releasing its credit.
	// Middle/Last continuation packets (multi-packet deposit responses) and
	// answers to already-reaped lookups simply miss the work queue. The
	// echoed destination QPN routes the completion to its shard; a
	// single-channel table tolerates responses from a rebound-away channel,
	// a striped one skips completion for QPNs it no longer owns (PSN spaces
	// are per-channel, so a cross-shard match would be a false retire).
	var cqe verbs.CQE
	matched := false
	if si, ok := t.byQPN[pkt.BTH.DestQP]; ok {
		cqe, matched = t.striped.Shard(si).CompleteExact(pkt.BTH.PSN)
	} else if len(t.chans) == 1 {
		cqe, matched = t.striped.Shard(0).CompleteExact(pkt.BTH.PSN)
	}
	payload := pkt.Payload
	if len(payload) < 8 {
		t.Stats.BadEntries++
		ctx.Drop()
		return
	}
	var action LookupAction
	copy(action[:], payload[:8])

	if t.cfg.Mode == LookupRecirculate {
		// Action-only fetch: the completed WQE's token is the table index
		// the fetch was issued for.
		if matched {
			t.pendingActions[int(cqe.Token)] = action
		}
		ctx.Drop()
		return
	}

	if len(payload) < lookupEntryHeader {
		t.Stats.BadEntries++
		ctx.Drop()
		return
	}
	plen := int(payload[8])<<8 | int(payload[9])
	if plen <= 0 || lookupEntryHeader+plen > len(payload) {
		t.Stats.BadEntries++
		ctx.Drop()
		return
	}
	// Copy-on-retain: payload aliases the response frame, which is recycled
	// when this pass ends; the bounced original outlives it (Emit).
	orig := wire.DefaultPool.Get(plen)
	copy(orig, payload[lookupEntryHeader:lookupEntryHeader+plen])
	// Re-parse the bounced original to recover its flow key for caching.
	var inner wire.Packet
	if err := inner.DecodeFromBytes(orig); err != nil {
		t.Stats.BadEntries++
		wire.DefaultPool.Put(orig) // bounced original is malformed: recycle it
		ctx.Drop()
		return
	}
	if t.cache != nil {
		t.cache.Put(wire.FlowOf(&inner), action)
	}
	t.Stats.Applied++
	t.Apply(ctx, orig, action)
}

// ApplyDefault interprets the built-in action opcodes and emits to
// DefaultOutPort.
func (t *LookupTable) ApplyDefault(ctx *switchsim.Context, frame []byte, action LookupAction) {
	if !t.ApplyActionOnly(frame, action) {
		// frame may be the bounced original (deposit mode), not the
		// ingress buffer: DropFrame recycles whichever it is correctly.
		ctx.DropFrame(frame)
		return
	}
	ctx.Emit(t.DefaultOutPort, frame)
}

// ApplyActionOnly mutates frame per the built-in action opcodes, without a
// forwarding decision. It reports false when the action is a drop.
func (t *LookupTable) ApplyActionOnly(frame []byte, action LookupAction) bool {
	switch action[0] {
	case ActDrop:
		return false
	case ActSetDSCP:
		rewriteDSCP(frame, action[1])
	case ActSetDstIP:
		rewriteDstIP(frame, wire.IP4{action[1], action[2], action[3], action[4]})
	}
	return true
}

// rewriteDSCP patches the IPv4 DSCP field in place and fixes the checksum.
func rewriteDSCP(frame []byte, dscp uint8) {
	if len(frame) < wire.EthernetLen+wire.IPv4Len {
		return
	}
	ip := frame[wire.EthernetLen:]
	ip[1] = dscp<<2 | ip[1]&0x3
	reChecksumIPv4(ip)
}

// rewriteDstIP patches the IPv4 destination in place and fixes the checksum.
func rewriteDstIP(frame []byte, dst wire.IP4) {
	if len(frame) < wire.EthernetLen+wire.IPv4Len {
		return
	}
	ip := frame[wire.EthernetLen:]
	copy(ip[16:20], dst[:])
	reChecksumIPv4(ip)
}

func reChecksumIPv4(ip []byte) {
	var h wire.IPv4
	if err := h.DecodeFromBytes(ip); err == nil {
		h.Put(ip)
	}
}

// PopulateLookupEntry writes an action into entry idx of the remote table's
// backing region — the server-side (control-plane, init-time) population of
// the sharded mapping table described in §2.2.
func PopulateLookupEntry(region *rnic.Region, cfg LookupConfig, idx int, action LookupAction) error {
	cfg.fillDefaults()
	base := idx * cfg.EntrySize()
	if idx < 0 || base+8 > len(region.Data) {
		return fmt.Errorf("core: lookup entry %d outside region", idx)
	}
	copy(region.Data[base:base+8], action[:])
	return nil
}

// PopulateStripedLookupEntry writes an action into global entry idx of a
// striped table, placing it by the same modulo rule the transport uses:
// regions[idx mod N] at offset (idx div N)*EntrySize.
func PopulateStripedLookupEntry(regions []*rnic.Region, cfg LookupConfig, idx int, action LookupAction) error {
	cfg.fillDefaults()
	if len(regions) == 0 || idx < 0 {
		return fmt.Errorf("core: lookup entry %d outside region", idx)
	}
	region := regions[idx%len(regions)]
	base := (idx / len(regions)) * cfg.EntrySize()
	if base+8 > len(region.Data) {
		return fmt.Errorf("core: lookup entry %d outside region", idx)
	}
	copy(region.Data[base:base+8], action[:])
	return nil
}
