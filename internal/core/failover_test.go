package core

import (
	"testing"

	"gem/internal/rnic"
	"gem/internal/sim"
	"gem/internal/switchsim"
)

// failoverBed: two memory servers, a state store on the primary, a
// failover group across both.
func failoverBed(t *testing.T) (*bed, *StateStore, *Failover) {
	t.Helper()
	b := newBedN(t, 1, 2, switchsim.Config{}, rnic.Config{})
	primary := b.establishOn(t, 0, 1<<16, rnic.PSNTolerant, false)
	standby := b.establishOn(t, 1, 1<<16, rnic.PSNTolerant, false)
	ss, err := NewStateStore(primary, StateStoreConfig{Counters: 64})
	if err != nil {
		t.Fatal(err)
	}
	fo, err := NewFailover([]*Channel{primary, standby}, ss)
	if err != nil {
		t.Fatal(err)
	}
	fo.OnFailover = func(_, newCh *Channel) { ss.Rebind(newCh) }
	fo.RegisterWith(b.disp)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if !b.disp.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	fo.Start()
	// Stop heartbeating before the bed's cleanup drains the engine — an
	// active ticker would keep the event queue non-empty forever.
	t.Cleanup(fo.Stop)
	return b, ss, fo
}

func TestFailoverNeedsStandby(t *testing.T) {
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 1024, rnic.PSNTolerant, false)
	if _, err := NewFailover([]*Channel{ch}, nil); err == nil {
		t.Fatal("single-channel failover accepted")
	}
}

func TestHeartbeatsFlowWhenHealthy(t *testing.T) {
	b, _, fo := failoverBed(t)
	b.net.Engine.RunFor(2 * sim.Millisecond)
	if fo.HeartbeatsSent < 15 {
		t.Fatalf("heartbeats sent = %d", fo.HeartbeatsSent)
	}
	if fo.HeartbeatsAcked < fo.HeartbeatsSent-2 {
		t.Fatalf("acked %d of %d heartbeats", fo.HeartbeatsAcked, fo.HeartbeatsSent)
	}
	if fo.Failovers != 0 {
		t.Fatal("spurious failover on a healthy server")
	}
}

func TestFailoverOnServerCrash(t *testing.T) {
	b, ss, fo := failoverBed(t)
	// Healthy phase: counts land on the primary.
	for i := 0; i < 50; i++ {
		ss.Update(3, 1)
	}
	b.net.Engine.RunFor(1 * sim.Millisecond)
	vPrimary, _ := b.memNICs[0].ReadCounter(fo.channels[0].RKey, fo.channels[0].Base+3*8)
	if vPrimary != 50 {
		t.Fatalf("primary counter = %d, want 50", vPrimary)
	}

	// Crash the primary.
	b.memNICs[0].Fail()
	b.net.Engine.RunFor(2 * sim.Millisecond)
	if fo.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", fo.Failovers)
	}
	if fo.Active() != fo.channels[1] {
		t.Fatal("active channel not the standby")
	}
	// Detection within (threshold+1) heartbeat intervals.
	maxDetect := sim.Duration(fo.MissThreshold+1) * fo.HeartbeatInterval
	if fo.LastDetection > maxDetect {
		t.Fatalf("detection took %v, budget %v", fo.LastDetection, maxDetect)
	}

	// Post-failover: updates land on the standby.
	for i := 0; i < 30; i++ {
		ss.Update(3, 1)
	}
	b.net.Engine.RunFor(1 * sim.Millisecond)
	vStandby, _ := b.memNICs[1].ReadCounter(fo.channels[1].RKey, fo.channels[1].Base+3*8)
	if vStandby != 30 {
		t.Fatalf("standby counter = %d, want 30", vStandby)
	}
	if b.memHosts[0].CPUOps != 0 || b.memHosts[1].CPUOps != 0 {
		t.Fatal("failover burned server CPU")
	}
}

func TestFailoverPreservesPendingUpdates(t *testing.T) {
	b, ss, fo := failoverBed(t)
	b.memNICs[0].Fail()
	// Updates during the blackout accumulate locally (outstanding slots
	// reap via timeout) and must flush to the standby after failover.
	for i := 0; i < 100; i++ {
		ss.Update(7, 1)
	}
	b.net.Engine.RunFor(3 * sim.Millisecond)
	if fo.Failovers != 1 {
		t.Fatalf("failovers = %d", fo.Failovers)
	}
	ss.Update(7, 1) // nudge a flush after rebinding
	b.net.Engine.RunFor(2 * sim.Millisecond)
	vStandby, _ := b.memNICs[1].ReadCounter(fo.channels[1].RKey, fo.channels[1].Base+7*8)
	lostInFlight := uint64(101) - vStandby - ss.PendingTotal()
	// Only updates that were already in flight as FAAs at crash time may
	// be lost; everything accumulated locally must survive the failover.
	if lostInFlight > uint64(ss.Config().MaxOutstanding)+uint64(ss.Stats.TimedOut) {
		t.Fatalf("lost %d updates across failover (standby=%d pending=%d)",
			lostInFlight, vStandby, ss.PendingTotal())
	}
	if vStandby == 0 {
		t.Fatal("nothing flushed to the standby")
	}
}

func TestFailoverExhaustsStandbys(t *testing.T) {
	b, _, fo := failoverBed(t)
	b.memNICs[0].Fail()
	b.memNICs[1].Fail()
	b.net.Engine.RunFor(5 * sim.Millisecond)
	if fo.Failovers != 1 {
		t.Fatalf("failovers = %d, want exactly 1 (no standby after the last)", fo.Failovers)
	}
	if fo.Standbys() != 0 {
		t.Fatalf("standbys = %d", fo.Standbys())
	}
}

func TestFailedNICDropsAndRecovers(t *testing.T) {
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 4096, rnic.PSNTolerant, false)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) { ctx.Drop() })
	b.memNIC.Fail()
	ch.FetchAdd(0, 5)
	b.net.Engine.Run()
	if v, _ := b.memNIC.ReadCounter(ch.RKey, ch.Base); v != 0 {
		t.Fatal("crashed NIC executed an op")
	}
	if b.memNIC.Stats.DroppedWhileFailed == 0 {
		t.Fatal("drop not counted")
	}
	b.memNIC.Recover()
	ch.FetchAdd(0, 5)
	b.net.Engine.Run()
	if v, _ := b.memNIC.ReadCounter(ch.RKey, ch.Base); v != 5 {
		t.Fatalf("recovered NIC counter = %d, want 5", v)
	}
}
