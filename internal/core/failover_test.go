package core

import (
	"testing"

	"gem/internal/rnic"
	"gem/internal/sim"
	"gem/internal/switchsim"
)

// failoverBed: two memory servers, a state store on the primary, a
// failover group across both.
func failoverBed(t *testing.T) (*bed, *StateStore, *Failover) {
	t.Helper()
	b := newBedN(t, 1, 2, switchsim.Config{}, rnic.Config{})
	primary := b.establishOn(t, 0, 1<<16, rnic.PSNTolerant, false)
	standby := b.establishOn(t, 1, 1<<16, rnic.PSNTolerant, false)
	ss, err := NewStateStore(primary, StateStoreConfig{Counters: 64})
	if err != nil {
		t.Fatal(err)
	}
	fo, err := NewFailover([]*Channel{primary, standby}, ss)
	if err != nil {
		t.Fatal(err)
	}
	fo.OnFailover = func(_, newCh *Channel) { ss.Rebind(newCh) }
	fo.RegisterWith(b.disp)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if !b.disp.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	fo.Start()
	// Stop heartbeating before the bed's cleanup drains the engine — an
	// active ticker would keep the event queue non-empty forever.
	t.Cleanup(fo.Stop)
	return b, ss, fo
}

func TestFailoverNeedsStandby(t *testing.T) {
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 1024, rnic.PSNTolerant, false)
	if _, err := NewFailover([]*Channel{ch}, nil); err == nil {
		t.Fatal("single-channel failover accepted")
	}
}

func TestHeartbeatsFlowWhenHealthy(t *testing.T) {
	b, _, fo := failoverBed(t)
	b.net.Engine.RunFor(2 * sim.Millisecond)
	if fo.HeartbeatsSent < 15 {
		t.Fatalf("heartbeats sent = %d", fo.HeartbeatsSent)
	}
	if fo.HeartbeatsAcked < fo.HeartbeatsSent-2 {
		t.Fatalf("acked %d of %d heartbeats", fo.HeartbeatsAcked, fo.HeartbeatsSent)
	}
	if fo.Failovers != 0 {
		t.Fatal("spurious failover on a healthy server")
	}
}

func TestFailoverOnServerCrash(t *testing.T) {
	b, ss, fo := failoverBed(t)
	// Healthy phase: counts land on the primary.
	for i := 0; i < 50; i++ {
		ss.Update(3, 1)
	}
	b.net.Engine.RunFor(1 * sim.Millisecond)
	vPrimary, _ := b.memNICs[0].ReadCounter(fo.members[0].ch.RKey, fo.members[0].ch.Base+3*8)
	if vPrimary != 50 {
		t.Fatalf("primary counter = %d, want 50", vPrimary)
	}

	// Crash the primary.
	b.memNICs[0].Fail()
	b.net.Engine.RunFor(2 * sim.Millisecond)
	if fo.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", fo.Failovers)
	}
	if fo.Active() != fo.members[1].ch {
		t.Fatal("active channel not the standby")
	}
	// Detection within (threshold+1) heartbeat intervals.
	maxDetect := sim.Duration(fo.MissThreshold+1) * fo.HeartbeatInterval
	if fo.LastDetection > maxDetect {
		t.Fatalf("detection took %v, budget %v", fo.LastDetection, maxDetect)
	}

	// Post-failover: updates land on the standby.
	for i := 0; i < 30; i++ {
		ss.Update(3, 1)
	}
	b.net.Engine.RunFor(1 * sim.Millisecond)
	vStandby, _ := b.memNICs[1].ReadCounter(fo.members[1].ch.RKey, fo.members[1].ch.Base+3*8)
	if vStandby != 30 {
		t.Fatalf("standby counter = %d, want 30", vStandby)
	}
	if b.memHosts[0].CPUOps != 0 || b.memHosts[1].CPUOps != 0 {
		t.Fatal("failover burned server CPU")
	}
}

func TestFailoverPreservesPendingUpdates(t *testing.T) {
	b, ss, fo := failoverBed(t)
	b.memNICs[0].Fail()
	// Updates during the blackout accumulate locally (outstanding slots
	// reap via timeout) and must flush to the standby after failover.
	for i := 0; i < 100; i++ {
		ss.Update(7, 1)
	}
	b.net.Engine.RunFor(3 * sim.Millisecond)
	if fo.Failovers != 1 {
		t.Fatalf("failovers = %d", fo.Failovers)
	}
	ss.Update(7, 1) // nudge a flush after rebinding
	b.net.Engine.RunFor(2 * sim.Millisecond)
	vStandby, _ := b.memNICs[1].ReadCounter(fo.members[1].ch.RKey, fo.members[1].ch.Base+7*8)
	lostInFlight := uint64(101) - vStandby - ss.PendingTotal()
	// Only updates that were already in flight as FAAs at crash time may
	// be lost; everything accumulated locally must survive the failover.
	if lostInFlight > uint64(ss.Config().MaxOutstanding)+uint64(ss.Stats.TimedOut) {
		t.Fatalf("lost %d updates across failover (standby=%d pending=%d)",
			lostInFlight, vStandby, ss.PendingTotal())
	}
	if vStandby == 0 {
		t.Fatal("nothing flushed to the standby")
	}
}

func TestFailoverExhaustsStandbys(t *testing.T) {
	b, _, fo := failoverBed(t)
	b.memNICs[0].Fail()
	b.memNICs[1].Fail()
	b.net.Engine.RunFor(5 * sim.Millisecond)
	if fo.Failovers != 1 {
		t.Fatalf("failovers = %d, want exactly 1 (no standby after the last)", fo.Failovers)
	}
	if fo.Standbys() != 0 {
		t.Fatalf("standbys = %d", fo.Standbys())
	}
}

func TestFailedNICDropsAndRecovers(t *testing.T) {
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 4096, rnic.PSNTolerant, false)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) { ctx.Drop() })
	b.memNIC.Fail()
	ch.FetchAdd(0, 5)
	b.net.Engine.Run()
	if v, _ := b.memNIC.ReadCounter(ch.RKey, ch.Base); v != 0 {
		t.Fatal("crashed NIC executed an op")
	}
	if b.memNIC.Stats.DroppedWhileFailed == 0 {
		t.Fatal("drop not counted")
	}
	b.memNIC.Recover()
	ch.FetchAdd(0, 5)
	b.net.Engine.Run()
	if v, _ := b.memNIC.ReadCounter(ch.RKey, ch.Base); v != 5 {
		t.Fatalf("recovered NIC counter = %d, want 5", v)
	}
}

// reliableFailoverBed: two memory servers with strict AckReq channels, a
// retransmitter + state store on the primary, and a failover group over
// separate tolerant probe channels (an untracked lost probe on a strict QP
// would wedge its PSN stream).
func reliableFailoverBed(t *testing.T) (*bed, *StateStore, *Retransmitter, *Failover, [2]*Channel) {
	t.Helper()
	b := newBedN(t, 1, 2, switchsim.Config{}, rnic.Config{})
	probeP := b.establishOn(t, 0, 1<<16, rnic.PSNTolerant, false)
	probeS := b.establishOn(t, 1, 1<<16, rnic.PSNTolerant, false)
	dataP, err := b.ctrl.Establish(ChannelSpec{
		SwitchPort: 1, NIC: b.memNICs[0],
		RegionBase: 0x200000, RegionSize: 1 << 16,
		Mode: rnic.PSNStrict, AckReq: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dataS, err := b.ctrl.Establish(ChannelSpec{
		SwitchPort: 2, NIC: b.memNICs[1],
		RegionBase: 0x200000, RegionSize: 1 << 16,
		Mode: rnic.PSNStrict, AckReq: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRetransmitter(dataP, 8)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewStateStore(dataP, StateStoreConfig{Counters: 64})
	if err != nil {
		t.Fatal(err)
	}
	ss.SetRetransmitter(rt)
	rt.Inner = ss
	fo, err := NewFailover([]*Channel{probeP, probeS}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dataOf := map[*Channel]*Channel{probeP: dataP, probeS: dataS}
	fo.OnFailover = func(_, newProbe *Channel) {
		data := dataOf[newProbe]
		rt.Retarget(data)
		ss.Rebind(data)
	}
	fo.RegisterWith(b.disp)
	b.disp.Register(dataP, rt)
	b.disp.Register(dataS, rt)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if !b.disp.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	fo.Start()
	t.Cleanup(fo.Stop)
	return b, ss, rt, fo, [2]*Channel{dataP, dataS}
}

func TestFailoverRetargetsRetransmitWindow(t *testing.T) {
	// Failover racing in-flight retransmissions: the primary dies with the
	// retransmit window full, the retransmitter keeps resending into the
	// dead server until the heartbeat misses trigger failover, and Retarget
	// must move every tracked master to the standby's channel without
	// leaking or double-releasing the frames (the package TestMain audits
	// the pool for exactly that).
	b, ss, rt, fo, data := reliableFailoverBed(t)
	b.memNICs[0].Fail()
	const n = 20
	for i := 0; i < n; i++ {
		ss.Update(i%4, 1)
	}
	if rt.Unacked() != rt.Window {
		t.Fatalf("window not full at crash: %d of %d", rt.Unacked(), rt.Window)
	}
	b.net.Engine.RunFor(2 * sim.Millisecond)
	if fo.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", fo.Failovers)
	}
	if rt.Retargeted != int64(rt.Window) {
		t.Fatalf("retargeted %d of %d tracked requests", rt.Retargeted, rt.Window)
	}
	if rt.Unacked() != 0 {
		t.Fatalf("unacked = %d after failover drain", rt.Unacked())
	}
	// The dead primary executed nothing, so despite retargeting being
	// at-least-once in general, here every update lands exactly once.
	var total uint64
	for i := 0; i < 4; i++ {
		v, _ := b.memNICs[1].ReadCounter(data[1].RKey, data[1].Base+uint64(i*8))
		total += v
	}
	if total+ss.PendingTotal() != n {
		t.Fatalf("standby total %d + pending %d != %d issued", total, ss.PendingTotal(), n)
	}
}

func TestFailbackToRecoveredPrimary(t *testing.T) {
	// Regression: unanswered probes from the outage linger in the member's
	// outstanding set; liveness must judge only the newest probe, or a
	// recovered primary looks dead forever and failback never happens.
	b, ss, _, fo, data := reliableFailoverBed(t)
	b.memNICs[0].Fail()
	ss.Update(0, 1)
	b.net.Engine.RunFor(2 * sim.Millisecond)
	if fo.Failovers != 1 || fo.Failbacks != 0 {
		t.Fatalf("after crash: %d failovers, %d failbacks", fo.Failovers, fo.Failbacks)
	}
	b.memNICs[0].Recover()
	b.net.Engine.RunFor(2 * sim.Millisecond)
	if fo.Failbacks != 1 {
		t.Fatalf("failbacks = %d, want 1 (%d probes, %d acked)",
			fo.Failbacks, fo.FailbackProbes, fo.FailbackAcks)
	}
	if fo.Active() != fo.members[0].ch {
		t.Fatal("active member is not the recovered primary")
	}
	// Updates after failback land on the primary again.
	ss.Update(1, 1)
	b.net.Engine.RunFor(1 * sim.Millisecond)
	if v, _ := b.memNICs[0].ReadCounter(data[0].RKey, data[0].Base+8); v != 1 {
		t.Fatalf("post-failback update did not reach the primary (got %d)", v)
	}
}

func TestForceFailoverAfterExhaustedIsTypedNoop(t *testing.T) {
	// Regression: once every member is down, a forced failover must not
	// rebind onto the dead primary "because it is next in rotation". It is a
	// counted no-op with a typed CQFailoverExhausted completion — the
	// supervisor hears about the dead end instead of the store silently
	// posting into a black hole.
	b, ss, fo := failoverBed(t)
	cq := ss.Transport().Shard(0)
	fo.CQ = cq
	b.memNICs[0].Fail()
	b.memNICs[1].Fail()
	b.net.Engine.RunFor(5 * sim.Millisecond)
	if !fo.Exhausted {
		t.Fatalf("group not exhausted: %d failovers, %d standbys", fo.Failovers, fo.Standbys())
	}
	// Entering Exhausted already emitted one typed completion.
	if got := cq.Stats.Errors.FailoverExhausted; got != 1 {
		t.Fatalf("exhaustion completions = %d, want 1", got)
	}
	active, failovers := fo.Active(), fo.Failovers
	for i := 1; i <= 2; i++ {
		if fo.ForceFailover() {
			t.Fatal("forced failover on an exhausted group reported a switch")
		}
		if fo.ForcedWhileExhausted != int64(i) {
			t.Fatalf("ForcedWhileExhausted = %d, want %d", fo.ForcedWhileExhausted, i)
		}
		if got := cq.Stats.Errors.FailoverExhausted; got != int64(1+i) {
			t.Fatalf("typed completions = %d, want %d", got, 1+i)
		}
	}
	if fo.Active() != active || fo.Failovers != failovers {
		t.Fatal("exhausted force-failover moved the active member")
	}
}
