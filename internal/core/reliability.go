package core

import (
	"fmt"

	"gem/internal/core/verbs"
	"gem/internal/sim"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// Retransmitter is the §7 reliability extension: "on the switch side, one
// can implement parsing and handling of RDMA ACKs/NACKs to make certain
// remote memory reliable, e.g., in the remote counter case."
//
// It wraps a channel whose QP runs in strict PSN mode with AckReq set,
// keeps a copy of every unacknowledged request frame in switch buffer
// memory, and retransmits go-back-N style on a NAK or a timeout. Combined
// with the RNIC's atomic replay cache this makes remote counters exact even
// across packet loss on the memory link (experiment E8c).
//
// Recovery is bounded and adaptive: with EnableAdaptiveRTO the retransmit
// timeout tracks the measured RTT (RFC 6298 estimator, Karn's exclusion of
// retransmitted samples) and backs off exponentially up to MaxRTO across
// consecutive no-progress timeout rounds. MaxRetries caps those rounds;
// when the budget is spent the retransmitter goes quiet and fires
// OnExhausted exactly once, so a Failover can escalate instead of the
// switch hammering a dead server forever (experiment E9).
type Retransmitter struct {
	ch *Channel
	sw *switchsim.Switch

	// Timeout before unacknowledged requests are resent. With AdaptiveRTO
	// it only seeds the timer until the first RTT sample lands.
	Timeout sim.Duration
	// Window caps unacknowledged requests in flight.
	Window int

	// AdaptiveRTO switches the retransmit timer from fixed Timeout to the
	// RFC 6298 estimator with exponential backoff. Off by default so
	// existing users keep byte-identical schedules.
	AdaptiveRTO bool
	// MinRTO and MaxRTO clamp the adaptive timeout (and cap the backoff).
	MinRTO, MaxRTO sim.Duration
	// MaxRetries bounds consecutive timeout rounds without ACK progress
	// before the retransmitter escalates via OnExhausted (0 = unlimited).
	MaxRetries int
	// OnExhausted fires once when MaxRetries is exceeded. The retransmitter
	// stops resending until an ACK retires a frame or Retarget moves the
	// window to a new channel.
	OnExhausted func()
	// CQ, when set, receives typed error completions for transport faults:
	// CQNakPSN/CQNakRKey when the responder NAKs, CQRetryExhausted when the
	// retry budget runs out. This replaces boolean polling as the observable
	// fault surface — a supervisor watches the QP's error stats instead of
	// each engine's flags. Nil keeps the legacy silent behavior.
	CQ *verbs.QP

	srtt, rttvar sim.Duration
	haveSample   bool
	backoff      int
	exhausted    bool

	unacked []relFrame
	timer   *sim.Event

	// Inner receives responses after the retransmitter processes
	// ACK/NAK bookkeeping (e.g. the StateStore consuming atomic ACKs).
	Inner ResponseHandler

	// Stats.
	Retransmits int64
	NaksSeen    int64
	RTTSamples  int64
	Escalations int64
	Retargeted  int64
	// Resyncs counts PSN-stream resynchronizations: a NAK named a PSN below
	// the tracked window (possible only after a Retarget moved those frames
	// to another server), so the stream was rewound to the NIC's expected
	// PSN and the window rebuilt there.
	Resyncs int64
}

type relFrame struct {
	psn    uint32
	op     verbs.OpType
	frame  []byte
	sentAt sim.Time
	// rexmit marks frames that have been resent at least once; their ACKs
	// are ambiguous (original or retransmission?) and are excluded from RTT
	// sampling per Karn's algorithm.
	rexmit bool
}

// NewRetransmitter wraps channel ch. The channel must have been established
// with AckReq and rnic.PSNStrict for the recovery protocol to be sound.
func NewRetransmitter(ch *Channel, window int) (*Retransmitter, error) {
	if !ch.AckReq {
		return nil, fmt.Errorf("core: retransmitter requires an AckReq channel")
	}
	if window <= 0 {
		window = 16
	}
	return &Retransmitter{
		ch: ch, sw: ch.sw,
		Timeout: 100 * sim.Microsecond,
		Window:  window,
	}, nil
}

// EnableAdaptiveRTO turns on the RTT estimator with sensible clamps for the
// simulated fabrics (fall back to callers setting the fields directly for
// anything unusual). MinRTO sits at ~10× the fabric RTT, mirroring how real
// stacks keep a conservative floor (Linux: 200 ms against ~ms RTTs): with a
// stable RTT the estimator converges to srtt ≈ RTT and anything tighter
// turns ordinary jitter into spurious go-back-N rounds.
func (r *Retransmitter) EnableAdaptiveRTO() {
	r.AdaptiveRTO = true
	if r.MinRTO == 0 {
		r.MinRTO = 50 * sim.Microsecond
	}
	if r.MaxRTO == 0 {
		r.MaxRTO = 5 * sim.Millisecond
	}
}

// FetchAdd issues a *reliable* Fetch-and-Add: the request is tracked and
// retransmitted until acknowledged. CanSend gates the caller when the
// retransmit window is full (the RNIC's atomic replay cache depth bounds
// how many atomics may safely be outstanding).
func (r *Retransmitter) FetchAdd(offset int, delta uint64) uint32 {
	psn := r.ch.NextPSN(1)
	va := r.ch.VA(offset, 8)
	p := r.chParams(psn)
	frame := wire.BuildFetchAddInto(wire.DefaultPool, &p, va, r.ch.RKey, delta)
	r.track(psn, frame, verbs.OpFetchAdd)
	return psn
}

// Write issues a reliable RDMA WRITE.
func (r *Retransmitter) Write(offset int, payload []byte) uint32 {
	psn := r.ch.NextPSN(1)
	va := r.ch.VA(offset, len(payload))
	p := r.chParams(psn)
	frame := wire.BuildWriteOnlyInto(wire.DefaultPool, &p, va, r.ch.RKey, payload)
	r.track(psn, frame, verbs.OpWrite)
	return psn
}

// CanSend reports whether the retransmit window has room for another
// tracked request.
func (r *Retransmitter) CanSend() bool { return len(r.unacked) < r.Window }

// Exhausted reports whether the retry budget is spent and the retransmitter
// is waiting for an ACK or a Retarget.
func (r *Retransmitter) Exhausted() bool { return r.exhausted }

// BackoffLevel reports the current exponential-backoff level: consecutive
// no-progress timeout rounds (0 when progress is being made). A supervisor
// reads it as an early-warning signal before the retry budget is spent.
func (r *Retransmitter) BackoffLevel() int { return r.backoff }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (r *Retransmitter) SRTT() sim.Duration { return r.srtt }

// RTO returns the timeout the next armed timer would use.
func (r *Retransmitter) RTO() sim.Duration { return r.rto() }

func (r *Retransmitter) chParams(psn uint32) wire.RoCEParams {
	p := r.ch.params(psn)
	p.AckReq = true
	return p
}

// track retains frame as the master copy (it stays in switch buffer memory
// until acknowledged) and injects a pooled copy toward the server — the
// traffic manager recycles whatever it is handed, so the master never
// enters the fabric.
//
//gem:owns
func (r *Retransmitter) track(psn uint32, frame []byte, op verbs.OpType) {
	// Copy to the wire first: once trackOnly owns the master, this function
	// must not touch it again.
	r.injectCopy(frame)
	r.trackOnly(psn, frame, op)
}

// trackOnly stores frame as an unacked master without sending; the
// retransmitter owns it until the PSN retires (ackThrough recycles it).
//
//gem:owns
func (r *Retransmitter) trackOnly(psn uint32, frame []byte, op verbs.OpType) {
	r.unacked = append(r.unacked, relFrame{psn: psn, op: op, frame: frame, sentAt: r.sw.Engine.Now()})
	r.armTimer()
}

func (r *Retransmitter) injectCopy(frame []byte) {
	c := wire.DefaultPool.Get(len(frame))
	copy(c, frame)
	r.ch.inject(c)
}

// rto returns the current retransmission timeout: fixed Timeout in legacy
// mode, the clamped RFC 6298 estimate shifted by the backoff otherwise.
func (r *Retransmitter) rto() sim.Duration {
	if !r.AdaptiveRTO {
		return r.Timeout
	}
	d := r.Timeout
	if r.haveSample {
		d = r.srtt + 4*r.rttvar
	}
	if d < r.MinRTO {
		d = r.MinRTO
	}
	for i := 0; i < r.backoff && d < r.MaxRTO; i++ {
		d *= 2
	}
	if r.MaxRTO > 0 && d > r.MaxRTO {
		d = r.MaxRTO
	}
	return d
}

// sample folds one RTT measurement into the estimator (RFC 6298).
func (r *Retransmitter) sample(s sim.Duration) {
	r.RTTSamples++
	if !r.haveSample {
		r.srtt = s
		r.rttvar = s / 2
		r.haveSample = true
		return
	}
	diff := r.srtt - s
	if diff < 0 {
		diff = -diff
	}
	r.rttvar = (3*r.rttvar + diff) / 4
	r.srtt = (7*r.srtt + s) / 8
}

func (r *Retransmitter) armTimer() {
	if r.timer != nil {
		r.sw.Engine.Cancel(r.timer)
		r.timer = nil
	}
	if len(r.unacked) == 0 || r.exhausted {
		return
	}
	r.timer = r.sw.Engine.Schedule(r.rto(), r.onTimeout)
}

// onTimeout is a no-progress round: back the timer off, spend retry budget,
// then go-back-N.
func (r *Retransmitter) onTimeout() {
	r.timer = nil
	if len(r.unacked) == 0 {
		return
	}
	if r.AdaptiveRTO {
		r.backoff++
		if r.MaxRetries > 0 && r.backoff > r.MaxRetries {
			r.escalate()
			return
		}
	}
	r.resendAll()
}

// resendAll retransmits every unacknowledged frame in order (go-back-N) and
// re-arms the timer.
func (r *Retransmitter) resendAll() {
	for i := range r.unacked {
		r.Retransmits++
		r.unacked[i].rexmit = true
		r.injectCopy(r.unacked[i].frame)
	}
	r.armTimer()
}

// escalate fires the exhaustion callback once and parks the retransmitter:
// masters stay tracked (Retarget can still move them) but nothing is resent
// until progress or a retarget resets the state. The fault surfaces on the
// bound CQ as a CQRetryExhausted completion before OnExhausted runs, so a
// supervisor sees the typed error even when the callback triggers failover.
func (r *Retransmitter) escalate() {
	if r.exhausted {
		return
	}
	r.exhausted = true
	r.Escalations++
	r.reportError(verbs.CQRetryExhausted)
	if r.OnExhausted != nil {
		r.OnExhausted()
	}
}

// reportError surfaces a stream-level transport fault as a typed CQE on the
// bound CQ (no-op when unbound). The CQE carries the oldest unacked
// request's op and PSN — the position the stream is stuck at; its token is
// that PSN, since stream faults are not bound to a caller token.
func (r *Retransmitter) reportError(st verbs.CQStatus) {
	if r.CQ == nil {
		return
	}
	op, psn := verbs.OpFetchAdd, r.ch.PSN()
	if len(r.unacked) > 0 {
		op, psn = r.unacked[0].op, r.unacked[0].psn
	}
	r.CQ.CompleteError(op, uint64(psn), psn, st)
}

// Unacked reports the number of tracked, unacknowledged requests.
func (r *Retransmitter) Unacked() int { return len(r.unacked) }

// HandleResponse processes ACK/NAK bookkeeping, then forwards the response
// to Inner (if any).
func (r *Retransmitter) HandleResponse(ctx *switchsim.Context, pkt *wire.Packet) {
	switch pkt.BTH.Opcode {
	case wire.OpAcknowledge:
		if pkt.HasAETH && pkt.AETH.IsNak() {
			r.NaksSeen++
			// A NAK at PSN n reports the first missing packet: everything
			// before n was received and must retire first, or go-back-N
			// needlessly resends (and the server re-executes) the prefix.
			e := pkt.BTH.PSN
			r.retire((e - 1) & verbs.PSNMask)
			// Surface the fault as a typed CQE: a sequence syndrome means
			// the receiver saw a gap (CQNakPSN); any other NAK rejects the
			// request itself (CQNakRKey).
			if pkt.AETH.Syndrome == wire.AETHNakPSNSeq {
				r.reportError(verbs.CQNakPSN)
			} else {
				r.reportError(verbs.CQNakRKey)
			}
			if len(r.unacked) > 0 && verbs.PSNAfter(r.unacked[0].psn, e) {
				// Sequence desync: the NIC expects a PSN we no longer hold —
				// its frame moved to another server in a Retarget (failback
				// lands here: the stream resumes past the crash gap). The
				// gap can never be filled, so resending higher PSNs would
				// wedge the QP forever; instead resume the stream at the
				// expected PSN and rebuild the window onto it.
				r.Resyncs++
				r.ch.SetPSN(e)
				r.rebuildWindow(r.ch.Base)
			} else {
				r.resendAll()
			}
			ctx.Drop()
			return
		}
		r.retire(pkt.BTH.PSN)
	case wire.OpAtomicAcknowledge:
		r.retire(pkt.BTH.PSN)
	}
	if r.Inner != nil {
		r.Inner.HandleResponse(ctx, pkt)
	} else {
		ctx.Drop()
	}
	r.armTimer()
}

// retire samples the RTT for a cleanly-acked frame (Karn's algorithm skips
// retransmitted ones) and acknowledges cumulatively. Any retired frame is
// progress and un-exhausts the retransmitter, but per RFC 6298 the backoff
// collapses only on a *valid* sample: an ACK for a retransmitted frame says
// nothing about the path's current RTT, and keeping the backed-off RTO
// until a clean measurement is what lets the timer ride out a cluster of
// latency spikes without re-climbing the ladder for each one.
func (r *Retransmitter) retire(psn uint32) {
	before := len(r.unacked)
	if r.AdaptiveRTO {
		for _, u := range r.unacked {
			if u.psn == psn {
				if !u.rexmit {
					r.sample(r.sw.Engine.Now().Sub(u.sentAt))
					r.backoff = 0
				}
				break
			}
		}
	}
	r.ackThrough(psn)
	if len(r.unacked) < before {
		r.exhausted = false
	}
}

// ackThrough drops every tracked frame at or before psn (cumulative ACK),
// recycling the retired masters.
func (r *Retransmitter) ackThrough(psn uint32) {
	keep := r.unacked[:0]
	for _, u := range r.unacked {
		if verbs.PSNAfter(u.psn, psn) {
			keep = append(keep, u)
		} else {
			wire.DefaultPool.Put(u.frame)
		}
	}
	for i := len(keep); i < len(r.unacked); i++ {
		r.unacked[i] = relFrame{}
	}
	r.unacked = keep
}

// Retarget re-issues every unacknowledged request on ch — the failover path
// for in-flight state: each tracked master is decoded, rebuilt against the
// new channel's region with fresh PSNs, and the old master recycled. Returns
// how many requests moved. Note the exactness caveat: a request the old
// server executed but never acknowledged is re-executed on the new one, so
// retargeted windows are at-least-once, not exactly-once.
func (r *Retransmitter) Retarget(ch *Channel) int {
	oldBase := r.ch.Base
	r.ch = ch
	r.sw = ch.sw
	r.backoff = 0
	r.exhausted = false
	// The path changed; RTT history from the old server no longer applies.
	r.haveSample = false
	r.srtt, r.rttvar = 0, 0
	moved := r.rebuildWindow(oldBase)
	r.Retargeted += int64(moved)
	return moved
}

// rebuildWindow re-issues every tracked master on the current channel with
// fresh PSNs: each frame is decoded, rebuilt against the channel's region
// (offsets translated from oldBase), and the old master recycled.
func (r *Retransmitter) rebuildWindow(oldBase uint64) int {
	old := r.unacked
	r.unacked = nil
	moved := 0
	for _, u := range old {
		var pkt wire.Packet
		if err := pkt.DecodeFromBytes(u.frame); err == nil {
			switch pkt.BTH.Opcode {
			case wire.OpFetchAdd:
				// Write/FetchAdd copy out of the old master before we
				// recycle it below.
				r.FetchAdd(int(pkt.AtomicETH.VA-oldBase), pkt.AtomicETH.SwapAdd)
				moved++
			case wire.OpWriteOnly:
				r.Write(int(pkt.RETH.VA-oldBase), pkt.Payload)
				moved++
			}
		}
		wire.DefaultPool.Put(u.frame)
	}
	r.armTimer()
	return moved
}
