package core

import (
	"fmt"

	"gem/internal/sim"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// Retransmitter is the §7 reliability extension: "on the switch side, one
// can implement parsing and handling of RDMA ACKs/NACKs to make certain
// remote memory reliable, e.g., in the remote counter case."
//
// It wraps a channel whose QP runs in strict PSN mode with AckReq set,
// keeps a copy of every unacknowledged request frame in switch buffer
// memory, and retransmits go-back-N style on a NAK or a timeout. Combined
// with the RNIC's atomic replay cache this makes remote counters exact even
// across packet loss on the memory link (experiment E8c).
type Retransmitter struct {
	ch *Channel
	sw *switchsim.Switch

	// Timeout before unacknowledged requests are resent.
	Timeout sim.Duration
	// Window caps unacknowledged requests in flight.
	Window int

	unacked []relFrame
	timer   *sim.Event

	// Inner receives responses after the retransmitter processes
	// ACK/NAK bookkeeping (e.g. the StateStore consuming atomic ACKs).
	Inner ResponseHandler

	// Stats.
	Retransmits int64
	NaksSeen    int64
}

type relFrame struct {
	psn   uint32
	frame []byte
}

// NewRetransmitter wraps channel ch. The channel must have been established
// with AckReq and rnic.PSNStrict for the recovery protocol to be sound.
func NewRetransmitter(ch *Channel, window int) (*Retransmitter, error) {
	if !ch.AckReq {
		return nil, fmt.Errorf("core: retransmitter requires an AckReq channel")
	}
	if window <= 0 {
		window = 16
	}
	return &Retransmitter{
		ch: ch, sw: ch.sw,
		Timeout: 100 * sim.Microsecond,
		Window:  window,
	}, nil
}

// FetchAdd issues a *reliable* Fetch-and-Add: the request is tracked and
// retransmitted until acknowledged. CanSend gates the caller when the
// retransmit window is full (the RNIC's atomic replay cache depth bounds
// how many atomics may safely be outstanding).
func (r *Retransmitter) FetchAdd(offset int, delta uint64) uint32 {
	psn := r.ch.NextPSN(1)
	va := r.ch.VA(offset, 8)
	p := r.chParams(psn)
	frame := wire.BuildFetchAddInto(wire.DefaultPool, &p, va, r.ch.RKey, delta)
	r.track(psn, frame)
	return psn
}

// Write issues a reliable RDMA WRITE.
func (r *Retransmitter) Write(offset int, payload []byte) uint32 {
	psn := r.ch.NextPSN(1)
	va := r.ch.VA(offset, len(payload))
	p := r.chParams(psn)
	frame := wire.BuildWriteOnlyInto(wire.DefaultPool, &p, va, r.ch.RKey, payload)
	r.track(psn, frame)
	return psn
}

// CanSend reports whether the retransmit window has room for another
// tracked request.
func (r *Retransmitter) CanSend() bool { return len(r.unacked) < r.Window }

func (r *Retransmitter) chParams(psn uint32) wire.RoCEParams {
	p := r.ch.params(psn)
	p.AckReq = true
	return p
}

// track retains frame as the master copy (it stays in switch buffer memory
// until acknowledged) and injects a pooled copy toward the server — the
// traffic manager recycles whatever it is handed, so the master never
// enters the fabric.
//
//gem:owns
func (r *Retransmitter) track(psn uint32, frame []byte) {
	// Copy to the wire first: once trackOnly owns the master, this function
	// must not touch it again.
	r.injectCopy(frame)
	r.trackOnly(psn, frame)
}

// trackOnly stores frame as an unacked master without sending; the
// retransmitter owns it until the PSN retires (ackThrough recycles it).
//
//gem:owns
func (r *Retransmitter) trackOnly(psn uint32, frame []byte) {
	r.unacked = append(r.unacked, relFrame{psn: psn, frame: frame})
	r.armTimer()
}

func (r *Retransmitter) injectCopy(frame []byte) {
	c := wire.DefaultPool.Get(len(frame))
	copy(c, frame)
	r.ch.inject(c)
}

func (r *Retransmitter) armTimer() {
	if r.timer != nil {
		r.sw.Engine.Cancel(r.timer)
		r.timer = nil
	}
	if len(r.unacked) == 0 {
		return
	}
	r.timer = r.sw.Engine.Schedule(r.Timeout, r.goBackN)
}

// goBackN resends every unacknowledged frame in order.
func (r *Retransmitter) goBackN() {
	r.timer = nil
	for _, u := range r.unacked {
		r.Retransmits++
		r.injectCopy(u.frame)
	}
	r.armTimer()
}

// Unacked reports the number of tracked, unacknowledged requests.
func (r *Retransmitter) Unacked() int { return len(r.unacked) }

// HandleResponse processes ACK/NAK bookkeeping, then forwards the response
// to Inner (if any).
func (r *Retransmitter) HandleResponse(ctx *switchsim.Context, pkt *wire.Packet) {
	switch pkt.BTH.Opcode {
	case wire.OpAcknowledge:
		if pkt.HasAETH && pkt.AETH.IsNak() {
			r.NaksSeen++
			r.goBackN()
			ctx.Drop()
			return
		}
		r.ackThrough(pkt.BTH.PSN)
	case wire.OpAtomicAcknowledge:
		r.ackThrough(pkt.BTH.PSN)
	}
	if r.Inner != nil {
		r.Inner.HandleResponse(ctx, pkt)
	} else {
		ctx.Drop()
	}
	r.armTimer()
}

// ackThrough drops every tracked frame at or before psn (cumulative ACK),
// recycling the retired masters.
func (r *Retransmitter) ackThrough(psn uint32) {
	keep := r.unacked[:0]
	for _, u := range r.unacked {
		if psnAfter24(u.psn, psn) {
			keep = append(keep, u)
		} else {
			wire.DefaultPool.Put(u.frame)
		}
	}
	for i := len(keep); i < len(r.unacked); i++ {
		r.unacked[i] = relFrame{}
	}
	r.unacked = keep
}
