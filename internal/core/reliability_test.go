package core

import (
	"math/rand"
	"testing"

	"gem/internal/netsim"
	"gem/internal/rnic"
	"gem/internal/sim"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// lossyBed wires a bed whose memory link drops frames with prob loss.
func lossyBed(t *testing.T, loss float64) *bed {
	t.Helper()
	n := netsim.New(7)
	sw := switchsim.New("tor", n.Engine, switchsim.Config{})
	h := netsim.NewHost("h", 1)
	hp, _ := n.Connect(sw, h, netsim.Link40G())
	memHost := netsim.NewHost("memsrv", 200)
	memNIC := rnic.New("memsrv-nic", memHost, rnic.Config{})
	lossy := netsim.Link40G()
	lossy.LossRate = loss
	sp, np := n.Connect(sw, memNIC, lossy)
	memNIC.Bind(n.Engine, np)
	sw.Bind(hp, sp)
	return &bed{
		net: n, sw: sw, hosts: []*netsim.Host{h},
		memNIC: memNIC, memHost: memHost, memPort: 1,
		memNICs: []*rnic.NIC{memNIC}, memHosts: []*netsim.Host{memHost},
		ctrl: NewController(sw), disp: NewDispatcher(),
	}
}

func TestRetransmitterRequiresAckReq(t *testing.T) {
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 4096, rnic.PSNStrict, false)
	if _, err := NewRetransmitter(ch, 8); err == nil {
		t.Fatal("retransmitter accepted a channel without AckReq")
	}
}

func TestReliableFAAExactUnderLoss(t *testing.T) {
	// 2% loss on the memory link; the retransmitter must deliver an
	// exact count anyway — the E8c claim.
	b := lossyBed(t, 0.02)
	ch, err := b.ctrl.Establish(ChannelSpec{
		SwitchPort: 1, NIC: b.memNIC,
		RegionBase: 0x1000, RegionSize: 4096,
		Mode: rnic.PSNStrict, AckReq: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRetransmitter(ch, 8)
	if err != nil {
		t.Fatal(err)
	}
	rt.Timeout = 20 * sim.Microsecond
	b.disp.Register(ch, rt)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if !b.disp.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	const n = 400
	issued := 0
	// Pace sends within the window; CanSend gates against the replay
	// cache depth.
	b.net.Engine.Ticker(500*sim.Nanosecond, func() bool {
		for issued < n && rt.CanSend() {
			rt.FetchAdd(0, 1)
			issued++
		}
		return issued < n || rt.Unacked() > 0
	})
	b.net.Engine.Run()
	if rt.Unacked() != 0 {
		t.Fatalf("unacked = %d after drain", rt.Unacked())
	}
	v, err := b.memNIC.ReadCounter(ch.RKey, ch.Base)
	if err != nil {
		t.Fatal(err)
	}
	if v != n {
		t.Fatalf("remote counter = %d, want %d (retransmits %d, naks %d)",
			v, n, rt.Retransmits, rt.NaksSeen)
	}
	if rt.Retransmits == 0 {
		t.Fatal("suspicious: 2% loss but zero retransmits")
	}
}

func TestUnreliableFAAInaccurateUnderLoss(t *testing.T) {
	// Control for E8c: without the extension, the same loss rate loses
	// counts (tolerant QP, fire-and-forget).
	b := lossyBed(t, 0.05)
	ch, err := b.ctrl.Establish(ChannelSpec{
		SwitchPort: 1, NIC: b.memNIC,
		RegionBase: 0x1000, RegionSize: 4096,
		Mode: rnic.PSNTolerant,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) { ctx.Drop() })
	const n = 400
	for i := 0; i < n; i++ {
		ch.FetchAdd(0, 1)
	}
	b.net.Engine.Run()
	v, _ := b.memNIC.ReadCounter(ch.RKey, ch.Base)
	if v == n {
		t.Fatal("counter exact despite 5% loss and no reliability")
	}
	if v == 0 || v > n {
		t.Fatalf("counter = %d, want (0,%d)", v, n)
	}
}

func TestReliableWriteUnderLoss(t *testing.T) {
	b := lossyBed(t, 0.03)
	ch, err := b.ctrl.Establish(ChannelSpec{
		SwitchPort: 1, NIC: b.memNIC,
		RegionBase: 0x1000, RegionSize: 1 << 16,
		Mode: rnic.PSNStrict, AckReq: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRetransmitter(ch, 8)
	if err != nil {
		t.Fatal(err)
	}
	rt.Timeout = 20 * sim.Microsecond
	b.disp.Register(ch, rt)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if !b.disp.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	const n = 64
	issued := 0
	b.net.Engine.Ticker(1*sim.Microsecond, func() bool {
		for issued < n && rt.CanSend() {
			payload := []byte{byte(issued), byte(issued >> 8), 0xAB, 0xCD}
			rt.Write(issued*16, payload)
			issued++
		}
		return issued < n || rt.Unacked() > 0
	})
	b.net.Engine.Run()
	region := b.memNIC.LookupRegion(ch.RKey)
	for i := 0; i < n; i++ {
		got := region.Data[i*16 : i*16+4]
		if got[0] != byte(i) || got[1] != byte(i>>8) || got[2] != 0xAB || got[3] != 0xCD {
			t.Fatalf("write %d corrupted/missing: % x", i, got)
		}
	}
}

func TestRetransmitterAckClearsWindow(t *testing.T) {
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 4096, rnic.PSNStrict, true)
	rt, err := NewRetransmitter(ch, 4)
	if err != nil {
		t.Fatal(err)
	}
	b.disp.Register(ch, rt)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if !b.disp.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	rt.FetchAdd(0, 1)
	rt.FetchAdd(8, 2)
	if rt.Unacked() != 2 {
		t.Fatalf("unacked = %d", rt.Unacked())
	}
	b.net.Engine.Run()
	if rt.Unacked() != 0 {
		t.Fatalf("unacked = %d after acks", rt.Unacked())
	}
	if rt.Retransmits != 0 {
		t.Fatalf("retransmits = %d on a clean link", rt.Retransmits)
	}
	v0, _ := b.memNIC.ReadCounter(ch.RKey, ch.Base)
	v1, _ := b.memNIC.ReadCounter(ch.RKey, ch.Base+8)
	if v0 != 1 || v1 != 2 {
		t.Fatalf("counters = %d,%d", v0, v1)
	}
}

func TestRetransmitterForwardsToInner(t *testing.T) {
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 4096, rnic.PSNStrict, true)
	rt, err := NewRetransmitter(ch, 4)
	if err != nil {
		t.Fatal(err)
	}
	inner := 0
	rt.Inner = handlerFunc(func(ctx *switchsim.Context, pkt *wire.Packet) {
		if pkt.BTH.Opcode == wire.OpAtomicAcknowledge {
			inner++
		}
		ctx.Drop()
	})
	b.disp.Register(ch, rt)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if !b.disp.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	rt.FetchAdd(0, 1)
	b.net.Engine.Run()
	if inner != 1 {
		t.Fatalf("inner saw %d atomic acks, want 1", inner)
	}
}

// scriptedDrops is a deterministic fault injector: it drops the frames whose
// 0-based transmit index is listed, and nothing else.
type scriptedDrops struct {
	drop map[int]bool
	n    int
}

func (s *scriptedDrops) Transmit(_ sim.Time, _ *rand.Rand, _ []byte) (bool, sim.Duration) {
	d := s.drop[s.n]
	s.n++
	return d, 0
}

// ackDropper drops the first n atomic acknowledgements and passes everything
// else (in particular NAKs, which the NIC emits at receive time and thus
// interleave unpredictably with the execution-delayed atomic ACKs).
type ackDropper struct{ n int }

func (a *ackDropper) Transmit(_ sim.Time, _ *rand.Rand, frame []byte) (bool, sim.Duration) {
	if a.n > 0 {
		var pkt wire.Packet
		if pkt.DecodeFromBytes(frame) == nil && pkt.BTH.Opcode == wire.OpAtomicAcknowledge {
			a.n--
			return true, 0
		}
	}
	return false, 0
}

func TestNakImplicitlyAcksPrefix(t *testing.T) {
	// Four FAAs; the PSN-2 request and the atomic ACKs for PSNs 0 and 1 are
	// dropped. The NIC NAKs at PSN 2 when PSN 3 arrives, and that NAK is the
	// *only* feedback the retransmitter ever gets for the prefix: a NAK at n
	// means everything before n was received, so go-back-N must resend PSNs
	// 2..3 only. Resending the prefix too would show up as 4 retransmits
	// (and pointless duplicate execution at the server).
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 4096, rnic.PSNStrict, true)
	rt, err := NewRetransmitter(ch, 8)
	if err != nil {
		t.Fatal(err)
	}
	b.disp.Register(ch, rt)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if !b.disp.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	b.memNIC.Port().Peer().SetFaultInjector(&scriptedDrops{drop: map[int]bool{2: true}})
	b.memNIC.Port().SetFaultInjector(&ackDropper{n: 2})
	for i := 0; i < 4; i++ {
		rt.FetchAdd(0, 1)
	}
	b.net.Engine.Run()
	if rt.NaksSeen != 1 {
		t.Fatalf("naks seen = %d, want 1", rt.NaksSeen)
	}
	if rt.Retransmits != 2 {
		t.Fatalf("retransmits = %d, want 2 (NAK at 2 implicitly acks 0..1)", rt.Retransmits)
	}
	if rt.Unacked() != 0 {
		t.Fatalf("unacked = %d after drain", rt.Unacked())
	}
	if v, _ := b.memNIC.ReadCounter(ch.RKey, ch.Base); v != 4 {
		t.Fatalf("counter = %d, want 4", v)
	}
}

// jitterSpikes delays every frame by spike with probability rate — the E9d
// fault model, reimplemented locally so core does not depend on the faults
// package.
type jitterSpikes struct {
	rate  float64
	spike sim.Duration
}

func (j *jitterSpikes) Transmit(_ sim.Time, rng *rand.Rand, _ []byte) (bool, sim.Duration) {
	if rng.Float64() < j.rate {
		return false, j.spike
	}
	return false, 0
}

func TestAdaptiveRTOBeatsFixedUnderSpikes(t *testing.T) {
	// Window 1 so the retransmit timer is the only recovery mechanism (a
	// pipelined window would let the NIC's NAK path recover delayed frames
	// at RTT timescale and mask the RTO policy entirely).
	run := func(adaptive bool) (retransmits int64, v uint64) {
		b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
		ch := b.establish(t, 4096, rnic.PSNStrict, true)
		rt, err := NewRetransmitter(ch, 1)
		if err != nil {
			t.Fatal(err)
		}
		if adaptive {
			rt.EnableAdaptiveRTO()
		}
		b.disp.Register(ch, rt)
		b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
			if !b.disp.Dispatch(ctx) {
				ctx.Drop()
			}
		})
		b.memNIC.Port().Peer().SetFaultInjector(&jitterSpikes{rate: 0.2, spike: sim.Millisecond})
		const n = 100
		issued := 0
		b.net.Engine.Ticker(2*sim.Microsecond, func() bool {
			for issued < n && rt.CanSend() {
				rt.FetchAdd(0, 1)
				issued++
			}
			return issued < n || rt.Unacked() > 0
		})
		b.net.Engine.Run()
		v, _ = b.memNIC.ReadCounter(ch.RKey, ch.Base)
		return rt.Retransmits, v
	}
	fixedRexmit, fixedV := run(false)
	adaptiveRexmit, adaptiveV := run(true)
	if fixedV != 100 || adaptiveV != 100 {
		t.Fatalf("counts lost: fixed=%d adaptive=%d, want 100", fixedV, adaptiveV)
	}
	if fixedRexmit == 0 {
		t.Fatal("spikes never triggered the fixed timer")
	}
	if adaptiveRexmit >= fixedRexmit {
		t.Fatalf("adaptive RTO did not win: %d vs fixed %d retransmits",
			adaptiveRexmit, fixedRexmit)
	}
}
