package core

import (
	"testing"

	"gem/internal/netsim"
	"gem/internal/rnic"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// lookupBed: host0 sends, host1 receives, every packet's action comes from
// the remote table.
func lookupBed(t *testing.T, cfg LookupConfig) (*bed, *LookupTable) {
	t.Helper()
	b := newBed(t, 2, switchsim.Config{}, rnic.Config{MTU: 4096})
	cfg.fillDefaults()
	size := cfg.Entries * cfg.EntrySize()
	ch := b.establish(t, size, rnic.PSNTolerant, false)
	lt, err := NewLookupTable(ch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lt.DefaultOutPort = 1
	b.disp.Register(ch, lt)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if b.disp.Dispatch(ctx) {
			return
		}
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		lt.Lookup(ctx, ctx.Frame, ctx.Pkt)
	})
	return b, lt
}

// populateAll fills every remote entry with the same action.
func populateAll(t *testing.T, b *bed, lt *LookupTable, action LookupAction) {
	t.Helper()
	region := b.memNIC.LookupRegion(lt.Channel().RKey)
	for i := 0; i < lt.cfg.Entries; i++ {
		if err := PopulateLookupEntry(region, lt.cfg, i, action); err != nil {
			t.Fatal(err)
		}
	}
}

func recvDSCP(b *bed, host int) *[]uint8 {
	vals := &[]uint8{}
	b.hosts[host].Handler = func(_ *netsim.Port, frame []byte) {
		var p wire.Packet
		if err := p.DecodeFromBytes(frame); err == nil && p.HasIPv4 {
			*vals = append(*vals, p.IP.DSCP)
		}
	}
	return vals
}

func TestLookupDepositAppliesRemoteAction(t *testing.T) {
	b, lt := lookupBed(t, LookupConfig{Entries: 64})
	populateAll(t, b, lt, SetDSCPAction(46))
	got := recvDSCP(b, 1)
	b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[1], 256, 1234))
	b.net.Engine.Run()
	if len(*got) != 1 || (*got)[0] != 46 {
		t.Fatalf("receiver DSCPs = %v, want [46]", *got)
	}
	if lt.Stats.RemoteLookups != 1 || lt.Stats.Deposits != 1 || lt.Stats.Applied != 1 {
		t.Fatalf("stats = %+v", lt.Stats)
	}
	// The deposited packet must be bit-identical after the bounce, except
	// for the rewritten field — verified by it parsing and forwarding.
	if b.memHost.CPUOps != 0 {
		t.Fatal("table server CPU touched")
	}
}

func TestLookupDepositBouncesPacketThroughRemoteEntry(t *testing.T) {
	b, lt := lookupBed(t, LookupConfig{Entries: 8})
	populateAll(t, b, lt, SetDSCPAction(10))
	frame := dataFrame(b.hosts[0], b.hosts[1], 300, 777)
	// Copy-on-retain: the sent frame belongs to the fabric and is recycled
	// (and poisoned under -race); index the region from the copy.
	master := append([]byte(nil), frame...)
	b.net.Ports(b.hosts[0])[0].Send(frame)
	b.net.Engine.Run()
	// The original packet must actually be present in server DRAM.
	region := b.memNIC.LookupRegion(lt.Channel().RKey)
	var p wire.Packet
	if err := p.DecodeFromBytes(master); err != nil {
		t.Fatal(err)
	}
	idx := wire.FlowOf(&p).Index(lt.cfg.Entries)
	base := idx * lt.cfg.EntrySize()
	plen := int(region.Data[base+8])<<8 | int(region.Data[base+9])
	if plen != 300 {
		t.Fatalf("deposited length = %d, want 300", plen)
	}
}

func TestLookupCachePopulatedAndHit(t *testing.T) {
	b, lt := lookupBed(t, LookupConfig{Entries: 64, CacheEntries: 128})
	populateAll(t, b, lt, SetDSCPAction(12))
	got := recvDSCP(b, 1)
	// Same flow three times, spaced past the remote round trip: the
	// first misses to remote memory; the rest hit the installed cache
	// entry without touching the memory link.
	for i := 0; i < 3; i++ {
		b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[1], 200, 555))
		b.net.Engine.Run()
	}
	if len(*got) != 3 {
		t.Fatalf("delivered %d/3", len(*got))
	}
	for _, d := range *got {
		if d != 12 {
			t.Fatalf("DSCPs = %v", *got)
		}
	}
	if lt.Stats.CacheHits != 2 || lt.Stats.RemoteLookups != 1 {
		t.Fatalf("hits/remote = %d/%d, want 2/1 (stats %+v)",
			lt.Stats.CacheHits, lt.Stats.RemoteLookups, lt.Stats)
	}
}

func TestLookupDistinctFlowsDistinctActions(t *testing.T) {
	b, lt := lookupBed(t, LookupConfig{Entries: 1024})
	region := b.memNIC.LookupRegion(lt.Channel().RKey)
	// Flow A → DSCP 1, flow B → DSCP 2 (indexes may collide with 1024
	// entries only with tiny probability for two flows; recompute).
	fa := dataFrame(b.hosts[0], b.hosts[1], 200, 1000)
	fb := dataFrame(b.hosts[0], b.hosts[1], 200, 2000)
	var pa, pb wire.Packet
	if err := pa.DecodeFromBytes(fa); err != nil {
		t.Fatal(err)
	}
	if err := pb.DecodeFromBytes(fb); err != nil {
		t.Fatal(err)
	}
	ia := wire.FlowOf(&pa).Index(lt.cfg.Entries)
	ib := wire.FlowOf(&pb).Index(lt.cfg.Entries)
	if ia == ib {
		t.Skip("hash collision between the two test flows")
	}
	if err := PopulateLookupEntry(region, lt.cfg, ia, SetDSCPAction(1)); err != nil {
		t.Fatal(err)
	}
	if err := PopulateLookupEntry(region, lt.cfg, ib, SetDSCPAction(2)); err != nil {
		t.Fatal(err)
	}
	got := recvDSCP(b, 1)
	b.net.Ports(b.hosts[0])[0].Send(fa)
	b.net.Ports(b.hosts[0])[0].Send(fb)
	b.net.Engine.Run()
	if len(*got) != 2 || (*got)[0] != 1 || (*got)[1] != 2 {
		t.Fatalf("DSCPs = %v, want [1 2]", *got)
	}
}

func TestLookupDstIPRewrite(t *testing.T) {
	// The §2.2 bare-metal case: virtual IP → physical IP translation.
	b, lt := lookupBed(t, LookupConfig{Entries: 16})
	phys := wire.IP4{10, 9, 9, 9}
	populateAll(t, b, lt, SetDstIPAction(phys))
	var gotDst wire.IP4
	b.hosts[1].Handler = func(_ *netsim.Port, frame []byte) {
		var p wire.Packet
		if err := p.DecodeFromBytes(frame); err == nil && p.HasIPv4 {
			gotDst = p.IP.Dst
		}
	}
	b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[1], 128, 42))
	b.net.Engine.Run()
	if gotDst != phys {
		t.Fatalf("dst = %v, want %v", gotDst, phys)
	}
}

func TestLookupDropAction(t *testing.T) {
	b, lt := lookupBed(t, LookupConfig{Entries: 16})
	populateAll(t, b, lt, DropAction())
	b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[1], 128, 42))
	b.net.Engine.Run()
	if b.hosts[1].Received != 0 {
		t.Fatal("dropped packet delivered")
	}
	if lt.Stats.Applied != 1 {
		t.Fatalf("stats = %+v", lt.Stats)
	}
}

func TestLookupRecirculateMode(t *testing.T) {
	b, lt := lookupBed(t, LookupConfig{Entries: 16, Mode: LookupRecirculate, MaxRecircPasses: 20})
	populateAll(t, b, lt, SetDSCPAction(30))
	got := recvDSCP(b, 1)
	b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[1], 1000, 5))
	b.net.Engine.Run()
	if len(*got) != 1 || (*got)[0] != 30 {
		t.Fatalf("DSCPs = %v, want [30]", *got)
	}
	if lt.Stats.Deposits != 0 {
		t.Fatal("recirculate mode deposited the packet")
	}
	if lt.Stats.RecircPasses == 0 {
		t.Fatal("no recirculation passes recorded")
	}
	// Bandwidth saving: only an 8-byte READ went to the memory link, not
	// the 1000-byte packet.
	sent := b.sw.Port(b.memPort).TxMeter.Bytes
	if sent > 200 {
		t.Fatalf("memory link carried %d bytes; recirculate mode should stay tiny", sent)
	}
}

func TestLookupRecirculateExpires(t *testing.T) {
	// Unreachable memory server (pipeline drops responses): packet must
	// expire after MaxRecircPasses, not loop forever.
	b := newBed(t, 2, switchsim.Config{}, rnic.Config{})
	cfg := LookupConfig{Entries: 16, Mode: LookupRecirculate, MaxRecircPasses: 3}
	cfg.fillDefaults()
	ch := b.establish(t, cfg.Entries*cfg.EntrySize(), rnic.PSNTolerant, false)
	lt, err := NewLookupTable(ch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lt.DefaultOutPort = 1
	// No dispatcher: responses vanish.
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if ctx.Pkt != nil && ctx.Pkt.HasIPv4 && !ctx.Pkt.IsRoCE {
			lt.Lookup(ctx, ctx.Frame, ctx.Pkt)
			return
		}
		ctx.Drop()
	})
	// The parked frame is Retained across recirculation passes and must be
	// Finished (returned to the pool) exactly once when the packet expires:
	// the checked-out balance must come back to its pre-send level. A leak
	// shows as +1, a double release as -1.
	before := wire.DefaultPool.Stats().Balance()
	b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[1], 128, 9))
	b.net.Engine.Run()
	if lt.Stats.RecircExpired != 1 {
		t.Fatalf("expired = %d, want 1 (stats %+v)", lt.Stats.RecircExpired, lt.Stats)
	}
	if lt.Stats.RecircPasses != int64(cfg.MaxRecircPasses) {
		t.Fatalf("passes = %d, want %d", lt.Stats.RecircPasses, cfg.MaxRecircPasses)
	}
	if b.hosts[1].Received != 0 {
		t.Fatal("expired packet was still delivered")
	}
	if got := wire.DefaultPool.Stats().Balance(); got != before {
		t.Fatalf("parked frame not released exactly once on expiry: balance drifted %+d", got-before)
	}
}

func TestLookupConfigValidation(t *testing.T) {
	b := newBed(t, 2, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 1024, rnic.PSNTolerant, false)
	if _, err := NewLookupTable(ch, LookupConfig{Entries: 0}); err == nil {
		t.Fatal("zero entries accepted")
	}
	if _, err := NewLookupTable(ch, LookupConfig{Entries: 1000}); err == nil {
		t.Fatal("table larger than region accepted")
	}
}

func TestLookupOversizePacketDropped(t *testing.T) {
	b, lt := lookupBed(t, LookupConfig{Entries: 16, MaxPktBytes: 128})
	populateAll(t, b, lt, SetDSCPAction(1))
	b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[1], 1500, 1))
	b.net.Engine.Run()
	if b.hosts[1].Received != 0 {
		t.Fatal("oversize packet should have been dropped")
	}
	if lt.Stats.BadEntries != 1 {
		t.Fatalf("stats = %+v", lt.Stats)
	}
}

func TestPopulateLookupEntryBounds(t *testing.T) {
	region := &rnic.Region{RKey: 1, Base: 0, Data: make([]byte, 100)}
	cfg := LookupConfig{Entries: 4, MaxPktBytes: 16}
	if err := PopulateLookupEntry(region, cfg, 50, SetDSCPAction(1)); err == nil {
		t.Fatal("out-of-region entry accepted")
	}
	if err := PopulateLookupEntry(region, cfg, -1, SetDSCPAction(1)); err == nil {
		t.Fatal("negative entry accepted")
	}
}

func TestRewriteHelpersFixChecksum(t *testing.T) {
	frame := dataFrame(netsim.NewHost("a", 1), netsim.NewHost("b", 2), 100, 5)
	defer wire.DefaultPool.Put(frame)
	rewriteDSCP(frame, 63)
	var p wire.Packet
	if err := p.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if p.IP.DSCP != 63 {
		t.Fatalf("DSCP = %d", p.IP.DSCP)
	}
	// Checksum must still be valid.
	if !ipChecksumValid(frame) {
		t.Fatal("checksum stale after DSCP rewrite")
	}
	rewriteDstIP(frame, wire.IP4{9, 9, 9, 9})
	if !ipChecksumValid(frame) {
		t.Fatal("checksum stale after dst rewrite")
	}
}

func ipChecksumValid(frame []byte) bool {
	var h wire.IPv4
	if err := h.DecodeFromBytes(frame[wire.EthernetLen:]); err != nil {
		return false
	}
	tmp := make([]byte, wire.IPv4Len)
	copy(tmp, frame[wire.EthernetLen:wire.EthernetLen+wire.IPv4Len])
	var h2 wire.IPv4
	_ = h2.DecodeFromBytes(tmp)
	h2.Put(tmp)
	for i := range tmp {
		if tmp[i] != frame[wire.EthernetLen+i] {
			return false
		}
	}
	return true
}
