package core

import (
	"testing"

	"gem/internal/netsim"
	"gem/internal/rnic"
	"gem/internal/sim"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// Striped-path coverage: the three primitives as StripedQP consumers —
// multi-server exactness, doorbell batching, per-shard PSN wraparound,
// flush idempotence across rebind, and single-shard failover that leaves
// sibling shards undisturbed.

// stripedStateBed: like stateBed but with the counter space striped over
// nShards memory servers (plus spare extra servers for failover targets).
func stripedStateBed(t *testing.T, nShards, spare int, nicCfg rnic.Config, ssCfg StateStoreConfig) (*bed, *StateStore) {
	t.Helper()
	b := newBedN(t, 2, nShards+spare, switchsim.Config{}, nicCfg)
	ssCfg.fillDefaults()
	perShard := (ssCfg.Counters + nShards - 1) / nShards
	chans := make([]*Channel, nShards)
	for i := range chans {
		chans[i] = b.establishOn(t, i, perShard*8, rnic.PSNTolerant, false)
	}
	ss, err := NewStripedStateStore(chans, ssCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range chans {
		b.disp.Register(ch, ss)
	}
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if b.disp.Dispatch(ctx) {
			return
		}
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		ss.UpdateFlow(wire.FlowOf(ctx.Pkt))
		out := 1 - ctx.InPort
		if out >= 0 && out < 2 {
			ctx.Emit(out, ctx.Frame)
		} else {
			ctx.Drop()
		}
	})
	return b, ss
}

func TestStripedStateStoreCountsExactly(t *testing.T) {
	for _, shards := range []int{2, 4} {
		b, ss := stripedStateBed(t, shards, 0, rnic.Config{}, StateStoreConfig{Counters: 64})
		const n = 500
		for i := 0; i < n; i++ {
			b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[1], 256, uint16(i%8+1)))
		}
		b.net.Engine.Run()
		if got := remoteCounterSum(b, ss) + ss.PendingTotal(); got != n {
			t.Fatalf("shards=%d: remote+pending = %d, want %d (stats %+v)", shards, got, n, ss.Stats)
		}
		// Placement: counter i must live on server i mod N — nothing may
		// leak onto another shard's region.
		for i := 0; i < ss.cfg.Counters; i++ {
			ch, off := ss.CounterHome(i)
			if ch.PeerMAC != b.memNICs[i%shards].MAC {
				t.Fatalf("shards=%d: counter %d homed on the wrong server", shards, i)
			}
			if off != (i/shards)*8 {
				t.Fatalf("shards=%d: counter %d offset = %d, want %d", shards, i, off, (i/shards)*8)
			}
		}
		// Every shard carried traffic (8 flows spread over 64 counters).
		for i := 0; i < shards; i++ {
			if ss.Transport().Shard(i).Stats.FetchAdd.Posted == 0 {
				t.Fatalf("shards=%d: shard %d posted nothing", shards, i)
			}
		}
	}
}

func TestStripedStateStoreDoorbellReducesFrames(t *testing.T) {
	// Doorbell mode with Batch=8: same-counter deltas coalesce in the
	// pending ring before any frame is built, so frames-on-wire shrink by
	// the batch factor while the count stays exact.
	b, ss := stripedStateBed(t, 2, 0, rnic.Config{},
		StateStoreConfig{Counters: 8, Batch: 8, Doorbell: true})
	const n = 320
	for i := 0; i < n; i++ {
		b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[1], 1500, 3))
	}
	b.net.Engine.Run()
	if got := remoteCounterSum(b, ss) + ss.PendingTotal(); got != n {
		t.Fatalf("remote+pending = %d, want %d (stats %+v)", got, n, ss.Stats)
	}
	if ss.Stats.FAAIssued == 0 || ss.Stats.FAAIssued > n/8+2 {
		t.Fatalf("FAAs = %d for %d updates at batch 8 (doorbell)", ss.Stats.FAAIssued, n)
	}
}

func TestStripedStateStoreAcrossPSNWrap(t *testing.T) {
	// Per-shard PSN spaces are independent: both must survive their own
	// 0xFFFFFF → 0 crossing while cumulative ACK retirement stays exact.
	b, ss := stripedStateBed(t, 2, 0, rnic.Config{}, StateStoreConfig{Counters: 64, MaxOutstanding: 8})
	for i := 0; i < ss.Channels(); i++ {
		ch, _ := ss.CounterHome(i)
		start := uint32(0xFFFFF4 + uint32(i)*5) // distinct wrap points
		ch.SetPSN(start)
		b.memNICs[i].LookupQP(ch.PeerQPN).SetExpectedPSN(start)
	}
	const n = 200
	for i := 0; i < n; i++ {
		b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[1], 256, uint16(i%8+1)))
	}
	b.net.Engine.Run()
	for i := 0; i < ss.Channels(); i++ {
		ch, _ := ss.CounterHome(i)
		if ch.PSN() >= 0xFFFFF4 {
			t.Fatalf("shard %d PSN stream never wrapped (PSN %#x)", i, ch.PSN())
		}
	}
	if got := remoteCounterSum(b, ss); got != n {
		t.Fatalf("remote counters = %d, want %d (stats %+v)", got, n, ss.Stats)
	}
	if p := ss.Transport().Pending(); p != 0 {
		t.Fatalf("transport still holds %d WQEs after drain", p)
	}
}

func TestStateStoreNoDoubleFlushAcrossRebind(t *testing.T) {
	// Regression (immediate path): a rebind arriving between a batch's
	// accumulate and its flush must post the parked delta exactly once to
	// the new server — not once per flush trigger.
	b := newBedN(t, 1, 2, switchsim.Config{}, rnic.Config{})
	primary := b.establishOn(t, 0, 64*8, rnic.PSNTolerant, false)
	standby := b.establishOn(t, 1, 64*8, rnic.PSNTolerant, false)
	ss, err := NewStateStore(primary, StateStoreConfig{
		Counters: 64, MaxOutstanding: 1, Batch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.disp.Register(primary, ss)
	b.disp.Register(standby, ss)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if !b.disp.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	ss.Update(0, 1) // posts immediately, occupying the single slot
	ss.Update(1, 1)
	ss.Update(1, 1) // parks: delta 2 < Batch while a FAA is outstanding
	ss.Rebind(standby)
	b.net.Engine.Run()
	v0, _ := b.memNICs[0].ReadCounter(primary.RKey, primary.Base)
	v1, _ := b.memNICs[1].ReadCounter(standby.RKey, standby.Base+8)
	if v0 != 1 {
		t.Fatalf("in-flight FAA on the old server = %d, want 1", v0)
	}
	if v1 != 2 {
		t.Fatalf("parked batch on the new server = %d, want exactly 2 (stats %+v)", v1, ss.Stats)
	}
	if ss.PendingTotal() != 0 {
		t.Fatalf("pending = %d after drain", ss.PendingTotal())
	}
}

func TestStateStoreDoorbellNoDoubleFlushAcrossRebind(t *testing.T) {
	// Regression (doorbell path): deltas deferred in the pending ring when
	// the rebind lands must flush exactly once to the new server, no matter
	// which trigger fires first — the age timer armed before the rebind,
	// the delta trigger after it, or the rebind's own flush.
	b := newBedN(t, 1, 2, switchsim.Config{}, rnic.Config{})
	primary := b.establishOn(t, 0, 64*8, rnic.PSNTolerant, false)
	standby := b.establishOn(t, 1, 64*8, rnic.PSNTolerant, false)
	ss, err := NewStateStore(primary, StateStoreConfig{
		Counters: 64, MaxOutstanding: 4, Batch: 4, Doorbell: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.disp.Register(primary, ss)
	b.disp.Register(standby, ss)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if !b.disp.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	ss.Update(1, 1)
	ss.Update(1, 1)
	ss.Update(1, 1) // delta 3 < Batch: resident in the ring, age timer armed
	ss.Rebind(standby)
	ss.Update(1, 1) // delta 4 = Batch: posts once, to the new endpoint
	b.net.Engine.Run() // the pre-rebind age timer also fires in here
	v0, _ := b.memNICs[0].ReadCounter(primary.RKey, primary.Base+8)
	v1, _ := b.memNICs[1].ReadCounter(standby.RKey, standby.Base+8)
	if v0 != 0 {
		t.Fatalf("old server got %d, want 0 (nothing was in flight at rebind)", v0)
	}
	if v1 != 4 {
		t.Fatalf("new server = %d, want exactly 4 (double-flush?) stats %+v db %+v",
			v1, ss.Stats, ss.Transport().Shard(0).DoorbellStatsSnapshot())
	}
	if ss.Stats.FAAIssued != 1 {
		t.Fatalf("FAAs = %d, want 1 (one coalesced batch)", ss.Stats.FAAIssued)
	}
}

func TestStateStoreReconcileAcrossShardRebind(t *testing.T) {
	// Reconcile racing a shard rebind: a degraded backlog parked on shard 1
	// must flush exactly once to the rebind target — not once at the rebind
	// and again at the Reconcile — and the abort of shard 1's in-flight FAAs
	// must return every credit to the old channel's window (no leak). The
	// sibling shard is never disturbed.
	b, ss := stripedStateBed(t, 2, 1, rnic.Config{}, StateStoreConfig{
		Counters: 8, MaxOutstanding: 2,
	})
	spare := b.establishOn(t, 2, 4*8, rnic.PSNTolerant, false)
	b.disp.Register(spare, ss)

	// Phase 1 (t=0): two FAAs in flight on each shard's window, two more
	// odd-counter updates parked in the pending table.
	ss.Update(0, 1)
	ss.Update(2, 1)
	ss.Update(1, 1)
	ss.Update(3, 1)
	ss.Update(5, 1) // window full: accumulates
	ss.Update(7, 1)
	oldCredits := ss.ShardCredits(1)
	if oldCredits.Outstanding() != 2 {
		t.Fatalf("setup: shard 1 outstanding = %d, want 2", oldCredits.Outstanding())
	}

	// Phase 2: degrade (a supervisor would do this on typed errors), grow
	// the backlog, then rebind shard 1 while the window is still in flight.
	ss.SetDegraded(true)
	for _, idx := range []int{1, 3, 5, 7} {
		ss.Update(idx, 1)
	}
	ss.RebindShard(1, spare)
	if oldCredits.Outstanding() != 0 {
		t.Fatalf("abort leaked credits: %d still outstanding on the old window",
			oldCredits.Outstanding())
	}
	if ss.Stats.FAAIssued != 4 {
		t.Fatalf("rebind flushed a degraded backlog: %d FAAs, want 4", ss.Stats.FAAIssued)
	}

	ss.Reconcile()
	b.net.Engine.Run()

	// The two aborted in-flight FAAs still execute on the (alive) old server;
	// their late ACKs route to a QPN the store no longer owns and are
	// ignored. The backlog of 6 lands on the spare exactly once.
	sumOn := func(nic *rnic.NIC, ch *Channel) uint64 {
		var s uint64
		for off := 0; off < 4*8; off += 8 {
			v, _ := nic.ReadCounter(ch.RKey, ch.Base+uint64(off))
			s += v
		}
		return s
	}
	ch0, _ := ss.CounterHome(0)
	if got := sumOn(b.memNICs[0], ch0); got != 2 {
		t.Fatalf("sibling shard disturbed: %d, want 2", got)
	}
	if got := sumOn(b.memNICs[2], spare); got != 6 {
		t.Fatalf("rebind target = %d, want exactly 6 (double flush?) stats %+v", got, ss.Stats)
	}
	if ss.PendingTotal() != 0 {
		t.Fatalf("pending = %d after reconcile drain", ss.PendingTotal())
	}
	if ss.Stats.DegradedEntries != 1 || ss.Stats.DegradedExits != 1 || ss.Stats.Reconciles != 1 {
		t.Fatalf("degraded accounting off: %+v", ss.Stats)
	}
	for si := 0; si < 2; si++ {
		if n := ss.ShardCredits(si).Outstanding(); n != 0 {
			t.Fatalf("shard %d credits leaked: %d outstanding after drain", si, n)
		}
	}
}

// stripedLossyBed wires 1 host and nMem memory servers whose links all drop
// frames with prob loss.
func stripedLossyBed(t *testing.T, nMem int, loss float64) *bed {
	t.Helper()
	n := netsim.New(11)
	sw := switchsim.New("tor", n.Engine, switchsim.Config{})
	h := netsim.NewHost("h", 1)
	hp, _ := n.Connect(sw, h, netsim.Link40G())
	ports := []*netsim.Port{hp}
	b := &bed{net: n, sw: sw, hosts: []*netsim.Host{h}}
	for i := 0; i < nMem; i++ {
		memHost := netsim.NewHost("memsrv", uint32(200+i))
		memNIC := rnic.New("memsrv-nic", memHost, rnic.Config{})
		lossy := netsim.Link40G()
		lossy.LossRate = loss
		sp, np := n.Connect(sw, memNIC, lossy)
		memNIC.Bind(n.Engine, np)
		ports = append(ports, sp)
		b.memNICs = append(b.memNICs, memNIC)
		b.memHosts = append(b.memHosts, memHost)
	}
	sw.Bind(ports...)
	b.memNIC, b.memHost, b.memPort = b.memNICs[0], b.memHosts[0], 1
	b.ctrl = NewController(sw)
	b.disp = NewDispatcher()
	t.Cleanup(n.Engine.Run)
	return b
}

func TestStripedStateStoreShardFailoverUnderLoss(t *testing.T) {
	// Single-shard failover on the reliable (go-back-N) path: shard 0's
	// server is dead from the start, its retransmitter resends into the
	// void until the shard rebinds to a standby; shard 1 keeps running
	// go-back-N recovery over a lossy link the whole time. Shard 1's exact
	// count proves the failover never disturbed it; shard 0's proves the
	// parked window and pending deltas survived the rebind exactly once
	// (the dead primary executed nothing).
	b := stripedLossyBed(t, 3, 0.02)
	strict := func(port int, nic *rnic.NIC) *Channel {
		ch, err := b.ctrl.Establish(ChannelSpec{
			SwitchPort: port, NIC: nic,
			RegionBase: 0x1000, RegionSize: 4096,
			Mode: rnic.PSNStrict, AckReq: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ch
	}
	ch0 := strict(1, b.memNICs[0])
	ch1 := strict(2, b.memNICs[1])
	standby := strict(3, b.memNICs[2])
	ss, err := NewStripedStateStore([]*Channel{ch0, ch1}, StateStoreConfig{Counters: 8})
	if err != nil {
		t.Fatal(err)
	}
	rt0, err := NewRetransmitter(ch0, 8)
	if err != nil {
		t.Fatal(err)
	}
	rt1, err := NewRetransmitter(ch1, 8)
	if err != nil {
		t.Fatal(err)
	}
	rt0.Timeout, rt1.Timeout = 20*sim.Microsecond, 20*sim.Microsecond
	ss.SetShardRetransmitter(0, rt0)
	ss.SetShardRetransmitter(1, rt1)
	rt0.Inner, rt1.Inner = ss, ss
	b.disp.Register(ch0, rt0)
	b.disp.Register(ch1, rt1)
	b.disp.Register(standby, rt0)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if !b.disp.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	b.memNICs[0].Fail() // shard 0's server is dead before the first FAA
	const n = 80        // 40 updates per shard (idx parity = shard)
	for i := 0; i < n; i++ {
		ss.Update(i%8, 1)
	}
	b.net.Engine.RunFor(500 * sim.Microsecond)
	rt0.Retarget(standby)
	ss.RebindShard(0, standby)
	ss.Update(0, 1) // nudge the flush loop post-rebind
	b.net.Engine.Run()

	var shard0, shard1 uint64
	for i := 0; i < 8; i++ {
		ch, off := ss.CounterHome(i)
		nic := b.memNICs[2]
		if i%2 == 1 {
			nic = b.memNICs[1]
		}
		v, _ := nic.ReadCounter(ch.RKey, ch.Base+uint64(off))
		if i%2 == 0 {
			shard0 += v
		} else {
			shard1 += v
		}
	}
	if shard1 != n/2 {
		t.Fatalf("shard 1 disturbed by sibling failover: %d, want %d (rt1 rexmit %d)",
			shard1, n/2, rt1.Retransmits)
	}
	if shard0+ss.PendingTotal() != n/2+1 {
		t.Fatalf("shard 0 after failover: standby %d + pending %d, want %d",
			shard0, ss.PendingTotal(), n/2+1)
	}
	if rt0.Retransmits == 0 {
		t.Fatal("shard 0 never retransmitted into the dead server")
	}
	if rt1.Unacked() != 0 || rt0.Unacked() != 0 {
		t.Fatalf("unacked after drain: rt0=%d rt1=%d", rt0.Unacked(), rt1.Unacked())
	}
}

func TestPacketBufferRebindChannelMidFlight(t *testing.T) {
	// Single-channel failover on the striped ring: channel 0's server dies
	// with READs in flight; a standby holding a mirror of the ring region
	// takes over via RebindChannel. In-flight READs migrate (Retarget) and
	// repost against the standby; channel 1 is untouched; delivery stays
	// lossless and in order.
	swCfg := switchsim.Config{BufferBytes: 128 << 10}
	pbCfg := PacketBufferConfig{HighWaterBytes: 16 << 10, LowWaterBytes: 64 << 10}
	b := newBedN(t, 3, 3, swCfg, rnic.Config{MTU: 4096})
	chans := []*Channel{
		b.establishOn(t, 0, 1<<22, rnic.PSNTolerant, false),
		b.establishOn(t, 1, 1<<22, rnic.PSNTolerant, false),
	}
	standby := b.establishOn(t, 2, 1<<22, rnic.PSNTolerant, false)
	pb, err := NewPacketBuffer(chans, 2, pbCfg)
	if err != nil {
		t.Fatal(err)
	}
	pb.RegisterWith(b.disp)
	b.disp.Register(standby, pb)
	b.sw.Hooks = pb
	var got []uint16
	b.hosts[2].Handler = func(_ *netsim.Port, frame []byte) {
		var p wire.Packet
		if err := p.DecodeFromBytes(frame); err == nil && p.HasUDP {
			got = append(got, p.UDP.SrcPort)
		}
	}
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if b.disp.Dispatch(ctx) {
			return
		}
		if ctx.Pkt != nil && ctx.Pkt.Eth.Dst == b.hosts[2].MAC {
			pb.Admit(ctx, ctx.Frame)
			return
		}
		ctx.Drop()
	})
	// Phase 1: a 2:1 incast (host 1 sends filler) with loading paused so
	// the ring fills and every WRITE lands (the standby mirror must capture
	// a settled region).
	pb.PauseLoading()
	const n = 120
	for i := 0; i < n; i++ {
		f := wire.BuildDataFrame(b.hosts[0].MAC, b.hosts[2].MAC, b.hosts[0].IP, b.hosts[2].IP,
			uint16(i+1), 9999, 1500, nil)
		b.net.Ports(b.hosts[0])[0].Send(f)
		b.net.Ports(b.hosts[1])[0].Send(dataFrame(b.hosts[1], b.hosts[2], 1500, 60000))
	}
	b.net.Engine.Run()
	if pb.Stats.Stored == 0 {
		t.Fatal("nothing spilled: watermark never hit")
	}
	// Phase 2: mirror channel 0's region onto the standby, crash server 0,
	// resume loading — shard-0 READs now go to a dead server and hang.
	copy(b.memNICs[2].LookupRegion(standby.RKey).Data,
		b.memNICs[0].LookupRegion(chans[0].RKey).Data)
	b.memNICs[0].Fail()
	pb.ResumeLoading()
	b.net.Engine.RunFor(100 * sim.Microsecond)
	if pb.Transport(0).Pending() == 0 {
		t.Fatal("no shard-0 READs in flight at rebind time")
	}
	// Phase 3: rebind shard 0 to the standby; the hung READs migrate.
	pb.RebindChannel(0, standby)
	b.net.Engine.Run()
	if len(got) != 2*n {
		t.Fatalf("delivered %d/%d across the failover (stats %+v)", len(got), 2*n, pb.Stats)
	}
	var seq []uint16
	for _, p := range got {
		if p != 60000 {
			seq = append(seq, p)
		}
	}
	if len(seq) != n {
		t.Fatalf("h0 frames delivered = %d/%d", len(seq), n)
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] != seq[i-1]+1 {
			t.Fatalf("reordering at %d: %d then %d", i, seq[i-1], seq[i])
		}
	}
	if pb.Stats.ReadRetries == 0 {
		t.Fatal("no READs migrated across the rebind")
	}
	if pb.Transport(1).Stats.Read.Retried != 0 {
		t.Fatalf("sibling shard retried %d READs", pb.Transport(1).Stats.Read.Retried)
	}
	if pb.Detouring() {
		t.Fatal("stuck in detour after drain")
	}
}

func TestStripedLookupTableRoutesByHomeShard(t *testing.T) {
	// Entries stripe over two servers (idx mod N picks the region); a miss
	// must fetch from — and deposit through — its home shard only, and the
	// applied action proves which region answered.
	b := newBedN(t, 2, 2, switchsim.Config{}, rnic.Config{MTU: 4096})
	cfg := LookupConfig{Entries: 64}
	cfg.fillDefaults()
	perShard := (cfg.Entries + 1) / 2 * cfg.EntrySize()
	chans := []*Channel{
		b.establishOn(t, 0, perShard, rnic.PSNTolerant, false),
		b.establishOn(t, 1, perShard, rnic.PSNTolerant, false),
	}
	lt, err := NewStripedLookupTable(chans, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lt.DefaultOutPort = 1
	for _, ch := range chans {
		b.disp.Register(ch, lt)
	}
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if b.disp.Dispatch(ctx) {
			return
		}
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		lt.Lookup(ctx, ctx.Frame, ctx.Pkt)
	})
	// Shard-distinct actions: entries on shard s carry DSCP 10+s.
	regions := []*rnic.Region{
		b.memNICs[0].LookupRegion(chans[0].RKey),
		b.memNICs[1].LookupRegion(chans[1].RKey),
	}
	for i := 0; i < cfg.Entries; i++ {
		if err := PopulateStripedLookupEntry(regions, cfg, i, SetDSCPAction(uint8(10+i%2))); err != nil {
			t.Fatal(err)
		}
	}
	got := recvDSCP(b, 1)
	var want []uint8
	for p := uint16(1); p <= 16; p++ {
		f := dataFrame(b.hosts[0], b.hosts[1], 256, p)
		var pkt wire.Packet
		if err := pkt.DecodeFromBytes(f); err != nil {
			t.Fatal(err)
		}
		idx := wire.FlowOf(&pkt).Index(cfg.Entries)
		want = append(want, uint8(10+idx%2))
		b.net.Ports(b.hosts[0])[0].Send(f)
		b.net.Engine.Run() // serialize flows so delivery order matches send order
	}
	if len(*got) != len(want) {
		t.Fatalf("delivered %d/%d", len(*got), len(want))
	}
	for i := range want {
		if (*got)[i] != want[i] {
			t.Fatalf("flow %d: DSCP %d, want %d (wrong home shard answered)", i, (*got)[i], want[i])
		}
	}
	// Both shards must have actually served lookups.
	for i := 0; i < 2; i++ {
		if lt.Transport().Shard(i).Stats.Read.Posted == 0 {
			t.Fatalf("shard %d served no lookups", i)
		}
	}
}
