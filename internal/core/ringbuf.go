package core

import (
	"fmt"
	"slices"

	"gem/internal/core/verbs"
	"gem/internal/sim"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// PacketBufferConfig tunes the packet-buffer primitive.
type PacketBufferConfig struct {
	// EntrySize is the ring slot size; each slot stores one full-sized
	// Ethernet frame plus a 2-byte length prefix (paper: "we allocate the
	// buffer to store full-sized Ethernet frame in each entry").
	EntrySize int
	// HighWaterBytes: when the protected egress queue exceeds this, new
	// packets detour to the remote ring.
	HighWaterBytes int
	// LowWaterBytes: loading from the ring proceeds while the protected
	// queue sits below this. The two watermarks are independent triggers;
	// LowWater above HighWater is legal (load aggressively even while
	// still spilling).
	LowWaterBytes int
	// MaxOutstandingReads bounds in-flight READ requests across all
	// channels.
	MaxOutstandingReads int
	// ReadTimeout re-issues a READ whose response never arrived (READs
	// are idempotent, so retry is always safe). Zero = 200 µs.
	ReadTimeout sim.Duration
	// PerChannelWindow caps in-flight READs per channel (the QP's responder
	// resources), independent of the global MaxOutstandingReads. 0 =
	// MaxOutstandingReads, which keeps the global limit binding.
	PerChannelWindow int
	// ReadLowWatermark is the per-channel window's gate-release point. 0 =
	// PerChannelWindow-1 (no hysteresis gap).
	ReadLowWatermark int
	// SpillHighWaterBytes, when positive, gates spilling per memory
	// channel: once the egress queue toward a channel's server exceeds it,
	// new spills stop routing to the ring until the queue drains to
	// SpillLowWaterBytes. Gated spills bypass (high priority) or shed (low
	// priority) instead of piling onto a saturated memory link.
	SpillHighWaterBytes int
	SpillLowWaterBytes  int
	// ShedRingEntries, when positive, sheds PriorityLow packets once ring
	// occupancy reaches this many entries, reserving the remaining ring for
	// PriorityHigh traffic. 0 = disabled.
	ShedRingEntries int
	// UnlimitedWindow disables per-channel credit refusal while keeping the
	// accounting — the test-only unbounded-growth ablation.
	UnlimitedWindow bool
}

// DefaultPacketBufferConfig returns the defaults used by the experiments.
func DefaultPacketBufferConfig() PacketBufferConfig {
	return PacketBufferConfig{
		EntrySize:           2048,
		HighWaterBytes:      512 << 10,
		LowWaterBytes:       256 << 10,
		MaxOutstandingReads: 16,
		ReadTimeout:         200 * sim.Microsecond,
	}
}

func (c *PacketBufferConfig) fillDefaults() {
	d := DefaultPacketBufferConfig()
	if c.EntrySize == 0 {
		c.EntrySize = d.EntrySize
	}
	if c.HighWaterBytes == 0 {
		c.HighWaterBytes = d.HighWaterBytes
	}
	if c.LowWaterBytes == 0 {
		c.LowWaterBytes = d.LowWaterBytes
	}
	if c.MaxOutstandingReads == 0 {
		c.MaxOutstandingReads = d.MaxOutstandingReads
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = d.ReadTimeout
	}
	if c.PerChannelWindow == 0 {
		c.PerChannelWindow = c.MaxOutstandingReads
	}
	if c.SpillLowWaterBytes == 0 {
		c.SpillLowWaterBytes = c.SpillHighWaterBytes / 2
	}
}

// PacketBufferStats are the primitive's observable counters.
type PacketBufferStats struct {
	Bypassed       int64 // packets forwarded directly (queue healthy)
	Stored         int64 // packets spilled to the remote ring
	Loaded         int64 // packets pulled back and forwarded
	RingDrops      int64 // packets dropped because the remote ring was full
	StoreFails     int64 // WRITE requests the memory-link egress refused
	ReadRetries    int64 // READs re-issued after a timeout
	StaleResponses int64 // responses that matched no outstanding READ
	MaxDepth       int64 // peak ring occupancy in entries
	// DegradedBypassed counts packets sent straight to the egress queue
	// while the buffer was degraded (spilling suspended).
	DegradedBypassed int64
	// ShedLowPrio counts PriorityLow packets dropped at admission because
	// the ring crossed ShedRingEntries or the spill path was gated.
	ShedLowPrio int64
	// PressureBypassed counts PriorityHigh packets sent straight to the
	// egress queue while spilling was gated — the ordering rule is knowingly
	// violated to avoid losing exact traffic, and the violation is counted.
	PressureBypassed int64
	// SpillGateEntries / SpillGateExits count the per-channel spill gate's
	// watermark transitions.
	SpillGateEntries int64
	SpillGateExits   int64
	// DegradedEntries / DegradedExits count SetDegraded edges.
	DegradedEntries int64
	DegradedExits   int64
	// ModeChanges counts SetConsistencyMode transitions between distinct
	// modes.
	ModeChanges int64
}

// PacketBuffer is the packet-buffer primitive (§4): a ring buffer in remote
// DRAM that extends one egress queue. When the queue passes the high-water
// mark the switch WRITEs every subsequent packet bound for it into the
// ring; as the queue drains it READs them back in order and forwards them.
// While any packet sits in the ring, all new arrivals for the port are also
// ring-routed, preserving order (the paper's ordering rule).
//
// The ring may be striped over several channels — "one or multiple servers"
// in §2.1 — because once detouring, the ordering rule sends the full
// arrival rate through the memory links: an n:1 incast at line rate needs
// about n server links of remote-buffer bandwidth. Placement lives in the
// striped transport (verbs.StripedQP): consecutive entries alternate
// servers and each shard's slot index advances like a private ring.
//
// Since the work-queue refactor the buffer is a thin consumer of the verbs
// transport: it decides *what* to spill and load (cursors, watermarks,
// ordering) and posts READs through per-channel QPs; PSN tracking, stale
// detection, response reassembly, credit release and timeout collection all
// live in the transport. The ring-entry number g doubles as the WQE token.
type PacketBuffer struct {
	chans []*Channel
	sw    *switchsim.Switch
	cfg   PacketBufferConfig

	// OutPort is the protected egress port.
	OutPort int

	perChan int // entries per channel
	total   int // total ring entries

	// Ring cursors are monotonically increasing; the striped transport owns
	// entry placement (home channel and slot offset derived from g).
	// tail: next entry to write; readNext: next to request;
	// emitNext: next to forward (order restoration point).
	cursors *switchsim.RegisterArray // 0=tail 1=readNext 2=emitNext
	detour  bool
	paused  bool
	// degraded suspends spilling: new packets take the direct path (falling
	// back to plain tail-drop queueing) while already-stored entries keep
	// draining. The ordering rule is knowingly violated — that is the
	// degradation contract when remote memory is unreliable.
	degraded bool
	mode     ConsistencyMode

	byQPN map[uint32]int // channel ID → index in chans

	// striped shards the work queue across the channels: per-shard QPs with
	// private admission windows (one credit per in-flight READ), token =
	// ring entry, merged behind one post/complete surface.
	striped *verbs.StripedQP
	// spillGated tracks the per-channel spill gate (SpillHighWaterBytes
	// hysteresis on the memory-link egress queue).
	spillGated []bool

	// AdmitGate, when set, is an external veto consulted before spilling to
	// a channel — the remote-memory pressure monitor hooks in here to stop
	// new spills toward servers past their occupancy watermark.
	AdmitGate func(chanIdx int) bool

	// reorder restores global emit order across channels for completed
	// entries (nil marks a malformed entry consumed without forwarding).
	reorder map[uint64][]byte

	Stats PacketBufferStats
}

const (
	regTail = iota
	regReadNext
	regEmitNext
)

// NewPacketBuffer wires the primitive to one or more channels protecting
// outPort. All channels should have the same region size and MTU.
func NewPacketBuffer(chans []*Channel, outPort int, cfg PacketBufferConfig) (*PacketBuffer, error) {
	cfg.fillDefaults()
	if len(chans) == 0 {
		return nil, fmt.Errorf("core: packet buffer needs at least one channel")
	}
	perChan := chans[0].Size / cfg.EntrySize
	for _, ch := range chans {
		if n := ch.Size / cfg.EntrySize; n < perChan {
			perChan = n
		}
	}
	if perChan < 2 {
		return nil, fmt.Errorf("core: ring would have %d entries per channel; need >= 2", perChan)
	}
	sw := chans[0].sw
	regs, err := switchsim.NewRegisterArray(sw.SRAM,
		fmt.Sprintf("pktbuf%d/cursors", chans[0].ID), 3)
	if err != nil {
		return nil, err
	}
	b := &PacketBuffer{
		chans: chans, sw: sw, cfg: cfg, OutPort: outPort,
		perChan: perChan, total: perChan * len(chans),
		cursors:    regs,
		byQPN:      make(map[uint32]int, len(chans)),
		reorder:    make(map[uint64][]byte),
		spillGated: make([]bool, len(chans)),
	}
	qps := make([]*verbs.QP, len(chans))
	for i, ch := range chans {
		b.byQPN[ch.ID] = i
		credits := ch.EnsureCredits(CreditConfig{
			Window: cfg.PerChannelWindow, Low: cfg.ReadLowWatermark,
			Unlimited: cfg.UnlimitedWindow,
		})
		qps[i] = verbs.NewQP(ch, credits, verbs.QPConfig{
			TokenIndex: true,
			Timeout:    cfg.ReadTimeout,
			// Progress guarantee: if a response is lost and the egress goes
			// idle (no departures to re-trigger loading), this kick retries.
			Kick:      b.maybeLoad,
			KickDelay: cfg.ReadTimeout + sim.Microsecond,
		})
	}
	b.striped = verbs.NewStriped(qps, verbs.StripeConfig{
		EntrySize: cfg.EntrySize, SlotsPerShard: perChan,
	})
	return b, nil
}

// RegisterWith binds the primitive's channels to the dispatcher.
func (b *PacketBuffer) RegisterWith(d *Dispatcher) {
	for _, ch := range b.chans {
		d.Register(ch, b)
	}
}

// Config returns the effective configuration.
func (b *PacketBuffer) Config() PacketBufferConfig { return b.cfg }

// Depth returns the current ring occupancy in entries (stored, not yet
// forwarded).
func (b *PacketBuffer) Depth() int {
	return int(b.cursors.Get(regTail) - b.cursors.Get(regEmitNext))
}

// Detouring reports whether the primitive is currently routing packets via
// the remote ring.
func (b *PacketBuffer) Detouring() bool { return b.detour }

// PauseLoading suspends READ issue — the §5 microbenchmark "manually
// start[s] the two steps respectively", and separating phases lets the
// harness measure pure store and pure load rates.
func (b *PacketBuffer) PauseLoading() { b.paused = true }

// ResumeLoading re-enables READ issue and immediately pulls.
func (b *PacketBuffer) ResumeLoading() {
	b.paused = false
	b.maybeLoad()
}

// SetDegraded suspends (true) or re-enables (false) spilling to the remote
// ring. Stored entries continue to drain either way, so clearing degraded
// mode needs no reconcile step.
func (b *PacketBuffer) SetDegraded(on bool) {
	if on && !b.degraded {
		b.Stats.DegradedEntries++
	} else if !on && b.degraded {
		b.Stats.DegradedExits++
	}
	b.degraded = on
}

// Degraded reports whether spilling is suspended.
func (b *PacketBuffer) Degraded() bool { return b.degraded }

// SetConsistencyMode maps the consistency spectrum onto the buffer's two
// postures: Eventual bypasses the remote ring (frames emit directly, losing
// the ordering detour), Strict and BoundedStaleness spill normally — the
// ring holds packets, not reconcilable state, so there is no intermediate
// bounded posture.
func (b *PacketBuffer) SetConsistencyMode(m ConsistencyMode) {
	if m != b.mode {
		b.Stats.ModeChanges++
	}
	b.mode = m
	b.SetDegraded(m == Eventual)
}

// Mode reports the buffer's current consistency contract.
func (b *PacketBuffer) Mode() ConsistencyMode { return b.mode }

// Reconcile is the supervisor's recovery hook: stored entries drain on
// their own (SetDegraded docs), so recovery is just re-enabling the spill
// path and pulling whatever is ready.
func (b *PacketBuffer) Reconcile() {
	b.SetConsistencyMode(Strict)
	b.maybeLoad()
}

// ChannelCredits exposes channel i's admission window for introspection.
func (b *PacketBuffer) ChannelCredits(i int) *Credits { return b.striped.Shard(i).Credits() }

// Transport exposes channel i's work queue for introspection (gem.Stats).
func (b *PacketBuffer) Transport(i int) *verbs.QP { return b.striped.Shard(i) }

// Channels reports how many channels stripe the ring.
func (b *PacketBuffer) Channels() int { return len(b.chans) }

// RebindChannel points stripe shard i at a replacement channel without
// disturbing its siblings: in-flight READs migrate (credits move
// window-to-window, entries repost in global order so PSN assignment stays
// reproducible). READs are idempotent, so reposting them is always safe;
// responses still arriving from the old server complete as stale.
func (b *PacketBuffer) RebindChannel(i int, ch *Channel) {
	old := b.chans[i]
	delete(b.byQPN, old.ID)
	b.byQPN[ch.ID] = i
	b.chans[i] = ch
	credits := ch.EnsureCredits(CreditConfig{
		Window: b.cfg.PerChannelWindow, Low: b.cfg.ReadLowWatermark,
		Unlimited: b.cfg.UnlimitedWindow,
	})
	moved := b.striped.Shard(i).Retarget(ch, credits, nil)
	slices.Sort(moved)
	for _, g := range moved {
		if b.striped.Repost(g) {
			b.Stats.ReadRetries++
		}
	}
	b.maybeLoad()
}

// ChannelOccupancyBytes reports the bytes channel i's ring region currently
// holds (stored, not yet forwarded) — the pressure monitor's gauge input.
func (b *PacketBuffer) ChannelOccupancyBytes(i int) int64 {
	n := uint64(len(b.chans))
	// onChan(x) = number of entries g < x with g ≡ i (mod n).
	onChan := func(x uint64) uint64 { return (x + n - 1 - uint64(i)) / n }
	tail, emit := b.cursors.Get(regTail), b.cursors.Get(regEmitNext)
	return int64(onChan(tail)-onChan(emit)) * int64(b.cfg.EntrySize)
}

// spillAllowed decides whether a packet of priority prio may route to the
// remote ring right now, updating the per-channel spill gate's hysteresis
// for the channel the next entry would land on.
func (b *PacketBuffer) spillAllowed(prio switchsim.Priority) bool {
	c := b.striped.ShardOf(b.cursors.Get(regTail))
	if b.cfg.SpillHighWaterBytes > 0 {
		q := b.sw.QueueBytes(b.chans[c].Port)
		if !b.spillGated[c] && q >= b.cfg.SpillHighWaterBytes {
			b.spillGated[c] = true
			b.Stats.SpillGateEntries++
		} else if b.spillGated[c] && q <= b.cfg.SpillLowWaterBytes {
			b.spillGated[c] = false
			b.Stats.SpillGateExits++
		}
		if b.spillGated[c] {
			return false
		}
	}
	if b.AdmitGate != nil && !b.AdmitGate(c) {
		return false
	}
	if prio == switchsim.PriorityLow && b.cfg.ShedRingEntries > 0 &&
		b.Depth() >= b.cfg.ShedRingEntries {
		return false
	}
	return true
}

// Admit is the data-plane action: the application pipeline calls it for
// every packet destined to the protected port instead of Emit. It decides
// between the direct path and the remote ring. Admit is the high-priority
// path: it never sheds.
func (b *PacketBuffer) Admit(ctx *switchsim.Context, frame []byte) {
	b.AdmitPrio(ctx, frame, switchsim.PriorityHigh)
}

// AdmitPrio is Admit with an admission priority. When the spill path is
// gated — memory link saturated, remote region past its watermark, or the
// ring past its low-priority reservation — PriorityHigh packets bypass to
// the egress queue (ordering knowingly violated, counted in
// PressureBypassed) and PriorityLow packets are shed (ShedLowPrio).
func (b *PacketBuffer) AdmitPrio(ctx *switchsim.Context, frame []byte, prio switchsim.Priority) {
	if b.degraded {
		b.Stats.DegradedBypassed++
		ctx.Emit(b.OutPort, frame)
		return
	}
	if !b.detour && ctx.QueueBytes(b.OutPort)+len(frame) <= b.cfg.HighWaterBytes {
		b.Stats.Bypassed++
		ctx.Emit(b.OutPort, frame)
		return
	}
	if !b.spillAllowed(prio) {
		if prio == switchsim.PriorityHigh {
			b.Stats.PressureBypassed++
			ctx.Emit(b.OutPort, frame)
		} else {
			b.Stats.ShedLowPrio++
			ctx.DropFrame(frame)
		}
		return
	}
	b.store(frame)
	b.maybeLoad()
}

func (b *PacketBuffer) store(frame []byte) {
	if len(frame)+2 > b.cfg.EntrySize {
		b.Stats.RingDrops++
		return
	}
	tail := b.cursors.Get(regTail)
	if tail-b.cursors.Get(regEmitNext) >= uint64(b.total) {
		b.Stats.RingDrops++ // remote ring full: the >10 GB pool exhausted
		return
	}
	// Scratch entry buffer: the WRITE post copies it into the request frame,
	// so it can go straight back to the pool.
	entry := wire.DefaultPool.Get(2 + len(frame))
	entry[0] = byte(len(frame) >> 8)
	entry[1] = byte(len(frame))
	copy(entry[2:], frame)
	ok := b.striped.PostWrite(tail, 0, entry)
	wire.DefaultPool.Put(entry)
	if !ok {
		b.Stats.StoreFails++
		return
	}
	b.cursors.Set(regTail, tail+1)
	b.detour = true
	b.Stats.Stored++
	if d := int64(b.Depth()); d > b.Stats.MaxDepth {
		b.Stats.MaxDepth = d
	}
}

// maybeLoad issues READ requests while the protected queue has room and
// stored packets remain, and retries any READ that has timed out.
func (b *PacketBuffer) maybeLoad() {
	b.retryStale()
	for b.detour && !b.paused &&
		b.cursors.Get(regReadNext) < b.cursors.Get(regTail) &&
		b.striped.Pending() < b.cfg.MaxOutstandingReads &&
		b.sw.QueueBytes(b.OutPort) < b.cfg.LowWaterBytes {
		g := b.cursors.Get(regReadNext)
		if !b.striped.CanPost(g) {
			return // channel window gated; responses will retrigger
		}
		ch := b.chans[b.striped.ShardOf(g)]
		if !b.striped.PostRead(g, b.cfg.EntrySize, ch.RespPackets(b.cfg.EntrySize), verbs.CreditTry) {
			return // memory-link egress full; departures will retrigger
		}
		b.cursors.Set(regReadNext, g+1)
	}
}

// retryStale re-issues READs whose responses were lost (request or
// response dropped on a saturated path).
func (b *PacketBuffer) retryStale() {
	if b.paused || b.striped.Pending() == 0 {
		return
	}
	// Retries issue READs, which consume PSNs: collect the timed-out entries
	// from every shard and re-issue in entry order so the PSN assignment
	// (and therefore the whole trace) is reproducible.
	stale := b.striped.AppendExpired(nil)
	slices.Sort(stale)
	for _, g := range stale {
		if b.striped.Repost(g) {
			b.Stats.ReadRetries++
		}
	}
}

// PacketDeparted implements the egress hook trigger: each departure from
// the protected port is an opportunity to pull more packets back.
func (b *PacketBuffer) PacketDeparted(port int, queueBytes int) {
	if port == b.OutPort {
		b.maybeLoad()
	}
}

// PacketEnqueued implements switchsim.EgressHooks (no action needed).
func (b *PacketBuffer) PacketEnqueued(port int, queueBytes int) {}

// HandleResponse consumes READ responses: decapsulate the RoCE headers and
// forward the original packet to the protected port (§4: "The switch must
// parse the READ response, decapsulate the RoCE headers, and passes the
// original packet to the egress pipeline"). Matching, reassembly and stale
// detection live in the channel's QP; the buffer consumes completions.
func (b *PacketBuffer) HandleResponse(ctx *switchsim.Context, pkt *wire.Packet) {
	c, ok := b.byQPN[pkt.BTH.DestQP]
	if !ok {
		ctx.Drop()
		return
	}
	cqe, entry, status := b.striped.Shard(c).ReadResponse(pkt)
	switch status {
	case verbs.CQDone:
		b.finishEntry(ctx, cqe.Token, entry)
	case verbs.CQStale:
		b.Stats.StaleResponses++
		ctx.Drop()
	default: // partial (reassembly in progress) or ACK/NAK: consumed here
		ctx.Drop()
	}
}

// finishEntry consumes one completed ring entry (the QP has already retired
// the WQE and released its credit): stage it in the reorder buffer and emit
// everything now contiguous in global order.
func (b *PacketBuffer) finishEntry(ctx *switchsim.Context, g uint64, entry []byte) {
	var orig []byte
	if len(entry) >= 2 {
		n := int(entry[0])<<8 | int(entry[1])
		if n > 0 && 2+n <= len(entry) {
			// Copy-on-retain: entry aliases the response frame (or the
			// reassembly scratch), which is recycled when this pass ends.
			orig = wire.DefaultPool.Get(n)
			copy(orig, entry[2:2+n])
		}
	}
	b.reorder[g] = orig

	// Emit in global order across channels.
	for {
		e := b.cursors.Get(regEmitNext)
		frame, ok := b.reorder[e]
		if !ok {
			break
		}
		delete(b.reorder, e)
		b.cursors.Set(regEmitNext, e+1)
		if frame != nil {
			b.Stats.Loaded++
			ctx.Emit(b.OutPort, frame)
		}
	}
	if b.Depth() == 0 && b.striped.Pending() == 0 {
		// Ring drained: new packets may take the direct path again.
		b.detour = false
	} else {
		b.maybeLoad()
	}
}
