package core

import (
	"testing"

	"gem/internal/rnic"
	"gem/internal/sim"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// stateBed: host0 sends to host1 through an L2-ish pipeline that also
// counts every data packet in the remote state store.
func stateBed(t *testing.T, nicCfg rnic.Config, ssCfg StateStoreConfig) (*bed, *StateStore) {
	t.Helper()
	b := newBed(t, 2, switchsim.Config{}, nicCfg)
	ssCfg.fillDefaults()
	ch := b.establish(t, ssCfg.Counters*8, rnic.PSNTolerant, false)
	ss, err := NewStateStore(ch, ssCfg)
	if err != nil {
		t.Fatal(err)
	}
	b.disp.Register(ch, ss)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if b.disp.Dispatch(ctx) {
			return
		}
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		// Count, then forward to the other host (ports 0/1).
		ss.UpdateFlow(wire.FlowOf(ctx.Pkt))
		out := 1 - ctx.InPort
		if out >= 0 && out < 2 {
			ctx.Emit(out, ctx.Frame)
		} else {
			ctx.Drop()
		}
	})
	return b, ss
}

// nicFor resolves a channel's memory server by its peer MAC (RKeys and QPNs
// are per-NIC counters and may collide across servers).
func (b *bed) nicFor(ch *Channel) *rnic.NIC {
	for _, nic := range b.memNICs {
		if nic.MAC == ch.PeerMAC {
			return nic
		}
	}
	return b.memNIC
}

// remoteCounterSum reads all remote counters back from server DRAM,
// following each counter to its home shard's server.
func remoteCounterSum(b *bed, ss *StateStore) uint64 {
	var sum uint64
	for i := 0; i < ss.cfg.Counters; i++ {
		ch, off := ss.CounterHome(i)
		v, err := b.nicFor(ch).ReadCounter(ch.RKey, ch.Base+uint64(off))
		if err == nil {
			sum += v
		}
	}
	return sum
}

func TestStateStoreCountsExactly(t *testing.T) {
	b, ss := stateBed(t, rnic.Config{}, StateStoreConfig{Counters: 256})
	const n = 500
	for i := 0; i < n; i++ {
		b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[1], 256, uint16(i%8+1)))
	}
	b.net.Engine.Run()
	total := remoteCounterSum(b, ss) + ss.PendingTotal()
	if total != n {
		t.Fatalf("remote+pending = %d, want %d (stats %+v)", total, n, ss.Stats)
	}
	// "the updated value is 100% accurate": with a drained network the
	// pending side must also be flushed… unless batching held deltas
	// back; with Batch=1 everything should have gone remote.
	if remote := remoteCounterSum(b, ss); remote != n {
		t.Fatalf("remote counters = %d, want %d (pending %d)", remote, n, ss.PendingTotal())
	}
	if b.hosts[1].Received != n {
		t.Fatalf("e2e delivery suffered: %d/%d", b.hosts[1].Received, n)
	}
	if b.memHost.CPUOps != 0 {
		t.Fatal("state store touched the server CPU")
	}
}

func TestStateStoreOutstandingCapRespected(t *testing.T) {
	// Slow atomics: the cap must hold while updates accumulate locally.
	b, ss := stateBed(t, rnic.Config{AtomicOpsPerSec: 1e5},
		StateStoreConfig{Counters: 64, MaxOutstanding: 4})
	maxSeen := 0
	for i := 0; i < 300; i++ {
		b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[1], 1500, uint16(i%16+1)))
	}
	// Sample outstanding during the run.
	b.net.Engine.Ticker(1*sim.Microsecond, func() bool {
		if ss.Outstanding() > maxSeen {
			maxSeen = ss.Outstanding()
		}
		return b.net.Engine.Pending() > 1
	})
	b.net.Engine.Run()
	if maxSeen > 4 {
		t.Fatalf("outstanding peaked at %d, cap 4", maxSeen)
	}
	if ss.Stats.Accumulated == 0 {
		t.Fatal("nothing accumulated despite saturation")
	}
	// Accuracy invariant holds even under saturation.
	if got := remoteCounterSum(b, ss) + ss.PendingTotal(); got != 300 {
		t.Fatalf("remote+pending = %d, want 300", got)
	}
}

func TestStateStoreAccumulationCoalesces(t *testing.T) {
	// With a saturated NIC, many updates to the same counter must merge
	// into few FAAs carrying accumulated deltas.
	b, ss := stateBed(t, rnic.Config{AtomicOpsPerSec: 2e5},
		StateStoreConfig{Counters: 8, MaxOutstanding: 2})
	const n = 400
	for i := 0; i < n; i++ {
		b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[1], 1500, 7)) // one flow
	}
	b.net.Engine.Run()
	if ss.Stats.FAAIssued >= n {
		t.Fatalf("FAAs = %d for %d updates: no coalescing", ss.Stats.FAAIssued, n)
	}
	if got := remoteCounterSum(b, ss); got != n {
		t.Fatalf("remote sum = %d, want %d", got, n)
	}
}

func TestStateStoreBatching(t *testing.T) {
	// Batch=8: FAAs carry ≥8 per op once the pipe is busy, cutting the
	// message count roughly 8x (E8a's mechanism).
	b, ss := stateBed(t, rnic.Config{}, StateStoreConfig{Counters: 4, Batch: 8})
	const n = 320
	for i := 0; i < n; i++ {
		b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[1], 1500, 3))
	}
	b.net.Engine.Run()
	if ss.Stats.FAAIssued > n/4 {
		t.Fatalf("FAAs = %d for %d updates at batch 8", ss.Stats.FAAIssued, n)
	}
	if got := remoteCounterSum(b, ss) + ss.PendingTotal(); got != n {
		t.Fatalf("remote+pending = %d, want %d", got, n)
	}
}

func TestStateStorePendingTableOverflowCounted(t *testing.T) {
	b, ss := stateBed(t, rnic.Config{AtomicOpsPerSec: 1e4},
		StateStoreConfig{Counters: 1024, MaxOutstanding: 1, PendingSlots: 4})
	// Many distinct flows, saturated NIC, 4 pending slots: overflow.
	for i := 0; i < 200; i++ {
		b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[1], 1500, uint16(i+1)))
	}
	b.net.Engine.Run()
	if ss.Stats.DroppedUpdates == 0 {
		t.Fatal("no dropped updates despite 4 pending slots")
	}
	// Conservation: counted = remote + pending + dropped.
	got := remoteCounterSum(b, ss) + ss.PendingTotal() + uint64(ss.Stats.DroppedUpdates)
	if got != 200 {
		t.Fatalf("conservation broken: %d != 200", got)
	}
}

func TestStateStoreDirectUpdateByIndex(t *testing.T) {
	b, ss := stateBed(t, rnic.Config{}, StateStoreConfig{Counters: 16})
	ss.Update(3, 10)
	ss.Update(3, 5)
	b.net.Engine.Run()
	ch3, off3 := ss.CounterHome(3)
	v, err := b.memNIC.ReadCounter(ch3.RKey, ch3.Base+uint64(off3))
	if err != nil || v != 15 {
		t.Fatalf("counter[3] = %d (%v), want 15", v, err)
	}
}

func TestStateStoreIndexOutOfRangePanics(t *testing.T) {
	_, ss := stateBed(t, rnic.Config{}, StateStoreConfig{Counters: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ss.Update(4, 1)
}

func TestStateStoreConfigValidation(t *testing.T) {
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 64, rnic.PSNTolerant, false)
	if _, err := NewStateStore(ch, StateStoreConfig{Counters: 0}); err == nil {
		t.Fatal("zero counters accepted")
	}
	if _, err := NewStateStore(ch, StateStoreConfig{Counters: 1000}); err == nil {
		t.Fatal("counters beyond region accepted")
	}
}

func TestStateStoreTimeoutReapsLostFAA(t *testing.T) {
	// Deliver updates with a dispatcher that eats atomic ACKs: the
	// outstanding tracker must reap and keep making progress.
	b := newBed(t, 2, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 64*8, rnic.PSNTolerant, false)
	ss, err := NewStateStore(ch, StateStoreConfig{
		Counters: 64, MaxOutstanding: 2, OutstandingTimeout: 10 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// No dispatcher registration: ACKs are dropped by the pipeline.
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) { ctx.Drop() })
	ss.Update(0, 1)
	ss.Update(1, 1)
	ss.Update(2, 1) // accumulates: outstanding is full
	if ss.Outstanding() != 2 {
		t.Fatalf("outstanding = %d", ss.Outstanding())
	}
	b.net.Engine.RunFor(50 * sim.Microsecond)
	ss.Update(3, 1) // triggers reap, then flush of pending
	if ss.Stats.TimedOut == 0 {
		t.Fatal("lost FAAs never timed out")
	}
	if ss.Outstanding() > 2 {
		t.Fatalf("outstanding = %d after reap", ss.Outstanding())
	}
}

// Property-ish sweep: conservation of counts across random flow mixes.
func TestStateStoreConservationSweep(t *testing.T) {
	for _, flows := range []int{1, 3, 17, 64} {
		b, ss := stateBed(t, rnic.Config{AtomicOpsPerSec: 5e5},
			StateStoreConfig{Counters: 128})
		const n = 300
		for i := 0; i < n; i++ {
			b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[1], 512, uint16(i%flows+1)))
		}
		b.net.Engine.Run()
		got := remoteCounterSum(b, ss) + ss.PendingTotal() + uint64(ss.Stats.DroppedUpdates)
		if got != n {
			t.Fatalf("flows=%d: conservation %d != %d (stats %+v)", flows, got, n, ss.Stats)
		}
	}
}

func TestStateStoreSignedCancellationThenFlush(t *testing.T) {
	// Regression: +1 then -1 cancels the pending delta; a later +1 to the
	// same counter must still flush (the zeroed map entry must not strand
	// the counter outside the dirty queue).
	b, ss := stateBed(t, rnic.Config{AtomicOpsPerSec: 1e5},
		StateStoreConfig{Counters: 8, MaxOutstanding: 1})
	ss.Update(0, 1) // occupies the single outstanding slot
	ss.Update(3, 1)
	ss.Update(3, ^uint64(0)) // -1: cancels while parked
	b.net.Engine.Run()
	ss.Update(3, 5)
	b.net.Engine.Run()
	ch3, off3 := ss.CounterHome(3)
	v, err := b.memNIC.ReadCounter(ch3.RKey, ch3.Base+uint64(off3))
	if err != nil || v != 5 {
		t.Fatalf("counter[3] = %d (%v), want 5", v, err)
	}
}
