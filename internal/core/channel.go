// Package core implements the paper's contribution: the three remote-memory
// primitives — packet buffer, lookup table, and state store — as data-plane
// actions over an RDMA channel between a programmable switch and the RNICs
// of memory servers, plus the control-plane channel controller that sets
// them up and the §7 reliability extension.
//
// Everything here operates purely on switch data-plane facilities
// (switchsim.Context, register arrays, tables, Inject) and real RoCEv2
// frames from internal/wire: the design constraint that makes the paper's
// architecture deployable on commodity hardware.
package core

import (
	"fmt"
	"reflect"

	"gem/internal/core/verbs"
	"gem/internal/sim"
	"gem/internal/stats"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// SwitchMAC and SwitchIP are the identity the switch data plane uses as the
// source of the RDMA packets it crafts. Any values work: the memory server's
// RNIC just needs a peer to reply to, and the switch recognizes responses by
// UDP port 4791 + destination QPN.
var (
	SwitchMAC = wire.MACFromUint64(0x02_FE_ED_000001)
	SwitchIP  = wire.IP4{10, 255, 0, 1}
)

// Channel is the data-plane end of one RDMA channel: the connection state
// the channel controller installs into switch registers — remote QPN, rkey,
// base address and region size — plus the running PSN.
//
// All frame crafting happens here; the primitives above it only decide what
// to read or write where.
type Channel struct {
	sw *switchsim.Switch

	// ID is the channel's local QPN: the NIC addresses its responses to
	// this queue pair number, and the Dispatcher routes on it.
	ID uint32
	// Port is the switch port facing the memory server.
	Port int

	// Remote endpoint (installed at setup).
	PeerMAC wire.MAC
	PeerIP  wire.IP4
	PeerQPN uint32
	RKey    uint32
	Base    uint64
	Size    int
	// MTU is the path MTU of the channel (the NIC's response segment
	// size); primitives use it to compute READ response packet counts.
	MTU int

	// AckReq sets the BTH AckReq bit on requests. The prototype leaves it
	// off (the switch ignores ACKs); the reliability extension turns it on.
	AckReq bool
	// Version selects the wire encapsulation (RoCEv2 default; RoCEv1
	// available for §4's overhead comparison and legacy fabrics).
	Version wire.RoCEVersion

	// WindowHint is the responder's advertised outstanding-operations
	// capacity, negotiated at Establish time (like IB responder resources).
	// Primitives whose config leaves the window unset default to it.
	WindowHint int

	psn *switchsim.RegisterArray

	// credits is the channel's per-QP admission window, installed lazily by
	// the first primitive that needs one (EnsureCredits).
	credits *Credits

	// cap, when set, rate-limits the channel's request traffic — §7:
	// "use a bandwidth cap to prevent RDMA packets taking too much
	// bandwidth". Requests beyond the cap are refused at inject time and
	// the primitives fall back to their local-accumulation paths.
	cap *tokenBucket

	// RequestMeter counts request frames/bytes the channel injects.
	RequestMeter stats.Meter
	// InjectDrops counts requests that could not be queued at the egress
	// buffer toward the memory server.
	InjectDrops int64
	// CapDrops counts requests refused by the bandwidth cap.
	CapDrops int64
}

// tokenBucket is the classic meter a switch traffic manager implements.
type tokenBucket struct {
	bps    float64 // refill rate in bits per second
	burst  float64 // bucket depth in bits
	tokens float64
	last   sim.Time
}

func (b *tokenBucket) allow(now sim.Time, frameBytes int) bool {
	b.tokens += b.bps * now.Sub(b.last).Seconds()
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	bits := float64((frameBytes + wire.EthernetFramingOverhead) * 8)
	if b.tokens < bits {
		return false
	}
	b.tokens -= bits
	return true
}

// SetBandwidthCap installs (or, with bps <= 0, removes) a token-bucket cap
// on the channel's request traffic. burstBytes bounds the instantaneous
// burst (default 64 KB when zero).
func (c *Channel) SetBandwidthCap(bps float64, burstBytes int) {
	if bps <= 0 {
		c.cap = nil
		return
	}
	if burstBytes <= 0 {
		burstBytes = 64 << 10
	}
	c.cap = &tokenBucket{
		bps: bps, burst: float64(burstBytes * 8),
		tokens: float64(burstBytes * 8), last: c.sw.Engine.Now(),
	}
}

// newChannel allocates channel state from the switch's SRAM budget.
func newChannel(sw *switchsim.Switch, id uint32, port int) (*Channel, error) {
	psn, err := switchsim.NewRegisterArray(sw.SRAM, fmt.Sprintf("channel%d/psn", id), 1)
	if err != nil {
		return nil, err
	}
	return &Channel{sw: sw, ID: id, Port: port, psn: psn}, nil
}

// Credits returns the channel's admission window (nil until a primitive
// installs one via EnsureCredits).
func (c *Channel) Credits() *Credits { return c.credits }

// EnsureCredits returns the channel's admission window, creating it from cfg
// if absent. The first caller's configuration wins: the window models the
// QP's responder resources, which are a property of the channel, not of the
// primitive using it.
func (c *Channel) EnsureCredits(cfg CreditConfig) *Credits {
	if c.credits == nil {
		if cfg.Window <= 0 && c.WindowHint > 0 {
			cfg.Window = c.WindowHint
		}
		c.credits = NewCredits(cfg)
	}
	return c.credits
}

// NextPSN consumes n packet sequence numbers and returns the first.
func (c *Channel) NextPSN(n uint32) uint32 {
	v := uint32(c.psn.Get(0))
	c.psn.Set(0, uint64((v+n)&verbs.PSNMask))
	return v
}

// PSN returns the next PSN that will be assigned (for tests).
func (c *Channel) PSN() uint32 { return uint32(c.psn.Get(0)) }

// SetPSN forces the next PSN — the resynchronization hook for a strict
// stream whose NIC-side expectation diverged from the switch (a NAK names
// the PSN the NIC wants; see Retransmitter's desync recovery).
func (c *Channel) SetPSN(v uint32) { c.psn.Set(0, uint64(v&verbs.PSNMask)) }

// Now returns the engine clock; part of the verbs.Endpoint contract.
func (c *Channel) Now() sim.Time { return c.sw.Engine.Now() }

// Schedule runs fn after the given delay on the channel's engine; part of
// the verbs.Endpoint contract (the QP's lost-response progress kick).
func (c *Channel) Schedule(after sim.Duration, fn func()) {
	c.sw.Engine.Schedule(after, fn)
}

// RespPackets returns how many response packets a READ of n bytes produces
// at the channel's path MTU — the PSN count the responder will consume.
func (c *Channel) RespPackets(n int) uint32 {
	return uint32((n + c.MTU - 1) / c.MTU)
}

// params returns request addressing by value so it stays on the caller's
// stack (the builders only read through the pointer).
func (c *Channel) params(psn uint32) wire.RoCEParams {
	return wire.RoCEParams{
		SrcMAC: SwitchMAC, DstMAC: c.PeerMAC,
		SrcIP: SwitchIP, DstIP: c.PeerIP,
		UDPSrcPort: uint16(0xC000 | c.ID&0x3FFF),
		DestQP:     c.PeerQPN,
		PSN:        psn,
		AckReq:     c.AckReq,
		Version:    c.Version,
	}
}

// VA converts a region offset to the remote virtual address, panicking on
// out-of-region offsets — primitives are expected to stay in bounds.
func (c *Channel) VA(offset int, n int) uint64 {
	if offset < 0 || offset+n > c.Size {
		panic(fmt.Sprintf("core: channel %d access [%d,%d) outside region of %d bytes",
			c.ID, offset, offset+n, c.Size))
	}
	return c.Base + uint64(offset)
}

// inject hands frame to the switch fabric, recycling it when the request
// cap refuses it; either way the caller no longer owns the buffer.
//
//gem:owns
func (c *Channel) inject(frame []byte) bool {
	if c.cap != nil && !c.cap.allow(c.sw.Engine.Now(), len(frame)) {
		c.CapDrops++
		wire.DefaultPool.Put(frame) // refused by the cap: recycle here
		return false
	}
	c.RequestMeter.Record(len(frame) + wire.EthernetFramingOverhead)
	if !c.sw.Inject(c.Port, frame) {
		c.InjectDrops++
		return false
	}
	return true
}

// Write issues an RDMA WRITE of payload at region offset. The frame is a
// single WRITE ONLY packet — the switch crafts one packet per stored frame;
// the memory channel runs at 4096B path MTU so full Ethernet frames fit.
func (c *Channel) Write(offset int, payload []byte) bool {
	va := c.VA(offset, len(payload))
	p := c.params(c.NextPSN(1))
	frame := wire.BuildWriteOnlyInto(wire.DefaultPool, &p, va, c.RKey, payload)
	return c.inject(frame)
}

// Read issues an RDMA READ of n bytes at region offset. respPkts is how
// many response packets the read will produce at the channel's MTU; the
// caller passes the value the controller computed so PSN accounting matches
// the responder.
func (c *Channel) Read(offset, n int, respPkts uint32) bool {
	va := c.VA(offset, n)
	p := c.params(c.NextPSN(respPkts))
	frame := wire.BuildReadRequestInto(wire.DefaultPool, &p, va, c.RKey, uint32(n))
	return c.inject(frame)
}

// FetchAdd issues an atomic Fetch-and-Add of delta on the 8-byte counter at
// region offset. It returns the PSN used (the atomic ACK echoes it) and
// whether the frame was queued.
func (c *Channel) FetchAdd(offset int, delta uint64) (uint32, bool) {
	va := c.VA(offset, 8)
	psn := c.NextPSN(1)
	p := c.params(psn)
	frame := wire.BuildFetchAddInto(wire.DefaultPool, &p, va, c.RKey, delta)
	return psn, c.inject(frame)
}

// ResponseHandler consumes RoCE responses (READ responses, ACKs, atomic
// ACKs) arriving at the switch for one channel.
type ResponseHandler interface {
	HandleResponse(ctx *switchsim.Context, pkt *wire.Packet)
}

// Dispatcher routes RoCE response packets arriving at the switch to the
// primitive owning the destination QPN. Application pipelines call Dispatch
// first and fall through to their own logic when it returns false.
type Dispatcher struct {
	handlers map[uint32]ResponseHandler
	// ordered holds every distinct handler in first-registration order, so
	// introspection (gem.Stats) walks a deterministic list, never map order.
	ordered []ResponseHandler
	// Unclaimed counts RoCE responses with no registered handler.
	Unclaimed int64
}

// NewDispatcher returns an empty dispatcher.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{handlers: make(map[uint32]ResponseHandler)}
}

// sameHandler compares two handlers without panicking on uncomparable
// dynamic types (function adapters register as distinct every time).
func sameHandler(a, b ResponseHandler) bool {
	ta := reflect.TypeOf(a)
	if ta != reflect.TypeOf(b) || !ta.Comparable() {
		return false
	}
	return a == b
}

// Register binds channel ch's responses to h.
func (d *Dispatcher) Register(ch *Channel, h ResponseHandler) {
	d.handlers[ch.ID] = h
	for _, have := range d.ordered {
		if sameHandler(have, h) {
			return
		}
	}
	d.ordered = append(d.ordered, h)
}

// Handlers returns every distinct registered handler in first-registration
// order (a handler registered for several channels appears once).
func (d *Dispatcher) Handlers() []ResponseHandler { return d.ordered }

// Dispatch consumes pkt if it is a RoCE response owned by a registered
// handler. It returns true when the packet was consumed.
func (d *Dispatcher) Dispatch(ctx *switchsim.Context) bool {
	pkt := ctx.Pkt
	if pkt == nil || !pkt.IsRoCE {
		return false
	}
	op := pkt.BTH.Opcode
	if !op.IsReadResponse() && op != wire.OpAcknowledge && op != wire.OpAtomicAcknowledge {
		return false
	}
	h, ok := d.handlers[pkt.BTH.DestQP]
	if !ok {
		d.Unclaimed++
		ctx.Drop()
		return true
	}
	if !pkt.ICRCOK {
		ctx.Drop()
		return true
	}
	h.HandleResponse(ctx, pkt)
	return true
}
