package core

import "testing"

func TestCreditDefaults(t *testing.T) {
	c := NewCredits(CreditConfig{})
	cfg := c.Config()
	if cfg.Window != 16 || cfg.High != 16 || cfg.Low != 15 {
		t.Fatalf("zero config resolved to %+v, want Window=16 High=16 Low=15", cfg)
	}
	c2 := NewCredits(CreditConfig{Window: 4})
	if got := c2.Config(); got.High != 4 || got.Low != 3 {
		t.Fatalf("Window=4 resolved to %+v, want High=4 Low=3", got)
	}
	// Low >= High is nonsense; it collapses to the legacy High-1.
	c3 := NewCredits(CreditConfig{Window: 8, High: 6, Low: 7})
	if got := c3.Config(); got.Low != 5 {
		t.Fatalf("Low>=High resolved to Low=%d, want 5", got.Low)
	}
}

// TestCreditWindow checks the plain window with default watermarks
// (High=Window, Low=High-1): refusal at the cap, readmission one release
// later — exactly the legacy outstanding counter's behavior.
func TestCreditWindow(t *testing.T) {
	c := NewCredits(CreditConfig{Window: 2})
	if !c.TryAcquire() || !c.TryAcquire() {
		t.Fatal("window of 2 refused before cap")
	}
	if c.TryAcquire() {
		t.Fatal("acquired past window")
	}
	if c.Stats.Refused != 1 {
		t.Fatalf("Refused = %d, want 1", c.Stats.Refused)
	}
	c.Release()
	if !c.CanAcquire() || !c.TryAcquire() {
		t.Fatal("release did not readmit")
	}
	if c.Stats.Peak != 2 {
		t.Fatalf("Peak = %d, want 2", c.Stats.Peak)
	}
}

// TestCreditHysteresis checks the watermark gate: once Outstanding reaches
// High the gate closes and stays closed until Outstanding drains to Low,
// preventing admit/refuse oscillation at the boundary.
func TestCreditHysteresis(t *testing.T) {
	c := NewCredits(CreditConfig{Window: 8, High: 6, Low: 2})
	for i := 0; i < 6; i++ {
		if !c.TryAcquire() {
			t.Fatalf("refused below High at %d", i)
		}
	}
	if !c.Gated() || c.TryAcquire() {
		t.Fatal("gate did not close at High")
	}
	// Draining to Low-1=1 must pass through 5,4,3,2 still gated.
	for i := 0; i < 3; i++ {
		c.Release()
		if !c.Gated() {
			t.Fatalf("gate reopened early at outstanding=%d", c.Outstanding())
		}
	}
	c.Release() // outstanding 2 == Low: reopen
	if c.Gated() || !c.CanAcquire() {
		t.Fatal("gate did not reopen at Low")
	}
	if c.Stats.GateEntries != 1 || c.Stats.GateExits != 1 {
		t.Fatalf("gate counters %d/%d, want 1/1", c.Stats.GateEntries, c.Stats.GateExits)
	}
}

// TestCreditUnlimited checks the ablation switch: accounting continues
// (Peak, Acquired) but nothing is ever refused.
func TestCreditUnlimited(t *testing.T) {
	c := NewCredits(CreditConfig{Window: 2, Unlimited: true})
	for i := 0; i < 10; i++ {
		if !c.TryAcquire() {
			t.Fatalf("unlimited window refused at %d", i)
		}
	}
	if c.Stats.Peak != 10 || c.Stats.Refused != 0 {
		t.Fatalf("unlimited stats: peak %d refused %d, want 10/0", c.Stats.Peak, c.Stats.Refused)
	}
}

// TestCreditSpuriousRelease checks that a release with nothing outstanding
// (e.g. a duplicate response after the timeout reaper already released) is
// ignored rather than driving the counter negative.
func TestCreditSpuriousRelease(t *testing.T) {
	c := NewCredits(CreditConfig{Window: 2})
	c.Release()
	if c.Outstanding() != 0 {
		t.Fatalf("outstanding went negative: %d", c.Outstanding())
	}
	c.Acquire()
	c.Release()
	c.Release()
	if c.Outstanding() != 0 || c.Stats.Released != 1 {
		t.Fatalf("spurious release counted: outstanding %d released %d",
			c.Outstanding(), c.Stats.Released)
	}
}
