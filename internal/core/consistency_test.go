package core

import (
	"testing"

	"gem/internal/core/verbs"
	"gem/internal/rnic"
	"gem/internal/sim"
	"gem/internal/switchsim"
)

// Consistency-spectrum coverage: the SetDegraded/Reconcile exit-edge
// accounting, BoundedStaleness and Eventual mode semantics on the state
// store, and the supervisor's health ladder driven by a synthetic target.

func TestReconcileDegradedExitSingleEdge(t *testing.T) {
	// Regression: one degraded interval must count exactly one DegradedExit
	// no matter how recovery is spelled — Reconcile alone, SetDegraded(false)
	// then Reconcile, or Reconcile twice. The old Reconcile bumped its own
	// exit counter unconditionally, double-counting when paired with the
	// SetDegraded(false) edge.
	cases := []struct {
		name       string
		recover    func(ss *StateStore)
		reconciles int64
	}{
		{"reconcile", func(ss *StateStore) { ss.Reconcile() }, 1},
		{"setdegraded-then-reconcile", func(ss *StateStore) {
			ss.SetDegraded(false)
			ss.Reconcile()
		}, 0}, // Reconcile finds the store already un-degraded: flush only
		{"reconcile-twice", func(ss *StateStore) {
			ss.Reconcile()
			ss.Reconcile()
		}, 1},
	}
	for _, tc := range cases {
		b, ss := stateBed(t, rnic.Config{}, StateStoreConfig{Counters: 8})
		ss.SetDegraded(true)
		for i := 0; i < 10; i++ {
			ss.Update(i%8, 1)
		}
		if ss.Stats.DegradedUpdates != 10 {
			t.Fatalf("%s: degraded updates = %d, want 10", tc.name, ss.Stats.DegradedUpdates)
		}
		tc.recover(ss)
		b.net.Engine.Run()
		if ss.Stats.DegradedEntries != 1 || ss.Stats.DegradedExits != 1 {
			t.Errorf("%s: entries/exits = %d/%d, want 1/1 (stats %+v)",
				tc.name, ss.Stats.DegradedEntries, ss.Stats.DegradedExits, ss.Stats)
		}
		if ss.Stats.Reconciles != tc.reconciles {
			t.Errorf("%s: reconciles = %d, want %d", tc.name, ss.Stats.Reconciles, tc.reconciles)
		}
		if got := remoteCounterSum(b, ss) + ss.PendingTotal(); got != 10 {
			t.Errorf("%s: remote+pending = %d, want 10", tc.name, got)
		}
	}
}

func TestStateStoreBoundedStalenessWithinBound(t *testing.T) {
	// BoundedStaleness proceeds on the local copy and flushes only when a
	// bound trips; the recorded staleness never exceeds MaxAge and the delta
	// trigger fires at MaxDelta.
	b, ss := stateBed(t, rnic.Config{}, StateStoreConfig{Counters: 8})
	bound := StalenessBound{MaxAge: 20 * sim.Microsecond, MaxDelta: 8}
	ss.SetConsistencyMode(BoundedStaleness, bound)
	if ss.Stats.ModeChanges != 1 {
		t.Fatalf("mode changes = %d, want 1", ss.Stats.ModeChanges)
	}

	// Below MaxDelta, nothing reaches the wire.
	for i := 0; i < 4; i++ {
		ss.Update(i, 1)
	}
	if ss.Stats.FAAIssued != 0 {
		t.Fatalf("bounded mode flushed below the delta bound: %d FAAs", ss.Stats.FAAIssued)
	}
	// Crossing MaxDelta initiates a bound flush immediately.
	for i := 0; i < 4; i++ {
		ss.Update(i, 1)
	}
	if ss.Stats.BoundFlushes != 1 || ss.Stats.FAAIssued == 0 {
		t.Fatalf("delta bound did not trip: %d bound flushes, %d FAAs (stats %+v)",
			ss.Stats.BoundFlushes, ss.Stats.FAAIssued, ss.Stats)
	}

	// The 8 updates coalesced into one FAA per dirty counter.
	b.net.Engine.Run()
	if ss.Stats.FAAIssued != 4 {
		t.Fatalf("FAAs = %d, want 4 (one per counter)", ss.Stats.FAAIssued)
	}
	// A small residual backlog is covered by the age timer.
	ss.Update(0, 1)
	if faas := ss.Stats.FAAIssued; faas != 4 {
		t.Fatalf("sub-bound update flushed eagerly: %d FAAs", faas)
	}
	b.net.Engine.Run() // age timer fires at MaxAge
	if ss.Stats.BoundFlushes != 2 {
		t.Fatalf("age bound never fired: %d bound flushes", ss.Stats.BoundFlushes)
	}
	if ss.Stats.MaxStalenessNs > int64(bound.MaxAge) {
		t.Fatalf("staleness %dns exceeded bound %dns", ss.Stats.MaxStalenessNs, int64(bound.MaxAge))
	}
	if got := remoteCounterSum(b, ss) + ss.PendingTotal(); got != 9 {
		t.Fatalf("remote+pending = %d, want 9", got)
	}
}

func TestStateStoreEventualAbsorbsAndCoalesces(t *testing.T) {
	// Eventual mode never sheds — absorbing the stream locally is the
	// contract — and flushes a shard only when its window is idle, so deltas
	// coalesce into fewer FAAs than updates.
	b, ss := stateBed(t, rnic.Config{}, StateStoreConfig{
		Counters: 8, MaxOutstanding: 1, ShedPendingSlots: 1,
	})
	ss.SetConsistencyMode(Eventual, StalenessBound{})
	const n = 40
	for i := 0; i < n; i++ {
		ss.UpdatePrio(i%4, 1, switchsim.PriorityLow)
	}
	if ss.Stats.ShedUpdates != 0 {
		t.Fatalf("eventual mode shed %d updates", ss.Stats.ShedUpdates)
	}
	b.net.Engine.Run()
	if got := remoteCounterSum(b, ss) + ss.PendingTotal(); got != n {
		t.Fatalf("remote+pending = %d, want %d (stats %+v)", got, n, ss.Stats)
	}
	if ss.Stats.FAAIssued >= n {
		t.Fatalf("eventual mode did not coalesce: %d FAAs for %d updates", ss.Stats.FAAIssued, n)
	}

	// Returning to Strict drains whatever backlog remains and resumes the
	// synchronous contract: back-to-back strict updates go straight out.
	ss.SetConsistencyMode(Strict, StalenessBound{})
	before := ss.Stats.FAAIssued
	ss.Update(0, 1)
	if ss.Stats.FAAIssued != before+1 {
		t.Fatalf("strict update did not post immediately (FAAs %d -> %d)", before, ss.Stats.FAAIssued)
	}
	b.net.Engine.Run()
	if got := remoteCounterSum(b, ss); got != n+1 {
		t.Fatalf("after strict return: remote = %d, want %d", got, n+1)
	}
}

func TestSupervisorHealthLadder(t *testing.T) {
	// A synthetic target walks the full ladder: errors push Healthy →
	// Suspect → Degraded, clean ticks climb back through Recovering with
	// hysteresis, the exhausted veto pins the target down, and the Recover
	// hook fires exactly once per Degraded → Recovering edge.
	eng := sim.NewEngine(1)
	var errs verbs.ErrStats
	exhausted := false
	var applied []ConsistencyMode
	recovers := 0
	sup := NewSupervisor(eng, SupervisorConfig{
		Interval: 10 * sim.Microsecond, DegradeErrors: 2,
		RecoverTicks: 2, HealthyTicks: 2,
	})
	idx := sup.Govern(SupervisorTarget{
		Name:      "fake",
		Errors:    func() verbs.ErrStats { return errs },
		Exhausted: func() bool { return exhausted },
		Apply:     func(m ConsistencyMode, _ StalenessBound) { applied = append(applied, m) },
		Recover:   func() { recovers++ },
	})
	if sup.State(idx) != Healthy || len(applied) != 1 || applied[0] != Strict {
		t.Fatalf("govern: state %v, applied %v", sup.State(idx), applied)
	}
	sup.Start()
	step := func(n int) { eng.RunFor(sim.Duration(n) * 10 * sim.Microsecond) }

	errs.NakPSN = 1 // one error this tick: suspect, not degraded
	step(1)
	if sup.State(idx) != Suspect {
		t.Fatalf("after 1 error: %v, want suspect", sup.State(idx))
	}
	errs.RetryExhausted += 2 // two errors in a tick: degrade threshold
	exhausted = true
	step(1)
	if sup.State(idx) != Degraded {
		t.Fatalf("after burst: %v, want degraded", sup.State(idx))
	}
	step(5) // exhausted veto: clean ticks cannot accrue while the peer is dead
	if sup.State(idx) != Degraded || recovers != 0 {
		t.Fatalf("exhausted veto failed: %v, %d recovers", sup.State(idx), recovers)
	}
	exhausted = false
	step(2) // RecoverTicks clean ticks
	if sup.State(idx) != Recovering || recovers != 1 {
		t.Fatalf("after fault cleared: %v, %d recovers (want recovering, 1)",
			sup.State(idx), recovers)
	}
	errs.NakRKey++ // any error while recovering drops straight back
	step(1)
	if sup.State(idx) != Degraded {
		t.Fatalf("recovering tolerance: %v, want degraded", sup.State(idx))
	}
	step(4) // 2 clean → recovering, 2 more clean → healthy
	if sup.State(idx) != Healthy || recovers != 2 {
		t.Fatalf("final: %v, %d recovers (want healthy, 2)", sup.State(idx), recovers)
	}
	// The mode trail must end with the base contract restored.
	if applied[len(applied)-1] != Strict {
		t.Fatalf("final applied mode %v, want strict (trail %v)", applied[len(applied)-1], applied)
	}
	sup.Stop()
	eng.Run()
	if sup.Stats.Recoveries != 2 || sup.Stats.DegradedEntries != 2 || sup.Stats.HealthyReturns < 1 {
		t.Fatalf("stats %+v", sup.Stats)
	}
}
