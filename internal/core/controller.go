package core

import (
	"fmt"

	"gem/internal/rnic"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// Controller is the RDMA channel controller: the only component that runs
// on CPUs (switch control plane + server), and only at initialization. It
// allocates and registers memory regions on a server's RNIC, creates the
// queue pair, and installs the channel information — QPN, rkey, base
// address — into the switch data plane, exactly the split described in §3
// of the paper.
type Controller struct {
	sw     *switchsim.Switch
	nextID uint32

	// SetupOps counts control-plane operations, so harnesses can show
	// that CPU involvement exists only at setup time.
	SetupOps int64
}

// NewController returns a controller for switch sw.
func NewController(sw *switchsim.Switch) *Controller {
	return &Controller{sw: sw, nextID: 0x100}
}

// ChannelSpec describes a channel to establish.
type ChannelSpec struct {
	// SwitchPort is the switch port the memory server's NIC hangs off.
	SwitchPort int
	// NIC is the memory server's RNIC.
	NIC *rnic.NIC
	// RegionBase and RegionSize define the DRAM to reserve and register.
	RegionBase uint64
	RegionSize int
	// Mode selects the responder's PSN policy. The paper's prototype
	// needs rnic.PSNTolerant (the switch does not retransmit); the
	// reliability extension uses rnic.PSNStrict.
	Mode rnic.PSNMode
	// AckReq requests per-operation ACKs from the NIC (reliability
	// extension); the base prototype leaves it false.
	AckReq bool
	// Version selects the wire encapsulation (RoCEv2 default).
	Version wire.RoCEVersion
}

// Establish performs the control-plane handshake of Figure 2: register the
// region, create the QP, exchange addressing, and hand the data plane a
// ready Channel.
func (c *Controller) Establish(spec ChannelSpec) (*Channel, error) {
	if spec.NIC == nil {
		return nil, fmt.Errorf("core: channel spec has no NIC")
	}
	if spec.RegionSize <= 0 {
		return nil, fmt.Errorf("core: channel region size %d", spec.RegionSize)
	}
	// Server side: allocate DRAM, register it with the RNIC, create QP.
	// These are the only CPU instructions the memory service ever costs.
	region := spec.NIC.RegisterMemory(spec.RegionBase, spec.RegionSize)
	c.SetupOps++
	qp := spec.NIC.CreateQP(spec.Mode)
	c.SetupOps++

	// Switch side: allocate channel registers, install remote info.
	ch, err := newChannel(c.sw, c.nextID, spec.SwitchPort)
	if err != nil {
		return nil, err
	}
	c.nextID++
	ch.PeerMAC = spec.NIC.MAC
	ch.PeerIP = spec.NIC.IP
	ch.PeerQPN = qp.Number
	ch.RKey = region.RKey
	ch.Base = region.Base
	ch.Size = spec.RegionSize
	ch.MTU = spec.NIC.Cfg.MTU
	ch.AckReq = spec.AckReq
	ch.Version = spec.Version
	// The NIC advertises its per-QP outstanding-operation capacity during
	// the handshake; primitives use it as their default credit window.
	ch.WindowHint = spec.NIC.Cfg.MaxOutstandingOps

	// Tell the NIC where responses go.
	qp.PeerMAC = SwitchMAC
	qp.PeerIP = SwitchIP
	qp.PeerQPN = ch.ID
	qp.Version = spec.Version
	c.SetupOps++
	return ch, nil
}
