package core

import (
	"testing"
	"testing/quick"

	"gem/internal/rnic"
	"gem/internal/sim"
	"gem/internal/switchsim"
)

func TestBandwidthCapLimitsRate(t *testing.T) {
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 1<<20, rnic.PSNTolerant, false)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) { ctx.Drop() })
	ch.SetBandwidthCap(1e9, 16<<10) // 1 Gbps

	payload := make([]byte, 1024)
	sent := 0
	b.net.Engine.Ticker(200*sim.Nanosecond, func() bool { // offered ≈44 Gbps
		if ch.Write((sent%512)*1024, payload) {
			sent++
		}
		return b.net.Engine.Now() < sim.Time(2*sim.Millisecond)
	})
	b.net.Engine.RunUntil(sim.Time(2 * sim.Millisecond))
	gbps := ch.RequestMeter.Gbps(b.net.Engine.Now())
	if gbps > 1.15 {
		t.Fatalf("capped channel pushed %.2f Gbps", gbps)
	}
	if gbps < 0.7 {
		t.Fatalf("cap too strict: %.2f Gbps of a 1 Gbps budget", gbps)
	}
	if ch.CapDrops == 0 {
		t.Fatal("cap never refused anything at 44x overload")
	}
}

func TestBandwidthCapRemoval(t *testing.T) {
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 1<<16, rnic.PSNTolerant, false)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) { ctx.Drop() })
	ch.SetBandwidthCap(1, 1) // absurdly tight: everything refused
	if ch.Write(0, make([]byte, 512)) {
		t.Fatal("write passed a 1 bps cap")
	}
	ch.SetBandwidthCap(0, 0) // remove
	if !ch.Write(0, make([]byte, 512)) {
		t.Fatal("write refused after cap removal")
	}
}

// Property: a token bucket never grants more than burst + rate*elapsed bits
// over any request schedule.
func TestPropTokenBucketConservation(t *testing.T) {
	f := func(gaps []uint16, sizes []uint8) bool {
		tb := &tokenBucket{bps: 1e9, burst: 8 * 8192, tokens: 8 * 8192}
		now := sim.Time(0)
		granted := 0.0
		n := len(gaps)
		if len(sizes) < n {
			n = len(sizes)
		}
		for i := 0; i < n; i++ {
			now = now.Add(sim.Duration(gaps[i]))
			size := int(sizes[i]) + 1
			if tb.allow(now, size) {
				granted += float64((size + 24) * 8)
			}
		}
		budget := 8*8192 + 1e9*sim.Duration(now).Seconds() + 1
		return granted <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the packet-buffer ring cursors always satisfy
// emitNext <= readNext <= tail and depth <= capacity, across random
// admit/response interleavings driven by real traffic.
func TestPropPacketBufferCursorInvariants(t *testing.T) {
	swCfg := switchsim.Config{BufferBytes: 256 << 10}
	pbCfg := PacketBufferConfig{HighWaterBytes: 8 << 10, LowWaterBytes: 4 << 10}
	b, pb := pktbufBed(t, swCfg, pbCfg)
	bad := ""
	check := func() {
		tail := pb.cursors.Get(regTail)
		rn := pb.cursors.Get(regReadNext)
		en := pb.cursors.Get(regEmitNext)
		if !(en <= rn && rn <= tail) {
			bad = "cursor ordering violated"
		}
		if int(tail-en) > pb.total {
			bad = "ring over capacity"
		}
	}
	b.net.Engine.Ticker(500*sim.Nanosecond, func() bool {
		check()
		return bad == "" && b.net.Engine.Pending() > 1
	})
	for i := 0; i < 400; i++ {
		b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[2], 1500, uint16(i%7+1)))
		b.net.Ports(b.hosts[1])[0].Send(dataFrame(b.hosts[1], b.hosts[2], 1500, uint16(i%5+1)))
	}
	b.net.Engine.Run()
	check()
	if bad != "" {
		t.Fatal(bad)
	}
	if b.hosts[2].Received != 800 {
		t.Fatalf("delivered %d/800", b.hosts[2].Received)
	}
}
