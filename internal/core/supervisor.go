package core

import (
	"gem/internal/core/verbs"
	"gem/internal/sim"
)

// Supervisor is the self-healing half of the consistency spectrum: a
// per-target health state machine that watches the typed error completions
// the transport now surfaces (plus retransmitter backoff, failover liveness
// and remote-memory pressure) and automatically relaxes a primitive's
// ConsistencyMode under faults or overload, then drives Reconcile and
// restores the strict contract once the fault clears. It replaces the
// hand-pulled SetDegraded levers the test harnesses used to operate.
//
// Health runs Healthy → Suspect → Degraded → Recovering → Healthy with
// hysteresis: error *rates* (per-tick deltas of ErrStats.Total) move a
// target down the ladder immediately, while climbing back requires a run of
// consecutive clean ticks — so one good tick in the middle of an outage
// never snaps the contract back to strict.

// HealthState is one target's position in the supervisor's state machine.
type HealthState uint8

const (
	// Healthy: no recent typed errors; the base (strict) contract applies.
	Healthy HealthState = iota
	// Suspect: an error rate or pressure signal crossed the suspect
	// threshold; the target runs under SuspectMode (bounded staleness) while
	// the supervisor watches whether the condition clears or worsens.
	Suspect
	// Degraded: the fault is real (error rate at the degrade threshold,
	// retry budget exhausted, failover out of standbys); the target runs
	// under DegradedMode (eventual) and absorbs updates locally.
	Degraded
	// Recovering: the fault cleared; Reconcile has been driven and the
	// backlog is converging under SuspectMode. Any new error drops the
	// target straight back to Degraded.
	Recovering
)

// String names the state for tables and diagnostics.
func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Degraded:
		return "degraded"
	case Recovering:
		return "recovering"
	}
	return "unknown"
}

// SupervisorConfig tunes the health state machine.
type SupervisorConfig struct {
	// Interval paces the evaluation ticks (default 20 µs).
	Interval sim.Duration
	// SuspectErrors is the per-tick typed-error delta that moves a Healthy
	// target to Suspect (default 1: any error is worth watching).
	SuspectErrors int64
	// DegradeErrors is the per-tick typed-error delta that moves a target to
	// Degraded (default 4).
	DegradeErrors int64
	// SuspectBackoff is the retransmitter backoff level (consecutive
	// no-progress timeout rounds) treated as a suspect signal (default 2).
	SuspectBackoff int
	// PressureTier is the remote-memory pressure tier treated as a suspect
	// signal (default 2, the highest standard tier).
	PressureTier int
	// RecoverTicks is the consecutive clean ticks a Degraded target needs
	// before the supervisor drives Reconcile and enters Recovering
	// (default 3).
	RecoverTicks int
	// HealthyTicks is the consecutive clean ticks a Suspect or Recovering
	// target needs to return to Healthy (default 3).
	HealthyTicks int
	// BaseMode is applied on return to Healthy (default Strict).
	BaseMode ConsistencyMode
	// SuspectMode is applied in Suspect and Recovering (default
	// BoundedStaleness, parameterized by Bound).
	SuspectMode ConsistencyMode
	// DegradedMode is applied in Degraded (default Eventual).
	DegradedMode ConsistencyMode
	// Bound parameterizes BoundedStaleness applications (defaults filled by
	// the target's primitive).
	Bound StalenessBound
}

func (c *SupervisorConfig) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = 20 * sim.Microsecond
	}
	if c.SuspectErrors <= 0 {
		c.SuspectErrors = 1
	}
	if c.DegradeErrors <= 0 {
		c.DegradeErrors = 4
	}
	if c.SuspectBackoff <= 0 {
		c.SuspectBackoff = 2
	}
	if c.PressureTier <= 0 {
		c.PressureTier = 2
	}
	if c.RecoverTicks <= 0 {
		c.RecoverTicks = 3
	}
	if c.HealthyTicks <= 0 {
		c.HealthyTicks = 3
	}
	if c.SuspectMode == Strict {
		c.SuspectMode = BoundedStaleness
	}
	if c.DegradedMode == Strict {
		c.DegradedMode = Eventual
	}
}

// SupervisorTarget wires one governed primitive into the state machine:
// signal sources on one side, mode and recovery actuators on the other.
type SupervisorTarget struct {
	// Name labels the target in State lookups and experiment tables.
	Name string
	// Errors is the typed-error source — typically StripedQP.Errors (the
	// per-shard CQ error counters merged). Required.
	Errors func() verbs.ErrStats
	// Exhausted, when set, is the liveness veto: while true (retransmitter
	// retry budget spent, failover out of standbys) no tick counts as clean,
	// so the target cannot start recovering against a dead peer.
	Exhausted func() bool
	// Backoff, when set, reports the retransmitter's backoff level; at or
	// above SuspectBackoff it is a suspect signal.
	Backoff func() int
	// Pressure, when set, reports the remote-memory pressure tier; at or
	// above PressureTier it is a suspect signal.
	Pressure func() int
	// Apply switches the primitive's consistency mode. Required.
	Apply func(ConsistencyMode, StalenessBound)
	// Degrade, when set, engages the primitive's degraded posture alongside
	// the Degraded health state (e.g. StateStore.SetDegraded) — the automatic
	// replacement for the hand-pulled lever. Recover is expected to release
	// it (Reconcile does), keeping the DegradedExits accounting on its single
	// exit edge.
	Degrade func(bool)
	// Recover converges local state with remote memory (e.g.
	// StateStore.Reconcile); driven once on every Degraded → Recovering
	// transition.
	Recover func()
}

// SupervisorStats are the state machine's observable counters — flat and
// comparable for experiment results.
type SupervisorStats struct {
	Ticks           int64
	SuspectEntries  int64
	DegradedEntries int64
	// Recoveries counts Degraded → Recovering transitions (each drove the
	// target's Recover hook).
	Recoveries     int64
	HealthyReturns int64
	// ModeApplies counts actuator invocations (one per state entry).
	ModeApplies int64
}

type supTarget struct {
	SupervisorTarget
	state    HealthState
	lastErrs int64
	clean    int
}

// Supervisor runs the health state machine over its governed targets. Not
// safe for concurrent use; the simulation is single-threaded per engine.
type Supervisor struct {
	eng     *sim.Engine
	cfg     SupervisorConfig
	targets []*supTarget
	started bool
	stopped bool

	Stats SupervisorStats
}

// NewSupervisor builds a supervisor on eng with cfg's thresholds.
func NewSupervisor(eng *sim.Engine, cfg SupervisorConfig) *Supervisor {
	cfg.fillDefaults()
	return &Supervisor{eng: eng, cfg: cfg}
}

// Config returns the effective configuration.
func (s *Supervisor) Config() SupervisorConfig { return s.cfg }

// Govern adds a target (starting Healthy) and returns its index for State.
// The target's base mode is applied immediately so primitive and supervisor
// agree on the starting contract.
func (s *Supervisor) Govern(t SupervisorTarget) int {
	st := &supTarget{SupervisorTarget: t}
	if t.Errors != nil {
		st.lastErrs = t.Errors().Total()
	}
	s.targets = append(s.targets, st)
	s.apply(st, s.cfg.BaseMode)
	return len(s.targets) - 1
}

// State reports target i's health.
func (s *Supervisor) State(i int) HealthState { return s.targets[i].state }

// Start begins evaluation ticks. Call once after governing the targets.
func (s *Supervisor) Start() {
	if s.started {
		return
	}
	s.started = true
	s.eng.Ticker(s.cfg.Interval, func() bool {
		if s.stopped {
			return false
		}
		s.tick()
		return true
	})
}

// Stop ends evaluation at the next tick, releasing the event queue so the
// simulation can wind down to quiescence (same contract as Failover.Stop).
func (s *Supervisor) Stop() { s.stopped = true }

func (s *Supervisor) tick() {
	s.Stats.Ticks++
	for _, t := range s.targets {
		s.evaluate(t)
	}
}

func (s *Supervisor) evaluate(t *supTarget) {
	var delta int64
	if t.Errors != nil {
		total := t.Errors().Total()
		delta = total - t.lastErrs
		t.lastErrs = total
	}
	exhausted := t.Exhausted != nil && t.Exhausted()
	backedOff := t.Backoff != nil && t.Backoff() >= s.cfg.SuspectBackoff
	pressured := t.Pressure != nil && t.Pressure() >= s.cfg.PressureTier
	faulted := delta >= s.cfg.DegradeErrors || exhausted
	warning := delta >= s.cfg.SuspectErrors || backedOff || pressured
	clean := delta == 0 && !exhausted && !backedOff && !pressured

	switch t.state {
	case Healthy:
		if faulted {
			s.enter(t, Degraded)
		} else if warning {
			s.enter(t, Suspect)
		}
	case Suspect:
		if faulted {
			s.enter(t, Degraded)
			return
		}
		if !clean {
			t.clean = 0
			return
		}
		t.clean++
		if t.clean >= s.cfg.HealthyTicks {
			s.enter(t, Healthy)
		}
	case Degraded:
		if !clean {
			t.clean = 0
			return
		}
		t.clean++
		if t.clean >= s.cfg.RecoverTicks {
			s.enter(t, Recovering)
		}
	case Recovering:
		// Recovery has no tolerance: any error while converging drops the
		// target straight back to Degraded.
		if delta > 0 || exhausted {
			s.enter(t, Degraded)
			return
		}
		t.clean++
		if t.clean >= s.cfg.HealthyTicks {
			s.enter(t, Healthy)
		}
	}
}

func (s *Supervisor) enter(t *supTarget, st HealthState) {
	t.state = st
	t.clean = 0
	switch st {
	case Healthy:
		s.Stats.HealthyReturns++
		s.apply(t, s.cfg.BaseMode)
	case Suspect:
		s.Stats.SuspectEntries++
		s.apply(t, s.cfg.SuspectMode)
	case Degraded:
		s.Stats.DegradedEntries++
		if t.Degrade != nil {
			t.Degrade(true)
		}
		s.apply(t, s.cfg.DegradedMode)
	case Recovering:
		s.Stats.Recoveries++
		if t.Recover != nil {
			t.Recover()
		}
		s.apply(t, s.cfg.SuspectMode)
	}
}

func (s *Supervisor) apply(t *supTarget, m ConsistencyMode) {
	if t.Apply == nil {
		return
	}
	s.Stats.ModeApplies++
	t.Apply(m, s.cfg.Bound)
}

// GovernStateStore wires a state store (with its optional retransmitters
// and failover group) as a supervisor target: typed errors from the striped
// QP, liveness from the retransmitters' retry budgets and the failover
// group's standby exhaustion, recovery through Reconcile.
func GovernStateStore(name string, ss *StateStore, rts []*Retransmitter, fo *Failover) SupervisorTarget {
	return SupervisorTarget{
		Name:   name,
		Errors: ss.Transport().Errors,
		Exhausted: func() bool {
			if fo != nil && fo.Exhausted {
				return true
			}
			for _, rt := range rts {
				if rt != nil && rt.Exhausted() {
					return true
				}
			}
			return false
		},
		Backoff: func() int {
			max := 0
			for _, rt := range rts {
				if rt != nil && rt.BackoffLevel() > max {
					max = rt.BackoffLevel()
				}
			}
			return max
		},
		Apply:   ss.SetConsistencyMode,
		Degrade: ss.SetDegraded,
		Recover: ss.Reconcile,
	}
}

// GovernReplicatedStateStore is GovernStateStore with the replication lag
// feeding the pressure signal: the worst shard mirror's lag tier (half the
// lag bound → tier 1 / Suspect territory, past the bound → tier 2 /
// Degrade) rides the same ladder input the allocator's pressure tiers use,
// so a replica falling behind walks the store toward Suspect → Degraded
// exactly like memory pressure does. Typed CQReplicaLost completions
// already flow through the Errors rate via the shard QP.
func GovernReplicatedStateStore(name string, ss *StateStore, rts []*Retransmitter, fo *Failover) SupervisorTarget {
	t := GovernStateStore(name, ss, rts, fo)
	t.Pressure = ss.MirrorLagTier
	return t
}

// GovernLookupTable wires a lookup table as a supervisor target.
func GovernLookupTable(name string, t *LookupTable) SupervisorTarget {
	return SupervisorTarget{
		Name:    name,
		Errors:  t.Transport().Errors,
		Apply:   func(m ConsistencyMode, _ StalenessBound) { t.SetConsistencyMode(m) },
		Recover: t.Reconcile,
	}
}

// GovernPacketBuffer wires a packet buffer as a supervisor target.
func GovernPacketBuffer(name string, b *PacketBuffer) SupervisorTarget {
	return SupervisorTarget{
		Name: name,
		Errors: func() verbs.ErrStats {
			var e verbs.ErrStats
			for i := 0; i < b.Channels(); i++ {
				e = e.Add(b.Transport(i).Stats.Errors)
			}
			return e
		},
		Apply:   func(m ConsistencyMode, _ StalenessBound) { b.SetConsistencyMode(m) },
		Recover: b.Reconcile,
	}
}
