package core

import (
	"testing"

	"gem/internal/netsim"
	"gem/internal/rnic"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// bed is the standard core test fixture: a ToR switch with nHosts host
// ports (0..nHosts-1) and nMem memory servers on the following ports.
// memNIC/memHost/memPort refer to the first memory server.
type bed struct {
	net      *netsim.Net
	sw       *switchsim.Switch
	hosts    []*netsim.Host
	memNIC   *rnic.NIC
	memHost  *netsim.Host
	memPort  int
	memNICs  []*rnic.NIC
	memHosts []*netsim.Host
	ctrl     *Controller
	disp     *Dispatcher
}

func newBedN(t *testing.T, nHosts, nMem int, swCfg switchsim.Config, nicCfg rnic.Config) *bed {
	t.Helper()
	n := netsim.New(1)
	sw := switchsim.New("tor", n.Engine, swCfg)
	var ports []*netsim.Port
	hosts := make([]*netsim.Host, nHosts)
	for i := range hosts {
		hosts[i] = netsim.NewHost("h", uint32(i+1))
		sp, _ := n.Connect(sw, hosts[i], netsim.Link40G())
		ports = append(ports, sp)
	}
	b := &bed{net: n, sw: sw, hosts: hosts}
	for i := 0; i < nMem; i++ {
		memHost := netsim.NewHost("memsrv", uint32(200+i))
		memNIC := rnic.New("memsrv-nic", memHost, nicCfg)
		sp, np := n.Connect(sw, memNIC, netsim.Link40G())
		memNIC.Bind(n.Engine, np)
		ports = append(ports, sp)
		b.memNICs = append(b.memNICs, memNIC)
		b.memHosts = append(b.memHosts, memHost)
	}
	sw.Bind(ports...)
	b.memNIC, b.memHost, b.memPort = b.memNICs[0], b.memHosts[0], nHosts
	b.ctrl = NewController(sw)
	b.disp = NewDispatcher()
	// Drain in-flight frames after the test: the package TestMain audits
	// wire.DefaultPool for leaks, and a test that stops the clock with
	// requests still on the wire would otherwise trip it. Tests that start
	// tickers must stop them (e.g. Failover.Stop) or this never quiesces.
	t.Cleanup(n.Engine.Run)
	return b
}

func newBed(t *testing.T, nHosts int, swCfg switchsim.Config, nicCfg rnic.Config) *bed {
	return newBedN(t, nHosts, 1, swCfg, nicCfg)
}

func (b *bed) establishOn(t *testing.T, mem int, size int, mode rnic.PSNMode, ackReq bool) *Channel {
	t.Helper()
	ch, err := b.ctrl.Establish(ChannelSpec{
		SwitchPort: len(b.hosts) + mem, NIC: b.memNICs[mem],
		RegionBase: 0x100000, RegionSize: size,
		Mode: mode, AckReq: ackReq,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func (b *bed) establish(t *testing.T, size int, mode rnic.PSNMode, ackReq bool) *Channel {
	return b.establishOn(t, 0, size, mode, ackReq)
}

func dataFrame(src, dst *netsim.Host, size int, srcPort uint16) []byte {
	return wire.BuildDataFrame(src.MAC, dst.MAC, src.IP, dst.IP, srcPort, 9999, size, nil)
}

func TestControllerEstablish(t *testing.T) {
	b := newBed(t, 2, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 1<<20, rnic.PSNTolerant, false)
	if ch.PeerMAC != b.memNIC.MAC || ch.PeerIP != b.memNIC.IP {
		t.Fatal("peer addressing not installed")
	}
	if ch.RKey == 0 || ch.Size != 1<<20 || ch.Base != 0x100000 {
		t.Fatalf("region info = rkey=%#x base=%#x size=%d", ch.RKey, ch.Base, ch.Size)
	}
	if ch.MTU != rnic.DefaultConfig().MTU {
		t.Fatalf("channel MTU = %d", ch.MTU)
	}
	if b.ctrl.SetupOps == 0 {
		t.Fatal("setup ops not counted")
	}
	if b.memNIC.LookupRegion(ch.RKey) == nil {
		t.Fatal("region not registered on NIC")
	}
	// A second channel gets a distinct ID.
	ch2 := b.establish(t, 1<<10, rnic.PSNTolerant, false)
	if ch2.ID == ch.ID {
		t.Fatal("channel IDs collide")
	}
}

func TestChannelWriteReachesRemoteMemory(t *testing.T) {
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 4096, rnic.PSNTolerant, false)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) { ctx.Drop() })
	ch.Write(128, []byte("written-from-data-plane"))
	b.net.Engine.Run()
	region := b.memNIC.LookupRegion(ch.RKey)
	if string(region.Data[128:128+23]) != "written-from-data-plane" {
		t.Fatal("switch-crafted WRITE did not land in server DRAM")
	}
	if b.memHost.CPUOps != 0 {
		t.Fatalf("server CPU ops = %d, want 0", b.memHost.CPUOps)
	}
}

func TestChannelFetchAddAndDispatcher(t *testing.T) {
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 4096, rnic.PSNTolerant, false)
	acks := 0
	b.disp.Register(ch, handlerFunc(func(ctx *switchsim.Context, pkt *wire.Packet) {
		if pkt.BTH.Opcode == wire.OpAtomicAcknowledge {
			acks++
		}
		ctx.Drop()
	}))
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if !b.disp.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	for i := 0; i < 3; i++ {
		ch.FetchAdd(0, 5)
	}
	b.net.Engine.Run()
	if v, _ := b.memNIC.ReadCounter(ch.RKey, ch.Base); v != 15 {
		t.Fatalf("remote counter = %d, want 15", v)
	}
	if acks != 3 {
		t.Fatalf("atomic acks dispatched = %d, want 3", acks)
	}
}

type handlerFunc func(*switchsim.Context, *wire.Packet)

func (f handlerFunc) HandleResponse(ctx *switchsim.Context, pkt *wire.Packet) { f(ctx, pkt) }

func TestDispatcherUnclaimed(t *testing.T) {
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 4096, rnic.PSNTolerant, false)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if !b.disp.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	ch.FetchAdd(0, 1) // no handler registered for ch
	b.net.Engine.Run()
	if b.disp.Unclaimed != 1 {
		t.Fatalf("unclaimed = %d, want 1", b.disp.Unclaimed)
	}
}

func TestDispatcherIgnoresNonResponses(t *testing.T) {
	d := NewDispatcher()
	var pkt wire.Packet
	frame := wire.BuildDataFrame(wire.MACFromUint64(1), wire.MACFromUint64(2),
		wire.IP4{1, 1, 1, 1}, wire.IP4{2, 2, 2, 2}, 1, 2, 100, nil)
	defer wire.DefaultPool.Put(frame)
	if err := pkt.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	ctx := switchsim.Context{Pkt: &pkt, Frame: frame}
	if d.Dispatch(&ctx) {
		t.Fatal("dispatcher consumed a plain data frame")
	}
}

func TestChannelVAOutOfBoundsPanics(t *testing.T) {
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 1024, rnic.PSNTolerant, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-region access")
		}
	}()
	ch.VA(1020, 8)
}

func TestChannelPSNAdvances(t *testing.T) {
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 1<<16, rnic.PSNTolerant, false)
	if ch.NextPSN(1) != 0 || ch.NextPSN(4) != 1 || ch.PSN() != 5 {
		t.Fatal("PSN accounting wrong")
	}
	ch.psn.Set(0, 0xFFFFFE)
	ch.NextPSN(3)
	if ch.PSN() != 1 {
		t.Fatalf("PSN wrap = %d, want 1", ch.PSN())
	}
}

// ---- packet buffer primitive ----

// pktbufBed builds: 2 senders, 1 receiver, two memory servers (a 2:1 incast
// at line rate needs two 40G memory links once the ordering rule routes the
// full arrival rate through the ring); the pipeline forwards everything for
// the receiver through the packet buffer primitive.
func pktbufBed(t *testing.T, swCfg switchsim.Config, pbCfg PacketBufferConfig) (*bed, *PacketBuffer) {
	b := newBedN(t, 3, 2, swCfg, rnic.Config{MTU: 4096})
	chans := []*Channel{
		b.establishOn(t, 0, 1<<22, rnic.PSNTolerant, false), // 4 MB ring each
		b.establishOn(t, 1, 1<<22, rnic.PSNTolerant, false),
	}
	pb, err := NewPacketBuffer(chans, 2, pbCfg) // protect port 2 (receiver)
	if err != nil {
		t.Fatal(err)
	}
	pb.RegisterWith(b.disp)
	b.sw.Hooks = pb
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if b.disp.Dispatch(ctx) {
			return
		}
		if ctx.Pkt == nil {
			ctx.Drop()
			return
		}
		if ctx.Pkt.Eth.Dst == b.hosts[2].MAC {
			pb.Admit(ctx, ctx.Frame)
			return
		}
		ctx.Drop()
	})
	return b, pb
}

func TestPacketBufferBypassWhenHealthy(t *testing.T) {
	b, pb := pktbufBed(t, switchsim.Config{}, PacketBufferConfig{})
	b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[2], 1500, 1))
	b.net.Engine.Run()
	if pb.Stats.Bypassed != 1 || pb.Stats.Stored != 0 {
		t.Fatalf("stats = %+v", pb.Stats)
	}
	if b.hosts[2].Received != 1 {
		t.Fatal("frame lost")
	}
}

func TestPacketBufferSpillsAndRecoversLossless(t *testing.T) {
	// Incast: 2 senders × 300 × 1500B = 900 KB toward one 40G port with a
	// 64 KB high watermark. Without the primitive the 128 KB switch
	// buffer would drop most of it; with it, everything arrives.
	swCfg := switchsim.Config{BufferBytes: 128 << 10}
	pbCfg := PacketBufferConfig{HighWaterBytes: 64 << 10, LowWaterBytes: 32 << 10}
	b, pb := pktbufBed(t, swCfg, pbCfg)
	const perSender = 300
	for i := 0; i < perSender; i++ {
		b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[2], 1500, 1))
		b.net.Ports(b.hosts[1])[0].Send(dataFrame(b.hosts[1], b.hosts[2], 1500, 2))
	}
	b.net.Engine.Run()
	if got := b.hosts[2].Received; got != 2*perSender {
		t.Fatalf("received %d/%d — primitive lost packets (stats %+v, drops %d)",
			got, 2*perSender, pb.Stats, b.sw.Stats.BufferDrops)
	}
	if pb.Stats.Stored == 0 {
		t.Fatal("nothing was spilled: watermark never hit?")
	}
	if pb.Stats.Loaded != pb.Stats.Stored {
		t.Fatalf("loaded %d != stored %d", pb.Stats.Loaded, pb.Stats.Stored)
	}
	if pb.Detouring() {
		t.Fatal("primitive stuck in detour mode after drain")
	}
	if b.memHost.CPUOps != 0 {
		t.Fatalf("memory server CPU = %d", b.memHost.CPUOps)
	}
}

func TestPacketBufferPreservesOrder(t *testing.T) {
	swCfg := switchsim.Config{BufferBytes: 256 << 10}
	pbCfg := PacketBufferConfig{HighWaterBytes: 16 << 10, LowWaterBytes: 8 << 10}
	b, _ := pktbufBed(t, swCfg, pbCfg)
	// Sequence numbers ride in the UDP source port.
	var got []uint16
	b.hosts[2].Handler = func(_ *netsim.Port, frame []byte) {
		var p wire.Packet
		if err := p.DecodeFromBytes(frame); err == nil && p.HasUDP {
			got = append(got, p.UDP.SrcPort)
		}
	}
	const n = 200
	for i := 0; i < n; i++ {
		f := wire.BuildDataFrame(b.hosts[0].MAC, b.hosts[2].MAC, b.hosts[0].IP, b.hosts[2].IP,
			uint16(i+1), 9999, 1500, nil)
		b.net.Ports(b.hosts[0])[0].Send(f)
		b.net.Ports(b.hosts[1])[0].Send(dataFrame(b.hosts[1], b.hosts[2], 1500, 60000))
	}
	b.net.Engine.Run()
	var seq []uint16
	for _, p := range got {
		if p != 60000 {
			seq = append(seq, p)
		}
	}
	if len(seq) != n {
		t.Fatalf("h0 frames delivered = %d/%d", len(seq), n)
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] != seq[i-1]+1 {
			t.Fatalf("reordering at %d: %d then %d", i, seq[i-1], seq[i])
		}
	}
}

func TestPacketBufferRingFullDrops(t *testing.T) {
	// Tiny ring (4 entries) and an unservable flood: ring drops counted.
	b := newBed(t, 3, switchsim.Config{}, rnic.Config{MTU: 4096})
	ch := b.establish(t, 4*2048, rnic.PSNTolerant, false)
	pb, err := NewPacketBuffer([]*Channel{ch}, 2, PacketBufferConfig{
		HighWaterBytes: 1500, LowWaterBytes: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Force detour and stuff the ring without letting loads drain (no
	// dispatcher wired, so responses vanish).
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) { ctx.Drop() })
	b.sw.Hooks = pb
	for i := 0; i < 10; i++ {
		// store copies the frame into the ring entry; the caller (the
		// pipeline pass in production, this loop here) still owns it.
		frame := dataFrame(b.hosts[0], b.hosts[2], 1500, 1)
		pb.store(frame)
		wire.DefaultPool.Put(frame)
	}
	if pb.Stats.Stored != 4 {
		t.Fatalf("stored = %d, want 4 (ring size)", pb.Stats.Stored)
	}
	if pb.Stats.RingDrops != 6 {
		t.Fatalf("ring drops = %d, want 6", pb.Stats.RingDrops)
	}
}

func TestPacketBufferOversizeFrameDropped(t *testing.T) {
	b := newBed(t, 3, switchsim.Config{}, rnic.Config{MTU: 4096})
	ch := b.establish(t, 1<<20, rnic.PSNTolerant, false)
	pb, err := NewPacketBuffer([]*Channel{ch}, 2, PacketBufferConfig{EntrySize: 256})
	if err != nil {
		t.Fatal(err)
	}
	pb.store(make([]byte, 255)) // 255+2 > 256
	if pb.Stats.RingDrops != 1 {
		t.Fatal("oversize frame accepted")
	}
}

func TestPacketBufferConfigValidation(t *testing.T) {
	b := newBed(t, 2, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 1024, rnic.PSNTolerant, false)
	if _, err := NewPacketBuffer([]*Channel{ch}, 0, PacketBufferConfig{EntrySize: 1024}); err == nil {
		t.Fatal("1-entry ring accepted")
	}
	// Inverted watermarks are legal: independent store/load triggers.
	ch2 := b.establish(t, 1<<20, rnic.PSNTolerant, false)
	if _, err := NewPacketBuffer([]*Channel{ch2}, 0, PacketBufferConfig{
		HighWaterBytes: 10, LowWaterBytes: 20,
	}); err != nil {
		t.Fatalf("inverted watermarks rejected: %v", err)
	}
}

func TestPacketBufferMultiPacketEntries(t *testing.T) {
	// MTU 1024 < EntrySize 2048: READ responses arrive First+Last and
	// must reassemble.
	swCfg := switchsim.Config{BufferBytes: 128 << 10}
	pbCfg := PacketBufferConfig{HighWaterBytes: 32 << 10, LowWaterBytes: 16 << 10}
	b := newBedN(t, 3, 2, swCfg, rnic.Config{MTU: 1024})
	chans := []*Channel{
		b.establishOn(t, 0, 1<<22, rnic.PSNTolerant, false),
		b.establishOn(t, 1, 1<<22, rnic.PSNTolerant, false),
	}
	pb, err := NewPacketBuffer(chans, 2, pbCfg)
	if err != nil {
		t.Fatal(err)
	}
	pb.RegisterWith(b.disp)
	b.sw.Hooks = pb
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if b.disp.Dispatch(ctx) {
			return
		}
		if ctx.Pkt != nil && ctx.Pkt.Eth.Dst == b.hosts[2].MAC {
			pb.Admit(ctx, ctx.Frame)
			return
		}
		ctx.Drop()
	})
	const n = 100
	for i := 0; i < n; i++ {
		b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[2], 1500, 1))
		b.net.Ports(b.hosts[1])[0].Send(dataFrame(b.hosts[1], b.hosts[2], 1500, 2))
	}
	b.net.Engine.Run()
	if b.hosts[2].Received != 2*n {
		t.Fatalf("received %d/%d with segmented entries", b.hosts[2].Received, 2*n)
	}
	if pb.Stats.Stored == 0 || pb.Stats.Loaded != pb.Stats.Stored {
		t.Fatalf("stats = %+v", pb.Stats)
	}
}

func TestRoCEv1ChannelEndToEnd(t *testing.T) {
	// A full FAA round trip over the v1 (GRH) encapsulation: request
	// crafted by the switch, executed by the NIC, atomic ACK dispatched
	// back — byte-for-byte over ethertype 0x8915.
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch, err := b.ctrl.Establish(ChannelSpec{
		SwitchPort: b.memPort, NIC: b.memNIC,
		RegionBase: 0x1000, RegionSize: 4096,
		Version: wire.RoCEv1,
	})
	if err != nil {
		t.Fatal(err)
	}
	acks := 0
	b.disp.Register(ch, handlerFunc(func(ctx *switchsim.Context, pkt *wire.Packet) {
		if pkt.BTH.Opcode == wire.OpAtomicAcknowledge && pkt.HasGRH {
			acks++
		}
		ctx.Drop()
	}))
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if !b.disp.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	for i := 0; i < 4; i++ {
		ch.FetchAdd(0, 3)
	}
	b.net.Engine.Run()
	if v, _ := b.memNIC.ReadCounter(ch.RKey, ch.Base); v != 12 {
		t.Fatalf("remote counter = %d, want 12", v)
	}
	if acks != 4 {
		t.Fatalf("v1 atomic acks = %d, want 4", acks)
	}
}

func TestRoCEv1ChannelWriteRead(t *testing.T) {
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{MTU: 4096})
	ch, err := b.ctrl.Establish(ChannelSpec{
		SwitchPort: b.memPort, NIC: b.memNIC,
		RegionBase: 0x1000, RegionSize: 65536,
		Version: wire.RoCEv1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	b.disp.Register(ch, handlerFunc(func(ctx *switchsim.Context, pkt *wire.Packet) {
		if pkt.BTH.Opcode.IsReadResponse() {
			got = append([]byte(nil), pkt.Payload...)
		}
		ctx.Drop()
	}))
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if !b.disp.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	ch.Write(64, []byte("over-grh"))
	ch.Read(64, 8, 1)
	b.net.Engine.Run()
	if string(got) != "over-grh" {
		t.Fatalf("v1 read returned %q", got)
	}
}
