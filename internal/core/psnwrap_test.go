package core

import (
	"testing"

	"gem/internal/rnic"
	"gem/internal/sim"
	"gem/internal/switchsim"
)

// 24-bit PSN wraparound coverage: real RoCE streams run forever, so every
// PSN consumer — the channel's register, the transport's outstanding-op
// matching, the retransmitter's window arithmetic, the responder's expected
// PSN — must mask correctly across 0xFFFFFF → 0. These tests pin each
// layer at the wrap; the SetExpectedPSN hook plays the ModifyQP rq_psn
// attribute so both ends start the stream just below it.

func TestChannelNextPSNWraparound(t *testing.T) {
	b := newBed(t, 1, switchsim.Config{}, rnic.Config{})
	ch := b.establish(t, 4096, rnic.PSNTolerant, false)
	ch.SetPSN(0xFFFFFE)
	if got := ch.NextPSN(3); got != 0xFFFFFE {
		t.Fatalf("NextPSN returned %#x, want 0xFFFFFE", got)
	}
	if got := ch.PSN(); got != 1 {
		t.Fatalf("PSN after consuming across the wrap = %#x, want 1", got)
	}
	// SetPSN must mask: resync PSNs come off the wire 24-bit today, but
	// the register contract must not depend on the caller's hygiene.
	ch.SetPSN(0x1000005)
	if got := ch.PSN(); got != 5 {
		t.Fatalf("SetPSN did not mask: PSN = %#x, want 5", got)
	}
}

func TestStateStoreAcrossPSNWrap(t *testing.T) {
	// Cumulative (FIFO) completion across the wrap: an atomic ACK at a
	// post-wrap PSN must retire the pre-wrap FAAs before it.
	b, ss := stateBed(t, rnic.Config{}, StateStoreConfig{Counters: 64, MaxOutstanding: 8})
	ch := ss.Channel()
	ch.SetPSN(0xFFFFF8)
	b.memNIC.LookupQP(ch.PeerQPN).SetExpectedPSN(0xFFFFF8)
	const n = 200
	for i := 0; i < n; i++ {
		b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[1], 256, uint16(i%8+1)))
	}
	b.net.Engine.Run()
	if ch.PSN() >= 0xFFFFF8 {
		t.Fatalf("PSN stream never wrapped (PSN %#x)", ch.PSN())
	}
	if got := remoteCounterSum(b, ss); got != n {
		t.Fatalf("remote counters = %d, want %d (stats %+v)", got, n, ss.Stats)
	}
	if p := ss.Transport().Pending(); p != 0 {
		t.Fatalf("transport still holds %d WQEs after drain", p)
	}
	if out := ss.Outstanding(); out != 0 {
		t.Fatalf("credits leaked across the wrap: outstanding = %d", out)
	}
}

func TestPacketBufferAcrossPSNWrap(t *testing.T) {
	// Exact-PSN completion across the wrap on both striped channels, under
	// enough load that WRITEs and multi-entry READ windows straddle it.
	swCfg := switchsim.Config{BufferBytes: 128 << 10}
	pbCfg := PacketBufferConfig{HighWaterBytes: 64 << 10, LowWaterBytes: 32 << 10}
	b, pb := pktbufBed(t, swCfg, pbCfg)
	for i, ch := range pb.chans {
		start := uint32(0xFFFFF0 + uint32(i)*3) // distinct wrap points
		ch.SetPSN(start)
		b.memNICs[i].LookupQP(ch.PeerQPN).SetExpectedPSN(start)
	}
	const perSender = 300
	for i := 0; i < perSender; i++ {
		b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[2], 1500, 1))
		b.net.Ports(b.hosts[1])[0].Send(dataFrame(b.hosts[1], b.hosts[2], 1500, 2))
	}
	b.net.Engine.Run()
	if got := b.hosts[2].Received; got != 2*perSender {
		t.Fatalf("received %d/%d across the wrap (stats %+v)", got, 2*perSender, pb.Stats)
	}
	if pb.Stats.Stored == 0 || pb.Stats.Loaded != pb.Stats.Stored {
		t.Fatalf("stored %d loaded %d: ring did not cycle through the wrap",
			pb.Stats.Stored, pb.Stats.Loaded)
	}
	if pb.Stats.StaleResponses != 0 {
		t.Fatalf("exact matching broke at the wrap: %d stale responses", pb.Stats.StaleResponses)
	}
	for i := 0; i < pb.Channels(); i++ {
		if p := pb.Transport(i).Pending(); p != 0 {
			t.Fatalf("channel %d transport still holds %d WQEs", i, p)
		}
	}
}

func TestRetransmitterAcrossPSNWrap(t *testing.T) {
	// Go-back-N under loss with the window straddling the wrap: NAK
	// prefix-retire, cumulative ACK arithmetic and timer-driven resends
	// all run on verbs.PSNAfter and must survive 0xFFFFFF → 0.
	b := lossyBed(t, 0.02)
	ch, err := b.ctrl.Establish(ChannelSpec{
		SwitchPort: 1, NIC: b.memNIC,
		RegionBase: 0x1000, RegionSize: 4096,
		Mode: rnic.PSNStrict, AckReq: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRetransmitter(ch, 8)
	if err != nil {
		t.Fatal(err)
	}
	rt.Timeout = 20 * sim.Microsecond
	ch.SetPSN(0xFFFFC0)
	b.memNIC.LookupQP(ch.PeerQPN).SetExpectedPSN(0xFFFFC0)
	b.disp.Register(ch, rt)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if !b.disp.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	const n = 400
	issued := 0
	b.net.Engine.Ticker(500*sim.Nanosecond, func() bool {
		for issued < n && rt.CanSend() {
			rt.FetchAdd(0, 1)
			issued++
		}
		return issued < n || rt.Unacked() > 0
	})
	b.net.Engine.Run()
	if rt.Unacked() != 0 {
		t.Fatalf("unacked = %d after drain", rt.Unacked())
	}
	v, err := b.memNIC.ReadCounter(ch.RKey, ch.Base)
	if err != nil {
		t.Fatal(err)
	}
	if v != n {
		t.Fatalf("remote counter = %d, want %d across the wrap (rexmit %d, naks %d, resyncs %d)",
			v, n, rt.Retransmits, rt.NaksSeen, rt.Resyncs)
	}
	if rt.Retransmits == 0 {
		t.Fatal("suspicious: 2% loss but zero retransmits near the wrap")
	}
}
