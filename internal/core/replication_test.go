package core

import (
	"bytes"
	"testing"

	"gem/internal/core/verbs"
	"gem/internal/rnic"
	"gem/internal/sim"
	"gem/internal/switchsim"
)

// replicatedBed wires one host and two memory servers: a primary channel on
// server 0 carrying a replicated StateStore, its replica channel on server 1.
func replicatedBed(t *testing.T, ssCfg StateStoreConfig, mCfg verbs.MirrorConfig) (*bed, *StateStore, *verbs.MirroredQP, *Channel, *Channel) {
	t.Helper()
	b := newBedN(t, 1, 2, switchsim.Config{}, rnic.Config{})
	ssCfg.fillDefaults()
	primary := b.establishOn(t, 0, ssCfg.Counters*8, rnic.PSNTolerant, false)
	replica := b.establishOn(t, 1, ssCfg.Counters*8, rnic.PSNTolerant, false)
	ss, err := NewStateStore(primary, ssCfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ss.Replicate(0, replica, mCfg)
	if err != nil {
		t.Fatal(err)
	}
	b.disp.Register(primary, ss)
	b.disp.Register(replica, ss)
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if !b.disp.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	return b, ss, m, primary, replica
}

func TestStateStoreReplicaCrashScrubReseeds(t *testing.T) {
	// A replica crash that wipes the replica's DRAM leaves the two copies
	// diverged even though every mirror post was acknowledged before the
	// crash. The anti-entropy scrubber must detect the divergence and re-seed
	// the replica from the primary, byte for byte, without disturbing the
	// primary copy.
	b, ss, m, primary, replica := replicatedBed(t,
		StateStoreConfig{Counters: 8, MaxOutstanding: 4},
		verbs.MirrorConfig{Mode: verbs.ReplicationSync})

	for i := 0; i < 8; i++ {
		ss.Update(i, uint64(i+1))
	}
	b.net.Engine.Run()

	pwin := b.memNICs[0].LookupRegion(primary.RKey).Data[:8*8]
	rwin := b.memNICs[1].LookupRegion(replica.RKey).Data[:8*8]
	if !bytes.Equal(pwin, rwin) {
		t.Fatal("mirrored copies diverge before the crash")
	}

	// Replica crash-with-wipe: the region bytes are gone, the mirror's
	// accounting says everything was acknowledged — only a scrub can notice.
	clear(rwin)

	sc := NewScrubber(b.net.Engine, pwin, rwin, ScrubConfig{
		Interval: sim.Microsecond, Chunk: 16,
		Live: func() bool {
			return !m.Promoted() && m.Lag() == 0 && ss.Outstanding() == 0
		},
	})
	sc.Start()
	b.net.Engine.RunFor(64 * sim.Microsecond)
	sc.Stop()

	if sc.Stats.Diverged == 0 || sc.Stats.Repairs == 0 || sc.Stats.BytesRepaired == 0 {
		t.Fatalf("scrub saw no divergence: %+v", sc.Stats)
	}
	if !bytes.Equal(pwin, rwin) {
		t.Fatal("replica not re-seeded to byte equality")
	}
	if got := remoteCounterSum(b, ss); got != 1+2+3+4+5+6+7+8 {
		t.Fatalf("primary disturbed by scrub: sum = %d, want 36", got)
	}
}

func TestStateStoreReconcileRacesPromotion(t *testing.T) {
	// Reconcile racing a promotion: counters 0–1 are in flight on the primary
	// (and mirrored to the replica), 2–3 park on the full window, and 4–7
	// park in a degraded backlog. Promoting mid-race must (a) not replay the
	// journal entries that already reached the replica's wire, (b) return
	// every aborted credit, and (c) let the following Reconcile flush the
	// backlog to the replica exactly once.
	b, ss, m, primary, replica := replicatedBed(t,
		StateStoreConfig{Counters: 8, MaxOutstanding: 2},
		verbs.MirrorConfig{Mode: verbs.ReplicationSync})

	ss.Update(0, 1)
	ss.Update(1, 1)
	ss.Update(2, 1) // window full: accumulates
	ss.Update(3, 1)
	oldCredits := ss.ShardCredits(0)
	if oldCredits.Outstanding() != 2 {
		t.Fatalf("setup: outstanding = %d, want 2", oldCredits.Outstanding())
	}

	ss.SetDegraded(true)
	for i := 4; i < 8; i++ {
		ss.Update(i, 1)
	}

	// The primary is declared dead; the shard promotes while its window is
	// still in flight and the store is still degraded.
	if !ss.PromoteShard(0) {
		t.Fatal("promotion refused")
	}
	if oldCredits.Outstanding() != 0 {
		t.Fatalf("abort leaked credits: %d outstanding", oldCredits.Outstanding())
	}
	if m.Stats.Replayed != 0 {
		t.Fatalf("promotion replayed %d wire-posted entries (double-apply)", m.Stats.Replayed)
	}
	if ss.PromoteShard(0) {
		t.Fatal("second promotion not a no-op")
	}

	ss.Reconcile()
	b.net.Engine.Run()

	// Every counter lands on the replica exactly once: 0–1 via the mirror,
	// 2–7 via the reconcile flush onto the rebound shard.
	for i := 0; i < 8; i++ {
		v, err := b.memNICs[1].ReadCounter(replica.RKey, replica.Base+uint64(i*8))
		if err != nil {
			t.Fatalf("counter %d: %v", i, err)
		}
		if v != 1 {
			t.Fatalf("replica counter %d = %d, want exactly 1 (stats %+v)", i, v, ss.Stats)
		}
	}
	// The aborted in-flight pair still executed on the (alive) old primary;
	// its late ACKs must not confuse the rebound shard.
	var psum uint64
	for i := 0; i < 8; i++ {
		v, _ := b.memNICs[0].ReadCounter(primary.RKey, primary.Base+uint64(i*8))
		psum += v
	}
	if psum != 2 {
		t.Fatalf("old primary sum = %d, want 2 (the aborted in-flight pair)", psum)
	}
	if ss.PendingTotal() != 0 {
		t.Fatalf("pending = %d after reconcile", ss.PendingTotal())
	}
	if n := ss.ShardCredits(0).Outstanding(); n != 0 {
		t.Fatalf("credits leaked: %d outstanding after drain", n)
	}
}
