package core

import (
	"math/rand"
	"testing"

	"gem/internal/rnic"
	"gem/internal/sim"
	"gem/internal/switchsim"
)

// delayOnce is a fault injector that holds back the first frame it sees by
// a fixed extra delay and passes everything after untouched.
type delayOnce struct {
	delay sim.Duration
	used  bool
}

func (d *delayOnce) Transmit(_ sim.Time, _ *rand.Rand, _ []byte) (bool, sim.Duration) {
	if d.used {
		return false, 0
	}
	d.used = true
	return false, d.delay
}

// TestPacketBufferStaleResponseAfterRetry delays a READ response past
// ReadTimeout so the entry is re-issued under a fresh PSN — the retry
// cancels the original outstanding record. When the original response
// finally lands it must be counted in StaleResponses and dropped; the
// retried response delivers the frame exactly once, and the entry's read
// credit is released exactly once (the package TestMain's pool audit would
// catch the frame being freed twice).
func TestPacketBufferStaleResponseAfterRetry(t *testing.T) {
	b := newBed(t, 3, switchsim.Config{BufferBytes: 128 << 10}, rnic.Config{MTU: 4096})
	ch := b.establish(t, 64*2048, rnic.PSNTolerant, false)
	pb, err := NewPacketBuffer([]*Channel{ch}, 2, PacketBufferConfig{
		HighWaterBytes: 1, LowWaterBytes: 256 << 10, // store-and-load everything
		ReadTimeout: 10 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	pb.RegisterWith(b.disp)
	b.sw.Hooks = pb
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if b.disp.Dispatch(ctx) {
			return
		}
		if ctx.Pkt == nil {
			ctx.Drop()
			return
		}
		pb.Admit(ctx, ctx.Frame)
	})
	// The NIC's first transmission is the READ response for entry 0 (spill
	// WRITEs are unacked in PSN-tolerant mode): hold it back well past
	// ReadTimeout, so exactly one retry fires before it arrives.
	b.memNIC.Port().SetFaultInjector(&delayOnce{delay: 30 * sim.Microsecond})

	b.net.Ports(b.hosts[0])[0].Send(dataFrame(b.hosts[0], b.hosts[2], 1500, 1))
	b.net.Engine.Run()

	if pb.Stats.Stored != 1 || pb.Stats.Loaded != 1 {
		t.Fatalf("stored %d loaded %d, want 1/1 (stats %+v)",
			pb.Stats.Stored, pb.Stats.Loaded, pb.Stats)
	}
	if pb.Stats.ReadRetries != 1 {
		t.Fatalf("ReadRetries = %d, want exactly 1", pb.Stats.ReadRetries)
	}
	if pb.Stats.StaleResponses != 1 {
		t.Fatalf("StaleResponses = %d, want 1 (the delayed original)", pb.Stats.StaleResponses)
	}
	if got := b.hosts[2].Received; got != 1 {
		t.Fatalf("receiver got %d frames, want exactly 1", got)
	}
	cr := pb.ChannelCredits(0)
	if cr.Outstanding() != 0 {
		t.Fatalf("credit leaked: outstanding %d after drain", cr.Outstanding())
	}
	if cr.Stats.Acquired != 1 || cr.Stats.Released != 1 {
		t.Fatalf("credit accounting %d acquired / %d released, want 1/1 (retry reuses, stale ignored)",
			cr.Stats.Acquired, cr.Stats.Released)
	}
}
