package core

import (
	"fmt"

	"gem/internal/core/verbs"
	"gem/internal/sim"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// StateStoreConfig tunes the state-store primitive.
type StateStoreConfig struct {
	// Counters is the number of 8-byte counters across the remote region(s).
	// With N channels the counter space stripes over them (counter i lives
	// on server i mod N), so each region holds ceil(Counters/N) words.
	Counters int
	// MaxOutstanding caps in-flight Fetch-and-Add requests per channel —
	// "Since there is a maximum limit of outstanding RDMA atomic requests
	// that an RNIC can handle, we design this primitive to maintain the
	// number of outstanding requests" (§4). 0 = the channel's negotiated
	// WindowHint (the NIC's advertised responder resources), falling back
	// to 16.
	MaxOutstanding int
	// LowWatermark is the credit window's gate-release point: once the
	// window gates at MaxOutstanding, issuing resumes only after in-flight
	// FAAs drain to this level. 0 = MaxOutstanding-1 (no hysteresis gap,
	// the classic windowed behaviour).
	LowWatermark int
	// ShedPendingSlots, when positive, turns on priority load shedding: a
	// PriorityLow update arriving while the pending table already holds
	// this many accumulators is shed (counted in ShedUpdates) instead of
	// admitted. High-priority updates are never shed, preserving their
	// exactness guarantee. 0 = disabled.
	ShedPendingSlots int
	// UnlimitedWindow disables credit refusal while keeping the accounting
	// — the test-only ablation that reproduces the unbounded-growth
	// baseline of an uncontrolled requester.
	UnlimitedWindow bool
	// PendingSlots bounds the switch-side accumulation table used while
	// the RNIC is saturated; updates beyond it are dropped and counted.
	PendingSlots int
	// Batch combines this many per-counter updates into one FAA (§7
	// future work: "combine multiple counter updates into a single
	// operation, at the cost of some delay in updates"). 1 = no batching.
	Batch uint64
	// Doorbell moves batching into the transport: updates defer into the
	// per-shard doorbell ring, where same-counter deltas coalesce before
	// any frame is built, and post when a delta reaches Batch, the ring
	// fills, or DoorbellFlush elapses. Off = the immediate posting path
	// (Batch applied per-counter at the head of the dirty queue).
	Doorbell bool
	// DoorbellFlush bounds a deferred delta's delay (the doorbell age
	// trigger). Default 50µs when Doorbell is set.
	DoorbellFlush sim.Duration
	// OutstandingTimeout declares an unanswered FAA lost, releasing its
	// outstanding slot (the switch "keeps track of RNIC progress").
	OutstandingTimeout sim.Duration
}

func (c *StateStoreConfig) fillDefaults() {
	// MaxOutstanding deliberately has no default here: NewStateStore
	// resolves 0 through the channel's WindowHint (see EnsureCredits).
	if c.PendingSlots == 0 {
		c.PendingSlots = 4096
	}
	if c.Batch == 0 {
		c.Batch = 1
	}
	if c.Doorbell && c.DoorbellFlush == 0 {
		c.DoorbellFlush = 50 * sim.Microsecond
	}
	if c.OutstandingTimeout == 0 {
		c.OutstandingTimeout = 500 * sim.Microsecond
	}
}

// StateStoreStats are the primitive's observable counters.
type StateStoreStats struct {
	Updates        int64 // data-plane count events observed
	FAAIssued      int64 // Fetch-and-Add requests sent
	AcksSeen       int64 // atomic ACKs consumed
	Accumulated    int64 // updates absorbed into pending accumulators
	DroppedUpdates int64 // updates lost because the pending table was full
	TimedOut       int64 // FAAs declared lost by the outstanding tracker
	// DegradedUpdates counts updates absorbed while the store was degraded
	// (accumulating locally, no remote traffic).
	DegradedUpdates int64
	// Reconciles counts degraded→normal transitions that flushed the backlog.
	Reconciles int64
	// ShedUpdates counts PriorityLow updates refused at admission because
	// the pending table crossed ShedPendingSlots (never silent loss).
	ShedUpdates int64
	// DegradedEntries / DegradedExits count transitions into and out of the
	// degraded posture (SetDegraded edges plus Reconcile exits).
	DegradedEntries int64
	DegradedExits   int64
	// ModeChanges counts SetConsistencyMode transitions between distinct
	// modes (a supervisor relaxing and restoring the contract).
	ModeChanges int64
	// BoundFlushes counts flushes initiated by a staleness bound (MaxDelta
	// crossed, or the MaxAge timer fired with deltas pending).
	BoundFlushes int64
	// MaxStalenessNs is the oldest age (in ns) any locally accumulated delta
	// had reached when a bound flush was initiated — the observable form of
	// the MaxAge guarantee: it never exceeds the configured bound.
	MaxStalenessNs int64
	// MaxPendingDelta is the peak locally accumulated sum ever observed —
	// under BoundedStaleness, how far the local copy drifted from remote.
	MaxPendingDelta uint64
}

// StateStore is the state-store primitive (§4): per-flow counters in remote
// DRAM updated with RDMA atomic Fetch-and-Add. While the RNIC's atomic
// pipeline is saturated, updates accumulate in switch registers and are
// flushed — with the accumulated delta — as slots free up, so the remote
// value stays exact.
//
// Since the work-queue refactor the store is a thin consumer of the verbs
// transport: it decides *what* to flush (accumulate, batch, shed) and posts
// FAAs through a striped QP — counter i homes on shard i mod N, each shard
// a private QP/credit window/retransmitter over one server's channel; PSN
// tracking, cumulative ACK matching, credit release, timeout reaping, and
// (in doorbell mode) delta coalescing all live in the transport.
type StateStore struct {
	chans []*Channel
	sw    *switchsim.Switch
	cfg   StateStoreConfig

	// striped is the store's work-queue surface: cumulative completion per
	// shard (atomic ACKs retire every FAA at or before the echoed PSN) with
	// the FIFO reaper standing in for RNIC-progress tracking on the lossy
	// path.
	striped *verbs.StripedQP

	// rts carries a shard's FAAs through a Retransmitter instead of the bare
	// channel: loss recovery moves to the retransmit window, so that shard's
	// lossy-path timeout reaper is disabled (nothing is ever "lost", only
	// late). Wire responses as failover → rt → store.
	rts []*Retransmitter

	// degraded pauses the flush path: updates accumulate on the switch until
	// Reconcile. This is the store's explicit failure posture while its
	// server is known-dead and no standby remains.
	degraded bool

	// mode is the store's consistency contract (Strict by default); bound
	// parameterizes BoundedStaleness. oldestPendingAt tracks when the current
	// backlog started (for the MaxAge trigger and staleness accounting);
	// ageArmed notes a scheduled age-timer event.
	mode            ConsistencyMode
	bound           StalenessBound
	oldestPendingAt sim.Time
	ageArmed        bool
	// draining marks a bound flush cut short by the window: ACKs keep
	// draining the backlog until it empties, then accumulation resumes.
	draining bool

	// credits are the per-channel shared admission windows (EnsureCredits):
	// one credit per in-flight FAA, held and released by the shard's QP.
	credits []*Credits

	pending    map[int]uint64 // counter index → accumulated delta
	dirty      [][]int        // per-shard FIFO of indexes with pending deltas
	pendingSum uint64
	byQPN      map[uint32]int // channel QPN → shard, for response routing

	// mirrors, when set per shard, shadow-post that shard's FAAs onto a
	// replica server (Replicate); replicaCh remembers the replica channel
	// for promotion, and mirrorByQPN routes replica-side ACKs.
	mirrors     []*verbs.MirroredQP
	replicaCh   []*Channel
	mirrorByQPN map[uint32]int

	Stats StateStoreStats
}

// NewStateStore wires the primitive to a single channel; the region must
// hold cfg.Counters 8-byte words.
func NewStateStore(ch *Channel, cfg StateStoreConfig) (*StateStore, error) {
	return NewStripedStateStore([]*Channel{ch}, cfg)
}

// NewStripedStateStore wires the primitive across chans (one per memory
// server): counter i homes on chans[i mod N] at offset (i div N)*8, so each
// region must hold ceil(Counters/N) words and aggregate FAA throughput
// scales with the per-server atomic ceilings.
func NewStripedStateStore(chans []*Channel, cfg StateStoreConfig) (*StateStore, error) {
	cfg.fillDefaults()
	if len(chans) == 0 {
		return nil, fmt.Errorf("core: state store needs at least one channel")
	}
	if cfg.Counters <= 0 {
		return nil, fmt.Errorf("core: state store needs a positive counter count")
	}
	perShard := (cfg.Counters + len(chans) - 1) / len(chans)
	for _, ch := range chans {
		if need := perShard * 8; need > ch.Size {
			return nil, fmt.Errorf("core: %d counters need %d bytes, region has %d",
				perShard, need, ch.Size)
		}
	}
	// The pending table is switch SRAM: index (4B) + delta (8B) + slack.
	if err := chans[0].sw.SRAM.Alloc(fmt.Sprintf("statestore%d/pending", chans[0].ID), cfg.PendingSlots*16); err != nil {
		return nil, err
	}
	s := &StateStore{
		chans: chans, sw: chans[0].sw, cfg: cfg,
		pending:     make(map[int]uint64, cfg.PendingSlots),
		dirty:       make([][]int, len(chans)),
		rts:         make([]*Retransmitter, len(chans)),
		byQPN:       make(map[uint32]int, len(chans)),
		mirrors:     make([]*verbs.MirroredQP, len(chans)),
		replicaCh:   make([]*Channel, len(chans)),
		mirrorByQPN: make(map[uint32]int),
	}
	qps := make([]*verbs.QP, len(chans))
	for i, ch := range chans {
		s.byQPN[ch.ID] = i
		cr := ch.EnsureCredits(CreditConfig{
			Window: cfg.MaxOutstanding, Low: cfg.LowWatermark,
			Unlimited: cfg.UnlimitedWindow,
		})
		s.credits = append(s.credits, cr)
		qps[i] = verbs.NewQP(ch, cr, verbs.QPConfig{
			Cumulative: true,
			Reap:       true,
			Timeout:    cfg.OutstandingTimeout,
			OnExpired:  func(verbs.OpType, uint64) { s.Stats.TimedOut++ },
		})
		if cfg.Doorbell {
			qps[i].EnableDoorbell(verbs.DoorbellConfig{
				MaxAge:     cfg.DoorbellFlush,
				FlushDelta: cfg.Batch,
			})
		}
	}
	// Reflect the resolved window (WindowHint or credit default) back into
	// the config so Config().MaxOutstanding reports the effective limit.
	s.cfg.MaxOutstanding = s.credits[0].Config().Window
	s.striped = verbs.NewStriped(qps, verbs.StripeConfig{EntrySize: 8})
	return s, nil
}

// Config returns the effective configuration.
func (s *StateStore) Config() StateStoreConfig { return s.cfg }

// Channel returns the store's first (or only) RDMA channel.
func (s *StateStore) Channel() *Channel { return s.chans[0] }

// Channels reports the store's shard count.
func (s *StateStore) Channels() int { return len(s.chans) }

// Transport exposes the store's striped work queue for introspection
// (gem.Stats, per-shard tests).
func (s *StateStore) Transport() *verbs.StripedQP { return s.striped }

// Rebind moves a single-channel store to a new channel (server failover);
// striped stores rebind one shard at a time via RebindShard.
func (s *StateStore) Rebind(ch *Channel) { s.RebindShard(0, ch) }

// RebindShard moves shard si to a new channel without disturbing its
// siblings. In-flight requests to the old server are abandoned; locally
// accumulated updates — the pending table and any deltas deferred in the
// shard's doorbell ring — are preserved and flush to the new server exactly
// once (a doorbell entry leaves the ring the moment it posts, so a flush
// trigger that straddles the rebind cannot double-post its delta). Counts
// already committed to the dead server's DRAM are lost — the caller
// accounts for them via the old region if it ever comes back.
func (s *StateStore) RebindShard(si int, ch *Channel) {
	perShard := (s.cfg.Counters + len(s.chans) - 1) / len(s.chans)
	if need := perShard * 8; need > ch.Size {
		panic(fmt.Sprintf("core: rebind target region too small: %d < %d", ch.Size, need))
	}
	// Abandoned in-flight FAAs return their credits to the old channel's
	// window (nothing will ever answer them), then the shard adopts the new
	// channel's window, carrying its configuration across.
	qp := s.striped.Shard(si)
	qp.Abort()
	delete(s.byQPN, s.chans[si].ID)
	s.chans[si] = ch
	s.byQPN[ch.ID] = si
	s.credits[si] = ch.EnsureCredits(s.credits[si].Config())
	qp.Rebind(ch, s.credits[si])
	s.flush()
}

// Replicate shadow-posts shard si's flushed work onto replica — a channel
// to a second server whose region mirrors the shard's counter window. The
// replica QP is credit-less (the mirror must never backpressure the
// primary's admission window) and cumulative, like the shard itself.
// Incompatible with Doorbell mode: there the transport owns the posting
// moment, so the store never sees the post to shadow it. Returns the
// mirror for introspection (promotion is PromoteShard).
func (s *StateStore) Replicate(si int, replica *Channel, cfg verbs.MirrorConfig) (*verbs.MirroredQP, error) {
	if s.cfg.Doorbell {
		return nil, fmt.Errorf("core: replication is incompatible with doorbell batching (the transport owns the posting moment)")
	}
	if s.mirrors[si] != nil {
		return nil, fmt.Errorf("core: shard %d already replicated", si)
	}
	perShard := (s.cfg.Counters + len(s.chans) - 1) / len(s.chans)
	if need := perShard * 8; need > replica.Size {
		return nil, fmt.Errorf("core: replica region too small: %d < %d", replica.Size, need)
	}
	rqp := verbs.NewQP(replica, nil, verbs.QPConfig{Cumulative: true})
	m := verbs.NewMirrored(s.striped.Shard(si), rqp, cfg)
	s.mirrors[si] = m
	s.replicaCh[si] = replica
	s.mirrorByQPN[replica.ID] = si
	return m, nil
}

// Mirror returns shard si's mirror (nil when the shard is unreplicated).
func (s *StateStore) Mirror(si int) *verbs.MirroredQP { return s.mirrors[si] }

// ReplicaChannel returns shard si's replica channel (nil when
// unreplicated) — the scrubber and promotion verification read through it.
func (s *StateStore) ReplicaChannel(si int) *Channel { return s.replicaCh[si] }

// MirrorStats merges every shard mirror's replication counters.
func (s *StateStore) MirrorStats() verbs.MirrorStats {
	var st verbs.MirrorStats
	for _, m := range s.mirrors {
		if m != nil {
			st = st.Add(m.Stats)
		}
	}
	return st
}

// MirrorLagTier maps the worst shard's replica lag onto the supervisor's
// pressure scale: 0 under half the lag bound, 1 past half, 2 past the bound
// itself. Promoted (and unreplicated) shards report 0 — there is no replica
// left to lag.
func (s *StateStore) MirrorLagTier() int {
	tier := 0
	for _, m := range s.mirrors {
		if m == nil || m.Promoted() {
			continue
		}
		lag, bound := m.Lag(), m.MaxLag()
		switch {
		case lag > bound:
			tier = 2
		case lag*2 > bound && tier < 1:
			tier = 1
		}
		if tier == 2 {
			break
		}
	}
	return tier
}

// PromoteShard makes shard si's replica the authoritative copy after a
// primary crash: the mirror replays its journal of never-posted work into
// the replica, then the shard rebinds to the replica channel (aborting
// in-flight requests to the dead primary, flushing the pending backlog to
// the replica). The order matters — the replay must use the replica-side QP
// before the shard QP adopts the replica's channel. A second call (the
// failback edge re-firing OnFailover) is a no-op: a promoted shard stays on
// its replica, where the surviving bytes are. Reports whether a promotion
// happened.
func (s *StateStore) PromoteShard(si int) bool {
	m := s.mirrors[si]
	if m == nil || m.Promoted() {
		return false
	}
	m.Promote()
	s.RebindShard(si, s.replicaCh[si])
	return true
}

// SetRetransmitter routes shard 0's FAAs through rt (reliable mode); use
// SetShardRetransmitter for striped stores. The caller is responsible for
// the response chain reaching rt before the store (rt.Inner = store) and
// for retargeting rt on failover.
func (s *StateStore) SetRetransmitter(rt *Retransmitter) { s.SetShardRetransmitter(0, rt) }

// SetShardRetransmitter routes shard si's FAAs through rt. The shard's QP
// becomes rt's completion queue (unless the caller wired one already), so
// NAKs and retry-budget exhaustion surface as typed error completions in the
// store's transport stats.
func (s *StateStore) SetShardRetransmitter(si int, rt *Retransmitter) {
	s.rts[si] = rt
	if rt.CQ == nil {
		rt.CQ = s.striped.Shard(si)
	}
	s.striped.Shard(si).SetReliable(rt)
}

// SetDegraded pauses (true) or re-enables (false) remote flushing; prefer
// Reconcile for the re-enable edge, which also kicks the backlog out.
func (s *StateStore) SetDegraded(on bool) {
	if on && !s.degraded {
		s.Stats.DegradedEntries++
	} else if !on && s.degraded {
		s.Stats.DegradedExits++
	}
	s.degraded = on
}

// Degraded reports whether the store is accumulating locally only.
func (s *StateStore) Degraded() bool { return s.degraded }

// SetConsistencyMode switches the store's state-access contract. Entering
// BoundedStaleness fills b's defaults and arms the staleness machinery for
// whatever backlog already exists; returning to Strict flushes the backlog a
// relaxed mode accumulated (the synchronous contract resumes only once the
// local copy converges). b is ignored for Strict and Eventual.
func (s *StateStore) SetConsistencyMode(m ConsistencyMode, b StalenessBound) {
	prev := s.mode
	if m == BoundedStaleness {
		b.fillDefaults()
		s.bound = b
	}
	s.mode = m
	if m != prev {
		s.Stats.ModeChanges++
	}
	switch {
	case m == BoundedStaleness && s.pendingSum > 0:
		s.armAgeTimer()
	case m == Strict && prev != Strict:
		s.reapLossy()
		s.flush()
	}
}

// Mode reports the store's current consistency contract.
func (s *StateStore) Mode() ConsistencyMode { return s.mode }

// Bound reports the effective staleness bound (meaningful in
// BoundedStaleness mode).
func (s *StateStore) Bound() StalenessBound { return s.bound }

// Reconcile converges the local copy with remote memory: any degraded
// interval ends (through the single SetDegraded exit edge, so DegradedExits
// counts the transition exactly once however recovery is spelled) and the
// accumulated backlog flushes as outstanding slots allow. Safe to call
// whether or not the store is degraded — a supervisor fires it on every
// recovery without tracking which posture caused the backlog.
func (s *StateStore) Reconcile() {
	if s.degraded {
		s.Stats.Reconciles++
		s.SetDegraded(false)
	}
	s.reapLossy()
	s.flush()
}

// reapLossy runs the expiry reaper on every shard not covered by a
// retransmitter (reliable shards never lose requests, only delay them).
func (s *StateStore) reapLossy() {
	for i := range s.rts {
		if s.rts[i] == nil {
			s.striped.Shard(i).ReapExpired()
		}
	}
}

// Outstanding reports in-flight FAA requests across all shards.
func (s *StateStore) Outstanding() int {
	n := 0
	for _, cr := range s.credits {
		n += cr.Outstanding()
	}
	return n
}

// Credits exposes shard 0's admission window for introspection; striped
// stores meter each shard separately (ShardCredits).
func (s *StateStore) Credits() *Credits { return s.credits[0] }

// ShardCredits exposes shard si's admission window.
func (s *StateStore) ShardCredits(si int) *Credits { return s.credits[si] }

// Pending reports the delta accumulated on the switch for counter idx but
// not yet flushed — the pending-table accumulator plus any delta deferred
// in the home shard's doorbell ring. Exactness checks add it to the remote
// value.
func (s *StateStore) Pending(idx int) uint64 {
	return s.pending[idx] + s.striped.Home(uint64(idx)).DoorbellDeltaAt(s.striped.Offset(uint64(idx)))
}

// PendingTotal reports updates accumulated on the switch but not yet on the
// wire — pending-table deltas plus doorbell-resident deltas. The value
// accuracy checks add it to the remote counters.
func (s *StateStore) PendingTotal() uint64 {
	return s.pendingSum + s.striped.DoorbellDelta()
}

// CounterOffset returns counter idx's byte offset inside its home shard's
// region.
func (s *StateStore) CounterOffset(idx int) int { return s.striped.Offset(uint64(idx)) }

// CounterHome returns the channel holding counter idx and its offset there.
func (s *StateStore) CounterHome(idx int) (*Channel, int) {
	return s.chans[s.striped.ShardOf(uint64(idx))], s.striped.Offset(uint64(idx))
}

// UpdateFlow counts one packet of the flow identified by key.
func (s *StateStore) UpdateFlow(key wire.FlowKey) {
	s.Update(key.Index(s.cfg.Counters), 1)
}

// Update adds delta to counter idx, issuing a Fetch-and-Add immediately
// when the RNIC has room (and the batch threshold is met), accumulating
// locally otherwise. Update is the high-priority path: it is never shed.
func (s *StateStore) Update(idx int, delta uint64) {
	s.UpdatePrio(idx, delta, switchsim.PriorityHigh)
}

// UpdatePrio is Update with an admission priority. Under overload (pending
// table at ShedPendingSlots or beyond), PriorityLow updates are shed and
// counted; admitted updates keep the store's exactness guarantee.
func (s *StateStore) UpdatePrio(idx int, delta uint64, prio switchsim.Priority) {
	if idx < 0 || idx >= s.cfg.Counters {
		panic(fmt.Sprintf("core: counter index %d out of range", idx))
	}
	// Eventual mode never sheds: absorbing the update stream into the local
	// copy is the contract, and the pending table (PendingSlots) is the only
	// capacity limit.
	if prio == switchsim.PriorityLow && s.cfg.ShedPendingSlots > 0 &&
		s.mode != Eventual && len(s.pending) >= s.cfg.ShedPendingSlots {
		// Shed before the update is observed: the counters below only ever
		// account for admitted traffic, so "admitted == remote + pending"
		// stays exact.
		s.Stats.ShedUpdates += int64(delta)
		return
	}
	s.Stats.Updates += int64(delta)
	if s.degraded {
		s.Stats.DegradedUpdates += int64(delta)
		s.accumulate(idx, delta)
		return
	}
	switch s.mode {
	case BoundedStaleness:
		// Proceed on the local copy; flush only when a bound trips. The
		// MaxAge timer (armed by accumulate's backlog-start edge) covers the
		// age bound, the delta check here covers the volume bound.
		s.accumulate(idx, delta)
		if s.pendingSum >= s.bound.MaxDelta {
			s.boundFlush()
		}
	case Eventual:
		s.accumulate(idx, delta)
		s.opportunisticFlush()
	default:
		s.reapLossy()
		s.accumulate(idx, delta)
		s.flush()
	}
}

func (s *StateStore) accumulate(idx int, delta uint64) {
	if _, exists := s.pending[idx]; !exists {
		if len(s.pending) >= s.cfg.PendingSlots {
			s.Stats.DroppedUpdates += int64(delta)
			return
		}
		si := s.striped.ShardOf(uint64(idx))
		s.dirty[si] = append(s.dirty[si], idx)
	}
	if s.pendingSum == 0 {
		// Backlog starts now: remember when, for the staleness accounting,
		// and arm the MaxAge trigger if the mode bounds it.
		s.oldestPendingAt = s.sw.Engine.Now()
		s.armAgeTimer()
	}
	s.pending[idx] += delta
	s.pendingSum += delta
	if s.pendingSum > s.Stats.MaxPendingDelta {
		s.Stats.MaxPendingDelta = s.pendingSum
	}
	s.Stats.Accumulated += int64(delta)
}

// armAgeTimer schedules the BoundedStaleness MaxAge trigger, at most one
// outstanding event at a time. Strict and Eventual modes never arm it, so
// they add no events to the schedule.
func (s *StateStore) armAgeTimer() {
	if s.ageArmed || s.mode != BoundedStaleness || s.bound.MaxAge <= 0 {
		return
	}
	s.ageArmed = true
	s.sw.Engine.Schedule(s.bound.MaxAge, s.onAgeTimer)
}

func (s *StateStore) onAgeTimer() {
	s.ageArmed = false
	if s.mode != BoundedStaleness || s.degraded || s.pendingSum == 0 {
		return
	}
	s.boundFlush()
}

// boundFlush is a flush initiated by a staleness bound: it records how stale
// the oldest accumulated delta got (never beyond MaxAge, by construction of
// the age timer), drains what credits allow, and restarts the staleness
// clock for whatever backlog remains.
func (s *StateStore) boundFlush() {
	now := s.sw.Engine.Now()
	if stale := int64(now.Sub(s.oldestPendingAt)); stale > s.Stats.MaxStalenessNs {
		s.Stats.MaxStalenessNs = stale
	}
	s.Stats.BoundFlushes++
	s.reapLossy()
	s.flush()
	s.draining = s.pendingSum > 0
	if s.draining {
		s.oldestPendingAt = now
		s.armAgeTimer()
	}
}

// opportunisticFlush is the Eventual-mode reconcile: a shard's backlog moves
// to the wire only when its window is fully idle, so deltas coalesce
// maximally and flushing never competes with in-flight work.
func (s *StateStore) opportunisticFlush() {
	if s.degraded {
		return
	}
	s.reapLossy()
	for si := range s.dirty {
		if s.credits[si].Outstanding() == 0 {
			s.flushShard(si)
		}
	}
}

// flush moves dirty counters toward the wire, shard by shard: immediate
// FAAs while outstanding slots remain and batch thresholds are met, or — in
// doorbell mode — deferrals into the shard's pending ring, where the
// transport coalesces and posts them on its own triggers.
func (s *StateStore) flush() {
	if s.degraded {
		return
	}
	for si := range s.dirty {
		s.flushShard(si)
	}
	if s.cfg.Doorbell {
		// FAAIssued counts frames, and in doorbell mode the transport owns
		// the posting moment; mirror its flush counters.
		var n int64
		for i := 0; i < s.striped.Shards(); i++ {
			n += s.striped.Shard(i).DoorbellStatsSnapshot().Flushed
		}
		s.Stats.FAAIssued = n
	}
}

func (s *StateStore) flushShard(si int) {
	qp := s.striped.Shard(si)
	dirty := s.dirty[si]
	defer func() { s.dirty[si] = dirty }()

	if s.cfg.Doorbell {
		for len(dirty) > 0 {
			idx := dirty[0]
			delta := s.pending[idx]
			if delta == 0 {
				dirty = dirty[1:]
				delete(s.pending, idx)
				continue
			}
			if !qp.DeferFetchAdd(s.striped.Offset(uint64(idx)), delta) {
				return // ring full and undrainable; retry on next event
			}
			dirty = dirty[1:]
			delete(s.pending, idx)
			s.pendingSum -= delta
		}
		// Retry a previously cut-short batch now that this event may have
		// freed credits; batches still accumulating keep their own triggers.
		qp.RingUrgent()
		return
	}

	for qp.CanPost() && len(dirty) > 0 {
		idx := dirty[0]
		delta := s.pending[idx]
		if delta == 0 {
			// Signed updates cancelled out: nothing to flush. The map
			// entry must go too, or later updates to this counter would
			// accumulate without ever rejoining the dirty queue.
			dirty = dirty[1:]
			delete(s.pending, idx)
			continue
		}
		if delta < s.cfg.Batch && s.credits[si].Outstanding() > 0 {
			// Not enough accumulated to justify an op while the NIC is
			// busy; wait for more updates or a free pipeline.
			return
		}
		posted := false
		if m := s.mirrors[si]; m != nil {
			posted = m.PostFetchAdd(s.striped.Offset(uint64(idx)), delta)
		} else {
			posted = qp.PostFetchAdd(s.striped.Offset(uint64(idx)), delta)
		}
		if !posted {
			return // egress or retransmit window full; retry on next event
		}
		dirty = dirty[1:]
		delete(s.pending, idx)
		s.pendingSum -= delta
		s.Stats.FAAIssued++
	}
}

// HandleResponse consumes atomic ACKs, freeing outstanding slots and
// flushing accumulated updates. The echoed destination QPN routes the ACK
// to its shard; a single-channel store tolerates responses from a channel
// it has already rebound away from (the pre-striping behaviour), while a
// striped store ignores QPNs it no longer owns.
func (s *StateStore) HandleResponse(ctx *switchsim.Context, pkt *wire.Packet) {
	ctx.Drop() // responses never leave the switch
	if pkt.BTH.Opcode != wire.OpAtomicAcknowledge {
		return
	}
	s.Stats.AcksSeen++
	// Replica-side ACKs route to the mirror's exact-match journal, never to
	// the shard's cumulative FIFO. After a promotion the replica channel IS
	// the shard channel (rebound), so a promoted mirror falls through to the
	// normal path below.
	if mi, ok := s.mirrorByQPN[pkt.BTH.DestQP]; ok && !s.mirrors[mi].Promoted() {
		s.mirrors[mi].AckReplica(pkt.BTH.PSN)
		return
	}
	si, ok := s.byQPN[pkt.BTH.DestQP]
	if !ok {
		if len(s.chans) > 1 {
			return
		}
		si = 0
	}
	// Cumulative completion: anything at or before the echoed PSN is
	// answered or lost-and-answered-later.
	s.striped.Shard(si).AckCumulative(pkt.BTH.PSN)
	if m := s.mirrors[si]; m != nil && !m.Promoted() {
		m.AckPrimary(pkt.BTH.PSN)
	}
	switch s.mode {
	case BoundedStaleness:
		// Between bounds the local copy is allowed to drift; ACKs continue a
		// drain only when a bound already tripped and was cut short.
		if s.draining {
			s.reapLossy()
			s.flush()
			if s.pendingSum == 0 {
				s.draining = false
			}
		}
	case Eventual:
		s.opportunisticFlush()
	default:
		s.flush()
	}
}
