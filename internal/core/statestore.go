package core

import (
	"fmt"

	"gem/internal/core/verbs"
	"gem/internal/sim"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// StateStoreConfig tunes the state-store primitive.
type StateStoreConfig struct {
	// Counters is the number of 8-byte counters in the remote region.
	Counters int
	// MaxOutstanding caps in-flight Fetch-and-Add requests — "Since there
	// is a maximum limit of outstanding RDMA atomic requests that an RNIC
	// can handle, we design this primitive to maintain the number of
	// outstanding requests" (§4). 0 = the channel's negotiated WindowHint
	// (the NIC's advertised responder resources), falling back to 16.
	MaxOutstanding int
	// LowWatermark is the credit window's gate-release point: once the
	// window gates at MaxOutstanding, issuing resumes only after in-flight
	// FAAs drain to this level. 0 = MaxOutstanding-1 (no hysteresis gap,
	// the classic windowed behaviour).
	LowWatermark int
	// ShedPendingSlots, when positive, turns on priority load shedding: a
	// PriorityLow update arriving while the pending table already holds
	// this many accumulators is shed (counted in ShedUpdates) instead of
	// admitted. High-priority updates are never shed, preserving their
	// exactness guarantee. 0 = disabled.
	ShedPendingSlots int
	// UnlimitedWindow disables credit refusal while keeping the accounting
	// — the test-only ablation that reproduces the unbounded-growth
	// baseline of an uncontrolled requester.
	UnlimitedWindow bool
	// PendingSlots bounds the switch-side accumulation table used while
	// the RNIC is saturated; updates beyond it are dropped and counted.
	PendingSlots int
	// Batch combines this many per-counter updates into one FAA (§7
	// future work: "combine multiple counter updates into a single
	// operation, at the cost of some delay in updates"). 1 = no batching.
	Batch uint64
	// OutstandingTimeout declares an unanswered FAA lost, releasing its
	// outstanding slot (the switch "keeps track of RNIC progress").
	OutstandingTimeout sim.Duration
}

func (c *StateStoreConfig) fillDefaults() {
	// MaxOutstanding deliberately has no default here: NewStateStore
	// resolves 0 through the channel's WindowHint (see EnsureCredits).
	if c.PendingSlots == 0 {
		c.PendingSlots = 4096
	}
	if c.Batch == 0 {
		c.Batch = 1
	}
	if c.OutstandingTimeout == 0 {
		c.OutstandingTimeout = 500 * sim.Microsecond
	}
}

// StateStoreStats are the primitive's observable counters.
type StateStoreStats struct {
	Updates        int64 // data-plane count events observed
	FAAIssued      int64 // Fetch-and-Add requests sent
	AcksSeen       int64 // atomic ACKs consumed
	Accumulated    int64 // updates absorbed into pending accumulators
	DroppedUpdates int64 // updates lost because the pending table was full
	TimedOut       int64 // FAAs declared lost by the outstanding tracker
	// DegradedUpdates counts updates absorbed while the store was degraded
	// (accumulating locally, no remote traffic).
	DegradedUpdates int64
	// Reconciles counts degraded→normal transitions that flushed the backlog.
	Reconciles int64
	// ShedUpdates counts PriorityLow updates refused at admission because
	// the pending table crossed ShedPendingSlots (never silent loss).
	ShedUpdates int64
	// DegradedEntries / DegradedExits count transitions into and out of the
	// degraded posture (SetDegraded edges plus Reconcile exits).
	DegradedEntries int64
	DegradedExits   int64
}

// StateStore is the state-store primitive (§4): per-flow counters in remote
// DRAM updated with RDMA atomic Fetch-and-Add. While the RNIC's atomic
// pipeline is saturated, updates accumulate in switch registers and are
// flushed — with the accumulated delta — as slots free up, so the remote
// value stays exact.
//
// Since the work-queue refactor the store is a thin consumer of the verbs
// transport: it decides *what* to flush (accumulate, batch, shed) and posts
// FAAs through its QP; PSN tracking, cumulative ACK matching, credit
// release, and timeout reaping all live in the transport.
type StateStore struct {
	ch  *Channel
	sw  *switchsim.Switch
	cfg StateStoreConfig

	// qp is the store's work queue: cumulative completion (atomic ACKs
	// retire every FAA at or before the echoed PSN) with the FIFO reaper
	// standing in for RNIC-progress tracking on the lossy path.
	qp *verbs.QP

	// rt, when set, carries every FAA through the Retransmitter instead of
	// the bare channel: loss recovery moves to the retransmit window, so the
	// lossy-path timeout reaper is disabled (nothing is ever "lost", only
	// late). Wire responses as failover → rt → store.
	rt *Retransmitter

	// degraded pauses the flush path: updates accumulate on the switch until
	// Reconcile. This is the store's explicit failure posture while its
	// server is known-dead and no standby remains.
	degraded bool

	// credits is the channel's shared admission window (ch.EnsureCredits):
	// one credit per in-flight FAA, held and released by the QP.
	credits *Credits

	pending    map[int]uint64 // counter index → accumulated delta
	dirty      []int          // FIFO of indexes with pending deltas
	pendingSum uint64

	Stats StateStoreStats
}

// NewStateStore wires the primitive to channel ch. The channel region must
// hold cfg.Counters 8-byte words.
func NewStateStore(ch *Channel, cfg StateStoreConfig) (*StateStore, error) {
	cfg.fillDefaults()
	if cfg.Counters <= 0 {
		return nil, fmt.Errorf("core: state store needs a positive counter count")
	}
	if need := cfg.Counters * 8; need > ch.Size {
		return nil, fmt.Errorf("core: %d counters need %d bytes, region has %d",
			cfg.Counters, need, ch.Size)
	}
	// The pending table is switch SRAM: index (4B) + delta (8B) + slack.
	if err := ch.sw.SRAM.Alloc(fmt.Sprintf("statestore%d/pending", ch.ID), cfg.PendingSlots*16); err != nil {
		return nil, err
	}
	s := &StateStore{
		ch: ch, sw: ch.sw, cfg: cfg,
		pending: make(map[int]uint64, cfg.PendingSlots),
	}
	s.credits = ch.EnsureCredits(CreditConfig{
		Window: cfg.MaxOutstanding, Low: cfg.LowWatermark,
		Unlimited: cfg.UnlimitedWindow,
	})
	// Reflect the resolved window (WindowHint or credit default) back into
	// the config so Config().MaxOutstanding reports the effective limit.
	s.cfg.MaxOutstanding = s.credits.Config().Window
	s.qp = verbs.NewQP(ch, s.credits, verbs.QPConfig{
		Cumulative: true,
		Reap:       true,
		Timeout:    s.cfg.OutstandingTimeout,
		OnExpired:  func(verbs.OpType, uint64) { s.Stats.TimedOut++ },
	})
	return s, nil
}

// Config returns the effective configuration.
func (s *StateStore) Config() StateStoreConfig { return s.cfg }

// Channel returns the RDMA channel the store runs over.
func (s *StateStore) Channel() *Channel { return s.ch }

// Transport exposes the store's work queue for introspection (gem.Stats).
func (s *StateStore) Transport() *verbs.QP { return s.qp }

// Rebind moves the store to a new channel (server failover). In-flight
// requests to the old server are abandoned; locally accumulated updates are
// preserved and will flush to the new server. Counts already committed to
// the dead server's DRAM are lost — the caller accounts for them via the
// old region if it ever comes back.
func (s *StateStore) Rebind(ch *Channel) {
	if need := s.cfg.Counters * 8; need > ch.Size {
		panic(fmt.Sprintf("core: rebind target region too small: %d < %d", ch.Size, need))
	}
	// Abandoned in-flight FAAs return their credits to the old channel's
	// window (nothing will ever answer them), then the store adopts the new
	// channel's window, carrying its configuration across.
	s.qp.Abort()
	s.ch = ch
	s.credits = ch.EnsureCredits(s.credits.Config())
	s.qp.Rebind(ch, s.credits)
	s.flush()
}

// SetRetransmitter routes all future FAAs through rt (reliable mode). The
// caller is responsible for the response chain reaching rt before the store
// (rt.Inner = store) and for retargeting rt on failover.
func (s *StateStore) SetRetransmitter(rt *Retransmitter) {
	s.rt = rt
	s.qp.SetReliable(rt)
}

// SetDegraded pauses (true) or re-enables (false) remote flushing; prefer
// Reconcile for the re-enable edge, which also kicks the backlog out.
func (s *StateStore) SetDegraded(on bool) {
	if on && !s.degraded {
		s.Stats.DegradedEntries++
	} else if !on && s.degraded {
		s.Stats.DegradedExits++
	}
	s.degraded = on
}

// Degraded reports whether the store is accumulating locally only.
func (s *StateStore) Degraded() bool { return s.degraded }

// Reconcile ends a degraded interval: the backlog accumulated on the switch
// flushes to remote memory as outstanding slots allow.
func (s *StateStore) Reconcile() {
	if !s.degraded {
		return
	}
	s.degraded = false
	s.Stats.Reconciles++
	s.Stats.DegradedExits++
	if s.rt == nil {
		s.qp.ReapExpired()
	}
	s.flush()
}

// Outstanding reports in-flight FAA requests.
func (s *StateStore) Outstanding() int { return s.credits.Outstanding() }

// Credits exposes the store's admission window for introspection.
func (s *StateStore) Credits() *Credits { return s.credits }

// Pending reports the delta accumulated on the switch for counter idx but
// not yet flushed — exactness checks add it to the remote value.
func (s *StateStore) Pending(idx int) uint64 { return s.pending[idx] }

// PendingTotal reports updates accumulated on the switch but not yet
// flushed to remote memory — the value accuracy checks add to the remote
// counters.
func (s *StateStore) PendingTotal() uint64 { return s.pendingSum }

// CounterOffset returns the region offset of counter idx.
func (s *StateStore) CounterOffset(idx int) int { return idx * 8 }

// UpdateFlow counts one packet of the flow identified by key.
func (s *StateStore) UpdateFlow(key wire.FlowKey) {
	s.Update(key.Index(s.cfg.Counters), 1)
}

// Update adds delta to counter idx, issuing a Fetch-and-Add immediately
// when the RNIC has room (and the batch threshold is met), accumulating
// locally otherwise. Update is the high-priority path: it is never shed.
func (s *StateStore) Update(idx int, delta uint64) {
	s.UpdatePrio(idx, delta, switchsim.PriorityHigh)
}

// UpdatePrio is Update with an admission priority. Under overload (pending
// table at ShedPendingSlots or beyond), PriorityLow updates are shed and
// counted; admitted updates keep the store's exactness guarantee.
func (s *StateStore) UpdatePrio(idx int, delta uint64, prio switchsim.Priority) {
	if idx < 0 || idx >= s.cfg.Counters {
		panic(fmt.Sprintf("core: counter index %d out of range", idx))
	}
	if prio == switchsim.PriorityLow && s.cfg.ShedPendingSlots > 0 &&
		len(s.pending) >= s.cfg.ShedPendingSlots {
		// Shed before the update is observed: the counters below only ever
		// account for admitted traffic, so "admitted == remote + pending"
		// stays exact.
		s.Stats.ShedUpdates += int64(delta)
		return
	}
	s.Stats.Updates += int64(delta)
	if s.degraded {
		s.Stats.DegradedUpdates += int64(delta)
		s.accumulate(idx, delta)
		return
	}
	if s.rt == nil {
		s.qp.ReapExpired()
	}
	s.accumulate(idx, delta)
	s.flush()
}

func (s *StateStore) accumulate(idx int, delta uint64) {
	if _, exists := s.pending[idx]; !exists {
		if len(s.pending) >= s.cfg.PendingSlots {
			s.Stats.DroppedUpdates += int64(delta)
			return
		}
		s.dirty = append(s.dirty, idx)
	}
	s.pending[idx] += delta
	s.pendingSum += delta
	s.Stats.Accumulated += int64(delta)
}

// flush issues FAAs for dirty counters while outstanding slots remain and
// batch thresholds are met.
func (s *StateStore) flush() {
	if s.degraded {
		return
	}
	for s.qp.CanPost() && len(s.dirty) > 0 {
		idx := s.dirty[0]
		delta := s.pending[idx]
		if delta == 0 {
			// Signed updates cancelled out: nothing to flush. The map
			// entry must go too, or later updates to this counter would
			// accumulate without ever rejoining the dirty queue.
			s.dirty = s.dirty[1:]
			delete(s.pending, idx)
			continue
		}
		if delta < s.cfg.Batch && s.credits.Outstanding() > 0 {
			// Not enough accumulated to justify an op while the NIC is
			// busy; wait for more updates or a free pipeline.
			return
		}
		if !s.qp.PostFetchAdd(s.CounterOffset(idx), delta) {
			return // egress or retransmit window full; retry on next event
		}
		s.dirty = s.dirty[1:]
		delete(s.pending, idx)
		s.pendingSum -= delta
		s.Stats.FAAIssued++
	}
}

// HandleResponse consumes atomic ACKs, freeing outstanding slots and
// flushing accumulated updates.
func (s *StateStore) HandleResponse(ctx *switchsim.Context, pkt *wire.Packet) {
	ctx.Drop() // responses never leave the switch
	if pkt.BTH.Opcode != wire.OpAtomicAcknowledge {
		return
	}
	s.Stats.AcksSeen++
	// Cumulative completion: anything at or before the echoed PSN is
	// answered or lost-and-answered-later.
	s.qp.AckCumulative(pkt.BTH.PSN)
	s.flush()
}
