package verbs

// Credit-based admission control for RDMA channels.
//
// An RNIC advertises a hard limit on the one-sided operations it can hold in
// flight per QP (responder resources); the switch must throttle to it — the
// paper's state store already did this with an ad-hoc counter, but the ring
// buffer and lookup table issued READs and WRITEs with no admission control
// at all. Credits is the shared mechanism: a window of outstanding
// operations with high/low watermark hysteresis, so a primitive stops
// issuing *before* the RNIC or the memory link saturates and resumes only
// after real drain, instead of oscillating around the limit one op at a
// time.

// CreditConfig tunes a credit window.
type CreditConfig struct {
	// Window is the maximum outstanding operations (READs, WRITEs or
	// atomics the primitive tracks) on the channel.
	Window int
	// High is the gate-engage watermark: once outstanding reaches High the
	// window is gated and new acquires are refused. 0 = Window.
	High int
	// Low is the gate-release watermark: a gated window reopens only when
	// outstanding drains to Low. 0 = High-1, which reproduces the classic
	// "issue whenever a slot is free" window with no hysteresis gap.
	Low int
	// Unlimited disables refusal entirely while keeping the accounting — a
	// test-only ablation switch that turns the window into a pure observer
	// so experiments can demonstrate the unbounded-growth baseline.
	Unlimited bool
}

func (c *CreditConfig) fillDefaults() {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.High <= 0 || c.High > c.Window {
		c.High = c.Window
	}
	if c.Low <= 0 {
		c.Low = c.High - 1
	}
	if c.Low >= c.High {
		c.Low = c.High - 1
	}
}

// CreditStats are the window's observable counters.
type CreditStats struct {
	Acquired    int64 // credits granted
	Refused     int64 // acquires refused (gated or window full)
	Released    int64 // credits returned
	GateEntries int64 // times the high watermark engaged the gate
	GateExits   int64 // times drain to the low watermark released it
	Peak        int64 // maximum outstanding ever observed
}

// Credits is one channel's admission window. It is not safe for concurrent
// use; the simulation is single-threaded per engine.
type Credits struct {
	cfg         CreditConfig
	outstanding int
	gated       bool

	Stats CreditStats
}

// NewCredits returns a credit window for cfg.
func NewCredits(cfg CreditConfig) *Credits {
	cfg.fillDefaults()
	return &Credits{cfg: cfg}
}

// Config returns the effective configuration.
func (c *Credits) Config() CreditConfig { return c.cfg }

// Outstanding reports currently held credits.
func (c *Credits) Outstanding() int { return c.outstanding }

// Gated reports whether the window is closed waiting for the low watermark.
func (c *Credits) Gated() bool { return c.gated }

// CanAcquire reports whether an Acquire would succeed, without counting a
// refusal. Issue loops use it as their continuation condition.
func (c *Credits) CanAcquire() bool {
	if c.cfg.Unlimited {
		return true
	}
	return !c.gated && c.outstanding < c.cfg.Window
}

// Acquire consumes one credit unconditionally — the caller has already
// checked CanAcquire (single-threaded engine, so the answer holds). Reaching
// the high watermark engages the gate.
func (c *Credits) Acquire() {
	c.outstanding++
	c.Stats.Acquired++
	if int64(c.outstanding) > c.Stats.Peak {
		c.Stats.Peak = int64(c.outstanding)
	}
	if !c.cfg.Unlimited && !c.gated && c.outstanding >= c.cfg.High {
		c.gated = true
		c.Stats.GateEntries++
	}
}

// TryAcquire attempts to take one credit, counting a refusal when the window
// is gated or full.
func (c *Credits) TryAcquire() bool {
	if !c.CanAcquire() {
		c.Stats.Refused++
		return false
	}
	//gem:credit-ok TryAcquire IS the acquisition primitive: the credit is handed to the caller
	c.Acquire()
	return true
}

// Release returns one credit; draining to the low watermark reopens a gated
// window. Spurious releases (stale responses after a reap) are ignored.
func (c *Credits) Release() {
	if c.outstanding <= 0 {
		return
	}
	c.outstanding--
	c.Stats.Released++
	if c.gated && c.outstanding <= c.cfg.Low {
		c.gated = false
		c.Stats.GateExits++
	}
}
