package verbs

// OpStats are one operation type's transport counters.
type OpStats struct {
	Posted    int64 // work requests issued to the wire layer
	Completed int64 // completions matched to a live WQE
	Stale     int64 // responses that matched no live WQE
	Retried   int64 // reposts of a timed-out WQE (fresh PSNs, same credit)
	Refused   int64 // posts cancelled by the admission window
	Expired   int64 // WQEs the reaper discarded (credit released)
}

// Add returns the element-wise sum of s and o.
func (s OpStats) Add(o OpStats) OpStats {
	s.Posted += o.Posted
	s.Completed += o.Completed
	s.Stale += o.Stale
	s.Retried += o.Retried
	s.Refused += o.Refused
	s.Expired += o.Expired
	return s
}

// Stats are a QP's transport counters, per operation type. The struct is
// flat and comparable so aggregate snapshots (gem.StatsSnapshot) can embed
// it and compare by ==.
type Stats struct {
	Read     OpStats
	Write    OpStats
	FetchAdd OpStats
}

// Add returns the element-wise sum of s and o.
func (s Stats) Add(o Stats) Stats {
	s.Read = s.Read.Add(o.Read)
	s.Write = s.Write.Add(o.Write)
	s.FetchAdd = s.FetchAdd.Add(o.FetchAdd)
	return s
}
