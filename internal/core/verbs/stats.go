package verbs

// OpStats are one operation type's transport counters.
type OpStats struct {
	Posted    int64 // work requests issued to the wire layer
	Completed int64 // completions matched to a live WQE
	Stale     int64 // responses that matched no live WQE
	Retried   int64 // reposts of a timed-out WQE (fresh PSNs, same credit)
	Refused   int64 // posts cancelled by the admission window
	Expired   int64 // WQEs the reaper discarded (credit released)
}

// Add returns the element-wise sum of s and o.
func (s OpStats) Add(o OpStats) OpStats {
	s.Posted += o.Posted
	s.Completed += o.Completed
	s.Stale += o.Stale
	s.Retried += o.Retried
	s.Refused += o.Refused
	s.Expired += o.Expired
	return s
}

// ErrStats count typed error completions (CQE error statuses) by class.
// Every transport failure that used to vanish into a side channel — a NAK, a
// retry-budget exhaustion, a refused credit, a failover dead end, an aborted
// WQE — lands here, so a supervisor can watch error *rates* instead of
// polling booleans on the retransmitter and failover engines.
type ErrStats struct {
	NakPSN            int64 // NAK with a PSN-sequence syndrome (receiver saw a gap)
	NakRKey           int64 // NAK with an access/operation syndrome (bad rkey, bad op)
	RetryExhausted    int64 // retransmitter retry budget exhausted (escalation)
	CreditRefused     int64 // posts cancelled by the admission window
	FailoverExhausted int64 // failover wanted to switch and found no live standby
	Canceled          int64 // live WQEs abandoned by Abort (rebind/teardown)
	ReplicaLost       int64 // async-mirror journal entries dropped past the lag bound
}

// Add returns the element-wise sum of s and o.
func (s ErrStats) Add(o ErrStats) ErrStats {
	s.NakPSN += o.NakPSN
	s.NakRKey += o.NakRKey
	s.RetryExhausted += o.RetryExhausted
	s.CreditRefused += o.CreditRefused
	s.FailoverExhausted += o.FailoverExhausted
	s.Canceled += o.Canceled
	s.ReplicaLost += o.ReplicaLost
	return s
}

// Total sums every error class — the supervisor's per-tick rate input.
func (s ErrStats) Total() int64 {
	return s.NakPSN + s.NakRKey + s.RetryExhausted +
		s.CreditRefused + s.FailoverExhausted + s.Canceled + s.ReplicaLost
}

// Stats are a QP's transport counters, per operation type, plus the typed
// error-completion counters and the post→CQE latency histogram. The struct
// is flat and comparable so aggregate snapshots (gem.StatsSnapshot) can
// embed it and compare by ==.
type Stats struct {
	Read     OpStats
	Write    OpStats
	FetchAdd OpStats
	Errors   ErrStats
	Latency  LatencyHist
	Mirror   MirrorStats
}

// Add returns the element-wise sum of s and o.
func (s Stats) Add(o Stats) Stats {
	s.Read = s.Read.Add(o.Read)
	s.Write = s.Write.Add(o.Write)
	s.FetchAdd = s.FetchAdd.Add(o.FetchAdd)
	s.Errors = s.Errors.Add(o.Errors)
	s.Latency = s.Latency.Add(o.Latency)
	s.Mirror = s.Mirror.Add(o.Mirror)
	return s
}
