package verbs

import (
	"testing"

	"gem/internal/sim"
	"gem/internal/wire"
)

// fakeEndpoint is a minimal Endpoint for transport unit tests: PSNs advance
// exactly like the channel's register (masked to 24 bits), frames go
// nowhere.
type fakeEndpoint struct {
	psn  uint32
	now  sim.Time
	fail bool // refuse injections (egress full)
}

func (f *fakeEndpoint) PSN() uint32 { return f.psn }
func (f *fakeEndpoint) Read(offset, n int, respPkts uint32) bool {
	if f.fail {
		return false
	}
	f.psn = (f.psn + respPkts) & PSNMask
	return true
}
func (f *fakeEndpoint) Write(offset int, payload []byte) bool {
	if f.fail {
		return false
	}
	f.psn = (f.psn + 1) & PSNMask
	return true
}
func (f *fakeEndpoint) FetchAdd(offset int, delta uint64) (uint32, bool) {
	if f.fail {
		return 0, false
	}
	p := f.psn
	f.psn = (f.psn + 1) & PSNMask
	return p, true
}
func (f *fakeEndpoint) Now() sim.Time                          { return f.now }
func (f *fakeEndpoint) Schedule(after sim.Duration, fn func()) {}

func TestPSNAfterWraparound(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{1, 0, true},
		{0, 0, false},
		{0, 0xFFFFFF, true},  // 0 comes right after the wrap point
		{0xFFFFFF, 0, false}, // ~16M "ahead" = behind in 24-bit space
		{5, 0xFFFFFA, true},  // short distance across the wrap
		{0xFFFFFA, 5, false},
		{1<<23 - 1, 0, true}, // farthest "after" the window allows
		{1 << 23, 0, false},  // half the space away = behind
	}
	for _, c := range cases {
		if got := PSNAfter(c.a, c.b); got != c.want {
			t.Errorf("PSNAfter(%#x, %#x) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestQPExactMatchAcrossWrap(t *testing.T) {
	ep := &fakeEndpoint{psn: 0xFFFFFE}
	qp := NewQP(ep, nil, QPConfig{TokenIndex: true})
	// Two 2-packet READs straddle the wrap: PSNs {FFFFFE, FFFFFF} and {0, 1}.
	if !qp.PostRead(1, 0, 128, 2, CreditTry) || !qp.PostRead(2, 128, 128, 2, CreditTry) {
		t.Fatal("posts refused")
	}
	if ep.psn != 2 {
		t.Fatalf("endpoint PSN = %#x, want wrap to 2", ep.psn)
	}
	// Completions match by request PSN on both sides of the wrap,
	// regardless of arrival order.
	cqe, ok := qp.CompleteExact(0)
	if !ok || cqe.Token != 2 {
		t.Fatalf("post-wrap completion: ok=%v token=%d, want token 2", ok, cqe.Token)
	}
	cqe, ok = qp.CompleteExact(0xFFFFFE)
	if !ok || cqe.Token != 1 {
		t.Fatalf("pre-wrap completion: ok=%v token=%d, want token 1", ok, cqe.Token)
	}
	if _, ok := qp.CompleteExact(0xFFFFFE); ok {
		t.Fatal("duplicate completion matched a retired WQE")
	}
	if qp.Stats.Read.Stale != 1 || qp.Stats.Read.Completed != 2 || qp.Pending() != 0 {
		t.Fatalf("stats after wrap: %+v, pending %d", qp.Stats.Read, qp.Pending())
	}
}

func TestQPCumulativeAckAcrossWrap(t *testing.T) {
	ep := &fakeEndpoint{psn: 0xFFFFFE}
	qp := NewQP(ep, nil, QPConfig{Cumulative: true})
	for i := 0; i < 4; i++ { // PSNs FFFFFE, FFFFFF, 0, 1
		if !qp.PostFetchAdd(0, 1) {
			t.Fatal("post refused")
		}
	}
	// A cumulative ACK at post-wrap PSN 0 retires everything at or before
	// it — including the two pre-wrap PSNs. PSNAfter must not see FFFFFE
	// as "after" 0.
	if n := qp.AckCumulative(0); n != 3 {
		t.Fatalf("AckCumulative(0) retired %d, want 3", n)
	}
	if n := qp.AckCumulative(1); n != 1 {
		t.Fatalf("AckCumulative(1) retired %d, want 1", n)
	}
	if qp.Pending() != 0 || qp.Stats.FetchAdd.Completed != 4 {
		t.Fatalf("pending %d, completed %d after drain", qp.Pending(), qp.Stats.FetchAdd.Completed)
	}
}

func TestQPReassemblyAcrossWrap(t *testing.T) {
	ep := &fakeEndpoint{psn: 0xFFFFFF}
	qp := NewQP(ep, nil, QPConfig{TokenIndex: true})
	if !qp.PostRead(7, 0, 2048, 2, CreditTry) { // PSNs FFFFFF, 0
		t.Fatal("post refused")
	}
	first := &wire.Packet{BTH: wire.BTH{Opcode: wire.OpReadResponseFirst, PSN: 0xFFFFFF}, Payload: []byte{1, 2}}
	if _, _, st := qp.ReadResponse(first); st != CQNone {
		t.Fatalf("First status = %v, want CQNone", st)
	}
	last := &wire.Packet{BTH: wire.BTH{Opcode: wire.OpReadResponseLast, PSN: 0}, Payload: []byte{3, 4}}
	cqe, entry, st := qp.ReadResponse(last)
	if st != CQDone || cqe.Token != 7 {
		t.Fatalf("Last: status=%v token=%d, want CQDone token 7", st, cqe.Token)
	}
	if len(entry) != 4 || entry[0] != 1 || entry[3] != 4 {
		t.Fatalf("reassembled entry = %v, want [1 2 3 4]", entry)
	}
}

func TestQPRepostAcrossWrap(t *testing.T) {
	ep := &fakeEndpoint{psn: 0xFFFFFF}
	qp := NewQP(ep, nil, QPConfig{TokenIndex: true})
	if !qp.PostRead(3, 0, 64, 1, CreditTry) { // PSN FFFFFF
		t.Fatal("post refused")
	}
	if !qp.Repost(3) { // re-issued at PSN 0, across the wrap
		t.Fatal("repost refused")
	}
	if _, ok := qp.CompleteExact(0xFFFFFF); ok {
		t.Fatal("retired PSN matched after repost remapped it across the wrap")
	}
	cqe, ok := qp.CompleteExact(0)
	if !ok || cqe.Token != 3 {
		t.Fatalf("repost completion: ok=%v token=%d, want token 3", ok, cqe.Token)
	}
	if qp.Stats.Read.Retried != 1 || qp.Stats.Read.Stale != 1 || qp.Pending() != 0 {
		t.Fatalf("stats after repost: %+v, pending %d", qp.Stats.Read, qp.Pending())
	}
}
