package verbs

// Striped fan-out: one logical work queue sharded over N servers' QPs.
//
// The primitives address remote state by a dense integer key — ring entry,
// counter index, table index — and the paper's scale arguments ("one or
// multiple servers", §2.1; million-entry tables, §2.2) need that key space
// spread over several servers' regions. StripedQP owns the placement: a key
// always lands on the same shard (consistent modulo placement, so failover
// or growth of an unrelated shard never moves it), its slot offset inside
// that shard's region is derived from the same key, and each shard keeps its
// own QP — private credit window, PSN space, retransmitter and failover
// domain — while completions and stats merge back into one surface.
//
// Placement is deliberately modulo, not a mixing hash: shard(key) = key mod
// N and slot(key) = key div N. For the ring buffer this is exactly the
// round-robin stripe the ordering rule wants (consecutive entries alternate
// servers, the per-shard slot advances like a private ring); for counters
// and table entries it is a fixed home with per-shard capacity Counters/N.
// A single-shard StripedQP degenerates to the unsharded layout byte for
// byte: shard(key) = 0, slot(key) = key.

// StripeConfig fixes a striped QP's key placement.
type StripeConfig struct {
	// EntrySize is the byte footprint of one key's slot inside its shard's
	// region: Offset(key) = slot(key) * EntrySize.
	EntrySize int
	// SlotsPerShard, when positive, wraps the shard-local slot index (ring
	// semantics: slot = (key/N) mod SlotsPerShard). 0 = linear placement.
	SlotsPerShard int
}

// StripedQP shards Post* calls across N per-server QPs by key. It adds no
// tracking of its own: every WQE lives on its home shard, so per-shard
// recovery (reap, repost, abort, rebind) composes without cross-shard
// bookkeeping.
type StripedQP struct {
	shards []*QP
	cfg    StripeConfig
}

// NewStriped builds a striped QP over shards (one per server, in server
// order). The shard list is fixed for the striped QP's lifetime; failover
// replaces a shard's endpoint (Rebind/Retarget), never the shard count.
func NewStriped(shards []*QP, cfg StripeConfig) *StripedQP {
	if len(shards) == 0 {
		panic("verbs: striped QP needs at least one shard")
	}
	if cfg.EntrySize <= 0 {
		panic("verbs: striped QP needs a positive entry size")
	}
	return &StripedQP{shards: shards, cfg: cfg}
}

// Shards reports the shard count.
func (s *StripedQP) Shards() int { return len(s.shards) }

// Shard returns shard i's QP (completion routing: the caller maps a
// response's destination QPN to a shard index and dispatches there).
func (s *StripedQP) Shard(i int) *QP { return s.shards[i] }

// ShardOf returns key's home shard: key mod N, fixed for the striped QP's
// lifetime.
func (s *StripedQP) ShardOf(key uint64) int {
	return int(key % uint64(len(s.shards)))
}

// Home returns key's home QP.
func (s *StripedQP) Home(key uint64) *QP { return s.shards[s.ShardOf(key)] }

// Offset returns key's byte offset inside its home shard's region.
func (s *StripedQP) Offset(key uint64) int {
	slot := key / uint64(len(s.shards))
	if s.cfg.SlotsPerShard > 0 {
		slot %= uint64(s.cfg.SlotsPerShard)
	}
	return int(slot) * s.cfg.EntrySize
}

// CanPost reports whether key's home shard has a credit available.
func (s *StripedQP) CanPost(key uint64) bool { return s.Home(key).CanPost() }

// TokenPending reports whether key is in flight on its home shard.
func (s *StripedQP) TokenPending(key uint64) bool { return s.Home(key).TokenPending(key) }

// PostRead posts a READ of key's slot (n bytes from its base) on the home
// shard, with key as the completion token.
func (s *StripedQP) PostRead(key uint64, n int, respPkts uint32, mode CreditMode) bool {
	return s.Home(key).PostRead(key, s.Offset(key), n, respPkts, mode)
}

// PostWrite posts a WRITE of payload at key's slot base plus skew bytes.
func (s *StripedQP) PostWrite(key uint64, skew int, payload []byte) bool {
	return s.Home(key).PostWrite(s.Offset(key)+skew, payload)
}

// PostFetchAdd posts a Fetch-and-Add on key's slot.
func (s *StripedQP) PostFetchAdd(key uint64, delta uint64) bool {
	return s.Home(key).PostFetchAdd(s.Offset(key), delta)
}

// DeferFetchAdd enqueues a Fetch-and-Add into key's home-shard doorbell
// ring (doorbell-enabled shards only; see QP.DeferFetchAdd).
func (s *StripedQP) DeferFetchAdd(key uint64, delta uint64) bool {
	return s.Home(key).DeferFetchAdd(s.Offset(key), delta)
}

// Repost re-issues key's tracked READ on its home shard with fresh PSNs.
func (s *StripedQP) Repost(key uint64) bool { return s.Home(key).Repost(key) }

// Ring flushes every shard's doorbell ring in shard order, returning the
// total WQEs posted — the explicit end-of-pipeline-pass flush.
func (s *StripedQP) Ring() int {
	n := 0
	for _, q := range s.shards {
		n += q.Ring()
	}
	return n
}

// RingUrgent retries only shards whose doorbell flush was previously cut
// short (credits gated, egress full) — the ACK-driven drain path that leaves
// still-accumulating batches alone.
func (s *StripedQP) RingUrgent() int {
	n := 0
	for _, q := range s.shards {
		n += q.RingUrgent()
	}
	return n
}

// DoorbellDelta sums the FAA deltas resident in every shard's doorbell ring
// — deferred but not yet on the wire, so exactness accounting adds it to
// the locally-pending side.
func (s *StripedQP) DoorbellDelta() uint64 {
	var d uint64
	for _, q := range s.shards {
		d += q.DoorbellDelta()
	}
	return d
}

// Pending sums in-flight WQEs across shards.
func (s *StripedQP) Pending() int {
	n := 0
	for _, q := range s.shards {
		n += q.Pending()
	}
	return n
}

// Stats merges every shard's transport counters.
func (s *StripedQP) Stats() Stats {
	var st Stats
	for _, q := range s.shards {
		st = st.Add(q.Stats)
	}
	return st
}

// Errors merges every shard's typed error-completion counters — the
// supervisor's rate source, cheap enough to call once per tick.
func (s *StripedQP) Errors() ErrStats {
	var e ErrStats
	for _, q := range s.shards {
		e = e.Add(q.Stats.Errors)
	}
	return e
}

// ReapExpired runs every shard's expiry reaper, returning the total reaped.
func (s *StripedQP) ReapExpired() int {
	n := 0
	for _, q := range s.shards {
		n += q.ReapExpired()
	}
	return n
}

// AppendExpired appends every shard's expired tokens to buf; the caller
// sorts the merged set so retry order (and PSN assignment) is reproducible.
func (s *StripedQP) AppendExpired(buf []uint64) []uint64 {
	for _, q := range s.shards {
		buf = q.AppendExpired(buf)
	}
	return buf
}
