package verbs

import "testing"

// mkMirrored builds a mirrored pair in the unit-test idiom: a credit-windowed
// cumulative primary and a credit-less cumulative replica, both on fake
// endpoints so the tests control every PSN.
func mkMirrored(cfg MirrorConfig) (*fakeEndpoint, *fakeEndpoint, *MirroredQP) {
	pep, rep := &fakeEndpoint{}, &fakeEndpoint{}
	pqp := NewQP(pep, NewCredits(CreditConfig{Window: 16}), QPConfig{Cumulative: true})
	rqp := NewQP(rep, nil, QPConfig{Cumulative: true})
	return pep, rep, NewMirrored(pqp, rqp, cfg)
}

func TestMirroredSyncSettlesOnBothAcks(t *testing.T) {
	pep, rep, m := mkMirrored(MirrorConfig{Mode: ReplicationSync})
	ppsn, rpsn := pep.psn, rep.psn
	if !m.PostFetchAdd(8, 5) {
		t.Fatal("post refused")
	}
	if m.Journaled() != 1 || m.Lag() != 1 || m.LagDelta() != 5 {
		t.Fatalf("journal=%d lag=%d lagDelta=%d after post, want 1/1/5",
			m.Journaled(), m.Lag(), m.LagDelta())
	}
	if m.Stats.MirroredFAAs != 1 {
		t.Fatalf("MirroredFAAs = %d, want 1", m.Stats.MirroredFAAs)
	}
	// Primary ack alone must not settle a Sync entry.
	m.Primary().AckCumulative(ppsn)
	m.AckPrimary(ppsn)
	if m.Journaled() != 1 || m.Stats.BothAcked != 0 {
		t.Fatalf("primary ack alone settled: journal=%d both=%d",
			m.Journaled(), m.Stats.BothAcked)
	}
	// Replica ack completes the pair and drains the journal.
	if n := m.AckReplica(rpsn); n != 1 {
		t.Fatalf("AckReplica acked %d entries, want 1", n)
	}
	if m.Journaled() != 0 || m.Lag() != 0 {
		t.Fatalf("journal=%d lag=%d after both acks, want 0/0", m.Journaled(), m.Lag())
	}
	if m.Stats.BothAcked != 1 || m.Stats.ReplicaAcked != 1 || m.Stats.ReplicaLost != 0 {
		t.Fatalf("stats = %+v, want BothAcked=1 ReplicaAcked=1 ReplicaLost=0", m.Stats)
	}
}

func TestMirroredAsyncDeclaresLossPastBound(t *testing.T) {
	rep := &fakeEndpoint{fail: true} // replica egress refuses every post
	pqp := NewQP(&fakeEndpoint{}, NewCredits(CreditConfig{Window: 16}), QPConfig{Cumulative: true})
	rqp := NewQP(rep, nil, QPConfig{Cumulative: true})
	m := NewMirrored(pqp, rqp, MirrorConfig{Mode: ReplicationAsync, MaxLag: 2})
	for i := 0; i < 5; i++ {
		if !m.PostFetchAdd(i*8, 1) {
			t.Fatalf("post %d refused", i)
		}
	}
	// Lag is enforced back to MaxLag after every post: 3 of 5 declared lost.
	if m.Lag() != 2 {
		t.Fatalf("lag = %d after enforcement, want 2", m.Lag())
	}
	if m.Stats.ReplicaLost != 3 || m.Stats.LostDelta != 3 {
		t.Fatalf("ReplicaLost=%d LostDelta=%d, want 3/3",
			m.Stats.ReplicaLost, m.Stats.LostDelta)
	}
	// Every declared loss is a typed completion on the primary QP.
	if got := pqp.Stats.Errors.ReplicaLost; got != 3 {
		t.Fatalf("primary typed CQReplicaLost = %d, want 3", got)
	}
	// The lag histogram saw at most MaxLag+1 (sampled before enforcement).
	if m.Stats.Lag.Max > int64(m.MaxLag()+1) {
		t.Fatalf("Lag.Max = %d, want <= %d", m.Stats.Lag.Max, m.MaxLag()+1)
	}
}

func TestMirroredWriteRefusalJournaledAndRetried(t *testing.T) {
	pep, rep, m := mkMirrored(MirrorConfig{Mode: ReplicationSync, PayloadCap: 16})
	_ = pep
	rep.fail = true
	if !m.PostWrite(0, []byte("abcd")) {
		t.Fatal("primary write refused")
	}
	if m.Journaled() != 1 || m.Stats.MirroredWrites != 0 {
		t.Fatalf("refused mirror write: journal=%d mirrored=%d, want 1/0",
			m.Journaled(), m.Stats.MirroredWrites)
	}
	// Replica recovers; the next replica ack event retries the journal.
	rep.fail = false
	m.AckReplica(0)
	if m.Journaled() != 0 || m.Stats.MirroredWrites != 1 {
		t.Fatalf("after retry: journal=%d mirrored=%d, want 0/1",
			m.Journaled(), m.Stats.MirroredWrites)
	}
	if m.Stats.ReplicaLost != 0 {
		t.Fatalf("ReplicaLost = %d, want 0 (Sync write retried, not lost)", m.Stats.ReplicaLost)
	}
}

func TestMirroredOversizedWriteRefusalIsTypedLoss(t *testing.T) {
	_, rep, m := mkMirrored(MirrorConfig{Mode: ReplicationSync, PayloadCap: 4})
	rep.fail = true
	if !m.PostWrite(0, []byte("too big to journal")) {
		t.Fatal("primary write refused")
	}
	// No slab slot can hold it: the miss is a counted, typed loss on the spot.
	if m.Journaled() != 0 {
		t.Fatalf("oversized write journaled (%d entries)", m.Journaled())
	}
	if m.Stats.ReplicaLost != 1 {
		t.Fatalf("ReplicaLost = %d, want 1", m.Stats.ReplicaLost)
	}
	if got := m.Primary().Stats.Errors.ReplicaLost; got != 1 {
		t.Fatalf("primary typed CQReplicaLost = %d, want 1", got)
	}
}

func TestMirroredAckReplicaExactAcrossWrap(t *testing.T) {
	// The replica's PSN space straddles the 24-bit wrap. A blip drops the ack
	// for mirror PSN 0xFFFFFF; exact matching must leave that entry un-acked
	// (a cumulative mark at PSN 0 would silently absorb it).
	pep := &fakeEndpoint{}
	rep := &fakeEndpoint{psn: 0xFFFFFE}
	pqp := NewQP(pep, NewCredits(CreditConfig{Window: 16}), QPConfig{Cumulative: true})
	rqp := NewQP(rep, nil, QPConfig{Cumulative: true})
	m := NewMirrored(pqp, rqp, MirrorConfig{Mode: ReplicationSync})
	for i := 0; i < 4; i++ { // mirror PSNs: FFFFFE, FFFFFF, 0, 1
		if !m.PostFetchAdd(i*8, 1) {
			t.Fatalf("post %d refused", i)
		}
	}
	if rep.psn != 2 {
		t.Fatalf("replica PSN = %#x, want wrap to 2", rep.psn)
	}
	if n := m.AckReplica(0xFFFFFE); n != 1 {
		t.Fatalf("ack FFFFFE matched %d, want 1", n)
	}
	// 0xFFFFFF's ack is dropped by the blip. The post-wrap acks still match.
	if n := m.AckReplica(0); n != 1 {
		t.Fatalf("ack 0 matched %d, want 1 (exact, not cumulative)", n)
	}
	if n := m.AckReplica(1); n != 1 {
		t.Fatalf("ack 1 matched %d, want 1", n)
	}
	if m.Stats.ReplicaAcked != 3 {
		t.Fatalf("ReplicaAcked = %d, want 3", m.Stats.ReplicaAcked)
	}
	// The dropped entry stays visible as lag for the scrubber/supervisor.
	if m.Lag() != 1 {
		t.Fatalf("lag = %d, want 1 (the blip-dropped entry)", m.Lag())
	}
}

func TestMirroredPromoteReplaysOnlyUnposted(t *testing.T) {
	// dbEndpoint counts replica-side FAAs so the test can pin exactly-once:
	// entries that reached the replica's wire must NOT be replayed (the
	// replica may hold them; a blind replay would double-apply).
	pep := &fakeEndpoint{}
	rep := &dbEndpoint{}
	pqp := NewQP(pep, NewCredits(CreditConfig{Window: 16}), QPConfig{Cumulative: true})
	rqp := NewQP(rep, nil, QPConfig{Cumulative: true})
	m := NewMirrored(pqp, rqp, MirrorConfig{Mode: ReplicationSync})

	// One post lands on the replica's wire (un-acked), then the replica dies
	// and three more posts journal un-posted.
	if !m.PostFetchAdd(0, 10) {
		t.Fatal("post refused")
	}
	rep.fail = true
	for i := 1; i < 4; i++ {
		if !m.PostFetchAdd(i*8, uint64(10+i)) {
			t.Fatalf("post %d refused", i)
		}
	}
	if rep.faas != 1 || m.Journaled() != 4 {
		t.Fatalf("pre-promotion: replica faas=%d journal=%d, want 1/4", rep.faas, m.Journaled())
	}

	// The primary crashes; the replica comes back and is promoted.
	rep.fail = false
	if n := m.Promote(); n != 3 {
		t.Fatalf("Promote replayed %d, want 3 (the un-posted entries)", n)
	}
	if rep.faas != 4 || rep.deltas != 10+11+12+13 {
		t.Fatalf("post-promotion: replica faas=%d deltas=%d, want 4 / 46 (exactly once each)",
			rep.faas, rep.deltas)
	}
	if !m.Promoted() || m.Journaled() != 0 {
		t.Fatalf("promoted=%v journal=%d, want true/0", m.Promoted(), m.Journaled())
	}
	if m.Stats.Replayed != 3 || m.Stats.Promotions != 1 {
		t.Fatalf("Replayed=%d Promotions=%d, want 3/1", m.Stats.Replayed, m.Stats.Promotions)
	}
	// Promote is idempotent and post-promotion posts delegate to the primary.
	if m.Promote() != 0 {
		t.Fatal("second Promote replayed entries")
	}
	before := rep.faas
	if !m.PostFetchAdd(0, 1) {
		t.Fatal("post-promotion post refused")
	}
	if rep.faas != before || m.Journaled() != 0 {
		t.Fatalf("post-promotion post touched the mirror: faas=%d journal=%d",
			rep.faas, m.Journaled())
	}
}

func TestMirroredRingOverflowForceSettlesHead(t *testing.T) {
	// A full journal force-settles its head even in Sync mode: the ring is
	// the memory bound, and an unsettled evicted head is a counted loss.
	rep := &fakeEndpoint{fail: true}
	pqp := NewQP(&fakeEndpoint{}, NewCredits(CreditConfig{Window: 16}), QPConfig{Cumulative: true})
	rqp := NewQP(rep, nil, QPConfig{Cumulative: true})
	m := NewMirrored(pqp, rqp, MirrorConfig{Mode: ReplicationSync, Journal: 2})
	for i := 0; i < 3; i++ {
		if !m.PostFetchAdd(i*8, 1) {
			t.Fatalf("post %d refused", i)
		}
	}
	if m.Journaled() != 2 {
		t.Fatalf("journal = %d, want capacity 2", m.Journaled())
	}
	if m.Stats.ReplicaLost != 1 || m.Stats.LostDelta != 1 {
		t.Fatalf("ReplicaLost=%d LostDelta=%d, want 1/1 (evicted head)",
			m.Stats.ReplicaLost, m.Stats.LostDelta)
	}
	if got := pqp.Stats.Errors.ReplicaLost; got != 1 {
		t.Fatalf("primary typed CQReplicaLost = %d, want 1", got)
	}
}
