package verbs

// Allocation gates for the transport hot paths, in the style of the wire
// pool gates (PR 1): the post→inject and completion-dispatch cycles must
// run at 0 allocs/op once warm. WQEs come from the freelist, the PSN/token
// indexes churn a bounded key set, and reassembly reuses one scratch
// buffer — so a warm QP never touches the heap. Frame building itself is
// gated separately in internal/wire (the pooled Build*Into paths).

import (
	"testing"

	"gem/internal/wire"
)

// readCycle is one post→inject→complete round on the exact-PSN path
// (the PacketBuffer shape: token-indexed, windowed credits).
func readCycle(ep *fakeEndpoint, qp *QP, t *testing.T) {
	psn := ep.psn
	if !qp.PostRead(1, 0, 128, 1, CreditTry) {
		t.Fatal("post refused")
	}
	if _, ok := qp.CompleteExact(psn); !ok {
		t.Fatal("completion missed")
	}
}

// faaCycle is one post→inject→ack round on the cumulative path (the
// StateStore shape: FIFO retirement by ACK PSN).
func faaCycle(ep *fakeEndpoint, qp *QP, t *testing.T) {
	psn := ep.psn
	if !qp.PostFetchAdd(0, 1) {
		t.Fatal("post refused")
	}
	if n := qp.AckCumulative(psn); n != 1 {
		t.Fatalf("ack retired %d, want 1", n)
	}
}

// respCycle is one multi-packet completion dispatch: a 2-packet READ
// reassembled from First+Last segments through the shared scratch buffer.
func respCycle(ep *fakeEndpoint, qp *QP, first, last *wire.Packet, t *testing.T) {
	psn := ep.psn
	if !qp.PostRead(1, 0, 2048, 2, CreditTry) {
		t.Fatal("post refused")
	}
	first.BTH.PSN = psn
	if _, _, st := qp.ReadResponse(first); st != CQNone {
		t.Fatalf("First status = %v", st)
	}
	last.BTH.PSN = (psn + 1) & PSNMask
	if _, _, st := qp.ReadResponse(last); st != CQDone {
		t.Fatalf("Last status = %v", st)
	}
}

// stripedBed builds a 4-shard striped QP with doorbell-enabled cumulative
// shards over fake endpoints.
func stripedBed(shards int, db DoorbellConfig) ([]*fakeEndpoint, *StripedQP) {
	eps := make([]*fakeEndpoint, shards)
	qps := make([]*QP, shards)
	for i := range qps {
		eps[i] = &fakeEndpoint{}
		qps[i] = NewQP(eps[i], NewCredits(CreditConfig{Window: 16}), QPConfig{Cumulative: true})
		if db.MaxPending > 0 {
			qps[i].EnableDoorbell(db)
		}
	}
	return eps, NewStriped(qps, StripeConfig{EntrySize: 8})
}

// stripedCycle is one striped post→flush→complete round: eight FAAs
// deferred across four shards (two per shard, same slot, so they coalesce),
// one Ring() flushing every shard's batch, cumulative ACKs retiring all of
// it.
func stripedCycle(eps []*fakeEndpoint, s *StripedQP, t *testing.T) {
	var psns [4]uint32
	for i, ep := range eps {
		psns[i] = ep.psn
	}
	for k := uint64(0); k < 8; k++ {
		if !s.DeferFetchAdd(k%4, 1) {
			t.Fatal("defer refused")
		}
	}
	if n := s.Ring(); n != 4 {
		t.Fatalf("ring posted %d, want 4", n)
	}
	for i := range eps {
		if n := s.Shard(i).AckCumulative(psns[i]); n != 1 {
			t.Fatalf("shard %d ack retired %d, want 1", i, n)
		}
	}
}

// mirroredCycle is one post→mirror→complete round on a mirrored QP: a FAA
// shadow-posted to the replica, the primary ack settling the primary side and
// the exact-PSN replica ack draining the journal.
func mirroredCycle(pep, rep *fakeEndpoint, m *MirroredQP, t *testing.T) {
	ppsn, rpsn := pep.psn, rep.psn
	if !m.PostFetchAdd(0, 1) {
		t.Fatal("post refused")
	}
	m.Primary().AckCumulative(ppsn)
	m.AckPrimary(ppsn)
	if n := m.AckReplica(rpsn); n != 1 {
		t.Fatalf("replica acked %d, want 1", n)
	}
}

// TestTransportZeroAlloc is the hard gate behind the 0 allocs/op
// acceptance criterion for the transport core.
func TestTransportZeroAlloc(t *testing.T) {
	ep := &fakeEndpoint{}
	qp := NewQP(ep, NewCredits(CreditConfig{Window: 16}), QPConfig{TokenIndex: true})
	readCycle(ep, qp, t) // warm the freelist and index buckets
	if n := testing.AllocsPerRun(200, func() { readCycle(ep, qp, t) }); n != 0 {
		t.Fatalf("READ post+complete: %v allocs/op, want 0", n)
	}

	epF := &fakeEndpoint{}
	qpF := NewQP(epF, NewCredits(CreditConfig{Window: 16}), QPConfig{Cumulative: true})
	faaCycle(epF, qpF, t)
	if n := testing.AllocsPerRun(200, func() { faaCycle(epF, qpF, t) }); n != 0 {
		t.Fatalf("FAA post+ack: %v allocs/op, want 0", n)
	}

	epR := &fakeEndpoint{}
	qpR := NewQP(epR, NewCredits(CreditConfig{Window: 16}), QPConfig{TokenIndex: true})
	payload := make([]byte, 1024)
	first := &wire.Packet{BTH: wire.BTH{Opcode: wire.OpReadResponseFirst}, Payload: payload}
	last := &wire.Packet{BTH: wire.BTH{Opcode: wire.OpReadResponseLast}, Payload: payload}
	respCycle(epR, qpR, first, last, t) // warm the reassembly scratch
	if n := testing.AllocsPerRun(200, func() { respCycle(epR, qpR, first, last, t) }); n != 0 {
		t.Fatalf("multi-packet dispatch: %v allocs/op, want 0", n)
	}

	eps, striped := stripedBed(4, DoorbellConfig{MaxPending: 8})
	stripedCycle(eps, striped, t) // warm every shard's freelist and ring
	if n := testing.AllocsPerRun(200, func() { stripedCycle(eps, striped, t) }); n != 0 {
		t.Fatalf("striped post→flush→complete: %v allocs/op, want 0", n)
	}

	pep, rep := &fakeEndpoint{}, &fakeEndpoint{}
	pqp := NewQP(pep, NewCredits(CreditConfig{Window: 16}), QPConfig{Cumulative: true})
	rqp := NewQP(rep, nil, QPConfig{Cumulative: true})
	mir := NewMirrored(pqp, rqp, MirrorConfig{Mode: ReplicationSync})
	mirroredCycle(pep, rep, mir, t) // warm both QPs' freelists
	if n := testing.AllocsPerRun(200, func() { mirroredCycle(pep, rep, mir, t) }); n != 0 {
		t.Fatalf("mirrored post→mirror→complete: %v allocs/op, want 0", n)
	}
}

func BenchmarkQPPostCompleteRead(b *testing.B) {
	ep := &fakeEndpoint{}
	qp := NewQP(ep, NewCredits(CreditConfig{Window: 16}), QPConfig{TokenIndex: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		psn := ep.psn
		qp.PostRead(1, 0, 128, 1, CreditTry)
		qp.CompleteExact(psn)
	}
}

func BenchmarkQPPostAckFetchAdd(b *testing.B) {
	ep := &fakeEndpoint{}
	qp := NewQP(ep, NewCredits(CreditConfig{Window: 16}), QPConfig{Cumulative: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		psn := ep.psn
		qp.PostFetchAdd(0, 1)
		qp.AckCumulative(psn)
	}
}

// BenchmarkQPMirroredPostComplete is the replicated analogue of the FAA
// cycle: every post shadowed onto a replica QP, both acks settling the
// journal entry.
func BenchmarkQPMirroredPostComplete(b *testing.B) {
	pep, rep := &fakeEndpoint{}, &fakeEndpoint{}
	pqp := NewQP(pep, NewCredits(CreditConfig{Window: 16}), QPConfig{Cumulative: true})
	rqp := NewQP(rep, nil, QPConfig{Cumulative: true})
	m := NewMirrored(pqp, rqp, MirrorConfig{Mode: ReplicationSync})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ppsn, rpsn := pep.psn, rep.psn
		m.PostFetchAdd(0, 1)
		m.Primary().AckCumulative(ppsn)
		m.AckPrimary(ppsn)
		m.AckReplica(rpsn)
	}
}

// BenchmarkStripedPostCompleteRead is the striped analogue of the QP READ
// cycle: four shards, one post+complete round-robined across them per op.
func BenchmarkStripedPostCompleteRead(b *testing.B) {
	eps := make([]*fakeEndpoint, 4)
	qps := make([]*QP, 4)
	for i := range qps {
		eps[i] = &fakeEndpoint{}
		qps[i] = NewQP(eps[i], NewCredits(CreditConfig{Window: 16}), QPConfig{TokenIndex: true})
	}
	s := NewStriped(qps, StripeConfig{EntrySize: 128})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := uint64(i % 4)
		psn := eps[key].psn
		s.PostRead(key, 128, 1, CreditTry)
		s.Shard(int(key)).CompleteExact(psn)
	}
}

// BenchmarkStripedFetchAddFanout measures the striped FAA hot path: post on
// the home shard, cumulative ack there.
func BenchmarkStripedFetchAddFanout(b *testing.B) {
	eps, s := stripedBed(4, DoorbellConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := uint64(i % 4)
		psn := eps[key].psn
		s.PostFetchAdd(key, 1)
		s.Shard(int(key)).AckCumulative(psn)
	}
}

// BenchmarkDoorbellDeferRingAck is the batched posting path: eight same-slot
// deltas coalesce into one WQE, one Ring, one ACK — the ns/op and
// frames-on-wire ablation partner of BenchmarkQPPostAckFetchAdd (its
// unbatched equivalent posts eight frames for the same work).
func BenchmarkDoorbellDeferRingAck(b *testing.B) {
	ep := &fakeEndpoint{}
	qp := NewQP(ep, NewCredits(CreditConfig{Window: 16}), QPConfig{Cumulative: true})
	qp.EnableDoorbell(DoorbellConfig{MaxPending: 8})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		psn := ep.psn
		for k := 0; k < 8; k++ {
			qp.DeferFetchAdd(0, 1)
		}
		qp.Ring()
		qp.AckCumulative(psn)
	}
}

// BenchmarkDoorbellDeferOnly isolates the enqueue cost a pipeline pass pays
// per update when posting is deferred (the "~zero cost" claim).
func BenchmarkDoorbellDeferOnly(b *testing.B) {
	ep := &fakeEndpoint{}
	qp := NewQP(ep, nil, QPConfig{Cumulative: true})
	qp.EnableDoorbell(DoorbellConfig{MaxPending: 8})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		qp.DeferFetchAdd(0, 1)
		if qp.DoorbellDeltaAt(0) >= 1<<20 {
			qp.Ring()
			qp.AckCumulative(ep.psn)
		}
	}
}

func BenchmarkQPReadResponseDispatch(b *testing.B) {
	ep := &fakeEndpoint{}
	qp := NewQP(ep, NewCredits(CreditConfig{Window: 16}), QPConfig{TokenIndex: true})
	payload := make([]byte, 1024)
	first := &wire.Packet{BTH: wire.BTH{Opcode: wire.OpReadResponseFirst}, Payload: payload}
	last := &wire.Packet{BTH: wire.BTH{Opcode: wire.OpReadResponseLast}, Payload: payload}
	b.SetBytes(2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		psn := ep.psn
		qp.PostRead(1, 0, 2048, 2, CreditTry)
		first.BTH.PSN = psn
		qp.ReadResponse(first)
		last.BTH.PSN = (psn + 1) & PSNMask
		qp.ReadResponse(last)
	}
}
