package verbs

// Allocation gates for the transport hot paths, in the style of the wire
// pool gates (PR 1): the post→inject and completion-dispatch cycles must
// run at 0 allocs/op once warm. WQEs come from the freelist, the PSN/token
// indexes churn a bounded key set, and reassembly reuses one scratch
// buffer — so a warm QP never touches the heap. Frame building itself is
// gated separately in internal/wire (the pooled Build*Into paths).

import (
	"testing"

	"gem/internal/wire"
)

// readCycle is one post→inject→complete round on the exact-PSN path
// (the PacketBuffer shape: token-indexed, windowed credits).
func readCycle(ep *fakeEndpoint, qp *QP, t *testing.T) {
	psn := ep.psn
	if !qp.PostRead(1, 0, 128, 1, CreditTry) {
		t.Fatal("post refused")
	}
	if _, ok := qp.CompleteExact(psn); !ok {
		t.Fatal("completion missed")
	}
}

// faaCycle is one post→inject→ack round on the cumulative path (the
// StateStore shape: FIFO retirement by ACK PSN).
func faaCycle(ep *fakeEndpoint, qp *QP, t *testing.T) {
	psn := ep.psn
	if !qp.PostFetchAdd(0, 1) {
		t.Fatal("post refused")
	}
	if n := qp.AckCumulative(psn); n != 1 {
		t.Fatalf("ack retired %d, want 1", n)
	}
}

// respCycle is one multi-packet completion dispatch: a 2-packet READ
// reassembled from First+Last segments through the shared scratch buffer.
func respCycle(ep *fakeEndpoint, qp *QP, first, last *wire.Packet, t *testing.T) {
	psn := ep.psn
	if !qp.PostRead(1, 0, 2048, 2, CreditTry) {
		t.Fatal("post refused")
	}
	first.BTH.PSN = psn
	if _, _, st := qp.ReadResponse(first); st != CQNone {
		t.Fatalf("First status = %v", st)
	}
	last.BTH.PSN = (psn + 1) & PSNMask
	if _, _, st := qp.ReadResponse(last); st != CQDone {
		t.Fatalf("Last status = %v", st)
	}
}

// TestTransportZeroAlloc is the hard gate behind the 0 allocs/op
// acceptance criterion for the transport core.
func TestTransportZeroAlloc(t *testing.T) {
	ep := &fakeEndpoint{}
	qp := NewQP(ep, NewCredits(CreditConfig{Window: 16}), QPConfig{TokenIndex: true})
	readCycle(ep, qp, t) // warm the freelist and index buckets
	if n := testing.AllocsPerRun(200, func() { readCycle(ep, qp, t) }); n != 0 {
		t.Fatalf("READ post+complete: %v allocs/op, want 0", n)
	}

	epF := &fakeEndpoint{}
	qpF := NewQP(epF, NewCredits(CreditConfig{Window: 16}), QPConfig{Cumulative: true})
	faaCycle(epF, qpF, t)
	if n := testing.AllocsPerRun(200, func() { faaCycle(epF, qpF, t) }); n != 0 {
		t.Fatalf("FAA post+ack: %v allocs/op, want 0", n)
	}

	epR := &fakeEndpoint{}
	qpR := NewQP(epR, NewCredits(CreditConfig{Window: 16}), QPConfig{TokenIndex: true})
	payload := make([]byte, 1024)
	first := &wire.Packet{BTH: wire.BTH{Opcode: wire.OpReadResponseFirst}, Payload: payload}
	last := &wire.Packet{BTH: wire.BTH{Opcode: wire.OpReadResponseLast}, Payload: payload}
	respCycle(epR, qpR, first, last, t) // warm the reassembly scratch
	if n := testing.AllocsPerRun(200, func() { respCycle(epR, qpR, first, last, t) }); n != 0 {
		t.Fatalf("multi-packet dispatch: %v allocs/op, want 0", n)
	}
}

func BenchmarkQPPostCompleteRead(b *testing.B) {
	ep := &fakeEndpoint{}
	qp := NewQP(ep, NewCredits(CreditConfig{Window: 16}), QPConfig{TokenIndex: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		psn := ep.psn
		qp.PostRead(1, 0, 128, 1, CreditTry)
		qp.CompleteExact(psn)
	}
}

func BenchmarkQPPostAckFetchAdd(b *testing.B) {
	ep := &fakeEndpoint{}
	qp := NewQP(ep, NewCredits(CreditConfig{Window: 16}), QPConfig{Cumulative: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		psn := ep.psn
		qp.PostFetchAdd(0, 1)
		qp.AckCumulative(psn)
	}
}

func BenchmarkQPReadResponseDispatch(b *testing.B) {
	ep := &fakeEndpoint{}
	qp := NewQP(ep, NewCredits(CreditConfig{Window: 16}), QPConfig{TokenIndex: true})
	payload := make([]byte, 1024)
	first := &wire.Packet{BTH: wire.BTH{Opcode: wire.OpReadResponseFirst}, Payload: payload}
	last := &wire.Packet{BTH: wire.BTH{Opcode: wire.OpReadResponseLast}, Payload: payload}
	b.SetBytes(2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		psn := ep.psn
		qp.PostRead(1, 0, 2048, 2, CreditTry)
		first.BTH.PSN = psn
		qp.ReadResponse(first)
		last.BTH.PSN = (psn + 1) & PSNMask
		qp.ReadResponse(last)
	}
}
