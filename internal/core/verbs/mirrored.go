package verbs

// Mirrored posting: one logical queue shadow-posting to a replica server.
//
// The failover engine can rebind a QP to a standby, but §7's concession
// stands: state stored only on the dead primary is gone. MirroredQP closes
// that gap at the transport layer — every WRITE and Fetch-and-Add posted
// through it is also posted to a second server's QP, and a bounded journal
// remembers what the replica has not yet acknowledged so a promotion can
// replay the difference before the shard rebinds. Two modes span the
// consistency/throughput trade (Cascone et al.'s state-access relaxation
// knob, applied to replication):
//
//   - Sync: a request is settled only when both the primary and the replica
//     acknowledged it (writes, which are unsignaled at this transport,
//     settle on replica egress). The journal never declares loss; on a
//     primary crash the replica is byte-exact up to the journal replay.
//   - Async: the primary ack alone settles the caller's view; the replica
//     may lag up to MaxLag journaled requests. Entries pushed past the
//     bound are declared lost — counted, and surfaced as typed
//     CQReplicaLost completions on the primary QP — and the anti-entropy
//     scrubber is the repair path for whatever the declaration got wrong.
//
// The journal is a preallocated ring (entries plus a payload slab for
// WRITE replay), so the post→mirror→complete cycle allocates nothing.
// Replica acknowledgements are matched by EXACT mirror PSN, not
// cumulatively: a cumulative mark would silently absorb requests the
// replica never saw (dropped during a replica blip) and corrupt the loss
// accounting that E13 pins.

// ReplicationMode selects how a mirrored post completes.
type ReplicationMode uint8

const (
	// ReplicationOff: no mirroring; the baseline single-copy behavior.
	ReplicationOff ReplicationMode = iota
	// ReplicationSync: settle on both acks; no declared loss.
	ReplicationSync
	// ReplicationAsync: settle on the primary ack; replica lag bounded by
	// MaxLag, overflow declared lost with typed CQReplicaLost completions.
	ReplicationAsync
)

// String names the mode for diagnostics and experiment tables.
func (m ReplicationMode) String() string {
	switch m {
	case ReplicationSync:
		return "Sync"
	case ReplicationAsync:
		return "Async"
	}
	return "Off"
}

// MirrorConfig fixes a mirrored QP's replication discipline.
type MirrorConfig struct {
	// Mode is the replication mode (Sync or Async; Off means "do not build
	// a MirroredQP at all" and is rejected).
	Mode ReplicationMode
	// MaxLag bounds un-acknowledged journal entries in Async mode; pushing
	// past it declares the oldest unsettled entries lost. 0 = 64.
	MaxLag int
	// Journal is the ring capacity in entries. A full ring force-settles
	// its head (declaring it lost if unacknowledged). 0 = 256.
	Journal int
	// PayloadCap is the per-entry WRITE payload retained for replay;
	// longer writes are mirrored best-effort but not journaled. 0 = 64.
	PayloadCap int
}

func (c MirrorConfig) withDefaults() MirrorConfig {
	if c.MaxLag <= 0 {
		c.MaxLag = 64
	}
	if c.Journal <= 0 {
		c.Journal = 256
	}
	if c.PayloadCap <= 0 {
		c.PayloadCap = 64
	}
	return c
}

// MirrorLagBuckets is the number of log2 replica-lag histogram buckets.
const MirrorLagBuckets = 16

// LagHist is an allocation-free log2 histogram of replica lag (unsettled
// journal entries), sampled at every mirrored post. Bucket i counts samples
// whose lag has bit length i; bucket 0 is a fully caught-up replica.
type LagHist struct {
	Buckets [MirrorLagBuckets]int64
	Count   int64
	Max     int64
}

// Observe records one lag sample.
func (h *LagHist) Observe(lag int) {
	v := int64(lag)
	if v < 0 {
		v = 0
	}
	i := 0
	for x := v; x > 0; x >>= 1 {
		i++
	}
	if i >= MirrorLagBuckets {
		i = MirrorLagBuckets - 1
	}
	h.Buckets[i]++
	h.Count++
	if v > h.Max {
		h.Max = v
	}
}

// Add returns the element-wise sum of h and o (Max takes the max).
func (h LagHist) Add(o LagHist) LagHist {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	if o.Max > h.Max {
		h.Max = o.Max
	}
	return h
}

// MirrorStats are one mirrored QP's replication counters. The struct is
// flat and comparable so aggregate snapshots can embed it.
type MirrorStats struct {
	MirroredWrites int64   // WRITEs shadow-posted to the replica's wire
	MirroredFAAs   int64   // Fetch-and-Adds shadow-posted to the replica's wire
	ReplicaAcked   int64   // journal entries acknowledged by the replica (exact PSN)
	BothAcked      int64   // entries settled with both primary and replica acks (Sync's guarantee)
	ReplicaLost    int64   // entries declared lost (lag bound, ring overflow, oversized write)
	LostDelta      int64   // summed FAA deltas of declared-lost entries (loss upper bound)
	Replayed       int64   // entries re-posted into the replica by a promotion
	Promotions     int64   // times Promote ran
	Lag            LagHist // replica lag sampled at every mirrored post
}

// Add returns the element-wise sum of s and o.
func (s MirrorStats) Add(o MirrorStats) MirrorStats {
	s.MirroredWrites += o.MirroredWrites
	s.MirroredFAAs += o.MirroredFAAs
	s.ReplicaAcked += o.ReplicaAcked
	s.BothAcked += o.BothAcked
	s.ReplicaLost += o.ReplicaLost
	s.LostDelta += o.LostDelta
	s.Replayed += o.Replayed
	s.Promotions += o.Promotions
	s.Lag = s.Lag.Add(o.Lag)
	return s
}

// mirrorEntry is one journaled request: enough to match both ack streams
// and to replay the request into the replica.
type mirrorEntry struct {
	op      OpType
	offset  int
	delta   uint64 // FAA delta (OpFetchAdd)
	payLen  int    // retained WRITE payload length (OpWrite)
	ppsn    uint32 // primary-side PSN (cumulative ack matching)
	rpsn    uint32 // replica-side PSN (exact ack matching; valid iff rposted)
	rposted bool   // reached the replica's wire at least once
	packed  bool   // primary acknowledged (writes: at post)
	racked  bool   // replica acknowledged (writes: at replica egress)
	lost    bool   // declared lost; settles without a replica ack
}

func (e *mirrorEntry) settled(promoted bool) bool {
	return (e.packed || promoted) && (e.racked || e.lost)
}

// MirroredQP shadow-posts WRITE/FAA work requests to a replica server's QP.
// It wraps — never replaces — the primary QP: READ completion, credits,
// retransmit, and failover stay on the primary; the mirror adds only the
// replica post, the journal, and the loss/lag accounting. Not safe for
// concurrent use; the simulation is single-threaded per engine.
type MirroredQP struct {
	primary *QP
	replica *QP
	cfg     MirrorConfig

	ring     []mirrorEntry
	slab     []byte // Journal × PayloadCap WRITE replay payloads, slot-indexed
	head, n  int
	promoted bool

	Stats MirrorStats
}

// NewMirrored builds a mirrored QP: posts go to primary as before and are
// shadowed onto replica. replica is typically a credit-less cumulative QP on
// the replica server's channel (the mirror must never backpressure the
// primary's admission window).
func NewMirrored(primary, replica *QP, cfg MirrorConfig) *MirroredQP {
	if primary == nil || replica == nil {
		panic("verbs: mirrored QP needs a primary and a replica")
	}
	if cfg.Mode != ReplicationSync && cfg.Mode != ReplicationAsync {
		panic("verbs: mirrored QP needs ReplicationSync or ReplicationAsync")
	}
	cfg = cfg.withDefaults()
	return &MirroredQP{
		primary: primary,
		replica: replica,
		cfg:     cfg,
		ring:    make([]mirrorEntry, cfg.Journal),
		slab:    make([]byte, cfg.Journal*cfg.PayloadCap),
	}
}

// Primary returns the wrapped primary QP.
func (m *MirroredQP) Primary() *QP { return m.primary }

// Replica returns the replica-side QP.
func (m *MirroredQP) Replica() *QP { return m.replica }

// Mode returns the configured replication mode.
func (m *MirroredQP) Mode() ReplicationMode { return m.cfg.Mode }

// MaxLag returns the effective lag bound.
func (m *MirroredQP) MaxLag() int { return m.cfg.MaxLag }

// Promoted reports whether Promote has run (the mirror is retired and posts
// delegate straight to the primary, which the caller rebound to the
// replica's channel).
func (m *MirroredQP) Promoted() bool { return m.promoted }

// Journaled reports live journal entries.
func (m *MirroredQP) Journaled() int { return m.n }

// Lag reports journal entries the replica has not acknowledged — the
// replication lag the supervisor's pressure ladder watches.
func (m *MirroredQP) Lag() int {
	lag := 0
	for i := 0; i < m.n; i++ {
		e := &m.ring[(m.head+i)%len(m.ring)]
		if !e.racked && !e.lost {
			lag++
		}
	}
	return lag
}

// LagDelta sums the FAA deltas of un-acknowledged, un-lost journal entries
// — the in-flight residue E13's loss accounting subtracts.
func (m *MirroredQP) LagDelta() uint64 {
	var d uint64
	for i := 0; i < m.n; i++ {
		e := &m.ring[(m.head+i)%len(m.ring)]
		if e.op == OpFetchAdd && !e.racked && !e.lost {
			d += e.delta
		}
	}
	return d
}

// slot returns the ring index of live entry i (0 = oldest).
func (m *MirroredQP) slot(i int) int { return (m.head + i) % len(m.ring) }

// push appends a fresh entry, force-settling the head if the ring is full.
func (m *MirroredQP) push() *mirrorEntry {
	if m.n == len(m.ring) {
		m.declareLost(&m.ring[m.head])
		m.pop()
	}
	s := m.slot(m.n)
	m.n++
	e := &m.ring[s]
	*e = mirrorEntry{}
	return e
}

// pop drops the head entry (the caller has settled or declared it).
func (m *MirroredQP) pop() {
	m.head = (m.head + 1) % len(m.ring)
	m.n--
}

// declareLost marks an unsettled entry lost: counted, its FAA delta added
// to the loss upper bound, and a typed CQReplicaLost completion delivered
// on the primary QP (token = the entry's offset, PSN = its mirror PSN) so
// the supervisor's error-rate ladder sees it.
func (m *MirroredQP) declareLost(e *mirrorEntry) {
	if e.settled(m.promoted) || e.lost {
		return
	}
	e.lost = true
	m.Stats.ReplicaLost++
	if e.op == OpFetchAdd {
		m.Stats.LostDelta += int64(e.delta)
	}
	m.primary.CompleteError(e.op, uint64(e.offset), e.rpsn, CQReplicaLost)
}

// drain pops every settled entry off the head, counting Sync's both-acked
// guarantee as it goes.
func (m *MirroredQP) drain() {
	for m.n > 0 {
		e := &m.ring[m.head]
		if !e.settled(m.promoted) {
			return
		}
		if e.racked && !e.lost {
			m.Stats.BothAcked++
		}
		m.pop()
	}
}

// enforceLag declares the oldest unsettled entries lost until the replica
// lag is back under MaxLag (Async mode only; Sync never declares loss).
func (m *MirroredQP) enforceLag() {
	if m.cfg.Mode != ReplicationAsync {
		return
	}
	for lag := m.Lag(); lag > m.cfg.MaxLag; lag-- {
		for i := 0; i < m.n; i++ {
			e := &m.ring[m.slot(i)]
			if !e.racked && !e.lost {
				m.declareLost(e)
				break
			}
		}
	}
	m.drain()
}

// PostFetchAdd posts a Fetch-and-Add on the primary and shadows it onto the
// replica, journaling it until both sides settle. False means the primary
// refused (credit/egress) and nothing was sent anywhere.
func (m *MirroredQP) PostFetchAdd(offset int, delta uint64) bool {
	if m.promoted {
		return m.primary.PostFetchAdd(offset, delta)
	}
	ppsn := m.primary.Endpoint().PSN()
	if !m.primary.PostFetchAdd(offset, delta) {
		return false
	}
	e := m.push()
	e.op, e.offset, e.delta, e.ppsn = OpFetchAdd, offset, delta, ppsn
	rpsn := m.replica.Endpoint().PSN()
	if m.replica.PostFetchAdd(offset, delta) {
		e.rposted, e.rpsn = true, rpsn
		m.Stats.MirroredFAAs++
	}
	m.Stats.Lag.Observe(m.Lag())
	m.enforceLag()
	return true
}

// PostWrite posts an unsignaled WRITE on the primary and shadows it onto
// the replica. Writes expect no ack on either side, so a successfully
// mirrored write settles immediately; a refused mirror (replica egress
// full) is journaled — payload retained up to PayloadCap — and retried on
// the next replica ack event or replayed by a promotion. Oversized writes
// are mirrored best-effort only: a refusal is declared lost on the spot.
func (m *MirroredQP) PostWrite(offset int, payload []byte) bool {
	if m.promoted {
		return m.primary.PostWrite(offset, payload)
	}
	if !m.primary.PostWrite(offset, payload) {
		return false
	}
	if m.replica.PostWrite(offset, payload) {
		m.Stats.MirroredWrites++
		m.Stats.Lag.Observe(m.Lag())
		return true
	}
	if len(payload) > m.cfg.PayloadCap {
		// Too big to journal for replay: count the miss as a loss and let
		// the scrubber repair the window.
		m.Stats.ReplicaLost++
		m.primary.CompleteError(OpWrite, uint64(offset), 0, CQReplicaLost)
		m.Stats.Lag.Observe(m.Lag())
		return true
	}
	e := m.push()
	e.op, e.offset, e.payLen = OpWrite, offset, len(payload)
	e.packed = true // unsignaled on the primary: nothing to wait for
	s := m.slot(m.n - 1)
	copy(m.slab[s*m.cfg.PayloadCap:], payload)
	m.Stats.Lag.Observe(m.Lag())
	m.enforceLag()
	return true
}

// AckPrimary marks every journal entry at or before psn (24-bit ring
// order) as primary-acknowledged. The caller invokes it alongside the
// primary QP's own AckCumulative when an ack arrives from the primary.
func (m *MirroredQP) AckPrimary(psn uint32) {
	for i := 0; i < m.n; i++ {
		e := &m.ring[m.slot(i)]
		if e.op == OpFetchAdd && !e.packed && !PSNAfter(e.ppsn, psn) {
			e.packed = true
		}
	}
	m.drain()
}

// AckReplica consumes a replica-side acknowledgement: entries whose mirror
// PSN matches psn EXACTLY are marked replica-acknowledged (cumulative
// marking would absorb requests a replica blip dropped and corrupt the loss
// accounting), and un-posted journal entries get a retry onto the replica's
// wire. The replica QP's own FIFO is drained cumulatively as usual. Returns
// the number of entries acknowledged.
func (m *MirroredQP) AckReplica(psn uint32) int {
	m.replica.AckCumulative(psn)
	acked := 0
	for i := 0; i < m.n; i++ {
		e := &m.ring[m.slot(i)]
		if e.rposted && !e.racked && e.rpsn == psn {
			e.racked = true
			m.Stats.ReplicaAcked++
			acked++
		}
	}
	m.retryUnposted()
	m.drain()
	return acked
}

// retryUnposted re-offers journal entries that never reached the replica's
// wire (egress refused at post time, or the replica was down).
func (m *MirroredQP) retryUnposted() {
	for i := 0; i < m.n; i++ {
		e := &m.ring[m.slot(i)]
		if e.rposted || e.lost {
			continue
		}
		switch e.op {
		case OpFetchAdd:
			rpsn := m.replica.Endpoint().PSN()
			if m.replica.PostFetchAdd(e.offset, e.delta) {
				e.rposted, e.rpsn = true, rpsn
				m.Stats.MirroredFAAs++
			}
		case OpWrite:
			s := m.slot(i)
			if m.replica.PostWrite(e.offset, m.slab[s*m.cfg.PayloadCap:s*m.cfg.PayloadCap+e.payLen]) {
				e.rposted, e.racked = true, true
				m.Stats.MirroredWrites++
			}
		}
	}
}

// Promote retires the mirror after a primary crash: every journal entry the
// replica never saw is replayed onto the replica's wire, the journal is
// cleared, and future posts delegate straight to the primary QP — which the
// caller rebinds to the replica's channel immediately after. Entries that
// were posted but never acknowledged are NOT replayed (the replica may hold
// them; a blind replay would double-apply FAAs) — the anti-entropy scrubber
// repairs that residue. Returns the number of entries replayed.
func (m *MirroredQP) Promote() int {
	if m.promoted {
		return 0
	}
	m.promoted = true
	m.Stats.Promotions++
	replayed := 0
	for i := 0; i < m.n; i++ {
		s := m.slot(i)
		e := &m.ring[s]
		if e.rposted || e.lost {
			continue
		}
		switch e.op {
		case OpFetchAdd:
			rpsn := m.replica.Endpoint().PSN()
			if m.replica.PostFetchAdd(e.offset, e.delta) {
				e.rposted, e.rpsn = true, rpsn
				m.Stats.MirroredFAAs++
				m.Stats.Replayed++
				replayed++
			}
		case OpWrite:
			if m.replica.PostWrite(e.offset, m.slab[s*m.cfg.PayloadCap:s*m.cfg.PayloadCap+e.payLen]) {
				e.rposted, e.racked = true, true
				m.Stats.MirroredWrites++
				m.Stats.Replayed++
				replayed++
			}
		}
	}
	// The journal's purpose — replay on promotion — is spent; whatever the
	// replay could not recover is the scrubber's to repair.
	m.head, m.n = 0, 0
	return replayed
}
