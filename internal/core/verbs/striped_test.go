package verbs

import (
	"testing"

	"gem/internal/sim"
)

// dbEndpoint extends fakeEndpoint with FAA accounting and captured timers,
// for doorbell and striping unit tests.
type dbEndpoint struct {
	fakeEndpoint
	faas   int
	deltas uint64
	timers []func()
}

func (e *dbEndpoint) FetchAdd(offset int, delta uint64) (uint32, bool) {
	p, ok := e.fakeEndpoint.FetchAdd(offset, delta)
	if ok {
		e.faas++
		e.deltas += delta
	}
	return p, ok
}

func (e *dbEndpoint) Schedule(after sim.Duration, fn func()) {
	e.timers = append(e.timers, fn)
}

func (e *dbEndpoint) fire() {
	timers := e.timers
	e.timers = nil
	for _, fn := range timers {
		fn()
	}
}

func TestStripedPlacement(t *testing.T) {
	mk := func(n int, cfg StripeConfig) *StripedQP {
		shards := make([]*QP, n)
		for i := range shards {
			shards[i] = NewQP(&fakeEndpoint{}, nil, QPConfig{})
		}
		return NewStriped(shards, cfg)
	}

	// Single shard degenerates to the unsharded layout: shard 0, offset
	// key*EntrySize.
	s1 := mk(1, StripeConfig{EntrySize: 8})
	for _, k := range []uint64{0, 1, 7, 1000} {
		if s1.ShardOf(k) != 0 || s1.Offset(k) != int(k)*8 {
			t.Fatalf("n=1 placement of %d: shard %d off %d", k, s1.ShardOf(k), s1.Offset(k))
		}
	}

	// Modulo placement: key k lives on shard k%n at slot k/n.
	s4 := mk(4, StripeConfig{EntrySize: 16})
	for _, c := range []struct {
		key        uint64
		shard, off int
	}{{0, 0, 0}, {1, 1, 0}, {5, 1, 16}, {11, 3, 32}} {
		if s4.ShardOf(c.key) != c.shard || s4.Offset(c.key) != c.off {
			t.Fatalf("placement of %d: shard %d off %d, want %d/%d",
				c.key, s4.ShardOf(c.key), s4.Offset(c.key), c.shard, c.off)
		}
	}

	// SlotsPerShard wraps the shard-local slot (ring semantics): with 4
	// shards of 3 slots, global index 12 reuses shard 0 slot 0.
	ring := mk(4, StripeConfig{EntrySize: 10, SlotsPerShard: 3})
	if ring.ShardOf(12) != 0 || ring.Offset(12) != 0 {
		t.Fatalf("ring wrap: shard %d off %d, want 0/0", ring.ShardOf(12), ring.Offset(12))
	}
	if ring.Offset(16) != 10 { // key 16: slot (16/4) mod 3 = 1
		t.Fatalf("ring slot for 16: off %d, want 10", ring.Offset(16))
	}
}

func TestStripedPostRoutesToHomeShard(t *testing.T) {
	eps := []*dbEndpoint{{}, {}}
	shards := []*QP{
		NewQP(eps[0], nil, QPConfig{Cumulative: true}),
		NewQP(eps[1], nil, QPConfig{Cumulative: true}),
	}
	s := NewStriped(shards, StripeConfig{EntrySize: 8})
	for k := uint64(0); k < 6; k++ {
		if !s.PostFetchAdd(k, k+1) {
			t.Fatalf("post %d refused", k)
		}
	}
	// Even keys on shard 0, odd on shard 1; deltas prove offsets/keys routed.
	if eps[0].faas != 3 || eps[1].faas != 3 {
		t.Fatalf("faa split %d/%d, want 3/3", eps[0].faas, eps[1].faas)
	}
	if eps[0].deltas != 1+3+5 || eps[1].deltas != 2+4+6 {
		t.Fatalf("delta split %d/%d", eps[0].deltas, eps[1].deltas)
	}
	if s.Pending() != 6 {
		t.Fatalf("pending %d, want 6", s.Pending())
	}
	// Per-shard cumulative ACKs retire independently; merged stats add up.
	shards[0].AckCumulative(2)
	if s.Pending() != 3 {
		t.Fatalf("pending after shard-0 ack: %d, want 3", s.Pending())
	}
	shards[1].AckCumulative(2)
	st := s.Stats()
	if st.FetchAdd.Posted != 6 || st.FetchAdd.Completed != 6 {
		t.Fatalf("merged stats %+v", st.FetchAdd)
	}
}

func TestStripedPerShardCredits(t *testing.T) {
	eps := []*dbEndpoint{{}, {}}
	crs := []*Credits{
		NewCredits(CreditConfig{Window: 1}),
		NewCredits(CreditConfig{Window: 1}),
	}
	shards := []*QP{
		NewQP(eps[0], crs[0], QPConfig{TokenIndex: true}),
		NewQP(eps[1], crs[1], QPConfig{TokenIndex: true}),
	}
	s := NewStriped(shards, StripeConfig{EntrySize: 64})
	if !s.PostRead(0, 64, 1, CreditTry) {
		t.Fatal("first post on shard 0 refused")
	}
	// Shard 0's window is exhausted; shard 1's is untouched.
	if s.CanPost(2) {
		t.Fatal("shard 0 should be out of credits")
	}
	if !s.PostRead(1, 64, 1, CreditTry) {
		t.Fatal("shard 1 post refused despite private window")
	}
	if !s.TokenPending(0) || !s.TokenPending(1) || s.TokenPending(2) {
		t.Fatal("token index misrouted")
	}
}

func TestDoorbellCoalesceAndFlushDelta(t *testing.T) {
	ep := &dbEndpoint{}
	qp := NewQP(ep, nil, QPConfig{Cumulative: true})
	qp.EnableDoorbell(DoorbellConfig{MaxPending: 8, FlushDelta: 4})

	// Three counters round-robin: deltas coalesce in place, nothing posts
	// until one entry ripens.
	for round := 0; round < 3; round++ {
		for off := 0; off < 24; off += 8 {
			if !qp.DeferFetchAdd(off, 1) {
				t.Fatal("defer refused")
			}
		}
	}
	if ep.faas != 0 || qp.DoorbellPending() != 3 || qp.DoorbellDelta() != 9 {
		t.Fatalf("pre-ripe: faas=%d pending=%d delta=%d", ep.faas, qp.DoorbellPending(), qp.DoorbellDelta())
	}
	// Counter 0's fourth delta ripens it: exactly that entry posts, its
	// neighbours keep coalescing.
	if !qp.DeferFetchAdd(0, 1) {
		t.Fatal("defer refused")
	}
	if ep.faas != 1 || ep.deltas != 4 {
		t.Fatalf("ripe flush: faas=%d deltas=%d, want 1 post of 4", ep.faas, ep.deltas)
	}
	if qp.DoorbellPending() != 2 || qp.DoorbellDeltaAt(0) != 0 || qp.DoorbellDeltaAt(8) != 3 {
		t.Fatalf("ring after ripe flush: pending=%d at0=%d at8=%d",
			qp.DoorbellPending(), qp.DoorbellDeltaAt(0), qp.DoorbellDeltaAt(8))
	}
	// Explicit Ring drains the rest in deferral order.
	if n := qp.Ring(); n != 2 {
		t.Fatalf("Ring posted %d, want 2", n)
	}
	if ep.deltas != 10 || qp.DoorbellDelta() != 0 {
		t.Fatalf("post-ring: deltas=%d resident=%d", ep.deltas, qp.DoorbellDelta())
	}
	st := qp.DoorbellStatsSnapshot()
	if st.Deferred != 10 || st.Coalesced != 7 || st.Flushed != 3 {
		t.Fatalf("doorbell stats %+v", st)
	}
}

func TestDoorbellSizeTriggerAndRefusal(t *testing.T) {
	ep := &dbEndpoint{}
	qp := NewQP(ep, nil, QPConfig{Cumulative: true})
	qp.EnableDoorbell(DoorbellConfig{MaxPending: 2})

	qp.DeferFetchAdd(0, 1)
	qp.DeferFetchAdd(8, 1)
	// Ring full: the third distinct offset forces a flush first.
	if !qp.DeferFetchAdd(16, 1) {
		t.Fatal("defer should succeed after forced flush")
	}
	if ep.faas != 2 || qp.DoorbellPending() != 1 {
		t.Fatalf("size trigger: faas=%d pending=%d", ep.faas, qp.DoorbellPending())
	}

	// With the egress refusing, a full ring cannot drain: the defer is
	// rejected and the caller keeps the delta.
	ep.fail = true
	qp.DeferFetchAdd(24, 1)
	if qp.DeferFetchAdd(32, 1) {
		t.Fatal("defer should fail when flush cannot drain the full ring")
	}
	if qp.DoorbellDelta() != 2 {
		t.Fatalf("resident delta %d, want 2", qp.DoorbellDelta())
	}
	// The cut-short flush marked the ring urgent; once the egress recovers,
	// RingUrgent drains it — and a second RingUrgent is a no-op.
	ep.fail = false
	if n := qp.RingUrgent(); n != 2 {
		t.Fatalf("RingUrgent posted %d, want 2", n)
	}
	if n := qp.RingUrgent(); n != 0 {
		t.Fatalf("idle RingUrgent posted %d", n)
	}
}

func TestDoorbellAgeTrigger(t *testing.T) {
	ep := &dbEndpoint{}
	qp := NewQP(ep, nil, QPConfig{Cumulative: true})
	qp.EnableDoorbell(DoorbellConfig{MaxPending: 8, MaxAge: 50 * sim.Microsecond})

	qp.DeferFetchAdd(0, 1)
	qp.DeferFetchAdd(8, 2)
	if len(ep.timers) != 1 {
		t.Fatalf("armed %d timers, want 1", len(ep.timers))
	}
	ep.fire()
	if ep.faas != 2 || ep.deltas != 3 || qp.DoorbellPending() != 0 {
		t.Fatalf("age flush: faas=%d deltas=%d pending=%d", ep.faas, ep.deltas, qp.DoorbellPending())
	}
	// Empty ring after the flush: no re-arm.
	if len(ep.timers) != 0 {
		t.Fatal("timer re-armed with an empty ring")
	}
	// A refused flush re-arms so the leftovers age out eventually.
	qp.DeferFetchAdd(16, 1)
	ep.fail = true
	ep.fire()
	if len(ep.timers) != 1 || qp.DoorbellPending() != 1 {
		t.Fatalf("refused age flush: timers=%d pending=%d", len(ep.timers), qp.DoorbellPending())
	}
}

func TestDoorbellExactlyOnceAcrossRebind(t *testing.T) {
	old := &dbEndpoint{}
	qp := NewQP(old, nil, QPConfig{Cumulative: true})
	qp.EnableDoorbell(DoorbellConfig{MaxPending: 8, MaxAge: 50 * sim.Microsecond})

	// A delta deferred before failover is unflushed intent: Abort abandons
	// in-flight WQEs but must not touch the ring.
	qp.DeferFetchAdd(0, 5)
	qp.Abort()
	next := &dbEndpoint{}
	qp.Rebind(next, nil)
	if qp.DoorbellDelta() != 5 {
		t.Fatalf("rebind lost resident delta: %d", qp.DoorbellDelta())
	}
	// The age timer armed on the old endpoint fires after the rebind: the
	// delta posts exactly once, to the new endpoint.
	old.fire()
	if old.faas != 0 || next.faas != 1 || next.deltas != 5 {
		t.Fatalf("post-rebind flush: old=%d new=%d/%d", old.faas, next.faas, next.deltas)
	}
	// Nothing left for a duplicate trigger to double-post.
	if qp.Ring() != 0 || next.deltas != 5 {
		t.Fatalf("duplicate ring re-posted: deltas=%d", next.deltas)
	}
}

func TestRetargetMovesCreditsAndTokens(t *testing.T) {
	oldEP, newEP := &dbEndpoint{}, &dbEndpoint{}
	oldCr := NewCredits(CreditConfig{Window: 4})
	newCr := NewCredits(CreditConfig{Window: 4})
	qp := NewQP(oldEP, oldCr, QPConfig{TokenIndex: true})
	for tok := uint64(0); tok < 3; tok++ {
		if !qp.PostRead(tok, int(tok)*64, 64, 1, CreditTry) {
			t.Fatalf("post %d refused", tok)
		}
	}
	moved := qp.Retarget(newEP, newCr, nil)
	if len(moved) != 3 {
		t.Fatalf("retarget moved %d tokens, want 3", len(moved))
	}
	// Held credits migrated: the old window is free, the new one holds 3.
	if oldCr.Outstanding() != 0 || newCr.Outstanding() != 3 {
		t.Fatalf("credit migration: old=%d new=%d", oldCr.Outstanding(), newCr.Outstanding())
	}
	// Reposts re-issue on the new endpoint; completions retire against the
	// new window.
	for _, tok := range moved {
		if !qp.Repost(tok) {
			t.Fatalf("repost %d refused", tok)
		}
	}
	if newEP.psn != 3 || oldEP.psn != 3 {
		t.Fatalf("reposts did not land on new endpoint: old psn %#x new psn %#x", oldEP.psn, newEP.psn)
	}
	for psn := uint32(0); psn < 3; psn++ {
		if _, ok := qp.CompleteExact(psn); !ok {
			t.Fatalf("completion at %d missed", psn)
		}
	}
	if newCr.Outstanding() != 0 || qp.Pending() != 0 {
		t.Fatalf("drain: outstanding=%d pending=%d", newCr.Outstanding(), qp.Pending())
	}
}
