package verbs

import (
	"math/bits"

	"gem/internal/sim"
)

// LatencyBuckets is the number of log2 histogram buckets. Bucket i counts
// completions whose post→CQE latency in nanoseconds has bit length i, i.e.
// lies in [2^(i-1), 2^i); bucket 0 is zero-latency (same-event) completions.
// 31 buckets cover up to ~1 s of simulated latency, far beyond any RTO.
const LatencyBuckets = 31

// LatencyHist is an allocation-free log2 latency histogram, recorded at the
// moment a completion retires its WQE (post time is WQE.Issued). It is a
// fixed-size value type so Stats stays flat and comparable, and Observe is a
// shift-and-increment so it can sit on the completion hot path without
// disturbing the zero-allocation guarantee.
type LatencyHist struct {
	Buckets [LatencyBuckets]int64
	Count   int64
	SumNs   int64
	MaxNs   int64
}

// Observe records one post→CQE latency sample.
func (h *LatencyHist) Observe(d sim.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= LatencyBuckets {
		i = LatencyBuckets - 1
	}
	h.Buckets[i]++
	h.Count++
	h.SumNs += ns
	if ns > h.MaxNs {
		h.MaxNs = ns
	}
}

// Add returns the element-wise sum of h and o (Max takes the max).
func (h LatencyHist) Add(o LatencyHist) LatencyHist {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.SumNs += o.SumNs
	if o.MaxNs > h.MaxNs {
		h.MaxNs = o.MaxNs
	}
	return h
}

// BucketFloorNs returns the inclusive lower bound of bucket i in
// nanoseconds: 0 for bucket 0, else 2^(i-1).
func BucketFloorNs(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1) << (i - 1)
}
