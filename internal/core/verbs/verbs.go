// Package verbs is the shared RDMA transport core beneath the three
// remote-memory primitives: a verbs-style work-queue / completion-queue
// layer that owns the full request lifecycle.
//
// The paper's primitives — packet buffer, lookup table, state store — are
// all "craft a RoCEv2 request, match the response, recover on loss", and
// real RDMA exposes exactly one abstraction for that contract: post a work
// request to a queue pair, consume a completion from a completion queue.
// Before this package each primitive re-implemented the contract privately
// (its own outstanding-op table, PSN map, credit plumbing and stale-response
// handling); now they post through a QP and the transport does the
// bookkeeping once:
//
//   - Post* allocates PSNs (via the Endpoint, i.e. the channel's PSN
//     register), applies the per-post credit policy, injects the frame, and
//     tracks a work-queue entry (WQE);
//   - the completion path matches responses by PSN — exactly (READs) or
//     cumulatively (FAA ACK streams) — detects stale and duplicate
//     completions after a retry, reassembles multi-packet READ responses,
//     and releases exactly one credit per completion;
//   - the expiry path (ReapExpired / AppendExpired + Repost) implements the
//     two recovery disciplines the primitives need: release-and-forget for
//     idempotent-at-the-caller operations, and repost-in-place for READs the
//     caller must eventually satisfy.
//
// The QP deliberately does not own frame buffers: Endpoint.Read/Write/
// FetchAdd build and hand pooled frames to the fabric synchronously, so no
// WQE ever holds a pooled frame across events. (The Retransmitter is the
// one component that retains frames — as the reliable-mode poster behind
// PostFetchAdd — and its masters are tracked by its own window, not by
// WQEs; see DESIGN.md §9 for the ownership rules.)
package verbs

import (
	"gem/internal/fifo"
	"gem/internal/sim"
	"gem/internal/wire"
)

// Endpoint is the wire beneath a QP: the subset of the channel the
// transport needs. Read/Write/FetchAdd consume PSNs, build pooled request
// frames and inject them toward the memory server; PSN peeks at the next
// sequence number so the transport can record it before a post consumes it.
type Endpoint interface {
	PSN() uint32
	Read(offset, n int, respPkts uint32) bool
	Write(offset int, payload []byte) bool
	FetchAdd(offset int, delta uint64) (uint32, bool)
	Now() sim.Time
	Schedule(after sim.Duration, fn func())
}

// ReliablePoster is the reliable send path (the core Retransmitter): posts
// are tracked and retransmitted by its own window until acknowledged, so
// the QP's expiry machinery stays off — nothing is ever lost, only late.
type ReliablePoster interface {
	CanSend() bool
	FetchAdd(offset int, delta uint64) uint32
}

// OpType labels a work request.
type OpType uint8

const (
	OpRead OpType = iota
	OpWrite
	OpFetchAdd
)

// CreditMode is the per-post credit policy. The three primitives meter the
// same window three different ways, and the distinction is observable (the
// credit counters feed the E10 overload pins), so the policy is part of the
// post, not of the QP.
type CreditMode uint8

const (
	// CreditTry takes a credit or fails the post: no credit, no frame. A
	// post that then fails at the egress returns its credit. (Packet-buffer
	// READs.)
	CreditTry CreditMode = iota
	// CreditAdmit consumes the caller's reservation — or try-acquires,
	// counting a refusal — before issuing; a refusal cancels the post. The
	// WQE is tracked whether or not a window exists. (Recirculation-mode
	// lookup fetches.)
	CreditAdmit
	// CreditLoose issues unconditionally and tracks the WQE only when a
	// credit (reservation or fresh acquire) is available: the request is
	// stateless at the switch and the window merely meters it.
	// (Deposit-mode lookup fetches.)
	CreditLoose
)

// CQStatus classifies what a response packet produced.
type CQStatus uint8

const (
	// CQNone: consumed with no completion (reassembly in progress, or an
	// ignorable packet).
	CQNone CQStatus = iota
	// CQDone: a work request completed; the CQE and payload are valid.
	CQDone
	// CQStale: the response matched no live WQE (duplicate after a retry,
	// or an answer to a reaped request).
	CQStale
	// CQNakPSN: the responder NAKed with a PSN-sequence syndrome — it saw a
	// gap in the request stream. The retransmitter resyncs; the CQE reports
	// the fault.
	CQNakPSN
	// CQNakRKey: the responder NAKed with a remote-access or remote-op
	// syndrome — the request itself was rejected (bad rkey, bad opcode).
	CQNakRKey
	// CQRetryExhausted: the retransmitter's retry budget ran out for the
	// oldest unacked request; recovery now needs failover or a reconnect.
	CQRetryExhausted
	// CQCreditRefused: the admission window cancelled the post.
	CQCreditRefused
	// CQFailoverExhausted: failover wanted to switch servers and found no
	// live standby — every replica is considered dead.
	CQFailoverExhausted
	// CQCanceled: the WQE was abandoned by Abort (rebind or teardown);
	// nothing will ever answer it.
	CQCanceled
	// CQReplicaLost: an async mirror dropped a journaled request because the
	// replica fell further behind than the configured lag bound — the primary
	// committed it but the replica never will (until a scrub repairs it).
	CQReplicaLost
)

// String names the status for diagnostics and experiment tables.
func (s CQStatus) String() string {
	switch s {
	case CQNone:
		return "None"
	case CQDone:
		return "OK"
	case CQStale:
		return "Stale"
	case CQNakPSN:
		return "NAK-PSN"
	case CQNakRKey:
		return "NAK-RKey"
	case CQRetryExhausted:
		return "RetryExhausted"
	case CQCreditRefused:
		return "CreditRefused"
	case CQFailoverExhausted:
		return "FailoverExhausted"
	case CQCanceled:
		return "Canceled"
	case CQReplicaLost:
		return "ReplicaLost"
	}
	return "Unknown"
}

// IsError reports whether s is a typed error completion (as opposed to a
// successful, in-progress, or merely stale one).
func (s CQStatus) IsError() bool { return s >= CQNakPSN }

// CQE is a completion-queue entry: the identity of the work request a
// response satisfied.
type CQE struct {
	Op    OpType
	Token uint64
	PSN   uint32
}

// WQE is a work-queue entry: one in-flight request. Offset/Len/RespPkts are
// retained so Repost can re-issue the identical request with fresh PSNs.
type WQE struct {
	Op       OpType
	Token    uint64
	Offset   int
	Len      int
	RespPkts uint32
	PSN      uint32
	Issued   sim.Time

	hasCredit bool // holds one credit, released exactly once at retire
	queued    bool // resident in the FIFO (freelisted only when popped)
	done      bool // retired; lazily removed from the FIFO
	next      *WQE // freelist link
}

// QPConfig fixes a queue pair's completion and expiry discipline.
type QPConfig struct {
	// Cumulative selects FIFO-ordered cumulative completion (an ACK at PSN
	// p retires every WQE at or before p) instead of exact PSN matching.
	Cumulative bool
	// TokenIndex maintains a token→WQE index: TokenPending answers "is this
	// token in flight" and Repost re-issues by token. Tokens must be unique
	// among live WQEs.
	TokenIndex bool
	// Reap enables the FIFO-ordered expiry reaper: ReapExpired releases the
	// credit of any WQE older than Timeout and discards it (the caller's
	// recovery is to simply issue again later).
	Reap bool
	// Timeout is the age at which a WQE is expiry-eligible — for ReapExpired
	// (Reap mode) or AppendExpired/Repost (retry mode). 0 = never.
	Timeout sim.Duration
	// OnExpired is invoked for each WQE the reaper discards, after its
	// credit is released and its tracking removed.
	OnExpired func(op OpType, token uint64)
	// Kick, when set, is scheduled KickDelay after every successful READ
	// post or repost — the progress guarantee when a response is lost and no
	// other event would retrigger the caller's issue loop.
	Kick      func()
	KickDelay sim.Duration
	// OnError, when set, observes every typed error completion delivered via
	// CompleteError (NAKs, retry exhaustion, failover dead ends). Credit
	// refusals and Abort cancellations are counted in Stats.Errors but not
	// delivered here: refusals are a hot-path backpressure signal, and Abort
	// drains an unordered index.
	OnError func(CQE, CQStatus)
}

// QP is one queue pair: the per-channel work-queue/completion-queue state.
// Not safe for concurrent use; the simulation is single-threaded per engine.
type QP struct {
	ep      Endpoint
	credits *Credits
	rel     ReliablePoster
	cfg     QPConfig

	byPSN   map[uint32]*WQE // exact-match index (nil in cumulative mode)
	byToken map[uint64]*WQE // token index (nil unless TokenIndex)
	queue   fifo.Queue[*WQE]
	free    *WQE
	live    int  // WQEs posted and not yet retired
	reserve bool // one admission credit reserved, not yet bound to a post

	// Multi-packet READ response reassembly (First/Middle/Last): cur is the
	// WQE being reassembled, partial the accumulated payload.
	cur     *WQE
	partial []byte

	// Doorbell pending ring (nil unless EnableDoorbell); see doorbell.go.
	db *doorbell

	Stats Stats
}

// NewQP binds a queue pair to ep, metered by credits (nil = no admission
// window). cfg fixes the completion discipline.
func NewQP(ep Endpoint, credits *Credits, cfg QPConfig) *QP {
	q := &QP{ep: ep, credits: credits, cfg: cfg}
	if !cfg.Cumulative {
		q.byPSN = make(map[uint32]*WQE)
	}
	if cfg.TokenIndex {
		q.byToken = make(map[uint64]*WQE)
	}
	return q
}

// Credits returns the QP's admission window (nil when unmetered).
func (q *QP) Credits() *Credits { return q.credits }

// Endpoint returns the wire beneath the QP. Mirroring layers use it to peek
// the next PSN before delegating a post.
func (q *QP) Endpoint() Endpoint { return q.ep }

// SetReliable routes future PostFetchAdd calls through r (reliable mode);
// loss recovery moves to r's retransmit window.
func (q *QP) SetReliable(r ReliablePoster) { q.rel = r }

// Pending reports WQEs posted and not yet completed or expired.
func (q *QP) Pending() int { return q.live }

// CanPost reports whether a credit is available, without counting a
// refusal. Issue loops use it as their continuation condition.
func (q *QP) CanPost() bool { return q.credits == nil || q.credits.CanAcquire() }

// TokenPending reports whether a WQE with this token is in flight
// (TokenIndex QPs only).
func (q *QP) TokenPending(token uint64) bool {
	_, ok := q.byToken[token]
	return ok
}

// TryReserve takes one admission credit ahead of a post (a later CreditAdmit
// or CreditLoose post binds it), counting a refusal against op. With no
// window it trivially succeeds.
func (q *QP) TryReserve(op OpType) bool {
	if q.credits == nil || q.reserve {
		return true
	}
	if !q.credits.TryAcquire() {
		q.refused(op)
		return false
	}
	q.reserve = true
	return true
}

// DropReservation returns a reserved credit that never bound to a post
// (e.g. the request turned out to be malformed).
func (q *QP) DropReservation() {
	if q.reserve {
		q.reserve = false
		q.credits.Release()
	}
}

// admit consumes the reservation or takes a fresh credit. took reports
// whether a credit is actually held; ok whether the post may proceed.
func (q *QP) admit(op OpType) (took, ok bool) {
	if q.credits == nil {
		return false, true
	}
	if q.reserve {
		q.reserve = false
		return true, true
	}
	//gem:credit-ok admit hands the credit to the posting path; completion or the reaper releases it
	if q.credits.TryAcquire() {
		return true, true
	}
	q.refused(op)
	return false, false
}

// refused records an admission-window refusal: the per-op counter plus the
// typed CreditRefused error class.
func (q *QP) refused(op OpType) {
	q.statsFor(op).Refused++
	q.Stats.Errors.CreditRefused++
}

// get pops a WQE from the freelist (or allocates on a cold start).
func (q *QP) get() *WQE {
	if w := q.free; w != nil {
		q.free = w.next
		*w = WQE{}
		return w
	}
	return &WQE{}
}

func (q *QP) put(w *WQE) {
	w.next = q.free
	q.free = w
}

func (q *QP) statsFor(op OpType) *OpStats {
	switch op {
	case OpWrite:
		return &q.Stats.Write
	case OpFetchAdd:
		return &q.Stats.FetchAdd
	}
	return &q.Stats.Read
}

// track records a posted READ as an in-flight WQE.
func (q *QP) track(token uint64, offset, n int, respPkts, psn uint32, hasCredit bool) {
	w := q.get()
	w.Op, w.Token = OpRead, token
	w.Offset, w.Len, w.RespPkts = offset, n, respPkts
	w.PSN = psn
	w.Issued = q.ep.Now()
	w.hasCredit = hasCredit
	q.byPSN[psn] = w
	if q.cfg.TokenIndex {
		q.byToken[token] = w
	}
	if q.cfg.Reap && hasCredit {
		w.queued = true
		q.queue.Push(w)
	}
	q.live++
}

// retire marks a WQE complete: tracking removed, credit released exactly
// once. The caller freelists it (immediately, or when the FIFO pops it).
func (q *QP) retire(w *WQE) {
	w.done = true
	if q.byPSN != nil {
		delete(q.byPSN, w.PSN)
	}
	if q.cfg.TokenIndex {
		delete(q.byToken, w.Token)
	}
	if w.hasCredit {
		q.credits.Release()
	}
	q.live--
}

func (q *QP) scheduleKick() {
	if q.cfg.Kick != nil {
		q.ep.Schedule(q.cfg.KickDelay, q.cfg.Kick)
	}
}

// PostRead posts a READ work request under the given credit policy: PSNs
// are recorded, the frame injected, and the WQE tracked for exact-PSN
// completion. It reports whether the request is in flight (CreditTry) or
// was issued (CreditAdmit / CreditLoose; see the mode docs for tracking).
func (q *QP) PostRead(token uint64, offset, n int, respPkts uint32, mode CreditMode) bool {
	switch mode {
	case CreditTry:
		if q.credits != nil && !q.credits.TryAcquire() {
			q.refused(OpRead)
			return false
		}
		psn := q.ep.PSN()
		if !q.ep.Read(offset, n, respPkts) {
			if q.credits != nil {
				q.credits.Release()
			}
			return false
		}
		q.track(token, offset, n, respPkts, psn, q.credits != nil)
		q.Stats.Read.Posted++
		q.scheduleKick()
		return true

	case CreditAdmit:
		took, ok := q.admit(OpRead)
		if !ok {
			return false
		}
		psn := q.ep.PSN()
		// The issue is deliberate even if the egress refuses the frame:
		// the WQE is tracked and the reaper (or a response to a retry)
		// recovers — self-healing either way.
		q.ep.Read(offset, n, respPkts)
		q.track(token, offset, n, respPkts, psn, took)
		q.Stats.Read.Posted++
		q.scheduleKick()
		return true

	default: // CreditLoose
		psn := q.ep.PSN()
		q.ep.Read(offset, n, respPkts)
		q.Stats.Read.Posted++
		if took, _ := q.admit(OpRead); took {
			q.track(token, offset, n, respPkts, psn, true)
		}
		q.scheduleKick()
		return true
	}
}

// PostWrite posts an unsignaled WRITE: no completion is expected and no WQE
// is tracked (the write is fire-and-forget at the transport; callers
// needing reliability route through the Retransmitter). It reports whether
// the frame reached the egress.
func (q *QP) PostWrite(offset int, payload []byte) bool {
	q.Stats.Write.Posted++
	return q.ep.Write(offset, payload)
}

// PostFetchAdd posts a Fetch-and-Add for cumulative completion. The caller
// has already checked CanPost; the credit is taken after a successful post,
// so a refused frame (egress full, retransmit window full) consumes no
// credit. False means nothing was sent and the caller should stop issuing
// until the next event.
func (q *QP) PostFetchAdd(offset int, delta uint64) bool {
	var psn uint32
	if q.rel != nil {
		if !q.rel.CanSend() {
			return false // retransmit window full; an ACK will retrigger
		}
		psn = q.rel.FetchAdd(offset, delta)
	} else {
		var ok bool
		psn, ok = q.ep.FetchAdd(offset, delta)
		if !ok {
			return false // memory-link egress full; retry on next event
		}
	}
	w := q.get()
	w.Op = OpFetchAdd
	w.PSN = psn
	w.Issued = q.ep.Now()
	if q.credits != nil {
		q.credits.Acquire()
		w.hasCredit = true
	}
	w.queued = true
	q.queue.Push(w)
	q.live++
	q.Stats.FetchAdd.Posted++
	return true
}

// Repost re-issues the READ tracked under token with fresh PSNs, reusing
// the credit the WQE already holds. On an egress refusal the old tracking
// (and PSN mapping) is kept — the caller retries on a later event.
func (q *QP) Repost(token uint64) bool {
	w, ok := q.byToken[token]
	if !ok {
		return false
	}
	psn := q.ep.PSN()
	if !q.ep.Read(w.Offset, w.Len, w.RespPkts) {
		return false
	}
	// After a Retarget the new endpoint's PSN space restarts, so this WQE's
	// stale key may already have been claimed by a sibling's repost — only
	// unmap the old PSN if it still points at us.
	if q.byPSN[w.PSN] == w {
		delete(q.byPSN, w.PSN)
	}
	w.PSN = psn
	w.Issued = q.ep.Now()
	q.byPSN[psn] = w
	q.Stats.Read.Retried++
	q.scheduleKick()
	return true
}

// CompleteExact retires the WQE whose request PSN is psn, releasing its
// credit. A miss (stale or duplicate response, or a packet that is not the
// first of its response) is counted and reported.
func (q *QP) CompleteExact(psn uint32) (CQE, bool) {
	w, ok := q.byPSN[psn]
	if !ok || w.done {
		q.Stats.Read.Stale++
		return CQE{}, false
	}
	cqe := CQE{Op: w.Op, Token: w.Token, PSN: psn}
	q.statsFor(w.Op).Completed++
	q.Stats.Latency.Observe(q.ep.Now().Sub(w.Issued))
	q.retire(w)
	if !w.queued {
		q.put(w)
	}
	return cqe, true
}

// CompleteError delivers a typed error completion: the CQE identifies the
// faulted request (or request stream position, for stream-level faults like
// a NAK), st classifies it, the matching Stats.Errors counter advances, and
// the configured OnError consumer — typically a supervisor — observes it.
// Error completions do not retire WQEs: the retransmitter or failover engine
// that reported the fault still owns recovery of the in-flight work.
func (q *QP) CompleteError(op OpType, token uint64, psn uint32, st CQStatus) CQE {
	cqe := CQE{Op: op, Token: token, PSN: psn}
	switch st {
	case CQNakPSN:
		q.Stats.Errors.NakPSN++
	case CQNakRKey:
		q.Stats.Errors.NakRKey++
	case CQRetryExhausted:
		q.Stats.Errors.RetryExhausted++
	case CQCreditRefused:
		q.Stats.Errors.CreditRefused++
	case CQFailoverExhausted:
		q.Stats.Errors.FailoverExhausted++
	case CQCanceled:
		q.Stats.Errors.Canceled++
	case CQReplicaLost:
		q.Stats.Errors.ReplicaLost++
	}
	if q.cfg.OnError != nil {
		q.cfg.OnError(cqe, st)
	}
	return cqe
}

// AckCumulative retires every WQE at or before psn in 24-bit sequence
// space (a cumulative ACK: anything before the echoed PSN was answered, or
// lost and answered later). It returns the number retired.
func (q *QP) AckCumulative(psn uint32) int {
	n := 0
	for q.queue.Len() > 0 {
		w := q.queue.Peek()
		if w.done {
			q.put(q.queue.Pop())
			continue
		}
		if PSNAfter(w.PSN, psn) {
			break
		}
		q.queue.Pop()
		q.statsFor(w.Op).Completed++
		q.Stats.Latency.Observe(q.ep.Now().Sub(w.Issued))
		q.retire(w)
		q.put(w)
		n++
	}
	return n
}

// ReadResponse consumes one READ response packet for an exact-match QP,
// reassembling multi-packet responses (First/Middle/Last) per the RoCE
// segmentation contract: the First/Only packet echoes the request PSN. On
// CQDone the returned payload is the full entry; it aliases transport
// scratch (or the response frame) and is valid only within the current
// event — callers retain by copying.
func (q *QP) ReadResponse(pkt *wire.Packet) (CQE, []byte, CQStatus) {
	switch pkt.BTH.Opcode {
	case wire.OpReadResponseOnly:
		w, ok := q.byPSN[pkt.BTH.PSN]
		if !ok || w.done {
			q.Stats.Read.Stale++
			return CQE{}, nil, CQStale
		}
		cqe := CQE{Op: w.Op, Token: w.Token, PSN: pkt.BTH.PSN}
		q.Stats.Read.Completed++
		q.Stats.Latency.Observe(q.ep.Now().Sub(w.Issued))
		q.retire(w)
		if !w.queued {
			q.put(w)
		}
		return cqe, pkt.Payload, CQDone

	case wire.OpReadResponseFirst:
		w, ok := q.byPSN[pkt.BTH.PSN]
		if !ok || w.done {
			// A stale First also cancels any reassembly in progress: the
			// response stream moved on.
			q.Stats.Read.Stale++
			q.cur = nil
			return CQE{}, nil, CQStale
		}
		q.cur = w
		q.partial = append(q.partial[:0], pkt.Payload...)
		return CQE{}, nil, CQNone

	case wire.OpReadResponseMiddle:
		if q.cur != nil {
			q.partial = append(q.partial, pkt.Payload...)
		}
		return CQE{}, nil, CQNone

	case wire.OpReadResponseLast:
		w := q.cur
		if w == nil {
			return CQE{}, nil, CQNone
		}
		// Reassemble in place and hand out the scratch: the entry is valid
		// until the next response is dispatched, and consumers that retain
		// it copy (PacketBuffer.finishEntry's copy-on-retain). Growing a
		// fresh slice here instead would put an allocation on every
		// multi-packet completion.
		q.partial = append(q.partial, pkt.Payload...)
		entry := q.partial
		q.cur = nil
		if w.done {
			q.Stats.Read.Stale++
			return CQE{}, nil, CQStale
		}
		cqe := CQE{Op: w.Op, Token: w.Token, PSN: w.PSN}
		q.Stats.Read.Completed++
		q.Stats.Latency.Observe(q.ep.Now().Sub(w.Issued))
		q.retire(w)
		if !w.queued {
			q.put(w)
		}
		return cqe, entry, CQDone
	}
	return CQE{}, nil, CQNone
}

// ReapExpired walks the FIFO releasing the credit of every WQE older than
// Timeout (Reap QPs): the request or its response was lost, and the
// caller's recovery is to issue again. Expired WQEs drop out of the token
// index, so TokenPending turns false and a fresh post is admitted.
func (q *QP) ReapExpired() int {
	if !q.cfg.Reap || q.cfg.Timeout <= 0 {
		return 0
	}
	now := q.ep.Now()
	n := 0
	for q.queue.Len() > 0 {
		w := q.queue.Peek()
		if w.done {
			q.put(q.queue.Pop())
			continue
		}
		if now.Sub(w.Issued) <= q.cfg.Timeout {
			break
		}
		q.queue.Pop()
		q.statsFor(w.Op).Expired++
		op, token := w.Op, w.Token
		q.retire(w)
		q.put(w)
		n++
		if q.cfg.OnExpired != nil {
			q.cfg.OnExpired(op, token)
		}
	}
	return n
}

// AppendExpired appends the tokens of every WQE older than Timeout to buf
// (TokenIndex QPs): the repost discipline, where the caller sorts the
// merged set and re-issues each via Repost for a reproducible PSN order.
func (q *QP) AppendExpired(buf []uint64) []uint64 {
	if q.cfg.Timeout <= 0 || q.live == 0 {
		return buf
	}
	now := q.ep.Now()
	//gem:deterministic — collecting keys for sorting is order-independent
	for _, w := range q.byToken {
		if now.Sub(w.Issued) > q.cfg.Timeout {
			buf = append(buf, w.Token)
		}
	}
	return buf
}

// Abort abandons every in-flight WQE, returning held credits to the
// current window — the rebind path when the peer is gone and nothing will
// ever answer. Each abandoned WQE counts a Canceled typed error (no OnError
// delivery: the PSN index drains in unordered map order).
func (q *QP) Abort() {
	for q.queue.Len() > 0 {
		w := q.queue.Pop()
		if !w.done {
			q.Stats.Errors.Canceled++
			q.retire(w)
		}
		q.put(w)
	}
	if q.byPSN != nil {
		//gem:deterministic — draining every entry is order-independent
		for _, w := range q.byPSN {
			if !w.done {
				q.Stats.Errors.Canceled++
				q.retire(w)
				q.put(w)
			}
		}
		clear(q.byPSN)
	}
	if q.byToken != nil {
		clear(q.byToken)
	}
	q.cur = nil
	q.live = 0
}

// Rebind points the QP at a new endpoint and admission window (server
// failover). The caller aborts or retargets in-flight work first. Doorbell
// entries survive untouched: they are deferred intent, not in-flight work,
// and flush exactly once to the new endpoint when their trigger fires.
func (q *QP) Rebind(ep Endpoint, credits *Credits) {
	q.ep = ep
	q.credits = credits
}

// Retarget points the QP at a new endpoint WITHOUT abandoning in-flight
// work — the failover path for READ workloads whose requests must
// eventually be satisfied (TokenIndex QPs). Every live WQE's held credit
// moves from the old window to the new one, and its token is appended to
// buf for the caller to sort and re-issue via Repost against the new
// endpoint. Responses still arriving from the old endpoint complete as
// stale.
func (q *QP) Retarget(ep Endpoint, credits *Credits, buf []uint64) []uint64 {
	//gem:deterministic — credit moves and key collection are order-independent
	for _, w := range q.byToken {
		if w.done {
			continue
		}
		if w.hasCredit && q.credits != credits {
			q.credits.Release()
			credits.Acquire()
		}
		buf = append(buf, w.Token)
	}
	q.ep = ep
	q.credits = credits
	return buf
}
