package verbs

import "gem/internal/sim"

// Doorbell-batched posting: Post* at ~zero cost, one flush pass per batch.
//
// Real NICs separate "enqueue a WQE" (a store into host memory) from
// "doorbell" (one MMIO write that hands the NIC a whole batch). The same
// split pays off here: DeferFetchAdd appends into a preallocated per-QP
// pending ring without building a frame, same-offset deltas coalesce in
// place while they wait, and Ring() walks the ring once, turning each entry
// into a wire FAA. The ring is the transport-level home for the paper's
// "combine k updates into one operation, at the cost of some delay"
// batching knob: an entry posts when its coalesced delta reaches
// FlushDelta (the StateStore maps Config.Batch here), when the ring fills,
// when MaxAge elapses, or when the owner flushes explicitly at the end of a
// pipeline pass.
//
// Exactly-once per delta: an entry leaves the ring at the instant its WQE
// is posted (bound to a PSN), so no later trigger — age timer, duplicate
// Ring, post-failover flush — can re-post it. Entries that were never
// posted survive Abort/Rebind untouched: they are deferred caller intent,
// not in-flight work, and flush exactly once to whichever endpoint is
// current when their trigger fires.

// DoorbellConfig tunes a QP's pending ring.
type DoorbellConfig struct {
	// MaxPending is the ring capacity in distinct offsets. A deferral that
	// finds the ring full forces a flush first (size trigger). Default 32.
	MaxPending int
	// MaxAge bounds how long a deferred delta may wait: the first deferral
	// into an idle ring arms a timer that flushes the whole ring when it
	// fires. 0 disables the age trigger.
	MaxAge sim.Duration
	// FlushDelta posts an entry as soon as its coalesced delta reaches this
	// value — the batching factor k. Only the ripe entry posts; its
	// neighbours keep coalescing. 0 disables the delta trigger.
	FlushDelta uint64
}

// DoorbellStats counts pending-ring traffic.
type DoorbellStats struct {
	Deferred  int64 // deltas accepted into the ring
	Coalesced int64 // deltas merged into a resident same-offset entry
	Rings     int64 // full-ring flush passes (explicit, size or age trigger)
	Flushed   int64 // WQEs posted out of the ring (frames on the wire)
}

type dbEntry struct {
	offset int
	delta  uint64
}

type doorbell struct {
	cfg     DoorbellConfig
	entries []dbEntry // entries[:n], in deferral order
	n       int
	urgent  bool // a triggered flush was cut short; retry on RingUrgent
	armed   bool // age timer scheduled
	flushFn func()
	Stats   DoorbellStats
}

// EnableDoorbell attaches a pending ring to the QP. The ring and its timer
// callback are allocated once, here, so the defer/ring/complete cycle stays
// allocation-free.
func (q *QP) EnableDoorbell(cfg DoorbellConfig) {
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 32
	}
	q.db = &doorbell{cfg: cfg, entries: make([]dbEntry, cfg.MaxPending)}
	q.db.flushFn = q.ringFromTimer
}

// DoorbellEnabled reports whether the QP has a pending ring.
func (q *QP) DoorbellEnabled() bool { return q.db != nil }

// DoorbellPending returns the number of entries resident in the ring.
func (q *QP) DoorbellPending() int {
	if q.db == nil {
		return 0
	}
	return q.db.n
}

// DoorbellDelta sums the deltas resident in the ring — deferred but not yet
// on the wire.
func (q *QP) DoorbellDelta() uint64 {
	if q.db == nil {
		return 0
	}
	var d uint64
	for i := 0; i < q.db.n; i++ {
		d += q.db.entries[i].delta
	}
	return d
}

// DoorbellDeltaAt returns the resident delta for one offset.
func (q *QP) DoorbellDeltaAt(offset int) uint64 {
	if q.db == nil {
		return 0
	}
	for i := 0; i < q.db.n; i++ {
		if q.db.entries[i].offset == offset {
			return q.db.entries[i].delta
		}
	}
	return 0
}

// DoorbellStatsSnapshot returns the ring's counters.
func (q *QP) DoorbellStatsSnapshot() DoorbellStats {
	if q.db == nil {
		return DoorbellStats{}
	}
	return q.db.Stats
}

// DeferFetchAdd enqueues a Fetch-and-Add into the pending ring without
// building a frame. A resident entry for the same offset absorbs the delta
// in place; a fresh offset takes a ring slot. Returns false only when the
// ring is full and a forced flush could not free a slot (credits gated or
// egress refused) — the caller keeps the delta in its own pending state and
// retries after the next completion.
func (q *QP) DeferFetchAdd(offset int, delta uint64) bool {
	db := q.db
	for i := 0; i < db.n; i++ {
		if db.entries[i].offset == offset {
			db.entries[i].delta += delta
			db.Stats.Deferred++
			db.Stats.Coalesced++
			if db.cfg.FlushDelta > 0 && db.entries[i].delta >= db.cfg.FlushDelta {
				q.flushEntry(i)
			}
			return true
		}
	}
	if db.n == len(db.entries) {
		q.Ring()
		if db.n == len(db.entries) {
			return false
		}
	}
	db.entries[db.n] = dbEntry{offset: offset, delta: delta}
	db.n++
	db.Stats.Deferred++
	if db.cfg.FlushDelta > 0 && delta >= db.cfg.FlushDelta {
		q.flushEntry(db.n - 1)
		return true
	}
	if db.cfg.MaxAge > 0 && !db.armed {
		db.armed = true
		q.ep.Schedule(db.cfg.MaxAge, db.flushFn)
	}
	return true
}

// flushEntry posts ring entry i alone (the FlushDelta ripeness trigger:
// that entry has a full batch, its neighbours keep coalescing). On refusal
// the entry stays resident and the ring is marked urgent.
func (q *QP) flushEntry(i int) {
	db := q.db
	if !q.CanPost() || !q.PostFetchAdd(db.entries[i].offset, db.entries[i].delta) {
		db.urgent = true
		return
	}
	db.Stats.Flushed++
	copy(db.entries[i:db.n-1], db.entries[i+1:db.n])
	db.n--
}

// Ring flushes the whole pending ring: entries post in deferral order until
// the transport refuses. Each posted entry leaves the ring immediately — a
// delta binds to a PSN exactly once, so a duplicate Ring (age timer firing
// after an explicit flush, a flush after failover rebind) can never re-post
// it. A cut-short flush marks the ring urgent; leftovers retry on
// RingUrgent (typically the owner's ACK path) or the next trigger. Returns
// the number of WQEs posted.
func (q *QP) Ring() int {
	db := q.db
	if db == nil || db.n == 0 {
		return 0
	}
	db.Stats.Rings++
	posted := 0
	for posted < db.n {
		e := db.entries[posted]
		if !q.CanPost() || !q.PostFetchAdd(e.offset, e.delta) {
			break
		}
		posted++
	}
	if posted > 0 {
		copy(db.entries[:db.n-posted], db.entries[posted:db.n])
		db.n -= posted
		db.Stats.Flushed += int64(posted)
	}
	db.urgent = db.n > 0
	return posted
}

// RingUrgent flushes only if a previous triggered flush was cut short,
// leaving still-accumulating batches to their own triggers.
func (q *QP) RingUrgent() int {
	if q.db == nil || !q.db.urgent {
		return 0
	}
	return q.Ring()
}

// ringFromTimer is the MaxAge callback: flush everything old enough to have
// been resident a full period, and re-arm while entries remain.
func (q *QP) ringFromTimer() {
	db := q.db
	db.armed = false
	q.Ring()
	if db.n > 0 && db.cfg.MaxAge > 0 {
		db.armed = true
		q.ep.Schedule(db.cfg.MaxAge, db.flushFn)
	}
}
