package verbs

// 24-bit packet sequence number arithmetic, shared by every layer that
// compares PSNs: the transport's cumulative completion, the Retransmitter's
// retire/NAK logic, and the RNIC responder's expected-PSN admission. One
// definition means one wraparound contract (see the wraparound tests).

// PSNMask is the 24-bit PSN space; every stored PSN is masked to it.
const PSNMask = 0xFFFFFF

// PSNAfter reports whether a is strictly after b in 24-bit sequence space:
// the signed 24-bit distance from b to a is positive. Exactly half the
// space (1<<23) compares "before", so the comparison stays correct across
// the 0xFFFFFF→0 wrap as long as windows span less than 2^23 PSNs.
func PSNAfter(a, b uint32) bool {
	return a != b && (a-b)&PSNMask < 1<<23
}
