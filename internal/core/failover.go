package core

import (
	"fmt"

	"gem/internal/sim"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// Failover addresses the last §7 open problem — "improve the robustness of
// the architecture by handling switch and server failures" — for the
// memory-server side: the switch control plane provisions channels to a
// primary and one or more standby servers, the data plane heartbeats the
// active one with tiny RDMA READs, and when heartbeats go unanswered the
// primitive is rebound to the next standby. State stored only on the dead
// server is lost (remote memory is a performance tier, not durable
// storage); the accounting below makes that loss measurable.
type Failover struct {
	sw       *switchsim.Switch
	channels []*Channel
	active   int

	// HeartbeatInterval paces the liveness probes (default 100 µs).
	HeartbeatInterval sim.Duration
	// MissThreshold consecutive unanswered heartbeats declare the server
	// dead (default 3).
	MissThreshold int

	// Inner receives every non-heartbeat response for the active channel.
	Inner ResponseHandler
	// OnFailover is invoked after the switchover with the old and new
	// channels; primitives rebind here (e.g. StateStore.Rebind).
	OnFailover func(old, new *Channel)

	hbPSNs  map[uint32]bool // outstanding heartbeat READ PSNs (active channel)
	misses  int
	started bool
	stopped bool

	// Stats.
	HeartbeatsSent  int64
	HeartbeatsAcked int64
	Failovers       int64
	// LastDetection is the time between the first missed heartbeat of the
	// failure and the switchover.
	LastDetection sim.Duration
	firstMissAt   sim.Time
}

// NewFailover builds a failover group over channels (primary first). All
// channels should have a readable word at offset 0.
func NewFailover(channels []*Channel, inner ResponseHandler) (*Failover, error) {
	if len(channels) < 2 {
		return nil, fmt.Errorf("core: failover needs a primary and at least one standby")
	}
	return &Failover{
		sw:                channels[0].sw,
		channels:          channels,
		HeartbeatInterval: 100 * sim.Microsecond,
		MissThreshold:     3,
		Inner:             inner,
		hbPSNs:            make(map[uint32]bool),
	}, nil
}

// Active returns the channel currently in use.
func (f *Failover) Active() *Channel { return f.channels[f.active] }

// Standbys returns how many unused channels remain.
func (f *Failover) Standbys() int { return len(f.channels) - 1 - f.active }

// RegisterWith binds every member channel's responses to the failover
// group (heartbeat filtering happens here; the rest reaches Inner).
func (f *Failover) RegisterWith(d *Dispatcher) {
	for _, ch := range f.channels {
		d.Register(ch, f)
	}
}

// Start begins heartbeating. Call once after registration.
func (f *Failover) Start() {
	if f.started {
		return
	}
	f.started = true
	f.sw.Engine.Ticker(f.HeartbeatInterval, func() bool {
		if f.stopped {
			return false
		}
		f.tick()
		return true
	})
}

// Stop ends heartbeating at the next tick. The group can not be restarted;
// it exists so a simulation can wind down to quiescence (an active ticker
// keeps the event queue non-empty forever).
func (f *Failover) Stop() { f.stopped = true }

func (f *Failover) tick() {
	// Unanswered probe from last tick = a miss.
	if len(f.hbPSNs) > 0 {
		if f.misses == 0 {
			f.firstMissAt = f.sw.Engine.Now().Add(-f.HeartbeatInterval)
		}
		f.misses++
		f.hbPSNs = make(map[uint32]bool)
		if f.misses >= f.MissThreshold {
			f.failover()
			return
		}
	} else {
		f.misses = 0
	}
	ch := f.Active()
	psn := ch.PSN()
	if ch.Read(0, 8, 1) {
		f.hbPSNs[psn] = true
		f.HeartbeatsSent++
	}
}

func (f *Failover) failover() {
	if f.active+1 >= len(f.channels) {
		return // no standby left; keep probing the dead primary
	}
	old := f.Active()
	f.active++
	f.misses = 0
	f.hbPSNs = make(map[uint32]bool)
	f.Failovers++
	f.LastDetection = f.sw.Engine.Now().Sub(f.firstMissAt)
	if f.OnFailover != nil {
		f.OnFailover(old, f.Active())
	}
}

// HandleResponse filters heartbeat READ responses and forwards everything
// else to Inner.
func (f *Failover) HandleResponse(ctx *switchsim.Context, pkt *wire.Packet) {
	if pkt.BTH.Opcode.IsReadResponse() && f.hbPSNs[pkt.BTH.PSN] &&
		pkt.BTH.DestQP == f.Active().ID {
		delete(f.hbPSNs, pkt.BTH.PSN)
		f.HeartbeatsAcked++
		f.misses = 0
		ctx.Drop()
		return
	}
	if f.Inner != nil {
		f.Inner.HandleResponse(ctx, pkt)
		return
	}
	ctx.Drop()
}
