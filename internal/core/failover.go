package core

import (
	"fmt"

	"gem/internal/core/verbs"
	"gem/internal/sim"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// Failover addresses the last §7 open problem — "improve the robustness of
// the architecture by handling switch and server failures" — for the
// memory-server side: the switch control plane provisions channels to a
// primary and one or more standby servers, the data plane heartbeats the
// active one with tiny RDMA READs, and when heartbeats go unanswered the
// primitive is rebound to the next standby. State stored only on the dead
// server is lost (remote memory is a performance tier, not durable
// storage); the accounting below makes that loss measurable.
//
// Members that were failed away from keep being probed on their own
// channels; when a higher-priority member answers FailbackThreshold probes
// in a row the group fails back to it. When every member is dead the group
// enters the Exhausted state (keeps probing, fires OnRecover when the
// active member comes back) instead of silently wedging.
type Failover struct {
	sw      *switchsim.Switch
	members []*foMember
	active  int

	// HeartbeatInterval paces the liveness probes (default 100 µs).
	HeartbeatInterval sim.Duration
	// MissThreshold consecutive unanswered heartbeats declare the server
	// dead (default 3).
	MissThreshold int
	// FailbackThreshold consecutive answered probes from a recovered
	// higher-priority member trigger failback to it (default 3).
	FailbackThreshold int

	// Inner receives every non-heartbeat response for the active channel.
	Inner ResponseHandler
	// OnFailover is invoked after every switchover — failover or failback —
	// with the old and new channels; primitives rebind here (e.g.
	// StateStore.Rebind). Since the work-queue refactor the rebind flows
	// through the shared transport: the primitive aborts its QP (returning
	// in-flight credits), points it at the new channel, and re-posts pending
	// work from its durable intent (the dirty set) — no primitive replays a
	// private outstanding-op table anymore.
	OnFailover func(old, new *Channel)
	// OnRecover fires when the active member answers again after the group
	// was Exhausted.
	OnRecover func(ch *Channel)
	// CQ, when set, receives a typed CQFailoverExhausted completion each time
	// failover looks for a standby and finds none — the observable form of
	// the Exhausted flag, so a supervisor can react to the dead-end on its
	// error-rate surface instead of polling. Nil keeps the legacy behavior.
	CQ *verbs.QP

	// Exhausted is set when failover finds no standby left: every member is
	// presumed dead and the group is degraded to probing until something
	// answers.
	Exhausted bool

	misses  int
	started bool
	stopped bool

	// Stats.
	HeartbeatsSent  int64
	HeartbeatsAcked int64
	Failovers       int64
	Failbacks       int64
	FailbackProbes  int64
	FailbackAcks    int64
	// ForcedWhileExhausted counts ForceFailover calls that arrived after the
	// group was already Exhausted — each is a no-op with a typed
	// CQFailoverExhausted completion, never a rebind to the dead primary.
	ForcedWhileExhausted int64
	// StaleDropped counts responses addressed to a non-active member's
	// channel that were discarded instead of reaching Inner.
	StaleDropped int64
	// LastDetection is the time between the first missed heartbeat of the
	// failure and the switchover.
	LastDetection sim.Duration
	firstMissAt   sim.Time
}

// foMember tracks one channel's probe state. Outstanding probe PSNs are kept
// per member and never wholesale-cleared, so a response can always be matched
// to the member it belongs to — the fix for stale heartbeats of a dead
// ex-primary leaking through to Inner after a switchover.
type foMember struct {
	ch     *Channel
	probes map[uint32]bool
	order  []uint32 // FIFO of outstanding probe PSNs, for bounded pruning
	// lastPSN remembers the most recent probe. Liveness judgements look only
	// at it: older unanswered probes from a past outage linger in the map
	// (until pruned) and must not keep counting as fresh misses after the
	// server is answering again.
	lastPSN uint32
	hasLast bool
	// dead marks a member the group failed away from; it is probed for
	// failback. consec counts its consecutive answered probes.
	dead   bool
	consec int
}

// maxOutstandingProbes bounds each member's probe map; the oldest PSNs are
// forgotten first (their late answers then count as stale drops).
const maxOutstandingProbes = 128

func (m *foMember) addProbe(psn uint32) {
	if len(m.order) >= maxOutstandingProbes {
		delete(m.probes, m.order[0])
		m.order = m.order[1:]
	}
	m.probes[psn] = true
	m.order = append(m.order, psn)
	m.lastPSN = psn
	m.hasLast = true
}

// lastUnanswered reports whether the most recent probe is still outstanding.
func (m *foMember) lastUnanswered() bool { return m.hasLast && m.probes[m.lastPSN] }

// NewFailover builds a failover group over channels (primary first). All
// channels should have a readable word at offset 0.
func NewFailover(channels []*Channel, inner ResponseHandler) (*Failover, error) {
	if len(channels) < 2 {
		return nil, fmt.Errorf("core: failover needs a primary and at least one standby")
	}
	members := make([]*foMember, len(channels))
	for i, ch := range channels {
		members[i] = &foMember{ch: ch, probes: make(map[uint32]bool)}
	}
	return &Failover{
		sw:                channels[0].sw,
		members:           members,
		HeartbeatInterval: 100 * sim.Microsecond,
		MissThreshold:     3,
		FailbackThreshold: 3,
		Inner:             inner,
	}, nil
}

// Active returns the channel currently in use.
func (f *Failover) Active() *Channel { return f.members[f.active].ch }

// Standbys returns how many unused channels remain.
func (f *Failover) Standbys() int { return len(f.members) - 1 - f.active }

// RegisterWith binds every member channel's responses to the failover
// group (heartbeat filtering happens here; the rest reaches Inner).
func (f *Failover) RegisterWith(d *Dispatcher) {
	for _, m := range f.members {
		d.Register(m.ch, f)
	}
}

// Start begins heartbeating. Call once after registration.
func (f *Failover) Start() {
	if f.started {
		return
	}
	f.started = true
	f.sw.Engine.Ticker(f.HeartbeatInterval, func() bool {
		if f.stopped {
			return false
		}
		f.tick()
		return true
	})
}

// Stop ends heartbeating at the next tick. The group can not be restarted;
// it exists so a simulation can wind down to quiescence (an active ticker
// keeps the event queue non-empty forever).
func (f *Failover) Stop() { f.stopped = true }

func (f *Failover) tick() {
	act := f.members[f.active]
	// Unanswered probe from last tick = a miss.
	if act.lastUnanswered() {
		if f.misses == 0 {
			f.firstMissAt = f.sw.Engine.Now().Add(-f.HeartbeatInterval)
		}
		f.misses++
		if f.misses >= f.MissThreshold && !f.Exhausted {
			f.failover()
			act = f.members[f.active]
		}
	} else {
		f.misses = 0
	}
	if psn := act.ch.PSN(); act.ch.Read(0, 8, 1) {
		act.addProbe(psn)
		f.HeartbeatsSent++
	}
	// Probe dead ex-members on their own channels so a recovered
	// higher-priority server can be failed back to.
	for i, m := range f.members {
		if i == f.active || !m.dead {
			continue
		}
		if m.lastUnanswered() {
			m.consec = 0 // the newest failback probe went unanswered
		}
		if psn := m.ch.PSN(); m.ch.Read(0, 8, 1) {
			m.addProbe(psn)
			f.FailbackProbes++
		}
	}
}

func (f *Failover) failover() {
	if f.active+1 >= len(f.members) {
		// No standby left. Degrade explicitly: remember we are exhausted,
		// reset the miss counter, and keep probing the (dead) active member
		// so recovery is noticed — do not count phantom failovers.
		wasExhausted := f.Exhausted
		f.Exhausted = true
		f.misses = 0
		if f.CQ != nil && !wasExhausted {
			f.CQ.CompleteError(verbs.OpRead, uint64(f.Active().PSN()), f.Active().PSN(), verbs.CQFailoverExhausted)
		}
		return
	}
	old := f.members[f.active]
	old.dead = true
	old.consec = 0
	f.active++
	f.misses = 0
	f.Failovers++
	f.LastDetection = f.sw.Engine.Now().Sub(f.firstMissAt)
	if f.OnFailover != nil {
		f.OnFailover(old.ch, f.Active())
	}
}

// ForceFailover switches to the next standby immediately, without waiting
// for the miss threshold — the escalation target for
// Retransmitter.OnExhausted. Reports whether a switchover happened.
//
// Once the group is Exhausted a forced failover is a counted no-op: there
// is nothing to switch to, and re-entering failover() would clobber the
// miss clock and re-run the dead-end path. Each such call counts
// ForcedWhileExhausted and emits a typed CQFailoverExhausted completion so
// the caller's escalation is visible on the error-rate surface rather than
// silently rebinding to the dead primary.
func (f *Failover) ForceFailover() bool {
	if f.Exhausted {
		f.ForcedWhileExhausted++
		if f.CQ != nil {
			f.CQ.CompleteError(verbs.OpRead, uint64(f.Active().PSN()), f.Active().PSN(), verbs.CQFailoverExhausted)
		}
		return false
	}
	if f.misses == 0 {
		f.firstMissAt = f.sw.Engine.Now()
	}
	before := f.active
	f.failover()
	return f.active != before
}

// failback returns to recovered member idx (higher priority than active).
func (f *Failover) failback(idx int) {
	old := f.members[f.active]
	recovered := f.members[idx]
	recovered.dead = false
	recovered.consec = 0
	f.active = idx
	f.misses = 0
	f.Failbacks++
	if f.OnFailover != nil {
		f.OnFailover(old.ch, recovered.ch)
	}
}

// HandleResponse filters heartbeat and failback probe responses, drops
// stale responses addressed to non-active members, and forwards the rest to
// Inner.
func (f *Failover) HandleResponse(ctx *switchsim.Context, pkt *wire.Packet) {
	idx := -1
	for i, m := range f.members {
		if m.ch.ID == pkt.BTH.DestQP {
			idx = i
			break
		}
	}
	if idx >= 0 {
		m := f.members[idx]
		if pkt.BTH.Opcode.IsReadResponse() && m.probes[pkt.BTH.PSN] {
			delete(m.probes, pkt.BTH.PSN)
			if idx == f.active {
				f.HeartbeatsAcked++
				f.misses = 0
				if f.Exhausted {
					f.Exhausted = false
					if f.OnRecover != nil {
						f.OnRecover(m.ch)
					}
				}
			} else {
				f.FailbackAcks++
				m.consec++
				if m.dead && idx < f.active && m.consec >= f.FailbackThreshold {
					f.failback(idx)
				}
			}
			ctx.Drop()
			return
		}
		if idx != f.active {
			// A data response on a former member's channel: the primitive
			// rebound at switchover, so forwarding this would corrupt its
			// bookkeeping (e.g. retire the wrong PSN window).
			f.StaleDropped++
			ctx.Drop()
			return
		}
	}
	if f.Inner != nil {
		f.Inner.HandleResponse(ctx, pkt)
		return
	}
	ctx.Drop()
}
