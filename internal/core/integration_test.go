package core

import (
	"testing"

	"gem/internal/netsim"
	"gem/internal/rnic"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// TestAllPrimitivesShareOneSwitch is the capstone integration test: the
// paper's §1 points out that on-switch applications "run on the same switch
// and must share memory with each other and basic forwarding". Here one
// switch runs all three primitives at once under an incast workload:
//
//   - a StateStore counts every data packet (remote counters, mem server 0),
//   - a LookupTable resolves every packet's DSCP action remotely with a
//     local cache (entries on mem server 0, second channel),
//   - a PacketBuffer protects the congested receiver port (rings striped
//     over mem servers 1+2),
//
// and everything must hold simultaneously: no data loss, exact counts,
// actions applied to every delivered packet, order preserved per sender,
// SRAM budget respected, zero server CPU.
func TestAllPrimitivesShareOneSwitch(t *testing.T) {
	// 3 senders + 1 receiver; 3 memory servers.
	b := newBedN(t, 4, 3, switchsim.Config{BufferBytes: 2 << 20}, rnic.Config{MTU: 4096})
	recv := 3

	// State store on memory server 0.
	chCnt := b.establishOn(t, 0, 1<<16, rnic.PSNTolerant, false)
	ss, err := NewStateStore(chCnt, StateStoreConfig{Counters: 256})
	if err != nil {
		t.Fatal(err)
	}
	b.disp.Register(chCnt, ss)

	// Lookup table on memory server 0 (second channel, same RNIC).
	lcfg := LookupConfig{Entries: 512, MaxPktBytes: 1536, CacheEntries: 256}
	chTbl := b.establishOn(t, 0, lcfg.Entries*lcfg.EntrySize(), rnic.PSNTolerant, false)
	lt, err := NewLookupTable(chTbl, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	region := b.memNICs[0].LookupRegion(chTbl.RKey)
	for i := 0; i < lcfg.Entries; i++ {
		if err := PopulateLookupEntry(region, lcfg, i, SetDSCPAction(46)); err != nil {
			t.Fatal(err)
		}
	}
	b.disp.Register(chTbl, lt)

	// Packet buffer striped over memory servers 1 and 2.
	chans := []*Channel{
		b.establishOn(t, 1, 8<<20, rnic.PSNTolerant, false),
		b.establishOn(t, 2, 8<<20, rnic.PSNTolerant, false),
	}
	pb, err := NewPacketBuffer(chans, recv, PacketBufferConfig{
		HighWaterBytes: 48 << 10, LowWaterBytes: 24 << 10,
		MaxOutstandingReads: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	pb.RegisterWith(b.disp)
	b.sw.Hooks = pb

	// The composed "P4 program": after the remote lookup resolves the
	// action, the packet is admitted toward the receiver through the
	// packet buffer.
	lt.Apply = func(ctx *switchsim.Context, frame []byte, action LookupAction) {
		if !lt.ApplyActionOnly(frame, action) {
			ctx.Drop()
			return
		}
		pb.Admit(ctx, frame)
	}
	b.sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if b.disp.Dispatch(ctx) {
			return
		}
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 || ctx.Pkt.IsRoCE {
			ctx.Drop()
			return
		}
		ss.UpdateFlow(wire.FlowOf(ctx.Pkt))
		lt.Lookup(ctx, ctx.Frame, ctx.Pkt)
	})

	// Receiver validation: every packet rewritten, per-flow order kept
	// (the flow's sequence number rides in the UDP payload so all packets
	// of a flow share one 5-tuple and the lookup cache can work).
	type flowID struct {
		src  wire.IP4
		port uint16
	}
	lastSeq := map[flowID]uint16{}
	badDSCP, reordered := 0, 0
	b.hosts[recv].Handler = func(_ *netsim.Port, frame []byte) {
		var p wire.Packet
		if err := p.DecodeFromBytes(frame); err != nil || !p.HasIPv4 || len(p.Payload) < 2 {
			return
		}
		if p.IP.DSCP != 46 {
			badDSCP++
		}
		seq := uint16(p.Payload[0])<<8 | uint16(p.Payload[1])
		id := flowID{p.IP.Src, p.UDP.SrcPort}
		if prev, ok := lastSeq[id]; ok && seq != prev+1 {
			reordered++
		}
		lastSeq[id] = seq
	}

	// 3 senders × 8 flows each. Prime the cache with one packet per flow
	// (a lookup primitive has exactly one remote entry per flow; the
	// paper's design assumes the local cache absorbs same-flow misses, so
	// concurrent first-packets of one flow are the uncached corner).
	const flows = 8
	mkFrame := func(sender, flow, seq int) []byte {
		return wire.BuildDataFrame(b.hosts[sender].MAC, b.hosts[recv].MAC,
			b.hosts[sender].IP, b.hosts[recv].IP,
			uint16(1000+flow), 9999, 1500, []byte{byte(seq >> 8), byte(seq)})
	}
	for s := 0; s < 3; s++ {
		for f := 0; f < flows; f++ {
			b.net.Ports(b.hosts[s])[0].Send(mkFrame(s, f, 0))
		}
	}
	b.net.Engine.Run() // cache warm

	// Incast blast: 192 more frames per sender, sequenced per flow.
	const perFlow = 24
	for seq := 1; seq <= perFlow; seq++ {
		for s := 0; s < 3; s++ {
			for f := 0; f < flows; f++ {
				b.net.Ports(b.hosts[s])[0].Send(mkFrame(s, f, seq))
			}
		}
	}
	b.net.Engine.Run()

	total := int64(3 * flows * (perFlow + 1))
	if got := b.hosts[recv].Received; got != total {
		t.Fatalf("delivered %d/%d under the composed pipeline (pb %+v, lt %+v)",
			got, total, pb.Stats, lt.Stats)
	}
	if badDSCP != 0 {
		t.Fatalf("%d packets missed the remote action", badDSCP)
	}
	if reordered != 0 {
		t.Fatalf("%d per-sender reorderings", reordered)
	}
	// The counters are exact across the whole run.
	var remote uint64
	for i := 0; i < 256; i++ {
		v, _ := b.memNICs[0].ReadCounter(chCnt.RKey, chCnt.Base+uint64(i*8))
		remote += v
	}
	if got := remote + ss.PendingTotal(); got != uint64(total) {
		t.Fatalf("counted %d, want %d", got, total)
	}
	// The incast actually exercised the ring, and the cache did its job.
	if pb.Stats.Stored == 0 {
		t.Fatal("packet buffer never engaged")
	}
	if lt.Stats.CacheHits == 0 {
		t.Fatal("lookup cache never hit")
	}
	// Shared fate checks: SRAM within budget, no server CPU anywhere.
	if b.sw.SRAM.Used() > b.sw.SRAM.Total {
		t.Fatal("SRAM over budget")
	}
	for i, mh := range b.memHosts {
		if mh.CPUOps != 0 {
			t.Fatalf("memory server %d CPU ops = %d", i, mh.CPUOps)
		}
	}
}
