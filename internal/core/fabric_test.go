package core

import (
	"testing"

	"gem/internal/netsim"
	"gem/internal/rnic"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// TestRemoteMemoryAcrossFabric exercises the §3 footnote: "In future work,
// it is possible to use any remote servers in the same RoCE network". The
// memory server sits two switch hops away (ToR → spine → remote ToR); the
// RDMA requests the primitive-bearing ToR crafts are ordinary Ethernet
// frames, so plain L2 forwarding carries them there and the responses back.
func TestRemoteMemoryAcrossFabric(t *testing.T) {
	n := netsim.New(1)

	tor1 := switchsim.New("tor1", n.Engine, switchsim.Config{})
	spine := switchsim.New("spine", n.Engine, switchsim.Config{})
	tor2 := switchsim.New("tor2", n.Engine, switchsim.Config{})

	host := netsim.NewHost("h", 1)
	memHost := netsim.NewHost("mem", 200)
	memNIC := rnic.New("mem-nic", memHost, rnic.Config{})

	// tor1: port 0 = host, port 1 = uplink to spine.
	t1h, _ := n.Connect(tor1, host, netsim.Link40G())
	t1up, sp1 := n.Connect(tor1, spine, netsim.Link40G())
	tor1.Bind(t1h, t1up)
	// spine: port 0 = tor1, port 1 = tor2.
	sp2, t2up := n.Connect(spine, tor2, netsim.Link40G())
	spine.Bind(sp1, sp2)
	// tor2: port 0 = uplink, port 1 = memory server.
	t2m, nicPort := n.Connect(tor2, memNIC, netsim.Link40G())
	memNIC.Bind(n.Engine, nicPort)
	tor2.Bind(t2up, t2m)

	// Plain L2 forwarding on the transit switches: requests toward the
	// memory server's MAC, responses toward the switch identity MAC.
	spineL2, err := switchsim.NewL2Pipeline(spine, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := spineL2.Learn(memNIC.MAC, 1); err != nil {
		t.Fatal(err)
	}
	if err := spineL2.Learn(SwitchMAC, 0); err != nil {
		t.Fatal(err)
	}
	spine.Pipeline = spineL2
	tor2L2, err := switchsim.NewL2Pipeline(tor2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := tor2L2.Learn(memNIC.MAC, 1); err != nil {
		t.Fatal(err)
	}
	if err := tor2L2.Learn(SwitchMAC, 0); err != nil {
		t.Fatal(err)
	}
	tor2.Pipeline = tor2L2

	// tor1 owns the primitives: channel out the uplink port.
	ctrl := NewController(tor1)
	disp := NewDispatcher()
	ch, err := ctrl.Establish(ChannelSpec{
		SwitchPort: 1, NIC: memNIC,
		RegionBase: 0x4000, RegionSize: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewStateStore(ch, StateStoreConfig{Counters: 64})
	if err != nil {
		t.Fatal(err)
	}
	disp.Register(ch, ss)
	tor1.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		if disp.Dispatch(ctx) {
			return
		}
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 || ctx.Pkt.IsRoCE {
			ctx.Drop()
			return
		}
		ss.UpdateFlow(wire.FlowOf(ctx.Pkt))
		ctx.Drop() // counting-only pipeline
	})

	// Drive traffic from the host; every packet is counted two hops away.
	const pkts = 120
	for i := 0; i < pkts; i++ {
		f := wire.BuildDataFrame(host.MAC, wire.MACFromUint64(0xBEEF),
			host.IP, wire.IP4{10, 9, 9, 9}, 4242, 80, 256, nil)
		n.Ports(host)[0].Send(f)
	}
	n.Engine.Run()

	key := wire.FlowKey{SrcIP: host.IP, DstIP: wire.IP4{10, 9, 9, 9},
		Protocol: 17, SrcPort: 4242, DstPort: 80}
	v, err := memNIC.ReadCounter(ch.RKey, ch.Base+uint64(key.Index(64))*8)
	if err != nil {
		t.Fatal(err)
	}
	if v != pkts {
		t.Fatalf("counter across two switch hops = %d, want %d", v, pkts)
	}
	if memHost.CPUOps != 0 {
		t.Fatalf("memory server CPU ops = %d", memHost.CPUOps)
	}
	// The transit switches really forwarded RoCE both ways.
	if spine.Stats.RxFrames == 0 || tor2.Stats.RxFrames == 0 {
		t.Fatal("transit switches saw no traffic")
	}
}
