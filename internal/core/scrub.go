package core

import (
	"gem/internal/sim"
)

// Anti-entropy scrub: the repair path beneath replication.
//
// Mirrored posting keeps a replica close to its primary, but three honest
// gaps remain: async mode declares entries lost past the lag bound, a
// promotion refuses to replay posted-but-unacknowledged entries (a blind
// replay would double-apply FAAs), and a replica that crashes and restarts
// comes back with wiped DRAM. The scrubber closes all three the way real
// replicated stores do — periodically compare checksums of primary and
// replica windows and copy the primary's bytes over any divergence. It
// models the control-plane scrub agent that reads both copies out of band
// (the comparison traffic is not modeled on the wire; the counters make the
// repair work visible instead).
//
// Each tick checks two chunks: the cursor chunk (a full deterministic sweep
// every Length/Chunk ticks) and one chunk drawn from the scrubber's private
// "scrub" random substream, so hot divergence is found faster than the sweep
// period while staying seed-reproducible for any island layout.

// ScrubConfig parameterizes one scrubber.
type ScrubConfig struct {
	// Interval paces scrub ticks (default 10 µs).
	Interval sim.Duration
	// Chunk is the comparison granularity in bytes (default 64).
	Chunk int
	// Live gates each tick: scrubbing only makes sense while both copies
	// are reachable and authoritative (e.g. both NICs alive, no promotion
	// in progress). Nil = always live.
	Live func() bool
}

// ScrubStats count the scrubber's work. Flat and comparable.
type ScrubStats struct {
	Ticks         int64 // ticks that ran (live)
	Skipped       int64 // ticks the Live gate suppressed
	ChunksChecked int64
	Diverged      int64 // chunks whose checksums disagreed
	Repairs       int64 // chunks copied primary → replica
	BytesRepaired int64
}

// Add returns the element-wise sum of s and o.
func (s ScrubStats) Add(o ScrubStats) ScrubStats {
	s.Ticks += o.Ticks
	s.Skipped += o.Skipped
	s.ChunksChecked += o.ChunksChecked
	s.Diverged += o.Diverged
	s.Repairs += o.Repairs
	s.BytesRepaired += o.BytesRepaired
	return s
}

// Scrubber periodically compares a primary byte window against its replica
// and repairs divergence in the replica. The windows alias the two servers'
// registered region memory (they survive a wipe: clear() zeroes in place).
type Scrubber struct {
	eng     *sim.Engine
	primary []byte
	replica []byte
	cfg     ScrubConfig
	cursor  int
	stopped bool
	started bool

	Stats ScrubStats
}

// NewScrubber builds a scrubber over two equal-length windows.
func NewScrubber(eng *sim.Engine, primary, replica []byte, cfg ScrubConfig) *Scrubber {
	if len(primary) == 0 || len(primary) != len(replica) {
		panic("core: scrubber needs equal-length non-empty windows")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * sim.Microsecond
	}
	if cfg.Chunk <= 0 {
		cfg.Chunk = 64
	}
	return &Scrubber{eng: eng, primary: primary, replica: replica, cfg: cfg}
}

// Start begins scrubbing. Call once.
func (s *Scrubber) Start() {
	if s.started {
		return
	}
	s.started = true
	s.eng.Ticker(s.cfg.Interval, func() bool {
		if s.stopped {
			return false
		}
		s.tick()
		return true
	})
}

// Stop ends scrubbing at the next tick (the engine can then quiesce).
func (s *Scrubber) Stop() { s.stopped = true }

func (s *Scrubber) chunks() int {
	return (len(s.primary) + s.cfg.Chunk - 1) / s.cfg.Chunk
}

func (s *Scrubber) tick() {
	if s.cfg.Live != nil && !s.cfg.Live() {
		s.Stats.Skipped++
		return
	}
	s.Stats.Ticks++
	n := s.chunks()
	s.check(s.cursor)
	s.cursor = (s.cursor + 1) % n
	if r := s.eng.Stream("scrub").Intn(n); r != s.cursor {
		s.check(r)
	}
}

// check compares chunk i's checksums and repairs the replica on mismatch.
func (s *Scrubber) check(i int) {
	lo := i * s.cfg.Chunk
	hi := lo + s.cfg.Chunk
	if hi > len(s.primary) {
		hi = len(s.primary)
	}
	s.Stats.ChunksChecked++
	if fnv64(s.primary[lo:hi]) == fnv64(s.replica[lo:hi]) {
		return
	}
	s.Stats.Diverged++
	copy(s.replica[lo:hi], s.primary[lo:hi])
	s.Stats.Repairs++
	s.Stats.BytesRepaired += int64(hi - lo)
}

// fnv64 is FNV-1a, inlined so the scrub tick stays allocation-free.
func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
