package core

// Credit-based admission control lives in the shared transport layer
// (internal/core/verbs) since the work-queue refactor: the window is part
// of the QP's posting contract, not of any one primitive. The aliases keep
// the core API stable — primitives, tests and the gem facade keep naming
// core.Credits.

import "gem/internal/core/verbs"

// Credits is one channel's admission window. See verbs.Credits.
type Credits = verbs.Credits

// CreditConfig tunes a credit window. See verbs.CreditConfig.
type CreditConfig = verbs.CreditConfig

// CreditStats are the window's observable counters. See verbs.CreditStats.
type CreditStats = verbs.CreditStats

// NewCredits returns a credit window for cfg.
func NewCredits(cfg CreditConfig) *Credits { return verbs.NewCredits(cfg) }
