// Package netsim models the physical network: devices, ports, and
// full-duplex point-to-point links with finite bandwidth, serialization
// delay, propagation delay, and Ethernet framing overhead.
//
// Devices (hosts, RNICs, switches) implement the Device interface and are
// wired together with Net.Connect. All frames are real encoded bytes
// produced by internal/wire; netsim only moves them and accounts for time.
package netsim

import (
	"fmt"
	"math/rand"

	"gem/internal/fifo"
	"gem/internal/sim"
	"gem/internal/stats"
	"gem/internal/wire"
)

// Device is anything that terminates links.
type Device interface {
	// Name identifies the device in diagnostics.
	Name() string
	// Receive delivers one frame arriving on port. The frame buffer is
	// owned by the receiver from this point on.
	Receive(port *Port, frame []byte)
}

// LinkConfig describes one direction of a link. Links are symmetric; the
// same configuration applies both ways.
type LinkConfig struct {
	// RateBps is the line rate in bits per second (e.g. 40e9).
	RateBps float64
	// Propagation is the one-way signal propagation delay.
	Propagation sim.Duration
	// TxQueueFrames bounds the transmit FIFO of each endpoint; frames
	// arriving at a full FIFO are dropped and counted. Zero means a
	// generous default (4096).
	TxQueueFrames int
	// LossRate drops each frame with this probability on arrival,
	// modelling corruption/congestion loss for the reliability
	// experiments. Zero means a lossless link.
	LossRate float64
}

// DefaultTxQueue is the transmit FIFO depth used when LinkConfig leaves
// TxQueueFrames zero.
const DefaultTxQueue = 4096

// FaultInjector intercepts frames on one direction of a link, at the moment
// serialization completes (the same point the built-in LossRate applies).
// Implementations may drop a frame, delay its delivery beyond the configured
// propagation, or mutate its bytes in place (bit corruption — the receiver's
// ICRC/decode path then rejects it). The injector never takes ownership of
// the frame buffer: a dropped frame is recycled by the port.
//
// rng is the port's private seeded substream (derived from the run seed and
// the port name), so an injector that draws from it keeps the run
// byte-identically reproducible for any island layout. See internal/faults
// for the standard models.
type FaultInjector interface {
	Transmit(now sim.Time, rng *rand.Rand, frame []byte) (drop bool, extraDelay sim.Duration)
}

// Link40G returns the testbed's standard link: 40 Gbps, 250 ns propagation
// (a few meters of fiber plus PHY latency inside one rack).
func Link40G() LinkConfig {
	return LinkConfig{RateBps: 40e9, Propagation: 250 * sim.Nanosecond}
}

// Port is one endpoint of a link, bound to a device.
type Port struct {
	dev   Device
	index int
	peer  *Port
	net   *Net
	cfg   LinkConfig

	busy    bool
	txQueue fifo.Queue[[]byte]
	faults  FaultInjector

	// eng caches the owning island's engine; rng is the port's private
	// random substream, created on first draw.
	eng *sim.Engine
	rng *rand.Rand

	// TxMeter and RxMeter count wire bytes including framing overhead.
	TxMeter stats.Meter
	RxMeter stats.Meter
	// TxDrops counts frames dropped at a full transmit FIFO; LossDrops
	// counts frames lost to the link's configured LossRate; FaultDrops
	// counts frames dropped by an installed FaultInjector.
	TxDrops    int64
	LossDrops  int64
	FaultDrops int64

	peakQueued int
}

// SetFaultInjector installs (or, with nil, removes) a fault injector on this
// port's transmit direction. Each direction of a link is injected
// independently; install on both ports for a symmetric fault model.
func (p *Port) SetFaultInjector(f FaultInjector) { p.faults = f }

// Device returns the device that owns the port.
func (p *Port) Device() Device { return p.dev }

// Index returns the port's index on its device (assigned at Connect time,
// in connection order per device).
func (p *Port) Index() int { return p.index }

// Peer returns the port at the other end of the link.
func (p *Port) Peer() *Port { return p.peer }

// QueuedFrames reports the current transmit FIFO occupancy.
func (p *Port) QueuedFrames() int { return p.txQueue.Len() }

// PeakQueuedFrames reports the highest transmit FIFO occupancy observed —
// the overload experiments use it to show credit windows keep device queues
// bounded.
func (p *Port) PeakQueuedFrames() int { return p.peakQueued }

// RateBps returns the link's line rate in bits per second.
func (p *Port) RateBps() float64 { return p.cfg.RateBps }

func (p *Port) String() string {
	return fmt.Sprintf("%s[%d]", p.dev.Name(), p.index)
}

// engine returns the engine of the island that owns this port's device.
func (p *Port) engine() *sim.Engine {
	if p.eng == nil {
		p.eng = p.net.EngineOf(p.dev)
	}
	return p.eng
}

// rand returns the port's private random substream. All loss and fault draws
// on the transmit direction come from here, keyed by the port name, so the
// draw sequence depends only on this port's own traffic order.
func (p *Port) rand() *rand.Rand {
	if p.rng == nil {
		p.rng = p.engine().Stream("fab:" + p.String())
	}
	return p.rng
}

// Send queues frame for transmission toward the peer. It returns false if
// the transmit FIFO is full and the frame was dropped. Ownership of the
// frame buffer transfers to the port either way: a dropped frame is
// recycled into wire.DefaultPool, so callers must not retain it.
func (p *Port) Send(frame []byte) bool {
	if p.peer == nil {
		panic(fmt.Sprintf("netsim: send on unconnected port %s", p))
	}
	limit := p.cfg.TxQueueFrames
	if limit == 0 {
		limit = DefaultTxQueue
	}
	if p.busy {
		if p.txQueue.Len() >= limit {
			p.TxDrops++
			wire.DefaultPool.Put(frame)
			return false
		}
		p.txQueue.Push(frame)
		if n := p.txQueue.Len(); n > p.peakQueued {
			p.peakQueued = n
		}
		return true
	}
	p.transmit(frame)
	return true
}

// SerializationDelay returns the time the line is occupied by one frame of
// frameLen bytes, including Ethernet framing overhead.
func (p *Port) SerializationDelay(frameLen int) sim.Duration {
	bits := float64(frameLen+wire.EthernetFramingOverhead) * 8
	return sim.Duration(bits / p.cfg.RateBps * 1e9)
}

func (p *Port) transmit(frame []byte) {
	p.busy = true
	txTime := p.SerializationDelay(len(frame))
	p.TxMeter.Record(len(frame) + wire.EthernetFramingOverhead)
	peer := p.peer
	eng := p.engine()
	// Frame fully on the wire after txTime; arrives after propagation.
	eng.Schedule(txTime, func() {
		drop := false
		var extra sim.Duration
		if p.faults != nil {
			drop, extra = p.faults.Transmit(eng.Now(), p.rand(), frame)
			if drop {
				p.FaultDrops++
			}
		}
		if !drop && p.cfg.LossRate > 0 && p.rand().Float64() < p.cfg.LossRate {
			p.LossDrops++
			drop = true
		}
		if drop {
			wire.DefaultPool.Put(frame)
		} else {
			deliver := func() {
				peer.RxMeter.Record(len(frame) + wire.EthernetFramingOverhead)
				peer.dev.Receive(peer, frame)
			}
			at := eng.Now().Add(p.cfg.Propagation + extra)
			// Same-island links schedule directly (zero overhead); links
			// that cross islands post through the receiver's mailbox, with
			// the propagation delay as the lookahead bound.
			if dst := peer.engine(); dst == eng {
				eng.ScheduleAt(at, deliver)
			} else {
				dst.PostFrom(eng, at, deliver)
			}
		}
		if p.txQueue.Len() > 0 {
			p.transmit(p.txQueue.Pop())
		} else {
			p.busy = false
		}
	})
}

// Net owns the engine(s) and the wiring of a testbed. With a single island
// the Engine field is a standalone engine exactly as before; with several,
// Engine is island 0 (the control island) and Par coordinates the rest.
type Net struct {
	Engine *sim.Engine
	ports  map[Device][]*Port

	par     *sim.ParallelEngine
	islands map[Device]int
	sealed  bool
}

// New returns an empty network on a fresh engine seeded with seed.
func New(seed int64) *Net {
	return &Net{Engine: sim.NewEngine(seed), ports: make(map[Device][]*Port)}
}

// NewParallel returns an empty network whose devices are partitioned over
// islands event loops. islands <= 1 is exactly New(seed): the same standalone
// engine, no synchronization anywhere on the frame path.
func NewParallel(seed int64, islands int) *Net {
	if islands <= 1 {
		return New(seed)
	}
	par := sim.NewParallelEngine(seed, islands)
	return &Net{
		Engine:  par.Island(0),
		ports:   make(map[Device][]*Port),
		par:     par,
		islands: make(map[Device]int),
	}
}

// Par returns the parallel coordinator, or nil for a single-island network.
func (n *Net) Par() *sim.ParallelEngine { return n.par }

// SetIsland assigns device d to an island. Devices default to island 0.
// Assignments are only legal before the network is sealed (first run).
func (n *Net) SetIsland(d Device, island int) {
	if n.par == nil {
		if island != 0 {
			panic("netsim: island assignment on a single-island network")
		}
		return
	}
	if n.sealed {
		panic("netsim: SetIsland after the network was sealed")
	}
	if island < 0 || island >= n.par.N() {
		panic(fmt.Sprintf("netsim: island %d out of range [0,%d)", island, n.par.N()))
	}
	n.islands[d] = island
	// Invalidate engine/stream caches on the device's ports.
	for _, p := range n.ports[d] {
		p.eng, p.rng = nil, nil
	}
}

// IslandOf returns the island a device is assigned to (default 0).
func (n *Net) IslandOf(d Device) int {
	if n.islands == nil {
		return 0
	}
	return n.islands[d]
}

// EngineOf returns the engine of the island that owns device d.
func (n *Net) EngineOf(d Device) *sim.Engine {
	if n.par == nil {
		return n.Engine
	}
	return n.par.Island(n.islands[d])
}

// Seal freezes island assignments and registers each island's conservative
// lookahead — the minimum propagation delay over cross-island links into it.
// Cross-island links must have positive propagation (the physical latency
// window is exactly what makes conservative parallelism safe). Idempotent;
// called automatically by the facade before the first run.
func (n *Net) Seal() {
	if n.par == nil || n.sealed {
		return
	}
	n.sealed = true
	look := make([]sim.Duration, n.par.N())
	for i := range look {
		look[i] = sim.InfLookahead
	}
	//gem:deterministic — folds a commutative min over all links; order-free
	for _, ports := range n.ports {
		for _, p := range ports {
			si, di := n.IslandOf(p.dev), n.IslandOf(p.peer.dev)
			if si == di {
				continue
			}
			if p.cfg.Propagation <= 0 {
				panic(fmt.Sprintf("netsim: cross-island link %s<->%s needs positive propagation delay", p, p.peer))
			}
			if p.cfg.Propagation < look[di] {
				look[di] = p.cfg.Propagation
			}
		}
	}
	for i, l := range look {
		if l != sim.InfLookahead {
			n.par.SetLookaheadInto(i, l)
		}
	}
}

// Connect wires a and b with a full-duplex link and returns the two new
// ports (one on each device). Port indices count up per device.
func (n *Net) Connect(a, b Device, cfg LinkConfig) (*Port, *Port) {
	if cfg.RateBps <= 0 {
		panic("netsim: link rate must be positive")
	}
	pa := &Port{dev: a, index: len(n.ports[a]), net: n, cfg: cfg}
	pb := &Port{dev: b, index: len(n.ports[b]), net: n, cfg: cfg}
	pa.peer, pb.peer = pb, pa
	n.ports[a] = append(n.ports[a], pa)
	n.ports[b] = append(n.ports[b], pb)
	return pa, pb
}

// Ports returns the ports of device d in connection order.
func (n *Net) Ports(d Device) []*Port { return n.ports[d] }
