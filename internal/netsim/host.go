package netsim

import (
	"gem/internal/stats"
	"gem/internal/wire"
)

// Host is a plain server with a software network stack: every received
// frame costs CPU (the thing the paper's design avoids for memory service).
// Traffic generators and sink endpoints are Hosts.
type Host struct {
	name string
	MAC  wire.MAC
	IP   wire.IP4

	// Handler, when set, is invoked for every received frame.
	Handler func(port *Port, frame []byte)

	// CPUOps counts software packet handling operations. The harnesses
	// assert this stays zero on memory servers after initialization.
	CPUOps int64
	// Received counts delivered frames; Loss tracks sink accounting.
	Received int64
	Loss     stats.LossStats
}

// NewHost creates a host with addresses derived from id (1-based).
func NewHost(name string, id uint32) *Host {
	return &Host{
		name: name,
		MAC:  wire.MACFromUint64(0x02_00_00_000000 | uint64(id)),
		IP:   wire.IP4FromUint32(0x0a000000 | id), // 10.x.y.z
	}
}

// Name implements Device.
func (h *Host) Name() string { return h.name }

// Receive implements Device: software handling, costing CPU. The host is a
// terminal consumer: the frame is recycled after Handler returns, so
// handlers that keep payload bytes (or schedule later work over them) must
// copy them first. Under `go test -race` released buffers are poisoned
// (wire.Pool), so a handler that violates this reads 0xDD garbage instead
// of silently decoding a recycled frame.
func (h *Host) Receive(port *Port, frame []byte) {
	h.CPUOps++
	h.Received++
	if h.Handler != nil {
		h.Handler(port, frame)
	}
	wire.DefaultPool.Put(frame)
}
