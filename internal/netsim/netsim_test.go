package netsim

import (
	"math"
	"testing"

	"gem/internal/sim"
	"gem/internal/wire"
)

func twoHosts(seed int64, cfg LinkConfig) (*Net, *Host, *Host, *Port, *Port) {
	n := New(seed)
	a := NewHost("a", 1)
	b := NewHost("b", 2)
	pa, pb := n.Connect(a, b, cfg)
	return n, a, b, pa, pb
}

// testFrame draws a zeroed n-byte frame from the pool: receivers recycle
// whatever they consume, and the package leak check audits the pool ledger,
// so test frames must come from it (pooled buffers carry stale bytes).
func testFrame(n int) []byte {
	f := wire.DefaultPool.Get(n)
	for i := range f {
		f[i] = 0
	}
	return f
}

func TestFrameDelivery(t *testing.T) {
	n, _, b, pa, _ := twoHosts(1, Link40G())
	var got []byte
	// Copy-on-retain: the frame is recycled (and poisoned under -race)
	// after the handler returns.
	b.Handler = func(_ *Port, f []byte) { got = append([]byte(nil), f...) }
	frame := testFrame(100)
	frame[0] = 0xAA
	pa.Send(frame)
	n.Engine.Run()
	if got == nil || got[0] != 0xAA {
		t.Fatal("frame not delivered")
	}
	if b.CPUOps != 1 {
		t.Fatalf("CPUOps = %d", b.CPUOps)
	}
}

func TestSerializationPlusPropagationLatency(t *testing.T) {
	cfg := LinkConfig{RateBps: 40e9, Propagation: 250}
	n, _, b, pa, _ := twoHosts(1, cfg)
	var at sim.Time
	b.Handler = func(_ *Port, _ []byte) { at = n.Engine.Now() }
	frame := testFrame(1500)
	pa.Send(frame)
	n.Engine.Run()
	// (1500+24)*8 bits / 40e9 bps = 304.8 ns serialization + 250 ns prop.
	want := sim.Time(304 + 250)
	if at < want || at > want+2 {
		t.Fatalf("arrival at %d ns, want ≈%d", at, want)
	}
}

func TestBackToBackFramesSerialize(t *testing.T) {
	cfg := LinkConfig{RateBps: 10e9, Propagation: 0}
	n, _, b, pa, _ := twoHosts(1, cfg)
	var arrivals []sim.Time
	b.Handler = func(_ *Port, _ []byte) { arrivals = append(arrivals, n.Engine.Now()) }
	for i := 0; i < 3; i++ {
		pa.Send(testFrame(1226)) // 1226+24=1250B → 1 µs at 10 Gbps
	}
	n.Engine.Run()
	if len(arrivals) != 3 {
		t.Fatalf("delivered %d frames", len(arrivals))
	}
	for i, at := range arrivals {
		want := sim.Time((i + 1) * 1000)
		if at != want {
			t.Fatalf("frame %d arrived at %v, want %v", i, at, want)
		}
	}
}

func TestLineRateThroughput(t *testing.T) {
	cfg := LinkConfig{RateBps: 40e9, Propagation: 250, TxQueueFrames: 100000}
	n, _, b, pa, pb := twoHosts(1, cfg)
	const frames = 1000
	for i := 0; i < frames; i++ {
		pa.Send(testFrame(1500))
	}
	n.Engine.Run()
	if b.Received != frames {
		t.Fatalf("received %d/%d", b.Received, frames)
	}
	// Wire throughput should be ~40 Gbps over the busy period.
	gbps := pb.RxMeter.Gbps(n.Engine.Now())
	if math.Abs(gbps-40) > 1 {
		t.Fatalf("throughput = %.2f Gbps, want ≈40", gbps)
	}
}

func TestTxQueueOverflowDrops(t *testing.T) {
	cfg := LinkConfig{RateBps: 1e9, Propagation: 0, TxQueueFrames: 4}
	n, _, b, pa, _ := twoHosts(1, cfg)
	sent := 0
	for i := 0; i < 10; i++ {
		if pa.Send(testFrame(1000)) {
			sent++
		}
	}
	n.Engine.Run()
	// 1 transmitting + 4 queued = 5 accepted.
	if sent != 5 {
		t.Fatalf("accepted %d, want 5", sent)
	}
	if pa.TxDrops != 5 {
		t.Fatalf("TxDrops = %d, want 5", pa.TxDrops)
	}
	if b.Received != 5 {
		t.Fatalf("received %d, want 5", b.Received)
	}
}

func TestFullDuplexIndependence(t *testing.T) {
	cfg := LinkConfig{RateBps: 10e9, Propagation: 100}
	n, a, b, pa, pb := twoHosts(1, cfg)
	var aAt, bAt sim.Time
	a.Handler = func(_ *Port, _ []byte) { aAt = n.Engine.Now() }
	b.Handler = func(_ *Port, _ []byte) { bAt = n.Engine.Now() }
	pa.Send(testFrame(1226))
	pb.Send(testFrame(1226))
	n.Engine.Run()
	// Both directions should complete at the same time: no shared medium.
	if aAt != bAt || aAt == 0 {
		t.Fatalf("duplex arrivals differ: %v vs %v", aAt, bAt)
	}
}

func TestPortMetadata(t *testing.T) {
	n := New(1)
	a, b, c := NewHost("a", 1), NewHost("b", 2), NewHost("c", 3)
	p1, _ := n.Connect(a, b, Link40G())
	p2, pc := n.Connect(a, c, Link40G())
	if p1.Index() != 0 || p2.Index() != 1 {
		t.Fatalf("indices = %d,%d", p1.Index(), p2.Index())
	}
	if p2.Peer() != pc || pc.Peer() != p2 {
		t.Fatal("peer wiring broken")
	}
	if len(n.Ports(a)) != 2 || len(n.Ports(c)) != 1 {
		t.Fatal("ports map wrong")
	}
	if p1.Device() != Device(a) {
		t.Fatal("device binding wrong")
	}
	if p1.String() != "a[0]" {
		t.Fatalf("String = %q", p1.String())
	}
}

func TestSendOnUnconnectedPortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := &Port{dev: NewHost("x", 1), cfg: Link40G()}
	frame := testFrame(10)
	defer wire.DefaultPool.Put(frame) // Send panics before taking ownership
	p.Send(frame)
}

func TestConnectZeroRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n := New(1)
	n.Connect(NewHost("a", 1), NewHost("b", 2), LinkConfig{})
}

func TestHostAddresses(t *testing.T) {
	h := NewHost("h", 0x010203)
	if h.IP != (wire.IP4{10, 1, 2, 3}) {
		t.Fatalf("IP = %v", h.IP)
	}
	if h.MAC.Uint64()&0xFFFFFF != 0x010203 {
		t.Fatalf("MAC = %v", h.MAC)
	}
}

func TestMetersCountFramingOverhead(t *testing.T) {
	n, _, _, pa, pb := twoHosts(1, Link40G())
	pa.Send(testFrame(100))
	n.Engine.Run()
	want := int64(100 + wire.EthernetFramingOverhead)
	if pa.TxMeter.Bytes != want || pb.RxMeter.Bytes != want {
		t.Fatalf("meters = %d/%d, want %d", pa.TxMeter.Bytes, pb.RxMeter.Bytes, want)
	}
}

func TestQueuedFrames(t *testing.T) {
	cfg := LinkConfig{RateBps: 1e9, Propagation: 0}
	n, _, _, pa, _ := twoHosts(1, cfg)
	for i := 0; i < 5; i++ {
		pa.Send(testFrame(1000))
	}
	if pa.QueuedFrames() != 4 {
		t.Fatalf("queued = %d, want 4", pa.QueuedFrames())
	}
	n.Engine.Run()
	if pa.QueuedFrames() != 0 {
		t.Fatalf("queued = %d after drain", pa.QueuedFrames())
	}
}

func TestLossRateStatistics(t *testing.T) {
	cfg := LinkConfig{RateBps: 40e9, Propagation: 0, LossRate: 0.1, TxQueueFrames: 1 << 20}
	n, _, b, pa, _ := twoHosts(7, cfg)
	const frames = 20000
	for i := 0; i < frames; i++ {
		pa.Send(testFrame(100))
	}
	n.Engine.Run()
	lost := frames - int(b.Received)
	if lost != int(pa.LossDrops) {
		t.Fatalf("loss accounting mismatch: %d vs %d", lost, pa.LossDrops)
	}
	rate := float64(lost) / frames
	if rate < 0.08 || rate > 0.12 {
		t.Fatalf("measured loss %.3f, configured 0.10", rate)
	}
}

func TestZeroLossByDefault(t *testing.T) {
	n, _, b, pa, _ := twoHosts(7, Link40G())
	for i := 0; i < 1000; i++ {
		pa.Send(testFrame(100))
	}
	n.Engine.Run()
	if b.Received != 1000 || pa.LossDrops != 0 {
		t.Fatalf("default link lost frames: %d/%d", b.Received, 1000)
	}
}
