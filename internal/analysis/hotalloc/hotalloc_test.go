package hotalloc_test

import (
	"path/filepath"
	"testing"

	"gem/internal/analysis"
	"gem/internal/analysis/analysistest"
	"gem/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fixture := filepath.Join(root, "internal", "analysis", "testdata", "src", "hotalloc")
	analysistest.Run(t, root, fixture, hotalloc.Analyzer, nil)
}
