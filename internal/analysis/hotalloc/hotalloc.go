// Package hotalloc implements the gemlint pass that keeps the designated
// hot-path packages allocation-free: the per-frame code in internal/wire,
// internal/switchsim, and internal/rnic runs once per simulated packet, and
// PR 1's zero-allocation wire path regresses the moment someone reaches for
// an allocating convenience.
//
// Rules:
//
//   - calling a legacy allocating wire builder (Build* without the Into
//     suffix) is forbidden; use the pooled Build*Into form;
//   - fmt.Sprintf / Sprint / Sprintln are forbidden except as a panic
//     argument, inside String/Error/Format/GoString methods, or under a
//     //gem:alloc-ok annotation (cold paths: construction, fatal errors);
//   - fresh-slice appends — append([]T(nil), ...) or append([]T{}, ...) —
//     allocate a new backing array per call and are forbidden without a
//     //gem:alloc-ok annotation; preallocate or use a pooled buffer.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"gem/internal/analysis"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating builders, Sprintf, and fresh-slice appends in hot-path packages",
	Run:  run,
}

// sprintFuncs are the fmt allocators flagged outside cold paths.
var sprintFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
}

// coldMethods may format freely: they only run for debugging output.
var coldMethods = map[string]bool{
	"String": true, "Error": true, "Format": true, "GoString": true,
}

func run(pass *analysis.Pass) error {
	allocOK := analysis.LineAnnotations(pass.Fset, pass.Files, "alloc-ok")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cold := coldMethods[fd.Name.Name]
			checkBody(pass, fd.Body, cold, allocOK)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt, cold bool, allocOK map[string]map[int]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPanic(pass, call) {
			// Sprintf as a panic argument is fine: the program is dying.
			return false
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if analysis.Annotated(pass.Fset, allocOK, call.Pos()) {
			return true
		}
		name := fn.Name()
		switch {
		case fn.Pkg().Path() == analysis.WirePkgPath &&
			strings.HasPrefix(name, "Build") && !strings.HasSuffix(name, "Into"):
			pass.Reportf(call.Pos(),
				"allocating builder wire.%s in hot path; use wire.%sInto with a pool", name, name)
		case fn.Pkg().Path() == "fmt" && sprintFuncs[name] && !cold:
			pass.Reportf(call.Pos(),
				"fmt.%s allocates in hot path; annotate //gem:alloc-ok if this is a cold path", name)
		}
		return true
	})

	// Fresh-slice appends are a separate walk: append is a builtin, so the
	// callee-based dispatch above never sees it.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" || len(call.Args) == 0 {
			return true
		}
		if !isFreshSlice(call.Args[0]) {
			return true
		}
		if analysis.Annotated(pass.Fset, allocOK, call.Pos()) {
			return true
		}
		pass.Reportf(call.Pos(),
			"fresh-slice append allocates a new backing array per call; preallocate, use a pooled buffer, or annotate //gem:alloc-ok")
		return true
	})
}

// isFreshSlice reports whether expr is []T(nil) or []T{} — the copy idiom
// that allocates on every call.
func isFreshSlice(expr ast.Expr) bool {
	switch x := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		_, isSlice := x.Type.(*ast.ArrayType)
		return isSlice && len(x.Elts) == 0
	case *ast.CallExpr:
		// []byte(nil) is a conversion with an array-type callee.
		if _, isSlice := x.Fun.(*ast.ArrayType); isSlice && len(x.Args) == 1 {
			if id, ok := ast.Unparen(x.Args[0]).(*ast.Ident); ok && id.Name == "nil" {
				return true
			}
		}
	}
	return false
}

// isPanic reports whether call is the builtin panic.
func isPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}
