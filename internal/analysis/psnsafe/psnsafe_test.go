package psnsafe_test

import (
	"path/filepath"
	"testing"

	"gem/internal/analysis"
	"gem/internal/analysis/analysistest"
	"gem/internal/analysis/psnsafe"
)

func TestPsnsafe(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fixture := filepath.Join(root, "internal", "analysis", "testdata", "src", "psnsafe")
	analysistest.Run(t, root, fixture, psnsafe.Analyzer, nil)
}
