// Package psnsafe implements the gemlint pass that enforces 24-bit PSN
// arithmetic discipline. Packet sequence numbers live in a 0xFFFFFF-wide
// ring: a raw `<` between two PSNs inverts its answer once the window
// straddles the wrap, and an unmasked `psn + n` walks out of the ring
// entirely — both are wraparound bugs by construction (the 0xFFFFFF→0
// cases in the verbs PSN tests). The pass recognizes PSN values
// heuristically — any non-constant uint32 identifier, selector, or call
// result whose name contains "psn" — and reports:
//
//   - ordering comparisons (<, <=, >, >=) on a PSN: use verbs.PSNAfter,
//     which compares signed 23-bit distance in the masked ring;
//   - + or - on a PSN whose result is not immediately masked with
//     & verbs.PSNMask (equality against a masked distance is fine);
//   - ++/--/+=/-= on a PSN variable, which can never be masked in place.
//
// Sites where raw arithmetic is intentional (a monotonically increasing
// diagnostic counter that happens to be named after the PSN it shadows)
// are waived with //gem:psn-ok on the line or the line above.
package psnsafe

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"gem/internal/analysis"
)

// Analyzer is the psnsafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "psnsafe",
	Doc:  "PSN ordering and arithmetic must go through verbs.PSNAfter / & verbs.PSNMask",
	Run:  run,
}

// Tag is the waiver annotation.
const Tag = "psn-ok"

type checker struct {
	pass    *analysis.Pass
	ann     map[string]map[int]bool
	parents map[ast.Node]ast.Node
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass: pass,
		ann:  analysis.LineAnnotations(pass.Fset, pass.Files, Tag),
	}
	for _, f := range pass.Files {
		c.parents = parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.BinaryExpr:
				c.binary(s)
			case *ast.IncDecStmt:
				if name, ok := c.atom(s.X); ok {
					c.flag(s.Pos(), "PSN %q incremented without masking: %s walks out of the 24-bit ring at 0xFFFFFF; write %s = (%s %c 1) & verbs.PSNMask or annotate //gem:psn-ok",
						name, s.Tok.String(), name, name, s.Tok.String()[0])
				}
			case *ast.AssignStmt:
				if s.Tok != token.ADD_ASSIGN && s.Tok != token.SUB_ASSIGN {
					return true
				}
				for _, lhs := range s.Lhs {
					if name, ok := c.atom(lhs); ok {
						c.flag(s.Pos(), "PSN %q modified with %s without masking: mask the result with & verbs.PSNMask or annotate //gem:psn-ok",
							name, s.Tok.String())
					}
				}
			}
			return true
		})
	}
	return nil
}

func (c *checker) binary(e *ast.BinaryExpr) {
	switch e.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		name, ok := c.atom(e.X)
		if !ok {
			name, ok = c.atom(e.Y)
		}
		if ok {
			c.flag(e.OpPos, "raw %s ordering on PSN %q inverts across the 24-bit wrap; compare with verbs.PSNAfter or annotate //gem:psn-ok",
				e.Op.String(), name)
		}
	case token.ADD, token.SUB:
		name, ok := c.atom(e.X)
		if !ok {
			name, ok = c.atom(e.Y)
		}
		if ok && !c.masked(e) {
			c.flag(e.OpPos, "unmasked %s on PSN %q leaves the 24-bit ring; mask the result with & verbs.PSNMask or annotate //gem:psn-ok",
				e.Op.String(), name)
		}
	}
}

func (c *checker) flag(pos token.Pos, format string, args ...any) {
	if analysis.Annotated(c.pass.Fset, c.ann, pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// atom reports whether expr denotes a PSN value: a non-constant uint32
// identifier, selector, or call result whose name contains "psn"
// (case-insensitive). uint32(...) conversions are looked through so a
// widening cast does not launder the name.
func (c *checker) atom(expr ast.Expr) (string, bool) {
	e := ast.Unparen(expr)
	// Look through explicit conversions: uint32(psn) is still a PSN.
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return c.atom(call.Args[0])
		}
	}
	var name string
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.CallExpr:
		fn := analysis.Callee(c.pass.TypesInfo, x)
		if fn == nil {
			return "", false
		}
		name = fn.Name()
	default:
		return "", false
	}
	if !strings.Contains(strings.ToLower(name), "psn") {
		return "", false
	}
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil { // constants (PSNMask itself) are not PSNs
		return "", false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Uint32 {
		return "", false
	}
	return name, true
}

// masked reports whether the +/- expression feeds — possibly through more
// +/- terms and parentheses — into an `& <24-bit mask>` that re-enters the
// ring.
func (c *checker) masked(e ast.Expr) bool {
	var cur ast.Node = e
	for {
		p, ok := c.parents[cur]
		if !ok {
			return false
		}
		switch pe := p.(type) {
		case *ast.ParenExpr:
			cur = pe
		case *ast.BinaryExpr:
			switch pe.Op {
			case token.AND:
				other := pe.Y
				if pe.Y == cur {
					other = pe.X
				}
				return isPSNMask(c.pass.TypesInfo, other)
			case token.ADD, token.SUB:
				cur = pe
			default:
				return false
			}
		default:
			return false
		}
	}
}

// isPSNMask reports whether expr is a constant equal to 0xFFFFFF
// (verbs.PSNMask or a literal spelling of it).
func isPSNMask(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(expr)]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Compare(tv.Value, token.EQL, constant.MakeUint64(0xFFFFFF))
}

// parentMap records each node's syntactic parent within one file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
