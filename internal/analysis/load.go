package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` for patterns in dir and decodes
// the JSON stream. Export data for every dependency (standard library
// included) comes out of the build cache, so this works without network
// access.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errBuf.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export data files, the way
// vet does: no source re-checking of dependencies.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// NewTypesInfo allocates every map an analyzer might consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// CheckTypes type-checks one package's files, collecting every type error
// with its file:line position instead of stopping at the first. The returned
// error lists up to ten positioned errors, one per line — a driver can print
// it directly and the user gets clickable locations rather than a bare
// message.
func CheckTypes(pkgPath string, fset *token.FileSet, files []*ast.File, info *types.Info, imp types.Importer) (*types.Package, error) {
	var errs []string
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err.Error()) },
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if len(errs) > 0 {
		const max = 10
		if extra := len(errs) - max; extra > 0 {
			errs = append(errs[:max], fmt.Sprintf("... and %d more errors", extra))
		}
		return nil, fmt.Errorf("type-checking %s:\n\t%s", pkgPath, strings.Join(errs, "\n\t"))
	}
	if err != nil {
		// Errors the callback did not see (e.g. import cycles reported
		// directly); types.Error values still carry their position.
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return tpkg, nil
}

// Load type-checks the packages matching patterns (their non-test Go files)
// from source, resolving dependencies via export data, and returns them in a
// stable order. It is the standalone-driver counterpart of vet's unitchecker
// config.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		files, err := parseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		info := NewTypesInfo()
		tpkg, err := CheckTypes(p.ImportPath, fset, files, info, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			PkgPath: p.ImportPath, Dir: p.Dir,
			Fset: fset, Files: files, Types: tpkg, TypesInfo: info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// moduleExports caches the module-wide export map per module root so the
// fixture tests do not re-run `go list` for every analyzer.
var (
	moduleExportsMu sync.Mutex
	moduleExports   = make(map[string]map[string]string)
)

func exportsForModule(moduleRoot string) (map[string]string, error) {
	moduleExportsMu.Lock()
	defer moduleExportsMu.Unlock()
	if m, ok := moduleExports[moduleRoot]; ok {
		return m, nil
	}
	listed, err := goList(moduleRoot, "./...")
	if err != nil {
		return nil, err
	}
	m := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	moduleExports[moduleRoot] = m
	return m, nil
}

// LoadDir type-checks one directory of Go files (an analysistest fixture,
// typically under a testdata tree the go tool itself ignores) against the
// module rooted at moduleRoot, so fixtures may import the real packages
// they seed violations for.
func LoadDir(moduleRoot, dir string) (*Package, error) {
	exports, err := exportsForModule(moduleRoot)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	files, err := parseFiles(fset, dir, names)
	if err != nil {
		return nil, err
	}
	pkgPath := "gemlint.fixture/" + filepath.Base(dir)
	info := NewTypesInfo()
	tpkg, err := CheckTypes(pkgPath, fset, files, info, exportImporter(fset, exports))
	if err != nil {
		return nil, fmt.Errorf("fixture %s: %w", dir, err)
	}
	return &Package{
		PkgPath: pkgPath, Dir: dir,
		Fset: fset, Files: files, Types: tpkg, TypesInfo: info,
	}, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod directory.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}
