// Package analysistest runs an analyzer over a fixture directory and checks
// its diagnostics against `// want "regexp"` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"gem/internal/analysis"
)

// wantRe matches one expectation inside a // want comment. Several may
// appear in the same comment: // want "first" "second".
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the fixture directory, applies the analyzer, and reports any
// mismatch between diagnostics and the fixture's // want comments as test
// failures. OwnsRegistry, when non-nil, is passed through to the pass.
func Run(t *testing.T, moduleRoot, fixtureDir string, a *analysis.Analyzer, owns map[string]bool) {
	t.Helper()
	pkg, err := analysis.LoadDir(moduleRoot, fixtureDir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}

	// Collect expectations: file -> line -> pending matches.
	type fileLine struct {
		file string
		line int
	}
	expects := make(map[fileLine][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if idx < 0 || !strings.HasPrefix(strings.TrimLeft(strings.TrimPrefix(text, "//"), " \t"), "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[idx:], -1) {
					pattern := m[1]
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pattern, err)
					}
					key := fileLine{pos.Filename, pos.Line}
					expects[key] = append(expects[key], &expectation{line: pos.Line, re: re, raw: pattern})
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:     a,
		Fset:         pkg.Fset,
		Files:        pkg.Files,
		Pkg:          pkg.Types,
		TypesInfo:    pkg.TypesInfo,
		OwnsRegistry: owns,
		Report:       func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fileLine{pos.Filename, pos.Line}
		matched := false
		for _, e := range expects[key] {
			if !e.hit && e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for key, es := range expects {
		for _, e := range es {
			if !e.hit {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, e.raw)
			}
		}
	}
}

// Describe returns a compact one-line form of a diagnostic for debugging.
func Describe(fset *token.FileSet, d analysis.Diagnostic) string {
	return fmt.Sprintf("%s: %s", fset.Position(d.Pos), d.Message)
}
