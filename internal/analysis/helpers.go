package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WirePkgPath is the import path of the frame/pool package whose builders
// and Pool methods anchor the ownership rules.
const WirePkgPath = "gem/internal/wire"

// VerbsPkgPath is the import path of the verbs transport package whose
// credit, reservation, and PSN disciplines the creditbal, postcheck, and
// psnsafe passes enforce.
const VerbsPkgPath = "gem/internal/core/verbs"

// VerbsMethod returns the (*types.Func).FullName of a pointer-receiver
// method on a verbs transport type, e.g. VerbsMethod("QP", "PostRead").
func VerbsMethod(recv, name string) string {
	return "(*" + VerbsPkgPath + "." + recv + ")." + name
}

// BuiltinOwns is the ownership-transfer table for the repo's fabric entry
// points: calling one of these hands the first []byte argument to the callee,
// which becomes responsible for recycling it. The table is keyed by
// (*types.Func).FullName. //gem:owns annotations extend it; the standalone
// driver merges annotations found anywhere in the module.
var BuiltinOwns = map[string]bool{
	"(*" + WirePkgPath + ".Pool).Put":               true,
	"(*gem/internal/switchsim.Context).Emit":        true,
	"(*gem/internal/switchsim.Context).DropFrame":   true,
	"(*gem/internal/switchsim.Context).Recirculate": true,
	"(*gem/internal/switchsim.Switch).Inject":       true,
	"(*gem/internal/switchsim.Switch).Receive":      true,
	"(*gem/internal/switchsim.Switch).runPipeline":  true,
	"(*gem/internal/switchsim.Switch).enqueue":      true,
	"(*gem/internal/netsim.Port).Send":              true,
	"(gem/internal/netsim.Device).Receive":          true,
	"(*gem/internal/netsim.Host).Receive":           true,
	"(*gem/internal/rnic.NIC).Receive":              true,
}

// Callee resolves the statically-known function or method a call invokes,
// or nil for calls through func values and other dynamic targets.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsByteSlice reports whether t is []byte (after named-type unwrapping).
func IsByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// OwnedArgIndex returns the call-argument index corresponding to the first
// []byte parameter of fn, or -1. The receiver of a method call is not part
// of call.Args, so parameter indices line up with argument indices.
func OwnedArgIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if IsByteSlice(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

// OwnsAnnotations scans the files of one package for functions and interface
// methods whose doc comment contains a //gem:owns line and returns their
// FullNames. The annotation marks an ownership-transferring fabric entry
// point: the callee owns the first []byte argument from the call on.
func OwnsAnnotations(info *types.Info, files []*ast.File) map[string]bool {
	owns := make(map[string]bool)
	mark := func(ident *ast.Ident) {
		if fn, ok := info.Defs[ident].(*types.Func); ok {
			owns[fn.FullName()] = true
		}
	}
	hasTag := func(doc *ast.CommentGroup) bool {
		if doc == nil {
			return false
		}
		for _, c := range doc.List {
			if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "gem:owns") {
				return true
			}
		}
		return false
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if hasTag(d.Doc) {
					mark(d.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					iface, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					for _, m := range iface.Methods.List {
						if hasTag(m.Doc) {
							for _, name := range m.Names {
								mark(name)
							}
						}
					}
				}
			}
		}
	}
	return owns
}

// LineAnnotations returns, per file, the set of lines carrying a //gem:<tag>
// comment (e.g. tag "deterministic" or "alloc-ok"). A statement is considered
// annotated when the tag sits on its own line or the line directly above.
func LineAnnotations(fset *token.FileSet, files []*ast.File, tag string) map[string]map[int]bool {
	needle := "gem:" + tag
	out := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, needle) {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					out[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return out
}

// Annotated reports whether the node's line or the line above carries the
// annotation set returned by LineAnnotations.
func Annotated(fset *token.FileSet, ann map[string]map[int]bool, pos token.Pos) bool {
	p := fset.Position(pos)
	m := ann[p.Filename]
	return m != nil && (m[p.Line] || m[p.Line-1])
}

// MergeOwns layers the pass-level registry and local annotations over the
// builtin table.
func MergeOwns(pass *Pass) map[string]bool {
	owns := make(map[string]bool, len(BuiltinOwns))
	for k := range BuiltinOwns {
		owns[k] = true
	}
	for k := range pass.OwnsRegistry {
		owns[k] = true
	}
	for k := range OwnsAnnotations(pass.TypesInfo, pass.Files) {
		owns[k] = true
	}
	return owns
}
