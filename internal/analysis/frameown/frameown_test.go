package frameown_test

import (
	"path/filepath"
	"testing"

	"gem/internal/analysis"
	"gem/internal/analysis/analysistest"
	"gem/internal/analysis/frameown"
)

func TestFrameown(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fixture := filepath.Join(root, "internal", "analysis", "testdata", "src", "frameown")
	analysistest.Run(t, root, fixture, frameown.Analyzer, nil)
}
