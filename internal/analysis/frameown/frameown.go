// Package frameown implements the gemlint pass that enforces the pooled
// frame-ownership contract: a []byte acquired from wire.Pool (or a wire
// builder) must be released or handed to exactly one owner on every path,
// and never touched again after the handoff.
//
// The pass is intra-procedural and path-sensitive: it builds each
// function's CFG (internal/analysis/cfg) and runs a forward dataflow
// analysis over it, tracking every local []byte variable as a set of
// possible ownership facts — may-owned, may-released — that joins by union
// at merge points. It reports:
//
//   - double release/transfer: the frame reaches an owning call (Pool.Put,
//     Context.Emit, Port.Send, anything //gem:owns) twice on some path,
//     including the loop-carried variant that shipped the L2 flood bug and
//     the goto-retry variant the old linear scan missed;
//   - use after release: any read of the variable once ownership is
//     definitely gone;
//   - leak: a locally-acquired frame still owned on some path out of the
//     function — an early return, a break/continue edge that skips the
//     release, or a select arm without one.
//
// Aliasing (slicing, struct stores, closure capture, dynamic calls) demotes
// a variable to untracked rather than guessing: the pass prefers silence to
// false positives, and the runtime pool balance check (wire.Pool
// AssertBalanced) backstops what static analysis abstains from.
package frameown

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gem/internal/analysis"
	"gem/internal/analysis/cfg"
)

// Analyzer is the frameown pass.
var Analyzer = &analysis.Analyzer{
	Name: "frameown",
	Doc:  "enforce the pooled frame-ownership contract (double release, use after release, leaks)",
	Run:  run,
}

// state is a bitset of ownership facts that may hold on some path into the
// current program point. Union is the join: stOwned|stReleased means a
// branch released the frame and another did not.
type state uint8

const (
	stOwned state = 1 << iota
	stReleased
)

// varInfo is the abstract value of one tracked []byte variable.
type varInfo struct {
	state state
	// local is true for frames acquired in this function (pool.Get or a
	// wire builder): only those are leak-checked at returns.
	local bool
	// escaped disables the leak check once the value aliases into
	// something the pass cannot follow.
	escaped bool
	// deferRel records a `defer pool.Put(v)` style release.
	deferRel bool
	// relPos is where ownership first left, for the double-release message.
	relPos token.Pos
}

func (v *varInfo) clone() *varInfo { c := *v; return &c }

// env maps tracked variables to their abstract state.
type env map[*types.Var]*varInfo

func (e env) clone() env {
	c := make(env, len(e))
	for k, v := range e {
		c[k] = v.clone()
	}
	return c
}

// join merges another path's state into e by union: a variable owned on one
// path and released on the other carries both facts, so the later owning
// call still reports "released twice on some path" and the exit check still
// reports "leaks on some path". deferRel survives only when both paths have
// the deferred cover.
func (e env) join(o env) {
	for k, v := range e {
		if ov, ok := o[k]; ok {
			v.state |= ov.state
			v.escaped = v.escaped || ov.escaped
			v.deferRel = v.deferRel && ov.deferRel
			if v.relPos == token.NoPos {
				v.relPos = ov.relPos
			}
		}
	}
	for k, ov := range o {
		if _, ok := e[k]; !ok {
			e[k] = ov.clone()
		}
	}
}

// equal is the fixpoint convergence test; relPos is cosmetic and excluded.
func (e env) equal(o env) bool {
	if len(e) != len(o) {
		return false
	}
	for k, v := range e {
		ov, ok := o[k]
		if !ok || ov.state != v.state || ov.local != v.local ||
			ov.escaped != v.escaped || ov.deferRel != v.deferRel {
			return false
		}
	}
	return true
}

type checker struct {
	pass *analysis.Pass
	owns map[string]bool
	// silent suppresses reports during the convergence phase; the
	// reporting phase then visits each reachable block exactly once.
	silent bool
	// seen dedups diagnostics across blocks and exit edges.
	seen map[string]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass: pass,
		owns: analysis.MergeOwns(pass),
		seen: make(map[string]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.silent {
		return
	}
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.pass.Reportf(pos, "%s", msg)
}

func (c *checker) posStr(pos token.Pos) string {
	p := c.pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", shortFile(p.Filename), p.Line)
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	base := make(env)
	// []byte parameters start owned-but-borrowed: double release and use
	// after release apply, the leak check does not (the caller may retain
	// ownership on non-transferring calls).
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok && analysis.IsByteSlice(v.Type()) {
					base[v] = &varInfo{state: stOwned, local: false}
				}
			}
		}
	}

	g := cfg.New(fd.Body, c.pass.TypesInfo)
	flow := cfg.Flow[env]{
		Entry:    func() env { return base.clone() },
		Clone:    func(s env) env { return s.clone() },
		Join:     func(dst, src env) env { dst.join(src); return dst },
		Transfer: func(b *cfg.Block, s env) env { c.transfer(b, s); return s },
		Equal:    func(a, b env) bool { return a.equal(b) },
	}

	// Phase 1: converge silently so loop-carried facts (a transfer flowing
	// around the back edge, a leak around a continue) settle. Phase 2: one
	// reporting visit per reachable block from the converged entry states,
	// then the leak check on every fall-off-the-end edge.
	c.silent = true
	in := cfg.Fixpoint(g, flow)
	c.silent = false
	for _, b := range g.ReversePostorder() {
		s, ok := in[b]
		if !ok {
			continue
		}
		s = s.clone()
		c.transfer(b, s)
		if b.Returns() || b.Panics {
			continue
		}
		for _, succ := range b.Succs {
			if succ == g.Exit {
				c.leakCheck(s, fd.Body.Rbrace)
				break
			}
		}
	}
}

// transfer applies one block's nodes to the environment.
func (c *checker) transfer(b *cfg.Block, e env) {
	for _, n := range b.Nodes {
		c.node(n, e)
	}
}

// node interprets one CFG node.
func (c *checker) node(n ast.Node, e env) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		c.walkAssign(s, e)

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						c.checkUses(e, val, nil)
						if call, ok := ast.Unparen(val).(*ast.CallExpr); ok {
							c.handleCall(e, call, false)
						}
					}
					if len(vs.Names) == 1 && len(vs.Values) == 1 {
						if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok && c.acquires(call) {
							if v, ok := c.pass.TypesInfo.Defs[vs.Names[0]].(*types.Var); ok {
								e[v] = &varInfo{state: stOwned, local: true}
							}
						}
					}
				}
			}
		}

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			c.handleCall(e, call, false)
		} else {
			c.checkUses(e, s.X, nil)
		}

	case *ast.DeferStmt:
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			c.closureEscape(e, lit)
			return
		}
		c.handleCall(e, s.Call, true)

	case *ast.GoStmt:
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			c.closureEscape(e, lit)
			return
		}
		// Frame args to a goroutine escape: release timing is unknowable.
		for _, arg := range s.Call.Args {
			c.checkUses(e, arg, nil)
			c.escapeVar(e, arg)
		}

	case *ast.ReturnStmt:
		for _, res := range s.Results {
			c.checkUses(e, res, nil)
			if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
				c.handleCall(e, call, false)
			}
			// Returning a frame transfers ownership to the caller.
			if _, info := c.varOf(e, res); info != nil && info.state&stOwned != 0 {
				info.state = stReleased
				info.relPos = res.Pos()
				info.escaped = true
			}
		}
		c.leakCheck(e, s.Pos())

	case *ast.SendStmt:
		c.checkUses(e, s.Chan, nil)
		c.checkUses(e, s.Value, nil)
		c.escapeVar(e, s.Value)

	case *ast.IncDecStmt:
		c.checkUses(e, s.X, nil)

	case *ast.RangeStmt:
		// The header node: X is a read; Key/Value are fresh per-iteration
		// definitions of non-frame loop variables (a []byte range element
		// would be an alias the pass does not track).
		c.checkUses(e, s.X, nil)

	case *ast.BranchStmt, *ast.EmptyStmt:

	case ast.Expr:
		// Branch conditions, switch tags, case expressions: reads, plus any
		// call effects (an owning call in a condition runs on both edges).
		if call, ok := ast.Unparen(s).(*ast.CallExpr); ok {
			c.handleCall(e, call, false)
		} else {
			c.checkUses(e, s, nil)
		}
	}
}

// escapeVar demotes a tracked variable mentioned as expr to escaped.
func (c *checker) escapeVar(e env, expr ast.Expr) {
	if v, info := c.varOf(e, expr); info != nil {
		info.escaped = true
		if info.state&stOwned != 0 {
			delete(e, v)
		}
	}
}

// leakCheck reports locally-acquired frames still owned on some path at a
// function exit.
func (c *checker) leakCheck(e env, pos token.Pos) {
	for v, info := range e {
		if info.state&stOwned != 0 && info.local && !info.escaped && !info.deferRel {
			c.report(pos, "owned frame %q leaks: no release, emit, or ownership transfer on this path (acquired at %s)",
				v.Name(), c.posStr(v.Pos()))
		}
	}
}

// varOf resolves expr to a tracked variable, seeing through parens.
func (c *checker) varOf(e env, expr ast.Expr) (*types.Var, *varInfo) {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil, nil
	}
	info := e[v]
	return v, info
}

// checkUses walks expr reporting reads of definitely-released variables;
// skip, when non-nil, suppresses the report for one ident (the argument of
// the very call being handled).
func (c *checker) checkUses(e env, expr ast.Expr, skip *ast.Ident) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.closureEscape(e, lit)
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == skip {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if info := e[v]; info != nil && info.state == stReleased {
			c.report(id.Pos(), "use of frame %q after release/transfer (released at %s)",
				v.Name(), c.posStr(info.relPos))
		}
		return true
	})
}

// closureEscape marks every tracked variable captured by a func literal as
// escaped and untracked: the closure may release or outlive it.
func (c *checker) closureEscape(e env, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
			if info := e[v]; info != nil {
				info.escaped = true
				if info.state&stOwned != 0 {
					delete(e, v)
				}
			}
		}
		return true
	})
}

// acquires reports whether call returns a fresh pooled frame: Pool.Get or a
// wire Build* builder (legacy or Into form).
func (c *checker) acquires(call *ast.CallExpr) bool {
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if fn.FullName() == "(*"+analysis.WirePkgPath+".Pool).Get" {
		return true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == analysis.WirePkgPath &&
		strings.HasPrefix(fn.Name(), "Build") {
		sig, ok := fn.Type().(*types.Signature)
		return ok && sig.Results().Len() == 1 && analysis.IsByteSlice(sig.Results().At(0).Type())
	}
	return false
}

// handleCall applies a call's effect on the environment.
func (c *checker) handleCall(e env, call *ast.CallExpr, deferred bool) {
	// Nested calls in arguments first (e.g. Send(BuildAckInto(...)) —
	// handled as an immediate transfer of an anonymous frame: nothing to
	// track).
	for _, arg := range call.Args {
		if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
			c.handleCall(e, inner, false)
		}
	}

	// Builtins (len, cap, copy, append, delete, clear) only read the
	// buffer: a borrow, not an escape. Losing track here would hide leaks
	// past the ubiquitous copy(dst, frame) idiom.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			for _, arg := range call.Args {
				c.checkUses(e, arg, nil)
			}
			return
		}
	}

	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		// Dynamic call: tracked arguments escape.
		for _, arg := range call.Args {
			c.checkUses(e, arg, nil)
			c.escapeVar(e, arg)
		}
		c.checkUses(e, call.Fun, nil)
		return
	}

	if c.owns[fn.FullName()] {
		idx := analysis.OwnedArgIndex(fn)
		if idx >= 0 && idx < len(call.Args) {
			if v, info := c.varOf(e, call.Args[idx]); info != nil {
				_ = v
				if info.state&stReleased != 0 {
					c.report(call.Args[idx].Pos(),
						"frame %q released or transferred twice on this path (first at %s, again in call to %s)",
						v.Name(), c.posStr(info.relPos), fn.Name())
				}
				if deferred {
					info.deferRel = true
				} else {
					if info.state&stReleased == 0 {
						info.relPos = call.Args[idx].Pos()
					}
					info.state = stReleased
				}
			}
			// Other arguments are plain uses.
			for i, arg := range call.Args {
				if i == idx {
					continue
				}
				c.checkUses(e, arg, nil)
			}
			return
		}
	}

	// Statically-known non-owning call: a borrow. The callee may read the
	// frame but ownership stays here — this is precisely what lets the pass
	// flag leaks past calls like DecodeFromBytes or copy.
	for _, arg := range call.Args {
		c.checkUses(e, arg, nil)
	}
	c.checkUses(e, call.Fun, nil)
}

// walkAssign handles acquisition, aliasing, and reassignment.
func (c *checker) walkAssign(s *ast.AssignStmt, e env) {
	// RHS effects first.
	for _, rhs := range s.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			c.handleCall(e, call, false)
		} else {
			c.checkUses(e, rhs, nil)
		}
	}

	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		lhsID, _ := ast.Unparen(s.Lhs[0]).(*ast.Ident)
		rhs := ast.Unparen(s.Rhs[0])

		// v := pool.Get(n) / v := wire.BuildXInto(...)
		if call, ok := rhs.(*ast.CallExpr); ok && c.acquires(call) && lhsID != nil {
			var v *types.Var
			if s.Tok == token.DEFINE {
				v, _ = c.pass.TypesInfo.Defs[lhsID].(*types.Var)
			} else {
				v, _ = c.pass.TypesInfo.Uses[lhsID].(*types.Var)
				if info := e[v]; info != nil && info.state == stOwned && info.local && !info.escaped && !info.deferRel {
					c.report(s.Pos(), "owned frame %q overwritten before release: the previous buffer leaks", v.Name())
				}
			}
			if v != nil && analysis.IsByteSlice(v.Type()) {
				e[v] = &varInfo{state: stOwned, local: true}
			}
			return
		}

		// Alias flows: w := v, w := v[a:b] — the source stays owned for
		// double-release purposes but is no longer leak-checkable.
		if _, info := c.aliasSource(e, rhs); info != nil {
			info.escaped = true
		}

		// Reassigning a tracked variable to anything else unlinks it.
		if lhsID != nil {
			var v *types.Var
			if s.Tok == token.DEFINE {
				v, _ = c.pass.TypesInfo.Defs[lhsID].(*types.Var)
			} else {
				v, _ = c.pass.TypesInfo.Uses[lhsID].(*types.Var)
			}
			if v != nil {
				delete(e, v)
			}
			return
		}
	}

	// Multi-assign / compound LHS (field, index, map stores): tracked RHS
	// values escape; tracked LHS targets reset.
	for _, rhs := range s.Rhs {
		c.escapeVar(e, rhs)
	}
	for _, lhs := range s.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
				delete(e, v)
			}
			if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
				delete(e, v)
			}
		} else {
			c.checkUses(e, lhs, nil)
		}
	}
}

// aliasSource returns the tracked variable whose buffer expr aliases: the
// variable itself, or a slice expression over it.
func (c *checker) aliasSource(e env, expr ast.Expr) (*types.Var, *varInfo) {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return c.varOf(e, x)
	case *ast.SliceExpr:
		return c.varOf(e, x.X)
	}
	return nil, nil
}
