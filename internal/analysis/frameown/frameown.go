// Package frameown implements the gemlint pass that enforces the pooled
// frame-ownership contract: a []byte acquired from wire.Pool (or a wire
// builder) must be released or handed to exactly one owner on every path,
// and never touched again after the handoff.
//
// The pass is intra-procedural. It runs a small abstract interpreter over
// each function body, tracking every local []byte variable through three
// states — owned, released (recycled or transferred), untracked — and
// reports:
//
//   - double release/transfer: the frame reaches an owning call (Pool.Put,
//     Context.Emit, Port.Send, anything //gem:owns) twice on one path,
//     including the loop-carried variant that shipped the L2 flood bug;
//   - use after release: any read of the variable once ownership is gone;
//   - leak: a locally-acquired frame that escapes the function on some
//     return path with no release, emit, or ownership transfer.
//
// Aliasing (slicing, struct stores, closure capture, dynamic calls) demotes
// a variable to untracked rather than guessing: the pass prefers silence to
// false positives, and the runtime pool balance check (wire.Pool
// AssertBalanced) backstops what static analysis abstains from.
package frameown

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gem/internal/analysis"
)

// Analyzer is the frameown pass.
var Analyzer = &analysis.Analyzer{
	Name: "frameown",
	Doc:  "enforce the pooled frame-ownership contract (double release, use after release, leaks)",
	Run:  run,
}

type state int

const (
	stOwned state = iota
	stReleased
)

// varInfo is the abstract value of one tracked []byte variable.
type varInfo struct {
	state state
	// local is true for frames acquired in this function (pool.Get or a
	// wire builder): only those are leak-checked at returns.
	local bool
	// escaped disables the leak check once the value aliases into
	// something the pass cannot follow.
	escaped bool
	// deferRel records a `defer pool.Put(v)` style release.
	deferRel bool
	// relPos is where ownership left, for the double-release message.
	relPos token.Pos
}

func (v *varInfo) clone() *varInfo { c := *v; return &c }

// env maps tracked variables to their abstract state.
type env map[*types.Var]*varInfo

func (e env) clone() env {
	c := make(env, len(e))
	for k, v := range e {
		c[k] = v.clone()
	}
	return c
}

// join merges a branch state back into e: variables that disagree between
// the paths become untracked (the conservative top).
func (e env) join(o env) {
	for k, v := range e {
		ov, ok := o[k]
		if !ok {
			delete(e, k)
			continue
		}
		if ov.state != v.state {
			delete(e, k)
			continue
		}
		v.escaped = v.escaped || ov.escaped
		v.deferRel = v.deferRel && ov.deferRel
	}
	for k := range o {
		if _, ok := e[k]; !ok {
			// Variable tracked on only one path: drop it.
			delete(e, k)
		}
	}
}

type checker struct {
	pass *analysis.Pass
	owns map[string]bool
	// seen dedups diagnostics: loop bodies are walked twice.
	seen map[string]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass: pass,
		owns: analysis.MergeOwns(pass),
		seen: make(map[string]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.pass.Reportf(pos, "%s", msg)
}

func (c *checker) posStr(pos token.Pos) string {
	p := c.pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", shortFile(p.Filename), p.Line)
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	e := make(env)
	// []byte parameters start owned-but-borrowed: double release and use
	// after release apply, the leak check does not (the caller may retain
	// ownership on non-transferring calls).
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok && analysis.IsByteSlice(v.Type()) {
					e[v] = &varInfo{state: stOwned, local: false}
				}
			}
		}
	}
	if !c.walkStmt(fd.Body, e) {
		// Only fall-off-the-end exits: terminating bodies already ran the
		// leak check at their return statement.
		c.leakCheck(e, fd.Body.Rbrace)
	}
}

// leakCheck reports locally-acquired owned frames alive at a function exit.
func (c *checker) leakCheck(e env, pos token.Pos) {
	for v, info := range e {
		if info.state == stOwned && info.local && !info.escaped && !info.deferRel {
			c.report(pos, "owned frame %q leaks: no release, emit, or ownership transfer on this path (acquired at %s)",
				v.Name(), c.posStr(v.Pos()))
		}
	}
}

// varOf resolves expr to a tracked variable, seeing through parens.
func (c *checker) varOf(e env, expr ast.Expr) (*types.Var, *varInfo) {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return nil, nil
	}
	info := e[v]
	return v, info
}

// checkUses walks expr reporting reads of released variables; skip, when
// non-nil, suppresses the report for one ident (the argument of the very
// call being handled).
func (c *checker) checkUses(e env, expr ast.Expr, skip *ast.Ident) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.closureEscape(e, lit)
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == skip {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if info := e[v]; info != nil && info.state == stReleased {
			c.report(id.Pos(), "use of frame %q after release/transfer (released at %s)",
				v.Name(), c.posStr(info.relPos))
		}
		return true
	})
}

// closureEscape marks every tracked variable captured by a func literal as
// escaped and untracked: the closure may release or outlive it.
func (c *checker) closureEscape(e env, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
			if info := e[v]; info != nil {
				info.escaped = true
				if info.state == stOwned {
					delete(e, v)
				}
			}
		}
		return true
	})
}

// acquires reports whether call returns a fresh pooled frame: Pool.Get or a
// wire Build* builder (legacy or Into form).
func (c *checker) acquires(call *ast.CallExpr) bool {
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if fn.FullName() == "(*"+analysis.WirePkgPath+".Pool).Get" {
		return true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == analysis.WirePkgPath &&
		strings.HasPrefix(fn.Name(), "Build") {
		sig, ok := fn.Type().(*types.Signature)
		return ok && sig.Results().Len() == 1 && analysis.IsByteSlice(sig.Results().At(0).Type())
	}
	return false
}

// handleCall applies a call's effect on the environment and returns true if
// the call was an ownership transfer of some tracked variable.
func (c *checker) handleCall(e env, call *ast.CallExpr, deferred bool) {
	// Nested calls in arguments first (e.g. Send(BuildAckInto(...)) —
	// handled as an immediate transfer of an anonymous frame: nothing to
	// track).
	for _, arg := range call.Args {
		if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
			c.handleCall(e, inner, false)
		}
	}

	// Builtins (len, cap, copy, append, delete, clear) only read the
	// buffer: a borrow, not an escape. Losing track here would hide leaks
	// past the ubiquitous copy(dst, frame) idiom.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			for _, arg := range call.Args {
				c.checkUses(e, arg, nil)
			}
			return
		}
	}

	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		// Dynamic call: tracked arguments escape.
		for _, arg := range call.Args {
			c.checkUses(e, arg, nil)
			if v, info := c.varOf(e, arg); info != nil {
				_ = v
				info.escaped = true
				if info.state == stOwned {
					delete(e, v)
				}
			}
		}
		c.checkUses(e, call.Fun, nil)
		return
	}

	if c.owns[fn.FullName()] {
		idx := analysis.OwnedArgIndex(fn)
		if idx >= 0 && idx < len(call.Args) {
			if v, info := c.varOf(e, call.Args[idx]); info != nil {
				switch info.state {
				case stReleased:
					c.report(call.Args[idx].Pos(),
						"frame %q released or transferred twice on this path (first at %s, again in call to %s)",
						v.Name(), c.posStr(info.relPos), fn.Name())
				case stOwned:
					if deferred {
						info.deferRel = true
					} else {
						info.state = stReleased
						info.relPos = call.Args[idx].Pos()
					}
				}
			}
			// Other arguments are plain uses.
			for i, arg := range call.Args {
				if i == idx {
					continue
				}
				c.checkUses(e, arg, nil)
			}
			return
		}
	}

	// Statically-known non-owning call: a borrow. The callee may read the
	// frame but ownership stays here — this is precisely what lets the pass
	// flag leaks past calls like DecodeFromBytes or copy.
	for _, arg := range call.Args {
		c.checkUses(e, arg, nil)
	}
	c.checkUses(e, call.Fun, nil)
}

// walkStmt interprets stmt, mutating e. It returns true when the statement
// definitely terminates the enclosing path (return / panic).
func (c *checker) walkStmt(stmt ast.Stmt, e env) bool {
	switch s := stmt.(type) {
	case nil:
		return false

	case *ast.BlockStmt:
		for _, sub := range s.List {
			if c.walkStmt(sub, e) {
				return true
			}
		}
		return false

	case *ast.AssignStmt:
		return c.walkAssign(s, e)

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						c.checkUses(e, val, nil)
						if call, ok := ast.Unparen(val).(*ast.CallExpr); ok {
							c.handleCall(e, call, false)
						}
					}
					if len(vs.Names) == 1 && len(vs.Values) == 1 {
						if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok && c.acquires(call) {
							if v, ok := c.pass.TypesInfo.Defs[vs.Names[0]].(*types.Var); ok {
								e[v] = &varInfo{state: stOwned, local: true}
							}
						}
					}
				}
			}
		}
		return false

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			c.handleCall(e, call, false)
		} else {
			c.checkUses(e, s.X, nil)
		}
		return false

	case *ast.DeferStmt:
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			c.closureEscape(e, lit)
			return false
		}
		c.handleCall(e, s.Call, true)
		return false

	case *ast.GoStmt:
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			c.closureEscape(e, lit)
			return false
		}
		// Frame args to a goroutine escape: release timing is unknowable.
		for _, arg := range s.Call.Args {
			c.checkUses(e, arg, nil)
			if v, info := c.varOf(e, arg); info != nil {
				info.escaped = true
				if info.state == stOwned {
					delete(e, v)
				}
			}
		}
		return false

	case *ast.ReturnStmt:
		for _, res := range s.Results {
			c.checkUses(e, res, nil)
			if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
				c.handleCall(e, call, false)
			}
			// Returning a frame transfers ownership to the caller.
			if v, info := c.varOf(e, res); info != nil && info.state == stOwned {
				_ = v
				info.state = stReleased
				info.relPos = res.Pos()
				info.escaped = true
			}
		}
		c.leakCheck(e, s.Pos())
		return true

	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, e)
		}
		c.checkUses(e, s.Cond, nil)
		thenEnv := e.clone()
		thenTerm := c.walkStmt(s.Body, thenEnv)
		if s.Else != nil {
			elseEnv := e.clone()
			elseTerm := c.walkStmt(s.Else, elseEnv)
			switch {
			case thenTerm && elseTerm:
				// Both branches end the path; anything after is dead.
				return true
			case thenTerm:
				replace(e, elseEnv)
			case elseTerm:
				replace(e, thenEnv)
			default:
				thenEnv.join(elseEnv)
				replace(e, thenEnv)
			}
			return false
		}
		if !thenTerm {
			thenEnv.join(e)
			replace(e, thenEnv)
		}
		// then-branch returned: fall-through state is the pre-branch e.
		return false

	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, e)
		}
		c.checkUses(e, s.Cond, nil)
		c.walkLoopBody(s.Body, s.Post, e)
		return false

	case *ast.RangeStmt:
		c.checkUses(e, s.X, nil)
		c.walkLoopBody(s.Body, nil, e)
		return false

	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, e)
		}
		c.checkUses(e, s.Tag, nil)
		c.walkCases(s.Body, e, false)
		return false

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, e)
		}
		c.walkCases(s.Body, e, false)
		return false

	case *ast.SelectStmt:
		c.walkCases(s.Body, e, true)
		return false

	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, e)

	case *ast.BranchStmt:
		// break/continue/goto: approximate by ending this path without a
		// leak check (the frame stays live in the loop's next state).
		return s.Tok == token.GOTO

	case *ast.IncDecStmt:
		c.checkUses(e, s.X, nil)
		return false

	case *ast.SendStmt:
		c.checkUses(e, s.Chan, nil)
		c.checkUses(e, s.Value, nil)
		if v, info := c.varOf(e, s.Value); info != nil {
			_ = v
			info.escaped = true
			if info.state == stOwned {
				delete(e, v)
			}
		}
		return false

	default:
		return false
	}
}

// replace overwrites e in place with the contents of src.
func replace(e, src env) {
	for k := range e {
		delete(e, k)
	}
	for k, v := range src {
		e[k] = v
	}
}

// walkLoopBody interprets a loop body twice so that state flowing around the
// back edge (ownership transferred on iteration 1, transferred again on
// iteration 2) surfaces; the diagnostic dedup keeps the double-walk silent
// for clean code. The loop may run zero times, so the final state is the
// join of the pre-loop and post-body environments.
func (c *checker) walkLoopBody(body *ast.BlockStmt, post ast.Stmt, e env) {
	pre := e.clone()
	for i := 0; i < 2; i++ {
		c.walkStmt(body, e)
		if post != nil {
			c.walkStmt(post, e)
		}
	}
	e.join(pre)
}

// walkCases interprets each case clause of a switch/select body from the
// entry state and joins the results.
func (c *checker) walkCases(body *ast.BlockStmt, e env, isSelect bool) {
	entry := e.clone()
	var joined env
	sawDefault := false
	for _, raw := range body.List {
		caseEnv := entry.clone()
		var stmts []ast.Stmt
		switch cl := raw.(type) {
		case *ast.CaseClause:
			for _, x := range cl.List {
				c.checkUses(caseEnv, x, nil)
			}
			if cl.List == nil {
				sawDefault = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				c.walkStmt(cl.Comm, caseEnv)
			} else {
				sawDefault = true
			}
			stmts = cl.Body
		}
		term := false
		for _, st := range stmts {
			if c.walkStmt(st, caseEnv) {
				term = true
				break
			}
		}
		if term {
			continue
		}
		if joined == nil {
			joined = caseEnv
		} else {
			joined.join(caseEnv)
		}
	}
	if joined == nil {
		joined = entry.clone()
	} else if !sawDefault && !isSelect {
		// No default: the switch may fall through untouched.
		joined.join(entry)
	}
	replace(e, joined)
}

// walkAssign handles acquisition, aliasing, and reassignment.
func (c *checker) walkAssign(s *ast.AssignStmt, e env) bool {
	// RHS effects first.
	for _, rhs := range s.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			c.handleCall(e, call, false)
		} else {
			c.checkUses(e, rhs, nil)
		}
	}

	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		lhsID, _ := ast.Unparen(s.Lhs[0]).(*ast.Ident)
		rhs := ast.Unparen(s.Rhs[0])

		// v := pool.Get(n) / v := wire.BuildXInto(...)
		if call, ok := rhs.(*ast.CallExpr); ok && c.acquires(call) && lhsID != nil {
			var v *types.Var
			if s.Tok == token.DEFINE {
				v, _ = c.pass.TypesInfo.Defs[lhsID].(*types.Var)
			} else {
				v, _ = c.pass.TypesInfo.Uses[lhsID].(*types.Var)
				if info := e[v]; info != nil && info.state == stOwned && info.local && !info.escaped && !info.deferRel {
					c.report(s.Pos(), "owned frame %q overwritten before release: the previous buffer leaks", v.Name())
				}
			}
			if v != nil && analysis.IsByteSlice(v.Type()) {
				e[v] = &varInfo{state: stOwned, local: true}
			}
			return false
		}

		// Alias flows: w := v, w := v[a:b] — the source stays owned for
		// double-release purposes but is no longer leak-checkable.
		if src, info := c.aliasSource(e, rhs); info != nil {
			_ = src
			info.escaped = true
		}

		// Reassigning a tracked variable to anything else unlinks it.
		if lhsID != nil {
			var v *types.Var
			if s.Tok == token.DEFINE {
				v, _ = c.pass.TypesInfo.Defs[lhsID].(*types.Var)
			} else {
				v, _ = c.pass.TypesInfo.Uses[lhsID].(*types.Var)
			}
			if v != nil {
				if info := e[v]; info != nil {
					delete(e, v)
				}
			}
			return false
		}
	}

	// Multi-assign / compound LHS (field, index, map stores): tracked RHS
	// values escape; tracked LHS targets reset.
	for _, rhs := range s.Rhs {
		if v, info := c.varOf(e, rhs); info != nil {
			_ = v
			info.escaped = true
			if info.state == stOwned {
				delete(e, v)
			}
		}
	}
	for _, lhs := range s.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
				delete(e, v)
			}
			if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
				delete(e, v)
			}
		} else {
			c.checkUses(e, lhs, nil)
		}
	}
	return false
}

// aliasSource returns the tracked variable whose buffer expr aliases: the
// variable itself, or a slice expression over it.
func (c *checker) aliasSource(e env, expr ast.Expr) (*types.Var, *varInfo) {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return c.varOf(e, x)
	case *ast.SliceExpr:
		return c.varOf(e, x.X)
	}
	return nil, nil
}
