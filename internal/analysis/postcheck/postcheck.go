// Package postcheck implements the gemlint pass that forbids dropping the
// boolean result of a verbs posting or admission call. Every Post*,
// TryReserve, TryAcquire, and Can* on the transport returns false when the
// op was refused — by credit gating, a full send queue, or a closed
// doorbell window — and a caller that ignores that false has silently lost
// an op: the deposit never lands, the read is never reposted, and no
// runtime check will ever notice. The pass flags three shapes:
//
//   - a bare expression statement (`qp.PostWrite(off, buf)`);
//   - an assignment to the blank identifier (`_ = qp.Repost(tok)`);
//   - a go/defer of such a call, whose result is unobservable by
//     construction.
//
// Intentional fire-and-forget sites (a best-effort hint write whose loss is
// benign) are waived with //gem:post-ok on the call's line or the line
// above.
package postcheck

import (
	"fmt"
	"go/ast"

	"gem/internal/analysis"
)

// Analyzer is the postcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "postcheck",
	Doc:  "the boolean result of verbs Post*/TryReserve/Can* calls must be consumed",
	Run:  run,
}

// Tag is the waiver annotation.
const Tag = "post-ok"

// mustConsume maps the FullName of each refusable verbs call to the short
// label used in diagnostics.
var mustConsume = map[string]string{
	analysis.VerbsMethod("Credits", "TryAcquire"):      "Credits.TryAcquire",
	analysis.VerbsMethod("Credits", "CanAcquire"):      "Credits.CanAcquire",
	analysis.VerbsMethod("QP", "TryReserve"):           "QP.TryReserve",
	analysis.VerbsMethod("QP", "CanPost"):              "QP.CanPost",
	analysis.VerbsMethod("QP", "PostRead"):             "QP.PostRead",
	analysis.VerbsMethod("QP", "PostWrite"):            "QP.PostWrite",
	analysis.VerbsMethod("QP", "PostFetchAdd"):         "QP.PostFetchAdd",
	analysis.VerbsMethod("QP", "DeferFetchAdd"):        "QP.DeferFetchAdd",
	analysis.VerbsMethod("QP", "Repost"):               "QP.Repost",
	analysis.VerbsMethod("StripedQP", "CanPost"):       "StripedQP.CanPost",
	analysis.VerbsMethod("StripedQP", "PostRead"):      "StripedQP.PostRead",
	analysis.VerbsMethod("StripedQP", "PostWrite"):     "StripedQP.PostWrite",
	analysis.VerbsMethod("StripedQP", "PostFetchAdd"):  "StripedQP.PostFetchAdd",
	analysis.VerbsMethod("StripedQP", "DeferFetchAdd"): "StripedQP.DeferFetchAdd",
	analysis.VerbsMethod("StripedQP", "Repost"):        "StripedQP.Repost",
}

func run(pass *analysis.Pass) error {
	ann := analysis.LineAnnotations(pass.Fset, pass.Files, Tag)

	// target resolves expr to a must-consume call, or ("", nil).
	target := func(expr ast.Expr) (string, *ast.CallExpr) {
		call, ok := ast.Unparen(expr).(*ast.CallExpr)
		if !ok {
			return "", nil
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil {
			return "", nil
		}
		label, ok := mustConsume[fn.FullName()]
		if !ok {
			return "", nil
		}
		return label, call
	}

	flag := func(call *ast.CallExpr, format string, args ...any) {
		if analysis.Annotated(pass.Fset, ann, call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(), "%s", fmt.Sprintf(format, args...))
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if label, call := target(s.X); call != nil {
					flag(call, "result of %s dropped: a false return is a refused op that is silently lost; handle it or annotate //gem:post-ok", label)
				}
			case *ast.GoStmt:
				if label, call := target(s.Call); call != nil {
					flag(call, "result of %s discarded by go statement: a refusal can never be observed", label)
				}
			case *ast.DeferStmt:
				if label, call := target(s.Call); call != nil {
					flag(call, "result of %s discarded by defer: a refusal can never be observed", label)
				}
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, rhs := range s.Rhs {
					label, call := target(rhs)
					if call == nil {
						continue
					}
					if id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
						flag(call, "result of %s assigned to the blank identifier: a refused op is silently lost; handle it or annotate //gem:post-ok", label)
					}
				}
			}
			return true
		})
	}
	return nil
}
