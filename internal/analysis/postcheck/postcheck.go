// Package postcheck implements the gemlint pass that forbids dropping the
// boolean result of a verbs posting or admission call. Every Post*,
// TryReserve, TryAcquire, and Can* on the transport returns false when the
// op was refused — by credit gating, a full send queue, or a closed
// doorbell window — and a caller that ignores that false has silently lost
// an op: the deposit never lands, the read is never reposted, and no
// runtime check will ever notice. The pass flags three shapes:
//
//   - a bare expression statement (`qp.PostWrite(off, buf)`);
//   - an assignment to the blank identifier (`_ = qp.Repost(tok)`);
//   - a go/defer of such a call, whose result is unobservable by
//     construction.
//
// Completion consumers get the same treatment: QP.ReadResponse and
// QP.CompleteExact return a typed CQStatus (or the matched bool) that
// distinguishes progress, duplicates, and typed errors — discarding the
// whole result, or blanking exactly the status position of the tuple
// (`cqe, data, _ := qp.ReadResponse(pkt)`), silently conflates a NAK with a
// clean completion.
//
// Intentional fire-and-forget sites (a best-effort hint write whose loss is
// benign) are waived with //gem:post-ok on the call's line or the line
// above.
package postcheck

import (
	"fmt"
	"go/ast"

	"gem/internal/analysis"
)

// Analyzer is the postcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "postcheck",
	Doc:  "the boolean result of verbs Post*/TryReserve/Can* calls must be consumed",
	Run:  run,
}

// Tag is the waiver annotation.
const Tag = "post-ok"

// mustConsume maps the FullName of each refusable verbs call to the short
// label used in diagnostics.
var mustConsume = map[string]string{
	analysis.VerbsMethod("Credits", "TryAcquire"):      "Credits.TryAcquire",
	analysis.VerbsMethod("Credits", "CanAcquire"):      "Credits.CanAcquire",
	analysis.VerbsMethod("QP", "TryReserve"):           "QP.TryReserve",
	analysis.VerbsMethod("QP", "CanPost"):              "QP.CanPost",
	analysis.VerbsMethod("QP", "PostRead"):             "QP.PostRead",
	analysis.VerbsMethod("QP", "PostWrite"):            "QP.PostWrite",
	analysis.VerbsMethod("QP", "PostFetchAdd"):         "QP.PostFetchAdd",
	analysis.VerbsMethod("QP", "DeferFetchAdd"):        "QP.DeferFetchAdd",
	analysis.VerbsMethod("QP", "Repost"):               "QP.Repost",
	analysis.VerbsMethod("StripedQP", "CanPost"):       "StripedQP.CanPost",
	analysis.VerbsMethod("StripedQP", "PostRead"):      "StripedQP.PostRead",
	analysis.VerbsMethod("StripedQP", "PostWrite"):     "StripedQP.PostWrite",
	analysis.VerbsMethod("StripedQP", "PostFetchAdd"):  "StripedQP.PostFetchAdd",
	analysis.VerbsMethod("StripedQP", "DeferFetchAdd"): "StripedQP.DeferFetchAdd",
	analysis.VerbsMethod("StripedQP", "Repost"):        "StripedQP.Repost",
	analysis.VerbsMethod("MirroredQP", "PostWrite"):    "MirroredQP.PostWrite",
	analysis.VerbsMethod("MirroredQP", "PostFetchAdd"): "MirroredQP.PostFetchAdd",
}

// statusResult describes a completion call whose multi-value return carries
// a CQ status (or matched bool) that must not be discarded.
type statusResult struct {
	label string
	idx   int // position of the status in the result tuple
	n     int // total results
}

// statusConsume maps completion consumers to their status position.
var statusConsume = map[string]statusResult{
	analysis.VerbsMethod("QP", "ReadResponse"):  {"QP.ReadResponse", 2, 3},
	analysis.VerbsMethod("QP", "CompleteExact"): {"QP.CompleteExact", 1, 2},
}

func run(pass *analysis.Pass) error {
	ann := analysis.LineAnnotations(pass.Fset, pass.Files, Tag)

	// target resolves expr to a must-consume call, or ("", nil).
	target := func(expr ast.Expr) (string, *ast.CallExpr) {
		call, ok := ast.Unparen(expr).(*ast.CallExpr)
		if !ok {
			return "", nil
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil {
			return "", nil
		}
		label, ok := mustConsume[fn.FullName()]
		if !ok {
			return "", nil
		}
		return label, call
	}

	// statusTarget resolves expr to a completion call whose status result
	// must be consumed, or (zero, nil).
	statusTarget := func(expr ast.Expr) (statusResult, *ast.CallExpr) {
		call, ok := ast.Unparen(expr).(*ast.CallExpr)
		if !ok {
			return statusResult{}, nil
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil {
			return statusResult{}, nil
		}
		sr, ok := statusConsume[fn.FullName()]
		if !ok {
			return statusResult{}, nil
		}
		return sr, call
	}

	flag := func(call *ast.CallExpr, format string, args ...any) {
		if analysis.Annotated(pass.Fset, ann, call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(), "%s", fmt.Sprintf(format, args...))
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if label, call := target(s.X); call != nil {
					flag(call, "result of %s dropped: a false return is a refused op that is silently lost; handle it or annotate //gem:post-ok", label)
				}
				if sr, call := statusTarget(s.X); call != nil {
					flag(call, "typed CQE status of %s discarded: a NAK or cancel completes indistinguishably from success; handle it or annotate //gem:post-ok", sr.label)
				}
			case *ast.GoStmt:
				if label, call := target(s.Call); call != nil {
					flag(call, "result of %s discarded by go statement: a refusal can never be observed", label)
				}
				if sr, call := statusTarget(s.Call); call != nil {
					flag(call, "typed CQE status of %s discarded by go statement: an error completion can never be observed", sr.label)
				}
			case *ast.DeferStmt:
				if label, call := target(s.Call); call != nil {
					flag(call, "result of %s discarded by defer: a refusal can never be observed", label)
				}
				if sr, call := statusTarget(s.Call); call != nil {
					flag(call, "typed CQE status of %s discarded by defer: an error completion can never be observed", sr.label)
				}
			case *ast.AssignStmt:
				// Tuple shape: cqe, data, _ := qp.ReadResponse(pkt) — exactly
				// the status position blanked.
				if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
					if sr, call := statusTarget(s.Rhs[0]); call != nil && len(s.Lhs) == sr.n {
						if id, ok := ast.Unparen(s.Lhs[sr.idx]).(*ast.Ident); ok && id.Name == "_" {
							flag(call, "typed CQE status of %s assigned to the blank identifier: a NAK or cancel is silently conflated with success; handle it or annotate //gem:post-ok", sr.label)
						}
					}
					return true
				}
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, rhs := range s.Rhs {
					label, call := target(rhs)
					if call == nil {
						continue
					}
					if id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
						flag(call, "result of %s assigned to the blank identifier: a refused op is silently lost; handle it or annotate //gem:post-ok", label)
					}
				}
			}
			return true
		})
	}
	return nil
}
