package postcheck_test

import (
	"path/filepath"
	"testing"

	"gem/internal/analysis"
	"gem/internal/analysis/analysistest"
	"gem/internal/analysis/postcheck"
)

func TestPostcheck(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fixture := filepath.Join(root, "internal", "analysis", "testdata", "src", "postcheck")
	analysistest.Run(t, root, fixture, postcheck.Analyzer, nil)
}
