package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parse builds the CFG of the first function in src.
func parse(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return New(fd.Body, nil)
		}
	}
	t.Fatal("no function in src")
	return nil
}

// reach returns the number of reachable blocks (Exit included when reached).
func reach(g *Graph) int { return len(g.ReversePostorder()) }

// exitPreds classifies Exit's predecessors as (returns, panics, falls).
func exitPreds(g *Graph) (rets, panics, falls int) {
	for _, p := range g.Preds(g.Exit) {
		switch {
		case p.Panics:
			panics++
		case p.Returns():
			rets++
		default:
			falls++
		}
	}
	return
}

func TestStraightLine(t *testing.T) {
	g := parse(t, `func f() { x := 1; _ = x }`)
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry nodes = %d, want 2", len(g.Entry.Nodes))
	}
	rets, panics, falls := exitPreds(g)
	if rets != 0 || panics != 0 || falls != 1 {
		t.Fatalf("exit preds = (%d,%d,%d), want fall-only", rets, panics, falls)
	}
}

func TestIfElseBranchOrder(t *testing.T) {
	g := parse(t, `func f(c bool) int {
		if c {
			return 1
		} else {
			return 2
		}
	}`)
	// Entry ends on the condition with ordered successors.
	if g.Entry.Cond == nil || len(g.Entry.Succs) != 2 {
		t.Fatalf("entry not a 2-way branch: cond=%v succs=%d", g.Entry.Cond, len(g.Entry.Succs))
	}
	thenB, elseB := g.Entry.Succs[0], g.Entry.Succs[1]
	if !thenB.Returns() || !elseB.Returns() {
		t.Fatalf("both arms should return")
	}
	rets, _, falls := exitPreds(g)
	if rets != 2 || falls != 0 {
		t.Fatalf("exit preds rets=%d falls=%d, want 2 returns only", rets, falls)
	}
}

func TestNestedBranches(t *testing.T) {
	g := parse(t, `func f(a, b bool) {
		if a {
			if b {
				return
			}
		}
	}`)
	rets, _, falls := exitPreds(g)
	if rets != 1 || falls != 1 {
		t.Fatalf("exit preds rets=%d falls=%d, want 1 and 1", rets, falls)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := parse(t, `func f() {
		for i := 0; i < 3; i++ {
			_ = i
		}
	}`)
	// Find the head (the block holding the condition).
	var head *Block
	for _, b := range g.Blocks {
		if b.Cond != nil {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no condition block")
	}
	// The post block must flow back to the head.
	back := false
	for _, p := range g.Preds(head) {
		if p.Index > head.Index {
			back = true
		}
	}
	if !back {
		t.Fatal("no back edge to loop head")
	}
}

func TestBreakContinueTargets(t *testing.T) {
	g := parse(t, `func f(xs []int) int {
		n := 0
		for _, x := range xs {
			if x < 0 {
				continue
			}
			if x > 100 {
				break
			}
			n += x
		}
		return n
	}`)
	rets, _, falls := exitPreds(g)
	if rets != 1 || falls != 0 {
		t.Fatalf("exit preds rets=%d falls=%d, want single return", rets, falls)
	}
	if reach(g) < 8 {
		t.Fatalf("suspiciously small graph: %d reachable blocks", reach(g))
	}
}

func TestLabeledBreak(t *testing.T) {
	g := parse(t, `func f() int {
	outer:
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if i+j > 3 {
					break outer
				}
			}
		}
		return 9
	}`)
	rets, _, falls := exitPreds(g)
	if rets != 1 || falls != 0 {
		t.Fatalf("exit preds rets=%d falls=%d", rets, falls)
	}
	// The labeled break must reach the return block: the statement after
	// the outer loop is reachable.
	found := false
	for _, b := range g.ReversePostorder() {
		if b.Returns() {
			found = true
		}
	}
	if !found {
		t.Fatal("return unreachable — labeled break mis-linked")
	}
}

func TestGotoBackward(t *testing.T) {
	g := parse(t, `func f(c bool) {
	again:
		if c {
			goto again
		}
	}`)
	// The goto creates a cycle: the label block has ≥2 preds (fallthrough
	// from entry and the goto edge).
	var label *Block
	for _, b := range g.ReversePostorder() {
		if len(g.Preds(b)) >= 2 {
			label = b
		}
	}
	if label == nil {
		t.Fatal("no block with two predecessors — goto edge missing")
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	g := parse(t, `func f(x int) int {
		switch x {
		case 1:
			x++
			fallthrough
		case 2:
			x += 2
		case 3:
			return x
		}
		return x
	}`)
	rets, _, falls := exitPreds(g)
	if rets != 2 || falls != 0 {
		t.Fatalf("exit preds rets=%d falls=%d, want 2 returns", rets, falls)
	}
	// No default: the head must have one more successor than there are
	// arms (the implicit fall-past edge).
	if len(g.Entry.Succs) != 4 {
		t.Fatalf("head succs = %d, want 3 arms + default edge", len(g.Entry.Succs))
	}
}

func TestSelectArms(t *testing.T) {
	g := parse(t, `func f(a, b chan int) int {
		select {
		case v := <-a:
			return v
		case <-b:
			return 0
		}
	}`)
	// Both arms return; no default means no head→join edge, so Exit has
	// exactly the two return preds.
	rets, _, falls := exitPreds(g)
	if rets != 2 || falls != 0 {
		t.Fatalf("exit preds rets=%d falls=%d, want 2 returns", rets, falls)
	}
}

func TestPanicEdge(t *testing.T) {
	g := parse(t, `func f(c bool) {
		if !c {
			panic("no")
		}
	}`)
	_, panics, falls := exitPreds(g)
	if panics != 1 || falls != 1 {
		t.Fatalf("exit preds panics=%d falls=%d, want 1 and 1", panics, falls)
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	g := parse(t, `func f() int {
		return 1
		return 2 //nolint
	}`)
	for _, b := range g.ReversePostorder() {
		for _, n := range b.Nodes {
			if r, ok := n.(*ast.ReturnStmt); ok {
				if lit, ok := r.Results[0].(*ast.BasicLit); ok && lit.Value == "2" {
					t.Fatal("dead return is reachable")
				}
			}
		}
	}
}

func TestFixpointLoopCarried(t *testing.T) {
	// A trivial reaching analysis: collect the set of identifiers assigned
	// on any path into each block. The loop must propagate "y" around the
	// back edge into the head's entry state.
	g := parse(t, `func f(n int) {
		x := 0
		for i := 0; i < n; i++ {
			y := i
			_ = y
		}
		_ = x
	}`)
	type set = map[string]bool
	in := Fixpoint(g, Flow[set]{
		Entry: func() set { return set{} },
		Clone: func(s set) set {
			c := set{}
			for k := range s {
				c[k] = true
			}
			return c
		},
		Join: func(dst, src set) set {
			for k := range src {
				dst[k] = true
			}
			return dst
		},
		Transfer: func(b *Block, s set) set {
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok {
					for _, lhs := range as.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							s[id.Name] = true
						}
					}
				}
			}
			return s
		},
		Equal: func(a, b set) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	})
	var head *Block
	for _, b := range g.ReversePostorder() {
		if b.Cond != nil && strings.Contains(condString(b), "<") {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no loop head")
	}
	if !in[head]["y"] {
		t.Fatal("loop-carried assignment did not reach the head: back edge not iterated")
	}
	if !in[g.Exit]["x"] {
		t.Fatal("x not live at exit")
	}
}

func condString(b *Block) string {
	be, ok := b.Cond.(*ast.BinaryExpr)
	if !ok {
		return ""
	}
	return be.Op.String()
}
