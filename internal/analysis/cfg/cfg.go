// Package cfg builds intra-procedural control-flow graphs over Go function
// bodies and drives forward dataflow analyses to fixpoint over them. It is
// the path-sensitive core beneath the gemlint passes: the frameown leak
// tracker and the creditbal credit-balance checker both express their
// contract as a transfer function over basic blocks and let this package
// handle branching, loops, labeled break/continue, goto, switch
// fallthrough, and select arms — the shapes the earlier linear AST scans
// approximated or missed.
//
// The graph decomposes structured statements into blocks; a block's Nodes
// are the straight-line work executed when control reaches it, in order:
//
//   - simple statements (assign, expr, decl, defer, go, send, inc/dec,
//     return) appear as themselves;
//   - branch conditions, switch tags, and case expressions appear as bare
//     ast.Expr nodes (analyses treat them as reads);
//   - a range loop's header appears as the *ast.RangeStmt itself — analyses
//     interpret only its Key/Value/X parts, the body is separate blocks.
//
// A block that ends on a two-way branch records the condition in Cond, and
// its successor order is fixed: Succs[0] is the true edge, Succs[1] the
// false edge. That ordering is what lets an analysis refine state per
// branch ("TryAcquire returned true on this edge"), which is exactly the
// path sensitivity the linear scans lacked.
package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Block is one basic block.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block

	// Cond, when non-nil, is the branch condition evaluated last in this
	// block: Succs[0] is taken when it is true, Succs[1] when false. The
	// condition also appears as the final expr node, so analyses that do
	// not refine per edge can treat it as a plain read.
	Cond ast.Expr

	// Panics marks a block that reaches Exit by panicking rather than
	// returning; exit-state checks (leak detection) skip such edges.
	Panics bool
}

// Last returns the final node of the block, or nil.
func (b *Block) Last() ast.Node {
	if len(b.Nodes) == 0 {
		return nil
	}
	return b.Nodes[len(b.Nodes)-1]
}

// Returns reports whether the block terminates in an explicit return.
func (b *Block) Returns() bool {
	_, ok := b.Last().(*ast.ReturnStmt)
	return ok
}

// Graph is the CFG of one function body.
type Graph struct {
	Entry *Block
	Exit  *Block
	// Blocks holds every block in creation (≈ source) order, Entry first.
	// Unreachable blocks (code after return/goto) are retained with no
	// predecessor edges; dataflow never visits them.
	Blocks []*Block
}

// Preds returns the predecessors of b (computed on demand; graphs are
// small).
func (g *Graph) Preds(b *Block) []*Block {
	var preds []*Block
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if s == b {
				preds = append(preds, blk)
				break
			}
		}
	}
	return preds
}

// builder carries the construction state.
type builder struct {
	g   *Graph
	cur *Block
	// curDead marks cur as an unreachable stub (created after a
	// terminator): edges out of it are suppressed so dead code cannot
	// resurrect a join block.
	curDead bool
	info    *types.Info

	// frames is the break/continue target stack: loops push both targets,
	// switch/select push a break target only.
	frames []frame
	// labels maps a label name to its target block, created on first
	// reference (a forward goto) or at the labeled statement itself.
	labels map[string]*Block
}

type frame struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select frames
}

// New builds the CFG of body. info may be nil; when present it is used to
// recognize the builtin panic through shadowing.
func New(body *ast.BlockStmt, info *types.Info) *Graph {
	g := &Graph{}
	b := &builder{g: g, info: info, labels: make(map[string]*Block)}
	g.Entry = b.newBlock()
	g.Exit = &Block{Index: -1} // reindexed in finish
	b.setCur(g.Entry)
	b.stmt(body)
	// Fall off the end: the implicit return — unless everything already
	// terminated and cur is an unreachable stub.
	if b.cur == g.Entry || len(g.Preds(b.cur)) > 0 {
		b.jump(g.Exit)
	}
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump links cur to target and leaves cur there (a plain goto edge).
// Edges out of a dead stub are suppressed.
func (b *builder) jump(target *Block) {
	if b.curDead {
		return
	}
	b.cur.Succs = append(b.cur.Succs, target)
}

// setCur moves construction to blk, which is live (it was just linked or
// is a label target).
func (b *builder) setCur(blk *Block) {
	b.cur = blk
	b.curDead = false
}

// terminate parks construction on a fresh unreachable block: statements
// after a return/goto/break still get blocks, but nothing flows into them.
func (b *builder) terminate() {
	b.cur = b.newBlock()
	b.curDead = true
}

func (b *builder) emit(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// branch ends cur on cond with an ordered true/false successor pair and
// returns the two freshly-linked blocks.
func (b *builder) branch(cond ast.Expr) (onTrue, onFalse *Block) {
	b.emit(cond)
	b.cur.Cond = cond
	onTrue = b.newBlock()
	onFalse = b.newBlock()
	b.cur.Succs = append(b.cur.Succs, onTrue, onFalse)
	return onTrue, onFalse
}

// isPanic reports whether stmt is a call to the builtin panic.
func (b *builder) isPanic(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if b.info != nil {
		_, isBuiltin := b.info.Uses[id].(*types.Builtin)
		return isBuiltin
	}
	return true
}

// labelTarget returns (creating on demand) the block a goto to name lands
// on.
func (b *builder) labelTarget(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// findFrame resolves a break/continue target; label may be empty. For
// continue, only loop frames qualify.
func (b *builder) findFrame(label string, wantCont bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if wantCont && f.cont == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

// stmt builds one statement into the graph. label is non-empty only when
// the statement was directly labeled (so its loop/switch frame can answer
// labeled break/continue).
func (b *builder) stmt(s ast.Stmt) { b.stmtLabeled(s, "") }

func (b *builder) stmtLabeled(s ast.Stmt, label string) {
	switch s := s.(type) {
	case nil:

	case *ast.BlockStmt:
		for _, sub := range s.List {
			b.stmt(sub)
		}

	case *ast.LabeledStmt:
		// The label block is the target of gotos (and the head of a labeled
		// loop); flow falls straight into it.
		target := b.labelTarget(s.Label.Name)
		b.jump(target)
		b.setCur(target)
		b.stmtLabeled(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		thenB, elseB := b.branch(s.Cond)
		join := b.newBlock()
		b.setCur(thenB)
		b.stmt(s.Body)
		b.jump(join)
		b.setCur(elseB)
		if s.Else != nil {
			b.stmt(s.Else)
		}
		b.jump(join)
		b.setCur(join)

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.jump(head)
		b.setCur(head)
		var body, exit *Block
		if s.Cond != nil {
			body, exit = b.branch(s.Cond)
		} else {
			body = b.newBlock()
			exit = b.newBlock() // reachable only via break
			b.jump(body)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.frames = append(b.frames, frame{label: label, brk: exit, cont: cont})
		b.setCur(body)
		b.stmt(s.Body)
		b.jump(cont)
		if post != nil {
			b.setCur(post)
			b.stmt(s.Post)
			b.jump(head)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.setCur(exit)

	case *ast.RangeStmt:
		head := b.newBlock()
		b.jump(head)
		b.setCur(head)
		// The header node carries X (a read) and Key/Value (per-iteration
		// definitions); analyses interpret just those parts.
		b.emit(s)
		body := b.newBlock()
		exit := b.newBlock()
		// Iteration count is unknowable: two unconditioned successors.
		b.cur.Succs = append(b.cur.Succs, body, exit)
		b.frames = append(b.frames, frame{label: label, brk: exit, cont: head})
		b.setCur(body)
		b.stmt(s.Body)
		b.jump(head)
		b.frames = b.frames[:len(b.frames)-1]
		b.setCur(exit)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.cases(s.Body, label, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cases(s.Body, label, s.Assign)

	case *ast.SelectStmt:
		head := b.cur
		join := b.newBlock()
		b.frames = append(b.frames, frame{label: label, brk: join})
		any := false
		for _, raw := range s.Body.List {
			cl, ok := raw.(*ast.CommClause)
			if !ok {
				continue
			}
			any = true
			arm := b.newBlock()
			head.Succs = append(head.Succs, arm)
			b.setCur(arm)
			if cl.Comm != nil {
				b.stmt(cl.Comm)
			}
			for _, st := range cl.Body {
				b.stmt(st)
			}
			b.jump(join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if !any {
			// select{} blocks forever; keep the graph connected anyway.
			head.Succs = append(head.Succs, join)
		}
		b.setCur(join)

	case *ast.ReturnStmt:
		b.emit(s)
		b.jump(b.g.Exit)
		b.terminate()

	case *ast.BranchStmt:
		name := ""
		if s.Label != nil {
			name = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(name, false); f != nil {
				b.jump(f.brk)
			}
			b.terminate()
		case token.CONTINUE:
			if f := b.findFrame(name, true); f != nil {
				b.jump(f.cont)
			}
			b.terminate()
		case token.GOTO:
			b.jump(b.labelTarget(s.Label.Name))
			b.terminate()
		}
		// FALLTHROUGH is handled by cases.

	case *ast.ExprStmt:
		b.emit(s)
		if b.isPanic(s) {
			b.cur.Panics = true
			b.jump(b.g.Exit)
			b.terminate()
		}

	default:
		// Assign, Decl, Defer, Go, Send, IncDec, Empty: straight-line.
		b.emit(s)
	}
}

// cases builds a switch/type-switch body: the current block fans out to one
// block per case clause (each beginning with its case expressions as
// reads), every arm flows to a common join, and a missing default adds a
// head→join edge. assign, for type switches, is re-emitted at the top of
// every arm so per-arm implicit definitions sit in the arm that declares
// them.
func (b *builder) cases(body *ast.BlockStmt, label string, assign ast.Stmt) {
	head := b.cur
	join := b.newBlock()
	b.frames = append(b.frames, frame{label: label, brk: join})

	// Pre-create arm blocks so fallthrough can target the next arm.
	var clauses []*ast.CaseClause
	var arms []*Block
	sawDefault := false
	for _, raw := range body.List {
		cl, ok := raw.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cl)
		arms = append(arms, b.newBlock())
		if cl.List == nil {
			sawDefault = true
		}
	}
	for i, cl := range clauses {
		arm := arms[i]
		head.Succs = append(head.Succs, arm)
		b.setCur(arm)
		if assign != nil {
			b.emit(assign)
		}
		for _, x := range cl.List {
			b.emit(x)
		}
		falls := false
		for _, st := range cl.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
				break
			}
			b.stmt(st)
		}
		if falls && i+1 < len(arms) {
			b.jump(arms[i+1])
			b.terminate()
		} else {
			b.jump(join)
		}
	}
	if !sawDefault {
		head.Succs = append(head.Succs, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.setCur(join)
}
