package cfg

// A small forward dataflow driver: iterate the transfer function over the
// graph in reverse postorder until the per-block entry states stop
// changing. Analyses run it twice — once silently to converge, then one
// reporting pass per block from the converged entry states — so loop-carried
// facts (a release on the back edge, a leak around a continue) surface
// without duplicate diagnostics.

// Flow describes one forward analysis over state type S. States must form a
// finite-height join semilattice under Join for the fixpoint to terminate;
// MaxRounds caps the iteration regardless.
type Flow[S any] struct {
	// Entry produces the state on function entry.
	Entry func() S
	// Clone deep-copies a state (Transfer is free to mutate its argument).
	Clone func(S) S
	// Join merges src into dst and returns the result; dst may be mutated.
	Join func(dst, src S) S
	// Transfer applies one block's nodes to s and returns the out-state; it
	// may mutate and return s.
	Transfer func(b *Block, s S) S
	// Branch, when non-nil, refines a condition block's out-state per edge:
	// given the block's Cond and out-state it returns the state for the
	// true and false successors. Nil means both edges see the out-state.
	Branch func(cond Condition, out S) (onTrue, onFalse S)
	// Equal reports state equivalence (the convergence test).
	Equal func(a, b S) bool
	// MaxRounds bounds fixpoint iteration; 0 means 4 + 4*len(blocks).
	MaxRounds int
}

// Condition is the branch condition handed to Flow.Branch: the expression
// plus a Clone so the refiner can fork states.
type Condition struct {
	Block *Block
}

// Fixpoint runs the analysis to convergence and returns the entry state of
// every reachable block. Unreachable blocks are absent from the map.
func Fixpoint[S any](g *Graph, f Flow[S]) map[*Block]S {
	order := g.ReversePostorder()
	in := make(map[*Block]S, len(order))
	in[g.Entry] = f.Entry()

	max := f.MaxRounds
	if max <= 0 {
		max = 4 + 4*len(g.Blocks)
	}
	for round := 0; round < max; round++ {
		changed := false
		for _, b := range order {
			entry, ok := in[b]
			if !ok {
				continue
			}
			out := f.Transfer(b, f.Clone(entry))
			var tState, fState S
			refined := false
			if f.Branch != nil && b.Cond != nil && len(b.Succs) == 2 {
				tState, fState = f.Branch(Condition{Block: b}, out)
				refined = true
			}
			for i, succ := range b.Succs {
				var s S
				switch {
				case refined && i == 0:
					s = tState
				case refined && i == 1:
					s = fState
				default:
					s = f.Clone(out)
				}
				if cur, ok := in[succ]; ok {
					before := f.Clone(cur)
					merged := f.Join(cur, s)
					if !f.Equal(merged, before) {
						changed = true
					}
					in[succ] = merged
				} else {
					in[succ] = s
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return in
}

// ReversePostorder returns the reachable blocks in reverse postorder of a
// DFS from Entry — the canonical forward-dataflow visit order.
func (g *Graph) ReversePostorder() []*Block {
	seen := make(map[*Block]bool, len(g.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
