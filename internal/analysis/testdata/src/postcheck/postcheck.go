// Package postcheck seeds dropped-result violations of the verbs posting
// API for the gemlint postcheck pass. Every flagged line carries a
// `// want "regexp"` expectation checked by analysistest.
package postcheck

import (
	"gem/internal/core/verbs"
	"gem/internal/wire"
)

func dropped(q *verbs.QP) {
	q.PostWrite(0, nil) // want "result of QP.PostWrite dropped"
}

func droppedRead(q *verbs.QP) {
	q.PostRead(1, 0, 64, 1, verbs.CreditTry) // want "result of QP.PostRead dropped"
}

func blank(q *verbs.QP, tok uint64) {
	_ = q.Repost(tok) // want "result of QP.Repost assigned to the blank identifier"
}

func blankMulti(q *verbs.QP, tok uint64) (int, bool) {
	n, _ := 1, q.DeferFetchAdd(0, 1) // want "result of QP.DeferFetchAdd assigned to the blank identifier"
	return n, false
}

func goDiscard(c *verbs.Credits) {
	go c.TryAcquire() // want "result of Credits.TryAcquire discarded by go statement"
}

func deferDiscard(q *verbs.QP) {
	defer q.TryReserve(verbs.OpRead) // want "result of QP.TryReserve discarded by defer"
}

func striped(s *verbs.StripedQP, key uint64) {
	s.PostFetchAdd(key, 1) // want "result of StripedQP.PostFetchAdd dropped"
}

// --- mirrored posting ---

func mirroredDropped(m *verbs.MirroredQP) {
	m.PostFetchAdd(0, 1) // want "result of MirroredQP.PostFetchAdd dropped"
}

func mirroredBlank(m *verbs.MirroredQP, payload []byte) {
	_ = m.PostWrite(0, payload) // want "result of MirroredQP.PostWrite assigned to the blank identifier"
}

func mirroredGoDiscard(m *verbs.MirroredQP) {
	go m.PostFetchAdd(8, 1) // want "result of MirroredQP.PostFetchAdd discarded by go statement"
}

// mirroredHandled branches on the result: fine.
func mirroredHandled(m *verbs.MirroredQP) bool {
	if !m.PostFetchAdd(0, 1) {
		return false
	}
	return true
}

// mirroredAnnotated is an intentional best-effort mirror write, waived.
func mirroredAnnotated(m *verbs.MirroredQP, payload []byte) {
	m.PostWrite(0, payload) //gem:post-ok best-effort mirror hint; scrubber repairs the window
}

// --- typed CQE status consumers ---

func statusDropped(q *verbs.QP, pkt *wire.Packet) {
	q.ReadResponse(pkt) // want "typed CQE status of QP.ReadResponse discarded"
}

func statusDroppedExact(q *verbs.QP, psn uint32) {
	q.CompleteExact(psn) // want "typed CQE status of QP.CompleteExact discarded"
}

func statusBlankTuple(q *verbs.QP, pkt *wire.Packet) ([]byte, verbs.CQE) {
	cqe, data, _ := q.ReadResponse(pkt) // want "typed CQE status of QP.ReadResponse assigned to the blank identifier"
	return data, cqe
}

func statusBlankExact(q *verbs.QP, psn uint32) verbs.CQE {
	cqe, _ := q.CompleteExact(psn) // want "typed CQE status of QP.CompleteExact assigned to the blank identifier"
	return cqe
}

func statusGoDiscard(q *verbs.QP, psn uint32) {
	go q.CompleteExact(psn) // want "typed CQE status of QP.CompleteExact discarded by go statement"
}

func statusDeferDiscard(q *verbs.QP, pkt *wire.Packet) {
	defer q.ReadResponse(pkt) // want "typed CQE status of QP.ReadResponse discarded by defer"
}

// statusConsumed binds the status to a real variable: fine.
func statusConsumed(q *verbs.QP, pkt *wire.Packet) verbs.CQStatus {
	_, _, status := q.ReadResponse(pkt)
	return status
}

// statusHandled blanks the payload but branches on the status: fine.
func statusHandled(q *verbs.QP, psn uint32) bool {
	_, ok := q.CompleteExact(psn)
	return ok
}

// statusAnnotated is a deliberate duplicate-drain site, waived.
func statusAnnotated(q *verbs.QP, pkt *wire.Packet) {
	q.ReadResponse(pkt) //gem:post-ok duplicate drain; status already counted upstream
}

// consumed returns the result: fine.
func consumed(q *verbs.QP) bool {
	return q.PostFetchAdd(0, 1)
}

// handled branches on the result: fine.
func handled(q *verbs.QP, off int, payload []byte) bool {
	if !q.PostWrite(off, payload) {
		return false
	}
	return true
}

// bound assigns the result to a real variable: fine (unused-variable
// detection is the compiler's job).
func bound(c *verbs.Credits) bool {
	ok := c.TryAcquire()
	return ok
}

// annotated is an intentional fire-and-forget site, waived.
func annotated(q *verbs.QP) {
	q.PostWrite(0, nil) //gem:post-ok best-effort hint write; loss is benign
}

// annotatedAbove carries the waiver on the line above the call.
func annotatedAbove(s *verbs.StripedQP, key uint64) {
	//gem:post-ok opportunistic doorbell coalesce
	s.DeferFetchAdd(key, 7)
}

// unrelated calls that happen to share a name are not flagged.
type fake struct{}

func (fake) PostWrite(int, []byte) bool { return true }

func unrelated(f fake) {
	f.PostWrite(0, nil)
}
