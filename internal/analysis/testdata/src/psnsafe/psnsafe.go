// Package psnsafe seeds PSN wraparound hazards for the gemlint psnsafe
// pass. Every flagged line carries a `// want "regexp"` expectation checked
// by analysistest.
package psnsafe

import "gem/internal/core/verbs"

type wqe struct {
	psn uint32
}

func rawLess(psn, ack uint32) bool {
	return psn < ack // want "raw < ordering on PSN"
}

func rawGeqSelector(w *wqe, limit uint32) bool {
	return w.psn >= limit // want "raw >= ordering on PSN"
}

func unmaskedAdd(psn uint32) uint32 {
	return psn + 1 // want "unmasked \+ on PSN"
}

func unmaskedSub(psn, base uint32) uint32 {
	return psn - base // want "unmasked - on PSN"
}

func increment(psn uint32) uint32 {
	psn++ // want "incremented without masking"
	return psn
}

func addAssign(w *wqe, n uint32) uint32 {
	w.psn += n // want "modified with \+= without masking"
	return w.psn
}

func convertedAtom(psn uint32) bool {
	return uint32(psn) > 3 // want "raw > ordering on PSN"
}

// goodCompare uses the ring comparator: fine.
func goodCompare(psn, ack uint32) bool {
	return verbs.PSNAfter(psn, ack)
}

// maskedAdd re-enters the ring immediately: fine.
func maskedAdd(psn, n uint32) uint32 {
	return (psn + n) & verbs.PSNMask
}

// maskedLiteral spells the mask as a literal: fine.
func maskedLiteral(nextPSN uint32) uint32 {
	return (nextPSN + 1) & 0xFFFFFF
}

// maskedChain feeds through several +/- terms before masking: fine.
func maskedChain(psn, a, b uint32) uint32 {
	return (psn + a - b) & verbs.PSNMask
}

// maskedDistance is the PSNAfter idiom itself: the subtraction is masked,
// and the comparison operand is the masked distance, not a PSN.
func maskedDistance(psn, base uint32) bool {
	return (psn-base)&verbs.PSNMask < 1<<23
}

// equality never wraps wrong: fine.
func equality(psn, ack uint32) bool {
	return psn != ack
}

// notAPSN: names without "psn" are out of scope regardless of type.
func notAPSN(a, b uint32) bool {
	return a < b
}

// wrongType: a psn-named int is not a ring value (offsets, counts).
func wrongType(psnCount int) bool {
	return psnCount < 4
}

// annotated is a waived diagnostic counter.
func annotated(psnSeen uint32) uint32 {
	//gem:psn-ok monotonic diagnostics counter, not a ring position
	return psnSeen + 1
}

// annotatedSameLine carries the waiver on the flagged line itself.
func annotatedSameLine(psn uint32) bool {
	return psn < 100 //gem:psn-ok pre-wrap bootstrap check
}
