// Package hotalloc seeds known violations of the hot-path allocation rules
// for the gemlint hotalloc pass.
package hotalloc

import (
	"fmt"

	"gem/internal/wire"
)

func legacyBuilder(p *wire.RoCEParams) []byte {
	return wire.BuildAck(p, 0, 0) // want "allocating builder wire.BuildAck"
}

func legacyPFC(src wire.MAC) []byte {
	return wire.BuildPFC(src, 10) // want "allocating builder wire.BuildPFC"
}

func hotSprintf(n int) string {
	return fmt.Sprintf("frame-%d", n) // want "fmt.Sprintf allocates in hot path"
}

func freshAppend(src []byte) []byte {
	return append([]byte(nil), src...) // want "fresh-slice append"
}

func freshAppendLit(src []int) []int {
	return append([]int{}, src...) // want "fresh-slice append"
}

// --- clean code the pass must stay silent on ---

func pooledBuilder(pool *wire.Pool, p *wire.RoCEParams) []byte {
	return wire.BuildAckInto(pool, p, 0, 0)
}

type frameID int

func (f frameID) String() string {
	return fmt.Sprintf("frame-%d", int(f)) // String methods are cold paths
}

func panicFormat(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad frame count %d", n)) // dying anyway
	}
}

func annotatedCopy(src []byte) []byte {
	return append([]byte(nil), src...) //gem:alloc-ok control-plane copy at post time
}

func growInPlace(dst, src []byte) []byte {
	return append(dst, src...) // appending to a caller buffer is fine
}
