// Package creditbal seeds credit/reservation balance violations of the
// verbs transport for the gemlint creditbal pass. Every flagged line
// carries a `// want "regexp"` expectation checked by analysistest; the
// unflagged functions pin the pass's conservative-silence and waiver
// behavior.
package creditbal

import "gem/internal/core/verbs"

func doWork() {}

// reserveLeak sheds correctly on refusal but forgets the reservation on
// the success path.
func reserveLeak(q *verbs.QP) {
	if !q.TryReserve(verbs.OpRead) { // want "reservation acquired by q.TryReserve is not balanced"
		return
	}
	doWork()
}

// reserveBalanced drops on the error path and posts on the happy path.
func reserveBalanced(q *verbs.QP, bad bool) {
	if !q.TryReserve(verbs.OpRead) {
		return
	}
	if bad {
		q.DropReservation()
		return
	}
	ok := q.PostRead(1, 0, 64, 1, verbs.CreditAdmit)
	_ = ok
}

// bindLeak binds the acquire result, then returns early while holding.
func bindLeak(c *verbs.Credits, n int) {
	ok := c.TryAcquire() // want "credit acquired by c.TryAcquire is not balanced"
	if ok && n > 0 {
		return
	}
	if ok {
		c.Release()
	}
}

// bindBalanced releases on every held edge.
func bindBalanced(c *verbs.Credits) {
	ok := c.TryAcquire()
	if !ok {
		return
	}
	c.Release()
}

// acquireLeak takes a credit unconditionally and misses the error branch.
func acquireLeak(c *verbs.Credits, fail bool) {
	c.Acquire() // want "credit acquired by c.Acquire is not balanced"
	if fail {
		return
	}
	c.Release()
}

// acquireDeferred covers every path with a deferred release.
func acquireDeferred(c *verbs.Credits, fail bool) {
	c.Acquire()
	defer c.Release()
	if fail {
		return
	}
	doWork()
}

// loopShed leaks the reservation around the continue back edge.
func loopShed(q *verbs.QP, xs []int) {
	for _, x := range xs {
		if !q.TryReserve(verbs.OpWrite) { // want "reservation acquired by q.TryReserve is not balanced"
			continue
		}
		if x < 0 {
			continue
		}
		ok := q.PostWrite(x, nil)
		_ = ok
	}
}

// loopBalanced consumes or drops inside every iteration.
func loopBalanced(q *verbs.QP, xs []int) {
	for _, x := range xs {
		if !q.TryReserve(verbs.OpWrite) {
			continue
		}
		if x < 0 {
			q.DropReservation()
			continue
		}
		ok := q.PostWrite(x, nil)
		_ = ok
	}
}

// compoundAnd holds only on the edge where both conjuncts are true.
func compoundAnd(c *verbs.Credits, n int) {
	if n > 0 && c.TryAcquire() { // want "credit acquired by c.TryAcquire is not balanced"
		if n > 1 {
			return
		}
		c.Release()
	}
}

// switchBalanced releases in every arm (default included).
func switchBalanced(c *verbs.Credits, mode int) {
	if !c.TryAcquire() {
		return
	}
	switch mode {
	case 0:
		c.Release()
	default:
		c.Release()
	}
}

// selectBalanced releases in every select arm.
func selectBalanced(c *verbs.Credits, a, b chan int) {
	if !c.TryAcquire() {
		return
	}
	select {
	case <-a:
		c.Release()
	case <-b:
		c.Release()
	}
}

// condConsume posts inside the condition: the call runs on both edges, so
// the reservation is consumed either way.
func condConsume(q *verbs.QP) {
	if !q.TryReserve(verbs.OpWrite) {
		return
	}
	if !q.PostWrite(0, nil) {
		doWork()
	}
}

// escapeSilent stores the holder: tracking ends without a report (the
// balance may live behind the store).
func escapeSilent(q *verbs.QP, out []*verbs.QP) {
	if !q.TryReserve(verbs.OpRead) {
		return
	}
	out[0] = q
}

// statusReturned hands the acquisition status — and with it the balance
// obligation — to the caller.
func statusReturned(c *verbs.Credits) bool {
	ok := c.TryAcquire()
	return ok
}

// annotatedHandoff is a deliberate cross-function balance, waived.
func annotatedHandoff(q *verbs.QP) {
	//gem:credit-ok consumed by the completion path sharing this QP
	if !q.TryReserve(verbs.OpRead) {
		return
	}
	doWork()
}

// unprovenTry never refines the acquire: conservative silence.
func unprovenTry(c *verbs.Credits) {
	c.TryAcquire() // result dropped: postcheck's finding, not creditbal's
}
