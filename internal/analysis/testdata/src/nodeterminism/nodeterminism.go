// Package nodeterminism seeds known violations of the determinism contract
// for the gemlint nodeterminism pass.
package nodeterminism

import (
	"math/rand"
	"sort"
	"time"

	"gem/internal/sim"
)

func wallClock() time.Duration {
	start := time.Now()      // want "wall-clock time.Now"
	time.Sleep(time.Second)  // want "wall-clock time.Sleep"
	return time.Since(start) // want "wall-clock time.Since"
}

func globalRand() int {
	return rand.Intn(6) // want "global source"
}

func globalFloat() float64 {
	return rand.Float64() // want "global source"
}

func mapOrder(m map[int]int) []int {
	var out []int
	for k := range m { // want "map iteration order is nondeterministic"
		out = append(out, k)
	}
	return out
}

// --- clean code the pass must stay silent on ---

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

func durationsOnly(d time.Duration) time.Duration {
	return d * 2 // time.Duration arithmetic is fine; only the wall clock is banned
}

func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	//gem:deterministic — collecting keys for sorting is order-independent
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func sliceRange(s []int) int {
	sum := 0
	for _, v := range s { // slices iterate in order
		sum += v
	}
	return sum
}

// --- engine-shared RNG: banned outside gem/internal/sim ---

func sharedEngineStream(e *sim.Engine) int {
	return e.Rand().Intn(6) // want "Engine..Rand draws interleave"
}

func retainedSharedStream(e *sim.Engine) *rand.Rand {
	return e.Rand() // want "Engine..Rand draws interleave"
}

func privateSubstream(e *sim.Engine) int {
	return e.Stream("fixture:consumer").Intn(6) // Stream substreams are layout-independent
}
