// Package frameown seeds known violations of the pooled frame-ownership
// contract for the gemlint frameown pass. Every flagged line carries a
// `// want "regexp"` expectation checked by analysistest.
package frameown

import "gem/internal/wire"

var pool = wire.NewPool()

// sink is a stand-in for a fabric entry point: the callee owns frame.
//
//gem:owns
func sink(frame []byte) {
	pool.Put(frame)
}

// borrow reads the frame without taking ownership.
func borrow(frame []byte) int { return len(frame) }

func doubleRelease() {
	buf := pool.Get(64)
	pool.Put(buf)
	pool.Put(buf) // want "released or transferred twice"
}

func useAfterRelease() int {
	buf := pool.Get(64)
	pool.Put(buf)
	return len(buf) // want "use of frame \"buf\" after release"
}

func releaseAfterTransfer() {
	buf := pool.Get(64)
	sink(buf)
	pool.Put(buf) // want "released or transferred twice"
}

func leakOnErrorPath(fail bool) {
	buf := pool.Get(64)
	if fail {
		return // want "owned frame \"buf\" leaks"
	}
	pool.Put(buf)
}

// loopDoubleSend is the L2-flood bug class: the same buffer is handed to an
// owning callee once per iteration.
func loopDoubleSend(ports int) {
	frame := pool.Get(64)
	for i := 0; i < ports; i++ {
		sink(frame) // want "released or transferred twice"
	}
} // want "owned frame \"frame\" leaks"

// builderLeak acquires from a builder instead of Pool.Get.
func builderLeak(p *wire.RoCEParams, bad bool) {
	frame := wire.BuildAckInto(pool, p, 0, 0)
	if bad {
		return // want "owned frame \"frame\" leaks"
	}
	sink(frame)
}

// --- clean code the pass must stay silent on ---

func cleanGetPut() {
	buf := pool.Get(64)
	borrow(buf)
	pool.Put(buf)
}

func cleanDefer() {
	buf := pool.Get(64)
	defer pool.Put(buf)
	borrow(buf)
}

func cleanTransfer() {
	buf := pool.Get(64)
	sink(buf)
}

func cleanBranches(fail bool) {
	buf := pool.Get(64)
	if fail {
		pool.Put(buf)
		return
	}
	sink(buf)
}

// cleanLoopCopies is the fixed flood pattern: a fresh pooled copy per
// iteration, the original transferred exactly once at the end.
func cleanLoopCopies(ports int) {
	frame := pool.Get(64)
	for i := 0; i < ports-1; i++ {
		cp := pool.Get(len(frame))
		copy(cp, frame)
		sink(cp)
	}
	sink(frame)
}

// cleanReturn transfers ownership to the caller.
func cleanReturn() []byte {
	buf := pool.Get(64)
	return buf
}

// cleanEscape hands the frame to an unknown owner (func value): the pass
// abstains rather than guessing.
func cleanEscape(deliver func([]byte)) {
	buf := pool.Get(64)
	deliver(buf)
}

// --- priority load-shedding paths (overload robustness) ---

// shedLeak models a shed path that refuses a low-priority frame but
// forgets to recycle it: every shed would leak one pooled buffer.
func shedLeak(lowPrio bool) {
	buf := pool.Get(64)
	if lowPrio {
		return // want "owned frame \"buf\" leaks"
	}
	sink(buf)
}

// shedDoubleRelease recycles the shed frame and then still hands it to the
// fabric: the frame is released twice on the shed path.
func shedDoubleRelease(lowPrio bool) {
	buf := pool.Get(64)
	if lowPrio {
		pool.Put(buf)
		sink(buf) // want "released or transferred twice"
		return
	}
	sink(buf)
}

// cleanShed is the contract: a shed frame is released exactly once and
// never touched again; an admitted frame transfers exactly once.
func cleanShed(lowPrio bool) {
	buf := pool.Get(64)
	if lowPrio {
		pool.Put(buf)
		return
	}
	sink(buf)
}

// --- transport work-queue paths (verbs refactor) ---

// wqeExhaustedLeak is the exhausted-retries bug class the transport layer
// must avoid: a reliable-mode work-queue entry retains its request frame
// for resends, the completion path releases it — but when the retry budget
// runs out, the give-up path drops the WQE and forgets the frame it holds.
// Every exhausted op then leaks one pooled buffer.
func wqeExhaustedLeak(acked bool, budget int) {
	frame := pool.Get(64)
	for i := 0; i < budget; i++ {
		borrow(frame) // resend: the WQE keeps ownership
		if acked {
			pool.Put(frame) // completion releases exactly once
			return
		}
	}
	// Retries exhausted: the WQE is discarded here with its frame.
	return // want "owned frame \"frame\" leaks"
}

// cleanWQEExhausted is the fixed shape: the give-up path recycles the
// retained frame before discarding the WQE.
func cleanWQEExhausted(acked bool, budget int) {
	frame := pool.Get(64)
	for i := 0; i < budget; i++ {
		borrow(frame)
		if acked {
			pool.Put(frame)
			return
		}
	}
	pool.Put(frame)
}

// --- doorbell batched-posting paths (striping + doorbell layer) ---

// doorbellFlushFailLeak is the batched sibling of wqeExhaustedLeak: a
// doorbell flush walks the pending ring building one frame per ripe WQE,
// but when the post fails mid-batch (credits gone, endpoint down) the
// cut-short path abandons the batch and forgets the frame already built
// for the entry it was posting. Every failed flush then leaks one pooled
// buffer.
func doorbellFlushFailLeak(ripe int, canPost func() bool) {
	for i := 0; i < ripe; i++ {
		frame := pool.Get(64)
		if !canPost() {
			// Flush cut short: the entry stays in the ring for the
			// retry, but the frame built for it is dropped here.
			return // want "owned frame \"frame\" leaks"
		}
		sink(frame)
	}
}

// cleanDoorbellFlushFail is the fixed shape: a cut-short flush recycles the
// frame it already built before leaving the rest of the batch for the
// retry.
func cleanDoorbellFlushFail(ripe int, canPost func() bool) {
	for i := 0; i < ripe; i++ {
		frame := pool.Get(64)
		if !canPost() {
			pool.Put(frame)
			return
		}
		sink(frame)
	}
}
