// cfgshapes.go seeds the control-flow shapes the old linear scan could not
// see through — back edges, break/continue edges, goto, select arms — that
// the CFG-based frameown pass must now track.
package frameown

// breakLeak exits the loop with the iteration's frame still owned: the
// break edge skips the release.
func breakLeak(n int) {
	for i := 0; i < n; i++ {
		buf := pool.Get(64)
		if i == 3 {
			break
		}
		pool.Put(buf)
	}
} // want "owned frame \"buf\" leaks"

// continueLeak skips the release on the continue edge.
func continueLeak(xs []int) {
	for _, x := range xs {
		buf := pool.Get(64)
		if x < 0 {
			continue
		}
		sink(buf)
	}
} // want "owned frame \"buf\" leaks"

// labeledBreakLeak leaves both loops at once, frame in hand.
func labeledBreakLeak(n, m int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			buf := pool.Get(64)
			if i+j > 4 {
				break outer
			}
			sink(buf)
		}
	}
} // want "owned frame \"buf\" leaks"

// gotoRetryDouble hands the same frame to an owning callee once per retry:
// the goto back edge carries the transferred state around.
func gotoRetryDouble(tries int) {
	buf := pool.Get(64)
again:
	sink(buf) // want "released or transferred twice"
	tries--
	if tries > 0 {
		goto again
	}
}

// selectArmLeak releases on one arm only; the other arm leaks.
func selectArmLeak(a, b chan int) {
	buf := pool.Get(64)
	select {
	case <-a:
		pool.Put(buf)
	case <-b:
	}
} // want "owned frame \"buf\" leaks"

// nestedBranchLeak loses the frame on the inner else path.
func nestedBranchLeak(a, b bool) {
	buf := pool.Get(64)
	if a {
		if b {
			pool.Put(buf)
			return
		}
		return // want "owned frame \"buf\" leaks"
	}
	sink(buf)
}

// --- clean shapes the CFG pass must stay silent on ---

// cleanBreak releases before leaving on every edge.
func cleanBreak(n int) {
	for i := 0; i < n; i++ {
		buf := pool.Get(64)
		if i == 3 {
			pool.Put(buf)
			break
		}
		sink(buf)
	}
}

// cleanContinue recycles the refused frame before the continue edge.
func cleanContinue(xs []int) {
	for _, x := range xs {
		buf := pool.Get(64)
		if x < 0 {
			pool.Put(buf)
			continue
		}
		sink(buf)
	}
}

// cleanGotoRetry re-acquires a fresh frame per retry round.
func cleanGotoRetry(tries int) {
	buf := pool.Get(64)
again:
	sink(buf)
	tries--
	if tries > 0 {
		buf = pool.Get(64)
		goto again
	}
}

// cleanSelect balances every arm.
func cleanSelect(a, b chan int) {
	buf := pool.Get(64)
	select {
	case <-a:
		pool.Put(buf)
	case <-b:
		sink(buf)
	}
}

// cleanDeferCoversAllPaths: the deferred release covers every exit edge,
// including early returns the linear scan used to special-case.
func cleanDeferCoversAllPaths(fail, flaky bool) {
	buf := pool.Get(64)
	defer pool.Put(buf)
	if fail {
		return
	}
	if flaky {
		borrow(buf)
		return
	}
	borrow(buf)
}

// cleanSwitchFallthrough releases exactly once across fallthrough arms.
func cleanSwitchFallthrough(mode int) {
	buf := pool.Get(64)
	switch mode {
	case 0:
		borrow(buf)
		fallthrough
	case 1:
		sink(buf)
	default:
		pool.Put(buf)
	}
}
