// Package creditbal implements the gemlint pass that enforces the credit
// and reservation balance contract of the verbs transport: every
// Credits.Acquire, successful Credits.TryAcquire, and successful
// QP.TryReserve must reach a matching Release / DropReservation — or an
// ownership-transferring Post* on the same object — on every path out of
// the function. Early returns and error branches are exactly where the
// mid-batch rebind leak lived: a reservation taken before a bounds check
// that sheds on the failure path without dropping it pins a credit until
// the reap timer fires.
//
// The pass is path-sensitive: it builds the function's CFG
// (internal/analysis/cfg) and runs a forward may-analysis whose branch
// refinement understands the admission idiom —
//
//	if !qp.TryReserve(op) { return shed }   // false edge: nothing held
//	... qp.PostRead(...)                    // true edge: reservation held
//
// including `ok := c.TryAcquire()` bindings and &&/|| compounds. Only
// definitely-held credits are tracked: a TryAcquire whose success cannot be
// proven on an edge stays silent, so the pass cannot false-positive on
// admission paths it does not understand. Tracking also ends, silently,
// when the holder escapes the function's view: it is stored, passed to an
// unknown call, returned, or a method the pass does not model runs on it.
// Cross-function balances (acquire here, release in the completion path)
// are waived with //gem:credit-ok on the acquiring line or the line above.
package creditbal

import (
	"go/ast"
	"go/token"
	"go/types"

	"gem/internal/analysis"
	"gem/internal/analysis/cfg"
)

// Analyzer is the creditbal pass.
var Analyzer = &analysis.Analyzer{
	Name: "creditbal",
	Doc:  "credits and reservations acquired from the verbs transport must be balanced on every path",
	Run:  run,
}

// Tag is the waiver annotation.
const Tag = "credit-ok"

// acquireCond maps conditional acquire methods (held only when the result
// is true) to what they hold.
var acquireCond = map[string]string{
	analysis.VerbsMethod("Credits", "TryAcquire"): "credit",
	analysis.VerbsMethod("QP", "TryReserve"):      "reservation",
}

// acquireAlways maps unconditional acquire methods to what they hold.
var acquireAlways = map[string]string{
	analysis.VerbsMethod("Credits", "Acquire"): "credit",
}

// releases is the set of explicit balance methods.
var releases = map[string]bool{
	analysis.VerbsMethod("Credits", "Release"):    true,
	analysis.VerbsMethod("QP", "DropReservation"): true,
}

// consumes is the set of posting methods that take ownership of a held
// credit or reservation on their receiver (the WQE carries it from there;
// retire/reap releases it).
var consumes = map[string]bool{
	analysis.VerbsMethod("QP", "PostRead"):             true,
	analysis.VerbsMethod("QP", "PostWrite"):            true,
	analysis.VerbsMethod("QP", "PostFetchAdd"):         true,
	analysis.VerbsMethod("QP", "DeferFetchAdd"):        true,
	analysis.VerbsMethod("QP", "Repost"):               true,
	analysis.VerbsMethod("StripedQP", "PostRead"):      true,
	analysis.VerbsMethod("StripedQP", "PostWrite"):     true,
	analysis.VerbsMethod("StripedQP", "PostFetchAdd"):  true,
	analysis.VerbsMethod("StripedQP", "DeferFetchAdd"): true,
	analysis.VerbsMethod("StripedQP", "Repost"):        true,
}

// key identifies one holder: the root variable of the receiver chain plus
// the spelled chain ("q.credits", "home"). Chains through calls or indexing
// are not trackable.
type key struct {
	root  *types.Var
	chain string
}

// holderInfo is the abstract state of one definitely-held credit.
type holderInfo struct {
	pos      token.Pos // the acquiring call, for the diagnostic
	what     string    // "credit" or "reservation"
	via      string    // method name, for the diagnostic
	deferred bool      // a defer releases it on every path from here
}

// bindInfo records `ok := c.TryAcquire()`: the truth of ok decides whether
// the key is held.
type bindInfo struct {
	k    key
	pos  token.Pos
	what string
	via  string
}

// env is the dataflow state: definitely-held credits, boolean bindings of
// pending conditional acquires, and keys covered by a registered defer.
type env struct {
	held   map[key]*holderInfo
	binds  map[*types.Var]bindInfo
	defers map[key]bool
}

func newEnv() *env {
	return &env{
		held:   make(map[key]*holderInfo),
		binds:  make(map[*types.Var]bindInfo),
		defers: make(map[key]bool),
	}
}

func (e *env) clone() *env {
	c := newEnv()
	for k, v := range e.held {
		cv := *v
		c.held[k] = &cv
	}
	for k, v := range e.binds {
		c.binds[k] = v
	}
	for k := range e.defers {
		c.defers[k] = true
	}
	return c
}

// join merges src into e. held is a union (may-leak analysis: held on any
// path in means possibly leaked out), with deferred true only when both
// paths have cover; binds and defers keep only entries the paths agree on.
func (e *env) join(src *env) {
	for k, sv := range src.held {
		if dv, ok := e.held[k]; ok {
			dv.deferred = dv.deferred && sv.deferred
		} else {
			cv := *sv
			e.held[k] = &cv
		}
	}
	for v, db := range e.binds {
		if sb, ok := src.binds[v]; !ok || sb.k != db.k {
			delete(e.binds, v)
		}
	}
	for k := range e.defers {
		if !src.defers[k] {
			delete(e.defers, k)
		}
	}
}

func (e *env) equal(o *env) bool {
	if len(e.held) != len(o.held) || len(e.binds) != len(o.binds) || len(e.defers) != len(o.defers) {
		return false
	}
	for k, v := range e.held {
		ov, ok := o.held[k]
		if !ok || ov.deferred != v.deferred || ov.what != v.what {
			return false
		}
	}
	for v, b := range e.binds {
		ob, ok := o.binds[v]
		if !ok || ob.k != b.k {
			return false
		}
	}
	for k := range e.defers {
		if !o.defers[k] {
			return false
		}
	}
	return true
}

type checker struct {
	pass      *analysis.Pass
	ann       map[string]map[int]bool
	reporting bool
	seen      map[token.Pos]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass: pass,
		ann:  analysis.LineAnnotations(pass.Fset, pass.Files, Tag),
		seen: make(map[token.Pos]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return nil
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	g := cfg.New(fd.Body, c.pass.TypesInfo)
	flow := cfg.Flow[*env]{
		Entry: newEnv,
		Clone: (*env).clone,
		Join:  func(dst, src *env) *env { dst.join(src); return dst },
		Transfer: func(b *cfg.Block, s *env) *env {
			for _, n := range b.Nodes {
				c.node(n, s)
			}
			return s
		},
		Branch: func(cond cfg.Condition, out *env) (*env, *env) {
			t, f := out.clone(), out.clone()
			c.refine(t, cond.Block.Cond, true)
			c.refine(f, cond.Block.Cond, false)
			return t, f
		},
		Equal: (*env).equal,
	}

	// Phase 1: converge silently so loop-carried state settles; phase 2:
	// one reporting visit per reachable block from the converged entry
	// states, then a leak check on the fall-off-the-end edges.
	c.reporting = false
	in := cfg.Fixpoint(g, flow)
	c.reporting = true
	outs := make(map[*cfg.Block]*env, len(in))
	for _, b := range g.ReversePostorder() {
		s, ok := in[b]
		if !ok {
			continue
		}
		s = s.clone()
		for _, n := range b.Nodes {
			c.node(n, s)
		}
		outs[b] = s
	}
	for b, out := range outs {
		if b.Returns() || b.Panics {
			continue
		}
		for _, succ := range b.Succs {
			if succ == g.Exit {
				c.leakCheck(out)
				break
			}
		}
	}
}

// leakCheck reports every definitely-held credit with no deferred cover.
func (c *checker) leakCheck(e *env) {
	for k, info := range e.held {
		if info.deferred || e.defers[k] {
			continue
		}
		c.reportLeak(k, info)
	}
}

func (c *checker) reportLeak(k key, info *holderInfo) {
	if !c.reporting || c.seen[info.pos] {
		return
	}
	c.seen[info.pos] = true
	counter := "Release"
	if info.what == "reservation" {
		counter = "DropReservation"
	}
	c.pass.Reportf(info.pos,
		"%s acquired by %s.%s is not balanced on every path: no %s or ownership-transferring Post* before function exit (annotate //gem:credit-ok if the balance lives elsewhere)",
		info.what, k.chain, info.via, counter)
}

// node applies one CFG node to the state.
func (c *checker) node(n ast.Node, e *env) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		c.assign(s, e)
	case *ast.DeclStmt:
		c.decl(s, e)
	case *ast.ExprStmt:
		c.call(s.X, e)
	case *ast.DeferStmt:
		c.deferStmt(s, e)
	case *ast.GoStmt:
		c.escapes(s.Call, e)
	case *ast.ReturnStmt:
		c.ret(s, e)
	case *ast.RangeStmt:
		c.escapes(s.X, e)
		for _, lhs := range []ast.Expr{s.Key, s.Value} {
			if id, ok := lhs.(*ast.Ident); ok {
				c.unbind(id, e)
			}
		}
	case *ast.SendStmt:
		c.escapes(s.Chan, e)
		c.escapes(s.Value, e)
	case *ast.IncDecStmt:
		c.escapes(s.X, e)
	case *ast.BranchStmt, *ast.EmptyStmt:
	case ast.Expr:
		// Branch conditions, switch tags, case expressions. Acquire calls
		// here are handled by branch refinement, not the transfer.
		c.condExpr(s, e)
	}
}

// call classifies a call in statement position and applies its effect.
func (c *checker) call(x ast.Expr, e *env) {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		c.escapes(x, e)
		return
	}
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil {
		c.escapes(call, e)
		return
	}
	full := fn.FullName()
	switch {
	case releases[full] || consumes[full]:
		if k, ok := c.chainKey(recvOf(call)); ok {
			delete(e.held, k)
			for _, arg := range call.Args {
				c.escapes(arg, e)
			}
			return
		}
		c.escapes(call, e)
	case acquireAlways[full] != "":
		if k, ok := c.chainKey(recvOf(call)); ok && !analysis.Annotated(c.pass.Fset, c.ann, call.Pos()) {
			e.held[k] = &holderInfo{
				pos:      call.Pos(),
				what:     acquireAlways[full],
				via:      fn.Name(),
				deferred: e.defers[k],
			}
		}
		for _, arg := range call.Args {
			c.escapes(arg, e)
		}
	case acquireCond[full] != "":
		// Bare conditional acquire with the result dropped: postcheck's
		// finding, not a definite hold — stay silent here.
		for _, arg := range call.Args {
			c.escapes(arg, e)
		}
	default:
		c.escapes(call, e)
	}
}

// condExpr handles a bare expression node (condition, tag, case value):
// releases and consumes apply (the call runs whichever way the branch
// goes); conditional acquires are left to branch refinement.
func (c *checker) condExpr(x ast.Expr, e *env) {
	ast.Inspect(x, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(c.pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		full := fn.FullName()
		if releases[full] || consumes[full] {
			if k, ok := c.chainKey(recvOf(call)); ok {
				delete(e.held, k)
			}
			return true
		}
		if acquireCond[full] != "" || acquireAlways[full] != "" {
			// The receiver chain mention is not an escape; refinement (or
			// the statement handler) models the acquire itself.
			for _, arg := range call.Args {
				c.escapes(arg, e)
			}
			return false
		}
		c.escapes(call, e)
		return false
	})
}

// assign handles acquire bindings, rebinding, and escapes.
func (c *checker) assign(a *ast.AssignStmt, e *env) {
	// ok := c.TryAcquire() / ok := qp.TryReserve(op)
	if len(a.Lhs) == 1 && len(a.Rhs) == 1 {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			if fn := analysis.Callee(c.pass.TypesInfo, call); fn != nil {
				if what := acquireCond[fn.FullName()]; what != "" {
					id, isID := ast.Unparen(a.Lhs[0]).(*ast.Ident)
					k, trackable := c.chainKey(recvOf(call))
					if isID && id.Name != "_" && trackable &&
						!analysis.Annotated(c.pass.Fset, c.ann, call.Pos()) {
						for _, arg := range call.Args {
							c.escapes(arg, e)
						}
						if v := c.defOrUse(id); v != nil {
							e.binds[v] = bindInfo{k: k, pos: call.Pos(), what: what, via: fn.Name()}
						}
						return
					}
				}
			}
		}
	}
	for _, rhs := range a.Rhs {
		c.call(rhs, e)
	}
	for _, lhs := range a.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			c.unbind(id, e)
			continue
		}
		// q.reserve = true, m[k] = v: the holder's object mutated — the
		// balance may now live behind that store.
		c.escapes(lhs, e)
	}
}

// decl handles `var ok = c.TryAcquire()` and plain declarations.
func (c *checker) decl(d *ast.DeclStmt, e *env) {
	gd, ok := d.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Names) == 1 && len(vs.Values) == 1 {
			if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
				if fn := analysis.Callee(c.pass.TypesInfo, call); fn != nil {
					if what := acquireCond[fn.FullName()]; what != "" {
						if k, trackable := c.chainKey(recvOf(call)); trackable &&
							!analysis.Annotated(c.pass.Fset, c.ann, call.Pos()) {
							if v, ok := c.pass.TypesInfo.Defs[vs.Names[0]].(*types.Var); ok {
								e.binds[v] = bindInfo{k: k, pos: call.Pos(), what: what, via: fn.Name()}
								continue
							}
						}
					}
				}
			}
		}
		for _, val := range vs.Values {
			c.call(val, e)
		}
	}
}

// deferStmt registers deferred releases and treats everything else as an
// escape.
func (c *checker) deferStmt(d *ast.DeferStmt, e *env) {
	if fn := analysis.Callee(c.pass.TypesInfo, d.Call); fn != nil {
		full := fn.FullName()
		if releases[full] || consumes[full] {
			if k, ok := c.chainKey(recvOf(d.Call)); ok {
				e.defers[k] = true
				if info, held := e.held[k]; held {
					info.deferred = true
				}
				for _, arg := range d.Call.Args {
					c.escapes(arg, e)
				}
				return
			}
		}
	}
	c.escapes(d.Call, e)
}

// ret transfers holders mentioned in results (and acquire-status booleans)
// to the caller, then leak-checks the survivors.
func (c *checker) ret(r *ast.ReturnStmt, e *env) {
	for _, res := range r.Results {
		if id, ok := ast.Unparen(res).(*ast.Ident); ok {
			if v := c.varOf(id); v != nil {
				if b, bound := e.binds[v]; bound {
					// The caller receives the acquisition status and with it
					// the balance obligation.
					delete(e.held, b.k)
				}
			}
		}
		c.escapes(res, e)
	}
	c.leakCheck(e)
}

// escapes drops every holder whose root variable is mentioned anywhere in
// n: once the object flows somewhere the pass cannot follow, its balance
// may too.
func (c *checker) escapes(n ast.Node, e *env) {
	if n == nil || len(e.held) == 0 {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v := c.varOf(id)
		if v == nil {
			return true
		}
		for k := range e.held {
			if k.root == v {
				delete(e.held, k)
			}
		}
		return true
	})
}

// unbind clears the binding and any holders rooted at a reassigned
// variable.
func (c *checker) unbind(id *ast.Ident, e *env) {
	v := c.defOrUse(id)
	if v == nil {
		return
	}
	delete(e.binds, v)
	for k := range e.held {
		if k.root == v {
			delete(e.held, k)
		}
	}
}

// refine applies the truth of cond to the state on one branch edge.
func (c *checker) refine(e *env, cond ast.Expr, val bool) {
	switch x := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			c.refine(e, x.X, !val)
		}
	case *ast.BinaryExpr:
		switch {
		case x.Op == token.LAND && val:
			c.refine(e, x.X, true)
			c.refine(e, x.Y, true)
		case x.Op == token.LOR && !val:
			c.refine(e, x.X, false)
			c.refine(e, x.Y, false)
		}
	case *ast.Ident:
		if v := c.varOf(x); v != nil {
			if b, ok := e.binds[v]; ok {
				c.apply(e, b, val)
			}
		}
	case *ast.CallExpr:
		fn := analysis.Callee(c.pass.TypesInfo, x)
		if fn == nil {
			return
		}
		what := acquireCond[fn.FullName()]
		if what == "" || analysis.Annotated(c.pass.Fset, c.ann, x.Pos()) {
			return
		}
		if k, ok := c.chainKey(recvOf(x)); ok {
			c.apply(e, bindInfo{k: k, pos: x.Pos(), what: what, via: fn.Name()}, val)
		}
	}
}

// apply records the outcome of one conditional acquire on an edge.
func (c *checker) apply(e *env, b bindInfo, acquired bool) {
	if acquired {
		e.held[b.k] = &holderInfo{pos: b.pos, what: b.what, via: b.via, deferred: e.defers[b.k]}
	} else {
		delete(e.held, b.k)
	}
}

// chainKey resolves a receiver expression to a trackable (root, chain)
// key: an identifier, or selectors over one ("q.credits").
func (c *checker) chainKey(expr ast.Expr) (key, bool) {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v := c.varOf(x); v != nil {
			return key{root: v, chain: x.Name}, true
		}
	case *ast.SelectorExpr:
		if k, ok := c.chainKey(x.X); ok {
			return key{root: k.root, chain: k.chain + "." + x.Sel.Name}, true
		}
	}
	return key{}, false
}

func (c *checker) varOf(id *ast.Ident) *types.Var {
	v, _ := c.pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

// defOrUse resolves an identifier whether it defines (:=) or uses a
// variable.
func (c *checker) defOrUse(id *ast.Ident) *types.Var {
	if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	return c.varOf(id)
}

// recvOf returns the receiver expression of a method call, or nil.
func recvOf(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}
