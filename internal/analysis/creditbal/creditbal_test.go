package creditbal_test

import (
	"path/filepath"
	"testing"

	"gem/internal/analysis"
	"gem/internal/analysis/analysistest"
	"gem/internal/analysis/creditbal"
)

func TestCreditbal(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fixture := filepath.Join(root, "internal", "analysis", "testdata", "src", "creditbal")
	analysistest.Run(t, root, fixture, creditbal.Analyzer, nil)
}
