package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestCheckTypesPositionedErrors verifies the driver surfaces every type
// error with file:line context instead of stopping at the first bare
// message.
func TestCheckTypesPositionedErrors(t *testing.T) {
	const src = `package broken

func f() string {
	var s string = 42
	return s
}

func g() {
	undefinedCall()
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "broken.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	_, err = CheckTypes("broken", fset, []*ast.File{f}, NewTypesInfo(), nil)
	if err == nil {
		t.Fatal("CheckTypes accepted a package with two type errors")
	}
	msg := err.Error()
	// Both errors must appear, each with its position.
	if !strings.Contains(msg, "broken.go:4:") {
		t.Errorf("missing positioned mismatch error in:\n%s", msg)
	}
	if !strings.Contains(msg, "broken.go:9:") {
		t.Errorf("missing positioned undefined-call error in:\n%s", msg)
	}
}

// TestCheckTypesTruncatesLongErrorLists keeps driver output readable when a
// package is badly broken.
func TestCheckTypesTruncatesLongErrorLists(t *testing.T) {
	var b strings.Builder
	b.WriteString("package broken\n\nfunc f() {\n")
	for i := 0; i < 15; i++ {
		b.WriteString("\tundef()\n")
	}
	b.WriteString("}\n")
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "broken.go", b.String(), parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	_, err = CheckTypes("broken", fset, []*ast.File{f}, NewTypesInfo(), nil)
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "more errors") {
		t.Errorf("long error list not truncated:\n%s", err)
	}
	if n := strings.Count(err.Error(), "broken.go:"); n > 10 {
		t.Errorf("%d positioned errors shown, want at most 10", n)
	}
}
