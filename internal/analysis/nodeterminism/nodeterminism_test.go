package nodeterminism_test

import (
	"path/filepath"
	"testing"

	"gem/internal/analysis"
	"gem/internal/analysis/analysistest"
	"gem/internal/analysis/nodeterminism"
)

func TestNodeterminism(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fixture := filepath.Join(root, "internal", "analysis", "testdata", "src", "nodeterminism")
	analysistest.Run(t, root, fixture, nodeterminism.Analyzer, nil)
}
