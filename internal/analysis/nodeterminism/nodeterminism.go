// Package nodeterminism implements the gemlint pass that keeps simulation
// code byte-for-byte reproducible: no wall clock, no global rand source, no
// output derived from map iteration order. gem-bench runs experiments in
// parallel and diffs their output against sequential runs, so any of these
// sneaking into internal/ silently breaks a load-bearing guarantee.
//
// Rules:
//
//   - time.Now / Since / Until / Sleep / After / Tick / NewTimer / NewTicker /
//     AfterFunc are forbidden — simulations run on the virtual clock
//     (sim.Engine.Now / Schedule).
//   - package-level math/rand and math/rand/v2 functions are forbidden
//     (they draw from the process-global source); constructing a seeded
//     *rand.Rand via rand.New(rand.NewSource(seed)) and calling its methods
//     is the sanctioned pattern.
//   - ranging over a map is flagged unless the statement carries a
//     //gem:deterministic annotation asserting that the loop's effect is
//     order-independent. Sort the keys instead.
//   - calling (*sim.Engine).Rand outside gem/internal/sim is forbidden: draws
//     from the engine-shared stream interleave in global event order, which
//     ties results to the island partitioning of the parallel engine. Derive
//     a private substream with (*sim.Engine).Stream("consumer:name") instead;
//     substream seeds depend only on the run seed and name, so a consumer's
//     draws are identical under every -islands value.
package nodeterminism

import (
	"go/ast"
	"go/types"

	"gem/internal/analysis"
)

// Analyzer is the nodeterminism pass.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid wall-clock time, global rand, and map-order-dependent loops in simulation code",
	Run:  run,
}

// forbiddenTime are the wall-clock entry points of package time.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// allowedRand are the package-level constructors of math/rand{,/v2} that do
// not touch the global source.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// simPackage is the engine package, the one place allowed to touch the
// engine-shared random stream (it defines it).
const simPackage = "gem/internal/sim"

// isEngineRand reports whether fn is the Rand method of sim.Engine.
func isEngineRand(fn *types.Func) bool {
	if fn.Name() != "Rand" || fn.Pkg() == nil || fn.Pkg().Path() != simPackage {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Engine"
}

func run(pass *analysis.Pass) error {
	detOK := analysis.LineAnnotations(pass.Fset, pass.Files, "deterministic")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				fn := analysis.Callee(pass.TypesInfo, node)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				// Methods on *rand.Rand and time.Duration/time.Time values
				// are deterministic; the only banned method is the shared
				// engine stream accessor.
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					if isEngineRand(fn) && pass.Pkg.Path() != simPackage {
						pass.Reportf(node.Pos(),
							"(*sim.Engine).Rand draws interleave in global event order and depend on the island layout; derive a private substream with (*sim.Engine).Stream")
					}
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if forbiddenTime[fn.Name()] {
						pass.Reportf(node.Pos(),
							"wall-clock time.%s in simulation code; use the virtual clock (sim.Engine)", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if !allowedRand[fn.Name()] {
						pass.Reportf(node.Pos(),
							"package-level %s.%s draws from the global source; use a seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
					}
				}
			case *ast.RangeStmt:
				tv, ok := pass.TypesInfo.Types[node.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if analysis.Annotated(pass.Fset, detOK, node.Pos()) {
					return true
				}
				pass.Reportf(node.Pos(),
					"map iteration order is nondeterministic; sort the keys or annotate //gem:deterministic if order cannot affect output")
			}
			return true
		})
	}
	return nil
}
