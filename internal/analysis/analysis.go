// Package analysis is a minimal, dependency-free clone of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named check
// with a Run function, a Pass hands it one type-checked package, and
// diagnostics are reported through the Pass.
//
// The x/tools module is deliberately not imported — the repo builds with
// the standard library only — but the shapes match the upstream API
// closely enough that the passes under internal/analysis/... could be
// ported to a *analysis.Analyzer with mechanical edits.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics ("frameown").
	Name string
	// Doc is a one-paragraph description of what the pass enforces.
	Doc string
	// Run applies the pass to one package.
	Run func(*Pass) error
}

// Pass is the interface between the driver and one analyzer applied to one
// package: the syntax, the type information, and the report sink.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// OwnsRegistry maps the full name of a function or method (as returned
	// by (*types.Func).FullName, e.g. "(*gem/internal/wire.Pool).Put") to
	// true when it takes ownership of its pooled-frame argument. The driver
	// seeds it from the //gem:owns annotations it finds across the whole
	// module; a pass running under analysistest sees only the built-in
	// table plus the fixture's own annotations.
	OwnsRegistry map[string]bool

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
