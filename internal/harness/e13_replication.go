package harness

import (
	"fmt"

	"gem"
	"gem/internal/faults"
	"gem/internal/sim"
)

// E13 is the replicated-remote-memory experiment: the loss E9/E12 could only
// measure becomes a loss the transport prevents. Four arms share one seed:
//
//   - Sync / Async (lossless failover): a state store's shard is replicated
//     onto an anti-affine second server via mirrored posting; mid-FAA-storm
//     the primary crashes, its DRAM wiped at restart (the honest CrashWipe
//     default). The failover group's heartbeats detect the crash and
//     OnFailover promotes the replica — the mirror replays its journal of
//     never-posted work, then the shard rebinds to the replica channel. Sync
//     is byte-exact: every admitted update is covered by the replica plus
//     the local backlog. Async bounds the replica lag instead; entries
//     declared lost past the bound are counted (LostDelta) and surfaced as
//     typed CQReplicaLost completions, so the loss accounting closes as an
//     inequality.
//   - Scrub (anti-entropy repair): the replica — not the primary — blips
//     mid-storm with DRAM intact, dropping mirrored posts on the floor. The
//     declared losses diverge the two copies; the seeded scrubber finds the
//     divergence once the mirror quiesces and copies the primary's bytes
//     over it, converging the windows byte-exactly. The replication lag also
//     rides the supervisor's pressure ladder here (Suspect while the replica
//     is behind).
//   - Off (wiped baseline): the same crash with no replication. Failover
//     rebinds to a standby region, but everything committed to the primary
//     before the crash dies with its DRAM — the measured loss this PR's
//     tentpole removes.

// E13Config parameterizes the replication experiment.
type E13Config struct {
	// Seed drives every random model in all four arms.
	Seed int64
	// Islands partitions the testbed over parallel event loops (see
	// gem.Options.Islands); 0/1 = single loop. Output is byte-identical
	// for every value.
	Islands int
	// Updates is the FAA storm length (one update per microsecond).
	Updates int
	// CrashAt/RestartAt bound the primary outage (crash arms). The restart
	// wipes DRAM: the default CrashLossMode.
	CrashAt   sim.Time
	RestartAt sim.Time
	// AsyncMaxLag bounds the async mirror's un-acknowledged journal.
	AsyncMaxLag int
	// BlipStart/BlipEnd bound the replica outage of the scrub arm (memory
	// intact — the replica's divergence is dropped posts, not wiped DRAM).
	BlipStart sim.Time
	BlipEnd   sim.Time
}

// DefaultE13Config returns the full-experiment settings.
func DefaultE13Config() E13Config {
	return E13Config{
		Seed:    13,
		Updates: 800, CrashAt: at(200), RestartAt: at(700),
		AsyncMaxLag: 4,
		BlipStart:   at(150), BlipEnd: at(250),
	}
}

// e13Counters is the per-arm counter count; 8 counters × 8 bytes is the
// scrub window.
const e13Counters = 8

// E13Arm is one arm's outcome. Flat and comparable.
type E13Arm struct {
	Mode         string
	Updates      int64  // admitted by the store
	Remote       uint64 // authoritative remote counter sum at the end
	Pending      uint64 // local backlog not yet on the wire
	MirroredFAAs int64
	ReplicaAcked int64
	BothAcked    int64
	ReplicaLost  int64 // journal entries declared lost (async bound)
	LostDelta    int64 // their summed FAA deltas — the loss upper bound
	LagMax       int64
	Replayed     int64 // journal entries a promotion replayed
	Promotions   int64
	Failovers    int64
	Failbacks    int64
	TypedErrors  int64 // CQReplicaLost completions seen by the shard QP
	Wiped        int64 // DRAM bytes the restart zeroed
	Lost         int64 // admitted - remote - pending (loss allowances aside)
}

// E13Result is flat and comparable: two runs with the same config must be
// identical (==).
type E13Result struct {
	// Anti-affine placement (identical across arms; recorded once).
	PMem, RMem int
	AntiAffine bool

	Sync E13Arm
	// SyncExact pins the tentpole: with the primary's DRAM wiped, every
	// admitted update is still covered by the replica plus the backlog.
	SyncExact bool

	Async E13Arm
	// AsyncBounded: remote + pending + declared-lost deltas cover every
	// admitted update (an inequality — a declared-lost post may still have
	// landed, so the declaration is an upper bound).
	AsyncBounded bool
	// AsyncLagBounded: the observed lag never exceeded MaxLag + 1 (the +1 is
	// the entry being posted, sampled before enforcement).
	AsyncLagBounded bool
	// AsyncLossTyped: every declared loss surfaced as a typed CQReplicaLost
	// completion on the primary shard's QP.
	AsyncLossTyped bool

	// Scrub arm.
	ScrubLost      int64 // losses declared during the replica blip
	ScrubTicks     int64
	ScrubSkipped   int64
	ScrubChecked   int64
	ScrubDiverged  int64
	ScrubRepairs   int64
	ScrubBytes     int64
	ScrubSuspect   int64 // supervisor Suspect entries — the lag pressure feed
	ScrubConverged bool  // primary and replica windows byte-equal at the end

	Off E13Arm
	// BaselineLossy: without replication the wiped primary costs real
	// updates — the loss the mirrored arms eliminate.
	BaselineLossy bool

	// PendingEvents sums leftover event-queue entries; it must be 0.
	PendingEvents int
}

// e13bed wires one arm's testbed: one switch host, two memory servers, data
// regions placed by the anti-affine allocator, probe channels for the
// failover heartbeats, and a state store on the primary data channel.
type e13bed struct {
	tb             *gem.Testbed
	dataP, dataR   *gem.Channel
	probeP, probeR *gem.Channel
	pMem, rMem     int
	ss             *gem.StateStore
	fo             *gem.Failover
	sup            *gem.Supervisor
}

func e13mkbed(cfg E13Config) *e13bed {
	tb, err := gem.New(gem.Options{Seed: cfg.Seed, Islands: cfg.Islands, Hosts: 1, MemoryServers: 2})
	if err != nil {
		panic(err)
	}
	alloc, err := tb.NewAllocator(gem.AllocatorConfig{PerServerBytes: 1 << 16})
	if err != nil {
		panic(err)
	}
	dataP, dataR, pMem, rMem, err := alloc.AllocateReplicated(4096, gem.ChannelSpec{})
	if err != nil {
		panic(err)
	}
	mkprobe := func(mem int) *gem.Channel {
		probe, err := tb.Establish(mem, gem.ChannelSpec{
			RegionBase: 0x30000000, RegionSize: 64, Mode: gem.PSNTolerant,
		})
		if err != nil {
			panic(err)
		}
		return probe
	}
	b := &e13bed{
		tb: tb, dataP: dataP, dataR: dataR,
		probeP: mkprobe(pMem), probeR: mkprobe(rMem),
		pMem: pMem, rMem: rMem,
	}
	b.ss, err = gem.NewStateStore(dataP, gem.StateStoreConfig{
		Counters: e13Counters, MaxOutstanding: 8,
	})
	if err != nil {
		panic(err)
	}
	tb.Dispatcher.Register(dataP, b.ss)
	tb.Dispatcher.Register(dataR, b.ss)
	e9Dispatch(tb)
	return b
}

// start wires failover + supervisor and kicks off the update storm.
func (b *e13bed) start(cfg E13Config, supCfg gem.SupervisorConfig, onFailover func(old, new *gem.Channel)) {
	fo, err := gem.NewFailover([]*gem.Channel{b.probeP, b.probeR}, nil)
	if err != nil {
		panic(err)
	}
	fo.HeartbeatInterval = 20 * sim.Microsecond
	fo.CQ = b.ss.Transport().Shard(0)
	fo.OnFailover = onFailover
	fo.RegisterWith(b.tb.Dispatcher)
	b.fo = fo

	b.sup = gem.NewSupervisor(b.tb.Engine, supCfg)
	b.sup.Govern(gem.GovernReplicatedStateStore("store", b.ss, nil, fo))

	fo.Start()
	b.sup.Start()

	issued := 0
	b.tb.Engine.Ticker(1*sim.Microsecond, func() bool {
		b.ss.Update(issued%e13Counters, 1)
		issued++
		return issued < cfg.Updates
	})
}

// finish drains the arm and reads the common counters; remote sums the
// counter window of every channel in chans.
func (b *e13bed) finish(cfg E13Config, until sim.Time, chans ...*gem.Channel) E13Arm {
	b.tb.RunFor(sim.Duration(until))
	b.fo.Stop()
	b.sup.Stop()
	b.tb.Run()

	var arm E13Arm
	for _, ch := range chans {
		for i := 0; i < e13Counters; i++ {
			v, _ := b.tb.ReadRemoteCounter(ch, b.ss.CounterOffset(i))
			arm.Remote += v
		}
	}
	arm.Updates = b.ss.Stats.Updates
	arm.Pending = b.ss.PendingTotal()
	arm.Failovers = b.fo.Failovers
	arm.Failbacks = b.fo.Failbacks
	arm.TypedErrors = b.ss.Transport().Errors().ReplicaLost
	arm.Lost = arm.Updates - int64(arm.Remote) - int64(arm.Pending)
	ms := b.ss.MirrorStats()
	arm.MirroredFAAs = ms.MirroredFAAs
	arm.ReplicaAcked = ms.ReplicaAcked
	arm.BothAcked = ms.BothAcked
	arm.ReplicaLost = ms.ReplicaLost
	arm.LostDelta = ms.LostDelta
	arm.LagMax = ms.Lag.Max
	arm.Replayed = ms.Replayed
	arm.Promotions = ms.Promotions
	return arm
}

// e13crash runs one crash arm: the primary dies mid-storm and restarts with
// wiped DRAM. Replicated arms promote the replica on failover; the Off arm
// rebinds between the two data regions like E9b — and eats the wipe.
func e13crash(cfg E13Config, mode gem.ReplicationMode, res *E13Result) E13Arm {
	b := e13mkbed(cfg)
	if mode != gem.ReplicationOff {
		if _, err := b.ss.Replicate(0, b.dataR, gem.MirrorConfig{
			Mode: mode, MaxLag: cfg.AsyncMaxLag,
		}); err != nil {
			panic(err)
		}
	}
	dataOf := map[*gem.Channel]*gem.Channel{b.probeP: b.dataP, b.probeR: b.dataR}
	onFailover := func(_, newProbe *gem.Channel) {
		if mode != gem.ReplicationOff {
			// First switchover promotes the replica; the failback edge is a
			// no-op — a promoted shard stays where the surviving bytes are.
			b.ss.PromoteShard(0)
			return
		}
		b.ss.Rebind(dataOf[newProbe])
	}
	b.start(cfg, gem.SupervisorConfig{}, onFailover)

	// The restart wipes DRAM (CrashWipe is the default): whatever only the
	// primary held is gone for real.
	sched := faults.CrashRestart(b.tb.MemNICs[b.pMem], cfg.CrashAt, cfg.RestartAt)
	sched.Install(b.tb.EngineOf(b.tb.MemNICs[b.pMem]))

	until := cfg.RestartAt + sim.Time(1500*sim.Microsecond)
	var arm E13Arm
	if mode == gem.ReplicationOff {
		// The baseline's surviving bytes are scattered: post-failback counts
		// on the primary, outage-window counts on the standby region.
		arm = b.finish(cfg, until, b.dataP, b.dataR)
	} else {
		arm = b.finish(cfg, until, b.dataR)
	}
	arm.Mode = mode.String()
	arm.Wiped = sched.Wiped
	if mode != gem.ReplicationOff {
		res.PMem, res.RMem = b.pMem, b.rMem
		res.AntiAffine = b.pMem != b.rMem
	}
	res.PendingEvents += b.tb.PendingEvents()
	return arm
}

// e13scrub runs the anti-entropy arm: an async mirror with a replica blip
// (memory intact — the divergence is dropped mirror posts, not wiped DRAM)
// and a scrubber that repairs it once the mirror quiesces.
func e13scrub(cfg E13Config, res *E13Result) {
	b := e13mkbed(cfg)
	m, err := b.ss.Replicate(0, b.dataR, gem.MirrorConfig{
		Mode: gem.ReplicationAsync, MaxLag: cfg.AsyncMaxLag,
	})
	if err != nil {
		panic(err)
	}
	// No failover: the primary stays authoritative throughout. The
	// supervisor still governs the store, with the replication-lag pressure
	// feed tuned to be the Suspect driver: enforceLag keeps the lag at the
	// bound (tier 1), so PressureTier 1 makes a behind replica a warning
	// signal, while the high DegradeErrors keeps the per-tick CQReplicaLost
	// bursts from jumping the store straight past Suspect.
	b.start(cfg, gem.SupervisorConfig{PressureTier: 1, DegradeErrors: 1 << 20},
		func(_, _ *gem.Channel) {})

	// Scrub only while the window is quiet: an in-flight mirrored FAA would
	// double-apply if the scrubber copied the primary underneath it. The
	// promotion gate is moot here (no failover) but spelled out anyway —
	// after a promotion the replica is authoritative and must not be
	// overwritten from a wiped primary.
	sc, err := b.tb.NewScrubber(b.dataP, b.dataR, 0, e13Counters*8, gem.ScrubConfig{
		Interval: 5 * sim.Microsecond,
		Live: func() bool {
			return !m.Promoted() && m.Lag() == 0 && b.ss.Outstanding() == 0
		},
	})
	if err != nil {
		panic(err)
	}
	sc.Start()

	sched := faults.CrashRestart(b.tb.MemNICs[b.rMem], cfg.BlipStart, cfg.BlipEnd)
	sched.Loss = faults.CrashPreserve
	sched.Install(b.tb.EngineOf(b.tb.MemNICs[b.rMem]))

	b.tb.RunFor(sim.Duration(cfg.Updates)*sim.Microsecond + 300*sim.Microsecond)
	sc.Stop()
	b.fo.Stop()
	b.sup.Stop()
	b.tb.Run()

	res.ScrubLost = m.Stats.ReplicaLost
	res.ScrubTicks = sc.Stats.Ticks
	res.ScrubSkipped = sc.Stats.Skipped
	res.ScrubChecked = sc.Stats.ChunksChecked
	res.ScrubDiverged = sc.Stats.Diverged
	res.ScrubRepairs = sc.Stats.Repairs
	res.ScrubBytes = sc.Stats.BytesRepaired
	res.ScrubSuspect = b.sup.Stats.SuspectEntries
	pw := b.tb.Region(b.dataP).Data[:e13Counters*8]
	rw := b.tb.Region(b.dataR).Data[:e13Counters*8]
	res.ScrubConverged = string(pw) == string(rw)
	res.PendingEvents += b.tb.PendingEvents()
}

// RunE13 executes the replication experiment.
func RunE13(cfg E13Config) (*Table, E13Result) {
	var res E13Result
	res.Sync = e13crash(cfg, gem.ReplicationSync, &res)
	res.Async = e13crash(cfg, gem.ReplicationAsync, &res)
	e13scrub(cfg, &res)
	res.Off = e13crash(cfg, gem.ReplicationOff, &res)

	res.SyncExact = res.Sync.Remote+res.Sync.Pending == uint64(res.Sync.Updates) &&
		res.Sync.ReplicaLost == 0 && res.Sync.Promotions == 1
	res.AsyncBounded = res.Async.Remote+res.Async.Pending+uint64(res.Async.LostDelta) >=
		uint64(res.Async.Updates)
	res.AsyncLagBounded = res.Async.LagMax <= int64(cfg.AsyncMaxLag)+1
	res.AsyncLossTyped = res.Async.TypedErrors == res.Async.ReplicaLost
	res.BaselineLossy = res.Off.Lost > 0

	t := &Table{
		ID:      "E13",
		Title:   "replicated remote memory: mirrored posting, anti-entropy scrub, replica promotion",
		Columns: []string{"arm", "invariant", "value", "detail"},
	}
	t.AddRow("sync", "byte-exact across wiped crash",
		fmt.Sprintf("%v", res.SyncExact),
		fmt.Sprintf("%d updates = %d replica + %d pending; %d mirrored, %d both-acked, %d replayed, %d wiped bytes",
			res.Sync.Updates, res.Sync.Remote, res.Sync.Pending,
			res.Sync.MirroredFAAs, res.Sync.BothAcked, res.Sync.Replayed, res.Sync.Wiped))
	t.AddRow("async", "loss bounded and typed",
		fmt.Sprintf("%v", res.AsyncBounded && res.AsyncLagBounded && res.AsyncLossTyped),
		fmt.Sprintf("%d updates <= %d replica + %d pending + %d lost-delta; lag max %d (bound %d), %d CQReplicaLost",
			res.Async.Updates, res.Async.Remote, res.Async.Pending,
			res.Async.LostDelta, res.Async.LagMax, cfg.AsyncMaxLag, res.Async.TypedErrors))
	t.AddRow("scrub", "divergence repaired",
		fmt.Sprintf("%v", res.ScrubConverged),
		fmt.Sprintf("%d declared lost in blip, %d chunks checked, %d diverged, %d repaired (%d bytes), sup suspect %d",
			res.ScrubLost, res.ScrubChecked, res.ScrubDiverged,
			res.ScrubRepairs, res.ScrubBytes, res.ScrubSuspect))
	t.AddRow("off", "wiped baseline loses updates",
		fmt.Sprintf("%v", res.BaselineLossy),
		fmt.Sprintf("%d of %d updates lost to the wipe (%d survived + %d pending, %d bytes wiped)",
			res.Off.Lost, res.Off.Updates, res.Off.Remote, res.Off.Pending, res.Off.Wiped))
	t.AddRow("placement", "replica anti-affine",
		fmt.Sprintf("%v", res.AntiAffine),
		fmt.Sprintf("primary on mem%d, replica on mem%d", res.PMem, res.RMem))
	t.AddNote("the primary restart wipes DRAM (CrashWipe default): sync survives byte-exact via the")
	t.AddNote("replica, async within its counted bound, the unreplicated baseline eats the loss")
	return t, res
}
