package harness

import (
	"bytes"
	"fmt"
	"testing"

	"gem/internal/wire"
)

// islandsAB runs one experiment twice at the same seed — single event loop
// vs. islands parallel loops — and requires byte-identical output: the
// conservative-lookahead engine must be an execution detail, never a result.
func islandsAB(t *testing.T, name string, islands int, run func(seed int64, islands int) (*Table, any)) {
	t.Helper()
	for _, seed := range []int64{1, 2, 3} {
		before := wire.DefaultPool.Stats().Balance()
		seqTable, seqRes := run(seed, 1)
		parTable, parRes := run(seed, islands)
		if fmt.Sprintf("%+v", seqRes) != fmt.Sprintf("%+v", parRes) {
			t.Errorf("%s seed %d: results diverge between -islands 1 and -islands %d:\n  seq %+v\n  par %+v",
				name, seed, islands, seqRes, parRes)
		}
		var seqOut, parOut bytes.Buffer
		seqTable.Fprint(&seqOut)
		parTable.Fprint(&parOut)
		if !bytes.Equal(seqOut.Bytes(), parOut.Bytes()) {
			t.Errorf("%s seed %d: stdout diverges between -islands 1 and -islands %d:\n--- islands=1\n%s--- islands=%d\n%s",
				name, seed, islands, seqOut.String(), islands, parOut.String())
		}
		if leak := wire.DefaultPool.Stats().Balance() - before; leak != 0 {
			t.Errorf("%s seed %d: parallel A/B leaked %d frames", name, seed, leak)
		}
	}
}

// TestIslandsByteIdentity is the -islands A/B gate over every experiment
// that exercises loss, faults, replication, striping and consistency —
// the full surface the island refactor could have perturbed.
func TestIslandsByteIdentity(t *testing.T) {
	const islands = 4
	t.Run("E9", func(t *testing.T) {
		islandsAB(t, "E9", islands, func(seed int64, n int) (*Table, any) {
			cfg := DefaultE9Config()
			cfg.Seed, cfg.Islands = seed, n
			tb, res := RunE9(cfg)
			return tb, res
		})
	})
	t.Run("E10", func(t *testing.T) {
		islandsAB(t, "E10", islands, func(seed int64, n int) (*Table, any) {
			cfg := DefaultE10Config()
			cfg.Seed, cfg.Islands = seed, n
			tb, res := RunE10(cfg)
			return tb, res
		})
	})
	t.Run("E11", func(t *testing.T) {
		islandsAB(t, "E11", islands, func(seed int64, n int) (*Table, any) {
			cfg := DefaultE11Config()
			cfg.Seed, cfg.Islands = seed, n
			tb, res := RunE11(cfg)
			return tb, res
		})
	})
	t.Run("E12", func(t *testing.T) {
		islandsAB(t, "E12", islands, func(seed int64, n int) (*Table, any) {
			cfg := DefaultE12Config()
			cfg.Seed, cfg.Islands = seed, n
			tb, res := RunE12(cfg)
			return tb, res
		})
	})
	t.Run("E13", func(t *testing.T) {
		islandsAB(t, "E13", islands, func(seed int64, n int) (*Table, any) {
			cfg := DefaultE13Config()
			cfg.Seed, cfg.Islands = seed, n
			tb, res := RunE13(cfg)
			return tb, res
		})
	})
}
