package harness

import (
	"fmt"

	"gem/internal/wire"
)

// E7Config parameterizes the §4 overhead accounting reproduction.
type E7Config struct {
	// Sizes are the original packet sizes for the bandwidth-expansion
	// rows.
	Sizes []int
}

// DefaultE7Config returns the full-experiment settings.
func DefaultE7Config() E7Config {
	return E7Config{Sizes: []int{64, 128, 256, 512, 1024, 1500}}
}

// E7Result carries the per-class header overheads.
type E7Result struct {
	V2Transport, V1Transport  int
	WriteExt, ReadExt, FAAExt int
	ExpansionV2, ExpansionV1  []float64
}

// RunE7 reproduces the §4 overhead numbers from the wire codecs and checks
// them against actually-encoded frames.
func RunE7(cfg E7Config) (*Table, E7Result) {
	res := E7Result{
		V2Transport: wire.TransportOverhead(wire.RoCEv2),
		V1Transport: wire.TransportOverhead(wire.RoCEv1),
		WriteExt:    wire.ExtHeaderOverhead(wire.OpClassWrite),
		ReadExt:     wire.ExtHeaderOverhead(wire.OpClassRead),
		FAAExt:      wire.ExtHeaderOverhead(wire.OpClassFetchAdd),
	}
	t := &Table{
		ID:      "E7",
		Title:   "§4 overhead: RoCE header bytes and bandwidth expansion",
		Columns: []string{"quantity", "bytes", "paper"},
	}
	t.AddRow("RoCEv2 routing+transport (IP+UDP+BTH)", di(int64(res.V2Transport)), "40")
	t.AddRow("RoCEv1 routing+transport (GRH+BTH)", di(int64(res.V1Transport)), "52")
	t.AddRow("WRITE/READ extended header (RETH)", di(int64(res.WriteExt)), "16")
	t.AddRow("Fetch-and-Add extended header (AtomicETH)", di(int64(res.FAAExt)), "28")
	t.AddRow("ICRC trailer (excluded by paper's count)", di(int64(wire.ICRCLen)), "-")

	// Verify the accounting against real encoded frames.
	p := &wire.RoCEParams{DestQP: 1}
	if got := len(wire.BuildFetchAdd(p, 0, 1, 1)); got != wire.EthernetLen+res.V2Transport+res.FAAExt+wire.ICRCLen {
		panic(fmt.Sprintf("E7: encoded FAA frame %dB disagrees with accounting", got))
	}
	if got := len(wire.BuildReadRequest(p, 0, 1, 64)); got != wire.EthernetLen+res.V2Transport+res.ReadExt+wire.ICRCLen {
		panic(fmt.Sprintf("E7: encoded READ frame %dB disagrees with accounting", got))
	}

	t2rows := 0
	for _, size := range cfg.Sizes {
		e2 := wire.BandwidthExpansion(wire.RoCEv2, size)
		e1 := wire.BandwidthExpansion(wire.RoCEv1, size)
		res.ExpansionV2 = append(res.ExpansionV2, e2)
		res.ExpansionV1 = append(res.ExpansionV1, e1)
		t.AddRow(fmt.Sprintf("expansion carrying %dB frame (v2 / v1)", size),
			fmt.Sprintf("%.3fx / %.3fx", e2, e1), "-")
		t2rows++
	}
	t.AddNote("expansion = wire bytes of the encapsulating WRITE / native frame, framing included")
	return t, res
}
