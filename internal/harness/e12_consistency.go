package harness

import (
	"fmt"

	"gem"
	"gem/internal/faults"
	"gem/internal/sim"
	"gem/internal/wire"
)

// E12 is the consistency-spectrum experiment: the degraded postures that E9
// toggled by hand become an automatic, observable policy. Two scenario
// families share one seed:
//
//   - E12a (self-healing failover): the E9b fault schedule — primary crash,
//     retry-budget escalation, forced failover to a standby, failback on
//     restart — with a consistency supervisor governing the state store.
//     Nothing in the scenario calls SetDegraded: the supervisor watches the
//     typed error completions (RetryExhausted, Canceled) and the
//     retransmitter's backoff level, walks Healthy → Suspect → Degraded on
//     its own, drives Reconcile on the Degraded → Recovering edge, and
//     returns the store to the strict contract. The DegradedExits counter
//     moving with zero manual SetDegraded calls is the tentpole invariant.
//   - E12b (spectrum under overload): the E10 fast FAA storm replayed three
//     times with the store pinned to Strict, BoundedStaleness, and Eventual.
//     Strict sheds low-priority updates at the admission edge; bounded
//     proceeds on the local copy and flushes before MaxAge/MaxDelta trips
//     (the recorded staleness never exceeds the bound); eventual absorbs the
//     whole stream and reconciles opportunistically, committing strictly
//     more FAA work than strict for far fewer wire operations. A supervisor
//     governs the lookup table in every arm, so overload-driven automatic
//     degradation (credit refusals → Suspect/Degraded → CPU slow path) runs
//     alongside the manual spectrum sweep.

// E12Config parameterizes the consistency-spectrum experiment.
type E12Config struct {
	// Seed drives every random model in both scenarios.
	Seed int64
	// Islands partitions the testbed over parallel event loops (see
	// gem.Options.Islands); 0/1 = single loop. Output is byte-identical
	// for every value.
	Islands int

	// E12a: self-healing failover.
	AUpdates   int
	ACrashAt   sim.Time
	ARestartAt sim.Time

	// E12b: the storm replayed across the spectrum.
	StormPackets  int
	StormInterval sim.Duration
	BoundMaxAge   sim.Duration
	BoundMaxDelta uint64
}

// DefaultE12Config returns the full-experiment settings.
func DefaultE12Config() E12Config {
	return E12Config{
		Seed:     12,
		AUpdates: 800, ACrashAt: at(200), ARestartAt: at(700),
		StormPackets: 800, StormInterval: 500 * sim.Nanosecond,
		BoundMaxAge: 50 * sim.Microsecond, BoundMaxDelta: 32,
	}
}

// E12ModePoint is one consistency mode's outcome under the FAA storm.
type E12ModePoint struct {
	Mode            string
	Updates         int64 // admitted by the store (sheds excluded)
	Shed            int64
	FAAIssued       int64
	Remote          uint64
	Pending         uint64
	Exact           bool // admitted == remote + pending after the drain
	BoundFlushes    int64
	MaxStalenessNs  int64
	MaxPendingDelta uint64
	ModeChanges     int64 // store-side transitions (the one pinning call)
	LtModeChanges   int64 // supervisor-driven lookup transitions
	SupSuspect      int64
	SupDegraded     int64
	SlowPathMisses  int64
}

// E12Result is flat and comparable: two runs with the same config must be
// identical (==).
type E12Result struct {
	// E12a.
	AUpdates         int64
	ACommitted       uint64 // remote counter sums across primary + standby
	APending         uint64
	ANoLoss          bool // committed + pending covers every admitted update
	AErrors          int64
	AEscalations     int64
	AFailovers       int64
	ADegradedEntries int64 // store posture edges — all supervisor-driven
	ADegradedExits   int64
	AReconciles      int64
	AModeChanges     int64
	ASupSuspect      int64
	ASupDegraded     int64
	ASupRecoveries   int64
	ASupHealthy      int64
	AFinalState      string
	// ASelfHealed pins the tentpole: the degraded posture was entered and
	// exited, recovery ran, and the target ended Healthy — with zero manual
	// SetDegraded calls anywhere in the scenario.
	ASelfHealed bool

	// E12b, in spectrum order: Strict, BoundedStaleness, Eventual.
	Spectrum [3]E12ModePoint
	// BoundedWithinBound: bound flushes happened and the recorded staleness
	// never exceeded the configured MaxAge.
	BoundedWithinBound bool
	// EventualBeatsStrict: eventual mode committed strictly more FAA work
	// (remote counter total) than strict under the identical storm.
	EventualBeatsStrict bool
	AllExact            bool

	// PendingEvents sums leftover event-queue entries; it must be 0.
	PendingEvents int
}

// e12a: the E9b failover bed, self-healing. Primary + standby with separate
// probe and data channels; the retransmitter's retry budget escalates to
// ForceFailover. The supervisor is the only actor touching the store's
// degraded posture: DegradeErrors=1 treats any typed error completion
// (the RetryExhausted escalation, Canceled in-flight FAAs at rebind) as a
// hard fault, and backoff climbing past two rounds is the Suspect signal.
func e12a(cfg E12Config, res *E12Result) {
	tb, err := gem.New(gem.Options{Seed: cfg.Seed, Islands: cfg.Islands, Hosts: 1, MemoryServers: 2})
	if err != nil {
		panic(err)
	}
	mkpair := func(mem int) (probe, data *gem.Channel) {
		probe, err := tb.Establish(mem, gem.ChannelSpec{
			RegionBase: 0x10000000, RegionSize: 64, Mode: gem.PSNTolerant,
		})
		if err != nil {
			panic(err)
		}
		data, err = tb.Establish(mem, gem.ChannelSpec{
			RegionBase: 0x20000000, RegionSize: 4096, Mode: gem.PSNStrict, AckReq: true,
		})
		if err != nil {
			panic(err)
		}
		return probe, data
	}
	probeP, dataP := mkpair(0)
	probeS, dataS := mkpair(1)
	dataOf := map[*gem.Channel]*gem.Channel{probeP: dataP, probeS: dataS}

	rt, err := gem.NewRetransmitter(dataP, 8)
	if err != nil {
		panic(err)
	}
	rt.EnableAdaptiveRTO()
	rt.MaxRetries = 4
	ss, err := gem.NewStateStore(dataP, gem.StateStoreConfig{Counters: 8})
	if err != nil {
		panic(err)
	}
	ss.SetRetransmitter(rt) // wires rt's typed errors to the store's CQ
	rt.Inner = ss
	fo, err := gem.NewFailover([]*gem.Channel{probeP, probeS}, nil)
	if err != nil {
		panic(err)
	}
	fo.CQ = ss.Transport().Shard(0)
	fo.OnFailover = func(_, newProbe *gem.Channel) {
		data := dataOf[newProbe]
		rt.Retarget(data)
		ss.Rebind(data)
	}
	rt.OnExhausted = func() { fo.ForceFailover() }
	fo.RegisterWith(tb.Dispatcher)
	tb.Dispatcher.Register(dataP, rt)
	tb.Dispatcher.Register(dataS, rt)
	e9Dispatch(tb)

	sup := gem.NewSupervisor(tb.Engine, gem.SupervisorConfig{DegradeErrors: 1})
	idx := sup.Govern(gem.GovernStateStore("store", ss, []*gem.Retransmitter{rt}, fo))
	fo.Start()
	sup.Start()

	// ANoLoss pins committed+pending >= admitted across the outage; the
	// failed-back primary must keep its pre-crash counters, so this is a
	// memory-intact restart (E13 models the wiped-DRAM case).
	sched := faults.CrashRestart(tb.MemNICs[0], cfg.ACrashAt, cfg.ARestartAt)
	sched.Loss = faults.CrashPreserve
	sched.Install(tb.EngineOf(tb.MemNICs[0]))

	issued := 0
	tb.Engine.Ticker(1*sim.Microsecond, func() bool {
		ss.Update(issued%8, 1)
		issued++
		return issued < cfg.AUpdates
	})
	tb.RunFor(sim.Duration(cfg.ARestartAt) + 1500*sim.Microsecond)
	fo.Stop()
	sup.Stop()
	tb.Run()

	sum := func(ch *gem.Channel) uint64 {
		var s uint64
		for i := 0; i < 8; i++ {
			v, _ := tb.ReadRemoteCounter(ch, ss.CounterOffset(i))
			s += v
		}
		return s
	}
	res.AUpdates = ss.Stats.Updates
	res.ACommitted = sum(dataP) + sum(dataS)
	res.APending = ss.PendingTotal()
	// Retargeting is at-least-once: duplicates may inflate the committed
	// sum, but nothing may be lost.
	res.ANoLoss = res.ACommitted+res.APending >= uint64(res.AUpdates)
	res.AErrors = ss.Transport().Errors().Total()
	res.AEscalations = rt.Escalations
	res.AFailovers = fo.Failovers
	res.ADegradedEntries = ss.Stats.DegradedEntries
	res.ADegradedExits = ss.Stats.DegradedExits
	res.AReconciles = ss.Stats.Reconciles
	res.AModeChanges = ss.Stats.ModeChanges
	res.ASupSuspect = sup.Stats.SuspectEntries
	res.ASupDegraded = sup.Stats.DegradedEntries
	res.ASupRecoveries = sup.Stats.Recoveries
	res.ASupHealthy = sup.Stats.HealthyReturns
	res.AFinalState = sup.State(idx).String()
	res.ASelfHealed = res.ADegradedExits > 0 && res.ASupRecoveries > 0 &&
		res.AFinalState == "healthy"
	res.PendingEvents += tb.PendingEvents()
}

// e12storm replays the E10 lookup-miss + counter storm at the fast interval
// with the state store pinned to one consistency mode. The lookup table runs
// under a default-threshold supervisor in every arm, so credit refusals from
// the miss window drive its automatic Suspect/Degraded/slow-path cycle.
func e12storm(cfg E12Config, mode gem.ConsistencyMode, res *E12Result) E12ModePoint {
	const (
		entries  = 256
		frameLen = 192
		counters = 64
	)
	pt := E12ModePoint{Mode: mode.String()}
	tb, err := gem.New(gem.Options{Seed: cfg.Seed, Islands: cfg.Islands, Hosts: 2, MemoryServers: 1})
	if err != nil {
		panic(err)
	}
	ltCfg := gem.LookupConfig{
		Entries: entries, MaxPktBytes: 256,
		MaxOutstandingMisses: 2,
	}
	chLT, err := tb.Establish(0, gem.ChannelSpec{
		RegionBase: 0x10000000, RegionSize: entries * ltCfg.EntrySize(),
	})
	if err != nil {
		panic(err)
	}
	chSS, err := tb.Establish(0, gem.ChannelSpec{RegionBase: 0x20000000, RegionSize: 4096})
	if err != nil {
		panic(err)
	}
	lt, err := gem.NewLookupTable(chLT, ltCfg)
	if err != nil {
		panic(err)
	}
	lt.DefaultOutPort = tb.SwitchPortOfHost(1)
	lt.SlowPath = func(wire.FlowKey) (gem.LookupAction, bool) {
		return gem.LookupAction{}, true
	}
	ss, err := gem.NewStateStore(chSS, gem.StateStoreConfig{
		Counters: counters, MaxOutstanding: 4,
		PendingSlots: 32, ShedPendingSlots: 8,
	})
	if err != nil {
		panic(err)
	}
	ss.SetConsistencyMode(mode, gem.StalenessBound{
		MaxAge: cfg.BoundMaxAge, MaxDelta: cfg.BoundMaxDelta,
	})
	tb.Dispatcher.Register(chLT, lt)
	tb.Dispatcher.Register(chSS, ss)
	tb.SetPipeline(func(ctx *gem.Context) {
		if tb.Dispatcher.Dispatch(ctx) {
			return
		}
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		ss.UpdatePrio(int(ctx.Pkt.UDP.SrcPort)%counters, 1, ctx.Priority)
		lt.LookupPrio(ctx, ctx.Frame, ctx.Pkt, ctx.Priority)
	})

	sup := gem.NewSupervisor(tb.Engine, gem.SupervisorConfig{})
	sup.Govern(gem.GovernLookupTable("lookup", lt))
	sup.Start()

	highPorts, lowPorts := e10StormPorts(tb, entries, frameLen, 4, 12)
	sent, lowIdx := 0, 0
	tb.Engine.Ticker(cfg.StormInterval, func() bool {
		var frame []byte
		if sent%4 == 0 {
			frame = tb.DataFrame(0, 1, frameLen, highPorts[(sent/4)%len(highPorts)], 9999)
			wire.SetDSCP(frame, 46)
		} else {
			frame = tb.DataFrame(0, 1, frameLen, lowPorts[lowIdx%len(lowPorts)], 9999)
			lowIdx++
		}
		tb.SendFrame(0, frame)
		sent++
		return sent < cfg.StormPackets
	})
	tb.RunFor(cfg.StormInterval*sim.Duration(cfg.StormPackets) + 200*sim.Microsecond)
	sup.Stop()
	tb.Run()

	for i := 0; i < counters; i++ {
		v, _ := tb.ReadRemoteCounter(chSS, ss.CounterOffset(i))
		pt.Remote += v
	}
	pt.Pending = ss.PendingTotal()
	pt.Updates = ss.Stats.Updates
	pt.Shed = ss.Stats.ShedUpdates
	pt.FAAIssued = ss.Stats.FAAIssued
	pt.Exact = pt.Remote+pt.Pending == uint64(pt.Updates)
	pt.BoundFlushes = ss.Stats.BoundFlushes
	pt.MaxStalenessNs = ss.Stats.MaxStalenessNs
	pt.MaxPendingDelta = ss.Stats.MaxPendingDelta
	pt.ModeChanges = ss.Stats.ModeChanges
	pt.LtModeChanges = lt.Stats.ModeChanges
	pt.SupSuspect = sup.Stats.SuspectEntries
	pt.SupDegraded = sup.Stats.DegradedEntries
	pt.SlowPathMisses = lt.Stats.DegradedMisses
	res.PendingEvents += tb.PendingEvents()
	return pt
}

// RunE12 executes the consistency-spectrum experiment.
func RunE12(cfg E12Config) (*Table, E12Result) {
	var res E12Result
	e12a(cfg, &res)
	for i, mode := range []gem.ConsistencyMode{gem.Strict, gem.BoundedStaleness, gem.Eventual} {
		res.Spectrum[i] = e12storm(cfg, mode, &res)
	}
	res.AllExact = res.Spectrum[0].Exact && res.Spectrum[1].Exact && res.Spectrum[2].Exact
	res.BoundedWithinBound = res.Spectrum[1].BoundFlushes > 0 &&
		res.Spectrum[1].MaxStalenessNs <= int64(cfg.BoundMaxAge)
	res.EventualBeatsStrict = res.Spectrum[2].Remote > res.Spectrum[0].Remote

	t := &Table{
		ID:      "E12",
		Title:   "consistency spectrum: typed errors, automatic degrade/recover, staleness bounds",
		Columns: []string{"scenario", "invariant", "value", "detail"},
	}
	t.AddRow("a: self-healing failover", "auto degrade+recover",
		fmt.Sprintf("%v", res.ASelfHealed),
		fmt.Sprintf("%d typed errors, %d escalations, sup %d suspect / %d degraded / %d recoveries, %d degraded exits, final %s",
			res.AErrors, res.AEscalations, res.ASupSuspect, res.ASupDegraded,
			res.ASupRecoveries, res.ADegradedExits, res.AFinalState))
	t.AddRow("a: no update lost", "committed+pending covers all",
		fmt.Sprintf("%v", res.ANoLoss),
		fmt.Sprintf("%d updates, %d committed, %d pending, %d failovers",
			res.AUpdates, res.ACommitted, res.APending, res.AFailovers))
	for _, pt := range res.Spectrum {
		t.AddRow("b: storm "+pt.Mode, "admitted exact",
			fmt.Sprintf("%v", pt.Exact),
			fmt.Sprintf("%d admitted (%d shed), %d FAAs, %d remote, staleness %dns (%d bound flushes), peak delta %d",
				pt.Updates, pt.Shed, pt.FAAIssued, pt.Remote,
				pt.MaxStalenessNs, pt.BoundFlushes, pt.MaxPendingDelta))
	}
	t.AddRow("b: staleness bound", "max staleness <= MaxAge",
		fmt.Sprintf("%v", res.BoundedWithinBound),
		fmt.Sprintf("%dns <= %dns", res.Spectrum[1].MaxStalenessNs, int64(cfg.BoundMaxAge)))
	t.AddRow("b: throughput tradeoff", "eventual commits > strict",
		fmt.Sprintf("%v", res.EventualBeatsStrict),
		fmt.Sprintf("eventual %d remote / %d FAAs vs strict %d remote / %d FAAs",
			res.Spectrum[2].Remote, res.Spectrum[2].FAAIssued,
			res.Spectrum[0].Remote, res.Spectrum[0].FAAIssued))
	t.AddNote("no scenario calls SetDegraded: the supervisor reads typed CQE errors and backoff,")
	t.AddNote("relaxes the contract (strict -> bounded -> eventual) and reconciles on recovery")
	return t, res
}
