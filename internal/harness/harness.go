// Package harness reproduces every quantitative artefact of the paper's
// evaluation: Figure 3a/3b, the §5 packet-buffer throughput numbers and
// native-RDMA baseline, the §2.1 incast scenario, the §2.2/§2.3 use-case
// scale arguments, the §4 overhead accounting, and the §7 ablations.
//
// Each experiment is a function from a Config (with fast defaults for
// tests and full settings for the CLI) to a printable Table plus typed
// results the tests assert on. See DESIGN.md for the experiment index.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result in the shape the paper reports.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func di(v int64) string   { return fmt.Sprintf("%d", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.2f%%", v*100)
}
