package harness

import (
	"fmt"

	"gem"
	"gem/internal/flowgen"
	"gem/internal/rnic"
	"gem/internal/switchsim"
)

// E2Config parameterizes the Figure 3a reproduction: median end-to-end
// latency of the lookup-table primitive vs a plain L2 switch, across packet
// sizes. The paper's primitive adds 1–2 µs.
type E2Config struct {
	// Sizes are the probe frame sizes (paper: 64–1024 B).
	Sizes []int
	// Rounds is the ping-pong round count per size.
	Rounds int
}

// DefaultE2Config returns the full-experiment settings.
func DefaultE2Config() E2Config {
	return E2Config{Sizes: []int{64, 128, 256, 512, 1024}, Rounds: 51}
}

// E2Point is one x-position of Figure 3a.
type E2Point struct {
	Size           int
	BaselineUs     float64
	LookupUs       float64
	ExtraLatencyUs float64
}

// e2Baseline measures the plain-L2 median one-way latency for one size.
func e2Baseline(size, rounds int) float64 {
	tb, err := gem.New(gem.Options{Seed: 2, Hosts: 2})
	if err != nil {
		panic(err)
	}
	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil {
			ctx.Drop()
			return
		}
		// Exact-match L2: our two hosts sit on ports 0 and 1.
		switch ctx.Pkt.Eth.Dst {
		case tb.Hosts[0].MAC:
			ctx.Emit(0, ctx.Frame)
		case tb.Hosts[1].MAC:
			ctx.Emit(1, ctx.Frame)
		default:
			ctx.Drop()
		}
	})
	pp := &flowgen.PingPong{
		Engine: tb.Engine, A: tb.Hosts[0], B: tb.Hosts[1],
		APort: tb.HostPort(0), BPort: tb.HostPort(1), FrameLen: size,
	}
	pp.Run(rounds, nil)
	tb.Run()
	return pp.MedianOneWay().Seconds() * 1e6
}

// e2Lookup measures the same path with the lookup-table primitive fetching
// the DSCP-rewrite action from remote memory for *every* packet (the
// paper's program: no caching, every packet pays the remote round trip).
func e2Lookup(size, rounds int) float64 {
	tb, err := gem.New(gem.Options{
		Seed: 2, Hosts: 2, MemoryServers: 1,
		NIC: rnic.Config{MTU: 4096},
	})
	if err != nil {
		panic(err)
	}
	cfg := gem.LookupConfig{Entries: 1024, MaxPktBytes: 1536}
	ch, err := tb.Establish(0, gem.ChannelSpec{RegionSize: cfg.Entries * cfg.EntrySize()})
	if err != nil {
		panic(err)
	}
	lt, err := gem.NewLookupTable(ch, cfg)
	if err != nil {
		panic(err)
	}
	// The demo action of §5: "modifies the value of the DSCP field of
	// IPv4 header to a specific value stored in the remote table".
	region := tb.Region(ch)
	for i := 0; i < cfg.Entries; i++ {
		if err := gem.PopulateLookupEntry(region, cfg, i, gem.SetDSCPAction(46)); err != nil {
			panic(err)
		}
	}
	// Route by MAC after applying the action (both directions traverse
	// the primitive).
	lt.Apply = func(ctx *switchsim.Context, frame []byte, action gem.LookupAction) {
		if !lt.ApplyActionOnly(frame, action) {
			ctx.Drop()
			return
		}
		var out int
		dst := frame[0:6]
		if macEqual(dst, tb.Hosts[1].MAC[:]) {
			out = 1
		} else if macEqual(dst, tb.Hosts[0].MAC[:]) {
			out = 0
		} else {
			ctx.Drop()
			return
		}
		ctx.Emit(out, frame)
	}
	tb.Dispatcher.Register(ch, lt)
	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		lt.Lookup(ctx, ctx.Frame, ctx.Pkt)
	})
	pp := &flowgen.PingPong{
		Engine: tb.Engine, A: tb.Hosts[0], B: tb.Hosts[1],
		APort: tb.HostPort(0), BPort: tb.HostPort(1), FrameLen: size,
	}
	pp.Run(rounds, nil)
	tb.Run()
	if tb.ServerCPUOps() != 0 {
		panic("E2: table server CPU touched")
	}
	return pp.MedianOneWay().Seconds() * 1e6
}

func macEqual(a, b []byte) bool {
	for i := 0; i < 6; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunE2 executes the Figure 3a reproduction.
func RunE2(cfg E2Config) (*Table, []E2Point) {
	var points []E2Point
	t := &Table{
		ID:      "E2",
		Title:   "Figure 3a: median end-to-end latency, lookup primitive vs baseline L2",
		Columns: []string{"packet size (B)", "baseline (µs)", "lookup primitive (µs)", "extra (µs)"},
	}
	for _, size := range cfg.Sizes {
		base := e2Baseline(size, cfg.Rounds)
		look := e2Lookup(size, cfg.Rounds)
		p := E2Point{Size: size, BaselineUs: base, LookupUs: look, ExtraLatencyUs: look - base}
		points = append(points, p)
		t.AddRow(fmt.Sprintf("%d", size), f2(base), f2(look), f2(p.ExtraLatencyUs))
	}
	t.AddNote("paper: the primitive 'only adds 1-2 µs latency on average'")
	return t, points
}
