package harness

import (
	"fmt"

	"gem"
	"gem/internal/flowgen"
	"gem/internal/netsim"
	"gem/internal/rnic"
	"gem/internal/sim"
)

// E1Config parameterizes the packet-buffer throughput experiment (§5:
// store at 34.1 Gbps, forward at 37.4 Gbps, native RDMA baseline 4.4%
// faster).
type E1Config struct {
	// FrameLen is the test frame size (paper: 1500 B MTU).
	FrameLen int
	// SweepStart/SweepEnd/SweepStep define the offered-rate sweep (Gbps)
	// for the max-lossless-store search.
	SweepStart, SweepEnd, SweepStep float64
	// Window is the measurement window per sweep point.
	Window sim.Duration
	// DrainFrames is the preloaded ring size for the forward test.
	DrainFrames int
}

// DefaultE1Config returns the full-experiment settings.
func DefaultE1Config() E1Config {
	return E1Config{
		FrameLen:   1500,
		SweepStart: 30, SweepEnd: 40, SweepStep: 0.5,
		Window:      10 * sim.Millisecond,
		DrainFrames: 3000,
	}
}

// E1Result carries the numbers the paper reports in prose.
type E1Result struct {
	StoreMaxGbps      float64 // max lossless store rate (goodput of original frames)
	ForwardGbps       float64 // drain/forward rate
	NativeWriteGbps   float64 // host↔host RDMA WRITE goodput
	NativeReadGbps    float64 // host↔host RDMA READ goodput
	BaselineAdvantage float64 // native WRITE vs store path, fractional
	ServerCPUOps      int64
}

// e1Bed builds the §5 microbenchmark: a sender, a destination, one memory
// server, and a P4 program that stores every incoming packet to the remote
// ring and (when loading is resumed) loads and forwards it.
type e1Bed struct {
	tb  *gem.Testbed
	pb  *gem.PacketBuffer
	gen *flowgen.CBR
}

func newE1Bed(cfg E1Config, rateGbps float64) *e1Bed {
	tb, err := gem.New(gem.Options{
		Seed: 1, Hosts: 2, MemoryServers: 1,
		NIC: rnic.Config{MTU: 4096},
	})
	if err != nil {
		panic(err)
	}
	ch, err := tb.Establish(0, gem.ChannelSpec{RegionSize: 256 << 20})
	if err != nil {
		panic(err)
	}
	// One full-sized Ethernet frame per entry, as in the prototype.
	pb, err := gem.NewPacketBuffer([]*gem.Channel{ch}, tb.SwitchPortOfHost(1), gem.PacketBufferConfig{
		EntrySize:      cfg.FrameLen + 4,
		HighWaterBytes: 1, LowWaterBytes: 256 << 10, // watermark 1: store everything
		MaxOutstandingReads: 32,
	})
	if err != nil {
		panic(err)
	}
	pb.RegisterWith(tb.Dispatcher)
	tb.Switch.Hooks = pb
	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil || ctx.Pkt.IsRoCE {
			ctx.Drop()
			return
		}
		pb.Admit(ctx, ctx.Frame)
	})
	gen := &flowgen.CBR{
		Src: tb.Hosts[0], Dst: tb.Hosts[1], Port: tb.HostPort(0),
		FrameLen: cfg.FrameLen, RateBps: rateGbps * 1e9,
	}
	return &e1Bed{tb: tb, pb: pb, gen: gen}
}

// e1StoreAttempt offers rateGbps of frames for cfg.Window with loading
// paused and reports whether every frame reached remote memory without
// loss, plus the achieved store goodput.
func e1StoreAttempt(cfg E1Config, rateGbps float64) (lossless bool, storedGbps float64) {
	b := newE1Bed(cfg, rateGbps)
	b.pb.PauseLoading()
	b.gen.Start(b.tb.Engine, 0)
	b.tb.RunFor(cfg.Window)
	nic := b.tb.MemNICs[0]
	executedInWindow := nic.Stats.ExecWrites // snapshot before the drain tail
	b.gen.Stop()
	b.tb.RunFor(500 * sim.Microsecond) // let in-flight frames land

	lost := b.pb.Stats.RingDrops + b.pb.Stats.StoreFails +
		nic.Stats.RxRingDrops + b.tb.Switch.Stats.BufferDrops + b.gen.SendFails
	lossless = lost == 0 && int64(b.pb.Stats.Stored) == b.gen.Sent
	// Sustained goodput of original frames committed to remote memory
	// during the window (the drain tail excluded).
	storedGbps = float64(executedInWindow) * float64(cfg.FrameLen) * 8 / cfg.Window.Seconds() / 1e9
	return lossless, storedGbps
}

// e1Forward stores DrainFrames with loading paused, then resumes loading
// and measures the pure load+forward goodput.
func e1Forward(cfg E1Config) float64 {
	b := newE1Bed(cfg, 30) // safe store rate for the preload phase
	b.pb.PauseLoading()
	b.gen.Start(b.tb.Engine, int64(cfg.DrainFrames))
	b.tb.Run()
	if got := b.pb.Stats.Stored; got != int64(cfg.DrainFrames) {
		return 0 // preload failed; make it visible
	}
	start := b.tb.Now()
	var lastDelivery sim.Time
	b.tb.Hosts[1].Handler = func(_ *netsim.Port, _ []byte) { lastDelivery = b.tb.Now() }
	b.pb.ResumeLoading()
	b.tb.Run()
	rx := b.tb.Hosts[1].Received
	if rx != int64(cfg.DrainFrames) {
		return 0 // loss during forward; poison the result visibly
	}
	// Measure to the last delivery (the engine keeps idle read-timeout
	// timers alive past it).
	elapsed := lastDelivery.Sub(start)
	return float64(rx) * float64(cfg.FrameLen) * 8 / elapsed.Seconds() / 1e9
}

// e1Native measures host↔host native RDMA WRITE and READ goodput — the
// paper's baseline ("The baseline is only 4.4% faster").
func e1Native(cfg E1Config, read bool) float64 {
	n := netsim.New(1)
	clientHost := netsim.NewHost("client", 1)
	serverHost := netsim.NewHost("server", 2)
	client := rnic.New("client-nic", clientHost, rnic.Config{MTU: 4096})
	server := rnic.New("server-nic", serverHost, rnic.Config{MTU: 4096})
	pc, ps := n.Connect(client, server, netsim.Link40G())
	client.Bind(n.Engine, pc)
	server.Bind(n.Engine, ps)
	region := server.RegisterMemory(0x10000, 64<<20)
	qp := server.CreateQP(rnic.PSNStrict)
	req := client.NewRequester(server.MAC, server.IP, qp.Number, 512)
	qp.PeerMAC, qp.PeerIP, qp.PeerQPN = client.MAC, client.IP, 0x999

	payload := make([]byte, cfg.FrameLen)
	var done int64
	slots := 64 << 20 / cfg.FrameLen
	issued := 0
	post := func() {
		va := 0x10000 + uint64(issued%slots)*uint64(cfg.FrameLen)
		if read {
			req.PostRead(va, region.RKey, cfg.FrameLen, func([]byte) { done++ })
		} else {
			req.PostWrite(va, region.RKey, payload, func() { done++ })
		}
		issued++
	}
	// Keep a deep pipeline of outstanding messages for the whole window.
	n.Engine.Ticker(2*sim.Microsecond, func() bool {
		for issued-int(done) < 128 {
			post()
		}
		return n.Engine.Now() < sim.Time(cfg.Window)
	})
	n.Engine.RunUntil(sim.Time(cfg.Window))
	return float64(done) * float64(cfg.FrameLen) * 8 / cfg.Window.Seconds() / 1e9
}

// RunE1 executes the packet-buffer throughput experiment.
func RunE1(cfg E1Config) (*Table, E1Result) {
	var res E1Result
	// Sweep offered store rate upward; the max lossless rate is the last
	// rate with zero loss.
	for rate := cfg.SweepStart; rate <= cfg.SweepEnd+1e-9; rate += cfg.SweepStep {
		lossless, stored := e1StoreAttempt(cfg, rate)
		if lossless && stored > res.StoreMaxGbps {
			res.StoreMaxGbps = stored
		}
		if !lossless {
			break // past the knee
		}
	}
	res.ForwardGbps = e1Forward(cfg)
	res.NativeWriteGbps = e1Native(cfg, false)
	res.NativeReadGbps = e1Native(cfg, true)
	if res.StoreMaxGbps > 0 {
		res.BaselineAdvantage = res.NativeWriteGbps/res.StoreMaxGbps - 1
	}

	t := &Table{
		ID:      "E1",
		Title:   fmt.Sprintf("Packet buffer primitive throughput (%dB frames), cf. §5", cfg.FrameLen),
		Columns: []string{"path", "goodput (Gbps)", "paper"},
	}
	t.AddRow("store to remote buffer (max lossless)", f1(res.StoreMaxGbps), "34.1")
	t.AddRow("load + forward", f1(res.ForwardGbps), "37.4")
	t.AddRow("native RDMA WRITE (baseline)", f1(res.NativeWriteGbps), "~35.6")
	t.AddRow("native RDMA READ (baseline)", f1(res.NativeReadGbps), "-")
	t.AddNote("baseline advantage over store path: %s (paper: 4.4%%)", pct(res.BaselineAdvantage))
	return t, res
}
