package harness

import (
	"fmt"

	"gem"
	"gem/internal/flowgen"
	"gem/internal/rnic"
	"gem/internal/sim"
)

// E4Config parameterizes the §2.1 / Figure 1a incast scenario: n uplinks
// burst a large incast at one 40 Gbps downlink behind a 12 MB switch
// buffer. The paper's arithmetic: a 50 MB burst fills 12 MB within
// 12MB/(8−1)/40Gbps = 0.34 ms and starts dropping; the remote packet buffer
// makes the last hop lossless.
type E4Config struct {
	// Senders is the incast fan-in (paper: 8 uplinks).
	Senders int
	// BurstMBs is the sweep of total burst sizes in MB.
	BurstMBs []int
	// FrameLen is the burst frame size.
	FrameLen int
	// BufferServers is how many remote buffer servers back the primitive
	// (§2.1: "one or multiple servers"; an n:1 line-rate incast needs
	// about n−1 of them once the ordering rule engages).
	BufferServers int
	// RegionMB is the reserved DRAM per buffer server (paper: O(1 GB);
	// scaled down to the burst sizes simulated).
	RegionMB int
}

// DefaultE4Config returns the full-experiment settings.
func DefaultE4Config() E4Config {
	return E4Config{
		Senders:       8,
		BurstMBs:      []int{12, 25, 50, 100},
		FrameLen:      1500,
		BufferServers: 8,
		RegionMB:      64,
	}
}

// E4Point is one burst size of the incast sweep.
type E4Point struct {
	BurstMB           int
	BaselineLossRate  float64
	BaselineFirstDrop sim.Duration // time until the buffer overflowed
	BaselineFCT       sim.Duration // time to deliver what survived
	PrimitiveLossRate float64
	PrimitivePFCLoss  float64      // with the §7 PFC mitigation enabled
	PrimitiveFCT      sim.Duration // time to deliver everything
	MaxRingDepth      int64        // peak remote-ring occupancy (entries)
	SpilledFrames     int64
}

func e4Run(cfg E4Config, burstMB int, withPrimitive, pfc bool) (lossRate float64, firstDrop, fct sim.Duration, spilled, maxDepth int64) {
	mem := 0
	if withPrimitive {
		mem = cfg.BufferServers
	}
	tb, err := gem.New(gem.Options{
		Seed:          4,
		Hosts:         cfg.Senders + 1,
		MemoryServers: mem,
		NIC:           rnic.Config{MTU: 4096, EnablePFC: pfc},
	})
	if err != nil {
		panic(err)
	}
	recv := cfg.Senders // receiver host index; its switch port is the hot port
	var pb *gem.PacketBuffer
	if withPrimitive {
		var chans []*gem.Channel
		for i := 0; i < cfg.BufferServers; i++ {
			ch, err := tb.Establish(i, gem.ChannelSpec{RegionSize: cfg.RegionMB << 20})
			if err != nil {
				panic(err)
			}
			chans = append(chans, ch)
		}
		pb, err = gem.NewPacketBuffer(chans, tb.SwitchPortOfHost(recv), gem.PacketBufferConfig{
			EntrySize:           cfg.FrameLen + 4,
			HighWaterBytes:      1 << 20,
			LowWaterBytes:       512 << 10,
			MaxOutstandingReads: 64,
		})
		if err != nil {
			panic(err)
		}
		pb.RegisterWith(tb.Dispatcher)
		tb.Switch.Hooks = pb
	}
	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil {
			ctx.Drop()
			return
		}
		if ctx.Pkt.Eth.Dst == tb.Hosts[recv].MAC {
			if pb != nil {
				pb.Admit(ctx, ctx.Frame)
			} else {
				ctx.Emit(recv, ctx.Frame)
			}
			return
		}
		ctx.Drop()
	})

	totalFrames := burstMB << 20 / cfg.FrameLen
	perSender := totalFrames / cfg.Senders
	for i := 0; i < cfg.Senders; i++ {
		gen := &flowgen.CBR{
			Src: tb.Hosts[i], Dst: tb.Hosts[recv], Port: tb.HostPort(i),
			FrameLen: cfg.FrameLen, RateBps: 40e9, FlowCount: 8,
		}
		gen.Start(tb.Engine, int64(perSender))
	}
	tb.Run()

	offered := int64(perSender * cfg.Senders)
	delivered := tb.Hosts[recv].Received
	lossRate = float64(offered-delivered) / float64(offered)
	firstDrop = sim.Duration(tb.Switch.Stats.FirstBufferDrop)
	fct = sim.Duration(tb.Now())
	if pb != nil {
		spilled = pb.Stats.Stored
		maxDepth = pb.Stats.MaxDepth
		if tb.ServerCPUOps() != 0 {
			panic("E4: buffer server CPU touched")
		}
	}
	return lossRate, firstDrop, fct, spilled, maxDepth
}

// RunE4 executes the incast mitigation experiment.
func RunE4(cfg E4Config) (*Table, []E4Point) {
	var points []E4Point
	t := &Table{
		ID: "E4",
		Title: fmt.Sprintf("§2.1 incast: %d×40G uplinks → one 40G downlink, 12 MB switch buffer",
			cfg.Senders),
		Columns: []string{
			"burst (MB)", "baseline loss", "first drop (ms)",
			"primitive loss", "primitive+PFC", "spilled frames", "peak ring (entries)",
		},
	}
	for _, mb := range cfg.BurstMBs {
		var p E4Point
		p.BurstMB = mb
		p.BaselineLossRate, p.BaselineFirstDrop, p.BaselineFCT, _, _ = e4Run(cfg, mb, false, false)
		p.PrimitiveLossRate, _, p.PrimitiveFCT, p.SpilledFrames, p.MaxRingDepth = e4Run(cfg, mb, true, false)
		p.PrimitivePFCLoss, _, _, _, _ = e4Run(cfg, mb, true, true)
		points = append(points, p)
		firstDrop := "-"
		if p.BaselineLossRate > 0 {
			firstDrop = f3(p.BaselineFirstDrop.Seconds() * 1e3)
		}
		t.AddRow(fmt.Sprintf("%d", mb), pct(p.BaselineLossRate), firstDrop,
			pct(p.PrimitiveLossRate), pct(p.PrimitivePFCLoss), di(p.SpilledFrames), di(p.MaxRingDepth))
	}
	t.AddNote("paper arithmetic: 12 MB buffer fills in 12MB/(8-1)/40Gbps = 0.34 ms; a 50 MB")
	t.AddNote("burst needs ≥10 ms to drain at 40G, so most of it drops without the primitive;")
	t.AddNote("the residual primitive loss at large bursts is NIC RX overrun, which the §7")
	t.AddNote("PFC mitigation removes by pausing the memory link instead of dropping")
	return t, points
}
