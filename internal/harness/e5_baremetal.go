package harness

import (
	"fmt"

	"gem"
	"gem/internal/flowgen"
	"gem/internal/netsim"
	"gem/internal/rnic"
	"gem/internal/sim"
	"gem/internal/stats"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// E5Config parameterizes the §2.2 bare-metal hosting scenario: a
// virtual-to-physical address mapping table an order of magnitude larger
// than switch SRAM. The baseline must bounce misses through a CPU slow
// path; the lookup-table primitive serves them from remote DRAM with the
// local table acting as a cache.
type E5Config struct {
	// Mappings is the virtual→physical table size (flows).
	Mappings int
	// CacheEntries is the switch SRAM cache capacity (≈10× smaller).
	CacheEntries int
	// Packets is the workload length.
	Packets int
	// ZipfSkew shapes flow popularity.
	ZipfSkew float64
	// SlowPathLatency is the CPU software-switch detour cost of the
	// baseline (tens of µs per the paper's motivation).
	SlowPathLatency sim.Duration
}

// DefaultE5Config returns the full-experiment settings.
func DefaultE5Config() E5Config {
	return E5Config{
		Mappings:        200_000,
		CacheEntries:    16_384,
		Packets:         60_000,
		ZipfSkew:        1.1,
		SlowPathLatency: 40 * sim.Microsecond,
	}
}

// E5Result compares the slow-path baseline with the primitive.
type E5Result struct {
	BaselineSlowPathFrac float64 // fraction of packets through the CPU path
	BaselineP50Us        float64
	BaselineP99Us        float64
	PrimitiveRemoteFrac  float64 // fraction served from remote DRAM
	PrimitiveP50Us       float64
	PrimitiveP99Us       float64
	CacheHitRate         float64
	SRAMNeededFullMB     float64 // SRAM a full table would need
	SRAMUsedMB           float64 // SRAM the primitive actually used
	ServerCPUOps         int64   // memory server CPU (must be 0)
	BaselineCPUOps       int64   // slow-path server CPU (large)
}

// e5Flow materializes flow i as a frame between the two hosts.
func e5Frame(tb *gem.Testbed, i, size int) []byte {
	sp, dp := flowgen.FlowID(i)
	return wire.BuildDataFrame(tb.Hosts[0].MAC, tb.Hosts[1].MAC,
		tb.Hosts[0].IP, tb.Hosts[1].IP, sp, dp, size, nil)
}

// e5Baseline: the switch holds only CacheEntries mappings in SRAM; misses
// detour through a software virtual switch on a CPU (latency + CPU ops).
func e5Baseline(cfg E5Config) (slowFrac, p50, p99 float64, cpuOps int64) {
	tb, err := gem.New(gem.Options{Seed: 5, Hosts: 2})
	if err != nil {
		panic(err)
	}
	cache, err := switchsim.NewCacheTable[wire.FlowKey, wire.IP4](
		tb.Switch.SRAM, "vnet-cache", cfg.CacheEntries, 24)
	if err != nil {
		panic(err)
	}
	lat := &stats.Histogram{}
	var sentAt sim.Time
	var slow int64
	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		key := gem.FlowOf(ctx.Pkt)
		if _, ok := cache.Lookup(key); ok {
			ctx.Emit(1, ctx.Frame)
			return
		}
		// Miss: bounce via the CPU software switch, then install. The
		// frame is parked across the detour, so declare the retention —
		// Inject hands ownership back to the fabric when the CPU is done.
		slow++
		cpuOps++
		frame := ctx.Frame
		ctx.Retain()
		tb.Engine.Schedule(cfg.SlowPathLatency, func() {
			cache.Put(key, wire.IP4{})
			tb.Switch.Inject(1, frame)
		})
	})
	zipf := flowgen.NewZipf(5, cfg.Mappings, cfg.ZipfSkew)
	// Closed-loop: send next packet when the previous is delivered, so
	// per-packet latency is clean.
	var send func()
	i := 0
	tb.Hosts[1].Handler = func(_ *netsim.Port, frame []byte) {
		lat.AddDuration(tb.Now().Sub(sentAt))
		i++
		if i < cfg.Packets {
			send()
		}
	}
	send = func() {
		sentAt = tb.Now()
		tb.SendFrame(0, e5Frame(tb, zipf.Next(), 256))
	}
	send()
	tb.Run()
	return float64(slow) / float64(cfg.Packets),
		float64(lat.Percentile(50)) / 1e3, float64(lat.Percentile(99)) / 1e3, cpuOps
}

// e5Primitive: the full mapping lives in remote DRAM; the SRAM cache holds
// the hot set; misses are served by the lookup primitive in-network.
func e5Primitive(cfg E5Config) (remoteFrac, p50, p99, hitRate float64, sramMB float64, srvCPU int64) {
	tb, err := gem.New(gem.Options{
		Seed: 5, Hosts: 2, MemoryServers: 1,
		NIC: rnic.Config{MTU: 4096},
	})
	if err != nil {
		panic(err)
	}
	lcfg := gem.LookupConfig{
		Entries:      cfg.Mappings,
		MaxPktBytes:  512,
		CacheEntries: cfg.CacheEntries,
	}
	ch, err := tb.Establish(0, gem.ChannelSpec{RegionSize: lcfg.Entries * lcfg.EntrySize()})
	if err != nil {
		panic(err)
	}
	lt, err := gem.NewLookupTable(ch, lcfg)
	if err != nil {
		panic(err)
	}
	lt.DefaultOutPort = 1
	region := tb.Region(ch)
	for i := 0; i < lcfg.Entries; i++ {
		phys := wire.IP4FromUint32(0x0B000000 | uint32(i))
		if err := gem.PopulateLookupEntry(region, lcfg, i, gem.SetDstIPAction(phys)); err != nil {
			panic(err)
		}
	}
	tb.Dispatcher.Register(ch, lt)
	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		lt.Lookup(ctx, ctx.Frame, ctx.Pkt)
	})
	lat := &stats.Histogram{}
	var sentAt sim.Time
	zipf := flowgen.NewZipf(5, cfg.Mappings, cfg.ZipfSkew)
	i := 0
	var send func()
	tb.Hosts[1].Handler = func(_ *netsim.Port, frame []byte) {
		lat.AddDuration(tb.Now().Sub(sentAt))
		i++
		if i < cfg.Packets {
			send()
		}
	}
	send = func() {
		sentAt = tb.Now()
		tb.SendFrame(0, e5Frame(tb, zipf.Next(), 256))
	}
	send()
	tb.Run()
	return float64(lt.Stats.RemoteLookups) / float64(cfg.Packets),
		float64(lat.Percentile(50)) / 1e3, float64(lat.Percentile(99)) / 1e3,
		lt.Cache().HitRate(),
		float64(tb.Switch.SRAM.Used()) / (1 << 20),
		tb.ServerCPUOps()
}

// RunE5 executes the bare-metal lookup-scale experiment.
func RunE5(cfg E5Config) (*Table, E5Result) {
	var res E5Result
	res.BaselineSlowPathFrac, res.BaselineP50Us, res.BaselineP99Us, res.BaselineCPUOps = e5Baseline(cfg)
	res.PrimitiveRemoteFrac, res.PrimitiveP50Us, res.PrimitiveP99Us, res.CacheHitRate,
		res.SRAMUsedMB, res.ServerCPUOps = e5Primitive(cfg)
	res.SRAMNeededFullMB = float64(cfg.Mappings*24) / (1 << 20)

	t := &Table{
		ID: "E5",
		Title: fmt.Sprintf("§2.2 bare-metal hosting: %d mappings vs %d-entry SRAM cache",
			cfg.Mappings, cfg.CacheEntries),
		Columns: []string{"design", "miss path", "miss frac", "p50 (µs)", "p99 (µs)", "CPU ops"},
	}
	t.AddRow("baseline (SRAM + CPU slow path)", "software vswitch",
		pct(res.BaselineSlowPathFrac), f2(res.BaselineP50Us), f2(res.BaselineP99Us), di(res.BaselineCPUOps))
	t.AddRow("lookup-table primitive", "remote DRAM (data plane)",
		pct(res.PrimitiveRemoteFrac), f2(res.PrimitiveP50Us), f2(res.PrimitiveP99Us), di(res.ServerCPUOps))
	t.AddNote("full table would need %.1f MB of SRAM; primitive used %.1f MB (cache+state)",
		res.SRAMNeededFullMB, res.SRAMUsedMB)
	t.AddNote("cache hit rate %s; paper: slow-path forwarding 'can be eliminated or minimized'",
		pct(res.CacheHitRate))
	return t, res
}
