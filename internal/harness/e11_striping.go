package harness

import (
	"fmt"

	"gem"
	"gem/internal/flowgen"
	"gem/internal/netsim"
	"gem/internal/rnic"
	"gem/internal/sim"
)

// E11 measures what the striped transport buys: aggregate throughput when
// one logical primitive fans out over several memory servers, and the
// frames-on-wire reduction when posting moves to the doorbell path.
//
// Three sub-experiments:
//
//	E11a (FAA scaling)  — a striped state store saturated well past one
//	     RNIC's atomic ceiling; the FAA issue rate must track the number
//	     of servers (each shard has its own NIC, credits, and PSN stream).
//	E11b (READ scaling) — a striped packet buffer drains a preloaded ring
//	     through READs with each NIC's host-memory fetch rate as the
//	     bottleneck; drain goodput must track the number of servers.
//	E11c (doorbell)     — same offered update stream with and without
//	     doorbell batching; frames on the wire must shrink by the
//	     configured Batch factor.
type E11Config struct {
	// Seed drives the whole testbed (runs with equal seeds replay exactly).
	Seed int64
	// Islands partitions the testbed over parallel event loops (see
	// gem.Options.Islands); 0/1 = single loop. Output is byte-identical
	// for every value.
	Islands int

	// Servers are the fan-out widths to sweep (paper-style 1/2/4).
	Servers []int

	// E11a: striped state store under atomic saturation.
	Counters       int
	MaxOutstanding int
	InjectEvery    sim.Duration // update injection period (≪ 1/AtomicOpsPerSec)
	Window         sim.Duration // measurement window

	// E11b: striped packet buffer drain.
	ReadFrames     int     // preloaded ring entries
	FrameLen       int     // entry payload size
	ReadGbpsPerNIC float64 // per-NIC READ payload ceiling (the bottleneck)

	// E11c: doorbell ablation.
	DoorbellUpdates int
	DoorbellEvery   sim.Duration // sub-ceiling pacing: unbatched = 1 frame/update
	DoorbellBatch   int
	DoorbellFlush   sim.Duration // age trigger; kept far above the run length
}

// DefaultE11Config returns the full-experiment settings.
func DefaultE11Config() E11Config {
	return E11Config{
		Seed:            1,
		Servers:         []int{1, 2, 4},
		Counters:        64,
		MaxOutstanding:  16,
		InjectEvery:     100 * sim.Nanosecond, // 10 M/s offered vs 1.29 M/s per NIC
		Window:          2 * sim.Millisecond,
		ReadFrames:      1200,
		FrameLen:        1500,
		ReadGbpsPerNIC:  8, // 4 NICs still fit under the 40G egress link
		DoorbellUpdates: 4800,
		DoorbellEvery:   5 * sim.Microsecond, // 200 k/s, under the atomic ceiling
		DoorbellBatch:   8,
		DoorbellFlush:   50 * sim.Millisecond,
	}
}

// E11Result is flat and comparable so reproducibility is a single ==.
type E11Result struct {
	// FAA issue rate (Mops/s) and exactness per fan-out width.
	FAARate1, FAARate2, FAARate4    float64
	FAAExact1, FAAExact2, FAAExact4 bool
	FAASpeedup2, FAASpeedup4        float64

	// READ drain goodput (Gbps) per fan-out width.
	ReadGbps1, ReadGbps2, ReadGbps4 float64
	ReadSpeedup2, ReadSpeedup4      float64

	// Doorbell ablation: frames on the wire for the same update stream.
	FramesUnbatched, FramesBatched int64
	FramesRatio                    float64
	DoorbellExact                  bool

	// PendingEvents sums leftover event-queue entries; it must be 0.
	PendingEvents int
}

// e11FAARun saturates a striped state store over `servers` memory servers
// and reports the FAA issue rate inside the window plus conservation after
// the drain.
func e11FAARun(cfg E11Config, servers int) (rateMops float64, exact bool, pending int) {
	tb, err := gem.New(gem.Options{Seed: cfg.Seed, Islands: cfg.Islands, MemoryServers: servers})
	if err != nil {
		panic(err)
	}
	chans := make([]*gem.Channel, servers)
	for i := range chans {
		ch, err := tb.Establish(i, gem.ChannelSpec{RegionSize: cfg.Counters * 8})
		if err != nil {
			panic(err)
		}
		chans[i] = ch
	}
	ss, err := gem.NewStripedStateStore(chans, gem.StateStoreConfig{
		Counters: cfg.Counters, MaxOutstanding: cfg.MaxOutstanding,
	})
	if err != nil {
		panic(err)
	}
	for _, ch := range chans {
		tb.Dispatcher.Register(ch, ss)
	}
	tb.SetPipeline(func(ctx *gem.Context) { ctx.Drop() })

	// Inject far past the per-NIC atomic ceiling; the issue rate clamps to
	// the aggregate service rate, which is what striping multiplies.
	injected := uint64(0)
	tb.Engine.Ticker(cfg.InjectEvery, func() bool {
		ss.Update(int(injected)%cfg.Counters, 1)
		injected++
		return tb.Now() < sim.Time(cfg.Window)
	})
	tb.RunFor(cfg.Window)
	faaInWindow := ss.Stats.FAAIssued

	tb.Run() // drain the backlog
	var remote uint64
	for i := 0; i < cfg.Counters; i++ {
		ch, off := ss.CounterHome(i)
		if v, err := tb.ReadRemoteCounter(ch, off); err == nil {
			remote += v
		}
	}
	exact = remote+ss.PendingTotal() == injected && ss.Stats.DroppedUpdates == 0
	rateMops = float64(faaInWindow) / cfg.Window.Seconds() / 1e6
	return rateMops, exact, tb.PendingEvents()
}

// e11ReadRun preloads a striped ring, then drains it with each NIC's READ
// payload rate as the bottleneck and reports the forward goodput.
func e11ReadRun(cfg E11Config, servers int) (gbps float64, pending int) {
	tb, err := gem.New(gem.Options{
		Seed: cfg.Seed, Islands: cfg.Islands, Hosts: 2, MemoryServers: servers,
		NIC: rnic.Config{MTU: 4096, ReadPayloadBps: cfg.ReadGbpsPerNIC * 1e9},
	})
	if err != nil {
		panic(err)
	}
	chans := make([]*gem.Channel, servers)
	for i := range chans {
		ch, err := tb.Establish(i, gem.ChannelSpec{RegionSize: 4 << 20})
		if err != nil {
			panic(err)
		}
		chans[i] = ch
	}
	pb, err := gem.NewPacketBuffer(chans, tb.SwitchPortOfHost(1), gem.PacketBufferConfig{
		EntrySize:      cfg.FrameLen + 4,
		HighWaterBytes: 1, LowWaterBytes: 256 << 10, // store everything, load eagerly
		MaxOutstandingReads: 32,
	})
	if err != nil {
		panic(err)
	}
	pb.RegisterWith(tb.Dispatcher)
	tb.Switch.Hooks = pb
	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil || ctx.Pkt.IsRoCE {
			ctx.Drop()
			return
		}
		pb.Admit(ctx, ctx.Frame)
	})

	// Preload below the throttled WRITE service rate, loading paused.
	pb.PauseLoading()
	gen := &flowgen.CBR{
		Src: tb.Hosts[0], Dst: tb.Hosts[1], Port: tb.HostPort(0),
		FrameLen: cfg.FrameLen, RateBps: 3e9,
	}
	gen.Start(tb.Engine, int64(cfg.ReadFrames))
	tb.Run()
	if pb.Stats.Stored != int64(cfg.ReadFrames) {
		return 0, tb.PendingEvents() // preload failed; poison visibly
	}

	start := tb.Now()
	var lastDelivery sim.Time
	tb.Hosts[1].Handler = func(_ *netsim.Port, _ []byte) { lastDelivery = tb.Now() }
	pb.ResumeLoading()
	tb.Run()
	if tb.Hosts[1].Received != int64(cfg.ReadFrames) {
		return 0, tb.PendingEvents()
	}
	elapsed := lastDelivery.Sub(start)
	gbps = float64(cfg.ReadFrames) * float64(cfg.FrameLen) * 8 / elapsed.Seconds() / 1e9
	return gbps, tb.PendingEvents()
}

// e11DoorbellRun replays the same paced update stream with or without
// doorbell batching and reports frames on the wire plus exactness.
func e11DoorbellRun(cfg E11Config, doorbell bool) (frames int64, exact bool, pending int) {
	tb, err := gem.New(gem.Options{Seed: cfg.Seed, Islands: cfg.Islands, MemoryServers: 1})
	if err != nil {
		panic(err)
	}
	ch, err := tb.Establish(0, gem.ChannelSpec{RegionSize: 8 * 8})
	if err != nil {
		panic(err)
	}
	ssCfg := gem.StateStoreConfig{Counters: 8}
	if doorbell {
		ssCfg.Batch = uint64(cfg.DoorbellBatch)
		ssCfg.Doorbell = true
		ssCfg.DoorbellFlush = cfg.DoorbellFlush // age trigger stays out of the way
	}
	ss, err := gem.NewStateStore(ch, ssCfg)
	if err != nil {
		panic(err)
	}
	tb.Dispatcher.Register(ch, ss)
	tb.SetPipeline(func(ctx *gem.Context) { ctx.Drop() })

	// Sub-ceiling pacing: the unbatched path posts one FAA per update, so
	// the batched/unbatched frame ratio isolates the doorbell's coalescing.
	injected := 0
	tb.Engine.Ticker(cfg.DoorbellEvery, func() bool {
		ss.Update(injected%8, 1)
		injected++
		return injected < cfg.DoorbellUpdates
	})
	tb.Run() // includes the final age-triggered flush
	var remote uint64
	for i := 0; i < 8; i++ {
		chI, off := ss.CounterHome(i)
		if v, err := tb.ReadRemoteCounter(chI, off); err == nil {
			remote += v
		}
	}
	exact = remote+ss.PendingTotal() == uint64(cfg.DoorbellUpdates) &&
		ss.Stats.DroppedUpdates == 0
	return ss.Stats.FAAIssued, exact, tb.PendingEvents()
}

// RunE11 executes the striping + doorbell experiment.
func RunE11(cfg E11Config) (*Table, E11Result) {
	var res E11Result
	for _, n := range cfg.Servers {
		rate, exact, pend := e11FAARun(cfg, n)
		gbps, rpend := e11ReadRun(cfg, n)
		res.PendingEvents += pend + rpend
		switch n {
		case 1:
			res.FAARate1, res.FAAExact1, res.ReadGbps1 = rate, exact, gbps
		case 2:
			res.FAARate2, res.FAAExact2, res.ReadGbps2 = rate, exact, gbps
		case 4:
			res.FAARate4, res.FAAExact4, res.ReadGbps4 = rate, exact, gbps
		}
	}
	if res.FAARate1 > 0 {
		res.FAASpeedup2 = res.FAARate2 / res.FAARate1
		res.FAASpeedup4 = res.FAARate4 / res.FAARate1
	}
	if res.ReadGbps1 > 0 {
		res.ReadSpeedup2 = res.ReadGbps2 / res.ReadGbps1
		res.ReadSpeedup4 = res.ReadGbps4 / res.ReadGbps1
	}
	off, offExact, p1 := e11DoorbellRun(cfg, false)
	on, onExact, p2 := e11DoorbellRun(cfg, true)
	res.FramesUnbatched, res.FramesBatched = off, on
	res.DoorbellExact = offExact && onExact
	res.PendingEvents += p1 + p2
	if on > 0 {
		res.FramesRatio = float64(off) / float64(on)
	}

	t := &Table{
		ID:    "E11",
		Title: "Striped transport: multi-server scaling and doorbell batching",
		Columns: []string{
			"servers", "FAA rate (Mops/s)", "speedup", "exact",
			"READ drain (Gbps)", "speedup",
		},
	}
	row := func(n int, rate, spd float64, exact bool, gbps, rspd float64) {
		t.AddRow(fmt.Sprintf("%d", n), f2(rate), f2(spd), fmt.Sprintf("%v", exact),
			f1(gbps), f2(rspd))
	}
	row(1, res.FAARate1, 1, res.FAAExact1, res.ReadGbps1, 1)
	row(2, res.FAARate2, res.FAASpeedup2, res.FAAExact2, res.ReadGbps2, res.ReadSpeedup2)
	row(4, res.FAARate4, res.FAASpeedup4, res.FAAExact4, res.ReadGbps4, res.ReadSpeedup4)
	t.AddNote("one RNIC's atomic ceiling (1.29 Mops/s) caps every unsharded run; striping")
	t.AddNote("multiplies it because each shard brings its own NIC, credits and PSN stream")
	t.AddNote("doorbell ablation: %d frames unbatched vs %d batched (%.1fx, batch %d, exact %v)",
		res.FramesUnbatched, res.FramesBatched, res.FramesRatio, cfg.DoorbellBatch,
		res.DoorbellExact)
	return t, res
}
