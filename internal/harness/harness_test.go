package harness

import (
	"strings"
	"testing"

	"gem/internal/sim"
	"gem/internal/wire"
)

// The harness tests assert the *shapes* the paper reports — who wins, by
// roughly what factor, where the knees are — at reduced settings so the
// whole suite stays fast.

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("n%d", 1)
	s := tab.String()
	for _, want := range []string{"== X: demo ==", "a", "bb", "note: n1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func quickE1() E1Config {
	cfg := DefaultE1Config()
	cfg.Window = 1 * sim.Millisecond
	cfg.SweepStart, cfg.SweepStep = 33, 1
	cfg.DrainFrames = 2000
	return cfg
}

func TestE1Shapes(t *testing.T) {
	_, res := RunE1(quickE1())
	// Store path lands near the NIC write ceiling, in the mid-30s.
	if res.StoreMaxGbps < 30 || res.StoreMaxGbps > 38 {
		t.Fatalf("store max = %.1f Gbps, want mid-30s", res.StoreMaxGbps)
	}
	// Load+forward beats store (paper: 37.4 > 34.1).
	if res.ForwardGbps <= res.StoreMaxGbps {
		t.Fatalf("forward %.1f <= store %.1f; paper has forward faster",
			res.ForwardGbps, res.StoreMaxGbps)
	}
	// Native baseline is at least as fast as the primitive's store path.
	if res.NativeWriteGbps < res.StoreMaxGbps-0.5 {
		t.Fatalf("native write %.1f clearly below store %.1f",
			res.NativeWriteGbps, res.StoreMaxGbps)
	}
	if res.NativeReadGbps < 35 {
		t.Fatalf("native read = %.1f", res.NativeReadGbps)
	}
}

func TestE2Shape(t *testing.T) {
	cfg := DefaultE2Config()
	cfg.Rounds = 11
	_, points := RunE2(cfg)
	if len(points) != len(cfg.Sizes) {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.LookupUs <= p.BaselineUs {
			t.Fatalf("%dB: primitive %.2fµs not above baseline %.2fµs",
				p.Size, p.LookupUs, p.BaselineUs)
		}
		// Paper: 1–2 µs extra; our calibration sits slightly above. The
		// shape bound: small, single-digit µs, roughly flat.
		if p.ExtraLatencyUs < 0.5 || p.ExtraLatencyUs > 5 {
			t.Fatalf("%dB: extra latency %.2fµs out of band", p.Size, p.ExtraLatencyUs)
		}
	}
	// Roughly flat: spread across sizes well under the paper's band.
	if spread := points[len(points)-1].ExtraLatencyUs - points[0].ExtraLatencyUs; spread > 1.5 {
		t.Fatalf("extra-latency spread %.2fµs; should be nearly flat", spread)
	}
}

func TestE3Shape(t *testing.T) {
	cfg := DefaultE3Config()
	cfg.Sizes = []int{64, 512}
	cfg.Window = 1 * sim.Millisecond
	_, points := RunE3(cfg)
	for _, p := range points {
		if !p.CounterOK {
			t.Fatalf("%dB: counter not exact", p.Size)
		}
		// ≈2.1 Gbps, flat: the RNIC atomic rate cap.
		if p.FAALinkGbps < 1.6 || p.FAALinkGbps > 2.6 {
			t.Fatalf("%dB: FAA bandwidth %.2f Gbps, want ≈2.1", p.Size, p.FAALinkGbps)
		}
		// No end-to-end throughput degradation.
		if diff := p.E2EGbps - p.BaselineGbps; diff < -0.5 || diff > 0.5 {
			t.Fatalf("%dB: e2e %.1f vs baseline %.1f", p.Size, p.E2EGbps, p.BaselineGbps)
		}
	}
	if d := points[1].FAALinkGbps - points[0].FAALinkGbps; d > 0.3 || d < -0.3 {
		t.Fatalf("FAA bandwidth not flat across sizes: %.2f vs %.2f",
			points[0].FAALinkGbps, points[1].FAALinkGbps)
	}
}

func TestE4Shape(t *testing.T) {
	cfg := DefaultE4Config()
	cfg.BurstMBs = []int{25}
	cfg.RegionMB = 32
	_, points := RunE4(cfg)
	p := points[0]
	// Baseline: most of the 25MB burst beyond ~12MB buffer drops...
	if p.BaselineLossRate < 0.25 {
		t.Fatalf("baseline loss %.2f too low for a 25MB burst", p.BaselineLossRate)
	}
	// ...and the first drop lands around the paper's 0.34 ms arithmetic.
	ms := p.BaselineFirstDrop.Seconds() * 1e3
	if ms < 0.25 || ms > 0.55 {
		t.Fatalf("first drop at %.3f ms, paper arithmetic says ≈0.34", ms)
	}
	// The primitive absorbs the burst losslessly.
	if p.PrimitiveLossRate != 0 {
		t.Fatalf("primitive loss %.4f, want 0", p.PrimitiveLossRate)
	}
	if p.PrimitivePFCLoss != 0 {
		t.Fatalf("primitive+PFC loss %.4f, want 0", p.PrimitivePFCLoss)
	}
	if p.SpilledFrames == 0 {
		t.Fatal("nothing spilled: scenario did not engage the ring")
	}
}

func TestE5Shape(t *testing.T) {
	cfg := DefaultE5Config()
	cfg.Mappings, cfg.Packets, cfg.CacheEntries = 50_000, 10_000, 4096
	_, res := RunE5(cfg)
	if res.ServerCPUOps != 0 {
		t.Fatalf("server CPU = %d", res.ServerCPUOps)
	}
	if res.BaselineCPUOps == 0 {
		t.Fatal("baseline slow path cost no CPU?")
	}
	// Tail latency: remote DRAM beats the CPU slow path by a wide margin.
	if res.PrimitiveP99Us >= res.BaselineP99Us/2 {
		t.Fatalf("primitive p99 %.1fµs vs baseline %.1fµs: no tail win",
			res.PrimitiveP99Us, res.BaselineP99Us)
	}
	// Both designs miss the SRAM cache at a similar rate.
	if res.PrimitiveRemoteFrac < 0.02 || res.BaselineSlowPathFrac < 0.02 {
		t.Fatal("workload never missed: cache too large for the test")
	}
}

func TestE6Shape(t *testing.T) {
	cfg := DefaultE6Config()
	cfg.Packets = 15_000
	_, res := RunE6(cfg)
	if res.ServerCPUOps != 0 {
		t.Fatalf("server CPU = %d", res.ServerCPUOps)
	}
	if res.Recall < 0.9 {
		t.Fatalf("recall %.2f", res.Recall)
	}
	if res.Precision < 0.9 {
		t.Fatalf("precision %.2f", res.Precision)
	}
	if res.MeanRelErrTop > 0.1 {
		t.Fatalf("mean relative error %.3f", res.MeanRelErrTop)
	}
}

func TestE7ExactNumbers(t *testing.T) {
	_, res := RunE7(DefaultE7Config())
	if res.V2Transport != 40 || res.V1Transport != 52 ||
		res.WriteExt != 16 || res.ReadExt != 16 || res.FAAExt != 28 {
		t.Fatalf("overhead numbers diverged from the paper: %+v", res)
	}
	for i := 1; i < len(res.ExpansionV2); i++ {
		if res.ExpansionV2[i] >= res.ExpansionV2[i-1] {
			t.Fatal("v2 expansion not decreasing with size")
		}
	}
}

func TestE8aShape(t *testing.T) {
	cfg := DefaultE8aConfig()
	cfg.Window = 1 * sim.Millisecond
	cfg.Batches = []uint64{1, 128}
	_, points := RunE8a(cfg)
	if points[1].FAAIssued >= points[0].FAAIssued {
		t.Fatalf("batching did not reduce ops: %d vs %d",
			points[0].FAAIssued, points[1].FAAIssued)
	}
	if points[1].LinkGbps >= points[0].LinkGbps {
		t.Fatal("batching did not reduce link bandwidth")
	}
	if points[1].MeanStaleness <= points[0].MeanStaleness {
		t.Fatal("batching should increase staleness")
	}
	for _, p := range points {
		if !p.Exact {
			t.Fatalf("batch %d lost counts", p.Batch)
		}
	}
}

func TestE8bShape(t *testing.T) {
	cfg := E8bConfig{Sizes: []int{64, 1500}, Packets: 60}
	_, points := RunE8b(cfg)
	for _, p := range points {
		if p.RecircLinkBytes >= p.DepositLinkBytes {
			t.Fatalf("%dB: recirculation did not save memory-link bytes", p.Size)
		}
	}
	// The saving grows with packet size.
	save0 := points[0].DepositLinkBytes - points[0].RecircLinkBytes
	save1 := points[1].DepositLinkBytes - points[1].RecircLinkBytes
	if save1 <= save0 {
		t.Fatalf("bandwidth saving did not grow with size: %.0f vs %.0f", save0, save1)
	}
}

func TestE8cShape(t *testing.T) {
	cfg := E8cConfig{LossRates: []float64{0, 0.02}, Updates: 600}
	_, points := RunE8c(cfg)
	for _, p := range points {
		if p.ReliableError != 0 {
			t.Fatalf("loss %.3f: reliable error %.4f, want exactly 0", p.LossRate, p.ReliableError)
		}
	}
	if points[0].UnreliableError != 0 {
		t.Fatalf("0%% loss: fire-and-forget error %.4f, want 0", points[0].UnreliableError)
	}
	if points[1].UnreliableError < 0.005 {
		t.Fatalf("2%% loss: fire-and-forget error %.4f suspiciously low", points[1].UnreliableError)
	}
	if points[1].Retransmits == 0 {
		t.Fatal("no retransmits under loss")
	}
}

func TestE8dShape(t *testing.T) {
	cfg := DefaultE8dConfig()
	cfg.Window = 1 * sim.Millisecond
	cfg.CapsGbps = []float64{0, 1}
	_, points := RunE8d(cfg)
	if points[1].LinkGbps >= points[0].LinkGbps {
		t.Fatalf("cap did not reduce link bandwidth: %.2f vs %.2f",
			points[0].LinkGbps, points[1].LinkGbps)
	}
	if points[1].LinkGbps > 1.3 {
		t.Fatalf("1 Gbps cap leaked %.2f Gbps", points[1].LinkGbps)
	}
	for _, p := range points {
		if !p.Exact {
			t.Fatalf("cap %.1f lost counts", p.CapGbps)
		}
	}
	if points[1].CapDrops == 0 {
		t.Fatal("cap never engaged")
	}
}

func TestE8eShape(t *testing.T) {
	cfg := DefaultE8eConfig()
	cfg.Window = 8 * sim.Millisecond
	_, points := RunE8e(cfg)
	fifo, prio := points[0], points[1]
	if prio.FAAIssued < fifo.FAAIssued*3/2 {
		t.Fatalf("priority gained too little: %d vs %d FAAs", prio.FAAIssued, fifo.FAAIssued)
	}
	// Background throughput barely pays for it (FAA traffic is ~2 Gbps).
	if fifo.BackgroundGbps-prio.BackgroundGbps > 2.5 {
		t.Fatalf("priority cost background %.1f Gbps", fifo.BackgroundGbps-prio.BackgroundGbps)
	}
}

func TestE8fShape(t *testing.T) {
	cfg := DefaultE8fConfig()
	cfg.Window = 6 * sim.Millisecond
	cfg.CrashAt = 2 * sim.Millisecond
	_, res := RunE8f(cfg)
	if res.DetectionUs <= 0 || res.DetectionUs > 600 {
		t.Fatalf("detection = %.0f µs with a 100 µs heartbeat", res.DetectionUs)
	}
	if res.OnPrimary == 0 || res.OnStandby == 0 {
		t.Fatalf("counts did not span the failover: primary=%d standby=%d",
			res.OnPrimary, res.OnStandby)
	}
	// Only in-flight ops may vanish: a small constant, not a rate.
	if res.LostInFlight > 64 {
		t.Fatalf("lost %d updates across failover", res.LostInFlight)
	}
}

// TestE9 runs the chaos experiment for three seeds, twice each: every
// invariant must hold and the two runs of a seed must produce identical
// results (the fault models draw only from the engine's seeded RNG).
// Frame-pool balance is checked explicitly because the chaos scenarios
// retain, retransmit, and retarget master copies across simulated failures.
func TestE9(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		before := wire.DefaultPool.Stats().Balance()
		cfg := DefaultE9Config()
		cfg.Seed = seed
		_, first := RunE9(cfg)
		_, second := RunE9(cfg)
		if first != second {
			t.Fatalf("seed %d not reproducible:\n first %+v\nsecond %+v", seed, first, second)
		}
		if !first.AExact {
			t.Errorf("seed %d: E9a counter drifted: %d remote + %d pending != %d updates",
				seed, first.ARemote, first.APending, first.AUpdates)
		}
		if first.ARetransmits == 0 || first.ADrops == 0 || first.ABadICRC == 0 {
			t.Errorf("seed %d: E9a faults not exercised: %d rexmit %d drops %d badICRC",
				seed, first.ARetransmits, first.ADrops, first.ABadICRC)
		}
		if !first.BNoLoss {
			t.Errorf("seed %d: E9b lost updates: primary=%d standby=%d pending=%d",
				seed, first.BOnPrimary, first.BOnStandby, first.BPending)
		}
		if first.BFailovers != 1 || first.BFailbacks != 1 {
			t.Errorf("seed %d: E9b switchovers: %d failovers, %d failbacks",
				seed, first.BFailovers, first.BFailbacks)
		}
		if !first.CExact {
			t.Errorf("seed %d: E9c counter drifted through the flap", seed)
		}
		if first.CDegradedMisses == 0 || first.CDegradedUpdates == 0 || first.CDegradedBypassed == 0 {
			t.Errorf("seed %d: E9c degraded modes idle: lookup=%d store=%d buffer=%d",
				seed, first.CDegradedMisses, first.CDegradedUpdates, first.CDegradedBypassed)
		}
		if !first.DFixedExact || !first.DAdaptiveExact {
			t.Errorf("seed %d: E9d lost counts (fixed=%v adaptive=%v)",
				seed, first.DFixedExact, first.DAdaptiveExact)
		}
		if !first.DAdaptiveWins {
			t.Errorf("seed %d: adaptive RTO did not beat fixed: %d vs %d retransmits",
				seed, first.DAdaptiveRetransmits, first.DFixedRetransmits)
		}
		if first.PendingEvents != 0 {
			t.Errorf("seed %d: event queue not quiescent: %d pending", seed, first.PendingEvents)
		}
		if after := wire.DefaultPool.Stats().Balance(); after != before {
			t.Errorf("seed %d: frame pool unbalanced: %d before, %d after", seed, before, after)
		}
	}
}

// TestE10 runs the overload experiment for three seeds, twice each. Pins:
// credit windows bound outstanding work, per-server occupancy respects the
// high watermark, high-priority traffic stays exact while low-priority shed
// is nonzero under 2× overload, and the UnlimitedWindow ablation reproduces
// the unbounded-growth baseline the windows exist to prevent.
func TestE10(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		before := wire.DefaultPool.Stats().Balance()
		cfg := DefaultE10Config()
		cfg.Seed = seed
		_, first := RunE10(cfg)
		_, second := RunE10(cfg)
		if first != second {
			t.Fatalf("seed %d not reproducible:\n first %+v\nsecond %+v", seed, first, second)
		}
		for _, pt := range first.Incast {
			if pt.PeakReads > 8 {
				t.Errorf("seed %d incast %dx: outstanding READs %d exceed per-channel window 8",
					seed, pt.Intensity, pt.PeakReads)
			}
			if pt.PeakFrac0 > 0.91 || pt.PeakFrac1 > 0.91 {
				t.Errorf("seed %d incast %dx: occupancy %.3f/%.3f exceeded high watermark",
					seed, pt.Intensity, pt.PeakFrac0, pt.PeakFrac1)
			}
			if pt.Intensity <= 2 && !pt.HighLossFree {
				t.Errorf("seed %d incast %dx: high-priority loss: %d/%d delivered",
					seed, pt.Intensity, pt.HighDelivered, pt.HighSent)
			}
			if pt.RingDrops != 0 {
				t.Errorf("seed %d incast %dx: %d silent ring drops", seed, pt.Intensity, pt.RingDrops)
			}
		}
		if first.Incast[1].ShedLow == 0 {
			t.Errorf("seed %d: no low-priority shed at 2x overload", seed)
		}
		for _, pt := range first.Storm {
			if !pt.HighExact {
				t.Errorf("seed %d storm @%dns: high counters drifted: %d != %d remote + %d pending",
					seed, pt.IntervalNs, pt.HighUpdates, pt.HighRemote, pt.HighPending)
			}
			if pt.FAAPeak > 4 {
				t.Errorf("seed %d storm @%dns: FAA window exceeded: peak %d > 4",
					seed, pt.IntervalNs, pt.FAAPeak)
			}
			if pt.MissPeak > 2 {
				t.Errorf("seed %d storm @%dns: miss window exceeded: peak %d > 2",
					seed, pt.IntervalNs, pt.MissPeak)
			}
			if pt.DroppedUpdates != 0 {
				t.Errorf("seed %d storm @%dns: %d silent pending-slot drops",
					seed, pt.IntervalNs, pt.DroppedUpdates)
			}
		}
		if first.Storm[1].ShedUpdates == 0 || first.Storm[1].ShedMisses == 0 {
			t.Errorf("seed %d: fast storm shed nothing: updates=%d misses=%d",
				seed, first.Storm[1].ShedUpdates, first.Storm[1].ShedMisses)
		}
		if first.UnboundedPeakReads < 32 {
			t.Errorf("seed %d: unbounded ablation stayed bounded: peak reads %d < 32",
				seed, first.UnboundedPeakReads)
		}
		if first.UnboundedFAAPeak <= 4 || first.UnboundedMissPeak <= 2 {
			t.Errorf("seed %d: unbounded storm stayed bounded: FAA %d, miss %d",
				seed, first.UnboundedFAAPeak, first.UnboundedMissPeak)
		}
		if first.Snap.CreditRefused == 0 || first.Snap.ShedFrames == 0 {
			t.Errorf("seed %d: snapshot missed admission activity: %+v", seed, first.Snap)
		}
		if first.PendingEvents != 0 {
			t.Errorf("seed %d: event queue not quiescent: %d pending", seed, first.PendingEvents)
		}
		if after := wire.DefaultPool.Stats().Balance(); after != before {
			t.Errorf("seed %d: frame pool unbalanced: %d before, %d after", seed, before, after)
		}
	}
}

// TestE11 runs the striping experiment for three seeds, twice each. Pins:
// the two runs of a seed are identical (the shard=1 and shard=4 beds both
// replay exactly), aggregate FAA rate scales with fan-out width (>=1.7x at
// two servers, >=3x at four), READ drain goodput scales likewise, doorbell
// batching cuts frames on the wire by at least the configured Batch factor,
// and every run stays exactly-once with a quiescent event queue.
func TestE11(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		before := wire.DefaultPool.Stats().Balance()
		cfg := DefaultE11Config()
		cfg.Seed = seed
		_, first := RunE11(cfg)
		_, second := RunE11(cfg)
		if first != second {
			t.Fatalf("seed %d not reproducible:\n first %+v\nsecond %+v", seed, first, second)
		}
		if !first.FAAExact1 || !first.FAAExact2 || !first.FAAExact4 {
			t.Errorf("seed %d: counts drifted under saturation: exact %v/%v/%v",
				seed, first.FAAExact1, first.FAAExact2, first.FAAExact4)
		}
		if first.FAASpeedup2 < 1.7 || first.FAASpeedup4 < 3 {
			t.Errorf("seed %d: FAA scaling too shallow: %.2fx at 2, %.2fx at 4 (rates %.2f/%.2f/%.2f)",
				seed, first.FAASpeedup2, first.FAASpeedup4,
				first.FAARate1, first.FAARate2, first.FAARate4)
		}
		if first.ReadGbps1 == 0 || first.ReadSpeedup2 < 1.7 || first.ReadSpeedup4 < 3 {
			t.Errorf("seed %d: READ scaling too shallow: %.2fx at 2, %.2fx at 4 (%.1f/%.1f/%.1f Gbps)",
				seed, first.ReadSpeedup2, first.ReadSpeedup4,
				first.ReadGbps1, first.ReadGbps2, first.ReadGbps4)
		}
		if !first.DoorbellExact {
			t.Errorf("seed %d: doorbell ablation lost updates", seed)
		}
		if first.FramesBatched == 0 ||
			first.FramesRatio < float64(cfg.DoorbellBatch) {
			t.Errorf("seed %d: doorbell saved too little: %d vs %d frames (%.1fx < %dx)",
				seed, first.FramesUnbatched, first.FramesBatched,
				first.FramesRatio, cfg.DoorbellBatch)
		}
		if first.PendingEvents != 0 {
			t.Errorf("seed %d: event queue not quiescent: %d pending", seed, first.PendingEvents)
		}
		if after := wire.DefaultPool.Stats().Balance(); after != before {
			t.Errorf("seed %d: frame pool unbalanced: %d before, %d after", seed, before, after)
		}
	}
}

// TestE12 runs the consistency-spectrum experiment for three seeds, twice
// each (the same-seed determinism A/B across all three modes). Pins: the
// failover bed degrades and recovers with zero manual SetDegraded calls and
// ends Healthy, no admitted update is lost, bounded staleness never exceeds
// its configured MaxAge, eventual mode commits strictly more FAA work than
// strict under the identical storm, and every arm stays exact with a
// quiescent event queue and a balanced frame pool.
func TestE12(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		before := wire.DefaultPool.Stats().Balance()
		cfg := DefaultE12Config()
		cfg.Seed = seed
		_, first := RunE12(cfg)
		_, second := RunE12(cfg)
		if first != second {
			t.Fatalf("seed %d not reproducible:\n first %+v\nsecond %+v", seed, first, second)
		}
		if !first.ASelfHealed {
			t.Errorf("seed %d: no self-healing cycle: %d degraded exits, %d recoveries, final %s",
				seed, first.ADegradedExits, first.ASupRecoveries, first.AFinalState)
		}
		if first.ADegradedEntries == 0 || first.AReconciles == 0 || first.AModeChanges == 0 {
			t.Errorf("seed %d: supervisor never drove the store: entries=%d reconciles=%d modeChanges=%d",
				seed, first.ADegradedEntries, first.AReconciles, first.AModeChanges)
		}
		if !first.ANoLoss {
			t.Errorf("seed %d: lost updates: committed=%d pending=%d of %d",
				seed, first.ACommitted, first.APending, first.AUpdates)
		}
		if !first.AllExact {
			t.Errorf("seed %d: a spectrum arm drifted: %+v", seed, first.Spectrum)
		}
		if !first.BoundedWithinBound {
			t.Errorf("seed %d: staleness bound violated or idle: %dns (bound %dns, %d flushes)",
				seed, first.Spectrum[1].MaxStalenessNs, int64(cfg.BoundMaxAge),
				first.Spectrum[1].BoundFlushes)
		}
		if !first.EventualBeatsStrict {
			t.Errorf("seed %d: eventual did not out-commit strict: %d vs %d remote",
				seed, first.Spectrum[2].Remote, first.Spectrum[0].Remote)
		}
		if first.Spectrum[0].Shed == 0 {
			t.Errorf("seed %d: strict arm shed nothing; the storm is not overloading", seed)
		}
		if first.Spectrum[2].Shed != 0 {
			t.Errorf("seed %d: eventual arm shed %d updates; eventual never sheds",
				seed, first.Spectrum[2].Shed)
		}
		if first.Spectrum[1].SupDegraded == 0 {
			t.Errorf("seed %d: lookup supervisor never degraded under overload", seed)
		}
		if first.PendingEvents != 0 {
			t.Errorf("seed %d: event queue not quiescent: %d pending", seed, first.PendingEvents)
		}
		if after := wire.DefaultPool.Stats().Balance(); after != before {
			t.Errorf("seed %d: frame pool unbalanced: %d before, %d after", seed, before, after)
		}
	}
}

// TestE13 runs the replication experiment for three seeds, twice each. Pins:
// same-seed runs are byte-identical, the replica lands anti-affine to its
// primary, sync replication is byte-exact across a wiped primary crash (one
// promotion, zero declared loss), async loss is bounded by the counted
// LostDelta with the lag histogram under MaxLag+1 and every declared loss
// surfaced as a typed CQReplicaLost completion, the scrubber repairs the
// replica-blip divergence to byte equality (with the lag pressure walking
// the supervisor to Suspect), and the unreplicated baseline really loses
// updates to the wipe.
func TestE13(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		before := wire.DefaultPool.Stats().Balance()
		cfg := DefaultE13Config()
		cfg.Seed = seed
		_, first := RunE13(cfg)
		_, second := RunE13(cfg)
		if first != second {
			t.Fatalf("seed %d not reproducible:\n first %+v\nsecond %+v", seed, first, second)
		}
		if !first.AntiAffine {
			t.Errorf("seed %d: replica co-located with primary on mem%d", seed, first.PMem)
		}
		if !first.SyncExact {
			t.Errorf("seed %d: sync arm not byte-exact: %d updates, %d replica, %d pending, %d lost-declared, %d promotions",
				seed, first.Sync.Updates, first.Sync.Remote, first.Sync.Pending,
				first.Sync.ReplicaLost, first.Sync.Promotions)
		}
		if first.Sync.Wiped == 0 {
			t.Errorf("seed %d: sync arm crash did not wipe the primary", seed)
		}
		if !first.AsyncBounded || !first.AsyncLagBounded {
			t.Errorf("seed %d: async loss unbounded: %d updates vs %d remote + %d pending + %d lost-delta, lag max %d",
				seed, first.Async.Updates, first.Async.Remote, first.Async.Pending,
				first.Async.LostDelta, first.Async.LagMax)
		}
		if !first.AsyncLossTyped {
			t.Errorf("seed %d: declared losses not surfaced as typed completions: %d CQReplicaLost vs %d declared",
				seed, first.Async.TypedErrors, first.Async.ReplicaLost)
		}
		if !first.ScrubConverged {
			t.Errorf("seed %d: scrub arm did not converge: %d diverged, %d repaired of %d checked",
				seed, first.ScrubDiverged, first.ScrubRepairs, first.ScrubChecked)
		}
		if first.ScrubLost == 0 || first.ScrubRepairs == 0 {
			t.Errorf("seed %d: scrub arm exercised nothing: %d declared lost, %d repairs",
				seed, first.ScrubLost, first.ScrubRepairs)
		}
		if first.ScrubSuspect == 0 {
			t.Errorf("seed %d: replication lag never walked the supervisor to Suspect", seed)
		}
		if !first.BaselineLossy {
			t.Errorf("seed %d: unreplicated baseline lost nothing: %+v", seed, first.Off)
		}
		if first.PendingEvents != 0 {
			t.Errorf("seed %d: event queue not quiescent: %d pending", seed, first.PendingEvents)
		}
		if after := wire.DefaultPool.Stats().Balance(); after != before {
			t.Errorf("seed %d: frame pool unbalanced: %d before, %d after", seed, before, after)
		}
	}
}
