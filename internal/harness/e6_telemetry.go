package harness

import (
	"fmt"
	"math"
	"sort"

	"gem"
	"gem/internal/flowgen"
	"gem/internal/sketch"
	"gem/internal/wire"
)

// E6Config parameterizes the §2.3 telemetry use case: a Count Sketch whose
// counter arrays live in remote DRAM, updated by the state-store primitive
// with one Fetch-and-Add per sketch row per sampled packet, and read by
// operator-side estimation software directly from server memory.
type E6Config struct {
	// Rows and Width shape the Count Sketch.
	Rows, Width int
	// Flows and Packets shape the Zipf workload.
	Flows, Packets int
	// ZipfSkew shapes flow popularity.
	ZipfSkew float64
	// HHThresholdFrac defines a heavy hitter as a flow with more than
	// this fraction of all packets.
	HHThresholdFrac float64
}

// DefaultE6Config returns the full-experiment settings.
func DefaultE6Config() E6Config {
	return E6Config{
		Rows: 5, Width: 8192,
		Flows: 20_000, Packets: 40_000,
		ZipfSkew:        1.15,
		HHThresholdFrac: 0.01,
	}
}

// E6Result summarizes sketch fidelity and scale.
type E6Result struct {
	Precision        float64
	Recall           float64
	MeanRelErrTop    float64 // mean relative error over true heavy hitters
	TrueHH           int
	DetectedHH       int
	CountersRemote   int
	SRAMCounterLimit int // counters that would fit in the whole SRAM budget
	FAAIssued        int64
	ServerCPUOps     int64
}

// RunE6 executes the telemetry experiment.
func RunE6(cfg E6Config) (*Table, E6Result) {
	tb, err := gem.New(gem.Options{Seed: 6, Hosts: 2, MemoryServers: 1})
	if err != nil {
		panic(err)
	}
	counters := cfg.Rows * cfg.Width
	ch, err := tb.Establish(0, gem.ChannelSpec{RegionSize: counters * 8})
	if err != nil {
		panic(err)
	}
	ss, err := gem.NewStateStore(ch, gem.StateStoreConfig{
		Counters:       counters,
		MaxOutstanding: 32,
		PendingSlots:   1 << 15,
	})
	if err != nil {
		panic(err)
	}
	tb.Dispatcher.Register(ch, ss)
	cs := sketch.NewCountSketch(cfg.Rows, cfg.Width)
	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		// One signed FAA per sketch row (two's-complement deltas ride
		// the unsigned wrapping add).
		key := gem.FlowOf(ctx.Pkt)
		kb := uint64(key.Hash())
		for _, pos := range cs.Positions(kb) {
			ss.Update(pos.Index, uint64(pos.Delta))
		}
		ctx.Emit(1, ctx.Frame)
	})

	// Zipf workload, one frame per draw.
	zipf := flowgen.NewZipf(6, cfg.Flows, cfg.ZipfSkew)
	truth := make(map[int]int64)
	for i := 0; i < cfg.Packets; i++ {
		f := zipf.Next()
		truth[f]++
		sp, dp := flowgen.FlowID(f)
		frame := wire.BuildDataFrame(tb.Hosts[0].MAC, tb.Hosts[1].MAC,
			tb.Hosts[0].IP, tb.Hosts[1].IP, sp, dp, 128, nil)
		tb.SendFrame(0, frame)
		if i%512 == 511 {
			tb.Run() // keep host-port FIFOs shallow
		}
	}
	tb.Run()

	// Operator side: read the counter array straight out of server DRAM
	// and run heavy-hitter estimation (§4).
	remote := make([]uint64, counters)
	for i := range remote {
		v, _ := tb.ReadRemoteCounter(ch, i*8)
		remote[i] = v
	}

	threshold := int64(math.Ceil(cfg.HHThresholdFrac * float64(cfg.Packets)))
	trueHH := map[int]bool{}
	//gem:deterministic — building a set; membership is order-independent
	for f, c := range truth {
		if c >= threshold {
			trueHH[f] = true
		}
	}
	var res E6Result
	res.TrueHH = len(trueHH)
	res.CountersRemote = counters
	res.SRAMCounterLimit = tb.Switch.SRAM.Total / 8
	res.FAAIssued = ss.Stats.FAAIssued
	res.ServerCPUOps = tb.ServerCPUOps()

	tp, fp := 0, 0
	var relErrSum float64
	var relErrN int
	// relErrSum is a float accumulation: iterate flows in sorted order so
	// the reported error is bit-identical across runs.
	flows := make([]int, 0, len(truth))
	//gem:deterministic — collecting keys for sorting is order-independent
	for f := range truth {
		flows = append(flows, f)
	}
	sort.Ints(flows)
	for _, f := range flows {
		kb := uint64(flowKeyOf(tb, f).Hash())
		est := cs.Estimate(remote, kb)
		if est >= threshold {
			if trueHH[f] {
				tp++
			} else {
				fp++
			}
		}
		if trueHH[f] && truth[f] > 0 {
			relErrSum += math.Abs(float64(est-truth[f])) / float64(truth[f])
			relErrN++
		}
	}
	res.DetectedHH = tp + fp
	if res.DetectedHH > 0 {
		res.Precision = float64(tp) / float64(res.DetectedHH)
	}
	if res.TrueHH > 0 {
		res.Recall = float64(tp) / float64(res.TrueHH)
	}
	if relErrN > 0 {
		res.MeanRelErrTop = relErrSum / float64(relErrN)
	}

	t := &Table{
		ID:      "E6",
		Title:   "§2.3 telemetry: remote Count Sketch heavy-hitter detection",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("sketch", fmt.Sprintf("%d×%d counters in remote DRAM", cfg.Rows, cfg.Width))
	t.AddRow("true heavy hitters", di(int64(res.TrueHH)))
	t.AddRow("detected", di(int64(res.DetectedHH)))
	t.AddRow("precision", pct(res.Precision))
	t.AddRow("recall", pct(res.Recall))
	t.AddRow("mean rel. error (HH)", pct(res.MeanRelErrTop))
	t.AddRow("FAA ops issued", di(res.FAAIssued))
	t.AddRow("server CPU ops", di(res.ServerCPUOps))
	t.AddNote("scale: the whole %d MB SRAM budget holds %.1fM counters; 100 GB of server",
		tb.Switch.SRAM.Total>>20, float64(res.SRAMCounterLimit)/1e6)
	t.AddNote("DRAM holds 12500M — the paper's 'counters can increase by 1000x'")
	return t, res
}

// flowKeyOf reconstructs the FlowKey the pipeline hashed for flow i.
func flowKeyOf(tb *gem.Testbed, i int) gem.FlowKey {
	sp, dp := flowgen.FlowID(i)
	return gem.FlowKey{
		SrcIP: tb.Hosts[0].IP, DstIP: tb.Hosts[1].IP,
		Protocol: 17, SrcPort: sp, DstPort: dp,
	}
}
