package harness

import (
	"fmt"

	"gem"
	"gem/internal/faults"
	"gem/internal/sim"
	"gem/internal/wire"
)

// E9 is the chaos experiment: the §7 open problems ("improve the robustness
// of the architecture by handling switch and server failures") exercised
// end-to-end. Four deterministic scenarios share one seed:
//
//   - E9a: a reliable state store rides out bursty loss, bit corruption,
//     jitter, and one server crash/restart — the counter is exactly correct
//     afterwards (strict PSN + atomic replay cache + retransmit window).
//   - E9b: failover to a standby when the primary dies, escalated by the
//     retransmitter's retry budget, then failback when the primary returns.
//     Retargeted in-flight requests make this at-least-once, not exact.
//   - E9c: all three primitives running through a scheduled link flap in
//     their explicit degraded modes (lookup → CPU slow path, state store →
//     local accumulation + reconcile, packet buffer → stop spilling).
//   - E9d: adaptive RTO vs the fixed-100µs baseline under 1 ms latency
//     spikes — fewer retransmissions for the same (exact) result.

// E9Config parameterizes the chaos experiment.
type E9Config struct {
	// Seed drives every random model in all four scenarios.
	Seed int64
	// Islands partitions the testbed over parallel event loops (see
	// gem.Options.Islands); 0/1 = single loop. Output is byte-identical
	// for every value.
	Islands int

	// E9a: chaos state store.
	AUpdates   int
	ACrashAt   sim.Time
	ARestartAt sim.Time

	// E9b: failover + failback.
	BUpdates   int
	BCrashAt   sim.Time
	BRestartAt sim.Time

	// E9c: degraded modes through a link flap.
	CFrames    int
	CFlapStart sim.Time
	CFlapEnd   sim.Time

	// E9d: RTO adaptation.
	DUpdates   int
	DSpikeRate float64
	DSpike     sim.Duration
}

// DefaultE9Config returns the full-experiment settings.
func DefaultE9Config() E9Config {
	return E9Config{
		Seed:     9,
		AUpdates: 500, ACrashAt: at(150), ARestartAt: at(400),
		BUpdates: 800, BCrashAt: at(200), BRestartAt: at(700),
		CFrames: 800, CFlapStart: at(300), CFlapEnd: at(500),
		DUpdates: 300, DSpikeRate: 0.2, DSpike: 1 * sim.Millisecond,
	}
}

func at(us int64) sim.Time { return sim.Time(us * int64(sim.Microsecond)) }

// E9Result is flat and comparable: the reproducibility invariant is that two
// runs with the same config produce equal results (==).
type E9Result struct {
	// E9a.
	AUpdates     int64
	ARemote      uint64
	APending     uint64
	AExact       bool
	ARetransmits int64
	ANaks        int64
	ARTTSamples  int64
	ADrops       int64 // frames lost to the Gilbert–Elliott models
	ACorrupted   int64
	ABadICRC     int64

	// E9b.
	BFailovers    int64
	BFailbacks    int64
	BStaleDropped int64
	BEscalations  int64
	BRetargeted   int64
	BOnPrimary    uint64
	BOnStandby    uint64
	BPending      uint64
	BNoLoss       bool // committed + pending covers every update

	// E9c.
	CRemote           uint64
	CPending          uint64
	CExact            bool
	CDegradedMisses   int64
	CDegradedUpdates  int64
	CDegradedBypassed int64
	CReconciles       int64
	CStored           int64
	CLoaded           int64

	// E9d.
	DFixedRetransmits    int64
	DAdaptiveRetransmits int64
	DFixedExact          bool
	DAdaptiveExact       bool
	DAdaptiveWins        bool

	// PendingEvents sums leftover event-queue entries across scenarios
	// after their engines report quiescence; it must be 0.
	PendingEvents int
}

func e9Dispatch(tb *gem.Testbed) {
	tb.SetPipeline(func(ctx *gem.Context) {
		if !tb.Dispatcher.Dispatch(ctx) {
			ctx.Drop()
		}
	})
}

// e9a: one reliable state store against one server, with composed link
// faults in both directions and a crash/restart cycle. Because the server
// restarts (DRAM and atomic replay cache intact) rather than being replaced,
// the retransmit window gives exactly-once counting.
func e9a(cfg E9Config, res *E9Result) {
	tb, err := gem.New(gem.Options{Seed: cfg.Seed, Islands: cfg.Islands, Hosts: 1, MemoryServers: 1})
	if err != nil {
		panic(err)
	}
	ch, err := tb.Establish(0, gem.ChannelSpec{
		RegionSize: 4096, Mode: gem.PSNStrict, AckReq: true,
	})
	if err != nil {
		panic(err)
	}
	rt, err := gem.NewRetransmitter(ch, 8)
	if err != nil {
		panic(err)
	}
	rt.EnableAdaptiveRTO()
	ss, err := gem.NewStateStore(ch, gem.StateStoreConfig{Counters: 8})
	if err != nil {
		panic(err)
	}
	ss.SetRetransmitter(rt)
	rt.Inner = ss
	tb.Dispatcher.Register(ch, rt)
	e9Dispatch(tb)

	// A hotter burst-entry rate than DefaultGilbertElliott: the invariant
	// "loss actually happened" must hold at every seed, and 0.002/frame over
	// a few hundred frames leaves even odds of a clean run.
	lossy := func() *faults.GilbertElliott {
		return &faults.GilbertElliott{PGoodToBad: 0.01, PBadToGood: 0.2, LossBad: 0.5}
	}
	req := &faults.LinkFaults{
		Loss: lossy(),
		// Several bits per event: single flips can land entirely in bytes the
		// ICRC masks (Ethernet header, IP TTL/TOS/checksum) and go undetected
		// on an unlucky seed, which is fine for safety but leaves the
		// verification path untested.
		Corrupt: &faults.Corruptor{Rate: 0.02, MaxBits: 4},
		Jitter:  &faults.Jitter{Max: 200 * sim.Nanosecond},
	}
	resp := &faults.LinkFaults{Loss: lossy()}
	tb.MemNICs[0].Port().Peer().SetFaultInjector(req) // switch → server
	tb.MemNICs[0].Port().SetFaultInjector(resp)       // server → switch
	// AExact pins remote+pending == updates across the outage, which needs a
	// memory-intact restart (process restart, not power cycle) — E13 owns
	// the wiped-DRAM story.
	schedA := faults.CrashRestart(tb.MemNICs[0], cfg.ACrashAt, cfg.ARestartAt)
	schedA.Loss = faults.CrashPreserve
	schedA.Install(tb.EngineOf(tb.MemNICs[0]))

	issued := 0
	tb.Engine.Ticker(1*sim.Microsecond, func() bool {
		ss.Update(issued%8, 1)
		issued++
		return issued < cfg.AUpdates
	})
	tb.Run()

	var remote uint64
	for i := 0; i < 8; i++ {
		v, _ := tb.ReadRemoteCounter(ch, ss.CounterOffset(i))
		remote += v
	}
	res.AUpdates = ss.Stats.Updates
	res.ARemote = remote
	res.APending = ss.PendingTotal()
	res.AExact = remote+ss.PendingTotal() == uint64(ss.Stats.Updates)
	res.ARetransmits = rt.Retransmits
	res.ANaks = rt.NaksSeen
	res.ARTTSamples = rt.RTTSamples
	res.ADrops = req.Loss.Drops + resp.Loss.Drops
	res.ACorrupted = req.Corrupt.Corrupted
	res.ABadICRC = tb.MemNICs[0].Stats.BadICRC
	res.PendingEvents += tb.PendingEvents()
}

// e9b: primary + standby. Probe channels (tolerant) are separate from the
// strict data channels — an untracked lost probe on a strict QP would wedge
// its PSN stream, which is exactly why real deployments split control and
// data QPs. The retransmitter's retry budget escalates to ForceFailover; the
// recovered primary is failed back to after answering probes.
func e9b(cfg E9Config, res *E9Result) {
	tb, err := gem.New(gem.Options{Seed: cfg.Seed, Islands: cfg.Islands, Hosts: 1, MemoryServers: 2})
	if err != nil {
		panic(err)
	}
	mkpair := func(mem int) (probe, data *gem.Channel) {
		probe, err := tb.Establish(mem, gem.ChannelSpec{
			RegionBase: 0x10000000, RegionSize: 64, Mode: gem.PSNTolerant,
		})
		if err != nil {
			panic(err)
		}
		data, err = tb.Establish(mem, gem.ChannelSpec{
			RegionBase: 0x20000000, RegionSize: 4096, Mode: gem.PSNStrict, AckReq: true,
		})
		if err != nil {
			panic(err)
		}
		return probe, data
	}
	probeP, dataP := mkpair(0)
	probeS, dataS := mkpair(1)
	dataOf := map[*gem.Channel]*gem.Channel{probeP: dataP, probeS: dataS}

	rt, err := gem.NewRetransmitter(dataP, 8)
	if err != nil {
		panic(err)
	}
	rt.EnableAdaptiveRTO()
	rt.MaxRetries = 4
	ss, err := gem.NewStateStore(dataP, gem.StateStoreConfig{Counters: 8})
	if err != nil {
		panic(err)
	}
	ss.SetRetransmitter(rt)
	rt.Inner = ss
	fo, err := gem.NewFailover([]*gem.Channel{probeP, probeS}, nil)
	if err != nil {
		panic(err)
	}
	fo.OnFailover = func(_, newProbe *gem.Channel) {
		data := dataOf[newProbe]
		rt.Retarget(data)
		ss.Rebind(data)
	}
	rt.OnExhausted = func() { fo.ForceFailover() }
	fo.RegisterWith(tb.Dispatcher)
	tb.Dispatcher.Register(dataP, rt)
	tb.Dispatcher.Register(dataS, rt)
	e9Dispatch(tb)
	fo.Start()

	// BNoLoss depends on the failed-back primary keeping its pre-crash
	// counters: preserve DRAM across the restart.
	schedB := faults.CrashRestart(tb.MemNICs[0], cfg.BCrashAt, cfg.BRestartAt)
	schedB.Loss = faults.CrashPreserve
	schedB.Install(tb.EngineOf(tb.MemNICs[0]))

	issued := 0
	tb.Engine.Ticker(1*sim.Microsecond, func() bool {
		ss.Update(issued%8, 1)
		issued++
		return issued < cfg.BUpdates
	})
	tb.RunFor(sim.Duration(cfg.BRestartAt) + 900*sim.Microsecond)
	fo.Stop()
	tb.Run()

	sum := func(ch *gem.Channel) uint64 {
		var s uint64
		for i := 0; i < 8; i++ {
			v, _ := tb.ReadRemoteCounter(ch, ss.CounterOffset(i))
			s += v
		}
		return s
	}
	res.BFailovers = fo.Failovers
	res.BFailbacks = fo.Failbacks
	res.BStaleDropped = fo.StaleDropped
	res.BEscalations = rt.Escalations
	res.BRetargeted = rt.Retargeted
	res.BOnPrimary = sum(dataP)
	res.BOnStandby = sum(dataS)
	res.BPending = ss.PendingTotal()
	// Retargeting is at-least-once: duplicates may inflate the committed
	// sum, but nothing may be lost.
	res.BNoLoss = res.BOnPrimary+res.BOnStandby+res.BPending >= uint64(cfg.BUpdates)
	res.PendingEvents += tb.PendingEvents()
}

// e9c: lookup table, state store, and packet buffer all running while the
// memory link flaps. A (control-plane) degradation schedule flips each
// primitive into its degraded mode just before the outage and restores it
// just after; the state store's counter stays exactly correct.
func e9c(cfg E9Config, res *E9Result) {
	tb, err := gem.New(gem.Options{Seed: cfg.Seed, Islands: cfg.Islands, Hosts: 2, MemoryServers: 1})
	if err != nil {
		panic(err)
	}
	ltCfg := gem.LookupConfig{Entries: 64, MaxPktBytes: 1536}
	chLT, err := tb.Establish(0, gem.ChannelSpec{
		RegionBase: 0x10000000, RegionSize: ltCfg.Entries * ltCfg.EntrySize(),
	})
	if err != nil {
		panic(err)
	}
	chSS, err := tb.Establish(0, gem.ChannelSpec{RegionBase: 0x20000000, RegionSize: 4096})
	if err != nil {
		panic(err)
	}
	chPB, err := tb.Establish(0, gem.ChannelSpec{RegionBase: 0x30000000, RegionSize: 1 << 16})
	if err != nil {
		panic(err)
	}
	lt, err := gem.NewLookupTable(chLT, ltCfg)
	if err != nil {
		panic(err)
	}
	action := gem.SetDSCPAction(46)
	region := tb.Region(chLT)
	for i := 0; i < ltCfg.Entries; i++ {
		if err := gem.PopulateLookupEntry(region, ltCfg, i, action); err != nil {
			panic(err)
		}
	}
	lt.DefaultOutPort = 1
	lt.SlowPath = func(wire.FlowKey) (gem.LookupAction, bool) { return action, true }
	ss, err := gem.NewStateStore(chSS, gem.StateStoreConfig{Counters: 8})
	if err != nil {
		panic(err)
	}
	// HighWaterBytes 1: every admitted packet detours, keeping the remote
	// ring busy so the flap actually has spill traffic to threaten.
	pb, err := gem.NewPacketBuffer([]*gem.Channel{chPB}, 1, gem.PacketBufferConfig{
		HighWaterBytes: 1,
	})
	if err != nil {
		panic(err)
	}
	tb.Dispatcher.Register(chLT, lt)
	tb.Dispatcher.Register(chSS, ss)
	pb.RegisterWith(tb.Dispatcher)
	tb.Switch.Hooks = pb
	tb.SetPipeline(func(ctx *gem.Context) {
		if tb.Dispatcher.Dispatch(ctx) {
			return
		}
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		ss.Update(int(ctx.Pkt.UDP.SrcPort)%8, 1)
		if ctx.Pkt.UDP.SrcPort%2 == 0 {
			lt.Lookup(ctx, ctx.Frame, ctx.Pkt)
		} else {
			pb.Admit(ctx, ctx.Frame)
		}
	})

	flap := faults.FlapWindow{Start: cfg.CFlapStart, End: cfg.CFlapEnd}
	down := &faults.LinkFaults{Flaps: []faults.FlapWindow{flap}}
	up := &faults.LinkFaults{Flaps: []faults.FlapWindow{flap}}
	tb.MemNICs[0].Port().Peer().SetFaultInjector(down)
	tb.MemNICs[0].Port().SetFaultInjector(up)

	// Degradation schedule: enter degraded mode one detection delay before
	// the flap, reconcile one after — the margin keeps the state store's
	// in-flight window clear of the outage, preserving exactness.
	margin := 10 * sim.Microsecond
	tb.Engine.ScheduleAt(cfg.CFlapStart.Add(-margin), func() {
		lt.SetDegraded(true)
		ss.SetDegraded(true)
		pb.SetDegraded(true)
	})
	tb.Engine.ScheduleAt(cfg.CFlapEnd.Add(margin), func() {
		lt.SetDegraded(false)
		ss.Reconcile()
		pb.SetDegraded(false)
	})

	sent := 0
	tb.Engine.Ticker(1*sim.Microsecond, func() bool {
		frame := tb.DataFrame(0, 1, 256, uint16(5000+sent%16), 9999)
		tb.SendFrame(0, frame)
		sent++
		return sent < cfg.CFrames
	})
	tb.Run()

	var remote uint64
	for i := 0; i < 8; i++ {
		v, _ := tb.ReadRemoteCounter(chSS, ss.CounterOffset(i))
		remote += v
	}
	res.CRemote = remote
	res.CPending = ss.PendingTotal()
	res.CExact = remote+ss.PendingTotal() == uint64(ss.Stats.Updates)
	res.CDegradedMisses = lt.Stats.DegradedMisses
	res.CDegradedUpdates = ss.Stats.DegradedUpdates
	res.CDegradedBypassed = pb.Stats.DegradedBypassed
	res.CReconciles = ss.Stats.Reconciles
	res.CStored = pb.Stats.Stored
	res.CLoaded = pb.Stats.Loaded
	res.PendingEvents += tb.PendingEvents()
}

// e9d: the same reliable counter under heavy-tailed latency (1 ms spikes on
// the request path), once with the fixed 100 µs timeout and once with the
// adaptive RTO. Both stay exact; the adaptive run retransmits less.
func e9d(cfg E9Config, adaptive bool) (retransmits int64, exact bool) {
	tb, err := gem.New(gem.Options{Seed: cfg.Seed, Islands: cfg.Islands, Hosts: 1, MemoryServers: 1})
	if err != nil {
		panic(err)
	}
	ch, err := tb.Establish(0, gem.ChannelSpec{
		RegionSize: 4096, Mode: gem.PSNStrict, AckReq: true,
	})
	if err != nil {
		panic(err)
	}
	// Window 1 isolates the retransmission *timer*: with a pipelined window
	// a delayed request shows up as a PSN gap and the NIC's NAK recovers it
	// at RTT timescale regardless of the RTO policy (both arms would measure
	// the NAK fast path and tie). One request in flight means no gap signal
	// ever exists and the timer alone decides when to resend.
	rt, err := gem.NewRetransmitter(ch, 1)
	if err != nil {
		panic(err)
	}
	if adaptive {
		rt.EnableAdaptiveRTO()
	}
	tb.Dispatcher.Register(ch, rt)
	e9Dispatch(tb)
	tb.MemNICs[0].Port().Peer().SetFaultInjector(&faults.LinkFaults{
		Jitter: &faults.Jitter{SpikeRate: cfg.DSpikeRate, Spike: cfg.DSpike},
	})
	issued := 0
	tb.Engine.Ticker(2*sim.Microsecond, func() bool {
		for issued < cfg.DUpdates && rt.CanSend() {
			rt.FetchAdd(0, 1)
			issued++
		}
		return issued < cfg.DUpdates || rt.Unacked() > 0
	})
	tb.Run()
	v, _ := tb.ReadRemoteCounter(ch, 0)
	return rt.Retransmits, v == uint64(cfg.DUpdates)
}

// RunE9 executes the chaos experiment.
func RunE9(cfg E9Config) (*Table, E9Result) {
	var res E9Result
	e9a(cfg, &res)
	e9b(cfg, &res)
	e9c(cfg, &res)
	res.DFixedRetransmits, res.DFixedExact = e9d(cfg, false)
	res.DAdaptiveRetransmits, res.DAdaptiveExact = e9d(cfg, true)
	res.DAdaptiveWins = res.DAdaptiveRetransmits < res.DFixedRetransmits

	t := &Table{
		ID:      "E9",
		Title:   "chaos: recovery and degraded modes under injected faults",
		Columns: []string{"scenario", "invariant", "value", "detail"},
	}
	t.AddRow("a: loss+corruption+crash", "counter exact",
		fmt.Sprintf("%v", res.AExact),
		fmt.Sprintf("%d updates, %d remote, %d rexmit, %d naks, %d dropped, %d corrupted",
			res.AUpdates, res.ARemote, res.ARetransmits, res.ANaks, res.ADrops, res.ACorrupted))
	t.AddRow("b: failover+failback", "no update lost",
		fmt.Sprintf("%v", res.BNoLoss),
		fmt.Sprintf("%d failovers, %d failbacks, %d retargeted, %d stale dropped, %d escalations",
			res.BFailovers, res.BFailbacks, res.BRetargeted, res.BStaleDropped, res.BEscalations))
	t.AddRow("c: degraded through flap", "counter exact",
		fmt.Sprintf("%v", res.CExact),
		fmt.Sprintf("%d slow-path misses, %d degraded updates, %d degraded bypasses, %d reconciles",
			res.CDegradedMisses, res.CDegradedUpdates, res.CDegradedBypassed, res.CReconciles))
	t.AddRow("d: RTO under 1ms spikes", "adaptive < fixed",
		fmt.Sprintf("%v", res.DAdaptiveWins),
		fmt.Sprintf("fixed-100µs %d rexmit (exact=%v), adaptive %d rexmit (exact=%v)",
			res.DFixedRetransmits, res.DFixedExact, res.DAdaptiveRetransmits, res.DAdaptiveExact))
	t.AddNote("every fault model draws from the engine's seeded RNG: same seed, same run —")
	t.AddNote("recovery is adaptive (RTT-tracking RTO, retry budget) and degradation explicit")
	return t, res
}
