package harness

import (
	"fmt"

	"gem"
	"gem/internal/flowgen"
	"gem/internal/netsim"
	"gem/internal/rnic"
	"gem/internal/sim"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// ---- E8a: Fetch-and-Add batching (§7: "combine multiple counter updates
// into a single operation, at the cost of some delay in updates") ----

// E8aConfig parameterizes the batching ablation.
type E8aConfig struct {
	Batches     []uint64
	FrameLen    int
	OfferedGbps float64
	Window      sim.Duration
}

// DefaultE8aConfig returns the full-experiment settings.
func DefaultE8aConfig() E8aConfig {
	return E8aConfig{
		Batches:     []uint64{1, 8, 32, 128, 512},
		FrameLen:    128,
		OfferedGbps: 30,
		Window:      2 * sim.Millisecond,
	}
}

// E8aPoint is one batching factor.
type E8aPoint struct {
	Batch         uint64
	FAAIssued     int64
	LinkGbps      float64
	MeanStaleness float64 // average counts parked on the switch
	Exact         bool
}

// RunE8a executes the batching ablation.
func RunE8a(cfg E8aConfig) (*Table, []E8aPoint) {
	var points []E8aPoint
	t := &Table{
		ID:      "E8a",
		Title:   "§7 ablation: combining counter updates (batch factor)",
		Columns: []string{"batch", "FAA issued", "FAA link bw (Gbps)", "mean staleness (counts)", "exact"},
	}
	for _, batch := range cfg.Batches {
		tb, err := gem.New(gem.Options{Seed: 8, Hosts: 2, MemoryServers: 1})
		if err != nil {
			panic(err)
		}
		ch, err := tb.Establish(0, gem.ChannelSpec{RegionSize: 1 << 16})
		if err != nil {
			panic(err)
		}
		ss, err := gem.NewStateStore(ch, gem.StateStoreConfig{Counters: 64, Batch: batch})
		if err != nil {
			panic(err)
		}
		tb.Dispatcher.Register(ch, ss)
		tb.SetPipeline(func(ctx *gem.Context) {
			if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
				ctx.Drop()
				return
			}
			ss.UpdateFlow(gem.FlowOf(ctx.Pkt))
			ctx.Emit(1, ctx.Frame)
		})
		gen := &flowgen.CBR{
			Src: tb.Hosts[0], Dst: tb.Hosts[1], Port: tb.HostPort(0),
			FrameLen: cfg.FrameLen, RateBps: cfg.OfferedGbps * 1e9, FlowCount: 2,
		}
		gen.Start(tb.Engine, 0)
		var staleSum float64
		samples := 0
		tb.Engine.Ticker(20*sim.Microsecond, func() bool {
			staleSum += float64(ss.PendingTotal())
			samples++
			return tb.Now() < gem.Time(cfg.Window)
		})
		tb.RunFor(cfg.Window)
		gen.Stop()
		memPort := tb.Switch.Port(tb.SwitchPortOfMem(0))
		linkBytes := memPort.TxMeter.Bytes + memPort.RxMeter.Bytes
		tb.Run()

		var remote uint64
		for i := 0; i < 64; i++ {
			v, _ := tb.ReadRemoteCounter(ch, i*8)
			remote += v
		}
		p := E8aPoint{
			Batch:     batch,
			FAAIssued: ss.Stats.FAAIssued,
			LinkGbps:  float64(linkBytes) * 8 / cfg.Window.Seconds() / 1e9,
			Exact:     remote+ss.PendingTotal() == uint64(ss.Stats.Updates) && ss.Stats.DroppedUpdates == 0,
		}
		if samples > 0 {
			p.MeanStaleness = staleSum / float64(samples)
		}
		points = append(points, p)
		t.AddRow(fmt.Sprintf("%d", batch), di(p.FAAIssued), f2(p.LinkGbps),
			f1(p.MeanStaleness), fmt.Sprintf("%v", p.Exact))
	}
	t.AddNote("higher batch = fewer ops and less bandwidth, at the cost of update delay")
	return t, points
}

// ---- E8b: lookup deposit vs recirculation (§7: "recirculate the original
// packet locally and wait for the pulled entry ... can save the bandwidth
// overhead to the remote memory") ----

// E8bConfig parameterizes the lookup-variant ablation.
type E8bConfig struct {
	Sizes   []int
	Packets int
}

// DefaultE8bConfig returns the full-experiment settings.
func DefaultE8bConfig() E8bConfig {
	return E8bConfig{Sizes: []int{64, 512, 1500}, Packets: 400}
}

// E8bPoint compares the two designs at one packet size.
type E8bPoint struct {
	Size              int
	DepositLinkBytes  float64 // memory-link bytes per lookup
	RecircLinkBytes   float64
	DepositLatencyUs  float64
	RecircLatencyUs   float64
	RecircPassesPerOp float64
}

func e8bRun(size, packets int, mode gem.LookupConfig) (bytesPerOp, medianUs, passesPerOp float64) {
	tb, err := gem.New(gem.Options{
		Seed: 8, Hosts: 2, MemoryServers: 1,
		NIC: rnic.Config{MTU: 4096},
	})
	if err != nil {
		panic(err)
	}
	cfg := mode
	cfg.Entries = 512
	cfg.MaxPktBytes = 1536
	ch, err := tb.Establish(0, gem.ChannelSpec{RegionSize: cfg.Entries * cfg.EntrySize()})
	if err != nil {
		panic(err)
	}
	lt, err := gem.NewLookupTable(ch, cfg)
	if err != nil {
		panic(err)
	}
	lt.DefaultOutPort = 1
	region := tb.Region(ch)
	for i := 0; i < cfg.Entries; i++ {
		if err := gem.PopulateLookupEntry(region, cfg, i, gem.SetDSCPAction(40)); err != nil {
			panic(err)
		}
	}
	tb.Dispatcher.Register(ch, lt)
	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		lt.Lookup(ctx, ctx.Frame, ctx.Pkt)
	})
	var lat []sim.Duration
	var sentAt sim.Time
	i := 0
	var send func()
	tb.Hosts[1].Handler = func(_ *netsim.Port, frame []byte) {
		lat = append(lat, tb.Now().Sub(sentAt))
		i++
		if i < packets {
			send()
		}
	}
	send = func() {
		sentAt = tb.Now()
		sp, dp := flowgen.FlowID(i)
		tb.SendFrame(0, wire.BuildDataFrame(tb.Hosts[0].MAC, tb.Hosts[1].MAC,
			tb.Hosts[0].IP, tb.Hosts[1].IP, sp, dp, size, nil))
	}
	send()
	tb.Run()
	memPort := tb.Switch.Port(tb.SwitchPortOfMem(0))
	total := float64(memPort.TxMeter.Bytes + memPort.RxMeter.Bytes)
	ops := float64(lt.Stats.RemoteLookups)
	if ops == 0 {
		ops = 1
	}
	mid := len(lat) / 2
	sortDurations(lat)
	var med float64
	if len(lat) > 0 {
		med = lat[mid].Seconds() * 1e6
	}
	return total / ops, med, float64(lt.Stats.RecircPasses) / ops
}

func sortDurations(d []sim.Duration) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}

// RunE8b executes the deposit-vs-recirculation ablation.
func RunE8b(cfg E8bConfig) (*Table, []E8bPoint) {
	var points []E8bPoint
	t := &Table{
		ID:    "E8b",
		Title: "§7 ablation: lookup miss handling — deposit vs local recirculation",
		Columns: []string{
			"pkt size (B)", "deposit B/op", "recirc B/op",
			"deposit p50 (µs)", "recirc p50 (µs)", "recirc passes/op",
		},
	}
	for _, size := range cfg.Sizes {
		var p E8bPoint
		p.Size = size
		p.DepositLinkBytes, p.DepositLatencyUs, _ = e8bRun(size, cfg.Packets, gem.LookupConfig{Mode: gem.LookupDeposit})
		p.RecircLinkBytes, p.RecircLatencyUs, p.RecircPassesPerOp =
			e8bRun(size, cfg.Packets, gem.LookupConfig{Mode: gem.LookupRecirculate, MaxRecircPasses: 32})
		points = append(points, p)
		t.AddRow(fmt.Sprintf("%d", size), f1(p.DepositLinkBytes), f1(p.RecircLinkBytes),
			f2(p.DepositLatencyUs), f2(p.RecircLatencyUs), f2(p.RecircPassesPerOp))
	}
	t.AddNote("recirculation trades remote-link bytes for pipeline passes; the win grows")
	t.AddNote("with packet size (the deposit must carry the whole packet both ways)")
	return t, points
}

// ---- E8c: reliability under memory-link loss (§7: "implement parsing and
// handling of RDMA ACKs/NACKs to make certain remote memory reliable") ----

// E8cConfig parameterizes the reliability ablation.
type E8cConfig struct {
	LossRates []float64
	Updates   int
}

// DefaultE8cConfig returns the full-experiment settings.
func DefaultE8cConfig() E8cConfig {
	return E8cConfig{LossRates: []float64{0, 0.001, 0.01, 0.05}, Updates: 2000}
}

// E8cPoint compares counter accuracy with and without the extension.
type E8cPoint struct {
	LossRate        float64
	UnreliableError float64 // relative counter error, fire-and-forget
	ReliableError   float64 // with ACK/NAK handling + retransmit
	Retransmits     int64
}

func e8cUnreliable(loss float64, updates int) float64 {
	tb, err := gem.New(gem.Options{Seed: 8, Hosts: 1, MemoryServers: 1, MemLinkLossRate: loss})
	if err != nil {
		panic(err)
	}
	ch, err := tb.Establish(0, gem.ChannelSpec{RegionSize: 4096})
	if err != nil {
		panic(err)
	}
	tb.SetPipeline(func(ctx *gem.Context) { ctx.Drop() })
	// Fire-and-forget, paced below the NIC's atomic rate so that — absent
	// loss — every request can execute (the prototype's operating point).
	issued := 0
	tb.Engine.Ticker(1*sim.Microsecond, func() bool {
		ch.FetchAdd(0, 1)
		issued++
		return issued < updates
	})
	tb.Run()
	v, _ := tb.ReadRemoteCounter(ch, 0)
	return 1 - float64(v)/float64(updates)
}

func e8cReliable(loss float64, updates int) (float64, int64) {
	tb, err := gem.New(gem.Options{Seed: 8, Hosts: 1, MemoryServers: 1, MemLinkLossRate: loss})
	if err != nil {
		panic(err)
	}
	ch, err := tb.Establish(0, gem.ChannelSpec{
		RegionSize: 4096, Mode: gem.PSNStrict, AckReq: true,
	})
	if err != nil {
		panic(err)
	}
	rt, err := gem.NewRetransmitter(ch, 8)
	if err != nil {
		panic(err)
	}
	rt.Timeout = 20 * sim.Microsecond
	tb.Dispatcher.Register(ch, rt)
	tb.SetPipeline(func(ctx *gem.Context) {
		if !tb.Dispatcher.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	issued := 0
	tb.Engine.Ticker(500*sim.Nanosecond, func() bool {
		for issued < updates && rt.CanSend() {
			rt.FetchAdd(0, 1)
			issued++
		}
		return issued < updates || rt.Unacked() > 0
	})
	tb.Run()
	v, _ := tb.ReadRemoteCounter(ch, 0)
	return 1 - float64(v)/float64(updates), rt.Retransmits
}

// RunE8c executes the reliability ablation.
func RunE8c(cfg E8cConfig) (*Table, []E8cPoint) {
	var points []E8cPoint
	t := &Table{
		ID:      "E8c",
		Title:   "§7 ablation: counter accuracy under memory-link loss",
		Columns: []string{"loss rate", "fire-and-forget error", "with ACK/NAK handling", "retransmits"},
	}
	for _, loss := range cfg.LossRates {
		var p E8cPoint
		p.LossRate = loss
		p.UnreliableError = e8cUnreliable(loss, cfg.Updates)
		p.ReliableError, p.Retransmits = e8cReliable(loss, cfg.Updates)
		points = append(points, p)
		t.AddRow(pct(loss), pct(p.UnreliableError), pct(p.ReliableError), di(p.Retransmits))
	}
	t.AddNote("fire-and-forget loses ≈ the loss rate in counts; the §7 extension stays exact")
	return t, points
}

// ---- E8d: RDMA bandwidth cap (§7: "use a bandwidth cap to prevent RDMA
// packets taking too much bandwidth") ----

// E8dConfig parameterizes the bandwidth-cap ablation.
type E8dConfig struct {
	CapsGbps    []float64 // 0 = uncapped
	FrameLen    int
	OfferedGbps float64
	Window      sim.Duration
}

// DefaultE8dConfig returns the full-experiment settings.
func DefaultE8dConfig() E8dConfig {
	return E8dConfig{
		CapsGbps:    []float64{0, 2, 1, 0.5},
		FrameLen:    128,
		OfferedGbps: 30,
		Window:      2 * sim.Millisecond,
	}
}

// E8dPoint is one cap setting.
type E8dPoint struct {
	CapGbps   float64
	LinkGbps  float64 // measured FAA traffic on the memory link
	FAAIssued int64
	CapDrops  int64
	Exact     bool // remote + pending still accounts for every update
}

// RunE8d executes the bandwidth-cap ablation: the state store under a
// token-bucket cap coalesces harder instead of losing counts.
func RunE8d(cfg E8dConfig) (*Table, []E8dPoint) {
	var points []E8dPoint
	t := &Table{
		ID:      "E8d",
		Title:   "§7 ablation: bandwidth cap on the RDMA channel",
		Columns: []string{"cap (Gbps)", "FAA link bw (Gbps)", "FAA issued", "cap refusals", "exact"},
	}
	for _, cap := range cfg.CapsGbps {
		tb, err := gem.New(gem.Options{Seed: 8, Hosts: 2, MemoryServers: 1})
		if err != nil {
			panic(err)
		}
		ch, err := tb.Establish(0, gem.ChannelSpec{RegionSize: 1 << 16})
		if err != nil {
			panic(err)
		}
		if cap > 0 {
			ch.SetBandwidthCap(cap*1e9/2, 16<<10) // half the budget for requests, half for responses
		}
		ss, err := gem.NewStateStore(ch, gem.StateStoreConfig{Counters: 64})
		if err != nil {
			panic(err)
		}
		tb.Dispatcher.Register(ch, ss)
		tb.SetPipeline(func(ctx *gem.Context) {
			if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
				ctx.Drop()
				return
			}
			ss.UpdateFlow(gem.FlowOf(ctx.Pkt))
			ctx.Emit(1, ctx.Frame)
		})
		gen := &flowgen.CBR{
			Src: tb.Hosts[0], Dst: tb.Hosts[1], Port: tb.HostPort(0),
			FrameLen: cfg.FrameLen, RateBps: cfg.OfferedGbps * 1e9, FlowCount: 2,
		}
		gen.Start(tb.Engine, 0)
		tb.RunFor(cfg.Window)
		gen.Stop()
		memPort := tb.Switch.Port(tb.SwitchPortOfMem(0))
		linkBytes := memPort.TxMeter.Bytes + memPort.RxMeter.Bytes
		tb.Run()

		var remote uint64
		for i := 0; i < 64; i++ {
			v, _ := tb.ReadRemoteCounter(ch, i*8)
			remote += v
		}
		p := E8dPoint{
			CapGbps:   cap,
			LinkGbps:  float64(linkBytes) * 8 / cfg.Window.Seconds() / 1e9,
			FAAIssued: ss.Stats.FAAIssued,
			CapDrops:  ch.CapDrops,
			Exact:     remote+ss.PendingTotal() == uint64(ss.Stats.Updates) && ss.Stats.DroppedUpdates == 0,
		}
		points = append(points, p)
		capLabel := "uncapped"
		if cap > 0 {
			capLabel = f1(cap)
		}
		t.AddRow(capLabel, f2(p.LinkGbps), di(p.FAAIssued), di(p.CapDrops), fmt.Sprintf("%v", p.Exact))
	}
	t.AddNote("the cap bounds FAA traffic; the state store coalesces harder under it and")
	t.AddNote("stays exact — counts defer on the switch instead of being lost")
	return t, points
}

// ---- E8e: RDMA prioritization (§7: "one may prioritize these RDMA
// packets so that they are less likely to be dropped") ----

// E8eConfig parameterizes the prioritization ablation: FAA traffic shares
// the memory link with near-line-rate background traffic to the same
// server.
type E8eConfig struct {
	BackgroundGbps float64
	FrameLen       int
	Window         sim.Duration
}

// DefaultE8eConfig returns the full-experiment settings.
func DefaultE8eConfig() E8eConfig {
	return E8eConfig{BackgroundGbps: 39.5, FrameLen: 1500, Window: 15 * sim.Millisecond}
}

// E8ePoint compares the two queueing disciplines.
type E8ePoint struct {
	Priority       bool
	FAAIssued      int64
	AcksSeen       int64
	PendingEnd     uint64
	Exact          bool
	BackgroundGbps float64
}

func e8eRun(cfg E8eConfig, priority bool) E8ePoint {
	tb, err := gem.New(gem.Options{
		Seed: 8, Hosts: 1, MemoryServers: 1,
		Switch: switchCfg(priority),
	})
	if err != nil {
		panic(err)
	}
	ch, err := tb.Establish(0, gem.ChannelSpec{RegionSize: 1 << 16})
	if err != nil {
		panic(err)
	}
	ss, err := gem.NewStateStore(ch, gem.StateStoreConfig{Counters: 64})
	if err != nil {
		panic(err)
	}
	tb.Dispatcher.Register(ch, ss)
	memPort := tb.SwitchPortOfMem(0)
	tb.SetPipeline(func(ctx *gem.Context) {
		if tb.Dispatcher.Dispatch(ctx) {
			return
		}
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		// Background traffic rides to the memory server's host; the
		// switch counts it in the remote state store on the way — the
		// FAAs then share the congested memory link with the traffic
		// they measure.
		ss.UpdateFlow(gem.FlowOf(ctx.Pkt))
		ctx.Emit(memPort, ctx.Frame)
	})
	gen := &flowgen.CBR{
		Src: tb.Hosts[0], Dst: tb.MemHosts[0], Port: tb.HostPort(0),
		FrameLen: cfg.FrameLen, RateBps: cfg.BackgroundGbps * 1e9, FlowCount: 2,
	}
	gen.Start(tb.Engine, 0)
	tb.RunFor(cfg.Window)
	gen.Stop()
	delivered := tb.MemHosts[0].Received
	bgGbps := float64(delivered) * float64(cfg.FrameLen) * 8 / cfg.Window.Seconds() / 1e9
	tb.Run()

	var remote uint64
	for i := 0; i < 64; i++ {
		v, _ := tb.ReadRemoteCounter(ch, i*8)
		remote += v
	}
	return E8ePoint{
		Priority:   priority,
		FAAIssued:  ss.Stats.FAAIssued,
		AcksSeen:   ss.Stats.AcksSeen,
		PendingEnd: ss.PendingTotal(),
		Exact: remote+ss.PendingTotal()+uint64(ss.Stats.TimedOut) >=
			uint64(ss.Stats.Updates)-uint64(ss.Stats.DroppedUpdates),
		BackgroundGbps: bgGbps,
	}
}

func switchCfg(priority bool) (c switchsim.Config) {
	c.RDMAPriority = priority
	return c
}

// RunE8e executes the prioritization ablation.
func RunE8e(cfg E8eConfig) (*Table, []E8ePoint) {
	var points []E8ePoint
	t := &Table{
		ID:    "E8e",
		Title: "§7 ablation: strict priority for RDMA on a congested memory link",
		Columns: []string{
			"discipline", "FAA issued", "atomic acks", "pending at end", "background (Gbps)",
		},
	}
	for _, prio := range []bool{false, true} {
		p := e8eRun(cfg, prio)
		points = append(points, p)
		name := "FIFO (shared queue)"
		if prio {
			name = "RDMA strict priority"
		}
		t.AddRow(name, di(p.FAAIssued), di(p.AcksSeen), fmt.Sprintf("%d", p.PendingEnd), f1(p.BackgroundGbps))
	}
	t.AddNote("with FIFO queuing, FAA requests drown behind the traffic they measure;")
	t.AddNote("prioritizing RDMA keeps the telemetry channel live at ~the NIC atomic rate")
	return t, points
}

// ---- E8f: server failure handling (§7: "improve the robustness of the
// architecture by handling switch and server failures") ----

// E8fConfig parameterizes the failover experiment.
type E8fConfig struct {
	UpdateRatePerSec  float64
	HeartbeatInterval sim.Duration
	CrashAt           sim.Duration
	Window            sim.Duration
}

// DefaultE8fConfig returns the full-experiment settings.
func DefaultE8fConfig() E8fConfig {
	return E8fConfig{
		UpdateRatePerSec:  200_000,
		HeartbeatInterval: 100 * sim.Microsecond,
		CrashAt:           4 * sim.Millisecond,
		Window:            10 * sim.Millisecond,
	}
}

// E8fResult summarizes a crash-and-failover run.
type E8fResult struct {
	DetectionUs    float64 // crash → switchover
	Updates        uint64  // total counted events
	OnPrimary      uint64  // committed to the crashed server (lost with it)
	OnStandby      uint64  // committed to the standby after failover
	PendingAtEnd   uint64
	LostInFlight   uint64 // unaccounted: FAAs in flight at the crash
	HeartbeatsSent int64
}

// RunE8f executes the failover experiment.
func RunE8f(cfg E8fConfig) (*Table, E8fResult) {
	tb, err := gem.New(gem.Options{Seed: 8, Hosts: 1, MemoryServers: 2})
	if err != nil {
		panic(err)
	}
	primary, err := tb.Establish(0, gem.ChannelSpec{RegionSize: 1 << 16})
	if err != nil {
		panic(err)
	}
	standby, err := tb.Establish(1, gem.ChannelSpec{RegionSize: 1 << 16})
	if err != nil {
		panic(err)
	}
	ss, err := gem.NewStateStore(primary, gem.StateStoreConfig{
		Counters: 64, OutstandingTimeout: 300 * sim.Microsecond,
	})
	if err != nil {
		panic(err)
	}
	fo, err := gem.NewFailover([]*gem.Channel{primary, standby}, ss)
	if err != nil {
		panic(err)
	}
	fo.HeartbeatInterval = cfg.HeartbeatInterval
	fo.OnFailover = func(_, newCh *gem.Channel) { ss.Rebind(newCh) }
	fo.RegisterWith(tb.Dispatcher)
	tb.SetPipeline(func(ctx *gem.Context) {
		if !tb.Dispatcher.Dispatch(ctx) {
			ctx.Drop()
		}
	})
	fo.Start()

	interval := sim.Duration(1e9 / cfg.UpdateRatePerSec)
	var updates uint64
	tb.Engine.Ticker(interval, func() bool {
		ss.Update(5, 1)
		updates++
		return tb.Now() < gem.Time(cfg.Window)
	})
	tb.Engine.Schedule(cfg.CrashAt, func() { tb.MemNICs[0].Fail() })
	tb.RunFor(cfg.Window + 2*sim.Millisecond)

	var res E8fResult
	res.Updates = updates
	res.OnPrimary, _ = tb.MemNICs[0].ReadCounter(primary.RKey, primary.Base+5*8)
	res.OnStandby, _ = tb.MemNICs[1].ReadCounter(standby.RKey, standby.Base+5*8)
	res.PendingAtEnd = ss.PendingTotal()
	accounted := res.OnPrimary + res.OnStandby + res.PendingAtEnd
	if accounted < res.Updates {
		res.LostInFlight = res.Updates - accounted
	}
	if fo.Failovers > 0 {
		// Detection relative to the actual crash instant.
		res.DetectionUs = fo.LastDetection.Seconds() * 1e6
	}
	res.HeartbeatsSent = fo.HeartbeatsSent

	t := &Table{
		ID:      "E8f",
		Title:   "§7 robustness: memory-server crash and data-plane failover",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("heartbeat interval", fmt.Sprintf("%v", cfg.HeartbeatInterval))
	t.AddRow("failure detection + switchover", fmt.Sprintf("%.0f µs", res.DetectionUs))
	t.AddRow("updates counted", fmt.Sprintf("%d", res.Updates))
	t.AddRow("committed to crashed primary", fmt.Sprintf("%d (lost with the server)", res.OnPrimary))
	t.AddRow("committed to standby", fmt.Sprintf("%d", res.OnStandby))
	t.AddRow("pending on switch at end", fmt.Sprintf("%d", res.PendingAtEnd))
	t.AddRow("lost in flight at crash", fmt.Sprintf("%d", res.LostInFlight))
	t.AddNote("remote memory is a performance tier: state on the dead server is gone, but")
	t.AddNote("the primitive redirects within a few heartbeats and loses only in-flight ops")
	return t, res
}
