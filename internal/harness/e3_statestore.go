package harness

import (
	"fmt"

	"gem"
	"gem/internal/flowgen"
	"gem/internal/sim"
)

// E3Config parameterizes the Figure 3b reproduction: link bandwidth
// consumed by the state-store primitive's Fetch-and-Add traffic while
// counting packets of a line-rate flow, across packet sizes. The paper
// measures ≈2.1 Gbps on the switch↔RNIC link, a 100% accurate counter, and
// no end-to-end throughput degradation.
type E3Config struct {
	// Sizes are the traffic frame sizes (paper: 64–1024 B).
	Sizes []int
	// OfferedGbps is the generator rate (paper: line rate).
	OfferedGbps float64
	// Window is the measurement window per size.
	Window sim.Duration
	// Flows spreads the traffic over a few flows (raw_ethernet_bw uses
	// one; a handful exercises the accumulator paths).
	Flows int
}

// DefaultE3Config returns the full-experiment settings.
func DefaultE3Config() E3Config {
	return E3Config{
		Sizes:       []int{64, 128, 256, 512, 1024},
		OfferedGbps: 38,
		Window:      4 * sim.Millisecond,
		Flows:       4,
	}
}

// E3Point is one x-position of Figure 3b.
type E3Point struct {
	Size         int
	FAALinkGbps  float64 // switch↔RNIC bandwidth used by FAA req+resp
	E2EGbps      float64 // delivered end-to-end goodput with the primitive
	BaselineGbps float64 // delivered goodput without the primitive
	CounterOK    bool    // remote + pending == ground truth
	Updates      int64
	FAAIssued    int64
}

// e3Run measures one packet size, with or without the primitive.
func e3Run(cfg E3Config, size int, withPrimitive bool) E3Point {
	memServers := 0
	if withPrimitive {
		memServers = 1
	}
	tb, err := gem.New(gem.Options{Seed: 3, Hosts: 2, MemoryServers: memServers})
	if err != nil {
		panic(err)
	}
	var ss *gem.StateStore
	if withPrimitive {
		ch, err := tb.Establish(0, gem.ChannelSpec{RegionSize: 1 << 20})
		if err != nil {
			panic(err)
		}
		ss, err = gem.NewStateStore(ch, gem.StateStoreConfig{Counters: 4096})
		if err != nil {
			panic(err)
		}
		tb.Dispatcher.Register(ch, ss)
	}
	tb.SetPipeline(func(ctx *gem.Context) {
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		if ss != nil {
			ss.UpdateFlow(gem.FlowOf(ctx.Pkt))
		}
		switch ctx.Pkt.Eth.Dst {
		case tb.Hosts[1].MAC:
			ctx.Emit(1, ctx.Frame)
		case tb.Hosts[0].MAC:
			ctx.Emit(0, ctx.Frame)
		default:
			ctx.Drop()
		}
	})
	gen := &flowgen.CBR{
		Src: tb.Hosts[0], Dst: tb.Hosts[1], Port: tb.HostPort(0),
		FrameLen: size, RateBps: cfg.OfferedGbps * 1e9, FlowCount: cfg.Flows,
	}
	gen.Start(tb.Engine, 0)
	tb.RunFor(cfg.Window)
	gen.Stop()

	var p E3Point
	p.Size = size
	// Snapshot the memory-link meters over the window, before the drain.
	if withPrimitive {
		memPort := tb.Switch.Port(tb.SwitchPortOfMem(0))
		faaBytes := memPort.TxMeter.Bytes + memPort.RxMeter.Bytes
		p.FAALinkGbps = float64(faaBytes) * 8 / cfg.Window.Seconds() / 1e9
	}
	delivered := tb.Hosts[1].Received
	p.E2EGbps = float64(delivered) * float64(size) * 8 / cfg.Window.Seconds() / 1e9

	tb.Run() // drain
	if ss != nil {
		var remote uint64
		for i := 0; i < 4096; i++ {
			v, err := tb.ReadRemoteCounter(ss.Channel(), ss.CounterOffset(i))
			if err == nil {
				remote += v
			}
		}
		truth := uint64(ss.Stats.Updates)
		p.CounterOK = remote+ss.PendingTotal() == truth && ss.Stats.DroppedUpdates == 0
		p.Updates = ss.Stats.Updates
		p.FAAIssued = ss.Stats.FAAIssued
		if tb.ServerCPUOps() != 0 {
			panic("E3: memory server CPU touched")
		}
	}
	return p
}

// RunE3 executes the Figure 3b reproduction.
func RunE3(cfg E3Config) (*Table, []E3Point) {
	var points []E3Point
	t := &Table{
		ID:    "E3",
		Title: "Figure 3b: state-store primitive bandwidth overhead and accuracy",
		Columns: []string{
			"packet size (B)", "FAA link bw (Gbps)", "e2e goodput (Gbps)",
			"baseline goodput", "counter exact",
		},
	}
	for _, size := range cfg.Sizes {
		with := e3Run(cfg, size, true)
		base := e3Run(cfg, size, false)
		with.BaselineGbps = base.E2EGbps
		points = append(points, with)
		t.AddRow(fmt.Sprintf("%d", size), f2(with.FAALinkGbps), f1(with.E2EGbps),
			f1(with.BaselineGbps), fmt.Sprintf("%v", with.CounterOK))
	}
	t.AddNote("paper: FAA traffic consumes ≈2.1 Gbps on average, counter 100%% accurate,")
	t.AddNote("no end-to-end throughput degradation; the overhead is capped by the RNIC's")
	t.AddNote("Fetch-and-Add rate, so the curve is flat in packet size")
	return t, points
}
