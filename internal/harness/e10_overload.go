package harness

import (
	"fmt"

	"gem"
	"gem/internal/sim"
	"gem/internal/wire"
)

// E10 is the overload experiment: the robustness tentpole exercised past
// capacity. Two scenario families share one seed:
//
//   - Incast: 4 senders at 1×/2×/4× the receiver's line rate through a
//     packet buffer striped over two memory servers, with per-channel credit
//     windows, per-server occupancy tiers gating new spills, and priority
//     shedding (one sender marks DSCP EF). High-priority traffic must be
//     delivered losslessly at 1× and 2× while low-priority traffic is shed
//     — counted, never silently.
//   - Lookup-miss + counter storm: every packet both misses the lookup
//     table (deposit mode) and updates the state store, at rates below and
//     above the RNIC's atomic ceiling. Credit windows bound in-flight work;
//     the state store's admitted counts stay exact for high priority.
//
// An unbounded ablation (UnlimitedWindow) reruns the 2× points with credit
// refusal disabled, demonstrating the unbounded-growth baseline the windows
// prevent.

// E10Config parameterizes the overload experiment.
type E10Config struct {
	// Seed drives every random model in all scenarios.
	Seed int64
	// Islands partitions the testbed over parallel event loops (see
	// gem.Options.Islands); 0/1 = single loop. Output is byte-identical
	// for every value.
	Islands int

	// Incast: per-sender frame count is SendWindow / interval where the
	// base interval corresponds to 10 Gbps per sender (4 senders, 40G line).
	SendWindow sim.Duration
	FrameLen   int

	// Storm: packets per run and the two packet intervals (below / above
	// the RNIC atomic ceiling of ~1.29 M ops/s).
	StormPackets      int
	StormSlowInterval sim.Duration
	StormFastInterval sim.Duration
}

// DefaultE10Config returns the full-experiment settings.
func DefaultE10Config() E10Config {
	return E10Config{
		Seed:              10,
		SendWindow:        400 * sim.Microsecond,
		FrameLen:          1000,
		StormPackets:      1200,
		StormSlowInterval: 1600 * sim.Nanosecond,
		StormFastInterval: 500 * sim.Nanosecond,
	}
}

// E10IncastPoint is one incast intensity's outcome.
type E10IncastPoint struct {
	Intensity        int // multiple of the receiver's line rate
	HighSent         int64
	HighDelivered    int64
	LowSent          int64
	LowDelivered     int64
	ShedLow          int64
	PressureBypassed int64
	Stored           int64
	Loaded           int64
	RingDrops        int64
	SpillGateEntries int64
	PeakReads        int64 // max per-channel outstanding READs observed
	PeakFrac0        float64
	PeakFrac1        float64
	GlobalTier       int
	NICPeakTx        int
	HighLossFree     bool
}

// E10StormPoint is one storm intensity's outcome.
type E10StormPoint struct {
	IntervalNs     int64
	HighUpdates    int64
	HighRemote     uint64
	HighPending    uint64
	HighExact      bool
	ShedUpdates    int64
	ShedMisses     int64
	Fallbacks      int64
	FAAPeak        int64
	MissPeak       int64
	DroppedUpdates int64
}

// E10Result is flat and comparable: two runs with the same config must be
// identical (==).
type E10Result struct {
	Incast [3]E10IncastPoint
	Storm  [2]E10StormPoint

	// Unbounded ablation at 2× (incast) / fast interval (storm).
	UnboundedPeakReads int64
	UnboundedNICPeakTx int
	UnboundedFAAPeak   int64
	UnboundedMissPeak  int64

	// Snap aggregates the 2× incast and fast-storm testbeds' robustness
	// counters through the single gem.Stats() surface.
	Snap gem.StatsSnapshot

	// PendingEvents sums leftover event-queue entries; it must be 0.
	PendingEvents int
}

// e10incast runs one incast intensity. bounded=false is the ablation: the
// credit windows observe but never refuse, spill gates and shedding are off,
// and no pressure monitor is installed.
func e10incast(cfg E10Config, intensity int, bounded bool, res *E10Result) E10IncastPoint {
	const (
		regionBytes = 256 << 10
		senders     = 4
	)
	pt := E10IncastPoint{Intensity: intensity}
	tb, err := gem.New(gem.Options{Seed: cfg.Seed, Islands: cfg.Islands, Hosts: senders + 1, MemoryServers: 2})
	if err != nil {
		panic(err)
	}
	recvPort := tb.SwitchPortOfHost(senders)

	alloc, err := tb.NewAllocator(gem.AllocatorConfig{PerServerBytes: 512 << 10})
	if err != nil {
		panic(err)
	}
	var chans []*gem.Channel
	for i := 0; i < 2; i++ {
		ch, _, err := alloc.Allocate(regionBytes, gem.ChannelSpec{})
		if err != nil {
			panic(err)
		}
		chans = append(chans, ch)
	}

	pbCfg := gem.PacketBufferConfig{
		EntrySize:           2048,
		HighWaterBytes:      64 << 10,
		LowWaterBytes:       32 << 10,
		MaxOutstandingReads: 16,
		PerChannelWindow:    8,
		ReadLowWatermark:    4,
		SpillHighWaterBytes: 128 << 10,
		ShedRingEntries:     160,
	}
	if !bounded {
		pbCfg.UnlimitedWindow = true
		pbCfg.MaxOutstandingReads = 100000
		pbCfg.LowWaterBytes = 1 << 20
		pbCfg.SpillHighWaterBytes = 0
		pbCfg.ShedRingEntries = 0
	}
	pb, err := gem.NewPacketBuffer(chans, recvPort, pbCfg)
	if err != nil {
		panic(err)
	}
	pb.RegisterWith(tb.Dispatcher)
	tb.Switch.Hooks = pb

	var mon *gem.PressureMonitor
	if bounded {
		mon = gem.NewPressureMonitor(gem.PressureConfig{})
		for i := 0; i < 2; i++ {
			i := i
			mon.AddServer(i, regionBytes)
			mon.AddGauge(i, func() int64 { return pb.ChannelOccupancyBytes(i) })
		}
		pb.AdmitGate = func(chanIdx int) bool {
			return mon.Tier(chanIdx) < gem.PressureCritical
		}
		tb.SetPressureMonitor(mon)
	}

	tb.SetPipeline(func(ctx *gem.Context) {
		if tb.Dispatcher.Dispatch(ctx) {
			return
		}
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		pb.AdmitPrio(ctx, ctx.Frame, ctx.Priority)
	})

	// Count deliveries at the receiver's switch egress by DSCP.
	tb.Switch.TraceFn = func(event string, port int, frame []byte) {
		if event != "tx" || port != recvPort {
			return
		}
		if len(frame) > wire.EthernetLen+1 && frame[wire.EthernetLen+1]>>2 == 46 {
			pt.HighDelivered++
		} else {
			pt.LowDelivered++
		}
	}

	// Sender i transmits cfg.FrameLen frames at intensity × 10 Gbps; sender
	// 0 marks DSCP EF (high priority). Starts stagger by 100 ns so frames
	// interleave deterministically instead of colliding on one tick.
	frameBits := sim.Duration((cfg.FrameLen + wire.EthernetFramingOverhead) * 8)
	interval := frameBits * sim.Nanosecond / sim.Duration(intensity) / 10
	frames := int(cfg.SendWindow / interval)
	for i := 0; i < senders; i++ {
		i := i
		tb.Engine.Schedule(sim.Duration(i*100)*sim.Nanosecond, func() {
			sent := 0
			tb.Engine.Ticker(interval, func() bool {
				frame := tb.DataFrame(i, senders, cfg.FrameLen, uint16(5000+i), 9999)
				if i == 0 {
					wire.SetDSCP(frame, 46)
					pt.HighSent++
				} else {
					pt.LowSent++
				}
				tb.SendFrame(i, frame)
				sent++
				return sent < frames
			})
		})
	}
	tb.Run()

	pt.ShedLow = pb.Stats.ShedLowPrio
	pt.PressureBypassed = pb.Stats.PressureBypassed
	pt.Stored = pb.Stats.Stored
	pt.Loaded = pb.Stats.Loaded
	pt.RingDrops = pb.Stats.RingDrops
	pt.SpillGateEntries = pb.Stats.SpillGateEntries
	for i := 0; i < 2; i++ {
		if p := pb.ChannelCredits(i).Stats.Peak; p > pt.PeakReads {
			pt.PeakReads = p
		}
		if p := tb.MemNICs[i].Port().PeakQueuedFrames(); p > pt.NICPeakTx {
			pt.NICPeakTx = p
		}
	}
	if mon != nil {
		pt.PeakFrac0 = mon.PeakFrac(0)
		pt.PeakFrac1 = mon.PeakFrac(1)
		pt.GlobalTier = int(mon.GlobalTier())
	}
	pt.HighLossFree = pt.HighDelivered == pt.HighSent
	if bounded && intensity == 2 {
		res.Snap = res.Snap.Add(tb.Stats())
	}
	res.PendingEvents += tb.PendingEvents()
	return pt
}

// e10StormPorts picks UDP source ports whose lookup-table hash indexes are
// pairwise distinct (so concurrent deposits never race on an entry) and
// whose counter index (port % 64) falls in the high band [0,8) or the low
// band [8,64).
func e10StormPorts(tb *gem.Testbed, entries, frameLen, nHigh, nLow int) (high, low []uint16) {
	used := make(map[int]bool)
	for port := uint16(1000); len(high) < nHigh || len(low) < nLow; port++ {
		wantHigh := int(port)%64 < 8
		if wantHigh && len(high) >= nHigh || !wantHigh && len(low) >= nLow {
			continue
		}
		frame := tb.DataFrame(0, 1, frameLen, port, 9999)
		var p wire.Packet
		err := p.DecodeFromBytes(frame)
		idx := wire.FlowOf(&p).Index(entries)
		wire.DefaultPool.Put(frame) // probe only; never enters the fabric
		if err != nil {
			continue
		}
		if used[idx] {
			continue
		}
		used[idx] = true
		if wantHigh {
			high = append(high, port)
		} else {
			low = append(low, port)
		}
	}
	return high, low
}

// e10storm runs one lookup-miss + counter storm. Every packet updates the
// state store and misses the lookup table; every 4th packet is high
// priority. bounded=false is the UnlimitedWindow ablation.
func e10storm(cfg E10Config, interval sim.Duration, bounded bool, res *E10Result) E10StormPoint {
	const (
		entries  = 256
		frameLen = 192
		counters = 64
	)
	pt := E10StormPoint{IntervalNs: int64(interval)}
	tb, err := gem.New(gem.Options{Seed: cfg.Seed, Islands: cfg.Islands, Hosts: 2, MemoryServers: 1})
	if err != nil {
		panic(err)
	}
	ltCfg := gem.LookupConfig{
		Entries: entries, MaxPktBytes: 256,
		MaxOutstandingMisses: 2,
		UnlimitedWindow:      !bounded,
	}
	chLT, err := tb.Establish(0, gem.ChannelSpec{
		RegionBase: 0x10000000, RegionSize: entries * ltCfg.EntrySize(),
	})
	if err != nil {
		panic(err)
	}
	chSS, err := tb.Establish(0, gem.ChannelSpec{RegionBase: 0x20000000, RegionSize: 4096})
	if err != nil {
		panic(err)
	}
	lt, err := gem.NewLookupTable(chLT, ltCfg)
	if err != nil {
		panic(err)
	}
	lt.DefaultOutPort = tb.SwitchPortOfHost(1)
	// The CPU slow path resolves high-priority misses the window refuses;
	// zeroed remote entries already decode as ActNop (forward).
	lt.SlowPath = func(wire.FlowKey) (gem.LookupAction, bool) {
		return gem.LookupAction{}, true
	}
	ss, err := gem.NewStateStore(chSS, gem.StateStoreConfig{
		Counters: counters, MaxOutstanding: 4,
		PendingSlots: 32, ShedPendingSlots: 8,
		UnlimitedWindow: !bounded,
	})
	if err != nil {
		panic(err)
	}
	tb.Dispatcher.Register(chLT, lt)
	tb.Dispatcher.Register(chSS, ss)
	tb.SetPipeline(func(ctx *gem.Context) {
		if tb.Dispatcher.Dispatch(ctx) {
			return
		}
		if ctx.Pkt == nil || !ctx.Pkt.HasIPv4 {
			ctx.Drop()
			return
		}
		ss.UpdatePrio(int(ctx.Pkt.UDP.SrcPort)%counters, 1, ctx.Priority)
		lt.LookupPrio(ctx, ctx.Frame, ctx.Pkt, ctx.Priority)
	})

	highPorts, lowPorts := e10StormPorts(tb, entries, frameLen, 4, 12)
	sent, lowIdx := 0, 0
	tb.Engine.Ticker(interval, func() bool {
		var frame []byte
		if sent%4 == 0 {
			frame = tb.DataFrame(0, 1, frameLen, highPorts[(sent/4)%len(highPorts)], 9999)
			wire.SetDSCP(frame, 46)
			pt.HighUpdates++
		} else {
			frame = tb.DataFrame(0, 1, frameLen, lowPorts[lowIdx%len(lowPorts)], 9999)
			lowIdx++
		}
		tb.SendFrame(0, frame)
		sent++
		return sent < cfg.StormPackets
	})
	tb.Run()

	for i := 0; i < 8; i++ {
		v, _ := tb.ReadRemoteCounter(chSS, ss.CounterOffset(i))
		pt.HighRemote += v
		pt.HighPending += ss.Pending(i)
	}
	pt.HighExact = pt.HighRemote+pt.HighPending == uint64(pt.HighUpdates)
	pt.ShedUpdates = ss.Stats.ShedUpdates
	pt.ShedMisses = lt.Stats.ShedMisses
	pt.Fallbacks = lt.Stats.CreditFallbacks
	pt.FAAPeak = ss.Credits().Stats.Peak
	pt.MissPeak = lt.Credits().Stats.Peak
	pt.DroppedUpdates = ss.Stats.DroppedUpdates
	if bounded && interval == cfg.StormFastInterval {
		res.Snap = res.Snap.Add(tb.Stats())
	}
	res.PendingEvents += tb.PendingEvents()
	return pt
}

// RunE10 executes the overload experiment.
func RunE10(cfg E10Config) (*Table, E10Result) {
	var res E10Result
	for i, intensity := range []int{1, 2, 4} {
		res.Incast[i] = e10incast(cfg, intensity, true, &res)
	}
	res.Storm[0] = e10storm(cfg, cfg.StormSlowInterval, true, &res)
	res.Storm[1] = e10storm(cfg, cfg.StormFastInterval, true, &res)

	ablIncast := e10incast(cfg, 2, false, &res)
	res.UnboundedPeakReads = ablIncast.PeakReads
	res.UnboundedNICPeakTx = ablIncast.NICPeakTx
	ablStorm := e10storm(cfg, cfg.StormFastInterval, false, &res)
	res.UnboundedFAAPeak = ablStorm.FAAPeak
	res.UnboundedMissPeak = ablStorm.MissPeak

	t := &Table{
		ID:      "E10",
		Title:   "overload: credits, pressure tiers, and priority shedding past capacity",
		Columns: []string{"scenario", "invariant", "value", "detail"},
	}
	for _, pt := range res.Incast {
		t.AddRow(fmt.Sprintf("incast %dx", pt.Intensity), "high-prio lossless",
			fmt.Sprintf("%v", pt.HighLossFree),
			fmt.Sprintf("high %d/%d, low %d/%d (shed %d), stored %d, peak reads %d, tier %d, peak occ %.2f/%.2f",
				pt.HighDelivered, pt.HighSent, pt.LowDelivered, pt.LowSent,
				pt.ShedLow, pt.Stored, pt.PeakReads, pt.GlobalTier,
				pt.PeakFrac0, pt.PeakFrac1))
	}
	for _, pt := range res.Storm {
		t.AddRow(fmt.Sprintf("storm @%dns", pt.IntervalNs), "high-prio counters exact",
			fmt.Sprintf("%v", pt.HighExact),
			fmt.Sprintf("high %d = remote %d + pending %d; shed %d updates / %d misses, %d fallbacks, FAA peak %d",
				pt.HighUpdates, pt.HighRemote, pt.HighPending,
				pt.ShedUpdates, pt.ShedMisses, pt.Fallbacks, pt.FAAPeak))
	}
	t.AddRow("unbounded ablation", "windows removed",
		fmt.Sprintf("reads %d, FAA %d", res.UnboundedPeakReads, res.UnboundedFAAPeak),
		fmt.Sprintf("vs bounded reads %d / FAA %d; NIC peak tx %d vs %d",
			res.Incast[1].PeakReads, res.Storm[1].FAAPeak,
			res.UnboundedNICPeakTx, res.Incast[1].NICPeakTx))
	t.AddNote("sheds are counted admission decisions, never silent loss; high priority keeps")
	t.AddNote("exactness (delivery, counters) while credit windows bound all in-flight work")
	return t, res
}
