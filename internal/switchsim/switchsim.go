// Package switchsim models a programmable switch of the Tofino class: a
// multi-port packet-processing device with a parser, a programmable
// match-action pipeline, register state, a shared packet buffer with
// per-port egress queues, and recirculation.
//
// A "P4 program" is Go code implementing the Pipeline interface; it
// receives each parsed packet with a Context exposing exactly the
// operations a Tofino data plane has: emit to a port (optionally several —
// clone), drop, recirculate, read queue depths, and touch tables/registers.
// The remote-memory primitives in internal/core are implemented purely in
// terms of this interface.
package switchsim

import (
	"fmt"

	"gem/internal/fifo"
	"gem/internal/netsim"
	"gem/internal/sim"
	"gem/internal/wire"
)

// Config sets the switch's fixed hardware characteristics.
type Config struct {
	// PipelineLatency is the ingress parse+match+action latency per pass.
	PipelineLatency sim.Duration
	// BufferBytes is the shared packet buffer; the sum of all egress
	// queue occupancies cannot exceed it (tail drop beyond).
	BufferBytes int
	// PerPortCapBytes optionally caps a single egress queue (0 = only the
	// shared limit applies).
	PerPortCapBytes int
	// SRAMBytes is the table/register budget.
	SRAMBytes int
	// RecirculationLatency is the extra delay of one recirculation pass.
	RecirculationLatency sim.Duration
	// ECNThresholdBytes, when positive, marks the ECN field (CE) of IPv4
	// packets that join an egress queue deeper than this — the hook the
	// paper's §2.1 relies on for end-to-end congestion control "based on
	// ECN" to slow persistent overload.
	ECNThresholdBytes int
	// RDMAPriority gives RoCE frames a strict-priority queue on every
	// egress port — §7: "one may prioritize these RDMA packets so that
	// they are less likely to be dropped". Non-RoCE traffic uses the
	// best-effort queue and is served only when the priority queue is
	// empty.
	RDMAPriority bool
}

// DefaultConfig matches the paper's testbed switch: 12 MB packet buffer,
// 20 MB SRAM, sub-microsecond pipeline.
func DefaultConfig() Config {
	return Config{
		PipelineLatency:      450 * sim.Nanosecond,
		BufferBytes:          12 << 20,
		SRAMBytes:            20 << 20,
		RecirculationLatency: 700 * sim.Nanosecond,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.PipelineLatency == 0 {
		c.PipelineLatency = d.PipelineLatency
	}
	if c.BufferBytes == 0 {
		c.BufferBytes = d.BufferBytes
	}
	if c.SRAMBytes == 0 {
		c.SRAMBytes = d.SRAMBytes
	}
	if c.RecirculationLatency == 0 {
		c.RecirculationLatency = d.RecirculationLatency
	}
}

// Pipeline is the "P4 program" slot.
type Pipeline interface {
	// Ingress processes one parsed packet. Emit/Drop decisions are made
	// through ctx; returning without emitting drops the packet.
	Ingress(ctx *Context)
}

// PipelineFunc adapts a function to Pipeline.
type PipelineFunc func(ctx *Context)

// Ingress implements Pipeline.
func (f PipelineFunc) Ingress(ctx *Context) { f(ctx) }

// EgressHooks receive traffic-manager events; the packet-buffer primitive
// uses them as its store/load triggers.
type EgressHooks interface {
	// PacketEnqueued fires after a frame joins the egress queue of port.
	PacketEnqueued(port int, queueBytes int)
	// PacketDeparted fires after a frame finishes serialization on port.
	PacketDeparted(port int, queueBytes int)
}

// Stats aggregates switch-level counters.
type Stats struct {
	RxFrames     int64
	TxFrames     int64
	ParseErrors  int64
	BufferDrops  int64 // tail drops at the shared buffer / per-port cap
	Recirculated int64
	NoRoute      int64 // pipeline chose to drop (no emit)
	PFCFrames    int64 // 802.1Qbb pause/resume frames honoured
	ECNMarked    int64 // packets CE-marked at a deep egress queue

	// FirstBufferDrop records when the first tail drop happened (the
	// §2.1 "buffer fills within 0.34 ms" observable); meaningful only
	// when BufferDrops > 0.
	FirstBufferDrop sim.Time
}

// RecirculationPort is the pseudo port index used for recirculated frames.
const RecirculationPort = -1

type egressQueue struct {
	frames fifo.Queue[[]byte] // best-effort FIFO
	prio   fifo.Queue[[]byte] // strict-priority FIFO (RDMAPriority)
	bytes  int
	busy   bool
	// pausedUntil implements 802.1Qbb: the port does not transmit before
	// this time (refreshed/cleared by PFC frames from the peer).
	pausedUntil sim.Time
	resumeEvent *sim.Event
	// Drops counts tail drops on this queue.
	Drops int64
	// Peak tracks the maximum occupancy seen.
	Peak int
}

// Switch is the device. Create with New, wire with netsim.Net.Connect, then
// Bind the resulting ports in order.
type Switch struct {
	name   string
	Cfg    Config
	Engine *sim.Engine
	SRAM   *SRAMBudget
	Stats  Stats

	Pipeline Pipeline
	Hooks    EgressHooks
	// TraceFn, when set, observes every frame at the switch boundary:
	// event is "rx" (arrived on port) or "tx" (started serialization on
	// port). Used by internal/trace; nil costs nothing.
	TraceFn func(event string, port int, frame []byte)

	ports   []*netsim.Port
	queues  []*egressQueue
	bufUsed int

	// parse buffer reused across packets (DecodingLayerParser pattern).
	pkt wire.Packet
}

// New creates a switch with the given config (zero fields take defaults).
func New(name string, engine *sim.Engine, cfg Config) *Switch {
	cfg.fillDefaults()
	return &Switch{
		name:   name,
		Cfg:    cfg,
		Engine: engine,
		SRAM:   NewSRAMBudget(cfg.SRAMBytes),
	}
}

// Name implements netsim.Device.
func (s *Switch) Name() string { return s.name }

// Bind registers the switch's ports (in index order) after wiring. It must
// be called once with every port returned by Connect for this switch.
func (s *Switch) Bind(ports ...*netsim.Port) {
	s.ports = ports
	s.queues = make([]*egressQueue, len(ports))
	for i := range s.queues {
		s.queues[i] = &egressQueue{}
	}
	for i, p := range ports {
		if p.Index() != i {
			panic(fmt.Sprintf("switchsim: port %d bound at position %d", p.Index(), i))
		}
	}
}

// NumPorts returns the port count.
func (s *Switch) NumPorts() int { return len(s.ports) }

// Port returns port i.
func (s *Switch) Port(i int) *netsim.Port { return s.ports[i] }

// QueueBytes returns the egress queue occupancy of port i in bytes.
func (s *Switch) QueueBytes(i int) int { return s.queues[i].bytes }

// QueuePeak returns the maximum occupancy port i's queue has reached.
func (s *Switch) QueuePeak(i int) int { return s.queues[i].Peak }

// QueueDrops returns tail drops on port i.
func (s *Switch) QueueDrops(i int) int64 { return s.queues[i].Drops }

// BufferUsed returns the shared-buffer occupancy in bytes.
func (s *Switch) BufferUsed() int { return s.bufUsed }

// Receive implements netsim.Device: frames enter the ingress pipeline after
// the pipeline latency. MAC control (PFC) frames are consumed at the MAC
// layer, pausing the egress queue of the receiving port.
func (s *Switch) Receive(port *netsim.Port, frame []byte) {
	s.Stats.RxFrames++
	in := port.Index()
	if s.TraceFn != nil {
		s.TraceFn("rx", in, frame)
	}
	if wire.IsMACControl(frame) {
		if pfc, ok := wire.DecodePFC(frame); ok {
			s.handlePFC(in, &pfc)
			wire.DefaultPool.Put(frame) // consumed at the MAC layer
			return
		}
	}
	s.Engine.Schedule(s.Cfg.PipelineLatency, func() { s.runPipeline(in, frame) })
}

// handlePFC pauses or resumes transmission on port per the class-0 quanta.
func (s *Switch) handlePFC(port int, pfc *wire.PFC) {
	if pfc.ClassEnable&1 == 0 {
		return
	}
	s.Stats.PFCFrames++
	q := s.queues[port]
	quanta := pfc.PauseQuanta[0]
	if q.resumeEvent != nil {
		s.Engine.Cancel(q.resumeEvent)
		q.resumeEvent = nil
	}
	if quanta == 0 {
		q.pausedUntil = s.Engine.Now()
		if !q.busy {
			s.transmitNext(port)
		}
		return
	}
	bitTime := 1e9 / s.ports[port].RateBps()
	d := sim.Duration(float64(quanta) * wire.PFCQuantum * bitTime)
	q.pausedUntil = s.Engine.Now().Add(d)
	q.resumeEvent = s.Engine.Schedule(d, func() {
		q.resumeEvent = nil
		if !q.busy {
			s.transmitNext(port)
		}
	})
}

func (s *Switch) runPipeline(inPort int, frame []byte) {
	if s.Pipeline == nil {
		s.Stats.NoRoute++
		wire.DefaultPool.Put(frame) // no pipeline: the switch is the terminal consumer
		return
	}
	ctx := Context{sw: s, InPort: inPort, Frame: frame}
	if err := s.pkt.DecodeFromBytes(frame); err != nil {
		s.Stats.ParseErrors++
		ctx.ParseErr = err
	} else {
		ctx.Pkt = &s.pkt
		ctx.Priority = ClassifyDSCP(ctx.Pkt)
	}
	s.Pipeline.Ingress(&ctx)
	if ctx.frameSent || ctx.retained {
		return
	}
	if !ctx.dropped && !ctx.emitted {
		s.Stats.NoRoute++
	}
	// Nothing was enqueued or parked — conscious drop or no route — so the
	// switch is the frame's terminal consumer. Pipelines that keep payload
	// bytes copy them first (see the Drop contract).
	wire.DefaultPool.Put(frame)
}

// enqueue places frame on the egress queue of port, enforcing buffer limits.
// It returns false on tail drop.
func (s *Switch) enqueue(port int, frame []byte) bool {
	q := s.queues[port]
	n := len(frame)
	if s.bufUsed+n > s.Cfg.BufferBytes ||
		(s.Cfg.PerPortCapBytes > 0 && q.bytes+n > s.Cfg.PerPortCapBytes) {
		q.Drops++
		if s.Stats.BufferDrops == 0 {
			s.Stats.FirstBufferDrop = s.Engine.Now()
		}
		s.Stats.BufferDrops++
		wire.DefaultPool.Put(frame) // tail drop: buffer is recycled
		return false
	}
	if s.Cfg.ECNThresholdBytes > 0 && q.bytes >= s.Cfg.ECNThresholdBytes {
		if markECN(frame) {
			s.Stats.ECNMarked++
		}
	}
	if s.Cfg.RDMAPriority && isRoCEFrame(frame) {
		q.prio.Push(frame)
	} else {
		q.frames.Push(frame)
	}
	q.bytes += n
	s.bufUsed += n
	if q.bytes > q.Peak {
		q.Peak = q.bytes
	}
	if s.Hooks != nil {
		s.Hooks.PacketEnqueued(port, q.bytes)
	}
	if !q.busy {
		s.transmitNext(port)
	}
	return true
}

// transmitNext serializes the head-of-line frame of port's queue, serving
// the strict-priority class first.
func (s *Switch) transmitNext(port int) {
	q := s.queues[port]
	if (q.frames.Len() == 0 && q.prio.Len() == 0) || s.Engine.Now() < q.pausedUntil {
		q.busy = false
		return
	}
	q.busy = true
	var frame []byte
	if q.prio.Len() > 0 {
		frame = q.prio.Pop()
	} else {
		frame = q.frames.Pop()
	}
	p := s.ports[port]
	if s.TraceFn != nil {
		s.TraceFn("tx", port, frame)
	}
	p.Send(frame)
	s.Stats.TxFrames++
	// The frame's buffer bytes are released when serialization completes.
	s.Engine.Schedule(p.SerializationDelay(len(frame)), func() {
		q.bytes -= len(frame)
		s.bufUsed -= len(frame)
		if s.Hooks != nil {
			s.Hooks.PacketDeparted(port, q.bytes)
		}
		s.transmitNext(port)
	})
}

// isRoCEFrame classifies a frame as RDMA traffic by its encapsulation:
// RoCEv1 ethertype, or UDP destination port 4791.
func isRoCEFrame(frame []byte) bool {
	if wire.IsRoCEv1Frame(frame) {
		return true
	}
	// Fast check: IPv4 + UDP + dst port 4791 at fixed offsets (no options
	// in this simulation).
	const udpOff = wire.EthernetLen + wire.IPv4Len
	if len(frame) < udpOff+wire.UDPLen {
		return false
	}
	if frame[12] != 0x08 || frame[13] != 0x00 { // not IPv4
		return false
	}
	if frame[wire.EthernetLen+9] != wire.ProtoUDP {
		return false
	}
	port := uint16(frame[udpOff+2])<<8 | uint16(frame[udpOff+3])
	return port == wire.UDPPortRoCEv2
}

// markECN sets CE (11) in the IPv4 ECN field and repairs the header
// checksum. It reports false for non-IPv4 frames.
func markECN(frame []byte) bool {
	if len(frame) < wire.EthernetLen+wire.IPv4Len {
		return false
	}
	var eth wire.Ethernet
	if eth.DecodeFromBytes(frame) != nil || eth.EtherType != wire.EtherTypeIPv4 {
		return false
	}
	ip := frame[wire.EthernetLen:]
	var h wire.IPv4
	if h.DecodeFromBytes(ip) != nil {
		return false
	}
	h.ECN = 3 // CE
	h.Put(ip) // rewrites the checksum
	return true
}

// Inject enqueues a switch-generated frame (e.g. an RDMA request crafted by
// a primitive) for egress on port, exactly as Context.Emit does for transit
// packets. It reports whether the frame was accepted.
func (s *Switch) Inject(port int, frame []byte) bool {
	if port < 0 || port >= len(s.ports) {
		panic(fmt.Sprintf("switchsim: inject to invalid port %d", port))
	}
	return s.enqueue(port, frame)
}

// Priority is the two-class admission priority the overload-protection
// layer keys on: under pressure, primitives shed PriorityLow traffic first
// (counted, never silent) while PriorityHigh keeps exactness guarantees.
type Priority uint8

const (
	PriorityLow Priority = iota
	PriorityHigh
)

// ClassifyDSCP maps a parsed packet to its admission priority: IPv4 DSCP in
// the expedited/network-control bands (>= 32, which covers CS4-CS7, EF and
// the VOICE-ADMIT class) is high priority, everything else — including
// unparsed or non-IP frames — is low.
func ClassifyDSCP(pkt *wire.Packet) Priority {
	if pkt != nil && pkt.HasIPv4 && pkt.IP.DSCP >= 32 {
		return PriorityHigh
	}
	return PriorityLow
}

// Context is the pipeline's view of one packet in flight, mirroring the
// intrinsic metadata and primitive actions a P4 program has.
type Context struct {
	sw     *Switch
	InPort int
	// Pkt is the parsed view (nil if parsing failed; see ParseErr).
	Pkt      *wire.Packet
	ParseErr error
	// Frame is the raw frame.
	Frame []byte
	// Priority is the packet's admission class, marked at parse time from
	// the IPv4 DSCP (see ClassifyDSCP). The overload-protection layer sheds
	// PriorityLow traffic first; PriorityHigh keeps exactness guarantees.
	Priority Priority

	emitted   bool
	dropped   bool
	retained  bool
	frameSent bool // the ingress Frame buffer itself was handed to the TM
}

// sameBuffer reports whether two slices share a backing buffer (compared by
// first-byte address, which re-slicing from the front preserves).
func sameBuffer(a, b []byte) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// NewContext builds a pipeline context bound to the switch for frames the
// data plane synthesizes outside a Receive pass (e.g. recirculation
// continuations). Pkt is left nil; callers parse if they need headers.
func (s *Switch) NewContext(inPort int, frame []byte) *Context {
	return &Context{sw: s, InPort: inPort, Frame: frame}
}

// Switch returns the switch processing the packet.
func (c *Context) Switch() *Switch { return c.sw }

// Now returns the current virtual time.
func (c *Context) Now() sim.Time { return c.sw.Engine.Now() }

// Emit queues frame for egress on port. It may be called multiple times
// (clone/mirror), but each call must pass a distinct buffer — ownership of
// frame transfers to the traffic manager, which recycles it on tail drop
// and after terminal consumption, so clones must be copies. It reports
// whether the frame was accepted (false = tail drop at the buffer).
func (c *Context) Emit(port int, frame []byte) bool {
	if port < 0 || port >= len(c.sw.ports) {
		panic(fmt.Sprintf("switchsim: emit to invalid port %d", port))
	}
	c.emitted = true
	if sameBuffer(frame, c.Frame) {
		c.frameSent = true
	}
	return c.sw.enqueue(port, frame)
}

// Drop marks the packet consciously dropped (distinct from "no route").
func (c *Context) Drop() { c.dropped = true }

// DropFrame consciously drops a specific frame the caller owns. The ingress
// Frame is left to the pass (runPipeline/Finish recycles it as usual); any
// other buffer — a bounced original, a rewritten copy — is recycled here,
// since the pass only accounts for the ingress buffer.
//
//gem:owns
func (c *Context) DropFrame(frame []byte) {
	c.dropped = true
	if !sameBuffer(frame, c.Frame) {
		wire.DefaultPool.Put(frame)
	}
}

// Retain marks the frame as parked beyond this pipeline pass — e.g. held
// for a scheduled recirculation continuation — so the switch does not
// recycle it when the pass ends. Ownership transfers to the retainer,
// which must eventually Emit the frame, hand it to another owner, or
// return it to wire.DefaultPool itself.
func (c *Context) Retain() { c.retained = true }

// Finish completes a context synthesized with NewContext outside a Receive
// pass: unless the Frame buffer itself was emitted/recirculated or retained,
// the caller stands in for the switch as the frame's terminal consumer and
// the buffer is recycled. Emitting a *different* buffer (a rewritten copy, a
// bounced original) does not consume the ingress frame. runPipeline does the
// equivalent for Receive passes.
func (c *Context) Finish() {
	if !c.frameSent && !c.retained {
		wire.DefaultPool.Put(c.Frame)
	}
}

// Recirculate re-injects frame into the ingress pipeline after the
// recirculation latency, as Tofino's loopback port does.
func (c *Context) Recirculate(frame []byte) {
	c.emitted = true
	if sameBuffer(frame, c.Frame) {
		c.frameSent = true
	}
	c.sw.Stats.Recirculated++
	c.sw.Engine.Schedule(c.sw.Cfg.RecirculationLatency, func() {
		c.sw.runPipeline(RecirculationPort, frame)
	})
}

// QueueBytes reads the egress queue depth of port — the trigger signal for
// the packet-buffer primitive.
func (c *Context) QueueBytes(port int) int { return c.sw.QueueBytes(port) }
