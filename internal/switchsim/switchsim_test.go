package switchsim

import (
	"bytes"
	"testing"

	"gem/internal/netsim"
	"gem/internal/sim"
	"gem/internal/wire"
)

// testbed wires nHosts hosts to one switch with an L2 pipeline.
func testbed(t *testing.T, nHosts int, cfg Config) (*netsim.Net, *Switch, []*netsim.Host) {
	t.Helper()
	n := netsim.New(1)
	sw := New("tor", n.Engine, cfg)
	hosts := make([]*netsim.Host, nHosts)
	ports := make([]*netsim.Port, nHosts)
	for i := range hosts {
		hosts[i] = netsim.NewHost("h", uint32(i+1))
		sp, _ := n.Connect(sw, hosts[i], netsim.Link40G())
		ports[i] = sp
	}
	sw.Bind(ports...)
	l2, err := NewL2Pipeline(sw, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hosts {
		if err := l2.Learn(h.MAC, i); err != nil {
			t.Fatal(err)
		}
	}
	sw.Pipeline = l2
	return n, sw, hosts
}

func frameBetween(a, b *netsim.Host, size int) []byte {
	return wire.BuildDataFrame(a.MAC, b.MAC, a.IP, b.IP, 1000, 2000, size, nil)
}

func TestL2Forwarding(t *testing.T) {
	n, sw, hosts := testbed(t, 3, Config{})
	n.Ports(hosts[0])[0].Send(frameBetween(hosts[0], hosts[2], 100))
	n.Engine.Run()
	if hosts[2].Received != 1 {
		t.Fatalf("h2 received %d", hosts[2].Received)
	}
	if hosts[1].Received != 0 {
		t.Fatal("frame leaked to h1")
	}
	if sw.Stats.RxFrames != 1 || sw.Stats.TxFrames != 1 {
		t.Fatalf("stats = %+v", sw.Stats)
	}
}

func TestL2FloodOnMiss(t *testing.T) {
	n, _, hosts := testbed(t, 4, Config{})
	unknown := wire.MACFromUint64(0xEEEE)
	f := wire.BuildDataFrame(hosts[0].MAC, unknown, hosts[0].IP, wire.IP4{}, 1, 2, 100, nil)
	n.Ports(hosts[0])[0].Send(f)
	n.Engine.Run()
	for i := 1; i < 4; i++ {
		if hosts[i].Received != 1 {
			t.Fatalf("host %d received %d, want flooded copy", i, hosts[i].Received)
		}
	}
	if hosts[0].Received != 0 {
		t.Fatal("flood echoed to ingress port")
	}
}

// TestL2FloodClonesAreDistinctBuffers locks in the Emit ownership contract
// for the flood path: each enqueued frame is recycled independently at its
// terminal consumption point, so flooding one buffer to three ports would
// triple-release it and hand the same memory to two owners. Every flooded
// port must therefore be handed its own intact copy.
func TestL2FloodClonesAreDistinctBuffers(t *testing.T) {
	n, sw, hosts := testbed(t, 4, Config{})
	unknown := wire.MACFromUint64(0xEEEE)
	f := wire.BuildDataFrame(hosts[0].MAC, unknown, hosts[0].IP, wire.IP4{}, 1, 2, 100, nil)
	want := append([]byte(nil), f...)

	bufs := map[*byte]bool{}
	var tx [][]byte
	sw.TraceFn = func(event string, port int, frame []byte) {
		if event == "tx" {
			bufs[&frame[0]] = true
			tx = append(tx, append([]byte(nil), frame...))
		}
	}
	n.Ports(hosts[0])[0].Send(f)
	n.Engine.Run()

	if len(tx) != 3 {
		t.Fatalf("flooded %d frames, want 3", len(tx))
	}
	if len(bufs) != 3 {
		t.Fatalf("flood reused a buffer: %d distinct buffers for 3 frames", len(bufs))
	}
	for i, got := range tx {
		if !bytes.Equal(got, want) {
			t.Fatalf("flooded copy %d corrupted", i)
		}
	}
}

// TestNoRouteRecyclesFrame: when nothing was enqueued — the pipeline
// neither emitted nor dropped, or there is no pipeline at all — the switch
// is the frame's terminal consumer and must return it to the pool.
func TestNoRouteRecyclesFrame(t *testing.T) {
	n, sw, hosts := testbed(t, 2, Config{})
	sw.Pipeline = PipelineFunc(func(ctx *Context) {}) // no emit, no drop
	before := wire.DefaultPool.Stats()
	n.Ports(hosts[0])[0].Send(frameBetween(hosts[0], hosts[1], 100))
	n.Engine.Run()
	if sw.Stats.NoRoute != 1 {
		t.Fatalf("NoRoute = %d, want 1", sw.Stats.NoRoute)
	}
	if d := wire.DefaultPool.Stats().Puts - before.Puts; d != 1 {
		t.Fatalf("pool puts delta = %d, want 1 (no-route frame recycled)", d)
	}

	sw.Pipeline = nil
	before = wire.DefaultPool.Stats()
	n.Ports(hosts[0])[0].Send(frameBetween(hosts[0], hosts[1], 100))
	n.Engine.Run()
	if d := wire.DefaultPool.Stats().Puts - before.Puts; d != 1 {
		t.Fatalf("pool puts delta = %d, want 1 (nil-pipeline frame recycled)", d)
	}
}

func TestPipelineLatency(t *testing.T) {
	n, _, hosts := testbed(t, 2, Config{PipelineLatency: 450})
	var at sim.Time
	hosts[1].Handler = func(_ *netsim.Port, _ []byte) { at = n.Engine.Now() }
	n.Ports(hosts[0])[0].Send(frameBetween(hosts[0], hosts[1], 124))
	n.Engine.Run()
	// host→switch: ser (124+24)*8/40G=29.6ns + 250 prop; pipeline 450;
	// switch→host: same ser + prop. Total ≈ 29+250+450+29+250 = 1008.
	if at < 1000 || at > 1060 {
		t.Fatalf("end-to-end = %d ns, want ≈1010", at)
	}
}

func TestQueueBuildsUnderCongestion(t *testing.T) {
	// Two senders at line rate into one receiver: the egress queue of the
	// receiver's port must grow.
	n, sw, hosts := testbed(t, 3, Config{})
	for i := 0; i < 100; i++ {
		n.Ports(hosts[0])[0].Send(frameBetween(hosts[0], hosts[2], 1500))
		n.Ports(hosts[1])[0].Send(frameBetween(hosts[1], hosts[2], 1500))
	}
	n.Engine.RunFor(40 * sim.Microsecond)
	if sw.QueuePeak(2) < 10*1500 {
		t.Fatalf("peak queue = %d, expected significant buildup", sw.QueuePeak(2))
	}
	n.Engine.Run()
	if hosts[2].Received != 200 {
		t.Fatalf("received %d/200", hosts[2].Received)
	}
}

func TestSharedBufferTailDrop(t *testing.T) {
	// Tiny buffer, 2:1 incast: most of the burst must be dropped.
	n, sw, hosts := testbed(t, 3, Config{BufferBytes: 8 * 1500})
	for i := 0; i < 100; i++ {
		n.Ports(hosts[0])[0].Send(frameBetween(hosts[0], hosts[2], 1500))
		n.Ports(hosts[1])[0].Send(frameBetween(hosts[1], hosts[2], 1500))
	}
	n.Engine.Run()
	if sw.Stats.BufferDrops == 0 {
		t.Fatal("no buffer drops with 12KB buffer and 2:1 incast")
	}
	if got := hosts[2].Received + sw.Stats.BufferDrops; got != 200 {
		t.Fatalf("delivered+dropped = %d, want 200", got)
	}
	if sw.BufferUsed() != 0 {
		t.Fatalf("buffer not drained: %d", sw.BufferUsed())
	}
}

func TestPerPortCap(t *testing.T) {
	n, sw, hosts := testbed(t, 3, Config{PerPortCapBytes: 4 * 1500})
	for i := 0; i < 50; i++ {
		n.Ports(hosts[0])[0].Send(frameBetween(hosts[0], hosts[2], 1500))
		n.Ports(hosts[1])[0].Send(frameBetween(hosts[1], hosts[2], 1500))
	}
	n.Engine.Run()
	if sw.QueueDrops(2) == 0 {
		t.Fatal("per-port cap not enforced")
	}
	if sw.QueuePeak(2) > 4*1500 {
		t.Fatalf("peak %d exceeded cap", sw.QueuePeak(2))
	}
}

func TestEgressHooks(t *testing.T) {
	n, sw, hosts := testbed(t, 2, Config{})
	var enq, dep int
	sw.Hooks = hooksFunc{
		onEnq: func(port, qlen int) { enq++ },
		onDep: func(port, qlen int) { dep++ },
	}
	for i := 0; i < 5; i++ {
		n.Ports(hosts[0])[0].Send(frameBetween(hosts[0], hosts[1], 200))
	}
	n.Engine.Run()
	if enq != 5 || dep != 5 {
		t.Fatalf("hooks: enq=%d dep=%d, want 5/5", enq, dep)
	}
}

type hooksFunc struct {
	onEnq, onDep func(port, qlen int)
}

func (h hooksFunc) PacketEnqueued(p, q int) { h.onEnq(p, q) }
func (h hooksFunc) PacketDeparted(p, q int) { h.onDep(p, q) }

func TestRecirculation(t *testing.T) {
	n := netsim.New(1)
	sw := New("tor", n.Engine, Config{})
	h := netsim.NewHost("h", 1)
	sp, _ := n.Connect(sw, h, netsim.Link40G())
	sw.Bind(sp)
	passes := 0
	sw.Pipeline = PipelineFunc(func(ctx *Context) {
		passes++
		if ctx.InPort == RecirculationPort {
			ctx.Emit(0, ctx.Frame)
			return
		}
		ctx.Recirculate(ctx.Frame)
	})
	h2 := netsim.NewHost("src", 2)
	sw.Receive(sp, frameBetween(h2, h, 100))
	n.Engine.Run()
	if passes != 2 {
		t.Fatalf("pipeline passes = %d, want 2", passes)
	}
	if sw.Stats.Recirculated != 1 {
		t.Fatalf("recirculated = %d", sw.Stats.Recirculated)
	}
	if h.Received != 1 {
		t.Fatal("recirculated frame not delivered")
	}
}

func TestNoPipelineDrops(t *testing.T) {
	n := netsim.New(1)
	sw := New("tor", n.Engine, Config{})
	h := netsim.NewHost("h", 1)
	sp, _ := n.Connect(sw, h, netsim.Link40G())
	sw.Bind(sp)
	sw.Receive(sp, frameBetween(h, h, 100))
	n.Engine.Run()
	if sw.Stats.NoRoute != 1 {
		t.Fatalf("NoRoute = %d", sw.Stats.NoRoute)
	}
}

func TestEmitInvalidPortPanics(t *testing.T) {
	n := netsim.New(1)
	sw := New("tor", n.Engine, Config{})
	h := netsim.NewHost("h", 1)
	sp, _ := n.Connect(sw, h, netsim.Link40G())
	sw.Bind(sp)
	sw.Pipeline = PipelineFunc(func(ctx *Context) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic emitting to invalid port")
			}
		}()
		ctx.Emit(9, ctx.Frame)
	})
	sw.Receive(sp, frameBetween(h, h, 100))
	n.Engine.Run()
}

func TestSRAMBudget(t *testing.T) {
	s := NewSRAMBudget(1000)
	if err := s.Alloc("a", 600); err != nil {
		t.Fatal(err)
	}
	if err := s.Alloc("b", 500); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if s.Used() != 600 || s.Remaining() != 400 {
		t.Fatalf("used/rem = %d/%d", s.Used(), s.Remaining())
	}
	s.Free("a", 600)
	if s.Used() != 0 {
		t.Fatal("free did not release")
	}
	if err := s.Alloc("c", -1); err == nil {
		t.Fatal("negative allocation accepted")
	}
	s.MustAlloc("d", 100)
	if s.Allocations()["d"] != 100 {
		t.Fatal("allocations map wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustAlloc should panic on exhaustion")
		}
	}()
	s.MustAlloc("e", 10000)
}

func TestExactTable(t *testing.T) {
	s := NewSRAMBudget(1 << 20)
	tab, err := NewExactTable[uint32, string](s, "t", 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(2, "b"); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(3, "c"); err == nil {
		t.Fatal("full table accepted insert")
	}
	if err := tab.Insert(1, "a2"); err != nil {
		t.Fatal("replace of existing entry rejected")
	}
	if v, ok := tab.Lookup(1); !ok || v != "a2" {
		t.Fatalf("lookup = %q,%v", v, ok)
	}
	if _, ok := tab.Lookup(9); ok {
		t.Fatal("phantom hit")
	}
	if tab.Hits != 1 || tab.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", tab.Hits, tab.Misses)
	}
	if tab.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", tab.HitRate())
	}
	tab.Delete(1)
	if tab.Len() != 1 {
		t.Fatalf("len = %d", tab.Len())
	}
	if tab.Capacity() != 2 {
		t.Fatalf("capacity = %d", tab.Capacity())
	}
}

func TestExactTableSRAMExhaustion(t *testing.T) {
	s := NewSRAMBudget(100)
	if _, err := NewExactTable[int, int](s, "big", 1000, 16); err == nil {
		t.Fatal("table larger than SRAM accepted")
	}
}

func TestCacheTableFIFOEviction(t *testing.T) {
	s := NewSRAMBudget(1 << 20)
	c, err := NewCacheTable[int, int](s, "cache", 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(1, 10)
	c.Put(2, 20)
	c.Put(3, 30)
	c.Put(4, 40) // evicts 1
	if _, ok := c.Lookup(1); ok {
		t.Fatal("oldest entry not evicted")
	}
	if v, ok := c.Lookup(4); !ok || v != 40 {
		t.Fatal("new entry missing")
	}
	if c.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Evictions)
	}
	// Updating an existing key must not evict.
	c.Put(4, 44)
	if c.Evictions != 1 {
		t.Fatal("update caused eviction")
	}
	if v, _ := c.Lookup(4); v != 44 {
		t.Fatal("update lost")
	}
}

func TestRegisterArray(t *testing.T) {
	s := NewSRAMBudget(1 << 10)
	r, err := NewRegisterArray(s, "regs", 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Used() != 32 {
		t.Fatalf("SRAM used = %d, want 32", s.Used())
	}
	r.Set(0, 7)
	if r.Get(0) != 7 {
		t.Fatal("set/get broken")
	}
	if got := r.Add(0, 3); got != 10 {
		t.Fatalf("add = %d", got)
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestParseErrorCounted(t *testing.T) {
	n := netsim.New(1)
	sw := New("tor", n.Engine, Config{})
	h := netsim.NewHost("h", 1)
	sp, _ := n.Connect(sw, h, netsim.Link40G())
	sw.Bind(sp)
	dropped := false
	sw.Pipeline = PipelineFunc(func(ctx *Context) {
		if ctx.Pkt == nil && ctx.ParseErr != nil {
			dropped = true
		}
		ctx.Drop()
	})
	// Runt frame, pooled: the switch recycles whatever it receives, and the
	// package leak check audits the pool ledger.
	runt := wire.DefaultPool.Get(3)
	copy(runt, []byte{1, 2, 3})
	sw.Receive(sp, runt)
	n.Engine.Run()
	if sw.Stats.ParseErrors != 1 || !dropped {
		t.Fatalf("parse errors = %d, handler saw error = %v", sw.Stats.ParseErrors, dropped)
	}
}

func TestL2SRAMExhaustionFails(t *testing.T) {
	n := netsim.New(1)
	sw := New("tor", n.Engine, Config{SRAMBytes: 1024})
	if _, err := NewL2Pipeline(sw, 1<<20); err == nil {
		t.Fatal("oversized FIB accepted")
	}
}

func TestPFCPausesEgress(t *testing.T) {
	n, sw, hosts := testbed(t, 2, Config{})
	// Queue three frames toward host 1, then pause that port.
	for i := 0; i < 3; i++ {
		sw.Receive(sw.Port(0), frameBetween(hosts[0], hosts[1], 1000))
	}
	pause := wire.BuildPFC(hosts[1].MAC, 0xFFFF)
	sw.Receive(sw.Port(1), pause)
	n.Engine.RunFor(20 * sim.Microsecond)
	if hosts[1].Received > 1 {
		t.Fatalf("paused port delivered %d frames", hosts[1].Received)
	}
	if sw.Stats.PFCFrames != 1 {
		t.Fatalf("PFC frames = %d", sw.Stats.PFCFrames)
	}
	// Resume: everything drains.
	sw.Receive(sw.Port(1), wire.BuildPFC(hosts[1].MAC, 0))
	n.Engine.Run()
	if hosts[1].Received != 3 {
		t.Fatalf("after resume delivered %d/3", hosts[1].Received)
	}
}

func TestPFCPauseExpires(t *testing.T) {
	n, sw, hosts := testbed(t, 2, Config{})
	sw.Receive(sw.Port(0), frameBetween(hosts[0], hosts[1], 1000))
	// Short pause: 100 quanta at 40G = 1.28 µs.
	sw.Receive(sw.Port(1), wire.BuildPFC(hosts[1].MAC, 100))
	n.Engine.Run()
	if hosts[1].Received != 1 {
		t.Fatal("frame never delivered after pause expiry")
	}
	if got := n.Engine.Now(); got < sim.Time(1280) {
		t.Fatalf("delivery at %v, before the pause expired", got)
	}
}

func TestPFCOnlyAffectsOnePort(t *testing.T) {
	n, sw, hosts := testbed(t, 3, Config{})
	sw.Receive(sw.Port(1), wire.BuildPFC(hosts[1].MAC, 0xFFFF))
	sw.Receive(sw.Port(0), frameBetween(hosts[0], hosts[2], 500))
	n.Engine.RunFor(10 * sim.Microsecond)
	if hosts[2].Received != 1 {
		t.Fatal("pause on port 1 blocked port 2")
	}
}

func TestECNMarkingAtThreshold(t *testing.T) {
	n, sw, hosts := testbed(t, 3, Config{ECNThresholdBytes: 5 * 1500})
	var ce, notCE int
	hosts[2].Handler = func(_ *netsim.Port, frame []byte) {
		var p wire.Packet
		if err := p.DecodeFromBytes(frame); err == nil && p.HasIPv4 {
			if p.IP.ECN == 3 {
				ce++
			} else {
				notCE++
			}
		}
	}
	for i := 0; i < 60; i++ {
		n.Ports(hosts[0])[0].Send(frameBetween(hosts[0], hosts[2], 1500))
		n.Ports(hosts[1])[0].Send(frameBetween(hosts[1], hosts[2], 1500))
	}
	n.Engine.Run()
	if ce == 0 {
		t.Fatal("no packets CE-marked despite deep queue")
	}
	if notCE == 0 {
		t.Fatal("every packet marked: threshold not honoured early on")
	}
	if sw.Stats.ECNMarked != int64(ce) {
		t.Fatalf("stats %d != observed %d", sw.Stats.ECNMarked, ce)
	}
	// Marked packets must still carry a valid IP checksum.
	var h wire.IPv4
	f := frameBetween(hosts[0], hosts[2], 100)
	defer wire.DefaultPool.Put(f)
	markECN(f)
	if err := h.DecodeFromBytes(f[wire.EthernetLen:]); err != nil {
		t.Fatal(err)
	}
	tmp := make([]byte, wire.IPv4Len)
	copy(tmp, f[wire.EthernetLen:])
	var h2 wire.IPv4
	_ = h2.DecodeFromBytes(tmp)
	h2.Put(tmp)
	for i := range tmp {
		if tmp[i] != f[wire.EthernetLen+i] {
			t.Fatal("checksum stale after ECN mark")
		}
	}
}

func TestECNMarkingDisabledByDefault(t *testing.T) {
	n, sw, hosts := testbed(t, 3, Config{})
	for i := 0; i < 60; i++ {
		n.Ports(hosts[0])[0].Send(frameBetween(hosts[0], hosts[2], 1500))
		n.Ports(hosts[1])[0].Send(frameBetween(hosts[1], hosts[2], 1500))
	}
	n.Engine.Run()
	if sw.Stats.ECNMarked != 0 {
		t.Fatalf("marked %d with ECN disabled", sw.Stats.ECNMarked)
	}
}

func TestMarkECNNonIPv4(t *testing.T) {
	frame := make([]byte, 64)
	var eth wire.Ethernet
	eth.EtherType = wire.EtherTypeTest
	eth.Put(frame)
	if markECN(frame) {
		t.Fatal("marked a non-IP frame")
	}
	if markECN([]byte{1, 2, 3}) {
		t.Fatal("marked a runt frame")
	}
}

func TestRDMAPriorityQueue(t *testing.T) {
	// Fill a port's queue with best-effort frames, then enqueue one RoCE
	// frame: with RDMAPriority it must depart before the backlog.
	n := netsim.New(1)
	sw := New("tor", n.Engine, Config{RDMAPriority: true})
	h := netsim.NewHost("h", 1)
	src := netsim.NewHost("src", 2)
	sp, _ := n.Connect(sw, h, netsim.Link40G())
	sw.Bind(sp)
	sw.Pipeline = PipelineFunc(func(ctx *Context) { ctx.Emit(0, ctx.Frame) })

	var order []string
	h.Handler = func(_ *netsim.Port, frame []byte) {
		if isRoCEFrame(frame) {
			order = append(order, "rdma")
		} else {
			order = append(order, "data")
		}
	}
	for i := 0; i < 10; i++ {
		sw.Receive(sp, frameBetween(src, h, 1500))
	}
	roce := wire.BuildFetchAdd(&wire.RoCEParams{
		SrcMAC: src.MAC, DstMAC: h.MAC,
		SrcIP: src.IP, DstIP: h.IP, DestQP: 1,
	}, 0, 1, 1)
	sw.Receive(sp, roce)
	n.Engine.Run()
	if len(order) != 11 {
		t.Fatalf("delivered %d/11", len(order))
	}
	pos := -1
	for i, kind := range order {
		if kind == "rdma" {
			pos = i
		}
	}
	// The RoCE frame arrived last but must overtake most of the backlog
	// (it can't preempt the frame already serializing).
	if pos > 2 {
		t.Fatalf("RDMA frame delivered at position %d of 11: no priority", pos)
	}
}

func TestRDMAPriorityOffIsFIFO(t *testing.T) {
	n := netsim.New(1)
	sw := New("tor", n.Engine, Config{})
	h := netsim.NewHost("h", 1)
	src := netsim.NewHost("src", 2)
	sp, _ := n.Connect(sw, h, netsim.Link40G())
	sw.Bind(sp)
	sw.Pipeline = PipelineFunc(func(ctx *Context) { ctx.Emit(0, ctx.Frame) })
	var order []string
	h.Handler = func(_ *netsim.Port, frame []byte) {
		if isRoCEFrame(frame) {
			order = append(order, "rdma")
		} else {
			order = append(order, "data")
		}
	}
	for i := 0; i < 5; i++ {
		sw.Receive(sp, frameBetween(src, h, 1500))
	}
	roce := wire.BuildFetchAdd(&wire.RoCEParams{
		SrcMAC: src.MAC, DstMAC: h.MAC,
		SrcIP: src.IP, DstIP: h.IP, DestQP: 1,
	}, 0, 1, 1)
	sw.Receive(sp, roce)
	n.Engine.Run()
	if order[len(order)-1] != "rdma" {
		t.Fatalf("FIFO violated without priority: %v", order)
	}
}

func TestIsRoCEFrameClassification(t *testing.T) {
	roce2 := wire.BuildReadRequest(&wire.RoCEParams{DestQP: 1}, 0, 1, 8)
	defer wire.DefaultPool.Put(roce2)
	if !isRoCEFrame(roce2) {
		t.Fatal("v2 frame not classified")
	}
	p1 := &wire.RoCEParams{DestQP: 1, Version: wire.RoCEv1}
	roce1 := wire.BuildReadRequest(p1, 0, 1, 8)
	defer wire.DefaultPool.Put(roce1)
	if !isRoCEFrame(roce1) {
		t.Fatal("v1 frame not classified")
	}
	data := wire.BuildDataFrame(wire.MACFromUint64(1), wire.MACFromUint64(2),
		wire.IP4{1, 1, 1, 1}, wire.IP4{2, 2, 2, 2}, 1, 4791, 100, nil)
	defer wire.DefaultPool.Put(data)
	if !isRoCEFrame(data) {
		t.Fatal("UDP/4791 should classify as RoCE (port-based classifier)")
	}
	other := wire.BuildDataFrame(wire.MACFromUint64(1), wire.MACFromUint64(2),
		wire.IP4{1, 1, 1, 1}, wire.IP4{2, 2, 2, 2}, 1, 80, 100, nil)
	defer wire.DefaultPool.Put(other)
	if isRoCEFrame(other) {
		t.Fatal("plain UDP classified as RoCE")
	}
}
