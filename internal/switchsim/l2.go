package switchsim

import "gem/internal/wire"

// L2Pipeline is the paper's baseline "simple P4 implementation of an L2
// switch without doing anything special": exact match on destination MAC,
// flood on miss.
type L2Pipeline struct {
	FIB *ExactTable[wire.MAC, int]
}

// NewL2Pipeline allocates the forwarding table (capacity MACs) from the
// switch's SRAM budget.
func NewL2Pipeline(sw *Switch, capacity int) (*L2Pipeline, error) {
	// 6B MAC + 2B port + overhead ≈ 16B/entry, the usual FIB cost.
	fib, err := NewExactTable[wire.MAC, int](sw.SRAM, "l2-fib", capacity, 16)
	if err != nil {
		return nil, err
	}
	return &L2Pipeline{FIB: fib}, nil
}

// Learn installs a static MAC→port mapping (control-plane action).
func (l *L2Pipeline) Learn(mac wire.MAC, port int) error { return l.FIB.Insert(mac, port) }

// Ingress implements Pipeline.
func (l *L2Pipeline) Ingress(ctx *Context) {
	if ctx.Pkt == nil {
		ctx.Drop()
		return
	}
	if out, ok := l.FIB.Lookup(ctx.Pkt.Eth.Dst); ok {
		if out == ctx.InPort {
			ctx.Drop() // never hairpin back out the ingress port
			return
		}
		ctx.Emit(out, ctx.Frame)
		return
	}
	// Flood on miss. Emit transfers ownership of its buffer to the traffic
	// manager, which recycles it independently per port, so clones must be
	// distinct buffers: every flooded port but the last gets a pooled copy
	// and only the last gets the original. Copies are cut before the
	// original is emitted so a tail drop cannot recycle the source
	// mid-flood.
	last := -1
	for p := ctx.Switch().NumPorts() - 1; p >= 0; p-- {
		if p != ctx.InPort {
			last = p
			break
		}
	}
	if last < 0 {
		return // no eligible egress port; the switch recycles the frame
	}
	for p := 0; p <= last; p++ {
		if p == ctx.InPort {
			continue
		}
		f := ctx.Frame
		if p != last {
			f = wire.DefaultPool.Get(len(ctx.Frame))
			copy(f, ctx.Frame)
		}
		ctx.Emit(p, f)
	}
}
