package switchsim

import "fmt"

// SRAMBudget models the scarce on-chip memory that motivates the paper:
// tables and register arrays must allocate from it up front (as P4 objects
// do at compile time), and exceeding it fails loudly.
type SRAMBudget struct {
	Total  int
	used   int
	allocs map[string]int
}

// NewSRAMBudget returns a budget of total bytes.
func NewSRAMBudget(total int) *SRAMBudget {
	return &SRAMBudget{Total: total, allocs: make(map[string]int)}
}

// Alloc reserves n bytes under name. It returns an error when the budget
// would be exceeded — the switch-memory wall the paper is about.
func (s *SRAMBudget) Alloc(name string, n int) error {
	if n < 0 {
		return fmt.Errorf("switchsim: negative SRAM allocation %d for %s", n, name)
	}
	if s.used+n > s.Total {
		return fmt.Errorf("switchsim: SRAM exhausted: %s needs %d bytes, %d of %d free",
			name, n, s.Total-s.used, s.Total)
	}
	s.used += n
	s.allocs[name] += n
	return nil
}

// MustAlloc is Alloc that panics, for fixed infrastructure the switch
// program cannot run without.
func (s *SRAMBudget) MustAlloc(name string, n int) {
	if err := s.Alloc(name, n); err != nil {
		panic(err)
	}
}

// Free releases n bytes previously allocated under name.
func (s *SRAMBudget) Free(name string, n int) {
	s.used -= n
	s.allocs[name] -= n
	if s.allocs[name] <= 0 {
		delete(s.allocs, name)
	}
}

// Used reports allocated bytes.
func (s *SRAMBudget) Used() int { return s.used }

// Free bytes remaining.
func (s *SRAMBudget) Remaining() int { return s.Total - s.used }

// Allocations returns a copy of the per-object allocation map.
func (s *SRAMBudget) Allocations() map[string]int {
	out := make(map[string]int, len(s.allocs))
	//gem:deterministic — map-to-map copy; insertion order is irrelevant
	for k, v := range s.allocs {
		out[k] = v
	}
	return out
}
