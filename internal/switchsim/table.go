package switchsim

import "fmt"

// ExactTable is an exact-match match-action table holding values of type V
// keyed by K. Capacity is fixed at creation and its SRAM is reserved up
// front, like a P4 table.
type ExactTable[K comparable, V any] struct {
	name     string
	capacity int
	entrySz  int
	m        map[K]V
	sram     *SRAMBudget

	// Hits and Misses count lookups for the harnesses.
	Hits   int64
	Misses int64
}

// NewExactTable allocates a table of capacity entries of entryBytes each
// from the budget.
func NewExactTable[K comparable, V any](sram *SRAMBudget, name string, capacity, entryBytes int) (*ExactTable[K, V], error) {
	if err := sram.Alloc(name, capacity*entryBytes); err != nil {
		return nil, err
	}
	return &ExactTable[K, V]{
		name: name, capacity: capacity, entrySz: entryBytes,
		m: make(map[K]V, capacity), sram: sram,
	}, nil
}

// Lookup returns the value for key and whether it was present, updating the
// hit/miss counters.
func (t *ExactTable[K, V]) Lookup(key K) (V, bool) {
	v, ok := t.m[key]
	if ok {
		t.Hits++
	} else {
		t.Misses++
	}
	return v, ok
}

// Insert adds or replaces an entry. It returns an error when the table is
// full (the condition that forces the slow path in the motivating systems).
func (t *ExactTable[K, V]) Insert(key K, v V) error {
	if _, exists := t.m[key]; !exists && len(t.m) >= t.capacity {
		return fmt.Errorf("switchsim: table %s full (%d entries)", t.name, t.capacity)
	}
	t.m[key] = v
	return nil
}

// Delete removes an entry if present.
func (t *ExactTable[K, V]) Delete(key K) { delete(t.m, key) }

// Len reports the number of installed entries.
func (t *ExactTable[K, V]) Len() int { return len(t.m) }

// Capacity reports the fixed entry capacity.
func (t *ExactTable[K, V]) Capacity() int { return t.capacity }

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (t *ExactTable[K, V]) HitRate() float64 {
	total := t.Hits + t.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Hits) / float64(total)
}

// CacheTable is an ExactTable with FIFO eviction: inserting into a full
// table evicts the oldest entry instead of failing. The lookup-table
// primitive uses one as its local SRAM cache.
type CacheTable[K comparable, V any] struct {
	*ExactTable[K, V]
	order []K

	Evictions int64
}

// NewCacheTable allocates a FIFO-evicting cache from the budget.
func NewCacheTable[K comparable, V any](sram *SRAMBudget, name string, capacity, entryBytes int) (*CacheTable[K, V], error) {
	t, err := NewExactTable[K, V](sram, name, capacity, entryBytes)
	if err != nil {
		return nil, err
	}
	return &CacheTable[K, V]{ExactTable: t}, nil
}

// Put inserts key→v, evicting the oldest entry when full.
func (c *CacheTable[K, V]) Put(key K, v V) {
	if _, exists := c.m[key]; exists {
		c.m[key] = v
		return
	}
	if len(c.m) >= c.capacity && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.m, victim)
		c.Evictions++
	}
	c.m[key] = v
	c.order = append(c.order, key)
}

// RegisterArray is a stateful array of 64-bit registers, the P4 object the
// primitives keep counters, ring pointers and pending state in.
type RegisterArray struct {
	name string
	regs []uint64
}

// NewRegisterArray allocates n 64-bit registers from the budget.
func NewRegisterArray(sram *SRAMBudget, name string, n int) (*RegisterArray, error) {
	if err := sram.Alloc(name, n*8); err != nil {
		return nil, err
	}
	return &RegisterArray{name: name, regs: make([]uint64, n)}, nil
}

// Get returns register i.
func (r *RegisterArray) Get(i int) uint64 { return r.regs[i] }

// Set stores v into register i.
func (r *RegisterArray) Set(i int, v uint64) { r.regs[i] = v }

// Add adds delta to register i and returns the new value.
func (r *RegisterArray) Add(i int, delta uint64) uint64 {
	r.regs[i] += delta
	return r.regs[i]
}

// Len reports the register count.
func (r *RegisterArray) Len() int { return len(r.regs) }
