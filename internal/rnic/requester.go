package rnic

import (
	"fmt"

	"gem/internal/core/verbs"
	"gem/internal/fifo"
	"gem/internal/sim"
	"gem/internal/wire"
)

// Requester is the host-side verbs engine: it turns posted work requests
// into RoCEv2 packets, paces them under a window, and completes them when
// ACKs / READ responses / atomic ACKs return. It exists to run the paper's
// *baseline*: native server-to-server RDMA (§5, "As a baseline, we test
// native server-to-server RDMA WRITE and READ throughput").
//
// Loss recovery is go-back-N, the scheme RC RNICs of the CX-3 era used.
type Requester struct {
	nic *NIC

	localQPN uint32
	peerMAC  wire.MAC
	peerIP   wire.IP4
	peerQPN  uint32

	sPSN     uint32 // next PSN to assign
	ackedPSN uint32 // cumulative: all PSNs before this are acknowledged
	window   int    // max unacknowledged packets in flight

	pending  fifo.Queue[*workRequest] // posted, not fully transmitted
	inflight []*sentPacket            // transmitted, not acknowledged

	timeout sim.Duration
	timer   *sim.Event

	// Completions and Retransmits are observable for the harnesses.
	Completions int64
	Retransmits int64
}

type workRequest struct {
	opcode   wire.Opcode // WriteOnly / ReadRequest / FetchAdd (class)
	va       uint64
	rkey     uint32
	data     []byte // write payload
	length   int    // read length
	add      uint64 // fetch-add operand / CAS swap value
	compare  uint64 // CAS compare value
	firstPSN uint32
	lastPSN  uint32 // last PSN of the message (incl. read response span)

	// READ reassembly.
	got      int
	buf      []byte
	done     bool
	onWrite  func()
	onRead   func([]byte)
	onAtomic func(orig uint64)
}

// sentPacket retains the master copy of a transmitted packet for go-back-N
// retransmission. The master never enters the fabric: every (re)send puts a
// pooled copy on the wire, and the master is recycled when the packet
// retires (ack/completion).
type sentPacket struct {
	psn   uint32
	frame []byte
	wr    *workRequest
}

// NewRequester wires a requester engine to the NIC, targeting the given
// peer queue pair. window is the packet window (0 = 256). Only one
// requester per NIC is supported (enough for the baselines).
func (n *NIC) NewRequester(peerMAC wire.MAC, peerIP wire.IP4, peerQPN uint32, window int) *Requester {
	if window <= 0 {
		window = 256
	}
	r := &Requester{
		nic:      n,
		localQPN: n.nextQPN,
		peerMAC:  peerMAC, peerIP: peerIP, peerQPN: peerQPN,
		window:  window,
		timeout: 100 * sim.Microsecond,
	}
	n.nextQPN++
	n.req = r
	return r
}

// PostWrite posts an RDMA WRITE of data to va under rkey; onDone (optional)
// fires when the write is acknowledged.
func (r *Requester) PostWrite(va uint64, rkey uint32, data []byte, onDone func()) {
	r.post(&workRequest{opcode: wire.OpWriteOnly, va: va, rkey: rkey,
		data: append([]byte(nil), data...), onWrite: onDone}) //gem:alloc-ok control-plane post copies caller data
}

// PostRead posts an RDMA READ of length bytes from va under rkey; onDone
// receives the data.
func (r *Requester) PostRead(va uint64, rkey uint32, length int, onDone func([]byte)) {
	r.post(&workRequest{opcode: wire.OpReadRequest, va: va, rkey: rkey,
		length: length, onRead: onDone})
}

// PostFetchAdd posts an atomic Fetch-and-Add; onDone receives the original
// value of the remote word.
func (r *Requester) PostFetchAdd(va uint64, rkey uint32, add uint64, onDone func(uint64)) {
	r.post(&workRequest{opcode: wire.OpFetchAdd, va: va, rkey: rkey,
		add: add, onAtomic: onDone})
}

// PostCompareSwap posts an atomic Compare-and-Swap; onDone receives the
// original value (the swap happened iff it equals compare).
func (r *Requester) PostCompareSwap(va uint64, rkey uint32, compare, swap uint64, onDone func(uint64)) {
	r.post(&workRequest{opcode: wire.OpCompareSwap, va: va, rkey: rkey,
		compare: compare, add: swap, onAtomic: onDone})
}

func (r *Requester) post(wr *workRequest) {
	r.pending.Push(wr)
	r.pump()
}

// OutstandingPackets reports the current in-flight packet count.
func (r *Requester) OutstandingPackets() int { return len(r.inflight) }

// pump transmits pending work while window space remains.
func (r *Requester) pump() {
	for r.pending.Len() > 0 && len(r.inflight) < r.window {
		if !r.transmit(r.pending.Peek()) {
			return
		}
		r.pending.Pop()
	}
}

// transmit emits all packets of wr (WRITEs may be multi-packet). Returns
// false if the window cannot take the whole message yet.
func (r *Requester) transmit(wr *workRequest) bool {
	mtu := r.nic.Cfg.MTU
	switch wr.opcode {
	case wire.OpWriteOnly:
		pkts := (len(wr.data) + mtu - 1) / mtu
		if pkts < 1 {
			pkts = 1
		}
		if len(r.inflight)+pkts > r.window {
			return false
		}
		wr.firstPSN = r.sPSN
		wr.lastPSN = (r.sPSN + uint32(pkts) - 1) & verbs.PSNMask
		for i := 0; i < pkts; i++ {
			lo := i * mtu
			hi := lo + mtu
			if hi > len(wr.data) {
				hi = len(wr.data)
			}
			chunk := wr.data[lo:hi]
			p := r.params((r.sPSN+uint32(i))&verbs.PSNMask, i == pkts-1)
			var frame []byte
			switch {
			case pkts == 1:
				frame = wire.BuildWriteOnlyInto(wire.DefaultPool, &p, wr.va, wr.rkey, chunk)
			case i == 0:
				frame = wire.BuildWriteFirstInto(wire.DefaultPool, &p, wr.va, wr.rkey, uint32(len(wr.data)), chunk)
			case i == pkts-1:
				frame = wire.BuildWriteLastInto(wire.DefaultPool, &p, chunk)
			default:
				frame = wire.BuildWriteMiddleInto(wire.DefaultPool, &p, chunk)
			}
			r.send((r.sPSN+uint32(i))&verbs.PSNMask, frame, wr)
		}
		r.sPSN = (r.sPSN + uint32(pkts)) & verbs.PSNMask
	case wire.OpReadRequest:
		pkts := (wr.length + mtu - 1) / mtu
		if pkts < 1 {
			pkts = 1
		}
		wr.firstPSN = r.sPSN
		wr.lastPSN = (r.sPSN + uint32(pkts) - 1) & verbs.PSNMask
		wr.buf = make([]byte, wr.length)
		p := r.params(r.sPSN, true)
		frame := wire.BuildReadRequestInto(wire.DefaultPool, &p, wr.va, wr.rkey, uint32(wr.length))
		r.send(r.sPSN, frame, wr)
		r.sPSN = (r.sPSN + uint32(pkts)) & verbs.PSNMask
	case wire.OpFetchAdd, wire.OpCompareSwap:
		wr.firstPSN = r.sPSN
		wr.lastPSN = r.sPSN
		p := r.params(r.sPSN, true)
		var frame []byte
		if wr.opcode == wire.OpFetchAdd {
			frame = wire.BuildFetchAddInto(wire.DefaultPool, &p, wr.va, wr.rkey, wr.add)
		} else {
			frame = wire.BuildCompareSwapInto(wire.DefaultPool, &p, wr.va, wr.rkey, wr.compare, wr.add)
		}
		r.send(r.sPSN, frame, wr)
		r.sPSN = (r.sPSN + 1) & verbs.PSNMask
	default:
		panic(fmt.Sprintf("rnic: unsupported requester opcode %v", wr.opcode))
	}
	return true
}

func (r *Requester) params(psn uint32, ackReq bool) wire.RoCEParams {
	return wire.RoCEParams{
		SrcMAC: r.nic.MAC, DstMAC: r.peerMAC,
		SrcIP: r.nic.IP, DstIP: r.peerIP,
		UDPSrcPort: udpEntropy(r.localQPN),
		DestQP:     r.peerQPN, PSN: psn, AckReq: ackReq,
	}
}

// send stores frame as the in-flight master for go-back-N and puts a pooled
// copy on the wire; the requester owns the master until the PSN retires.
//
//gem:owns
func (r *Requester) send(psn uint32, frame []byte, wr *workRequest) {
	r.inflight = append(r.inflight, &sentPacket{psn: psn, frame: frame, wr: wr})
	r.sendCopy(frame)
	r.armTimer()
}

// sendCopy transmits a pooled copy of a retained master frame: the fabric
// owns (and recycles) what it is handed, so the master must never be sent.
func (r *Requester) sendCopy(frame []byte) {
	c := wire.DefaultPool.Get(len(frame))
	copy(c, frame)
	r.nic.port.Send(c)
}

func (r *Requester) armTimer() {
	if r.timer != nil {
		r.nic.engine.Cancel(r.timer)
	}
	if len(r.inflight) == 0 {
		r.timer = nil
		return
	}
	r.timer = r.nic.engine.Schedule(r.timeout, r.retransmit)
}

// retransmit implements go-back-N: resend every unacknowledged packet.
func (r *Requester) retransmit() {
	r.timer = nil
	for _, sp := range r.inflight {
		r.Retransmits++
		r.sendCopy(sp.frame)
	}
	r.armTimer()
}

// handleResponse consumes ACK / NAK / READ response / atomic ACK packets.
func (r *Requester) handleResponse(pkt *wire.Packet) {
	switch op := pkt.BTH.Opcode; {
	case op == wire.OpAcknowledge:
		if pkt.AETH.IsNak() {
			r.retransmit()
			return
		}
		r.ackThrough(pkt.BTH.PSN)
	case op.IsReadResponse():
		r.handleReadResponse(pkt)
	case op == wire.OpAtomicAcknowledge:
		r.handleAtomicAck(pkt)
	}
	r.pump()
	r.armTimer()
}

// ackThrough completes every in-flight WRITE packet with PSN <= acked
// (24-bit circular compare). READ and atomic requests are deliberately NOT
// retired by a cumulative ACK: the ACK proves they executed, but their
// response data may have been lost on the way back, and the requester must
// keep them armed for timeout retransmission until the response arrives.
func (r *Requester) ackThrough(acked uint32) {
	keep := r.inflight[:0]
	for _, sp := range r.inflight {
		if !psnAfter(sp.psn, acked) && sp.wr.opcode == wire.OpWriteOnly {
			if sp.psn == sp.wr.lastPSN && !sp.wr.done {
				sp.wr.done = true
				r.Completions++
				if sp.wr.onWrite != nil {
					sp.wr.onWrite()
				}
			}
			wire.DefaultPool.Put(sp.frame) // retired: master no longer needed
			continue
		}
		keep = append(keep, sp)
	}
	clearTail(r.inflight[len(keep):])
	r.inflight = keep
}

// clearTail nils the filtered-out tail slots so retired packets are not
// pinned by the backing array.
func clearTail(tail []*sentPacket) {
	for i := range tail {
		tail[i] = nil
	}
}

func (r *Requester) handleReadResponse(pkt *wire.Packet) {
	for _, sp := range r.inflight {
		wr := sp.wr
		if wr.opcode != wire.OpReadRequest || wr.done {
			continue
		}
		span := (wr.lastPSN - wr.firstPSN) & verbs.PSNMask
		off := (pkt.BTH.PSN - wr.firstPSN) & verbs.PSNMask
		if off > span {
			continue
		}
		lo := int(off) * r.nic.Cfg.MTU
		n := copy(wr.buf[lo:], pkt.Payload)
		wr.got += n
		if uint32(pkt.BTH.PSN) == wr.lastPSN && wr.got >= wr.length {
			wr.done = true
			r.Completions++
			r.dropInflight(wr)
			// A completed READ also acknowledges everything before it.
			r.ackThrough(wr.lastPSN)
			if wr.onRead != nil {
				wr.onRead(wr.buf)
			}
		}
		return
	}
}

func (r *Requester) handleAtomicAck(pkt *wire.Packet) {
	for _, sp := range r.inflight {
		wr := sp.wr
		if !wr.opcode.IsAtomic() || wr.done || sp.psn != pkt.BTH.PSN {
			continue
		}
		wr.done = true
		r.Completions++
		r.dropInflight(wr)
		r.ackThrough(wr.lastPSN)
		if wr.onAtomic != nil {
			wr.onAtomic(pkt.AtomicAck.OrigData)
		}
		return
	}
}

func (r *Requester) dropInflight(wr *workRequest) {
	keep := r.inflight[:0]
	for _, sp := range r.inflight {
		if sp.wr != wr {
			keep = append(keep, sp)
		} else {
			wire.DefaultPool.Put(sp.frame) // retired: master no longer needed
		}
	}
	clearTail(r.inflight[len(keep):])
	r.inflight = keep
}
