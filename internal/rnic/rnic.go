// Package rnic models a commodity RDMA NIC speaking RoCEv2, the device the
// paper's switch talks to: memory regions protected by rkeys, queue pairs
// with PSN state, and a one-sided-operation engine that executes RDMA
// WRITE / READ / atomic Fetch-and-Add entirely on the NIC — the host CPU is
// never involved, which is the property the paper's architecture rests on.
//
// The model is calibrated to a Mellanox ConnectX-3 Pro class 40 GbE part
// (the paper's testbed NIC): finite inbound processing capacity for WRITEs,
// finite READ-response generation rate, and a hard atomic-operation rate
// ceiling. Exceeding the ceilings overflows the receive ring and drops
// requests, reproducing the "RDMA requests were occasionally dropped at the
// NIC" behaviour the paper reports beyond 34.1 Gbps.
package rnic

import (
	"gem/internal/sim"
)

// Config holds the NIC's performance envelope and protocol parameters.
type Config struct {
	// MTU is the path MTU used to segment READ responses and requester
	// WRITEs, in bytes of RDMA payload per packet.
	MTU int
	// WritePayloadBps caps the rate at which inbound WRITE payload can be
	// committed to host memory (PCIe/DMA path), bits per second.
	WritePayloadBps float64
	// ReadPayloadBps caps the rate at which READ response payload can be
	// fetched from host memory, bits per second.
	ReadPayloadBps float64
	// AtomicOpsPerSec caps atomic (Fetch-and-Add / Compare-and-Swap)
	// execution; CX-3-class parts sustain on the order of 1e6/s.
	AtomicOpsPerSec float64
	// ProcessingDelay is the fixed per-operation latency through the NIC.
	ProcessingDelay sim.Duration
	// RxRing bounds the number of requests queued for execution; arrivals
	// beyond it are dropped (and counted), like a real NIC's RX ring.
	RxRing int
	// EnablePFC makes the NIC emit 802.1Qbb pause frames when an RX ring
	// nears capacity and resume frames when it drains — the §7 mitigation
	// for RDMA packet drops. Thresholds derive from RxRing (pause at 3/4,
	// resume at 1/4).
	EnablePFC bool
	// MaxOutstandingOps is the per-QP outstanding-operation capacity the
	// NIC advertises during channel setup (IB "responder resources"); the
	// controller copies it onto the channel as the default credit window.
	MaxOutstandingOps int
}

// DefaultConfig returns the CX-3 Pro-like calibration used by the
// experiments (see DESIGN.md §5 for the derivation from the paper's
// numbers).
func DefaultConfig() Config {
	return Config{
		MTU:               1024,
		WritePayloadBps:   34.5e9,
		ReadPayloadBps:    37.8e9,
		AtomicOpsPerSec:   1.29e6,
		ProcessingDelay:   600 * sim.Nanosecond,
		RxRing:            512,
		MaxOutstandingOps: 16,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.MTU == 0 {
		c.MTU = d.MTU
	}
	if c.WritePayloadBps == 0 {
		c.WritePayloadBps = d.WritePayloadBps
	}
	if c.ReadPayloadBps == 0 {
		c.ReadPayloadBps = d.ReadPayloadBps
	}
	if c.AtomicOpsPerSec == 0 {
		c.AtomicOpsPerSec = d.AtomicOpsPerSec
	}
	if c.ProcessingDelay == 0 {
		c.ProcessingDelay = d.ProcessingDelay
	}
	if c.RxRing == 0 {
		c.RxRing = d.RxRing
	}
	if c.MaxOutstandingOps == 0 {
		c.MaxOutstandingOps = d.MaxOutstandingOps
	}
}

// Region is a registered memory region: a chunk of the host's DRAM exposed
// for remote access under an rkey.
type Region struct {
	RKey uint32
	Base uint64 // virtual address of the first byte
	Data []byte // the backing "DRAM"
}

// Contains reports whether [va, va+n) lies inside the region.
func (r *Region) Contains(va uint64, n int) bool {
	if va < r.Base {
		return false
	}
	off := va - r.Base
	return off <= uint64(len(r.Data)) && uint64(n) <= uint64(len(r.Data))-off
}

// Slice returns the backing bytes for [va, va+n). Caller must have checked
// Contains.
func (r *Region) Slice(va uint64, n int) []byte {
	off := va - r.Base
	return r.Data[off : off+uint64(uint(n))]
}

// Stats aggregates the NIC's observable behaviour for the harnesses.
type Stats struct {
	ExecWrites      int64 // WRITE messages committed
	ExecReads       int64 // READ requests served
	ExecAtomics     int64 // atomics executed
	WriteBytes      int64 // payload bytes committed by WRITEs
	ReadBytes       int64 // payload bytes returned by READs
	RxRingDrops     int64 // requests dropped at a full RX ring
	AccessErrors    int64 // rkey/bounds failures (NAK remote access)
	SeqGaps         int64 // PSN gaps observed (lost requests upstream)
	DupRequests     int64 // stale duplicates discarded
	BadICRC         int64 // frames dropped for ICRC mismatch
	AcksSent        int64
	NaksSent        int64
	ResponsesSent   int64 // READ response + atomic ack packets
	MalformedFrames int64
	PFCPauses       int64 // pause frames emitted (EnablePFC)
	PFCResumes      int64 // resume frames emitted
	// DroppedWhileFailed counts frames that arrived at a crashed server.
	DroppedWhileFailed int64
}
