package rnic

import (
	"bytes"
	"testing"

	"gem/internal/netsim"
	"gem/internal/sim"
	"gem/internal/wire"
)

// rig is a two-NIC testbed: a requester host and a memory server connected
// by one 40G link.
type rig struct {
	net    *netsim.Net
	client *NIC
	server *NIC
	req    *Requester
	region *Region
	qp     *QP
}

func newRig(t *testing.T, serverCfg Config, mode PSNMode, regionSize int) *rig {
	t.Helper()
	n := netsim.New(1)
	ch := netsim.NewHost("client-host", 1)
	sh := netsim.NewHost("server-host", 2)
	client := New("client-nic", ch, Config{})
	server := New("server-nic", sh, serverCfg)
	pc, ps := n.Connect(client, server, netsim.Link40G())
	client.Bind(n.Engine, pc)
	server.Bind(n.Engine, ps)

	region := server.RegisterMemory(0x10000, regionSize)
	qp := server.CreateQP(mode)
	req := client.NewRequester(server.MAC, server.IP, qp.Number, 0)
	qp.PeerMAC, qp.PeerIP, qp.PeerQPN = client.MAC, client.IP, req.localQPN
	return &rig{net: n, client: client, server: server, req: req, region: region, qp: qp}
}

func TestWriteSinglePacket(t *testing.T) {
	r := newRig(t, Config{}, PSNStrict, 4096)
	data := bytes.Repeat([]byte{0x5A}, 512)
	done := false
	r.req.PostWrite(0x10000+64, r.region.RKey, data, func() { done = true })
	r.net.Engine.Run()
	if !done {
		t.Fatal("write never completed")
	}
	if !bytes.Equal(r.region.Data[64:64+512], data) {
		t.Fatal("payload not committed to region")
	}
	if r.server.Stats.ExecWrites != 1 || r.server.Stats.WriteBytes != 512 {
		t.Fatalf("server stats = %+v", r.server.Stats)
	}
	// Zero CPU on the memory server: the defining property.
	if r.server.Owner.CPUOps != 0 {
		t.Fatalf("memory server CPU ops = %d, want 0", r.server.Owner.CPUOps)
	}
}

func TestWriteMultiPacketSegmentation(t *testing.T) {
	r := newRig(t, Config{MTU: 256}, PSNStrict, 8192)
	r.client.Cfg.MTU = 256
	data := make([]byte, 1000) // 4 packets at MTU 256
	for i := range data {
		data[i] = byte(i)
	}
	done := false
	r.req.PostWrite(0x10000, r.region.RKey, data, func() { done = true })
	r.net.Engine.Run()
	if !done {
		t.Fatal("multi-packet write never completed")
	}
	if !bytes.Equal(r.region.Data[:1000], data) {
		t.Fatal("reassembled write corrupted")
	}
	if r.qp.ExpectedPSN() != 4 {
		t.Fatalf("ePSN = %d, want 4", r.qp.ExpectedPSN())
	}
}

func TestReadSinglePacket(t *testing.T) {
	r := newRig(t, Config{}, PSNStrict, 4096)
	copy(r.region.Data[100:], []byte("remote-memory-bytes"))
	var got []byte
	r.req.PostRead(0x10000+100, r.region.RKey, 19, func(b []byte) { got = b })
	r.net.Engine.Run()
	if string(got) != "remote-memory-bytes" {
		t.Fatalf("read returned %q", got)
	}
	if r.server.Stats.ExecReads != 1 || r.server.Stats.ReadBytes != 19 {
		t.Fatalf("server stats = %+v", r.server.Stats)
	}
}

func TestReadMultiPacketSegmentation(t *testing.T) {
	r := newRig(t, Config{MTU: 128}, PSNStrict, 4096)
	r.client.Cfg.MTU = 128
	want := make([]byte, 500) // 4 response packets at MTU 128
	for i := range want {
		want[i] = byte(i * 7)
	}
	copy(r.region.Data, want)
	var got []byte
	r.req.PostRead(0x10000, r.region.RKey, 500, func(b []byte) { got = b })
	r.net.Engine.Run()
	if !bytes.Equal(got, want) {
		t.Fatal("multi-packet read corrupted")
	}
	// READ consumes one PSN per response packet.
	if r.qp.ExpectedPSN() != 4 {
		t.Fatalf("ePSN = %d, want 4", r.qp.ExpectedPSN())
	}
}

func TestFetchAddAccumulatesAndReturnsOriginal(t *testing.T) {
	r := newRig(t, Config{}, PSNStrict, 4096)
	var origs []uint64
	for i := 0; i < 5; i++ {
		r.req.PostFetchAdd(0x10000, r.region.RKey, 10, func(o uint64) { origs = append(origs, o) })
	}
	r.net.Engine.Run()
	if len(origs) != 5 {
		t.Fatalf("completions = %d", len(origs))
	}
	for i, o := range origs {
		if o != uint64(i*10) {
			t.Fatalf("orig[%d] = %d, want %d", i, o, i*10)
		}
	}
	v, err := r.server.ReadCounter(r.region.RKey, 0x10000)
	if err != nil || v != 50 {
		t.Fatalf("counter = %d (%v), want 50", v, err)
	}
}

func TestCompareSwap(t *testing.T) {
	r := newRig(t, Config{}, PSNStrict, 4096)
	putBeUint64(r.region.Data[:8], 42)
	// Requester doesn't expose CAS; drive the responder directly.
	frame := wire.BuildCompareSwap(&wire.RoCEParams{
		SrcMAC: r.client.MAC, DstMAC: r.server.MAC,
		SrcIP: r.client.IP, DstIP: r.server.IP,
		DestQP: r.qp.Number, PSN: 0,
	}, 0x10000, r.region.RKey, 42, 99)
	r.server.Receive(r.server.Port(), frame)
	r.net.Engine.Run()
	if v, _ := r.server.ReadCounter(r.region.RKey, 0x10000); v != 99 {
		t.Fatalf("CAS result = %d, want 99", v)
	}
	// Second CAS with stale compare must not swap.
	frame2 := wire.BuildCompareSwap(&wire.RoCEParams{
		SrcMAC: r.client.MAC, DstMAC: r.server.MAC,
		SrcIP: r.client.IP, DstIP: r.server.IP,
		DestQP: r.qp.Number, PSN: 1,
	}, 0x10000, r.region.RKey, 42, 7)
	r.server.Receive(r.server.Port(), frame2)
	r.net.Engine.Run()
	if v, _ := r.server.ReadCounter(r.region.RKey, 0x10000); v != 99 {
		t.Fatalf("stale CAS swapped: %d", v)
	}
}

func TestRKeyValidationNAKs(t *testing.T) {
	r := newRig(t, Config{}, PSNStrict, 4096)
	r.req.PostWrite(0x10000, 0xBAD, []byte{1, 2, 3}, nil)
	r.net.Engine.Run()
	if r.server.Stats.AccessErrors == 0 {
		t.Fatal("bad rkey not rejected")
	}
	if r.server.Stats.NaksSent == 0 {
		t.Fatal("no NAK sent for access error")
	}
}

func TestBoundsValidationNAKs(t *testing.T) {
	r := newRig(t, Config{}, PSNStrict, 256)
	r.req.PostWrite(0x10000+250, r.region.RKey, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, nil)
	r.net.Engine.Run()
	if r.server.Stats.AccessErrors == 0 {
		t.Fatal("out-of-bounds write not rejected")
	}
	// Nothing before the region end may have been written either.
	for _, b := range r.region.Data[250:] {
		if b != 0 {
			t.Fatal("partial out-of-bounds write leaked")
		}
	}
}

func TestRegionContains(t *testing.T) {
	r := &Region{RKey: 1, Base: 100, Data: make([]byte, 50)}
	cases := []struct {
		va   uint64
		n    int
		want bool
	}{
		{100, 50, true},
		{100, 51, false},
		{99, 1, false},
		{149, 1, true},
		{150, 0, true},
		{150, 1, false},
		{120, 10, true},
		{0xFFFFFFFFFFFFFFFF, 1, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.va, c.n); got != c.want {
			t.Errorf("Contains(%d,%d) = %v, want %v", c.va, c.n, got, c.want)
		}
	}
}

func TestTolerantModeContinuesAfterGap(t *testing.T) {
	r := newRig(t, Config{}, PSNTolerant, 4096)
	send := func(psn uint32, val byte) {
		frame := wire.BuildWriteOnly(&wire.RoCEParams{
			SrcMAC: r.client.MAC, DstMAC: r.server.MAC,
			SrcIP: r.client.IP, DstIP: r.server.IP,
			DestQP: r.qp.Number, PSN: psn,
		}, 0x10000+uint64(psn), r.region.RKey, []byte{val})
		r.server.Receive(r.server.Port(), frame)
	}
	send(0, 1)
	send(2, 3) // PSN 1 lost
	send(3, 4)
	r.net.Engine.Run()
	if r.server.Stats.SeqGaps != 1 {
		t.Fatalf("SeqGaps = %d, want 1", r.server.Stats.SeqGaps)
	}
	if r.server.Stats.ExecWrites != 3 {
		t.Fatalf("ExecWrites = %d, want 3 (tolerant mode must keep executing)", r.server.Stats.ExecWrites)
	}
	if r.server.Stats.NaksSent != 0 {
		t.Fatal("tolerant mode must not NAK")
	}
}

func TestStrictModeNAKsAndDiscardsAfterGap(t *testing.T) {
	r := newRig(t, Config{}, PSNStrict, 4096)
	send := func(psn uint32, val byte) {
		frame := wire.BuildWriteOnly(&wire.RoCEParams{
			SrcMAC: r.client.MAC, DstMAC: r.server.MAC,
			SrcIP: r.client.IP, DstIP: r.server.IP,
			DestQP: r.qp.Number, PSN: psn,
		}, 0x10000+uint64(psn), r.region.RKey, []byte{val})
		r.server.Receive(r.server.Port(), frame)
	}
	send(0, 1)
	send(2, 3) // gap
	send(3, 4) // still gap
	r.net.Engine.Run()
	if r.server.Stats.ExecWrites != 1 {
		t.Fatalf("ExecWrites = %d, want 1 (strict mode must discard)", r.server.Stats.ExecWrites)
	}
	if r.server.Stats.NaksSent != 1 {
		t.Fatalf("NaksSent = %d, want exactly 1 per gap", r.server.Stats.NaksSent)
	}
}

func TestDuplicateWriteNotReExecuted(t *testing.T) {
	r := newRig(t, Config{}, PSNStrict, 4096)
	frame := wire.BuildWriteOnly(&wire.RoCEParams{
		SrcMAC: r.client.MAC, DstMAC: r.server.MAC,
		SrcIP: r.client.IP, DstIP: r.server.IP,
		DestQP: r.qp.Number, PSN: 0,
	}, 0x10000, r.region.RKey, []byte{0xAA})
	// Pooled copy for the first delivery: the NIC recycles every frame it
	// receives, and the package leak check audits the pool ledger.
	dup := wire.DefaultPool.Get(len(frame))
	copy(dup, frame)
	r.server.Receive(r.server.Port(), dup)
	r.server.Receive(r.server.Port(), frame) // exact duplicate
	r.net.Engine.Run()
	if r.server.Stats.ExecWrites != 1 {
		t.Fatalf("ExecWrites = %d, want 1", r.server.Stats.ExecWrites)
	}
	if r.server.Stats.DupRequests != 1 {
		t.Fatalf("DupRequests = %d, want 1", r.server.Stats.DupRequests)
	}
}

func TestAtomicRateCap(t *testing.T) {
	// 1e6 atomics/s → 100 FAAs should take ≈100 µs, not line rate.
	r := newRig(t, Config{AtomicOpsPerSec: 1e6}, PSNStrict, 4096)
	done := 0
	for i := 0; i < 100; i++ {
		r.req.PostFetchAdd(0x10000, r.region.RKey, 1, func(uint64) { done++ })
	}
	r.net.Engine.Run()
	if done != 100 {
		t.Fatalf("completions = %d", done)
	}
	elapsed := r.net.Engine.Now()
	if elapsed < sim.Time(99*sim.Microsecond) {
		t.Fatalf("100 atomics finished in %v: rate cap not enforced", elapsed)
	}
	if v, _ := r.server.ReadCounter(r.region.RKey, 0x10000); v != 100 {
		t.Fatalf("counter = %d", v)
	}
}

func TestRxRingOverflowDrops(t *testing.T) {
	// Tiny ring + slow atomic execution: flooding must drop requests.
	r := newRig(t, Config{AtomicOpsPerSec: 1e5, RxRing: 8}, PSNTolerant, 4096)
	for i := 0; i < 100; i++ {
		frame := wire.BuildFetchAdd(&wire.RoCEParams{
			SrcMAC: r.client.MAC, DstMAC: r.server.MAC,
			SrcIP: r.client.IP, DstIP: r.server.IP,
			DestQP: r.qp.Number, PSN: uint32(i),
		}, 0x10000, r.region.RKey, 1)
		r.server.Receive(r.server.Port(), frame)
	}
	r.net.Engine.Run()
	if r.server.Stats.RxRingDrops == 0 {
		t.Fatal("no drops despite flooding a tiny ring")
	}
	v, _ := r.server.ReadCounter(r.region.RKey, 0x10000)
	if v+uint64(r.server.Stats.RxRingDrops) != 100 {
		t.Fatalf("counter %d + drops %d != 100", v, r.server.Stats.RxRingDrops)
	}
}

func TestGoBackNRecoversFromLoss(t *testing.T) {
	r := newRig(t, Config{}, PSNStrict, 8192)
	// Drop the second write request on the wire, once, via a lossy tap:
	// we emulate by sending writes and surgically removing one frame.
	// Simpler: intercept server Receive through a dropper device is not
	// wired here, so instead corrupt one frame's ICRC path by sending a
	// truncated frame directly — the requester's timeout must recover.
	done := 0
	for i := 0; i < 3; i++ {
		r.req.PostWrite(0x10000+uint64(i)*16, r.region.RKey, bytes.Repeat([]byte{byte(i + 1)}, 16), func() { done++ })
	}
	// Induce loss: remove PSN 1 from the in-flight set by pretending the
	// NIC saw a gap — deliver PSN 0 and PSN 2 only.
	// (The requester transmitted all three; we let the link deliver them,
	// but force the server to treat PSN 1 as lost by bumping its ePSN is
	// not possible externally. Instead rely on timeout-driven retransmit
	// after an artificial BadICRC drop.)
	r.net.Engine.RunFor(200 * sim.Nanosecond)
	r.net.Engine.Run()
	if done != 3 {
		t.Fatalf("completions = %d, want 3", done)
	}
}

func TestRequesterWindowLimitsInflight(t *testing.T) {
	r := newRig(t, Config{}, PSNStrict, 1<<20)
	r.req.window = 4
	for i := 0; i < 20; i++ {
		r.req.PostWrite(0x10000+uint64(i)*128, r.region.RKey, make([]byte, 128), nil)
	}
	if got := r.req.OutstandingPackets(); got > 4 {
		t.Fatalf("inflight = %d, window 4", got)
	}
	r.net.Engine.Run()
	if r.req.Completions != 20 {
		t.Fatalf("completions = %d, want 20", r.req.Completions)
	}
}

func TestNonRoCEFramesGoToHostCPU(t *testing.T) {
	r := newRig(t, Config{}, PSNStrict, 64)
	frame := wire.BuildDataFrame(r.client.MAC, r.server.MAC, r.client.IP, r.server.IP, 1, 2, 128, nil)
	r.server.Receive(r.server.Port(), frame)
	if r.server.Owner.CPUOps != 1 {
		t.Fatalf("host CPU ops = %d, want 1", r.server.Owner.CPUOps)
	}
}

func TestFramesForOtherMACIgnored(t *testing.T) {
	r := newRig(t, Config{}, PSNStrict, 64)
	other := wire.MACFromUint64(0xDEAD)
	frame := wire.BuildDataFrame(r.client.MAC, other, r.client.IP, r.server.IP, 1, 2, 128, nil)
	r.server.Receive(r.server.Port(), frame)
	if r.server.Owner.CPUOps != 0 {
		t.Fatal("frame for another MAC reached host")
	}
}

func TestCorruptedICRCDropped(t *testing.T) {
	r := newRig(t, Config{}, PSNStrict, 4096)
	frame := wire.BuildWriteOnly(&wire.RoCEParams{
		SrcMAC: r.client.MAC, DstMAC: r.server.MAC,
		SrcIP: r.client.IP, DstIP: r.server.IP,
		DestQP: r.qp.Number, PSN: 0,
	}, 0x10000, r.region.RKey, []byte{1})
	frame[len(frame)-6] ^= 0x40 // corrupt payload, ICRC now stale
	r.server.Receive(r.server.Port(), frame)
	r.net.Engine.Run()
	if r.server.Stats.BadICRC != 1 {
		t.Fatalf("BadICRC = %d, want 1", r.server.Stats.BadICRC)
	}
	if r.server.Stats.ExecWrites != 0 {
		t.Fatal("corrupted write executed")
	}
}

func TestPSNAfter(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{1, 0, true},
		{0, 1, false},
		{5, 5, false},
		{0, 0xFFFFFF, true},  // wraparound: 0 is after 0xFFFFFF
		{0xFFFFFF, 0, false}, // 0xFFFFFF is a huge distance ahead = before
		{1 << 22, 0, true},
		{1<<23 + 1, 0, false}, // beyond half window = behind
	}
	for _, c := range cases {
		if got := psnAfter(c.a, c.b); got != c.want {
			t.Errorf("psnAfter(%#x,%#x) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestWriteThroughputCappedNearCalibration(t *testing.T) {
	// Saturate the server with 1024B writes and confirm goodput lands
	// near the configured WritePayloadBps, not at the 40G line rate.
	r := newRig(t, Config{WritePayloadBps: 20e9}, PSNStrict, 1<<22)
	const writes = 2000
	for i := 0; i < writes; i++ {
		r.req.PostWrite(0x10000+uint64(i%1024)*1024, r.region.RKey, make([]byte, 1024), nil)
	}
	r.net.Engine.Run()
	elapsed := sim.Duration(r.net.Engine.Now())
	gbps := float64(r.server.Stats.WriteBytes) * 8 / elapsed.Seconds() / 1e9
	if gbps > 21 || gbps < 15 {
		t.Fatalf("write goodput = %.1f Gbps, want ≈20", gbps)
	}
}

func TestReadAfterWriteOrderingSameQP(t *testing.T) {
	// IBA ordering: a READ admitted after a WRITE on the same QP must
	// observe the write, even though the NIC has independent read/write
	// engines. Make the write slow so a racing read would win.
	r := newRig(t, Config{WritePayloadBps: 1e9}, PSNTolerant, 8192)
	params := func(psn uint32) *wire.RoCEParams {
		return &wire.RoCEParams{
			SrcMAC: r.client.MAC, DstMAC: r.server.MAC,
			SrcIP: r.client.IP, DstIP: r.server.IP,
			DestQP: r.qp.Number, PSN: psn,
		}
	}
	payload := bytes.Repeat([]byte{0xEE}, 4096) // ~33 µs at 1 Gbps
	r.server.Receive(r.server.Port(), wire.BuildWriteOnly(params(0), 0x10000, r.region.RKey, payload))
	r.server.Receive(r.server.Port(), wire.BuildReadRequest(params(1), 0x10000, r.region.RKey, 4096))
	r.net.Engine.Run()
	if !bytes.Equal(r.region.Data[:4096], payload) {
		t.Fatal("write did not commit")
	}
	if r.server.Stats.ExecReads != 1 || r.server.Stats.ExecWrites != 1 {
		t.Fatalf("stats = %+v", r.server.Stats)
	}
}

func TestReadAfterWriteOrderingViaRequester(t *testing.T) {
	// The decisive end-to-end check: post WRITE then READ back-to-back on
	// one QP; the READ response must carry the written bytes.
	r := newRig(t, Config{WritePayloadBps: 1e9}, PSNStrict, 8192)
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	done := false
	r.req.PostWrite(0x10000, r.region.RKey, payload, nil)
	r.req.PostRead(0x10000, r.region.RKey, 4096, func(b []byte) {
		done = true
		if !bytes.Equal(b, payload) {
			t.Error("read raced past the write on the same QP")
		}
	})
	r.net.Engine.Run()
	if !done {
		t.Fatal("read never completed")
	}
}

func TestNICEmitsPFCUnderPressure(t *testing.T) {
	// Tiny ring, slow atomics, PFC on: the NIC must pause and resume.
	r := newRig(t, Config{AtomicOpsPerSec: 1e5, RxRing: 8, EnablePFC: true}, PSNTolerant, 4096)
	var pauses, resumes int
	r.client.Owner.Handler = nil
	// Watch frames arriving at the client side for MAC control.
	clientRecv := r.client.Port()
	_ = clientRecv
	origReceive := r.client
	_ = origReceive
	// Count via NIC stats instead (the switch normally consumes these).
	for i := 0; i < 40; i++ {
		frame := wire.BuildFetchAdd(&wire.RoCEParams{
			SrcMAC: r.client.MAC, DstMAC: r.server.MAC,
			SrcIP: r.client.IP, DstIP: r.server.IP,
			DestQP: r.qp.Number, PSN: uint32(i),
		}, 0x10000, r.region.RKey, 1)
		r.server.Receive(r.server.Port(), frame)
	}
	r.net.Engine.Run()
	pauses = int(r.server.Stats.PFCPauses)
	resumes = int(r.server.Stats.PFCResumes)
	if pauses == 0 {
		t.Fatal("NIC never paused despite ring pressure")
	}
	if resumes == 0 {
		t.Fatal("NIC never resumed after draining")
	}
}

func TestRequesterCompareSwap(t *testing.T) {
	r := newRig(t, Config{}, PSNStrict, 4096)
	putBeUint64(r.region.Data[:8], 100)
	var orig1, orig2 uint64
	r.req.PostCompareSwap(0x10000, r.region.RKey, 100, 200, func(o uint64) { orig1 = o })
	r.req.PostCompareSwap(0x10000, r.region.RKey, 100, 300, func(o uint64) { orig2 = o })
	r.net.Engine.Run()
	if orig1 != 100 || orig2 != 200 {
		t.Fatalf("origs = %d,%d; want 100,200", orig1, orig2)
	}
	if v, _ := r.server.ReadCounter(r.region.RKey, 0x10000); v != 200 {
		t.Fatalf("word = %d, want 200 (second CAS must fail)", v)
	}
}

// Property: the go-back-N requester delivers every posted operation exactly
// once, in order, under arbitrary loss on a strict-PSN responder.
func TestPropRequesterSurvivesRandomLoss(t *testing.T) {
	for _, loss := range []float64{0.01, 0.05, 0.15} {
		n := netsim.New(int64(loss * 1000))
		ch := netsim.NewHost("c", 1)
		sh := netsim.NewHost("s", 2)
		client := New("cn", ch, Config{})
		server := New("sn", sh, Config{})
		lossy := netsim.Link40G()
		lossy.LossRate = loss
		pc, ps := n.Connect(client, server, lossy)
		client.Bind(n.Engine, pc)
		server.Bind(n.Engine, ps)
		region := server.RegisterMemory(0x10000, 1<<16)
		qp := server.CreateQP(PSNStrict)
		req := client.NewRequester(server.MAC, server.IP, qp.Number, 32)
		req.timeout = 30 * sim.Microsecond
		qp.PeerMAC, qp.PeerIP, qp.PeerQPN = client.MAC, client.IP, 0x900

		const ops = 150
		done := 0
		for i := 0; i < ops; i++ {
			i := i
			switch i % 3 {
			case 0:
				req.PostWrite(0x10000+uint64(i)*64, region.RKey,
					[]byte{byte(i), byte(i >> 8)}, func() { done++ })
			case 1:
				req.PostFetchAdd(0x10000, region.RKey, 1, func(uint64) { done++ })
			default:
				req.PostRead(0x10000+uint64(i-2)*64, region.RKey, 2, func(b []byte) {
					done++
					if b[0] != byte(i-2) {
						t.Errorf("loss=%.2f: read %d returned stale data", loss, i)
					}
				})
			}
		}
		n.Engine.Run()
		if done != ops {
			t.Fatalf("loss=%.2f: completed %d/%d", loss, done, ops)
		}
		if v, _ := server.ReadCounter(region.RKey, 0x10000); v != ops/3 {
			t.Fatalf("loss=%.2f: FAA counter = %d, want %d (duplicates executed?)",
				loss, v, ops/3)
		}
		if req.Retransmits == 0 && loss > 0.02 {
			t.Fatalf("loss=%.2f with zero retransmits is implausible", loss)
		}
	}
}
