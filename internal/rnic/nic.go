package rnic

import (
	"fmt"

	"gem/internal/core/verbs"
	"gem/internal/fifo"
	"gem/internal/netsim"
	"gem/internal/sim"
	"gem/internal/wire"
)

// PSNMode selects how a queue pair's responder treats packet sequence
// numbers.
type PSNMode int

const (
	// PSNTolerant (the default) accepts any PSN at or ahead of the
	// expected one, counting gaps but continuing. This is how the paper's
	// prototype channels must run: the switch does not retransmit, so a
	// strict responder would wedge after a single drop.
	PSNTolerant PSNMode = iota
	// PSNStrict follows the InfiniBand RC rules: a gap produces one NAK
	// and everything until the retransmission is discarded. Used by the
	// native host-to-host baseline and the switch reliability extension.
	PSNStrict
)

// QP is a queue pair endpoint on the NIC (responder side). The fields are
// fixed at creation by the channel controller.
type QP struct {
	Number  uint32
	Mode    PSNMode
	PeerMAC wire.MAC
	PeerIP  wire.IP4
	PeerQPN uint32
	// Version selects the response encapsulation (RoCEv2 default).
	Version wire.RoCEVersion

	ePSN     uint32 // next expected request PSN
	msn      uint32 // message sequence number
	nakked   bool   // strict mode: a NAK for the current gap was sent
	writeVA  uint64 // running cursor for multi-packet WRITEs
	writeKey uint32

	// Per-QP ordering (IBA: requests on a QP execute in order). Writes
	// and atomics pipeline on the write engine; a READ admitted after n
	// writes may not start until those n writes have committed.
	writeSeq  uint64 // writes/atomics admitted
	writeDone uint64 // writes/atomics committed

	// atomicReplay caches recent atomic results so duplicate requests
	// (retransmissions whose ACK was lost) replay instead of re-executing.
	// Real RNICs advertise a fixed "responder resources" depth; 64 covers
	// any requester window used here (requesters must not keep more
	// atomics outstanding than this, or replays can miss).
	atomicReplay [64]atomicResult
	atomicHead   int
}

type atomicResult struct {
	psn   uint32
	orig  uint64
	valid bool
}

func (q *QP) rememberAtomic(psn uint32, orig uint64) {
	q.atomicReplay[q.atomicHead] = atomicResult{psn: psn, orig: orig, valid: true}
	q.atomicHead = (q.atomicHead + 1) % len(q.atomicReplay)
}

func (q *QP) replayAtomic(psn uint32) (uint64, bool) {
	for _, r := range q.atomicReplay {
		if r.valid && r.psn == psn {
			return r.orig, true
		}
	}
	return 0, false
}

// ExpectedPSN returns the responder's next expected PSN (for tests).
func (q *QP) ExpectedPSN() uint32 { return q.ePSN }

// SetExpectedPSN forces the responder's next expected PSN — the rq_psn
// attribute of a real ModifyQP call, used when the two ends agree on a
// starting PSN other than zero.
func (q *QP) SetExpectedPSN(v uint32) { q.ePSN = v & verbs.PSNMask }

// pendingOp is a request admitted to the RX ring awaiting execution.
type pendingOp struct {
	pkt     wire.Packet
	payload []byte // copied WRITE payload (frame buffer is reused upstream)
	qp      *QP
	barrier uint64 // READs: writeDone level required before execution
}

// NIC is an RDMA NIC attached to one switch-facing port. It implements
// netsim.Device. RoCE frames addressed to it are handled entirely on the
// NIC; anything else is punted to Owner's software stack (costing CPU).
type NIC struct {
	name string
	MAC  wire.MAC
	IP   wire.IP4

	Cfg   Config
	Stats Stats

	engine *sim.Engine
	port   *netsim.Port

	regions map[uint32]*Region
	qps     map[uint32]*QP
	nextQPN uint32
	nextKey uint32

	// Execution queues: the RX ring, split by direction the way the
	// hardware is — inbound WRITEs/atomics consume the DMA-write path,
	// READ service consumes the DMA-read path, and the two run
	// concurrently. The RxRing bound applies to their sum.
	wring, rring fifo.Queue[pendingOp]
	wbusy, rbusy bool

	// PFC state (Cfg.EnablePFC): whether a pause is in force toward the
	// switch, refreshed while the ring stays congested.
	pfcPaused bool

	// failed marks a crashed server: the NIC goes silent (frames counted
	// in Stats.DroppedWhileFailed, nothing processed, nothing sent).
	failed bool

	// slowFactor > 1 stretches execution occupancy and response latency —
	// a sick-but-alive server (thermal throttling, a noisy neighbour on the
	// PCIe root). 0 or 1 means full speed.
	slowFactor float64

	// Requester side (nil unless the host posts verbs); see requester.go.
	req *Requester

	// Owner receives non-RoCE frames in software.
	Owner *netsim.Host
}

// New creates a NIC for host owner with the given config (zero fields take
// defaults). Attach it to the fabric with net.Connect(nic, ...), then call
// Bind with the resulting port.
func New(name string, owner *netsim.Host, cfg Config) *NIC {
	cfg.fillDefaults()
	return &NIC{
		name:    name,
		MAC:     owner.MAC,
		IP:      owner.IP,
		Cfg:     cfg,
		regions: make(map[uint32]*Region),
		qps:     make(map[uint32]*QP),
		nextQPN: 0x11, nextKey: 0x1000,
		Owner: owner,
	}
}

// Name implements netsim.Device.
func (n *NIC) Name() string { return n.name }

// Bind associates the NIC with its fabric port and engine. Must be called
// once after netsim.Net.Connect.
func (n *NIC) Bind(engine *sim.Engine, port *netsim.Port) {
	n.engine = engine
	n.port = port
}

// Port returns the bound fabric port.
func (n *NIC) Port() *netsim.Port { return n.port }

// RegisterMemory registers size bytes of host DRAM at virtual address base
// and returns the region. This is a control-plane (initialization) action.
func (n *NIC) RegisterMemory(base uint64, size int) *Region {
	r := &Region{RKey: n.nextKey, Base: base, Data: make([]byte, size)}
	n.nextKey++
	n.regions[r.RKey] = r
	return r
}

// CreateQP creates a responder queue pair and returns it. mode selects PSN
// handling (see PSNMode).
func (n *NIC) CreateQP(mode PSNMode) *QP {
	q := &QP{Number: n.nextQPN, Mode: mode}
	n.nextQPN++
	n.qps[q.Number] = q
	return q
}

// LookupRegion returns the region registered under rkey, or nil.
func (n *NIC) LookupRegion(rkey uint32) *Region { return n.regions[rkey] }

// LookupQP returns the responder queue pair numbered qpn, or nil — the
// control-plane handle for per-QP attributes (ExpectedPSN, SetExpectedPSN).
func (n *NIC) LookupQP(qpn uint32) *QP { return n.qps[qpn] }

// Fail simulates a server crash: from now on the NIC neither processes nor
// answers anything. Recover brings it back (state intact — a reboot would
// additionally clear regions, which the caller can do via the region data).
func (n *NIC) Fail()    { n.failed = true }
func (n *NIC) Recover() { n.failed = false }

// WipeRegions zeroes every registered memory region — the DRAM contents a
// real reboot loses — and returns the number of bytes cleared. It models a
// power-cycle restart (faults.CrashWipe routes here); the regions stay
// registered with their rkeys, only their contents are gone. Note the
// atomic-replay caches (QP.atomicReplay) are deliberately NOT cleared: they are
// NIC-side transport state, and wiping them would turn a retransmitted FAA
// into a double-apply, which is a different fault than data loss.
func (n *NIC) WipeRegions() int {
	total := 0
	//gem:deterministic — zeroing every region is order-independent
	for _, r := range n.regions {
		clear(r.Data)
		total += len(r.Data)
	}
	return total
}

// Failed reports whether the NIC is in the crashed state.
func (n *NIC) Failed() bool { return n.failed }

// Slow puts the NIC into a degraded mode where every operation's execution
// occupancy and response latency take factor times longer (factor <= 1
// restores full speed). Unlike Fail, a slow server still answers — late —
// which is the harder case for timeout-based failure detection.
func (n *NIC) Slow(factor float64) { n.slowFactor = factor }

// SlowFactor returns the current slowdown multiplier (>= 1).
func (n *NIC) SlowFactor() float64 {
	if n.slowFactor > 1 {
		return n.slowFactor
	}
	return 1
}

// Receive implements netsim.Device. The NIC is the terminal consumer of
// every RoCE frame it accepts: the frame buffer is recycled before Receive
// returns (request/response handlers copy what they keep). Non-RoCE frames
// pass ownership on to Owner's software stack.
func (n *NIC) Receive(port *netsim.Port, frame []byte) {
	if n.failed {
		n.Stats.DroppedWhileFailed++
		wire.DefaultPool.Put(frame)
		return
	}
	var pkt wire.Packet
	if err := pkt.DecodeFromBytes(frame); err != nil {
		n.Stats.MalformedFrames++
		wire.DefaultPool.Put(frame)
		return
	}
	if pkt.Eth.Dst != n.MAC && !pkt.Eth.Dst.IsBroadcast() {
		wire.DefaultPool.Put(frame)
		return // not for us; a NIC filters by MAC
	}
	if !pkt.IsRoCE {
		if n.Owner != nil {
			n.Owner.Receive(port, frame)
		} else {
			wire.DefaultPool.Put(frame)
		}
		return
	}
	if !pkt.ICRCOK {
		n.Stats.BadICRC++
		wire.DefaultPool.Put(frame)
		return
	}
	// Responses terminate at the requester engine.
	if op := pkt.BTH.Opcode; op.IsReadResponse() || op == wire.OpAcknowledge || op == wire.OpAtomicAcknowledge {
		if n.req != nil {
			n.req.handleResponse(&pkt)
		}
		wire.DefaultPool.Put(frame)
		return
	}
	n.handleRequest(&pkt)
	wire.DefaultPool.Put(frame)
}

func (n *NIC) handleRequest(pkt *wire.Packet) {
	qp := n.qps[pkt.BTH.DestQP]
	if qp == nil {
		n.Stats.MalformedFrames++
		return
	}
	if !n.admitPSN(qp, pkt) {
		return
	}
	// Each engine has its own RX ring (send and receive work queues are
	// separate resources on real NICs); a write flood cannot starve READ
	// admission.
	op := pendingOp{pkt: *pkt, qp: qp}
	// The frame buffer is recycled when Receive returns; the queued op must
	// not alias it. The WRITE payload is the only slice view we keep.
	op.pkt.Payload = nil
	if pkt.BTH.Opcode == wire.OpReadRequest {
		if n.rring.Len() >= n.Cfg.RxRing {
			n.Stats.RxRingDrops++
			return
		}
		op.barrier = qp.writeSeq // read-after-write ordering point
		n.rring.Push(op)
		if !n.rbusy {
			n.executeNext(false)
		}
	} else {
		if n.wring.Len() >= n.Cfg.RxRing {
			n.Stats.RxRingDrops++
			return
		}
		if pkt.BTH.Opcode.IsWrite() {
			op.payload = wire.DefaultPool.Get(len(pkt.Payload))
			copy(op.payload, pkt.Payload)
		}
		qp.writeSeq++
		n.wring.Push(op)
		if !n.wbusy {
			n.executeNext(true)
		}
	}
	n.updatePFC()
}

// updatePFC emits pause/resume frames around the write-ring watermarks.
func (n *NIC) updatePFC() {
	if !n.Cfg.EnablePFC {
		return
	}
	occupancy := n.wring.Len() + n.rring.Len()
	high := n.Cfg.RxRing * 3 / 4
	low := n.Cfg.RxRing / 4
	switch {
	case !n.pfcPaused && occupancy >= high:
		n.pfcPaused = true
		n.sendPause()
	case n.pfcPaused && occupancy <= low:
		n.pfcPaused = false
		n.Stats.PFCResumes++
		n.port.Send(wire.BuildPFCInto(wire.DefaultPool, n.MAC, 0))
	}
}

// sendPause emits a max-quanta pause and keeps refreshing it at ~70% of the
// pause horizon until the congestion clears.
func (n *NIC) sendPause() {
	if !n.pfcPaused {
		return
	}
	n.Stats.PFCPauses++
	n.port.Send(wire.BuildPFCInto(wire.DefaultPool, n.MAC, 0xFFFF))
	refresh := sim.Duration(0.7 * 65535 * wire.PFCQuantum * 1e9 / n.port.RateBps())
	n.engine.Schedule(refresh, n.sendPause)
}

// admitPSN applies the QP's PSN policy. It returns false if the packet must
// be discarded.
func (n *NIC) admitPSN(qp *QP, pkt *wire.Packet) bool {
	psn := pkt.BTH.PSN
	switch {
	case psn == qp.ePSN:
		qp.nakked = false
		qp.ePSN = (qp.ePSN + n.psnConsumed(pkt)) & verbs.PSNMask
		return true
	case psnAfter(psn, qp.ePSN): // gap: requests were lost
		n.Stats.SeqGaps++
		if qp.Mode == PSNTolerant {
			qp.ePSN = (psn + n.psnConsumed(pkt)) & verbs.PSNMask
			return true
		}
		if !qp.nakked {
			n.sendNak(qp, wire.AETHNakPSNSeq)
			qp.nakked = true
		}
		return false
	default: // duplicate
		n.Stats.DupRequests++
		if pkt.BTH.Opcode == wire.OpReadRequest {
			// The IB RC rules permit re-executing duplicate READs; the
			// requester's go-back-N recovery depends on it.
			return true
		}
		if pkt.BTH.Opcode.IsAtomic() {
			if orig, ok := qp.replayAtomic(psn); ok {
				// Replay the cached result rather than re-executing.
				params := n.roceParams(qp, psn)
				n.scheduleResponse(qp, wire.BuildAtomicAckInto(wire.DefaultPool, &params, qp.msn, orig))
			}
			return false
		}
		if pkt.BTH.AckReq {
			// Re-ack the duplicate with its own PSN (already executed).
			n.sendAck(qp, psn)
		}
		return false
	}
}

// psnConsumed returns how many PSNs a request occupies: one for every
// request packet except READ, which reserves one PSN per response packet.
func (n *NIC) psnConsumed(pkt *wire.Packet) uint32 {
	if pkt.BTH.Opcode == wire.OpReadRequest {
		pkts := (int(pkt.RETH.DMALen) + n.Cfg.MTU - 1) / n.Cfg.MTU
		if pkts < 1 {
			pkts = 1
		}
		return uint32(pkts)
	}
	return 1
}

// psnAfter reports whether a comes strictly after b in 24-bit sequence
// space. One definition serves both sides of the wire: the switch transport
// (verbs.QP completion matching, Retransmitter window arithmetic) and this
// responder negotiate completion semantics over the same comparison.
func psnAfter(a, b uint32) bool { return verbs.PSNAfter(a, b) }

// executeNext drains one RX ring (writes+atomics or reads) under the NIC's
// rate caps.
func (n *NIC) executeNext(writeSide bool) {
	ring := &n.rring
	busy := &n.rbusy
	if writeSide {
		ring = &n.wring
		busy = &n.wbusy
	}
	if ring.Len() == 0 {
		*busy = false
		return
	}
	if !writeSide {
		// Honour the read-after-write barrier: the head READ may not
		// start until its QP's earlier writes committed. Write
		// completions re-kick this engine.
		head := ring.Peek()
		if head.qp != nil && head.qp.writeDone < head.barrier {
			*busy = false
			return
		}
	}
	*busy = true
	op := ring.Pop()

	// occupancy is how long the op holds its execution pipeline (this is
	// what caps throughput); ProcessingDelay is added latency only — real
	// NICs pipeline ops, so fixed latency does not cost throughput.
	var occupancy sim.Duration
	switch opc := op.pkt.BTH.Opcode; {
	case opc.IsWrite():
		occupancy = sim.Duration(float64(len(op.payload)) * 8 / n.Cfg.WritePayloadBps * 1e9)
	case opc == wire.OpReadRequest:
		occupancy = sim.Duration(float64(op.pkt.RETH.DMALen) * 8 / n.Cfg.ReadPayloadBps * 1e9)
	case opc.IsAtomic():
		occupancy = sim.Duration(1e9 / n.Cfg.AtomicOpsPerSec)
	}
	if f := n.SlowFactor(); f > 1 {
		occupancy = sim.Duration(float64(occupancy) * f)
	}
	n.updatePFC()
	n.engine.Schedule(occupancy, func() {
		// The memory effect commits when the DMA finishes (end of
		// occupancy); ProcessingDelay only delays the response packet
		// (applied in scheduleResponse). Committing here keeps the
		// read-after-write barrier tight.
		n.complete(&op)
		n.executeNext(writeSide)
	})
}

// complete performs the memory operation and emits any response.
func (n *NIC) complete(op *pendingOp) {
	qp := n.qps[op.pkt.BTH.DestQP]
	if qp == nil {
		return
	}
	switch opc := op.pkt.BTH.Opcode; {
	case opc.IsWrite():
		n.completeWrite(qp, op)
		wire.DefaultPool.Put(op.payload) // copied into the region (or NAKed)
		op.payload = nil
	case opc == wire.OpReadRequest:
		n.completeRead(qp, op)
	case opc.IsAtomic():
		n.completeAtomic(qp, op)
	}
	if !op.pkt.BTH.Opcode.IsWrite() && !op.pkt.BTH.Opcode.IsAtomic() {
		return
	}
	// A write/atomic committed: release any READ waiting on the barrier.
	qp.writeDone++
	if !n.rbusy {
		n.executeNext(false)
	}
}

func (n *NIC) completeWrite(qp *QP, op *pendingOp) {
	// Multi-packet WRITEs: first/only carry the RETH; middles/lasts
	// continue at the QP's running write cursor. We track the cursor on
	// the QP via the RETH of the first packet.
	if op.pkt.HasRETH {
		qp.writeVA = op.pkt.RETH.VA
		qp.writeKey = op.pkt.RETH.RKey
	}
	r := n.regions[qp.writeKey]
	if r == nil || !r.Contains(qp.writeVA, len(op.payload)) {
		n.Stats.AccessErrors++
		n.sendNak(qp, wire.AETHNakRemAcces)
		return
	}
	copy(r.Slice(qp.writeVA, len(op.payload)), op.payload)
	qp.writeVA += uint64(len(op.payload))
	n.Stats.WriteBytes += int64(len(op.payload))
	if opc := op.pkt.BTH.Opcode; opc == wire.OpWriteOnly || opc == wire.OpWriteLast {
		n.Stats.ExecWrites++
		qp.msn = (qp.msn + 1) & verbs.PSNMask
		if op.pkt.BTH.AckReq {
			n.sendAck(qp, op.pkt.BTH.PSN)
		}
	}
}

func (n *NIC) completeRead(qp *QP, op *pendingOp) {
	r := n.regions[op.pkt.RETH.RKey]
	total := int(op.pkt.RETH.DMALen)
	if r == nil || !r.Contains(op.pkt.RETH.VA, total) {
		n.Stats.AccessErrors++
		n.sendNak(qp, wire.AETHNakRemAcces)
		return
	}
	n.Stats.ExecReads++
	n.Stats.ReadBytes += int64(total)
	qp.msn = (qp.msn + 1) & verbs.PSNMask
	data := r.Slice(op.pkt.RETH.VA, total)
	// Segment into MTU-sized response packets. Response PSNs start at the
	// request's PSN (IB RC rule).
	pkts := (total + n.Cfg.MTU - 1) / n.Cfg.MTU
	if pkts < 1 {
		pkts = 1
	}
	for i := 0; i < pkts; i++ {
		lo := i * n.Cfg.MTU
		hi := lo + n.Cfg.MTU
		if hi > total {
			hi = total
		}
		var opc wire.Opcode
		switch {
		case pkts == 1:
			opc = wire.OpReadResponseOnly
		case i == 0:
			opc = wire.OpReadResponseFirst
		case i == pkts-1:
			opc = wire.OpReadResponseLast
		default:
			opc = wire.OpReadResponseMiddle
		}
		params := n.roceParams(qp, (op.pkt.BTH.PSN+uint32(i))&verbs.PSNMask)
		n.scheduleResponse(qp, wire.BuildReadResponseInto(wire.DefaultPool, &params, opc, qp.msn, data[lo:hi]))
	}
}

func (n *NIC) completeAtomic(qp *QP, op *pendingOp) {
	r := n.regions[op.pkt.AtomicETH.RKey]
	if r == nil || !r.Contains(op.pkt.AtomicETH.VA, 8) {
		n.Stats.AccessErrors++
		n.sendNak(qp, wire.AETHNakRemAcces)
		return
	}
	word := r.Slice(op.pkt.AtomicETH.VA, 8)
	orig := beUint64(word)
	switch op.pkt.BTH.Opcode {
	case wire.OpFetchAdd:
		putBeUint64(word, orig+op.pkt.AtomicETH.SwapAdd)
	case wire.OpCompareSwap:
		if orig == op.pkt.AtomicETH.Compare {
			putBeUint64(word, op.pkt.AtomicETH.SwapAdd)
		}
	}
	n.Stats.ExecAtomics++
	qp.msn = (qp.msn + 1) & verbs.PSNMask
	qp.rememberAtomic(op.pkt.BTH.PSN, orig)
	params := n.roceParams(qp, op.pkt.BTH.PSN)
	n.scheduleResponse(qp, wire.BuildAtomicAckInto(wire.DefaultPool, &params, qp.msn, orig))
}

// roceParams returns response addressing by value so the params stay on the
// caller's stack (the builders only read through the pointer).
func (n *NIC) roceParams(qp *QP, psn uint32) wire.RoCEParams {
	return wire.RoCEParams{
		SrcMAC: n.MAC, DstMAC: qp.PeerMAC,
		SrcIP: n.IP, DstIP: qp.PeerIP,
		UDPSrcPort: udpEntropy(qp.Number),
		DestQP:     qp.PeerQPN, PSN: psn,
		Version: qp.Version,
	}
}

// sendAck acknowledges cumulatively through psn — the PSN of the request
// whose execution completed, never a merely-admitted one.
func (n *NIC) sendAck(qp *QP, psn uint32) {
	n.Stats.AcksSent++
	params := n.roceParams(qp, psn)
	n.scheduleResponse(qp, wire.BuildAckInto(wire.DefaultPool, &params, wire.AETHAck, qp.msn))
}

func (n *NIC) sendNak(qp *QP, syndrome uint8) {
	n.Stats.NaksSent++
	params := n.roceParams(qp, qp.ePSN)
	n.scheduleResponse(qp, wire.BuildAckInto(wire.DefaultPool, &params, syndrome, qp.msn))
}

func (n *NIC) scheduleResponse(qp *QP, frame []byte) {
	n.Stats.ResponsesSent++
	// ProcessingDelay models the NIC's response-path latency (pipelined:
	// it delays each response without occupying the execution engine).
	delay := n.Cfg.ProcessingDelay
	if f := n.SlowFactor(); f > 1 {
		delay = sim.Duration(float64(delay) * f)
	}
	n.engine.Schedule(delay, func() {
		if n.failed {
			wire.DefaultPool.Put(frame) // crashed mid-flight: never sent
			return
		}
		n.port.Send(frame)
	})
}

// udpEntropy derives a stable RoCEv2 UDP source port from a QPN.
func udpEntropy(qpn uint32) uint16 { return uint16(0xC000 | qpn&0x3FFF) }

func beUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

func putBeUint64(b []byte, v uint64) {
	_ = b[7]
	b[0], b[1], b[2], b[3] = byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32)
	b[4], b[5], b[6], b[7] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

// ReadCounter returns the big-endian uint64 stored at va in the region under
// rkey — a test/verification convenience mirroring what estimation software
// on the server would read.
func (n *NIC) ReadCounter(rkey uint32, va uint64) (uint64, error) {
	r := n.regions[rkey]
	if r == nil || !r.Contains(va, 8) {
		return 0, fmt.Errorf("rnic: no readable word at rkey=%#x va=%#x", rkey, va)
	}
	return beUint64(r.Slice(va, 8)), nil
}
