package stats

import (
	"math"
	"testing"
	"testing/quick"

	"gem/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Median() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Stddev() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramBasic(t *testing.T) {
	var h Histogram
	for _, v := range []int64{5, 1, 3, 2, 4} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Median() != 3 {
		t.Fatalf("median = %d", h.Median())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if h.Mean() != 3 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if got := h.Stddev(); math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %v", got)
	}
}

func TestHistogramPercentileInterpolation(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(100)
	if got := h.Percentile(50); got != 50 {
		t.Fatalf("p50 of {0,100} = %d, want 50", got)
	}
	if got := h.Percentile(0); got != 0 {
		t.Fatalf("p0 = %d", got)
	}
	if got := h.Percentile(100); got != 100 {
		t.Fatalf("p100 = %d", got)
	}
	if got := h.Percentile(25); got != 25 {
		t.Fatalf("p25 = %d", got)
	}
}

func TestHistogramAddAfterQuery(t *testing.T) {
	var h Histogram
	h.Add(10)
	_ = h.Median()
	h.Add(1) // must re-sort
	if h.Min() != 1 {
		t.Fatalf("min = %d after post-query add", h.Min())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Add(5)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestPropPercentileMonotone(t *testing.T) {
	f := func(vals []int16) bool {
		var h Histogram
		for _, v := range vals {
			h.Add(int64(v))
		}
		prev := int64(math.MinInt64)
		for p := 0.0; p <= 100; p += 7 {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropPercentileWithinRange(t *testing.T) {
	f := func(vals []int16, p uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		for _, v := range vals {
			h.Add(int64(v))
		}
		v := h.Percentile(float64(p % 101))
		return v >= h.Min() && v <= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeterGbps(t *testing.T) {
	var m Meter
	m.Start(0)
	// 125 MB in 100 ms = 10 Gbps.
	m.Bytes = 125_000_000
	m.Frames = 1000
	if got := m.Gbps(sim.Time(100 * sim.Millisecond)); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Gbps = %v, want 10", got)
	}
	if got := m.PPS(sim.Time(100 * sim.Millisecond)); math.Abs(got-10000) > 1e-6 {
		t.Fatalf("PPS = %v, want 10000", got)
	}
}

func TestMeterZeroWindow(t *testing.T) {
	var m Meter
	m.Start(50)
	m.Record(100)
	if m.Gbps(50) != 0 || m.PPS(50) != 0 {
		t.Fatal("zero window should report 0")
	}
}

func TestMeterRecordAndReset(t *testing.T) {
	var m Meter
	m.Record(100)
	m.Record(200)
	if m.Bytes != 300 || m.Frames != 2 {
		t.Fatalf("meter = %+v", m)
	}
	m.Reset(10)
	if m.Bytes != 0 || m.Frames != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestGbpsHelper(t *testing.T) {
	if got := Gbps(5_000_000_000, sim.Duration(sim.Second)); math.Abs(got-40) > 1e-9 {
		t.Fatalf("Gbps = %v, want 40", got)
	}
	if Gbps(100, 0) != 0 {
		t.Fatal("zero duration should report 0")
	}
}

func TestLossStats(t *testing.T) {
	l := LossStats{Offered: 100, Delivered: 97, Dropped: 3}
	if math.Abs(l.Rate()-0.03) > 1e-12 {
		t.Fatalf("rate = %v", l.Rate())
	}
	var empty LossStats
	if empty.Rate() != 0 {
		t.Fatal("empty loss rate should be 0")
	}
	if s := l.String(); s == "" {
		t.Fatal("String empty")
	}
}
