// Package stats provides the measurement plumbing the experiment harnesses
// use: sample histograms with percentiles, byte/packet meters that convert
// to Gbps, and simple loss accounting.
package stats

import (
	"fmt"
	"math"
	"sort"

	"gem/internal/sim"
)

// Histogram accumulates int64 samples (typically nanoseconds) and reports
// order statistics. The zero value is ready to use.
type Histogram struct {
	samples []int64
	sorted  bool
	sum     float64
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	h.samples = append(h.samples, v)
	h.sorted = false
	h.sum += float64(v)
}

// AddDuration records a duration sample.
func (h *Histogram) AddDuration(d sim.Duration) { h.Add(int64(d)) }

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Reset discards all samples.
func (h *Histogram) Reset() { h.samples = h.samples[:0]; h.sum = 0; h.sorted = false }

func (h *Histogram) sortSamples() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank interpolation. It returns 0 when the histogram is empty.
func (h *Histogram) Percentile(p float64) int64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortSamples()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := p / 100 * float64(len(h.samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return h.samples[lo]
	}
	frac := rank - float64(lo)
	return int64(float64(h.samples[lo])*(1-frac) + float64(h.samples[hi])*frac)
}

// Median returns the 50th percentile.
func (h *Histogram) Median() int64 { return h.Percentile(50) }

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() int64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortSamples()
	return h.samples[0]
}

// Max returns the largest sample (0 if empty).
func (h *Histogram) Max() int64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortSamples()
	return h.samples[len(h.samples)-1]
}

// Mean returns the arithmetic mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Stddev returns the population standard deviation (0 if empty).
func (h *Histogram) Stddev() float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	mean := h.Mean()
	var ss float64
	for _, v := range h.samples {
		d := float64(v) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Meter accumulates byte and frame counts over simulated time.
type Meter struct {
	Bytes  int64
	Frames int64
	start  sim.Time
	marked bool
}

// Record adds one frame of n bytes.
func (m *Meter) Record(n int) { m.Bytes += int64(n); m.Frames++ }

// Start marks the beginning of the measurement window.
func (m *Meter) Start(t sim.Time) { m.start = t; m.marked = true }

// Gbps returns the average rate in gigabits per second over [start, now].
func (m *Meter) Gbps(now sim.Time) float64 {
	var elapsed sim.Duration
	if m.marked {
		elapsed = now.Sub(m.start)
	} else {
		elapsed = sim.Duration(now)
	}
	if elapsed <= 0 {
		return 0
	}
	return float64(m.Bytes) * 8 / elapsed.Seconds() / 1e9
}

// PPS returns the average frame rate in packets per second over the window.
func (m *Meter) PPS(now sim.Time) float64 {
	var elapsed sim.Duration
	if m.marked {
		elapsed = now.Sub(m.start)
	} else {
		elapsed = sim.Duration(now)
	}
	if elapsed <= 0 {
		return 0
	}
	return float64(m.Frames) / elapsed.Seconds()
}

// Reset clears counters and restarts the window at t.
func (m *Meter) Reset(t sim.Time) { m.Bytes, m.Frames = 0, 0; m.Start(t) }

// Gbps converts a byte count over a duration to gigabits per second.
func Gbps(bytes int64, d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e9
}

// LossStats tracks offered vs delivered frames.
type LossStats struct {
	Offered   int64
	Delivered int64
	Dropped   int64
}

// Rate returns the fraction of offered frames that were lost.
func (l *LossStats) Rate() float64 {
	if l.Offered == 0 {
		return 0
	}
	return float64(l.Dropped) / float64(l.Offered)
}

func (l *LossStats) String() string {
	return fmt.Sprintf("offered=%d delivered=%d dropped=%d (%.3f%%)",
		l.Offered, l.Delivered, l.Dropped, l.Rate()*100)
}
