// Package fifo provides a growable ring-buffer FIFO queue.
//
// Several hot paths in the simulation (netsim transmit queues, RNIC work
// rings, switch egress queues) were dequeuing with `q = q[1:]` or an O(n)
// copy-shift; Queue makes both enqueue and dequeue O(1) amortized while
// keeping the memory of a drained queue bounded by its high-water mark.
package fifo

// Queue is a FIFO of T backed by a power-of-two ring. The zero value is an
// empty queue ready for use. Not safe for concurrent use.
type Queue[T any] struct {
	buf  []T // len(buf) is always 0 or a power of two
	head int // index of the oldest element
	n    int // number of elements
}

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return q.n }

// Push appends v to the tail.
func (q *Queue[T]) Push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
}

// Peek returns the head element without removing it. It panics on an empty
// queue; check Len first.
func (q *Queue[T]) Peek() T {
	if q.n == 0 {
		panic("fifo: Peek on empty queue")
	}
	return q.buf[q.head]
}

// Pop removes and returns the head element. It panics on an empty queue;
// check Len first.
func (q *Queue[T]) Pop() T {
	if q.n == 0 {
		panic("fifo: Pop on empty queue")
	}
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero // release the reference for GC
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v
}

// grow doubles the ring (minimum 8) and linearizes the elements.
func (q *Queue[T]) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]T, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = buf
	q.head = 0
}
