package fifo

import "testing"

func TestFIFOOrder(t *testing.T) {
	var q Queue[int]
	if q.Len() != 0 {
		t.Fatalf("zero queue Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		if got := q.Peek(); got != i {
			t.Fatalf("Peek = %d, want %d", got, i)
		}
		if got := q.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
}

// TestFIFOWrap interleaves pushes and pops so the head wraps around the ring
// repeatedly, including across grows.
func TestFIFOWrap(t *testing.T) {
	var q Queue[int]
	next, expect := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 3+round%5; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < 2+round%4 && q.Len() > 0; i++ {
			if got := q.Pop(); got != expect {
				t.Fatalf("round %d: Pop = %d, want %d", round, got, expect)
			}
			expect++
		}
	}
	for q.Len() > 0 {
		if got := q.Pop(); got != expect {
			t.Fatalf("drain: Pop = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("popped %d elements, pushed %d", expect, next)
	}
}

func TestFIFOPanics(t *testing.T) {
	var q Queue[string]
	for _, op := range []struct {
		name string
		f    func()
	}{
		{"Pop", func() { q.Pop() }},
		{"Peek", func() { q.Peek() }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty queue did not panic", op.name)
				}
			}()
			op.f()
		}()
	}
}

func TestFIFOReleasesReferences(t *testing.T) {
	var q Queue[[]byte]
	q.Push(make([]byte, 8))
	q.Pop()
	// After Pop the slot must not pin the slice.
	if q.buf[0] != nil {
		t.Fatal("Pop left a live reference in the ring")
	}
}

func BenchmarkFIFOPushPop(b *testing.B) {
	b.ReportAllocs()
	var q Queue[int]
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}
