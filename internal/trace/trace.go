// Package trace renders frames as tcpdump-style one-liners and taps a
// switch to record annotated packet traces. It exists to make the paper's
// feasibility claim *visible*: an RDMA request crafted by a switch data
// plane is just an Ethernet frame, and here is every byte of it decoded.
package trace

import (
	"fmt"
	"io"
	"strings"

	"gem/internal/sim"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

// Summarize renders one frame as a single line, dispatching on what the
// frame actually is: PFC, RoCE (v1 or v2), UDP, other IPv4, or raw
// Ethernet.
func Summarize(frame []byte) string {
	if pfc, ok := wire.DecodePFC(frame); ok {
		if pfc.PauseQuanta[0] == 0 {
			return fmt.Sprintf("PFC resume from %s", pfc.Src)
		}
		return fmt.Sprintf("PFC pause from %s quanta=%d", pfc.Src, pfc.PauseQuanta[0])
	}
	var p wire.Packet
	if err := p.DecodeFromBytes(frame); err != nil {
		return fmt.Sprintf("malformed frame (%d bytes): %v", len(frame), err)
	}
	switch {
	case p.IsRoCE:
		return summarizeRoCE(&p, len(frame))
	case p.HasUDP:
		return fmt.Sprintf("UDP %s:%d > %s:%d len=%d",
			p.IP.Src, p.UDP.SrcPort, p.IP.Dst, p.UDP.DstPort, len(frame))
	case p.HasIPv4:
		return fmt.Sprintf("IPv4 %s > %s proto=%d len=%d",
			p.IP.Src, p.IP.Dst, p.IP.Protocol, len(frame))
	default:
		return fmt.Sprintf("ETH %s > %s type=%#04x len=%d",
			p.Eth.Src, p.Eth.Dst, p.Eth.EtherType, len(frame))
	}
}

func summarizeRoCE(p *wire.Packet, frameLen int) string {
	var b strings.Builder
	enc := "RoCEv2"
	src, dst := p.IP.Src.String(), p.IP.Dst.String()
	if p.HasGRH {
		enc = "RoCEv1"
		if ip, ok := wire.GIDToIP4(p.GRH.SGID); ok {
			src = ip.String()
		}
		if ip, ok := wire.GIDToIP4(p.GRH.DGID); ok {
			dst = ip.String()
		}
	}
	fmt.Fprintf(&b, "%s %s > %s %s qp=%#x psn=%d",
		enc, src, dst, p.BTH.Opcode, p.BTH.DestQP, p.BTH.PSN)
	if p.HasRETH {
		fmt.Fprintf(&b, " va=%#x rkey=%#x dmalen=%d", p.RETH.VA, p.RETH.RKey, p.RETH.DMALen)
	}
	if p.HasAtomicETH {
		fmt.Fprintf(&b, " va=%#x rkey=%#x add=%d", p.AtomicETH.VA, p.AtomicETH.RKey, p.AtomicETH.SwapAdd)
	}
	if p.HasAETH {
		kind := "ack"
		if p.AETH.IsNak() {
			kind = "NAK"
		}
		fmt.Fprintf(&b, " %s msn=%d", kind, p.AETH.MSN)
	}
	if p.HasAtomicAck {
		fmt.Fprintf(&b, " orig=%d", p.AtomicAck.OrigData)
	}
	if len(p.Payload) > 0 {
		fmt.Fprintf(&b, " payload=%dB", len(p.Payload))
	}
	if p.BTH.AckReq {
		b.WriteString(" [A]")
	}
	if !p.ICRCOK {
		b.WriteString(" BAD-ICRC")
	}
	fmt.Fprintf(&b, " len=%d", frameLen)
	return b.String()
}

// Event is one recorded frame observation.
type Event struct {
	At    sim.Time
	Dir   string // "rx" or "tx"
	Port  int
	Line  string
	Bytes int
}

func (e Event) String() string {
	return fmt.Sprintf("%12v  %s port %d  %s", e.At, e.Dir, e.Port, e.Line)
}

// Recorder taps a switch and keeps the first Limit frame events.
type Recorder struct {
	Events []Event
	Limit  int

	engine *sim.Engine
	// Dropped counts events past the limit.
	Dropped int64
}

// Attach installs the recorder on sw. limit <= 0 means unbounded.
func Attach(sw *switchsim.Switch, limit int) *Recorder {
	r := &Recorder{Limit: limit, engine: sw.Engine}
	sw.TraceFn = func(event string, port int, frame []byte) {
		if r.Limit > 0 && len(r.Events) >= r.Limit {
			r.Dropped++
			return
		}
		r.Events = append(r.Events, Event{
			At: r.engine.Now(), Dir: event, Port: port,
			Line: Summarize(frame), Bytes: len(frame),
		})
	}
	return r
}

// Dump writes all recorded events to w.
func (r *Recorder) Dump(w io.Writer) {
	for _, e := range r.Events {
		fmt.Fprintln(w, e)
	}
	if r.Dropped > 0 {
		fmt.Fprintf(w, "... %d further frames not recorded (limit %d)\n", r.Dropped, r.Limit)
	}
}

// Filter returns the events whose line matches substr.
func (r *Recorder) Filter(substr string) []Event {
	var out []Event
	for _, e := range r.Events {
		if strings.Contains(e.Line, substr) {
			out = append(out, e)
		}
	}
	return out
}
