package trace

import (
	"strings"
	"testing"

	"gem/internal/netsim"
	"gem/internal/sim"
	"gem/internal/switchsim"
	"gem/internal/wire"
)

func TestSummarizeRoCEv2Write(t *testing.T) {
	p := &wire.RoCEParams{
		SrcIP: wire.IP4{10, 0, 0, 1}, DstIP: wire.IP4{10, 0, 0, 2},
		DestQP: 0x11, PSN: 42,
	}
	line := Summarize(wire.BuildWriteOnly(p, 0x1000, 0x77, make([]byte, 99)))
	for _, want := range []string{"RoCEv2", "RDMA_WRITE_ONLY", "qp=0x11", "psn=42",
		"va=0x1000", "rkey=0x77", "payload=99B"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
}

func TestSummarizeRoCEv1Atomic(t *testing.T) {
	p := &wire.RoCEParams{
		SrcIP: wire.IP4{10, 0, 0, 1}, DstIP: wire.IP4{10, 0, 0, 2},
		DestQP: 5, Version: wire.RoCEv1,
	}
	line := Summarize(wire.BuildFetchAdd(p, 0x80, 0x9, 3))
	for _, want := range []string{"RoCEv1", "FETCH_ADD", "10.0.0.1", "10.0.0.2", "add=3"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
}

func TestSummarizeNakAndAtomicAck(t *testing.T) {
	p := &wire.RoCEParams{DestQP: 1}
	if line := Summarize(wire.BuildAck(p, wire.AETHNakPSNSeq, 7)); !strings.Contains(line, "NAK") {
		t.Fatalf("NAK line = %q", line)
	}
	if line := Summarize(wire.BuildAtomicAck(p, 2, 55)); !strings.Contains(line, "orig=55") {
		t.Fatalf("atomic ack line = %q", line)
	}
}

func TestSummarizeCorruptICRC(t *testing.T) {
	p := &wire.RoCEParams{DestQP: 1}
	frame := wire.BuildWriteOnly(p, 0, 1, []byte{1, 2, 3, 4})
	frame[len(frame)-8] ^= 0xFF
	if line := Summarize(frame); !strings.Contains(line, "BAD-ICRC") {
		t.Fatalf("line %q missing BAD-ICRC", line)
	}
}

func TestSummarizePFCAndPlain(t *testing.T) {
	if line := Summarize(wire.BuildPFC(wire.MACFromUint64(3), 100)); !strings.Contains(line, "PFC pause") {
		t.Fatalf("pfc line = %q", line)
	}
	if line := Summarize(wire.BuildPFC(wire.MACFromUint64(3), 0)); !strings.Contains(line, "PFC resume") {
		t.Fatalf("resume line = %q", line)
	}
	udp := wire.BuildDataFrame(wire.MACFromUint64(1), wire.MACFromUint64(2),
		wire.IP4{1, 1, 1, 1}, wire.IP4{2, 2, 2, 2}, 10, 20, 100, nil)
	if line := Summarize(udp); !strings.HasPrefix(line, "UDP ") {
		t.Fatalf("udp line = %q", line)
	}
	if line := Summarize([]byte{1, 2}); !strings.Contains(line, "malformed") {
		t.Fatalf("runt line = %q", line)
	}
}

func TestRecorder(t *testing.T) {
	n := netsim.New(1)
	sw := switchsim.New("tor", n.Engine, switchsim.Config{})
	a := netsim.NewHost("a", 1)
	b := netsim.NewHost("b", 2)
	pa, _ := n.Connect(sw, a, netsim.Link40G())
	pb, _ := n.Connect(sw, b, netsim.Link40G())
	sw.Bind(pa, pb)
	sw.Pipeline = switchsim.PipelineFunc(func(ctx *switchsim.Context) {
		ctx.Emit(1-ctx.InPort, ctx.Frame)
	})
	rec := Attach(sw, 8)
	for i := 0; i < 5; i++ {
		n.Ports(a)[0].Send(wire.BuildDataFrame(a.MAC, b.MAC, a.IP, b.IP, 1, 2, 100, nil))
	}
	n.Engine.Run()
	if len(rec.Events) != 8 {
		t.Fatalf("events = %d, want 8 (limited)", len(rec.Events))
	}
	if rec.Dropped == 0 {
		t.Fatal("dropped not counted")
	}
	// Both directions observed (rx on port 0, then txs on port 1 once the
	// pipeline latency elapses).
	if rec.Events[0].Dir != "rx" || rec.Events[0].Port != 0 {
		t.Fatalf("first event = %+v", rec.Events[0])
	}
	sawTx := false
	for _, e := range rec.Events {
		if e.Dir == "tx" && e.Port == 1 {
			sawTx = true
		}
	}
	if !sawTx {
		t.Fatalf("no tx event recorded: %+v", rec.Events)
	}
	if got := rec.Filter("UDP"); len(got) != 8 {
		t.Fatalf("filter matched %d", len(got))
	}
	var sb strings.Builder
	rec.Dump(&sb)
	if !strings.Contains(sb.String(), "further frames not recorded") {
		t.Fatal("dump missing truncation note")
	}
	_ = sim.Time(0)
}
