package flowgen

import (
	"math"
	"math/rand"
	"testing"

	"gem/internal/netsim"
	"gem/internal/sim"
)

func pair() (*netsim.Net, *netsim.Host, *netsim.Host) {
	n := netsim.New(3)
	a, b := netsim.NewHost("a", 1), netsim.NewHost("b", 2)
	n.Connect(a, b, netsim.Link40G())
	return n, a, b
}

func TestCBRRateAccuracy(t *testing.T) {
	n, a, b := pair()
	cbr := &CBR{
		Src: a, Dst: b, Port: n.Ports(a)[0],
		FrameLen: 1500, RateBps: 10e9,
	}
	cbr.Start(n.Engine, 0)
	n.Engine.RunFor(1 * sim.Millisecond)
	cbr.Stop()
	n.Engine.Run()
	gbps := n.Ports(b)[0].RxMeter.Gbps(sim.Time(1 * sim.Millisecond))
	if math.Abs(gbps-10) > 0.5 {
		t.Fatalf("CBR delivered %.2f Gbps, want ≈10", gbps)
	}
	if cbr.SendFails != 0 {
		t.Fatalf("send fails = %d", cbr.SendFails)
	}
}

func TestCBRCountBound(t *testing.T) {
	n, a, b := pair()
	cbr := &CBR{Src: a, Dst: b, Port: n.Ports(a)[0], FrameLen: 100, RateBps: 40e9}
	cbr.Start(n.Engine, 25)
	n.Engine.Run()
	if cbr.Sent != 25 || b.Received != 25 {
		t.Fatalf("sent=%d received=%d, want 25", cbr.Sent, b.Received)
	}
}

func TestCBRFlowSpread(t *testing.T) {
	n, a, b := pair()
	seen := map[uint16]bool{}
	b.Handler = func(_ *netsim.Port, frame []byte) {
		seen[uint16(frame[34])<<8|uint16(frame[35])] = true // UDP src port
	}
	cbr := &CBR{Src: a, Dst: b, Port: n.Ports(a)[0], FrameLen: 100, RateBps: 40e9, FlowCount: 16}
	cbr.Start(n.Engine, 200)
	n.Engine.Run()
	if len(seen) < 10 {
		t.Fatalf("only %d distinct flows of 16", len(seen))
	}
}

func TestBurst(t *testing.T) {
	n, a, b := pair()
	sent, failed := Burst(n.Ports(a)[0], a, b, 1500, 100)
	if sent+failed != 100 {
		t.Fatalf("sent+failed = %d", sent+failed)
	}
	n.Engine.Run()
	if b.Received != int64(sent) {
		t.Fatalf("received %d, sent %d", b.Received, sent)
	}
}

func TestPingPong(t *testing.T) {
	n, a, b := pair()
	pp := &PingPong{
		Engine: n.Engine, A: a, B: b,
		APort: n.Ports(a)[0], BPort: n.Ports(b)[0],
		FrameLen: 64,
	}
	doneCalled := false
	pp.Run(10, func() { doneCalled = true })
	n.Engine.Run()
	if len(pp.RTTs) != 10 {
		t.Fatalf("RTT samples = %d, want 10", len(pp.RTTs))
	}
	if !doneCalled {
		t.Fatal("done callback not invoked")
	}
	// On a direct 40G link: one-way = ser(64+24 B) + 250ns prop ≈ 268 ns.
	ow := pp.MedianOneWay()
	if ow < 250 || ow > 300 {
		t.Fatalf("one-way = %v, want ≈268ns", ow)
	}
}

func TestPingPongLatencyGrowsWithSize(t *testing.T) {
	prev := sim.Duration(0)
	for _, size := range []int{64, 256, 1024} {
		n, a, b := pair()
		pp := &PingPong{Engine: n.Engine, A: a, B: b,
			APort: n.Ports(a)[0], BPort: n.Ports(b)[0], FrameLen: size}
		pp.Run(5, nil)
		n.Engine.Run()
		ow := pp.MedianOneWay()
		if ow <= prev {
			t.Fatalf("latency not increasing with size: %v at %dB", ow, size)
		}
		prev = ow
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1, 10000, 1.2)
	counts := map[int]int{}
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Flow 0 must be much more popular than the tail.
	if counts[0] < draws/20 {
		t.Fatalf("flow 0 drawn %d times; zipf not skewed", counts[0])
	}
	// And the working set should be far smaller than n.
	if len(counts) > 9000 {
		t.Fatalf("distinct flows = %d; no skew", len(counts))
	}
}

func TestZipfClampsBadSkew(t *testing.T) {
	z := NewZipf(1, 100, 0.5) // invalid s, must not panic
	for i := 0; i < 100; i++ {
		if v := z.Next(); v < 0 || v >= 100 {
			t.Fatalf("draw %d out of range", v)
		}
	}
}

func TestFlowIDNonZeroPorts(t *testing.T) {
	for _, i := range []int{0, 1, 65535, 1 << 20} {
		s, d := FlowID(i)
		if s == 0 || d == 0 {
			t.Fatalf("flow %d produced zero port", i)
		}
	}
}

func TestPoissonIntervalMean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var sum float64
	const draws = 20000
	for i := 0; i < draws; i++ {
		sum += float64(PoissonInterval(rng, 1e6))
	}
	mean := sum / draws // want ≈1000 ns
	if mean < 900 || mean > 1100 {
		t.Fatalf("mean interval = %.1f ns, want ≈1000", mean)
	}
	if PoissonInterval(rng, 0) != sim.Second {
		t.Fatal("zero rate should fall back to 1s")
	}
}

func TestFlowIDCollisionFree(t *testing.T) {
	seen := map[[2]uint16]bool{}
	for i := 0; i < 200000; i++ {
		s, d := FlowID(i)
		k := [2]uint16{s, d}
		if seen[k] {
			t.Fatalf("flow ids collide at %d", i)
		}
		seen[k] = true
	}
}
