// Package flowgen provides the traffic generators that stand in for the
// paper's measurement tools: raw_ethernet_bw (constant-rate senders at a
// configurable data rate), NetPIPE (ping-pong latency probes), incast burst
// generators for the §2.1 scenario, and Zipf flow workloads for the lookup
// and telemetry use cases.
package flowgen

import (
	"math"
	"math/rand"

	"gem/internal/netsim"
	"gem/internal/sim"
	"gem/internal/wire"
)

// CBR is a constant-bit-rate sender: frameLen-byte frames paced so the wire
// rate (including framing overhead) equals RateBps, like raw_ethernet_bw.
type CBR struct {
	Src      *netsim.Host
	Port     *netsim.Port
	Dst      *netsim.Host
	FrameLen int
	RateBps  float64
	// FlowCount spreads traffic over this many UDP source ports (1 = a
	// single flow).
	FlowCount int
	// DSCP, when nonzero, stamps every frame's IPv4 DSCP field (DSCP >= 32,
	// e.g. 46/EF, classifies as high priority in the switch pipeline).
	DSCP uint8
	// Sent counts frames handed to the port.
	Sent int64
	// SendFails counts frames the port's FIFO refused.
	SendFails int64

	rng  *rand.Rand
	stop bool
}

// Start begins transmission on engine, running until Stop or until count
// frames have been sent (count <= 0 means unbounded).
func (c *CBR) Start(engine *sim.Engine, count int64) {
	if c.FlowCount <= 0 {
		c.FlowCount = 1
	}
	c.rng = rand.New(rand.NewSource(int64(c.Src.MAC.Uint64())))
	interval := sim.Duration(float64(c.FrameLen+wire.EthernetFramingOverhead) * 8 / c.RateBps * 1e9)
	if interval < 1 {
		interval = 1
	}
	var send func()
	send = func() {
		if c.stop || (count > 0 && c.Sent >= count) {
			return
		}
		srcPort := uint16(1000 + c.rng.Intn(c.FlowCount))
		f := wire.BuildDataFrameInto(wire.DefaultPool, c.Src.MAC, c.Dst.MAC, c.Src.IP, c.Dst.IP,
			srcPort, 9999, c.FrameLen, nil)
		if c.DSCP != 0 {
			wire.SetDSCP(f, c.DSCP)
		}
		if c.Port.Send(f) {
			c.Sent++
		} else {
			c.SendFails++
		}
		engine.Schedule(interval, send)
	}
	engine.Schedule(0, send)
}

// Stop halts the generator after the current frame.
func (c *CBR) Stop() { c.stop = true }

// Burst sends count frames back-to-back (line rate) from src toward dst —
// the incast microburst of §2.1. Each sender calls Burst at the same
// instant for an n:1 incast.
func Burst(port *netsim.Port, src, dst *netsim.Host, frameLen int, count int) (sent, failed int) {
	for i := 0; i < count; i++ {
		f := wire.BuildDataFrameInto(wire.DefaultPool, src.MAC, dst.MAC, src.IP, dst.IP,
			uint16(1000+i%64), 9999, frameLen, nil)
		if port.Send(f) {
			sent++
		} else {
			failed++
		}
	}
	return sent, failed
}

// PingPong measures round-trip latency like NetPIPE: a sends a frame to b,
// b's handler echoes it back, a records the RTT and sends the next probe.
// Handlers on both hosts are replaced.
type PingPong struct {
	Engine   *sim.Engine
	A, B     *netsim.Host
	APort    *netsim.Port
	BPort    *netsim.Port
	FrameLen int

	// RTTs holds one sample per completed round trip.
	RTTs []sim.Duration

	sentAt sim.Time
	left   int
	done   func()
}

// Run issues rounds probes and calls done (optional) when finished.
func (p *PingPong) Run(rounds int, done func()) {
	p.left = rounds
	p.done = done
	p.B.Handler = func(_ *netsim.Port, frame []byte) {
		// Echo: swap addressing and bounce back.
		echo := wire.BuildDataFrameInto(wire.DefaultPool, p.B.MAC, p.A.MAC, p.B.IP, p.A.IP,
			2001, 9999, p.FrameLen, nil)
		p.BPort.Send(echo)
	}
	p.A.Handler = func(_ *netsim.Port, frame []byte) {
		p.RTTs = append(p.RTTs, p.Engine.Now().Sub(p.sentAt))
		p.left--
		if p.left > 0 {
			p.probe()
		} else if p.done != nil {
			p.done()
		}
	}
	p.probe()
}

func (p *PingPong) probe() {
	p.sentAt = p.Engine.Now()
	f := wire.BuildDataFrameInto(wire.DefaultPool, p.A.MAC, p.B.MAC, p.A.IP, p.B.IP, 2000, 9999, p.FrameLen, nil)
	p.APort.Send(f)
}

// MedianOneWay returns half the median RTT — the end-to-end latency figure
// the paper plots in Figure 3a.
func (p *PingPong) MedianOneWay() sim.Duration {
	if len(p.RTTs) == 0 {
		return 0
	}
	sorted := append([]sim.Duration(nil), p.RTTs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2] / 2
}

// Zipf generates flow identifiers with a Zipfian popularity distribution —
// the skew of real data-center traffic that makes caching effective (§2.2).
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a generator over n flows with skew s (s > 1; typical
// data-center skew ≈ 1.05–1.3).
func NewZipf(seed int64, n int, s float64) *Zipf {
	if s <= 1 {
		s = 1.01
	}
	r := rand.New(rand.NewSource(seed))
	return &Zipf{z: rand.NewZipf(r, s, 1, uint64(n-1))}
}

// Next returns the next flow id in [0, n).
func (z *Zipf) Next() int { return int(z.z.Uint64()) }

// FlowID materializes flow i as a (srcPort, dstPort) pair. Distinct ids
// below 65535² map to distinct, nonzero port pairs.
func FlowID(i int) (srcPort, dstPort uint16) {
	return uint16(i%65535) + 1, uint16(i/65535%65535) + 1
}

// PoissonInterval draws an exponential inter-arrival for mean rate
// eventsPerSec, for open-loop arrival processes.
func PoissonInterval(rng *rand.Rand, eventsPerSec float64) sim.Duration {
	if eventsPerSec <= 0 {
		return sim.Second
	}
	d := -math.Log(1-rng.Float64()) / eventsPerSec
	return sim.Duration(d * 1e9)
}
