package wire

import "hash/crc32"

// FlowKey is the classic 5-tuple. It is a comparable value type, so it can
// key exact-match tables and Go maps directly (the gopacket Endpoint/Flow
// pattern, specialized to what the primitives hash on).
type FlowKey struct {
	SrcIP, DstIP     IP4
	Protocol         uint8
	SrcPort, DstPort uint16
}

// castagnoli mirrors the CRC unit switch ASICs expose to P4 programs.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Hash returns a 32-bit hash of the flow key, computed with CRC32-C the way
// a P4 program would use the switch's hash engine.
func (k FlowKey) Hash() uint32 {
	var b [13]byte
	copy(b[0:4], k.SrcIP[:])
	copy(b[4:8], k.DstIP[:])
	b[8] = k.Protocol
	be.PutUint16(b[9:11], k.SrcPort)
	be.PutUint16(b[11:13], k.DstPort)
	return crc32.Checksum(b[:], castagnoli)
}

// Index maps the flow hash onto a table of n entries. n must be positive.
func (k FlowKey) Index(n int) int { return int(k.Hash() % uint32(n)) }

// Reverse returns the key of the opposite direction of the flow.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{
		SrcIP: k.DstIP, DstIP: k.SrcIP,
		Protocol: k.Protocol,
		SrcPort:  k.DstPort, DstPort: k.SrcPort,
	}
}

// FlowOf extracts the 5-tuple from a parsed packet. Packets without an IPv4
// or UDP layer yield a key with the available fields and zeroes elsewhere.
func FlowOf(p *Packet) FlowKey {
	var k FlowKey
	if p.HasIPv4 {
		k.SrcIP, k.DstIP, k.Protocol = p.IP.Src, p.IP.Dst, p.IP.Protocol
	}
	if p.HasUDP {
		k.SrcPort, k.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	}
	if p.HasGRH {
		// RoCEv1: addresses ride in v4-mapped GIDs.
		if src, ok := GIDToIP4(p.GRH.SGID); ok {
			k.SrcIP = src
		}
		if dst, ok := GIDToIP4(p.GRH.DGID); ok {
			k.DstIP = dst
		}
	}
	return k
}
