package wire

import "fmt"

// GRH is the InfiniBand Global Route Header: the 40-byte routing header
// RoCEv1 places directly after the Ethernet header (where RoCEv2 uses
// IPv4+UDP). The simulation carries IPv4 addresses as v4-mapped GIDs
// (::ffff:a.b.c.d), as real RoCEv1 deployments do.
type GRH struct {
	TClass     uint8
	FlowLabel  uint32 // 20 bits
	PayLen     uint16 // bytes after the GRH, ICRC included
	NextHeader uint8  // 0x1B = IBA transport (BTH follows)
	HopLimit   uint8
	SGID       [16]byte
	DGID       [16]byte
}

// GRHNextHeaderIBA marks that a BTH follows the GRH.
const GRHNextHeaderIBA = 0x1B

// WireLen returns the encoded size of the header.
func (GRH) WireLen() int { return GRHLen }

// Put serializes the header into b.
func (h *GRH) Put(b []byte) int {
	_ = b[GRHLen-1]
	b[0] = 0x60 | h.TClass>>4 // IP version 6 + high tclass nibble
	b[1] = h.TClass<<4 | uint8(h.FlowLabel>>16)&0x0F
	b[2] = byte(h.FlowLabel >> 8)
	b[3] = byte(h.FlowLabel)
	be.PutUint16(b[4:6], h.PayLen)
	b[6] = h.NextHeader
	b[7] = h.HopLimit
	copy(b[8:24], h.SGID[:])
	copy(b[24:40], h.DGID[:])
	return GRHLen
}

// DecodeFromBytes parses the header from b.
func (h *GRH) DecodeFromBytes(b []byte) error {
	if len(b) < GRHLen {
		return tooShort("grh", GRHLen, len(b))
	}
	if v := b[0] >> 4; v != 6 {
		return fmt.Errorf("%w: GRH IPVer %d", ErrBadVersion, v)
	}
	h.TClass = b[0]<<4 | b[1]>>4
	h.FlowLabel = uint32(b[1]&0x0F)<<16 | uint32(b[2])<<8 | uint32(b[3])
	h.PayLen = be.Uint16(b[4:6])
	h.NextHeader = b[6]
	h.HopLimit = b[7]
	copy(h.SGID[:], b[8:24])
	copy(h.DGID[:], b[24:40])
	return nil
}

// V4MappedGID embeds an IPv4 address in a GID (::ffff:a.b.c.d).
func V4MappedGID(ip IP4) [16]byte {
	var g [16]byte
	g[10], g[11] = 0xFF, 0xFF
	copy(g[12:16], ip[:])
	return g
}

// GIDToIP4 extracts the IPv4 address from a v4-mapped GID; ok is false for
// native IPv6 GIDs.
func GIDToIP4(g [16]byte) (IP4, bool) {
	for i := 0; i < 10; i++ {
		if g[i] != 0 {
			return IP4{}, false
		}
	}
	if g[10] != 0xFF || g[11] != 0xFF {
		return IP4{}, false
	}
	return IP4{g[12], g[13], g[14], g[15]}, true
}
