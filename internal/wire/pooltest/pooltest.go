// Package pooltest makes frame leaks loud in tests: a package whose tests
// move pooled frames wires its TestMain through Main, and any test run that
// finishes with buffers still checked out of wire.DefaultPool fails the
// whole binary. It is the runtime complement of the gemlint frameown pass:
// the static check catches per-function contract violations, this ledger
// catches whatever escapes it.
package pooltest

import (
	"fmt"
	"os"
	"testing"

	"gem/internal/wire"
)

// Main runs the package's tests and then audits wire.DefaultPool: every
// frame checked out by a test must have been recycled by the time the last
// test finishes. Use it as the package's TestMain body:
//
//	func TestMain(m *testing.M) { pooltest.Main(m) }
//
// Tests that intentionally leave frames in flight (frames parked in switch
// queues when the virtual clock stops) must drain them or recycle them in a
// cleanup; the failure message reports the exact drift.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := wire.DefaultPool.AssertBalanced(0); err != nil {
			fmt.Fprintf(os.Stderr, "pooltest: frame leak across test run: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}
