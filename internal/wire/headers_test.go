package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMACRoundTrip(t *testing.T) {
	m := MACFromUint64(0x0123456789ab)
	if m.Uint64() != 0x0123456789ab {
		t.Fatalf("MAC round trip: %x", m.Uint64())
	}
	if got := m.String(); got != "01:23:45:67:89:ab" {
		t.Fatalf("MAC string = %q", got)
	}
	if !BroadcastMAC.IsBroadcast() {
		t.Fatal("BroadcastMAC not broadcast")
	}
	if m.IsBroadcast() {
		t.Fatal("unicast reported broadcast")
	}
}

func TestIP4RoundTrip(t *testing.T) {
	a := IP4FromUint32(0x0a000102)
	if a.String() != "10.0.1.2" {
		t.Fatalf("IP string = %q", a)
	}
	if a.Uint32() != 0x0a000102 {
		t.Fatalf("IP uint32 = %x", a.Uint32())
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	h := Ethernet{Dst: MACFromUint64(1), Src: MACFromUint64(2), EtherType: EtherTypeIPv4}
	buf := make([]byte, EthernetLen)
	if n := h.Put(buf); n != EthernetLen {
		t.Fatalf("Put returned %d", n)
	}
	var g Ethernet
	if err := g.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Fatalf("round trip: got %+v want %+v", g, h)
	}
}

func TestEthernetTooShort(t *testing.T) {
	var g Ethernet
	if err := g.DecodeFromBytes(make([]byte, 13)); !errors.Is(err, ErrTooShort) {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	h := IPv4{
		DSCP: 46, ECN: 1, TotalLen: 120, ID: 7, DontFrag: true,
		TTL: 64, Protocol: ProtoUDP,
		Src: IP4{10, 0, 0, 1}, Dst: IP4{10, 0, 0, 2},
	}
	buf := make([]byte, IPv4Len)
	h.Put(buf)
	// RFC 1071: checksum over a valid header (checksum field included) is 0.
	if s := ipChecksum(buf); s != 0 {
		t.Fatalf("checksum over encoded header = %#x, want 0", s)
	}
	var g IPv4
	if err := g.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Fatalf("round trip:\n got %+v\nwant %+v", g, h)
	}
	// Corrupt a byte: checksum must no longer verify.
	buf[15] ^= 0xff
	if s := ipChecksum(buf); s == 0 {
		t.Fatal("checksum did not detect corruption")
	}
}

func TestIPv4RejectsBadVersion(t *testing.T) {
	buf := make([]byte, IPv4Len)
	buf[0] = 0x65 // version 6
	var g IPv4
	if err := g.DecodeFromBytes(buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestIPv4RejectsOptions(t *testing.T) {
	buf := make([]byte, 24)
	buf[0] = 0x46 // IHL 6
	var g IPv4
	if err := g.DecodeFromBytes(buf); err == nil {
		t.Fatal("expected error for IPv4 options")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	h := UDP{SrcPort: 1234, DstPort: UDPPortRoCEv2, Length: 100, Checksum: 0}
	buf := make([]byte, UDPLen)
	h.Put(buf)
	var g UDP
	if err := g.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Fatalf("round trip: got %+v want %+v", g, h)
	}
}

func TestBTHRoundTrip(t *testing.T) {
	h := BTH{
		Opcode: OpWriteOnly, SE: true, M: false, PadCount: 3,
		PKey: DefaultPKey, DestQP: 0xABCDEF, AckReq: true, PSN: 0x123456,
	}
	buf := make([]byte, BTHLen)
	h.Put(buf)
	var g BTH
	if err := g.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Fatalf("round trip:\n got %+v\nwant %+v", g, h)
	}
}

func TestBTH24BitFields(t *testing.T) {
	h := BTH{Opcode: OpReadRequest, DestQP: 0xFFFFFF, PSN: 0xFFFFFF}
	buf := make([]byte, BTHLen)
	h.Put(buf)
	var g BTH
	if err := g.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if g.DestQP != 0xFFFFFF || g.PSN != 0xFFFFFF {
		t.Fatalf("24-bit fields clipped: %+v", g)
	}
}

func TestBTHRejectsBadTVer(t *testing.T) {
	buf := make([]byte, BTHLen)
	buf[1] = 0x05 // TVer=5
	var g BTH
	if err := g.DecodeFromBytes(buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestRETHRoundTrip(t *testing.T) {
	h := RETH{VA: 0xDEADBEEFCAFE0123, RKey: 0x11223344, DMALen: 2048}
	buf := make([]byte, RETHLen)
	h.Put(buf)
	var g RETH
	if err := g.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Fatalf("round trip: got %+v want %+v", g, h)
	}
}

func TestAtomicETHRoundTrip(t *testing.T) {
	h := AtomicETH{VA: 0x1000, RKey: 7, SwapAdd: 42, Compare: 99}
	buf := make([]byte, AtomicETHLen)
	h.Put(buf)
	var g AtomicETH
	if err := g.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Fatalf("round trip: got %+v want %+v", g, h)
	}
}

func TestAETHRoundTripAndNak(t *testing.T) {
	h := AETH{Syndrome: AETHNakPSNSeq, MSN: 0x00FF00}
	buf := make([]byte, AETHLen)
	h.Put(buf)
	var g AETH
	if err := g.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Fatalf("round trip: got %+v want %+v", g, h)
	}
	if !g.IsNak() {
		t.Fatal("PSN-seq syndrome not reported as NAK")
	}
	ack := AETH{Syndrome: AETHAck}
	if ack.IsNak() {
		t.Fatal("ACK syndrome reported as NAK")
	}
}

func TestAtomicAckETHRoundTrip(t *testing.T) {
	h := AtomicAckETH{OrigData: 0xFEEDFACE12345678}
	buf := make([]byte, AtomicAckETHLen)
	h.Put(buf)
	var g AtomicAckETH
	if err := g.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Fatalf("round trip: got %+v want %+v", g, h)
	}
}

func TestOpcodeClassification(t *testing.T) {
	cases := []struct {
		op                                    Opcode
		write, readResp, atomic, req, hasReth bool
	}{
		{OpWriteOnly, true, false, false, true, true},
		{OpWriteFirst, true, false, false, true, true},
		{OpWriteMiddle, true, false, false, true, false},
		{OpWriteLast, true, false, false, true, false},
		{OpReadRequest, false, false, false, true, true},
		{OpReadResponseOnly, false, true, false, false, false},
		{OpReadResponseFirst, false, true, false, false, false},
		{OpReadResponseMiddle, false, true, false, false, false},
		{OpReadResponseLast, false, true, false, false, false},
		{OpFetchAdd, false, false, true, true, false},
		{OpCompareSwap, false, false, true, true, false},
		{OpAcknowledge, false, false, false, false, false},
		{OpAtomicAcknowledge, false, false, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsWrite() != c.write {
			t.Errorf("%v IsWrite = %v", c.op, c.op.IsWrite())
		}
		if c.op.IsReadResponse() != c.readResp {
			t.Errorf("%v IsReadResponse = %v", c.op, c.op.IsReadResponse())
		}
		if c.op.IsAtomic() != c.atomic {
			t.Errorf("%v IsAtomic = %v", c.op, c.op.IsAtomic())
		}
		if c.op.IsRequest() != c.req {
			t.Errorf("%v IsRequest = %v", c.op, c.op.IsRequest())
		}
		if c.op.HasRETH() != c.hasReth {
			t.Errorf("%v HasRETH = %v", c.op, c.op.HasRETH())
		}
	}
}

func TestOpcodeStrings(t *testing.T) {
	if OpWriteOnly.String() != "RDMA_WRITE_ONLY" {
		t.Fatalf("got %q", OpWriteOnly.String())
	}
	if Opcode(0xEE).String() != "Opcode(0xee)" {
		t.Fatalf("got %q", Opcode(0xEE).String())
	}
}

// Property: every header round-trips through Put/DecodeFromBytes.
func TestPropBTHRoundTrip(t *testing.T) {
	f := func(op uint8, se, m, ack bool, pad uint8, pkey uint16, qp, psn uint32) bool {
		h := BTH{
			Opcode: Opcode(op), SE: se, M: m, PadCount: pad & 3,
			PKey: pkey, DestQP: qp & 0xFFFFFF, AckReq: ack, PSN: psn & 0xFFFFFF,
		}
		buf := make([]byte, BTHLen)
		h.Put(buf)
		var g BTH
		if err := g.DecodeFromBytes(buf); err != nil {
			return false
		}
		return g == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropRETHRoundTrip(t *testing.T) {
	f := func(va uint64, rkey, dmaLen uint32) bool {
		h := RETH{VA: va, RKey: rkey, DMALen: dmaLen}
		buf := make([]byte, RETHLen)
		h.Put(buf)
		var g RETH
		return g.DecodeFromBytes(buf) == nil && g == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropIPv4ChecksumDetectsSingleByteCorruption(t *testing.T) {
	f := func(src, dst uint32, ttl uint8, totalLen uint16, flip uint8) bool {
		h := IPv4{TTL: ttl, Protocol: ProtoUDP, TotalLen: totalLen,
			Src: IP4FromUint32(src), Dst: IP4FromUint32(dst)}
		buf := make([]byte, IPv4Len)
		h.Put(buf)
		pos := int(flip) % IPv4Len
		bit := byte(1) << (flip % 8)
		buf[pos] ^= bit
		return ipChecksum(buf) != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPutPanicsOnShortBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var h BTH
	h.Put(make([]byte, 4))
}

func TestWireLens(t *testing.T) {
	// The lengths here are load-bearing for the paper's §4 overhead math.
	if (Ethernet{}).WireLen() != 14 ||
		(IPv4{}).WireLen() != 20 ||
		(UDP{}).WireLen() != 8 ||
		(BTH{}).WireLen() != 12 ||
		(RETH{}).WireLen() != 16 ||
		(AtomicETH{}).WireLen() != 28 ||
		(AETH{}).WireLen() != 4 ||
		(AtomicAckETH{}).WireLen() != 8 {
		t.Fatal("header wire length regressed")
	}
}

func TestBTHEncodingBytes(t *testing.T) {
	// Pin the exact byte layout against the IBA spec field positions.
	h := BTH{Opcode: OpFetchAdd, PKey: 0xFFFF, DestQP: 0x010203, AckReq: true, PSN: 0x0A0B0C}
	buf := make([]byte, BTHLen)
	h.Put(buf)
	want := []byte{0x14, 0x00, 0xFF, 0xFF, 0x00, 0x01, 0x02, 0x03, 0x80, 0x0A, 0x0B, 0x0C}
	if !bytes.Equal(buf, want) {
		t.Fatalf("BTH bytes = % x, want % x", buf, want)
	}
}
