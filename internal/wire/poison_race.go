//go:build race

package wire

// poolPoison enables overwriting released buffers under the race detector
// (`go test -race`, CI tier 1), so contract violations — retaining a frame
// or a decoded Payload past its release — fail loudly instead of silently
// corrupting data. Kept off in normal builds: poisoning writes every byte
// of every released buffer and would dominate the hot path.
const poolPoison = true
