//go:build !race

package wire

// poolPoison is off in normal builds; see poison_race.go.
const poolPoison = false
