package wire

// Priority Flow Control (IEEE 802.1Qbb) frames, the §7 mitigation for RDMA
// packet drops: "one could enable PFC, just like today's RoCE deployment,
// to avoid congestion drops." A NIC whose receive resources run low pauses
// the switch port feeding it; the backlog then waits in the switch buffer
// instead of being dropped at the NIC.

// EtherTypeMACControl is the MAC control frame ethertype (pause/PFC).
const EtherTypeMACControl uint16 = 0x8808

// PFCOpcode is the 802.1Qbb priority pause opcode.
const PFCOpcode uint16 = 0x0101

// PFCDst is the reserved multicast address MAC control frames use.
var PFCDst = MAC{0x01, 0x80, 0xC2, 0x00, 0x00, 0x01}

// PFCQuantum is 512 bit times: the unit of pause duration.
const PFCQuantum = 512

// PFCFrameLen is Ethernet header + opcode + class vector + 8 pause times,
// padded to the Ethernet minimum.
const PFCFrameLen = MinFrameSize

// PFC is a priority pause frame. Only class 0 is used by the simulation.
type PFC struct {
	Src MAC
	// ClassEnable is the per-priority enable bitmap.
	ClassEnable uint16
	// PauseQuanta holds the pause time per priority, in 512-bit-time
	// quanta; 0 resumes.
	PauseQuanta [8]uint16
}

// BuildPFCInto encodes a pause (or resume, quanta=0) for class 0, drawing
// the frame buffer from pool (nil = plain allocation).
func BuildPFCInto(pool *Pool, src MAC, quanta uint16) []byte {
	p := PFC{Src: src, ClassEnable: 1}
	p.PauseQuanta[0] = quanta
	return p.EncodeInto(pool)
}

// BuildPFC is BuildPFCInto drawing from DefaultPool; the frame must go back to it (Put or fabric handoff).
func BuildPFC(src MAC, quanta uint16) []byte {
	return BuildPFCInto(DefaultPool, src, quanta)
}

// EncodeInto serializes the frame into a buffer drawn from pool (nil =
// plain allocation).
func (p *PFC) EncodeInto(pool *Pool) []byte {
	frame := pool.Get(PFCFrameLen)
	eth := Ethernet{Dst: PFCDst, Src: p.Src, EtherType: EtherTypeMACControl}
	off := eth.Put(frame)
	be.PutUint16(frame[off:], PFCOpcode)
	be.PutUint16(frame[off+2:], p.ClassEnable)
	for i, q := range p.PauseQuanta {
		be.PutUint16(frame[off+4+2*i:], q)
	}
	// The frame is mostly padding; pooled buffers carry stale bytes.
	clear(frame[off+4+2*len(p.PauseQuanta):])
	return frame
}

// Encode serializes the frame into a DefaultPool buffer.
func (p *PFC) Encode() []byte { return p.EncodeInto(DefaultPool) }

// DecodePFC parses frame as a PFC frame; ok is false if it is not one.
func DecodePFC(frame []byte) (p PFC, ok bool) {
	var eth Ethernet
	if eth.DecodeFromBytes(frame) != nil || eth.EtherType != EtherTypeMACControl {
		return p, false
	}
	body := frame[EthernetLen:]
	if len(body) < 20 || be.Uint16(body[0:2]) != PFCOpcode {
		return p, false
	}
	p.Src = eth.Src
	p.ClassEnable = be.Uint16(body[2:4])
	for i := range p.PauseQuanta {
		p.PauseQuanta[i] = be.Uint16(body[4+2*i : 6+2*i])
	}
	return p, true
}

// IsMACControl reports whether the frame is a MAC control (pause) frame,
// cheaply, without full parsing.
func IsMACControl(frame []byte) bool {
	return len(frame) >= EthernetLen &&
		frame[12] == 0x88 && frame[13] == 0x08
}
