// Package wire implements byte-exact encoders and decoders for the protocol
// headers that a switch data plane must craft and parse to speak RoCEv2 with
// commodity RDMA NICs: Ethernet II, IPv4, UDP, and the InfiniBand transport
// headers (BTH, RETH, AETH, AtomicETH, AtomicAckETH) plus the trailing ICRC.
//
// The design follows the gopacket conventions from the Go networking guides:
// each header type has a fixed WireLen, a Put method that serializes into a
// caller-provided buffer, and a DecodeFromBytes method that parses into a
// preallocated struct without copying payload bytes. Composite helpers in
// frame.go build and parse whole RoCE frames in one call.
//
// Everything the simulation sends "on the wire" is produced by this package;
// the switch and the RNIC models communicate only through these bytes, which
// is what makes the paper's feasibility claim (RDMA requests are just
// Ethernet packets any device can craft) meaningful in simulation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// be is the byte order of every header in this package.
var be = binary.BigEndian

// Decoding errors. Decoders return wrapped versions carrying detail; use
// errors.Is to classify.
var (
	ErrTooShort    = errors.New("wire: buffer too short")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadProtocol = errors.New("wire: unexpected protocol")
	ErrBadICRC     = errors.New("wire: ICRC mismatch")
)

func tooShort(what string, need, have int) error {
	return fmt.Errorf("%w: %s needs %d bytes, have %d", ErrTooShort, what, need, have)
}

// EtherType values used by the simulation.
const (
	EtherTypeIPv4   uint16 = 0x0800
	EtherTypeRoCEv1 uint16 = 0x8915 // RoCEv1: GRH directly over Ethernet
	EtherTypeTest   uint16 = 0x88B5 // IEEE local experimental; used by raw traffic generators
)

// Well-known constants of the RoCEv2 encapsulation.
const (
	UDPPortRoCEv2 = 4791 // IANA-assigned destination port for RoCEv2
	ProtoUDP      = 17
)

// Physical-layer framing overhead per Ethernet frame: preamble (7) + SFD (1)
// + FCS (4) + minimum inter-frame gap (12). Link serialization accounts for
// these bytes even though they are not part of the frame buffer.
const EthernetFramingOverhead = 24

// MinFrameSize is the minimum Ethernet payload-bearing frame size (without
// FCS, which lives in the framing overhead here).
const MinFrameSize = 60
