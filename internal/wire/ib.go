package wire

import "fmt"

// Opcode is an InfiniBand Base Transport Header opcode. Only the Reliable
// Connection (RC) opcodes the primitives need are defined; values follow the
// InfiniBand Architecture Specification vol 1, table 35.
type Opcode uint8

// RC opcodes.
const (
	OpSendFirst          Opcode = 0x00
	OpSendMiddle         Opcode = 0x01
	OpSendLast           Opcode = 0x02
	OpSendOnly           Opcode = 0x04
	OpWriteFirst         Opcode = 0x06
	OpWriteMiddle        Opcode = 0x07
	OpWriteLast          Opcode = 0x08
	OpWriteOnly          Opcode = 0x0A
	OpReadRequest        Opcode = 0x0C
	OpReadResponseFirst  Opcode = 0x0D
	OpReadResponseMiddle Opcode = 0x0E
	OpReadResponseLast   Opcode = 0x0F
	OpReadResponseOnly   Opcode = 0x10
	OpAcknowledge        Opcode = 0x11
	OpAtomicAcknowledge  Opcode = 0x12
	OpCompareSwap        Opcode = 0x13
	OpFetchAdd           Opcode = 0x14
)

func (o Opcode) String() string {
	switch o {
	case OpSendFirst:
		return "SEND_FIRST"
	case OpSendMiddle:
		return "SEND_MIDDLE"
	case OpSendLast:
		return "SEND_LAST"
	case OpSendOnly:
		return "SEND_ONLY"
	case OpWriteFirst:
		return "RDMA_WRITE_FIRST"
	case OpWriteMiddle:
		return "RDMA_WRITE_MIDDLE"
	case OpWriteLast:
		return "RDMA_WRITE_LAST"
	case OpWriteOnly:
		return "RDMA_WRITE_ONLY"
	case OpReadRequest:
		return "RDMA_READ_REQUEST"
	case OpReadResponseFirst:
		return "RDMA_READ_RESPONSE_FIRST"
	case OpReadResponseMiddle:
		return "RDMA_READ_RESPONSE_MIDDLE"
	case OpReadResponseLast:
		return "RDMA_READ_RESPONSE_LAST"
	case OpReadResponseOnly:
		return "RDMA_READ_RESPONSE_ONLY"
	case OpAcknowledge:
		return "ACKNOWLEDGE"
	case OpAtomicAcknowledge:
		return "ATOMIC_ACKNOWLEDGE"
	case OpCompareSwap:
		return "COMPARE_SWAP"
	case OpFetchAdd:
		return "FETCH_ADD"
	default:
		return fmt.Sprintf("Opcode(0x%02x)", uint8(o))
	}
}

// IsReadResponse reports whether o is any RDMA READ response opcode.
func (o Opcode) IsReadResponse() bool {
	return o >= OpReadResponseFirst && o <= OpReadResponseOnly
}

// IsWrite reports whether o is any RDMA WRITE opcode.
func (o Opcode) IsWrite() bool {
	return o == OpWriteFirst || o == OpWriteMiddle || o == OpWriteLast || o == OpWriteOnly
}

// IsAtomic reports whether o is an atomic request.
func (o Opcode) IsAtomic() bool { return o == OpCompareSwap || o == OpFetchAdd }

// IsRequest reports whether the responder is expected to consume a new
// request PSN for o.
func (o Opcode) IsRequest() bool {
	return o.IsWrite() || o == OpReadRequest || o.IsAtomic() ||
		o == OpSendFirst || o == OpSendMiddle || o == OpSendLast || o == OpSendOnly
}

// HasRETH reports whether a packet with opcode o carries an RETH.
func (o Opcode) HasRETH() bool {
	return o == OpWriteFirst || o == OpWriteOnly || o == OpReadRequest
}

// BTHLen is the length of the Base Transport Header.
const BTHLen = 12

// BTH is the InfiniBand Base Transport Header: 12 bytes present in every
// RoCE packet after the UDP header.
//
// Layout (big endian):
//
//	byte 0      opcode
//	byte 1      SE(1) M(1) Pad(2) TVer(4)
//	bytes 2-3   partition key
//	byte 4      reserved
//	bytes 5-7   destination QP (24 bits)
//	byte 8      AckReq(1) reserved(7)
//	bytes 9-11  packet sequence number (24 bits)
type BTH struct {
	Opcode   Opcode
	SE       bool  // solicited event
	M        bool  // MigReq
	PadCount uint8 // 2 bits: pad bytes appended to payload
	PKey     uint16
	DestQP   uint32 // 24 bits
	AckReq   bool
	PSN      uint32 // 24 bits
}

// DefaultPKey is the default partition key (all members).
const DefaultPKey = 0xFFFF

// WireLen returns the encoded size of the header.
func (BTH) WireLen() int { return BTHLen }

// Put serializes the header into b.
func (h *BTH) Put(b []byte) int {
	_ = b[BTHLen-1]
	b[0] = byte(h.Opcode)
	var b1 byte
	if h.SE {
		b1 |= 0x80
	}
	if h.M {
		b1 |= 0x40
	}
	b1 |= (h.PadCount & 0x3) << 4
	b[1] = b1 // TVer = 0
	be.PutUint16(b[2:4], h.PKey)
	b[4] = 0
	b[5] = byte(h.DestQP >> 16)
	b[6] = byte(h.DestQP >> 8)
	b[7] = byte(h.DestQP)
	if h.AckReq {
		b[8] = 0x80
	} else {
		b[8] = 0
	}
	b[9] = byte(h.PSN >> 16)
	b[10] = byte(h.PSN >> 8)
	b[11] = byte(h.PSN)
	return BTHLen
}

// DecodeFromBytes parses the header from b.
func (h *BTH) DecodeFromBytes(b []byte) error {
	if len(b) < BTHLen {
		return tooShort("bth", BTHLen, len(b))
	}
	h.Opcode = Opcode(b[0])
	h.SE = b[1]&0x80 != 0
	h.M = b[1]&0x40 != 0
	h.PadCount = b[1] >> 4 & 0x3
	if tver := b[1] & 0xf; tver != 0 {
		return fmt.Errorf("%w: BTH TVer %d", ErrBadVersion, tver)
	}
	h.PKey = be.Uint16(b[2:4])
	h.DestQP = uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7])
	h.AckReq = b[8]&0x80 != 0
	h.PSN = uint32(b[9])<<16 | uint32(b[10])<<8 | uint32(b[11])
	return nil
}

// RETHLen is the length of the RDMA Extended Transport Header.
const RETHLen = 16

// RETH is the RDMA Extended Transport Header carried by WRITE first/only and
// READ request packets: virtual address, remote key, and DMA length.
type RETH struct {
	VA     uint64
	RKey   uint32
	DMALen uint32
}

// WireLen returns the encoded size of the header.
func (RETH) WireLen() int { return RETHLen }

// Put serializes the header into b.
func (h *RETH) Put(b []byte) int {
	_ = b[RETHLen-1]
	be.PutUint64(b[0:8], h.VA)
	be.PutUint32(b[8:12], h.RKey)
	be.PutUint32(b[12:16], h.DMALen)
	return RETHLen
}

// DecodeFromBytes parses the header from b.
func (h *RETH) DecodeFromBytes(b []byte) error {
	if len(b) < RETHLen {
		return tooShort("reth", RETHLen, len(b))
	}
	h.VA = be.Uint64(b[0:8])
	h.RKey = be.Uint32(b[8:12])
	h.DMALen = be.Uint32(b[12:16])
	return nil
}

// AtomicETHLen is the length of the Atomic Extended Transport Header.
const AtomicETHLen = 28

// AtomicETH is the extended header of FetchAdd and CompareSwap requests.
type AtomicETH struct {
	VA      uint64
	RKey    uint32
	SwapAdd uint64 // add operand for FetchAdd, swap value for CompareSwap
	Compare uint64 // compare value for CompareSwap; ignored for FetchAdd
}

// WireLen returns the encoded size of the header.
func (AtomicETH) WireLen() int { return AtomicETHLen }

// Put serializes the header into b.
func (h *AtomicETH) Put(b []byte) int {
	_ = b[AtomicETHLen-1]
	be.PutUint64(b[0:8], h.VA)
	be.PutUint32(b[8:12], h.RKey)
	be.PutUint64(b[12:20], h.SwapAdd)
	be.PutUint64(b[20:28], h.Compare)
	return AtomicETHLen
}

// DecodeFromBytes parses the header from b.
func (h *AtomicETH) DecodeFromBytes(b []byte) error {
	if len(b) < AtomicETHLen {
		return tooShort("atomiceth", AtomicETHLen, len(b))
	}
	h.VA = be.Uint64(b[0:8])
	h.RKey = be.Uint32(b[8:12])
	h.SwapAdd = be.Uint64(b[12:20])
	h.Compare = be.Uint64(b[20:28])
	return nil
}

// AETHLen is the length of the ACK Extended Transport Header.
const AETHLen = 4

// AETH syndromes (high 3 bits select the class; see IBA 9.7.5.2.4).
const (
	AETHAck         uint8 = 0x00 // ACK, credit field in low 5 bits
	AETHRNRNak      uint8 = 0x20
	AETHNakPSNSeq   uint8 = 0x60 // NAK code 0: PSN sequence error
	AETHNakInvalid  uint8 = 0x61 // NAK code 1: invalid request
	AETHNakRemAcces uint8 = 0x62 // NAK code 2: remote access error
	AETHNakRemOp    uint8 = 0x63 // NAK code 3: remote operation error
)

// AETH is the ACK Extended Transport Header carried by ACK, atomic ACK and
// first/last/only READ response packets.
type AETH struct {
	Syndrome uint8
	MSN      uint32 // 24 bits: message sequence number
}

// WireLen returns the encoded size of the header.
func (AETH) WireLen() int { return AETHLen }

// Put serializes the header into b.
func (h *AETH) Put(b []byte) int {
	_ = b[AETHLen-1]
	b[0] = h.Syndrome
	b[1] = byte(h.MSN >> 16)
	b[2] = byte(h.MSN >> 8)
	b[3] = byte(h.MSN)
	return AETHLen
}

// DecodeFromBytes parses the header from b.
func (h *AETH) DecodeFromBytes(b []byte) error {
	if len(b) < AETHLen {
		return tooShort("aeth", AETHLen, len(b))
	}
	h.Syndrome = b[0]
	h.MSN = uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	return nil
}

// IsNak reports whether the syndrome encodes a NAK.
func (h *AETH) IsNak() bool { return h.Syndrome&0xE0 == 0x60 }

// AtomicAckETHLen is the length of the Atomic ACK Extended Transport Header.
const AtomicAckETHLen = 8

// AtomicAckETH carries the original value read from remote memory by an
// atomic operation.
type AtomicAckETH struct {
	OrigData uint64
}

// WireLen returns the encoded size of the header.
func (AtomicAckETH) WireLen() int { return AtomicAckETHLen }

// Put serializes the header into b.
func (h *AtomicAckETH) Put(b []byte) int {
	_ = b[AtomicAckETHLen-1]
	be.PutUint64(b[0:8], h.OrigData)
	return AtomicAckETHLen
}

// DecodeFromBytes parses the header from b.
func (h *AtomicAckETH) DecodeFromBytes(b []byte) error {
	if len(b) < AtomicAckETHLen {
		return tooShort("atomicacketh", AtomicAckETHLen, len(b))
	}
	h.OrigData = be.Uint64(b[0:8])
	return nil
}

// ICRCLen is the length of the invariant CRC trailing every RoCE packet.
const ICRCLen = 4

// GRHLen is the length of the Global Route Header used by RoCEv1 instead of
// IPv4+UDP. The simulation transmits RoCEv2, but the overhead accounting in
// §4 of the paper compares both encapsulations.
const GRHLen = 40
