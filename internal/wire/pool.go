package wire

import "sync"

// Pool is a free list of frame buffers keyed by power-of-two size class.
// The simulation's "line rate" is how many frames per second the wire
// codecs can push through a core, so the per-frame hot path must not
// allocate: builders draw buffers here and terminal consumers return them.
//
// Ownership contract (see DESIGN.md, "Hot path & memory discipline"):
//
//   - A frame handed to netsim.Port.Send, switchsim.Switch.Inject, or
//     switchsim.Context.Emit is owned by the fabric from that point on and
//     may be recycled after terminal consumption. Senders must not retain a
//     frame they sent — retain a copy (drawn from the pool) instead.
//   - Decoded Packet views (Payload in particular) alias the frame buffer
//     and must not outlive its release; copy-on-retain before Release.
//   - Put must be called at most once per Get — a double release recycles
//     one buffer into two owners and corrupts both frames.
//
// A Pool is safe for concurrent use; the parallel experiment runner shares
// DefaultPool across goroutines. A nil *Pool is valid and degrades to plain
// allocation (Get = make, Put = no-op), which keeps the allocating wrapper
// APIs trivial.
type Pool struct {
	mu   sync.Mutex
	free [poolClasses][][]byte

	hits     int64
	misses   int64
	puts     int64
	oversize int64 // Gets larger than the largest class (plain make)
	dropped  int64 // Puts whose capacity fit no class (left to the GC)
}

const (
	poolMinShift = 6  // smallest class: 64 B (minimum Ethernet frame)
	poolMaxShift = 14 // largest class: 16 KiB (> any MTU used here)
	poolClasses  = poolMaxShift - poolMinShift + 1
)

// DefaultPool is the process-wide pool the simulation components share.
var DefaultPool = NewPool()

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// classFor returns the smallest class whose buffers hold n bytes, or -1 if
// n exceeds the largest class.
func classFor(n int) int {
	if n > 1<<poolMaxShift {
		return -1
	}
	c := 0
	for 1<<(poolMinShift+c) < n {
		c++
	}
	return c
}

// Get returns a buffer of length n. The contents are unspecified — callers
// must overwrite every byte they care about (the frame builders do).
func (p *Pool) Get(n int) []byte {
	if p == nil {
		return make([]byte, n)
	}
	c := classFor(n)
	if c < 0 {
		// Out-of-class traffic must stay visible in Stats: a hot path full
		// of oversized frames would otherwise look like a healthy pool.
		p.mu.Lock()
		p.oversize++
		p.mu.Unlock()
		return make([]byte, n)
	}
	p.mu.Lock()
	if free := p.free[c]; len(free) > 0 {
		buf := free[len(free)-1]
		free[len(free)-1] = nil
		p.free[c] = free[:len(free)-1]
		p.hits++
		p.mu.Unlock()
		return buf[:n]
	}
	p.misses++
	p.mu.Unlock()
	return make([]byte, n, 1<<(poolMinShift+c))
}

// Put returns a buffer to the pool. Buffers smaller than the smallest class
// or larger than the largest are dropped (left to the GC); any capacity in
// between is binned by the largest class it can serve, so foreign buffers
// (plain make-allocated frames) are accepted too.
func (p *Pool) Put(b []byte) {
	if p == nil || b == nil {
		return
	}
	if poolPoison {
		// Race/debug builds overwrite released buffers so a consumer that
		// retains a frame past its release reads obvious garbage instead of
		// silently decoding a recycled frame (see poison_race.go).
		poison(b[:cap(b)])
	}
	c := cap(b)
	if c < 1<<poolMinShift || c > 1<<poolMaxShift {
		p.mu.Lock()
		p.dropped++
		p.mu.Unlock()
		return
	}
	// Largest class with size <= cap.
	cl := 0
	for cl+1 < poolClasses && 1<<(poolMinShift+cl+1) <= c {
		cl++
	}
	p.mu.Lock()
	p.free[cl] = append(p.free[cl], b[:0])
	p.puts++
	p.mu.Unlock()
}

// PoolStats is an observability snapshot of a pool.
type PoolStats struct {
	Hits         int64 // Gets served from the free list
	Misses       int64 // in-class Gets that had to allocate
	Puts         int64 // buffers returned to a free list
	OversizeGets int64 // Gets larger than the largest class (plain make)
	DroppedPuts  int64 // Puts whose capacity fit no class (left to the GC)
	Free         int   // buffers currently pooled
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PoolStats{
		Hits: p.hits, Misses: p.misses, Puts: p.puts,
		OversizeGets: p.oversize, DroppedPuts: p.dropped,
	}
	for _, f := range p.free {
		s.Free += len(f)
	}
	return s
}

// poison fills a released buffer with a recognizable garbage byte. It is
// wired to Put only when poolPoison is set (race builds); the pattern makes
// use-after-release show up as wildly wrong lengths/opcodes, not plausible
// stale data.
func poison(b []byte) {
	for i := range b {
		b[i] = 0xDD
	}
}
