package wire

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Pool is a free list of frame buffers keyed by power-of-two size class.
// The simulation's "line rate" is how many frames per second the wire
// codecs can push through a core, so the per-frame hot path must not
// allocate: builders draw buffers here and terminal consumers return them.
//
// Ownership contract (see DESIGN.md, "Hot path & memory discipline"):
//
//   - A frame handed to netsim.Port.Send, switchsim.Switch.Inject, or
//     switchsim.Context.Emit is owned by the fabric from that point on and
//     may be recycled after terminal consumption. Senders must not retain a
//     frame they sent — retain a copy (drawn from the pool) instead.
//   - Decoded Packet views (Payload in particular) alias the frame buffer
//     and must not outlive its release; copy-on-retain before Release.
//   - Put must be called at most once per Get — a double release recycles
//     one buffer into two owners and corrupts both frames.
//
// A Pool is safe for concurrent use; the parallel experiment runner shares
// DefaultPool across goroutines. A nil *Pool is valid and degrades to plain
// allocation (Get = make, Put = no-op), which keeps the allocating wrapper
// APIs trivial.
type Pool struct {
	mu   sync.Mutex
	free [poolClasses][][]byte

	hits     int64
	misses   int64
	puts     int64
	oversize int64 // Gets larger than the largest class (plain make)
	dropped  int64 // Puts whose capacity fit no class (left to the GC)

	// trace, when non-nil, maps each checked-out buffer (by the address of
	// its first byte) to the Get call stack that produced it. Enabled via
	// GEM_POOL_TRACE=1 so a failing AssertBalanced can name the leaker.
	trace map[*byte]string
	// badPuts records stacks of Puts whose buffer was not checked out —
	// double releases or foreign (make-allocated) frames (capped).
	badPuts []string
}

const (
	poolMinShift = 6  // smallest class: 64 B (minimum Ethernet frame)
	poolMaxShift = 14 // largest class: 16 KiB (> any MTU used here)
	poolClasses  = poolMaxShift - poolMinShift + 1
)

// DefaultPool is the process-wide pool the simulation components share.
var DefaultPool = NewPool()

// NewPool returns an empty pool. Setting GEM_POOL_TRACE=1 in the
// environment makes the pool record the Get call stack of every
// checked-out buffer so AssertBalanced can report who leaked (slow;
// meant for chasing a failing leak check, not for benchmarks).
func NewPool() *Pool {
	p := &Pool{}
	if os.Getenv("GEM_POOL_TRACE") == "1" {
		p.trace = make(map[*byte]string)
	}
	return p
}

// traceKey identifies a buffer by the address of its first byte at full
// capacity, which survives re-slicing between Get and Put.
func traceKey(b []byte) *byte {
	if cap(b) == 0 {
		return nil
	}
	return &b[:1][0]
}

// traced records the caller stack for a checked-out buffer when tracing is
// on, and returns the buffer either way.
func (p *Pool) traced(b []byte) []byte {
	if p.trace == nil {
		return b
	}
	if k := traceKey(b); k != nil {
		stk := make([]byte, 8192)
		stk = stk[:runtime.Stack(stk, false)]
		p.mu.Lock()
		p.trace[k] = string(stk)
		p.mu.Unlock()
	}
	return b
}

// classFor returns the smallest class whose buffers hold n bytes, or -1 if
// n exceeds the largest class.
func classFor(n int) int {
	if n > 1<<poolMaxShift {
		return -1
	}
	c := 0
	for 1<<(poolMinShift+c) < n {
		c++
	}
	return c
}

// Get returns a buffer of length n. The contents are unspecified — callers
// must overwrite every byte they care about (the frame builders do).
func (p *Pool) Get(n int) []byte {
	if p == nil {
		return make([]byte, n)
	}
	c := classFor(n)
	if c < 0 {
		// Out-of-class traffic must stay visible in Stats: a hot path full
		// of oversized frames would otherwise look like a healthy pool.
		p.mu.Lock()
		p.oversize++
		p.mu.Unlock()
		return p.traced(make([]byte, n))
	}
	p.mu.Lock()
	if free := p.free[c]; len(free) > 0 {
		buf := free[len(free)-1]
		free[len(free)-1] = nil
		p.free[c] = free[:len(free)-1]
		p.hits++
		p.mu.Unlock()
		return p.traced(buf[:n])
	}
	p.misses++
	p.mu.Unlock()
	return p.traced(make([]byte, n, 1<<(poolMinShift+c)))
}

// Put returns a buffer to the pool. Buffers smaller than the smallest class
// or larger than the largest are dropped (left to the GC); any capacity in
// between is binned by the largest class it can serve, so foreign buffers
// (plain make-allocated frames) are accepted too.
func (p *Pool) Put(b []byte) {
	if p == nil || b == nil {
		return
	}
	if p.trace != nil {
		if k := traceKey(b); k != nil {
			stk := make([]byte, 8192)
			stk = stk[:runtime.Stack(stk, false)]
			p.mu.Lock()
			if _, ok := p.trace[k]; ok {
				delete(p.trace, k)
			} else if len(p.badPuts) < 16 {
				// Not checked out: a double release or a foreign frame.
				p.badPuts = append(p.badPuts, string(stk))
			}
			p.mu.Unlock()
		}
	}
	if poolPoison {
		// Race/debug builds overwrite released buffers so a consumer that
		// retains a frame past its release reads obvious garbage instead of
		// silently decoding a recycled frame (see poison_race.go).
		poison(b[:cap(b)])
	}
	c := cap(b)
	if c < 1<<poolMinShift || c > 1<<poolMaxShift {
		p.mu.Lock()
		p.dropped++
		p.mu.Unlock()
		return
	}
	// Largest class with size <= cap.
	cl := 0
	for cl+1 < poolClasses && 1<<(poolMinShift+cl+1) <= c {
		cl++
	}
	p.mu.Lock()
	p.free[cl] = append(p.free[cl], b[:0])
	p.puts++
	p.mu.Unlock()
}

// PoolStats is an observability snapshot of a pool.
type PoolStats struct {
	Hits         int64 // Gets served from the free list
	Misses       int64 // in-class Gets that had to allocate
	Puts         int64 // buffers returned to a free list
	OversizeGets int64 // Gets larger than the largest class (plain make)
	DroppedPuts  int64 // Puts whose capacity fit no class (left to the GC)
	Free         int   // buffers currently pooled
}

// Balance returns gets minus puts: the number of buffers currently checked
// out of the pool. A steady-state simulation should return to the balance it
// started from once all frames drain.
func (s PoolStats) Balance() int64 {
	return (s.Hits + s.Misses + s.OversizeGets) - (s.Puts + s.DroppedPuts)
}

// AssertBalanced checks the ownership ledger: every Get must have been
// matched by a Put, except for `live` frames the caller knows are still
// legitimately held (parked continuations, queued frames counted by the
// caller). It returns an error describing the imbalance — a positive drift
// is a leak, a negative one a double release.
func (p *Pool) AssertBalanced(live int64) error {
	s := p.Stats()
	if got := s.Balance(); got != live {
		return fmt.Errorf("wire: pool imbalance: %d buffers checked out, want %d live (gets=%d puts=%d): %+v%s",
			got, live, s.Hits+s.Misses+s.OversizeGets, s.Puts+s.DroppedPuts, s, p.traceReport())
	}
	return nil
}

// traceReport summarizes outstanding Get stacks (GEM_POOL_TRACE=1), grouped
// by identical stack with a count, most frequent first.
func (p *Pool) traceReport() string {
	if p == nil || p.trace == nil {
		return ""
	}
	p.mu.Lock()
	counts := make(map[string]int, len(p.trace))
	//gem:deterministic — aggregating counts is order-independent
	for _, stk := range p.trace {
		counts[stk]++
	}
	p.mu.Unlock()
	stacks := make([]string, 0, len(counts))
	//gem:deterministic — collecting keys for sorting is order-independent
	for stk := range counts {
		stacks = append(stacks, stk)
	}
	sort.Slice(stacks, func(i, j int) bool {
		if counts[stacks[i]] != counts[stacks[j]] {
			return counts[stacks[i]] > counts[stacks[j]]
		}
		return stacks[i] < stacks[j]
	})
	var sb strings.Builder
	for _, stk := range stacks {
		fmt.Fprintf(&sb, "\n--- %d buffer(s) checked out from:\n%s", counts[stk], stk)
	}
	p.mu.Lock()
	bad := p.badPuts
	p.mu.Unlock()
	for _, stk := range bad {
		fmt.Fprintf(&sb, "\n--- Put of a buffer not checked out (double release or foreign frame) at:\n%s", stk)
	}
	return sb.String()
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PoolStats{
		Hits: p.hits, Misses: p.misses, Puts: p.puts,
		OversizeGets: p.oversize, DroppedPuts: p.dropped,
	}
	for _, f := range p.free {
		s.Free += len(f)
	}
	return s
}

// poison fills a released buffer with a recognizable garbage byte. It is
// wired to Put only when poolPoison is set (race builds); the pattern makes
// use-after-release show up as wildly wrong lengths/opcodes, not plausible
// stale data.
func poison(b []byte) {
	for i := range b {
		b[i] = 0xDD
	}
}
