package wire

import (
	"fmt"
	"hash/crc32"
)

// RoCEParams carries the per-channel addressing state a data plane needs to
// craft a RoCE packet: Ethernet/IP endpoints, the UDP source port used for
// ECMP entropy, and the destination queue pair.
type RoCEParams struct {
	SrcMAC, DstMAC MAC
	SrcIP, DstIP   IP4
	UDPSrcPort     uint16
	DestQP         uint32
	PSN            uint32
	AckReq         bool
	// Version selects the encapsulation: 0 / RoCEv2 = IPv4+UDP (default),
	// RoCEv1 = GRH directly over Ethernet (ethertype 0x8915).
	Version RoCEVersion
}

// roceHeaderLen returns the fixed Eth+IP+UDP+BTH prefix length.
const roceFixedLen = EthernetLen + IPv4Len + UDPLen + BTHLen

// RoCEWireLen returns the total frame length of a RoCEv2 packet with the
// given extension-header length and payload length (ICRC included, Ethernet
// framing overhead excluded).
func RoCEWireLen(extLen, payloadLen int) int {
	return roceFixedLen + extLen + payloadLen + ICRCLen
}

// roceV1FixedLen is the Eth+GRH+BTH prefix of a RoCEv1 packet.
const roceV1FixedLen = EthernetLen + GRHLen + BTHLen

// RoCEv1WireLen is RoCEWireLen for the v1 encapsulation.
func RoCEv1WireLen(extLen, payloadLen int) int {
	return roceV1FixedLen + extLen + payloadLen + ICRCLen
}

// roceLen returns the frame length of a RoCE packet in either
// encapsulation.
func roceLen(v RoCEVersion, extLen, payloadLen int) int {
	if v == RoCEv1 {
		return RoCEv1WireLen(extLen, payloadLen)
	}
	return RoCEWireLen(extLen, payloadLen)
}

// putRoCEPrefix writes the headers up to and including the BTH —
// Eth+IPv4+UDP (RoCEv2) or Eth+GRH (RoCEv1) — into frame, whose length must
// already be the full wire length. It returns the offset where extension
// headers (or the payload) continue. No allocation: all header structs stay
// on the caller's stack.
func putRoCEPrefix(frame []byte, p *RoCEParams, opcode Opcode) int {
	total := len(frame)
	var off int
	if p.Version == RoCEv1 {
		eth := Ethernet{Dst: p.DstMAC, Src: p.SrcMAC, EtherType: EtherTypeRoCEv1}
		off = eth.Put(frame)
		grh := GRH{
			TClass:     46 << 2,
			PayLen:     uint16(total - EthernetLen - GRHLen),
			NextHeader: GRHNextHeaderIBA,
			HopLimit:   64,
			SGID:       V4MappedGID(p.SrcIP),
			DGID:       V4MappedGID(p.DstIP),
		}
		off += grh.Put(frame[off:])
	} else {
		eth := Ethernet{Dst: p.DstMAC, Src: p.SrcMAC, EtherType: EtherTypeIPv4}
		off = eth.Put(frame)
		ip := IPv4{
			DSCP:     46, // expedited forwarding: RDMA traffic is prioritized
			TotalLen: uint16(total - EthernetLen),
			DontFrag: true,
			TTL:      64,
			Protocol: ProtoUDP,
			Src:      p.SrcIP,
			Dst:      p.DstIP,
		}
		off += ip.Put(frame[off:])
		udp := UDP{
			SrcPort: p.UDPSrcPort,
			DstPort: UDPPortRoCEv2,
			Length:  uint16(total - EthernetLen - IPv4Len),
		}
		off += udp.Put(frame[off:])
	}
	bth := BTH{
		Opcode: opcode,
		PKey:   DefaultPKey,
		DestQP: p.DestQP,
		AckReq: p.AckReq,
		PSN:    p.PSN & 0xFFFFFF,
	}
	return off + bth.Put(frame[off:])
}

// finishRoCE copies the payload at off and seals the trailing ICRC.
func finishRoCE(frame []byte, off int, payload []byte) {
	copy(frame[off:], payload)
	putICRC(frame)
}

// BuildWriteOnlyInto crafts an RDMA WRITE Only request carrying payload to
// remote address va under rkey, drawing the frame buffer from pool (nil =
// plain allocation). The caller owns the returned frame; handing it to the
// fabric (Send/Inject/Emit) transfers ownership.
func BuildWriteOnlyInto(pool *Pool, p *RoCEParams, va uint64, rkey uint32, payload []byte) []byte {
	frame := pool.Get(roceLen(p.Version, RETHLen, len(payload)))
	off := putRoCEPrefix(frame, p, OpWriteOnly)
	reth := RETH{VA: va, RKey: rkey, DMALen: uint32(len(payload))}
	off += reth.Put(frame[off:])
	finishRoCE(frame, off, payload)
	return frame
}

// BuildWriteOnly is BuildWriteOnlyInto drawing from DefaultPool; the frame must go back to it (Put or fabric handoff).
func BuildWriteOnly(p *RoCEParams, va uint64, rkey uint32, payload []byte) []byte {
	return BuildWriteOnlyInto(DefaultPool, p, va, rkey, payload)
}

// BuildWriteFirstInto crafts the first packet of a multi-packet WRITE of
// dmaLen total bytes.
func BuildWriteFirstInto(pool *Pool, p *RoCEParams, va uint64, rkey uint32, dmaLen uint32, payload []byte) []byte {
	frame := pool.Get(roceLen(p.Version, RETHLen, len(payload)))
	off := putRoCEPrefix(frame, p, OpWriteFirst)
	reth := RETH{VA: va, RKey: rkey, DMALen: dmaLen}
	off += reth.Put(frame[off:])
	finishRoCE(frame, off, payload)
	return frame
}

// BuildWriteFirst is BuildWriteFirstInto drawing from DefaultPool; the frame must go back to it (Put or fabric handoff).
func BuildWriteFirst(p *RoCEParams, va uint64, rkey uint32, dmaLen uint32, payload []byte) []byte {
	return BuildWriteFirstInto(DefaultPool, p, va, rkey, dmaLen, payload)
}

// BuildWriteMiddleInto crafts a middle packet of a multi-packet WRITE.
func BuildWriteMiddleInto(pool *Pool, p *RoCEParams, payload []byte) []byte {
	frame := pool.Get(roceLen(p.Version, 0, len(payload)))
	off := putRoCEPrefix(frame, p, OpWriteMiddle)
	finishRoCE(frame, off, payload)
	return frame
}

// BuildWriteMiddle is BuildWriteMiddleInto drawing from DefaultPool; the frame must go back to it (Put or fabric handoff).
func BuildWriteMiddle(p *RoCEParams, payload []byte) []byte {
	return BuildWriteMiddleInto(DefaultPool, p, payload)
}

// BuildWriteLastInto crafts the last packet of a multi-packet WRITE.
func BuildWriteLastInto(pool *Pool, p *RoCEParams, payload []byte) []byte {
	frame := pool.Get(roceLen(p.Version, 0, len(payload)))
	off := putRoCEPrefix(frame, p, OpWriteLast)
	finishRoCE(frame, off, payload)
	return frame
}

// BuildWriteLast is BuildWriteLastInto drawing from DefaultPool; the frame must go back to it (Put or fabric handoff).
func BuildWriteLast(p *RoCEParams, payload []byte) []byte {
	return BuildWriteLastInto(DefaultPool, p, payload)
}

// BuildReadRequestInto crafts an RDMA READ request for dmaLen bytes at va.
func BuildReadRequestInto(pool *Pool, p *RoCEParams, va uint64, rkey uint32, dmaLen uint32) []byte {
	frame := pool.Get(roceLen(p.Version, RETHLen, 0))
	off := putRoCEPrefix(frame, p, OpReadRequest)
	reth := RETH{VA: va, RKey: rkey, DMALen: dmaLen}
	off += reth.Put(frame[off:])
	finishRoCE(frame, off, nil)
	return frame
}

// BuildReadRequest is BuildReadRequestInto drawing from DefaultPool; the frame must go back to it (Put or fabric handoff).
func BuildReadRequest(p *RoCEParams, va uint64, rkey uint32, dmaLen uint32) []byte {
	return BuildReadRequestInto(DefaultPool, p, va, rkey, dmaLen)
}

// BuildFetchAddInto crafts an atomic Fetch-and-Add request adding delta to
// the 8-byte word at va.
func BuildFetchAddInto(pool *Pool, p *RoCEParams, va uint64, rkey uint32, delta uint64) []byte {
	frame := pool.Get(roceLen(p.Version, AtomicETHLen, 0))
	off := putRoCEPrefix(frame, p, OpFetchAdd)
	ae := AtomicETH{VA: va, RKey: rkey, SwapAdd: delta}
	off += ae.Put(frame[off:])
	finishRoCE(frame, off, nil)
	return frame
}

// BuildFetchAdd is BuildFetchAddInto drawing from DefaultPool; the frame must go back to it (Put or fabric handoff).
func BuildFetchAdd(p *RoCEParams, va uint64, rkey uint32, delta uint64) []byte {
	return BuildFetchAddInto(DefaultPool, p, va, rkey, delta)
}

// BuildCompareSwapInto crafts an atomic Compare-and-Swap request.
func BuildCompareSwapInto(pool *Pool, p *RoCEParams, va uint64, rkey uint32, compare, swap uint64) []byte {
	frame := pool.Get(roceLen(p.Version, AtomicETHLen, 0))
	off := putRoCEPrefix(frame, p, OpCompareSwap)
	ae := AtomicETH{VA: va, RKey: rkey, SwapAdd: swap, Compare: compare}
	off += ae.Put(frame[off:])
	finishRoCE(frame, off, nil)
	return frame
}

// BuildCompareSwap is BuildCompareSwapInto drawing from DefaultPool; the frame must go back to it (Put or fabric handoff).
func BuildCompareSwap(p *RoCEParams, va uint64, rkey uint32, compare, swap uint64) []byte {
	return BuildCompareSwapInto(DefaultPool, p, va, rkey, compare, swap)
}

// BuildReadResponseInto crafts a READ response packet of the given flavour
// (Only/First/Middle/Last). First/Only/Last carry an AETH.
func BuildReadResponseInto(pool *Pool, p *RoCEParams, opcode Opcode, msn uint32, payload []byte) []byte {
	switch opcode {
	case OpReadResponseOnly, OpReadResponseFirst, OpReadResponseLast:
		frame := pool.Get(roceLen(p.Version, AETHLen, len(payload)))
		off := putRoCEPrefix(frame, p, opcode)
		ae := AETH{Syndrome: AETHAck, MSN: msn & 0xFFFFFF}
		off += ae.Put(frame[off:])
		finishRoCE(frame, off, payload)
		return frame
	case OpReadResponseMiddle:
		frame := pool.Get(roceLen(p.Version, 0, len(payload)))
		off := putRoCEPrefix(frame, p, opcode)
		finishRoCE(frame, off, payload)
		return frame
	default:
		panic(fmt.Sprintf("wire: %v is not a read response opcode", opcode))
	}
}

// BuildReadResponse is BuildReadResponseInto drawing from DefaultPool; the frame must go back to it (Put or fabric handoff).
func BuildReadResponse(p *RoCEParams, opcode Opcode, msn uint32, payload []byte) []byte {
	return BuildReadResponseInto(DefaultPool, p, opcode, msn, payload)
}

// BuildAckInto crafts an ACK (or NAK, per syndrome) packet.
func BuildAckInto(pool *Pool, p *RoCEParams, syndrome uint8, msn uint32) []byte {
	frame := pool.Get(roceLen(p.Version, AETHLen, 0))
	off := putRoCEPrefix(frame, p, OpAcknowledge)
	ae := AETH{Syndrome: syndrome, MSN: msn & 0xFFFFFF}
	off += ae.Put(frame[off:])
	finishRoCE(frame, off, nil)
	return frame
}

// BuildAck is BuildAckInto drawing from DefaultPool; the frame must go back to it (Put or fabric handoff).
func BuildAck(p *RoCEParams, syndrome uint8, msn uint32) []byte {
	return BuildAckInto(DefaultPool, p, syndrome, msn)
}

// BuildAtomicAckInto crafts an atomic acknowledge carrying the original
// value.
func BuildAtomicAckInto(pool *Pool, p *RoCEParams, msn uint32, orig uint64) []byte {
	frame := pool.Get(roceLen(p.Version, AETHLen+AtomicAckETHLen, 0))
	off := putRoCEPrefix(frame, p, OpAtomicAcknowledge)
	ae := AETH{Syndrome: AETHAck, MSN: msn & 0xFFFFFF}
	off += ae.Put(frame[off:])
	aa := AtomicAckETH{OrigData: orig}
	off += aa.Put(frame[off:])
	finishRoCE(frame, off, nil)
	return frame
}

// BuildAtomicAck is BuildAtomicAckInto drawing from DefaultPool; the frame must go back to it (Put or fabric handoff).
func BuildAtomicAck(p *RoCEParams, msn uint32, orig uint64) []byte {
	return BuildAtomicAckInto(DefaultPool, p, msn, orig)
}

// BuildDataFrameInto assembles a plain (non-RoCE) Ethernet/IPv4/UDP frame
// of exactly frameLen bytes (padding the payload as needed), as emitted by
// the traffic generators standing in for raw_ethernet_bw and NetPIPE.
// frameLen excludes framing overhead. The payload occupies the space after
// the UDP header.
func BuildDataFrameInto(pool *Pool, srcMAC, dstMAC MAC, srcIP, dstIP IP4, srcPort, dstPort uint16, frameLen int, payload []byte) []byte {
	if frameLen < MinFrameSize {
		frameLen = MinFrameSize
	}
	if min := EthernetLen + IPv4Len + UDPLen + len(payload); frameLen < min {
		frameLen = min
	}
	frame := pool.Get(frameLen)
	eth := Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	off := eth.Put(frame)
	ip := IPv4{
		TotalLen: uint16(frameLen - EthernetLen),
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      srcIP,
		Dst:      dstIP,
	}
	off += ip.Put(frame[off:])
	udp := UDP{
		SrcPort: srcPort,
		DstPort: dstPort,
		Length:  uint16(frameLen - EthernetLen - IPv4Len),
	}
	off += udp.Put(frame[off:])
	off += copy(frame[off:], payload)
	// Pooled buffers carry stale bytes; the padding must be zero.
	clear(frame[off:])
	return frame
}

// BuildDataFrame is BuildDataFrameInto drawing from DefaultPool; the frame must go back to it (Put or fabric handoff).
func BuildDataFrame(srcMAC, dstMAC MAC, srcIP, dstIP IP4, srcPort, dstPort uint16, frameLen int, payload []byte) []byte {
	return BuildDataFrameInto(DefaultPool, srcMAC, dstMAC, srcIP, dstIP, srcPort, dstPort, frameLen, payload)
}

// Packet is a fully parsed frame. Decode methods fill it in place without
// copying payload bytes (gopacket's preallocated DecodingLayer pattern), so
// one Packet per pipeline can parse millions of frames with zero allocation.
type Packet struct {
	Eth Ethernet

	HasIPv4 bool
	IP      IPv4

	HasUDP bool
	UDP    UDP

	// HasGRH marks a RoCEv1 frame (GRH instead of IPv4+UDP).
	HasGRH bool
	GRH    GRH

	// RoCE transport headers; IsRoCE is true for RoCEv2 (UDP dst port
	// 4791) and RoCEv1 (ethertype 0x8915) frames alike.
	IsRoCE       bool
	BTH          BTH
	HasRETH      bool
	RETH         RETH
	HasAETH      bool
	AETH         AETH
	HasAtomicETH bool
	AtomicETH    AtomicETH
	HasAtomicAck bool
	AtomicAck    AtomicAckETH
	ICRCOK       bool

	// Payload is the innermost payload: for RoCE packets the RDMA payload
	// (after extension headers, before the ICRC); for UDP the datagram
	// payload; otherwise the bytes after the Ethernet header.
	Payload []byte
}

// Reset clears the presence flags so the struct can be reused.
func (p *Packet) Reset() {
	p.HasIPv4, p.HasUDP, p.IsRoCE, p.HasGRH = false, false, false, false
	p.HasRETH, p.HasAETH, p.HasAtomicETH, p.HasAtomicAck = false, false, false, false
	p.ICRCOK = false
	p.Payload = nil
}

// DecodeFromBytes parses frame into p. RoCE transport parsing is attempted
// whenever the UDP destination port is 4791; a malformed RoCE layer is an
// error (the switch drops such frames), while a plain non-RoCE frame is fine.
func (p *Packet) DecodeFromBytes(frame []byte) error {
	p.Reset()
	if err := p.Eth.DecodeFromBytes(frame); err != nil {
		return err
	}
	rest := frame[EthernetLen:]
	if p.Eth.EtherType == EtherTypeRoCEv1 {
		if err := p.GRH.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.HasGRH = true
		glen := int(p.GRH.PayLen) + GRHLen
		if glen > len(rest) {
			return tooShort("grh payload length", glen, len(rest))
		}
		return p.decodeRoCE(frame, rest[GRHLen:glen])
	}
	if p.Eth.EtherType != EtherTypeIPv4 {
		p.Payload = rest
		return nil
	}
	if err := p.IP.DecodeFromBytes(rest); err != nil {
		return err
	}
	p.HasIPv4 = true
	// Trust TotalLen to strip link-layer padding — but not blindly: a
	// TotalLen shorter than the header itself is malformed, not padding.
	ipLen := int(p.IP.TotalLen)
	if ipLen < IPv4Len || ipLen > len(rest) {
		return tooShort("ipv4 total length", ipLen, len(rest))
	}
	rest = rest[IPv4Len:ipLen]
	if p.IP.Protocol != ProtoUDP {
		p.Payload = rest
		return nil
	}
	if err := p.UDP.DecodeFromBytes(rest); err != nil {
		return err
	}
	p.HasUDP = true
	rest = rest[UDPLen:]
	if p.UDP.DstPort != UDPPortRoCEv2 {
		p.Payload = rest
		return nil
	}
	return p.decodeRoCE(frame, rest)
}

func (p *Packet) decodeRoCE(frame, rest []byte) error {
	if err := p.BTH.DecodeFromBytes(rest); err != nil {
		return err
	}
	p.IsRoCE = true
	rest = rest[BTHLen:]
	if len(rest) < ICRCLen {
		return tooShort("icrc", ICRCLen, len(rest))
	}
	switch op := p.BTH.Opcode; {
	case op.HasRETH():
		if err := p.RETH.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.HasRETH = true
		rest = rest[RETHLen:]
	case op.IsAtomic():
		if err := p.AtomicETH.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.HasAtomicETH = true
		rest = rest[AtomicETHLen:]
	case op == OpAcknowledge,
		op == OpReadResponseOnly, op == OpReadResponseFirst, op == OpReadResponseLast:
		if err := p.AETH.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.HasAETH = true
		rest = rest[AETHLen:]
	case op == OpAtomicAcknowledge:
		if err := p.AETH.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.HasAETH = true
		rest = rest[AETHLen:]
		if err := p.AtomicAck.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.HasAtomicAck = true
		rest = rest[AtomicAckETHLen:]
	}
	if len(rest) < ICRCLen {
		return tooShort("icrc", ICRCLen, len(rest))
	}
	p.Payload = rest[:len(rest)-ICRCLen]
	p.ICRCOK = verifyICRC(frame)
	return nil
}

// ---- ICRC ----
//
// RoCE packets end with a 32-bit invariant CRC computed over the packet with
// per-hop-variant fields masked. We use the Ethernet CRC-32 polynomial (as
// the spec does) over the frame from the IP header onward, masking the
// fields the spec masks: IP TOS/TTL/checksum, the UDP checksum, and the BTH
// reserved byte. This is a faithful simplification: both ends of the
// simulation compute it the same way, so corruption and truncation are
// detectable, which is what the primitives rely on.

// icrcFF feeds Update the masked 0xFF substitutions without copying.
var icrcFF = [2]byte{0xFF, 0xFF}

// computeICRC runs CRC-32 incrementally over the frame's body slices,
// substituting the masked bytes in place of a full body copy. Chaining
// crc32.Update over sub-slices is bit-identical to ChecksumIEEE over the
// concatenation, so the wire format is unchanged.
func computeICRC(frame []byte) (uint32, bool) {
	v1 := IsRoCEv1Frame(frame)
	min := roceFixedLen
	if v1 {
		min = roceV1FixedLen
	}
	if len(frame) < min+ICRCLen {
		return 0, false
	}
	b := frame[EthernetLen : len(frame)-ICRCLen]
	t := crc32.IEEETable
	var crc uint32
	if v1 {
		// Mask the variant GRH fields: traffic class (OR-masks, so two
		// scratch bytes) and hop limit, plus the BTH reserved byte.
		m := [2]byte{b[0] | 0x0F, b[1] | 0xF0}
		crc = crc32.Update(crc, t, m[:])
		crc = crc32.Update(crc, t, b[2:7])
		crc = crc32.Update(crc, t, icrcFF[:1]) // hop limit
		crc = crc32.Update(crc, t, b[8:GRHLen+4])
		crc = crc32.Update(crc, t, icrcFF[:1]) // BTH reserved
		crc = crc32.Update(crc, t, b[GRHLen+5:])
		return crc, true
	}
	// Mask variant fields: IP TOS/TTL/checksum, UDP checksum, BTH reserved.
	crc = crc32.Update(crc, t, b[0:1])
	crc = crc32.Update(crc, t, icrcFF[:1]) // IP TOS
	crc = crc32.Update(crc, t, b[2:8])
	crc = crc32.Update(crc, t, icrcFF[:1]) // IP TTL
	crc = crc32.Update(crc, t, b[9:10])
	crc = crc32.Update(crc, t, icrcFF[:]) // IP checksum
	crc = crc32.Update(crc, t, b[12:IPv4Len+6])
	crc = crc32.Update(crc, t, icrcFF[:]) // UDP checksum
	crc = crc32.Update(crc, t, b[IPv4Len+8:IPv4Len+UDPLen+4])
	crc = crc32.Update(crc, t, icrcFF[:1]) // BTH reserved
	crc = crc32.Update(crc, t, b[IPv4Len+UDPLen+5:])
	return crc, true
}

// IsRoCEv1Frame cheaply tests the ethertype.
func IsRoCEv1Frame(frame []byte) bool {
	return len(frame) >= EthernetLen && frame[12] == 0x89 && frame[13] == 0x15
}

// putICRC computes and stores the ICRC in the last 4 bytes of frame.
func putICRC(frame []byte) {
	crc, ok := computeICRC(frame)
	if !ok {
		panic("wire: frame too short for ICRC")
	}
	// Transmitted least-significant byte first, like the Ethernet FCS.
	frame[len(frame)-4] = byte(crc)
	frame[len(frame)-3] = byte(crc >> 8)
	frame[len(frame)-2] = byte(crc >> 16)
	frame[len(frame)-1] = byte(crc >> 24)
}

// verifyICRC recomputes the ICRC of frame and compares it to the trailer.
func verifyICRC(frame []byte) bool {
	crc, ok := computeICRC(frame)
	if !ok {
		return false
	}
	n := len(frame)
	got := uint32(frame[n-4]) | uint32(frame[n-3])<<8 | uint32(frame[n-2])<<16 | uint32(frame[n-1])<<24
	return crc == got
}
