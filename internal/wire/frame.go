package wire

import (
	"fmt"
	"hash/crc32"
)

// RoCEParams carries the per-channel addressing state a data plane needs to
// craft a RoCE packet: Ethernet/IP endpoints, the UDP source port used for
// ECMP entropy, and the destination queue pair.
type RoCEParams struct {
	SrcMAC, DstMAC MAC
	SrcIP, DstIP   IP4
	UDPSrcPort     uint16
	DestQP         uint32
	PSN            uint32
	AckReq         bool
	// Version selects the encapsulation: 0 / RoCEv2 = IPv4+UDP (default),
	// RoCEv1 = GRH directly over Ethernet (ethertype 0x8915).
	Version RoCEVersion
}

// roceHeaderLen returns the fixed Eth+IP+UDP+BTH prefix length.
const roceFixedLen = EthernetLen + IPv4Len + UDPLen + BTHLen

// RoCEWireLen returns the total frame length of a RoCEv2 packet with the
// given extension-header length and payload length (ICRC included, Ethernet
// framing overhead excluded).
func RoCEWireLen(extLen, payloadLen int) int {
	return roceFixedLen + extLen + payloadLen + ICRCLen
}

// roceV1FixedLen is the Eth+GRH+BTH prefix of a RoCEv1 packet.
const roceV1FixedLen = EthernetLen + GRHLen + BTHLen

// RoCEv1WireLen is RoCEWireLen for the v1 encapsulation.
func RoCEv1WireLen(extLen, payloadLen int) int {
	return roceV1FixedLen + extLen + payloadLen + ICRCLen
}

// buildRoCE assembles a complete RoCE frame in the encapsulation the
// params select. exts are encoded in order after the BTH; payload follows;
// the ICRC trails.
func buildRoCE(p *RoCEParams, opcode Opcode, exts []interface{ Put([]byte) int }, extLen int, payload []byte) []byte {
	if p.Version == RoCEv1 {
		return buildRoCEv1(p, opcode, exts, extLen, payload)
	}
	total := RoCEWireLen(extLen, len(payload))
	frame := make([]byte, total)

	eth := Ethernet{Dst: p.DstMAC, Src: p.SrcMAC, EtherType: EtherTypeIPv4}
	off := eth.Put(frame)

	ip := IPv4{
		DSCP:     46, // expedited forwarding: RDMA traffic is prioritized
		TotalLen: uint16(total - EthernetLen),
		DontFrag: true,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      p.SrcIP,
		Dst:      p.DstIP,
	}
	off += ip.Put(frame[off:])

	udp := UDP{
		SrcPort: p.UDPSrcPort,
		DstPort: UDPPortRoCEv2,
		Length:  uint16(total - EthernetLen - IPv4Len),
	}
	off += udp.Put(frame[off:])

	off += putBTHExts(frame[off:], p, opcode, exts)
	off += copy(frame[off:], payload)
	putICRC(frame)
	return frame
}

// putBTHExts writes the BTH and extension headers common to both
// encapsulations.
func putBTHExts(b []byte, p *RoCEParams, opcode Opcode, exts []interface{ Put([]byte) int }) int {
	bth := BTH{
		Opcode: opcode,
		PKey:   DefaultPKey,
		DestQP: p.DestQP,
		AckReq: p.AckReq,
		PSN:    p.PSN & 0xFFFFFF,
	}
	off := bth.Put(b)
	for _, e := range exts {
		off += e.Put(b[off:])
	}
	return off
}

// buildRoCEv1 assembles the GRH-over-Ethernet encapsulation.
func buildRoCEv1(p *RoCEParams, opcode Opcode, exts []interface{ Put([]byte) int }, extLen int, payload []byte) []byte {
	total := RoCEv1WireLen(extLen, len(payload))
	frame := make([]byte, total)

	eth := Ethernet{Dst: p.DstMAC, Src: p.SrcMAC, EtherType: EtherTypeRoCEv1}
	off := eth.Put(frame)

	grh := GRH{
		TClass:     46 << 2,
		PayLen:     uint16(total - EthernetLen - GRHLen),
		NextHeader: GRHNextHeaderIBA,
		HopLimit:   64,
		SGID:       V4MappedGID(p.SrcIP),
		DGID:       V4MappedGID(p.DstIP),
	}
	off += grh.Put(frame[off:])

	off += putBTHExts(frame[off:], p, opcode, exts)
	off += copy(frame[off:], payload)
	putICRC(frame)
	return frame
}

// BuildWriteOnly crafts an RDMA WRITE Only request carrying payload to
// remote address va under rkey.
func BuildWriteOnly(p *RoCEParams, va uint64, rkey uint32, payload []byte) []byte {
	reth := &RETH{VA: va, RKey: rkey, DMALen: uint32(len(payload))}
	return buildRoCE(p, OpWriteOnly, []interface{ Put([]byte) int }{reth}, RETHLen, payload)
}

// BuildWriteFirst crafts the first packet of a multi-packet WRITE of
// dmaLen total bytes.
func BuildWriteFirst(p *RoCEParams, va uint64, rkey uint32, dmaLen uint32, payload []byte) []byte {
	reth := &RETH{VA: va, RKey: rkey, DMALen: dmaLen}
	return buildRoCE(p, OpWriteFirst, []interface{ Put([]byte) int }{reth}, RETHLen, payload)
}

// BuildWriteMiddle crafts a middle packet of a multi-packet WRITE.
func BuildWriteMiddle(p *RoCEParams, payload []byte) []byte {
	return buildRoCE(p, OpWriteMiddle, nil, 0, payload)
}

// BuildWriteLast crafts the last packet of a multi-packet WRITE.
func BuildWriteLast(p *RoCEParams, payload []byte) []byte {
	return buildRoCE(p, OpWriteLast, nil, 0, payload)
}

// BuildReadRequest crafts an RDMA READ request for dmaLen bytes at va.
func BuildReadRequest(p *RoCEParams, va uint64, rkey uint32, dmaLen uint32) []byte {
	reth := &RETH{VA: va, RKey: rkey, DMALen: dmaLen}
	return buildRoCE(p, OpReadRequest, []interface{ Put([]byte) int }{reth}, RETHLen, nil)
}

// BuildFetchAdd crafts an atomic Fetch-and-Add request adding delta to the
// 8-byte word at va.
func BuildFetchAdd(p *RoCEParams, va uint64, rkey uint32, delta uint64) []byte {
	ae := &AtomicETH{VA: va, RKey: rkey, SwapAdd: delta}
	return buildRoCE(p, OpFetchAdd, []interface{ Put([]byte) int }{ae}, AtomicETHLen, nil)
}

// BuildCompareSwap crafts an atomic Compare-and-Swap request.
func BuildCompareSwap(p *RoCEParams, va uint64, rkey uint32, compare, swap uint64) []byte {
	ae := &AtomicETH{VA: va, RKey: rkey, SwapAdd: swap, Compare: compare}
	return buildRoCE(p, OpCompareSwap, []interface{ Put([]byte) int }{ae}, AtomicETHLen, nil)
}

// BuildReadResponse crafts a READ response packet of the given flavour
// (Only/First/Middle/Last). First/Only/Last carry an AETH.
func BuildReadResponse(p *RoCEParams, opcode Opcode, msn uint32, payload []byte) []byte {
	switch opcode {
	case OpReadResponseOnly, OpReadResponseFirst, OpReadResponseLast:
		ae := &AETH{Syndrome: AETHAck, MSN: msn & 0xFFFFFF}
		return buildRoCE(p, opcode, []interface{ Put([]byte) int }{ae}, AETHLen, payload)
	case OpReadResponseMiddle:
		return buildRoCE(p, opcode, nil, 0, payload)
	default:
		panic(fmt.Sprintf("wire: %v is not a read response opcode", opcode))
	}
}

// BuildAck crafts an ACK (or NAK, per syndrome) packet.
func BuildAck(p *RoCEParams, syndrome uint8, msn uint32) []byte {
	ae := &AETH{Syndrome: syndrome, MSN: msn & 0xFFFFFF}
	return buildRoCE(p, OpAcknowledge, []interface{ Put([]byte) int }{ae}, AETHLen, nil)
}

// BuildAtomicAck crafts an atomic acknowledge carrying the original value.
func BuildAtomicAck(p *RoCEParams, msn uint32, orig uint64) []byte {
	ae := &AETH{Syndrome: AETHAck, MSN: msn & 0xFFFFFF}
	aa := &AtomicAckETH{OrigData: orig}
	return buildRoCE(p, OpAtomicAcknowledge,
		[]interface{ Put([]byte) int }{ae, aa}, AETHLen+AtomicAckETHLen, nil)
}

// BuildDataFrame assembles a plain (non-RoCE) Ethernet/IPv4/UDP frame of
// exactly frameLen bytes (padding the payload as needed), as emitted by the
// traffic generators standing in for raw_ethernet_bw and NetPIPE. frameLen
// excludes framing overhead. The payload occupies the space after the UDP
// header.
func BuildDataFrame(srcMAC, dstMAC MAC, srcIP, dstIP IP4, srcPort, dstPort uint16, frameLen int, payload []byte) []byte {
	if frameLen < MinFrameSize {
		frameLen = MinFrameSize
	}
	if min := EthernetLen + IPv4Len + UDPLen + len(payload); frameLen < min {
		frameLen = min
	}
	frame := make([]byte, frameLen)
	eth := Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	off := eth.Put(frame)
	ip := IPv4{
		TotalLen: uint16(frameLen - EthernetLen),
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      srcIP,
		Dst:      dstIP,
	}
	off += ip.Put(frame[off:])
	udp := UDP{
		SrcPort: srcPort,
		DstPort: dstPort,
		Length:  uint16(frameLen - EthernetLen - IPv4Len),
	}
	off += udp.Put(frame[off:])
	copy(frame[off:], payload)
	return frame
}

// Packet is a fully parsed frame. Decode methods fill it in place without
// copying payload bytes (gopacket's preallocated DecodingLayer pattern), so
// one Packet per pipeline can parse millions of frames with zero allocation.
type Packet struct {
	Eth Ethernet

	HasIPv4 bool
	IP      IPv4

	HasUDP bool
	UDP    UDP

	// HasGRH marks a RoCEv1 frame (GRH instead of IPv4+UDP).
	HasGRH bool
	GRH    GRH

	// RoCE transport headers; IsRoCE is true for RoCEv2 (UDP dst port
	// 4791) and RoCEv1 (ethertype 0x8915) frames alike.
	IsRoCE       bool
	BTH          BTH
	HasRETH      bool
	RETH         RETH
	HasAETH      bool
	AETH         AETH
	HasAtomicETH bool
	AtomicETH    AtomicETH
	HasAtomicAck bool
	AtomicAck    AtomicAckETH
	ICRCOK       bool

	// Payload is the innermost payload: for RoCE packets the RDMA payload
	// (after extension headers, before the ICRC); for UDP the datagram
	// payload; otherwise the bytes after the Ethernet header.
	Payload []byte
}

// Reset clears the presence flags so the struct can be reused.
func (p *Packet) Reset() {
	p.HasIPv4, p.HasUDP, p.IsRoCE, p.HasGRH = false, false, false, false
	p.HasRETH, p.HasAETH, p.HasAtomicETH, p.HasAtomicAck = false, false, false, false
	p.ICRCOK = false
	p.Payload = nil
}

// DecodeFromBytes parses frame into p. RoCE transport parsing is attempted
// whenever the UDP destination port is 4791; a malformed RoCE layer is an
// error (the switch drops such frames), while a plain non-RoCE frame is fine.
func (p *Packet) DecodeFromBytes(frame []byte) error {
	p.Reset()
	if err := p.Eth.DecodeFromBytes(frame); err != nil {
		return err
	}
	rest := frame[EthernetLen:]
	if p.Eth.EtherType == EtherTypeRoCEv1 {
		if err := p.GRH.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.HasGRH = true
		glen := int(p.GRH.PayLen) + GRHLen
		if glen > len(rest) {
			return tooShort("grh payload length", glen, len(rest))
		}
		return p.decodeRoCE(frame, rest[GRHLen:glen])
	}
	if p.Eth.EtherType != EtherTypeIPv4 {
		p.Payload = rest
		return nil
	}
	if err := p.IP.DecodeFromBytes(rest); err != nil {
		return err
	}
	p.HasIPv4 = true
	// Trust TotalLen to strip link-layer padding.
	ipLen := int(p.IP.TotalLen)
	if ipLen > len(rest) {
		return tooShort("ipv4 total length", ipLen, len(rest))
	}
	rest = rest[IPv4Len:ipLen]
	if p.IP.Protocol != ProtoUDP {
		p.Payload = rest
		return nil
	}
	if err := p.UDP.DecodeFromBytes(rest); err != nil {
		return err
	}
	p.HasUDP = true
	rest = rest[UDPLen:]
	if p.UDP.DstPort != UDPPortRoCEv2 {
		p.Payload = rest
		return nil
	}
	return p.decodeRoCE(frame, rest)
}

func (p *Packet) decodeRoCE(frame, rest []byte) error {
	if err := p.BTH.DecodeFromBytes(rest); err != nil {
		return err
	}
	p.IsRoCE = true
	rest = rest[BTHLen:]
	if len(rest) < ICRCLen {
		return tooShort("icrc", ICRCLen, len(rest))
	}
	switch op := p.BTH.Opcode; {
	case op.HasRETH():
		if err := p.RETH.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.HasRETH = true
		rest = rest[RETHLen:]
	case op.IsAtomic():
		if err := p.AtomicETH.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.HasAtomicETH = true
		rest = rest[AtomicETHLen:]
	case op == OpAcknowledge,
		op == OpReadResponseOnly, op == OpReadResponseFirst, op == OpReadResponseLast:
		if err := p.AETH.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.HasAETH = true
		rest = rest[AETHLen:]
	case op == OpAtomicAcknowledge:
		if err := p.AETH.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.HasAETH = true
		rest = rest[AETHLen:]
		if err := p.AtomicAck.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.HasAtomicAck = true
		rest = rest[AtomicAckETHLen:]
	}
	if len(rest) < ICRCLen {
		return tooShort("icrc", ICRCLen, len(rest))
	}
	p.Payload = rest[:len(rest)-ICRCLen]
	p.ICRCOK = verifyICRC(frame)
	return nil
}

// ---- ICRC ----
//
// RoCE packets end with a 32-bit invariant CRC computed over the packet with
// per-hop-variant fields masked. We use the Ethernet CRC-32 polynomial (as
// the spec does) over the frame from the IP header onward, masking the
// fields the spec masks: IP TOS/TTL/checksum, the UDP checksum, and the BTH
// reserved byte. This is a faithful simplification: both ends of the
// simulation compute it the same way, so corruption and truncation are
// detectable, which is what the primitives rely on.

func icrcInput(frame []byte) ([]byte, bool) {
	v1 := IsRoCEv1Frame(frame)
	min := roceFixedLen
	if v1 {
		min = roceV1FixedLen
	}
	if len(frame) < min+ICRCLen {
		return nil, false
	}
	body := make([]byte, len(frame)-EthernetLen-ICRCLen)
	copy(body, frame[EthernetLen:len(frame)-ICRCLen])
	if v1 {
		// Mask the variant GRH fields: traffic class and hop limit.
		body[0] |= 0x0F
		body[1] |= 0xF0
		body[7] = 0xFF        // hop limit
		body[GRHLen+4] = 0xFF // BTH reserved
		return body, true
	}
	// Mask variant fields (offsets within the IP header).
	body[1] = 0xFF                                // IP TOS
	body[8] = 0xFF                                // IP TTL
	body[10], body[11] = 0xFF, 0xFF               // IP checksum
	body[IPv4Len+6], body[IPv4Len+7] = 0xFF, 0xFF // UDP checksum
	body[IPv4Len+UDPLen+4] = 0xFF                 // BTH reserved
	return body, true
}

// IsRoCEv1Frame cheaply tests the ethertype.
func IsRoCEv1Frame(frame []byte) bool {
	return len(frame) >= EthernetLen && frame[12] == 0x89 && frame[13] == 0x15
}

// putICRC computes and stores the ICRC in the last 4 bytes of frame.
func putICRC(frame []byte) {
	body, ok := icrcInput(frame)
	if !ok {
		panic("wire: frame too short for ICRC")
	}
	crc := crc32.ChecksumIEEE(body)
	// Transmitted least-significant byte first, like the Ethernet FCS.
	frame[len(frame)-4] = byte(crc)
	frame[len(frame)-3] = byte(crc >> 8)
	frame[len(frame)-2] = byte(crc >> 16)
	frame[len(frame)-1] = byte(crc >> 24)
}

// verifyICRC recomputes the ICRC of frame and compares it to the trailer.
func verifyICRC(frame []byte) bool {
	body, ok := icrcInput(frame)
	if !ok {
		return false
	}
	crc := crc32.ChecksumIEEE(body)
	n := len(frame)
	got := uint32(frame[n-4]) | uint32(frame[n-3])<<8 | uint32(frame[n-2])<<16 | uint32(frame[n-1])<<24
	return crc == got
}
